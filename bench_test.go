// Package xfmbench holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper (the per-experiment
// index in DESIGN.md), plus ablation benchmarks for the design
// decisions D1–D5.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the experiment's headline numbers as custom
// metrics so `bench_output.txt` doubles as a results log.
package xfmbench

import (
	"testing"

	"xfm/internal/compress"
	"xfm/internal/contention"
	"xfm/internal/corpus"
	"xfm/internal/costmodel"
	"xfm/internal/dram"
	"xfm/internal/energy"
	"xfm/internal/experiments"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/workload"
	"xfm/internal/xfm"
)

// BenchmarkFig1BandwidthUtilization regenerates Fig. 1: CPU-SFM channel
// bandwidth vs rank count against XFM's zero-channel-traffic design.
func BenchmarkFig1BandwidthUtilization(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig1()
	}
	top := last.Rows[len(last.Rows)-1]
	b.ReportMetric(top.CPUSFMChannelGBps, "cpuSFM-GB/s@32ranks")
	b.ReportMetric(last.WorstCase512GBChannelGBps(), "worst512GB-GB/s")
}

// BenchmarkFig3CostModel regenerates Fig. 3: the DFM-vs-SFM cost and
// carbon sweep (EQ1–EQ5).
func BenchmarkFig3CostModel(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig3()
	}
	b.ReportMetric(last.CostBreakEvenDRAM100, "costBE-years(paper:8.5)")
	b.ReportMetric(last.EmissionBreakEvenPMem20, "pmemEmissionBE-years")
}

// BenchmarkFig8CompressionRatio regenerates Fig. 8: multi-channel-mode
// compression ratios across the 16 corpora.
func BenchmarkFig8CompressionRatio(b *testing.B) {
	var last *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig8(true)
	}
	b.ReportMetric(last.MeanSavingsRetention[2], "savings2DIMM(paper:~.95)")
	b.ReportMetric(last.MeanSavingsRetention[4], "savings4DIMM(paper:~.86)")
}

// BenchmarkTable1DeviceConfigs regenerates Table 1 from the device
// models and validates the geometry.
func BenchmarkTable1DeviceConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range dram.Table1Devices() {
			if err := d.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(dram.Device32Gb.TRFC/dram.Nanosecond), "tRFC32Gb-ns")
}

// BenchmarkFig11Interference regenerates Fig. 11: the three-way co-run
// comparison.
func BenchmarkFig11Interference(b *testing.B) {
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig11()
	}
	b.ReportMetric(last.Results[contention.BaselineCPU].MaxSlowdown(), "baseMaxSlowdown")
	b.ReportMetric(last.Results[contention.HostLockoutNMA].MaxSlowdown(), "lockMaxSlowdown")
	b.ReportMetric(last.CombinedImprovement(contention.BaselineCPU)*100, "xfmGain%-vs-base")
	b.ReportMetric(last.CombinedImprovement(contention.HostLockoutNMA)*100, "xfmGain%-vs-lock")
}

// BenchmarkFig12CPUFallbacks regenerates Fig. 12: the SPM ×
// accesses/tRFC × promotion sensitivity grid.
func BenchmarkFig12CPUFallbacks(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		last = experiments.Fig12(true)
	}
	if c, ok := last.Cell(1.0, 8, 3); ok {
		b.ReportMetric(c.FallbackRate*100, "fallback%@8MB3acc100")
		b.ReportMetric(c.ConditionalFraction*100, "cond%@8MB3acc100")
	}
	if c, ok := last.Cell(1.0, 1, 1); ok {
		b.ReportMetric(c.FallbackRate*100, "fallback%@1MB1acc100")
	}
}

// BenchmarkTable2FPGAResources regenerates Table 2.
func BenchmarkTable2FPGAResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := energy.Table2FPGAResources(); len(rows) != 3 {
			b.Fatal("bad table")
		}
	}
	b.ReportMetric(energy.Table2FPGAResources()[0].Percent, "LUT%")
}

// BenchmarkTable3PowerBreakdown regenerates Table 3.
func BenchmarkTable3PowerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if p := energy.Table3Power(); p.TotalWatts == 0 {
			b.Fatal("bad table")
		}
	}
	b.ReportMetric(energy.Table3Power().TotalWatts, "totalW")
}

// BenchmarkSec32Antagonist regenerates the §3.2 motivating experiment.
func BenchmarkSec32Antagonist(b *testing.B) {
	var last *experiments.Sec32Result
	for i := 0; i < b.N; i++ {
		last = experiments.Sec32()
	}
	b.ReportMetric(last.MaxRuntimeIncrease*100, "maxRuntime%+(paper:≤7.5)")
	b.ReportMetric(last.AntagonistLoss*100, "antagonistLoss%(paper:>5)")
}

// BenchmarkNMAEnergy regenerates the §8 access-energy study.
func BenchmarkNMAEnergy(b *testing.B) {
	var last *experiments.EnergyResult
	for i := 0; i < b.N; i++ {
		last = experiments.EnergySaving(true)
	}
	b.ReportMetric(last.MeanSaving*100, "meanSaving%(paper:10.1)")
	b.ReportMetric(last.DataMovementSaving*100, "dataMove%(paper:69)")
}

// BenchmarkCapacityHeadroom regenerates the §8 capacity claim (up to
// 1 TB without fallbacks).
func BenchmarkCapacityHeadroom(b *testing.B) {
	var last *experiments.CapacityResult
	for i := 0; i < b.N; i++ {
		last = experiments.Capacity(true)
	}
	b.ReportMetric(last.MaxCleanCapacityGB, "maxCleanGB(paper:1024)")
}

// BenchmarkEmulatorFullStack regenerates the §7 full-stack emulation.
func BenchmarkEmulatorFullStack(b *testing.B) {
	var last *experiments.EmulatorResult
	for i := 0; i < b.N; i++ {
		last = experiments.Emulator()
	}
	b.ReportMetric(last.XFMOffloadRate*100, "offload%")
	b.ReportMetric(last.CPUCycleReduction*100, "cycleCut%")
}

// --- Ablation benchmarks (design decisions D1–D5 in DESIGN.md) ---

// ablationSim runs the standard Fig. 12 workload shape (512 GB over
// 10 ranks) against a custom NMA config. dstAhead controls how far
// ahead of the refresh counter the allocator may place destinations
// (8192 ≈ no placement intelligence).
func ablationSim(cfg nma.Config, seed int64, dstAhead int, promotion float64) nma.Stats {
	sim := nma.NewSim(cfg)
	traffic := workload.PromotionTraffic{
		SFMCapacityGB:  512,
		PromotionRate:  promotion,
		Ranks:          10,
		PageBytes:      cfg.PageBytes,
		Groups:         cfg.Device.RefreshGroups(),
		Seed:           seed,
		PagesPerGroup:  2,
		RestartProb:    1.0 / 256,
		DstAheadGroups: dstAhead,
		TREFI:          cfg.Timings.TREFI,
	}
	windows := 2 * 8192
	dur := dram.Ps(windows) * cfg.Timings.TREFI
	sim.RunWindows(windows, traffic.Stream(dur))
	return sim.Stats()
}

func ablationConfig() nma.Config {
	cfg := nma.DefaultConfig(dram.Device32Gb)
	cfg.SPMBytes = 8 << 20
	cfg.AccessesPerTRFC = 3
	cfg.QueueDepth = 16384
	return cfg
}

// BenchmarkAblationD1RandomOnly disables conditional accesses (D1):
// without refresh-schedule matching, the single random slot per window
// must carry all traffic.
func BenchmarkAblationD1RandomOnly(b *testing.B) {
	var cond, rand nma.Stats
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		cond = ablationSim(cfg, 1, 5000, 1.0)
		cfg.AccessesPerTRFC = 0 // random-only interface
		cfg.RandomPerTRFC = 1
		rand = ablationSim(cfg, 1, 5000, 1.0)
	}
	b.ReportMetric(cond.FallbackRate()*100, "fallback%-withCond")
	b.ReportMetric(rand.FallbackRate()*100, "fallback%-randomOnly")
}

// BenchmarkAblationD4DstPlacement compares refresh-aware destination
// placement (D4) against uniform destination slots: the aware
// allocator keeps completed pages' SPM residency short.
func BenchmarkAblationD4DstPlacement(b *testing.B) {
	var aware, uniform nma.Stats
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		aware = ablationSim(cfg, 2, 1024, 0.5)
		uniform = ablationSim(cfg, 2, 8192, 0.5)
	}
	wcond := func(s nma.Stats) float64 {
		if s.WriteCond+s.WriteRand == 0 {
			return 0
		}
		return float64(s.WriteCond) / float64(s.WriteCond+s.WriteRand) * 100
	}
	b.ReportMetric(wcond(aware), "writeCond%-aware")
	b.ReportMetric(wcond(uniform), "writeCond%-uniform")
	b.ReportMetric(aware.MeanLatencyMs(), "lat-ms-aware")
	b.ReportMetric(uniform.MeanLatencyMs(), "lat-ms-uniform")
}

// BenchmarkAblationD5DemandOffload compares the default CPU-fallback
// swap-in policy (D5) against offloading demand faults to the NMA:
// demand faults served by the NMA wait ≥ 2×tREFI, so the default
// policy trades host cycles for latency.
func BenchmarkAblationD5DemandOffload(b *testing.B) {
	run := func(offloadDemand bool) (float64, float64) {
		sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
		driver := xfm.NewDriver(sim)
		backend, err := xfm.NewBackend(compress.NewLZFast(), 1<<30,
			driver, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
		if err != nil {
			b.Fatal(err)
		}
		heap := sfm.NewHeap(backend)
		var ids []sfm.PageID
		for i := 0; i < 128; i++ {
			ids = append(ids, heap.Alloc(0, corpus.KeyValue(int64(i), sfm.PageSize)))
		}
		now := dram.Ps(0)
		for _, id := range ids {
			now += 20 * dram.Microsecond
			heap.SwapOut(now, id)
		}
		for _, id := range ids {
			now += 20 * dram.Microsecond
			if offloadDemand {
				heap.Prefetch(now, id)
			} else {
				heap.Touch(now, id)
			}
		}
		driver.AdvanceTo(now + 200*dram.Millisecond)
		st := backend.Stats()
		ns := driver.NMAStats()
		return st.CPUCycles, ns.MeanLatencyMs()
	}
	var cpuCycles, offLatency float64
	for i := 0; i < b.N; i++ {
		cpuCycles, _ = run(false)
		_, offLatency = run(true)
	}
	b.ReportMetric(cpuCycles, "hostCycles-demandCPU")
	b.ReportMetric(offLatency, "nmaLatency-ms-offloaded")
}

// --- Batched offload pipeline benchmarks ---

// batchPages builds n compressible pages keyed by id.
func batchPages(n int) []sfm.PageOut {
	out := make([]sfm.PageOut, n)
	for i := range out {
		out[i] = sfm.PageOut{ID: sfm.PageID(i), Data: corpus.KeyValue(int64(i), sfm.PageSize)}
	}
	return out
}

// benchBatchSwapOut measures batched swap-out throughput through the
// given backend constructor, reporting pages/s. Each iteration swaps a
// 256-page batch out and back in, so the store returns to empty and
// iterations are identical.
func benchBatchSwapOut(b *testing.B, mk func() sfm.Backend) {
	const npages = 256
	outs := batchPages(npages)
	ins := make([]sfm.PageIn, npages)
	for i := range ins {
		ins[i] = sfm.PageIn{ID: outs[i].ID, Dst: make([]byte, sfm.PageSize)}
	}
	backend := mk()
	b.ReportAllocs()
	b.SetBytes(npages * sfm.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sfm.FirstError(backend.SwapOutBatch(0, outs)); err != nil {
			b.Fatal(err)
		}
		if err := sfm.FirstError(backend.SwapInBatch(0, ins, false)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*npages/b.Elapsed().Seconds(), "pages/s")
}

// BenchmarkBatchSwapOutSerial is the single-core reference: a plain
// CPU backend executing the batch as a loop.
func BenchmarkBatchSwapOutSerial(b *testing.B) {
	benchBatchSwapOut(b, func() sfm.Backend {
		return sfm.NewCPUBackend(compress.NewXDeflate(), 0)
	})
}

// BenchmarkBatchSwapOutParallel runs the same batch through the
// sharded backend with GOMAXPROCS workers. On a multi-core runner the
// pages/s metric should exceed the serial reference by ≈ the core
// count; on a single-core runner the two are equal (the worker pool
// degrades to the inline serial path).
func BenchmarkBatchSwapOutParallel(b *testing.B) {
	benchBatchSwapOut(b, func() sfm.Backend {
		return sfm.NewShardedBackend(compress.NewXDeflate(), 0, 16, 0)
	})
}

// BenchmarkBatchXFMParallel drives the full XFM backend (driver, ECC,
// NMA accounting) with a sharded store.
func BenchmarkBatchXFMParallel(b *testing.B) {
	benchBatchSwapOut(b, func() sfm.Backend {
		sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
		backend, err := xfm.NewShardedBackend(compress.NewXDeflate(), 1<<30, 16, 0,
			xfm.NewDriver(sim), memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
		if err != nil {
			b.Fatal(err)
		}
		return backend
	})
}

// BenchmarkBatchCompressHotPath pins the zero-allocation compress hot
// path: one page through a warmed Scratch (allocs/op should be 0).
func BenchmarkBatchCompressHotPath(b *testing.B) {
	page := corpus.KeyValue(7, sfm.PageSize)
	s := compress.GetScratch()
	defer s.Release()
	c := compress.NewXDeflate()
	s.Compress(c, page) // warm
	b.ReportAllocs()
	b.SetBytes(sfm.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Compress(c, page)
	}
}

// BenchmarkCostModelSweep measures the analytical model's throughput
// (it backs interactive tools).
func BenchmarkCostModelSweep(b *testing.B) {
	p := costmodel.DefaultParams()
	for i := 0; i < b.N; i++ {
		for y := 0.0; y < 10; y += 0.25 {
			_ = p.SFMCost(y)
			_ = p.DFMCost(costmodel.DRAM, y)
			_ = p.SFMEmission(y)
			_ = p.DFMEmission(costmodel.PMem, y)
		}
	}
}
