package experiments

import (
	"fmt"

	"xfm/internal/costmodel"
	"xfm/internal/stats"
)

// Fig3Point is one (year, normalized cost/emission) sample.
type Fig3Point struct {
	Year float64
	// Values are normalized to the DRAM-DFM at the same year, the
	// figure's normalization ("Values are normalized to that of DFM").
	SFMCost20, SFMCost100 float64
	PMemCost              float64
	SFMEmission20         float64
	SFMEmission100        float64
	PMemEmission          float64
}

// Fig3Result carries the sweep and the headline break-even points.
type Fig3Result struct {
	Points []Fig3Point

	// CostBreakEvenDRAM100 is the year SFM at 100% promotion matches
	// DRAM-DFM cost (paper: 8.5 years).
	CostBreakEvenDRAM100 float64
	// EmissionBreakEvenPMem20 is the year SFM at 20% promotion
	// matches PMem-DFM emissions (paper: "several years").
	EmissionBreakEvenPMem20 float64
	// DRAMEmissionBreaksEvenWithin5 reports whether SFM@20% emissions
	// ever reach DRAM-DFM's within the 5-year server lifetime
	// (paper: they never do).
	DRAMEmissionBreaksEvenWithin5 bool
}

// Fig3 reproduces the DFM-vs-SFM cost and emission comparison (§3.1,
// EQ1–EQ5) for a 512 GB far-memory tier.
func Fig3() *Fig3Result {
	base := costmodel.DefaultParams()
	at := func(rate float64) costmodel.Params {
		p := base
		p.PromotionRate = rate
		return p
	}
	p20, p100 := at(0.20), at(1.00)

	res := &Fig3Result{}
	for year := 0.0; year <= 10.0; year += 1.0 {
		dramCost := p20.DFMCost(costmodel.DRAM, year)
		dramEm := p20.DFMEmission(costmodel.DRAM, year)
		res.Points = append(res.Points, Fig3Point{
			Year:           year,
			SFMCost20:      p20.SFMCost(year) / dramCost,
			SFMCost100:     p100.SFMCost(year) / dramCost,
			PMemCost:       p20.DFMCost(costmodel.PMem, year) / dramCost,
			SFMEmission20:  p20.SFMEmission(year) / dramEm,
			SFMEmission100: p100.SFMEmission(year) / dramEm,
			PMemEmission:   p20.DFMEmission(costmodel.PMem, year) / dramEm,
		})
	}
	if y, ok := p100.CostBreakEvenYears(costmodel.DRAM, 50); ok {
		res.CostBreakEvenDRAM100 = y
	}
	if y, ok := p20.EmissionBreakEvenYears(costmodel.PMem, 50); ok {
		res.EmissionBreakEvenPMem20 = y
	}
	_, res.DRAMEmissionBreaksEvenWithin5 = p20.EmissionBreakEvenYears(costmodel.DRAM, 5)
	return res
}

// Table renders the figure.
func (r *Fig3Result) Table() *stats.Table {
	t := stats.NewTable(
		"Fig. 3 — DFM vs SFM, 512 GB tier; all values normalized to DRAM-DFM at the same year",
		"year", "SFM cost @20%", "SFM cost @100%", "PMem-DFM cost",
		"SFM CO2 @20%", "SFM CO2 @100%", "PMem-DFM CO2")
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.0f", p.Year),
			fmt.Sprintf("%.3f", p.SFMCost20),
			fmt.Sprintf("%.3f", p.SFMCost100),
			fmt.Sprintf("%.3f", p.PMemCost),
			fmt.Sprintf("%.3f", p.SFMEmission20),
			fmt.Sprintf("%.3f", p.SFMEmission100),
			fmt.Sprintf("%.3f", p.PMemEmission),
		)
	}
	t.AddRow("")
	t.AddRow(fmt.Sprintf("break-even: cost SFM@100%% vs DRAM-DFM = %.1f yr (paper: 8.5)", r.CostBreakEvenDRAM100))
	t.AddRow(fmt.Sprintf("break-even: emissions SFM@20%% vs PMem-DFM = %.1f yr (paper: several)", r.EmissionBreakEvenPMem20))
	t.AddRow(fmt.Sprintf("break-even: emissions SFM@20%% vs DRAM-DFM within 5 yr: %v (paper: never)", r.DRAMEmissionBreaksEvenWithin5))
	return t
}
