package experiments

import (
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/stats"
)

// Fig6Result holds the conditional-access timing derivation.
type Fig6Result struct {
	// Latency110ns is the derived single-page conditional read latency
	// at DDR5-3200 (paper: ~110 ns).
	Latency110ns float64
	// Budgets maps device name to the derived max conditional accesses
	// per tRFC (paper: 4/3/2 for 32/16/8 Gb).
	Budgets map[string]int
}

// Fig6 derives the Fig. 6b conditional-access timing from the DRAM
// timing parameters alone: the 110 ns single-page latency and the
// per-device access budgets the scheduler uses.
func Fig6() *Fig6Result {
	tm := dram.DDR5_3200()
	res := &Fig6Result{
		Latency110ns: float64(dram.ConditionalReadLatency(tm, 4096)) / float64(dram.Nanosecond),
		Budgets:      map[string]int{},
	}
	for _, dev := range dram.Table1Devices() {
		res.Budgets[dev.Name] = dram.DeriveConditionalBudget(dev)
	}
	return res
}

// Table renders the derivation.
func (r *Fig6Result) Table() *stats.Table {
	t := stats.NewTable("Fig. 6 — conditional access timing, derived from DDR5-3200 parameters",
		"quantity", "derived", "paper")
	t.AddRow("4 KiB conditional read latency",
		fmt.Sprintf("%.1f ns", r.Latency110ns), "~110 ns")
	for _, name := range []string{"8Gb", "16Gb", "32Gb"} {
		want := map[string]string{"8Gb": "2", "16Gb": "3", "32Gb": "4"}[name]
		t.AddRow(fmt.Sprintf("max conditional accesses/tRFC (%s)", name),
			fmt.Sprintf("%d", r.Budgets[name]), want)
	}
	ab, sb := dram.CompareRefreshModes(dram.Device32Gb, dram.DDR5_3200())
	t.AddRow("", "", "")
	t.AddRow("all-bank refresh busy per retention",
		fmt.Sprintf("%.2f ms", float64(ab.RefreshBusyPs)/float64(dram.Millisecond)), "~3.4 ms (8192×410ns)")
	t.AddRow("same-bank refresh busy per retention",
		fmt.Sprintf("%.2f ms", float64(sb.RefreshBusyPs)/float64(dram.Millisecond)), "higher (less efficient, §2.2)")
	return t
}
