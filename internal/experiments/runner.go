package experiments

import (
	"time"

	"xfm/internal/parallel"
	"xfm/internal/stats"
)

// RunResult is one experiment's rendered output.
type RunResult struct {
	Experiment Experiment
	Table      *stats.Table
	Elapsed    time.Duration
}

// clock is the injected wall-clock behind the Elapsed annotation. It
// is the runner's only nondeterministic input: tables are produced by
// Run(), which never reads it, so bit-identical output needs only a
// stubbed clock (see determinism_test.go). The single time.Now
// reference below is the one sanctioned wall-clock read in the
// experiments package.
var clock = time.Now //xfm:ignore sim-determinism Elapsed is a wall-clock annotation in human-facing output; tables never read it

// RunExperiments runs the given experiments on up to workers
// goroutines (0 = GOMAXPROCS, 1 = serial) and returns results aligned
// with the input order. Every experiment is a pure function of its
// inputs, so the tables are identical at any worker count; only
// wall-clock changes.
func RunExperiments(list []Experiment, workers int) []RunResult {
	out := make([]RunResult, len(list))
	parallel.ForEach(len(list), parallel.Workers(workers), func(i int) {
		start := clock()
		tbl := list[i].Run()
		out[i] = RunResult{Experiment: list[i], Table: tbl, Elapsed: clock().Sub(start)}
	})
	return out
}

// RunAll runs the full suite in paper order.
func RunAll(workers int) []RunResult {
	return RunExperiments(All(), workers)
}
