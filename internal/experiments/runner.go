package experiments

import (
	"time"

	"xfm/internal/parallel"
	"xfm/internal/stats"
)

// RunResult is one experiment's rendered output.
type RunResult struct {
	Experiment Experiment
	Table      *stats.Table
	Elapsed    time.Duration
}

// RunExperiments runs the given experiments on up to workers
// goroutines (0 = GOMAXPROCS, 1 = serial) and returns results aligned
// with the input order. Every experiment is a pure function of its
// inputs, so the tables are identical at any worker count; only
// wall-clock changes.
func RunExperiments(list []Experiment, workers int) []RunResult {
	out := make([]RunResult, len(list))
	parallel.ForEach(len(list), parallel.Workers(workers), func(i int) {
		start := time.Now()
		tbl := list[i].Run()
		out[i] = RunResult{Experiment: list[i], Table: tbl, Elapsed: time.Since(start)}
	})
	return out
}

// RunAll runs the full suite in paper order.
func RunAll(workers int) []RunResult {
	return RunExperiments(All(), workers)
}
