package experiments

import (
	"fmt"

	"xfm/internal/contention"
	"xfm/internal/stats"
)

// Plot renders Fig. 1 as bars of CPU-SFM channel bandwidth per rank
// count (XFM is identically zero).
func (r *Fig1Result) Plot() string {
	b := stats.NewBarChart("Fig. 1 — CPU-SFM channel bandwidth (GB/s); XFM = 0 at every point")
	for _, row := range r.Rows {
		b.Add(fmt.Sprintf("%d ranks (%.0f GB)", row.Ranks, row.SFMCapacityGB),
			row.CPUSFMChannelGBps, "")
	}
	return b.String()
}

// Plot renders Fig. 11 as per-mode max slowdowns.
func (r *Fig11Result) Plot() string {
	b := stats.NewBarChart("Fig. 11 — max co-runner slowdown minus 1 (×100)")
	for _, m := range contention.Modes() {
		b.Add(m.String(), (r.Results[m].MaxSlowdown()-1)*100, "")
	}
	return b.String()
}

// Plot renders Fig. 12's 100%-promotion panel as fallback-rate bars.
func (r *Fig12Result) Plot() string {
	b := stats.NewBarChart("Fig. 12 — CPU fallback rate (%) at 100% promotion")
	for _, spm := range []int{1, 2, 4, 8} {
		for _, acc := range []int{1, 2, 3} {
			if c, ok := r.Cell(1.0, spm, acc); ok {
				b.Add(fmt.Sprintf("%dMB/%dacc", spm, acc), c.FallbackRate*100, "")
			}
		}
	}
	return b.String()
}
