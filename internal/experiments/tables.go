package experiments

import (
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/energy"
	"xfm/internal/stats"
)

// Table1 renders the DDR5 device configuration table the simulator's
// device models embody (Table 1 of the paper).
func Table1() *stats.Table {
	t := stats.NewTable("Table 1 — DDR5 device configurations",
		"Device", "8Gb", "16Gb", "32Gb")
	devs := dram.Table1Devices()
	row := func(name string, f func(d dram.DeviceConfig) string) {
		cells := []string{name}
		for _, d := range devs {
			cells = append(cells, f(d))
		}
		t.AddRow(cells...)
	}
	row("#Rows per bank", func(d dram.DeviceConfig) string {
		return fmt.Sprintf("%dK", d.RowsPerBank>>10)
	})
	row("#Banks per chip", func(d dram.DeviceConfig) string {
		return fmt.Sprintf("%d", d.BanksPerChip)
	})
	row("tRFC all-bank (ns)", func(d dram.DeviceConfig) string {
		return fmt.Sprintf("%d", d.TRFC/dram.Nanosecond)
	})
	row("#Rows of a bank ref per tRFC", func(d dram.DeviceConfig) string {
		return fmt.Sprintf("%d", d.RowsPerBankPerREF)
	})
	row("#Subarrays per bank", func(d dram.DeviceConfig) string {
		return fmt.Sprintf("%d", d.SubarraysPerBank)
	})
	row("max 4KiB conditional accesses/tRFC", func(d dram.DeviceConfig) string {
		return fmt.Sprintf("%d", d.MaxConditionalPerTRFC)
	})
	return t
}

// Table2 renders the FPGA resource utilization of the prototype.
func Table2() *stats.Table {
	t := stats.NewTable("Table 2 — FPGA resource utilization of XFM (AxDIMM UltraScale+)",
		"Resource", "Used", "Total", "Percent")
	for _, r := range energy.Table2FPGAResources() {
		t.AddRow(r.Name, fmt.Sprintf("%d", r.Used), fmt.Sprintf("%d", r.Total),
			fmt.Sprintf("%.2f%%", r.Percent))
	}
	comp, decomp := energy.OpenSourceDeflateGBps()
	t.AddRow("", "", "", "")
	t.AddRow("Deflate engine", fmt.Sprintf("%.1f GB/s comp", comp),
		fmt.Sprintf("%.1f GB/s decomp", decomp), "overprovisioned")
	return t
}

// Table3 renders the power consumption breakdown.
func Table3() *stats.Table {
	p := energy.Table3Power()
	t := stats.NewTable("Table 3 — power consumption breakdown of XFM",
		"Power consumption", "Dynamic", "%", "Static", "%")
	t.AddRow(fmt.Sprintf("Total = %.3f Watts", p.TotalWatts),
		fmt.Sprintf("%.3f", p.DynamicWatts), fmt.Sprintf("%.0f", p.DynamicPct),
		fmt.Sprintf("%.3f", p.StaticWatts), fmt.Sprintf("%.0f", p.StaticPct))
	o := energy.BankModificationOverheads()
	t.AddRow("", "", "", "", "")
	t.AddRow("DRAM bank mods (CACTI)",
		fmt.Sprintf("area +%.2f%%", o.AreaFraction*100), "",
		fmt.Sprintf("power +%.3f%%", o.PowerFraction*100), "")
	return t
}
