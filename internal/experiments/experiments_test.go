package experiments

import (
	"strings"
	"testing"

	"xfm/internal/contention"
)

func TestAllExperimentsRegisteredAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite is slow")
	}
	exps := All()
	if len(exps) != 15 {
		t.Fatalf("experiments = %d, want 15", len(exps))
	}
	for _, e := range exps {
		tbl := e.Run()
		if tbl == nil || len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", e.ID)
			continue
		}
		out := tbl.String()
		if len(out) < 50 {
			t.Errorf("%s: suspiciously short output", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig11"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	r := Fig1()
	if len(r.Rows) < 4 {
		t.Fatal("too few rank points")
	}
	// CPU-SFM bandwidth grows with rank count; XFM stays at zero.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].CPUSFMChannelGBps <= r.Rows[i-1].CPUSFMChannelGBps {
			t.Error("CPU-SFM bandwidth not increasing with ranks")
		}
	}
	for _, row := range r.Rows {
		if row.XFMChannelGBps != 0 {
			t.Errorf("XFM consumes channel bandwidth at %d ranks", row.Ranks)
		}
		// Per-rank NMA demand must fit inside the refresh side channel.
		if row.PerRankNMADemandMBps > row.PerRankNMASupplyMBps {
			t.Errorf("%d ranks: NMA demand %.0f MB/s exceeds supply %.0f MB/s",
				row.Ranks, row.PerRankNMADemandMBps, row.PerRankNMASupplyMBps)
		}
	}
	// §1: 512 GB at 100% promotion reaches ~34 GB/s on the channels.
	if got := r.WorstCase512GBChannelGBps(); got < 33 || got > 35 {
		t.Errorf("worst-case 512GB bandwidth = %.1f, want ≈34", got)
	}
	// §4.3: 512 GB SFM over 8 DIMMs needs ≈426 MB/s per DIMM of NMA
	// bandwidth. Our 8-rank row carries 512 GB at 20% promotion.
	for _, row := range r.Rows {
		if row.Ranks == 8 {
			if row.PerRankNMADemandMBps < 300 || row.PerRankNMADemandMBps > 500 {
				t.Errorf("per-rank NMA demand = %.0f MB/s, §4.3 reports ≈426", row.PerRankNMADemandMBps)
			}
		}
	}
}

func TestFig6Derivation(t *testing.T) {
	r := Fig6()
	if r.Latency110ns < 105 || r.Latency110ns > 115 {
		t.Errorf("conditional read latency = %.1f ns, paper: ~110", r.Latency110ns)
	}
	for name, want := range map[string]int{"8Gb": 2, "16Gb": 3, "32Gb": 4} {
		if r.Budgets[name] != want {
			t.Errorf("%s budget = %d, want %d", name, r.Budgets[name], want)
		}
	}
}

func TestFig3Headlines(t *testing.T) {
	r := Fig3()
	if r.CostBreakEvenDRAM100 < 7 || r.CostBreakEvenDRAM100 > 10 {
		t.Errorf("cost break-even = %.1f years, paper: 8.5", r.CostBreakEvenDRAM100)
	}
	if r.EmissionBreakEvenPMem20 < 2 || r.EmissionBreakEvenPMem20 > 6 {
		t.Errorf("PMem emission break-even = %.1f years, paper: several", r.EmissionBreakEvenPMem20)
	}
	if r.DRAMEmissionBreaksEvenWithin5 {
		t.Error("SFM@20% emissions reached DRAM-DFM within 5 years; paper: never")
	}
	// Normalized SFM cost at year 0 must be below 1 (cheaper than
	// DRAM-DFM) for both promotion rates.
	p0 := r.Points[0]
	if p0.SFMCost20 >= 1 || p0.SFMCost100 >= 1 {
		t.Errorf("SFM not cheaper upfront: %.2f / %.2f", p0.SFMCost20, p0.SFMCost100)
	}
}

func TestFig8SavingsRetention(t *testing.T) {
	r := Fig8(true)
	if len(r.Rows) != 16 {
		t.Fatalf("corpora = %d, want 16", len(r.Rows))
	}
	// Shape: savings retention decreases with DIMM count and stays
	// high (paper: ~95% at 2 DIMMs, ~86% at 4).
	r2, r4 := r.MeanSavingsRetention[2], r.MeanSavingsRetention[4]
	if r2 < r4 {
		t.Errorf("2-DIMM retention %.3f below 4-DIMM %.3f", r2, r4)
	}
	if r2 < 0.85 || r2 > 1.02 {
		t.Errorf("2-DIMM savings retention = %.3f, paper ≈0.95", r2)
	}
	if r4 < 0.70 || r4 > 1.0 {
		t.Errorf("4-DIMM savings retention = %.3f, paper ≈0.86", r4)
	}
	// Every corpus: 1-DIMM ratio ≥ 4-DIMM ratio (fragmentation and
	// window shrinkage can only hurt).
	for _, row := range r.Rows {
		if row.Ratio[4] > row.Ratio[1]*1.02 {
			t.Errorf("%s: 4-DIMM ratio %.2f exceeds 1-DIMM %.2f", row.Corpus, row.Ratio[4], row.Ratio[1])
		}
	}
}

func TestFig11Headlines(t *testing.T) {
	r := Fig11()
	base := r.Results[contention.BaselineCPU]
	lock := r.Results[contention.HostLockoutNMA]
	x := r.Results[contention.XFM]
	if x.MaxSlowdown() > 1.005 {
		t.Errorf("XFM slows co-runners: %.3f", x.MaxSlowdown())
	}
	if !(lock.MaxSlowdown() > base.MaxSlowdown()) {
		t.Error("lockout should hurt SPEC more than baseline")
	}
	// Abstract: 5~27% combined improvement.
	overBase := r.CombinedImprovement(contention.BaselineCPU)
	overLock := r.CombinedImprovement(contention.HostLockoutNMA)
	for name, v := range map[string]float64{"baseline": overBase, "lockout": overLock} {
		if v < 0.02 || v > 0.30 {
			t.Errorf("combined improvement over %s = %.1f%%, paper band 5-27%%", name, v*100)
		}
	}
}

func TestFig11SimCrossCheck(t *testing.T) {
	r := Fig11Sim()
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BaselineInflation < row.XFMInflation-0.001 {
			t.Errorf("%s: baseline inflation %.3f below XFM %.3f",
				row.Name, row.BaselineInflation, row.XFMInflation)
		}
		// XFM removes the SFM stream entirely; remaining inflation is
		// only inter-workload contention, so it must be modest and the
		// baseline must add on top of it.
		if row.XFMInflation < 0.95 {
			t.Errorf("%s: XFM inflation %.3f implausibly below solo", row.Name, row.XFMInflation)
		}
	}
	anyWorse := false
	for _, row := range r.Rows {
		if row.BaselineInflation > row.XFMInflation*1.005 {
			anyWorse = true
		}
	}
	if !anyWorse {
		t.Error("SFM swap stream caused no measurable interference on any victim")
	}
}

func TestMixSweepBand(t *testing.T) {
	ms := MixSweep()
	if len(ms) < 20 {
		t.Fatalf("mix sweep produced %d points", len(ms))
	}
	lo, hi := GainBand(ms)
	// Abstract: 5~27% improvement. Our band must overlap that range
	// substantially and stay positive everywhere.
	if lo < 0 {
		t.Errorf("some mix regressed under XFM: %.3f", lo)
	}
	if hi < 0.15 || hi > 0.45 {
		t.Errorf("band top = %.1f%%, want tens of percent (abstract: 27%%)", hi*100)
	}
	if lo > 0.10 {
		t.Errorf("band bottom = %.1f%%, should reach single digits (abstract: 5%%)", lo*100)
	}
}

func TestSec32Headlines(t *testing.T) {
	r := Sec32()
	if r.MaxRuntimeIncrease < 0.02 || r.MaxRuntimeIncrease > 0.09 {
		t.Errorf("max runtime increase = %.3f, paper: up to 7.5%%", r.MaxRuntimeIncrease)
	}
	if r.AntagonistLoss < 0.04 {
		t.Errorf("antagonist loss = %.3f, paper: > 5%%", r.AntagonistLoss)
	}
}

func TestFig12Headlines(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 12 sweep is slow")
	}
	r := Fig12(true)
	if len(r.Cells) != 24 {
		t.Fatalf("cells = %d, want 24", len(r.Cells))
	}
	// Headline: 8 MB + 3 accesses eliminates fallbacks at both rates.
	for _, prom := range []float64{0.5, 1.0} {
		c, ok := r.Cell(prom, 8, 3)
		if !ok {
			t.Fatal("missing 8MB/3acc cell")
		}
		if c.FallbackRate > 0.001 {
			t.Errorf("promotion %.0f%%: 8MB/3acc fallback rate = %.4f, want ≈0", prom*100, c.FallbackRate)
		}
	}
	// Monotonicity: fallbacks shrink (weakly) with SPM size at fixed
	// accesses, and with accesses at fixed SPM.
	for _, prom := range []float64{0.5, 1.0} {
		for _, acc := range []int{1, 2, 3} {
			prev := 2.0
			for _, spm := range []int{1, 2, 4, 8} {
				c, _ := r.Cell(prom, spm, acc)
				if c.FallbackRate > prev+0.04 {
					t.Errorf("fallbacks grew with SPM at prom=%v acc=%d spm=%d", prom, acc, spm)
				}
				prev = c.FallbackRate
			}
		}
	}
	// Random-access share scales with promotion rate (§8).
	lo, _ := r.Cell(0.5, 8, 3)
	hi, _ := r.Cell(1.0, 8, 3)
	if hi.RandomFraction < lo.RandomFraction {
		t.Errorf("random share did not grow with promotion: %.3f vs %.3f",
			lo.RandomFraction, hi.RandomFraction)
	}
}

func TestEnergyHeadlines(t *testing.T) {
	r := EnergySaving(true)
	if r.MeanSaving < 0.06 || r.MeanSaving > 0.14 {
		t.Errorf("mean access-energy saving = %.3f, paper: 0.101", r.MeanSaving)
	}
	if r.DataMovementSaving < 0.68 || r.DataMovementSaving > 0.70 {
		t.Errorf("data movement saving = %.3f, paper: 0.69", r.DataMovementSaving)
	}
}

func TestCapacityHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity sweep is slow")
	}
	r := Capacity(true)
	if r.MaxCleanCapacityGB < 512 {
		t.Errorf("max fallback-free capacity = %.0f GB, paper: up to 1 TB", r.MaxCleanCapacityGB)
	}
	// The sweep must show a cliff: the largest capacity has fallbacks.
	last := r.Rows[len(r.Rows)-1]
	if last.FallbackRate == 0 {
		t.Errorf("no fallbacks even at %.0f GB; sweep should find the limit", last.CapacityGB)
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps are slow")
	}
	r := Ablations()
	if r.RandomOnlyFallback <= r.WithCondFallback {
		t.Errorf("random-only fallback %.3f not above conditional design %.3f",
			r.RandomOnlyFallback, r.WithCondFallback)
	}
	if r.AwareWriteCondShare <= r.UniformWriteCondShare {
		t.Errorf("aware placement conditional-write share %.3f not above uniform %.3f",
			r.AwareWriteCondShare, r.UniformWriteCondShare)
	}
}

func TestEmulatorComparison(t *testing.T) {
	r := Emulator()
	// Same workload, same swap decisions.
	if r.CPU.BackendStats.SwapOuts != r.XFM.BackendStats.SwapOuts {
		t.Errorf("swap-outs differ: %d vs %d",
			r.CPU.BackendStats.SwapOuts, r.XFM.BackendStats.SwapOuts)
	}
	if r.XFMOffloadRate <= 0.5 {
		t.Errorf("XFM offload rate = %.2f, want > 0.5", r.XFMOffloadRate)
	}
	if r.CPUCycleReduction <= 0 {
		t.Errorf("XFM did not reduce host cycles: %.3f", r.CPUCycleReduction)
	}
	out := r.Table().String()
	if !strings.Contains(out, "offload rate") {
		t.Error("table missing offload rate row")
	}
}
