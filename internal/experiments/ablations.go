package experiments

import (
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/nma"
	"xfm/internal/stats"
)

// AblationResult summarizes the design-decision ablations (D1, D4 in
// DESIGN.md) at the Fig. 12 operating point.
type AblationResult struct {
	// D1: conditional side channel vs a random-only interface.
	WithCondFallback   float64
	RandomOnlyFallback float64
	// D4: refresh-aware vs uninformed destination placement.
	AwareWriteCondShare   float64
	UniformWriteCondShare float64
}

// ablationRun executes the standard workload against one configuration.
func ablationRun(acc, randomPerTRFC, dstAhead int, promotion float64, seed int64) nma.Stats {
	cfg := fig12Config(8<<20, acc)
	cfg.RandomPerTRFC = randomPerTRFC
	if cfg.AccessesPerTRFC == 0 && cfg.RandomPerTRFC == 0 {
		cfg.RandomPerTRFC = 1
	}
	sim := nma.NewSim(cfg)
	traffic := fig12Traffic(512, promotion, 10, cfg, seed)
	traffic.DstAheadGroups = dstAhead
	windows := 2 * 8192
	dur := dram.Ps(windows) * cfg.Timings.TREFI
	sim.RunWindows(windows, traffic.Stream(dur))
	return sim.Stats()
}

// Ablations runs the D1 and D4 studies.
func Ablations() *AblationResult {
	res := &AblationResult{}
	// D1: remove conditional accesses entirely.
	withCond := ablationRun(3, 1, 5000, 1.0, 1)
	randomOnly := ablationRun(0, 1, 5000, 1.0, 1)
	res.WithCondFallback = withCond.FallbackRate()
	res.RandomOnlyFallback = randomOnly.FallbackRate()

	// D4: destination placement at 50% promotion.
	wcond := func(s nma.Stats) float64 {
		if s.WriteCond+s.WriteRand == 0 {
			return 0
		}
		return float64(s.WriteCond) / float64(s.WriteCond+s.WriteRand)
	}
	res.AwareWriteCondShare = wcond(ablationRun(3, 1, 1024, 0.5, 2))
	res.UniformWriteCondShare = wcond(ablationRun(3, 1, 8192, 0.5, 2))
	return res
}

// Table renders the ablations.
func (r *AblationResult) Table() *stats.Table {
	t := stats.NewTable("Design ablations (512 GB SFM over 10 ranks)",
		"ablation", "design", "alternative", "metric")
	t.AddRow("D1 conditional side channel",
		fmt.Sprintf("%.1f%%", r.WithCondFallback*100),
		fmt.Sprintf("%.1f%%", r.RandomOnlyFallback*100),
		"CPU fallback rate @100% promotion")
	t.AddRow("D4 refresh-aware placement",
		fmt.Sprintf("%.1f%%", r.AwareWriteCondShare*100),
		fmt.Sprintf("%.1f%%", r.UniformWriteCondShare*100),
		"conditional write share @50% promotion")
	return t
}
