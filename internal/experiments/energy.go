package experiments

import (
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/energy"
	"xfm/internal/nma"
	"xfm/internal/stats"
)

// EnergyRow is one promotion-rate point of the §8 energy study.
type EnergyRow struct {
	PromotionRate       float64
	ConditionalFraction float64
	AccessEnergySaving  float64
}

// EnergyResult is the sweep plus the paper's averages.
type EnergyResult struct {
	Rows []EnergyRow
	// MeanSaving is the average access-energy saving (paper: 10.1%).
	MeanSaving float64
	// DataMovementSaving is the on-DIMM vs DDR-channel saving
	// (paper: 69%).
	DataMovementSaving float64
}

// EnergySaving reproduces §8's access-energy analysis: the NMA
// scheduler is run across promotion rates, its conditional-access
// fraction measured, and the resulting energy saving computed from
// the access-energy model.
func EnergySaving(quick bool) *EnergyResult {
	windows := 2 * 8192
	if quick {
		windows = 4096
	}
	res := &EnergyResult{DataMovementSaving: energy.DataMovementSavingFraction()}
	var sum float64
	rates := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	for _, rate := range rates {
		cfg := fig12Config(8<<20, 3)
		sim := nma.NewSim(cfg)
		traffic := fig12Traffic(512, rate, 16, cfg, int64(rate*1000))
		dur := dram.Ps(windows) * cfg.Timings.TREFI
		sim.RunWindows(windows, traffic.Stream(dur))
		frac := sim.Stats().ConditionalFraction()
		saving := energy.ConditionalSavingFraction(frac, cfg.PageBytes, 2)
		res.Rows = append(res.Rows, EnergyRow{
			PromotionRate:       rate,
			ConditionalFraction: frac,
			AccessEnergySaving:  saving,
		})
		sum += saving
	}
	res.MeanSaving = sum / float64(len(rates))
	return res
}

// Table renders the study.
func (r *EnergyResult) Table() *stats.Table {
	t := stats.NewTable("§8 — NMA access energy saving from conditional accesses",
		"promotion", "conditional share", "access energy saving")
	for _, row := range r.Rows {
		t.AddRow(pct(row.PromotionRate), pct(row.ConditionalFraction), pct(row.AccessEnergySaving))
	}
	t.AddRow("", "", "")
	t.AddRow("mean saving", "", pct(r.MeanSaving)+" (paper: 10.1%)")
	t.AddRow("data movement saving", "", pct(r.DataMovementSaving)+" (paper: 69%)")
	return t
}

// CapacityRow is one capacity point of the headroom study.
type CapacityRow struct {
	CapacityGB   float64
	FallbackRate float64
}

// CapacityResult is the sweep plus the largest zero-fallback capacity.
type CapacityResult struct {
	Rows []CapacityRow
	// MaxCleanCapacityGB is the largest capacity whose fallback rate
	// stays below 0.1% — the abstract's "eliminates memory bandwidth
	// utilization ... with SFMs of capacities up to 1TB".
	MaxCleanCapacityGB float64
}

// Capacity sweeps SFM capacity at a 40% promotion rate over 16 ranks
// with the 8 MB / 3-access configuration and reports where CPU
// fallbacks (which consume host memory bandwidth) appear.
func Capacity(quick bool) *CapacityResult {
	// The overloaded points only overflow the request queue after the
	// backlog accumulates, so even the quick run needs several
	// retention walks to reach steady state.
	windows := 6 * 8192
	if quick {
		windows = 3 * 8192
	}
	res := &CapacityResult{}
	for _, capGB := range []float64{128, 256, 512, 1024, 2048} {
		cfg := fig12Config(8<<20, 3)
		sim := nma.NewSim(cfg)
		traffic := fig12Traffic(capGB, 0.40, 10, cfg, int64(capGB))
		dur := dram.Ps(windows) * cfg.Timings.TREFI
		sim.RunWindows(windows, traffic.Stream(dur))
		rate := sim.Stats().FallbackRate()
		res.Rows = append(res.Rows, CapacityRow{CapacityGB: capGB, FallbackRate: rate})
		if rate < 0.001 && capGB > res.MaxCleanCapacityGB {
			res.MaxCleanCapacityGB = capGB
		}
	}
	return res
}

// Table renders the study.
func (r *CapacityResult) Table() *stats.Table {
	t := stats.NewTable("§8 — SFM capacity headroom (40% promotion, 10 ranks, 8MB SPM, 3 acc/tRFC)",
		"capacity", "CPU fallback rate")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.0f GB", row.CapacityGB), pct(row.FallbackRate))
	}
	t.AddRow("", "")
	t.AddRow("max fallback-free capacity", fmt.Sprintf("%.0f GB (paper: up to 1 TB)", r.MaxCleanCapacityGB))
	return t
}
