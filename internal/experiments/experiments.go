// Package experiments regenerates every table and figure of the
// paper's evaluation (the per-experiment index in DESIGN.md): each
// Fig*/Table* function runs the corresponding models and simulators
// and returns both structured results and a rendered text table in
// the shape of the paper's figure.
//
// The Quick flag on parameterized experiments trades simulated time
// for speed so the full suite stays interactive; benchmarks and
// cmd/xfmbench run the full versions.
package experiments

import (
	"fmt"

	"xfm/internal/stats"
)

// Experiment names every reproducible artifact and the function that
// regenerates it.
type Experiment struct {
	ID    string // e.g. "fig11"
	Title string
	Run   func() *stats.Table
	// Plot, when non-nil, renders the experiment's headline series as
	// an ASCII bar chart (cmd/xfmbench -plot).
	Plot func() string
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Fig. 1: SFM memory bandwidth utilization vs rank count",
			Run:  func() *stats.Table { return Fig1().Table() },
			Plot: func() string { return Fig1().Plot() }},
		{ID: "fig3", Title: "Fig. 3: DFM vs SFM cost and emissions over time",
			Run: func() *stats.Table { return Fig3().Table() }},
		{ID: "fig6", Title: "Fig. 6: conditional access timing derivation",
			Run: func() *stats.Table { return Fig6().Table() }},
		{ID: "fig8", Title: "Fig. 8: compression ratio in multi-channel mode",
			Run: func() *stats.Table { return Fig8(false).Table() }},
		{ID: "fig11", Title: "Fig. 11: SPEC × SFM co-run interference",
			Run:  func() *stats.Table { return Fig11().Table() },
			Plot: func() string { return Fig11().Plot() }},
		{ID: "fig11sim", Title: "Fig. 11 (cross-check): co-run on the DRAM timing simulator",
			Run: func() *stats.Table { return Fig11Sim().Table() }},
		{ID: "fig12", Title: "Fig. 12: CPU fallbacks vs SPM size and accesses/tRFC",
			Run:  func() *stats.Table { return Fig12(false).Table() },
			Plot: func() string { return Fig12(true).Plot() }},
		{ID: "table1", Title: "Table 1: DDR5 device configurations",
			Run: Table1},
		{ID: "table2", Title: "Table 2: FPGA resource utilization",
			Run: Table2},
		{ID: "table3", Title: "Table 3: power consumption breakdown",
			Run: Table3},
		{ID: "sec32", Title: "§3.2: SPEC vs (de)compression antagonists",
			Run: func() *stats.Table { return Sec32().Table() }},
		{ID: "energy", Title: "§8: NMA access energy saving from conditional accesses",
			Run: func() *stats.Table { return EnergySaving(false).Table() }},
		{ID: "capacity", Title: "§8: SFM capacity headroom under XFM",
			Run: func() *stats.Table { return Capacity(false).Table() }},
		{ID: "emulator", Title: "§7: full-stack emulation (web front-end over XFM)",
			Run: func() *stats.Table { return Emulator().Table() }},
		{ID: "ablations", Title: "Design ablations D1/D4",
			Run: func() *stats.Table { return Ablations().Table() }},
	}
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

func pct(f float64) string  { return fmt.Sprintf("%.1f%%", f*100) }
func gbps(f float64) string { return fmt.Sprintf("%.2f GB/s", f) }
