package experiments

import (
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/energy"
	"xfm/internal/stats"
)

// Fig1Row is one point of the Fig. 1 comparison: a server with a given
// number of DRAM ranks hosting a proportionally sized SFM.
type Fig1Row struct {
	Ranks         int
	SFMCapacityGB float64
	PromotionRate float64

	// CPUSFMChannelGBps is the DDR channel bandwidth the CPU-centric
	// SFM implementation consumes (read cold + write compressed +
	// read compressed + write decompressed).
	CPUSFMChannelGBps float64
	// ChannelUtilization is that bandwidth as a share of the host's
	// channel peak.
	ChannelUtilization float64
	// XFMChannelGBps is the channel bandwidth XFM consumes (zero: NMA
	// accesses ride refresh windows).
	XFMChannelGBps float64
	// PerRankNMADemandMBps is the per-rank NMA bandwidth the SFM
	// needs under XFM.
	PerRankNMADemandMBps float64
	// PerRankNMASupplyMBps is the guaranteed per-rank bandwidth the
	// refresh side-channel provides.
	PerRankNMASupplyMBps float64
}

// Fig1Result is the full sweep.
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 reproduces the Fig. 1 comparison: CPU-centric SFM channel
// bandwidth grows with rank count (memory capacity), while XFM's
// rank-parallel side channel keeps host channel utilization at zero.
// The sweep holds the paper's shape: 64 GB of SFM per rank at a 20%
// promotion rate (§4.3's 4-channel, 2-DIMM example needs 426 MB/s of
// NMA bandwidth for a 512 GB SFM), with a 100% promotion column for
// the worst case (§1's 34 GB/s for 512 GB).
func Fig1() *Fig1Result {
	tm := dram.DDR5_3200()
	const (
		gbPerRank = 64.0
		promotion = 0.20
		channels  = 4
		ratio     = 2.0
	)
	res := &Fig1Result{}
	for _, ranks := range []int{2, 4, 8, 16, 32} {
		capGB := gbPerRank * float64(ranks)
		swap := capGB * promotion / 60 // GB/s each direction (EQ1)
		// CPU path moves each swapped byte twice uncompressed and
		// twice compressed (§3.3 footnote).
		cpuBW := swap * (2 + 2/ratio)
		peak := float64(channels) * tm.PeakBandwidthGBps()
		// NMA traffic per rank: read + write of every swapped page,
		// compressed side shrunk by the ratio.
		nmaDemand := swap * (1 + 1/ratio) * 1000 / float64(ranks) // MB/s
		nmaSupply := energy.NMABandwidthGBps(1, 4096, tm.TREFI) * 1000
		res.Rows = append(res.Rows, Fig1Row{
			Ranks:                ranks,
			SFMCapacityGB:        capGB,
			PromotionRate:        promotion,
			CPUSFMChannelGBps:    cpuBW,
			ChannelUtilization:   cpuBW / peak,
			XFMChannelGBps:       0,
			PerRankNMADemandMBps: nmaDemand,
			PerRankNMASupplyMBps: nmaSupply,
		})
	}
	return res
}

// WorstCase512GBChannelGBps returns the §1 headline: the channel
// bandwidth a 512 GB CPU-centric SFM can reach at a 100% promotion
// rate ("the memory bandwidth utilization for reading and writing
// data to memory can reach up to 34GBps").
func (r *Fig1Result) WorstCase512GBChannelGBps() float64 {
	swap := 512.0 / 60 // 100% promotion
	return swap * 4    // §3.3 footnote: 4× with ratio folded out
}

// Table renders the figure.
func (r *Fig1Result) Table() *stats.Table {
	t := stats.NewTable(
		"Fig. 1 — SFM bandwidth vs DRAM ranks (20% promotion, 64 GB/rank)",
		"ranks", "SFM GB", "CPU-SFM chan BW", "chan util", "XFM chan BW",
		"NMA demand/rank", "NMA supply/rank")
	for _, row := range r.Rows {
		t.AddRowf(row.Ranks, row.SFMCapacityGB,
			gbps(row.CPUSFMChannelGBps), pct(row.ChannelUtilization),
			gbps(row.XFMChannelGBps),
			fmtMBps(row.PerRankNMADemandMBps),
			fmtMBps(row.PerRankNMASupplyMBps))
	}
	return t
}

func fmtMBps(v float64) string { return fmt.Sprintf("%.0f MB/s", v) }
