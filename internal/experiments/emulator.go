package experiments

import (
	"fmt"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/stats"
	"xfm/internal/workload"
	"xfm/internal/xfm"
)

// EmulatorResult compares the full software stack running the web
// front-end workload over the baseline CPU backend and the XFM
// backend (§7's emulation methodology).
type EmulatorResult struct {
	CPU workload.Result
	XFM workload.Result
	// XFMOffloadRate is the share of swap operations the NMA absorbed.
	XFMOffloadRate float64
	// CPUCycleReduction is the fractional reduction in host
	// (de)compression cycles XFM achieved.
	CPUCycleReduction float64
	NMA               nma.Stats
}

// Emulator runs the synthetic web front-end twice — once over the
// zswap-style CPU backend and once over the XFM backend — and compares
// swap behavior and host cycle consumption.
func Emulator() *EmulatorResult {
	w := workload.DefaultWebFrontend()

	cpuRes, err := w.Run(sfm.NewCPUBackend(compress.NewXDeflate(), 0))
	if err != nil {
		panic(err)
	}

	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	driver := xfm.NewDriver(sim)
	mapping := memctrl.SkylakeMapping(4, 2, dram.Device32Gb)
	backend, err := xfm.NewBackend(compress.NewXDeflate(), 1<<30, driver, mapping)
	if err != nil {
		panic(err)
	}
	xfmRes, err := w.Run(backend)
	if err != nil {
		panic(err)
	}

	res := &EmulatorResult{CPU: cpuRes, XFM: xfmRes, NMA: driver.NMAStats()}
	bs := xfmRes.BackendStats
	if total := bs.Offloads + bs.Fallbacks; total > 0 {
		res.XFMOffloadRate = float64(bs.Offloads) / float64(total)
	}
	if cpuRes.BackendStats.CPUCycles > 0 {
		res.CPUCycleReduction = 1 - bs.CPUCycles/cpuRes.BackendStats.CPUCycles
	}
	return res
}

// Table renders the comparison.
func (r *EmulatorResult) Table() *stats.Table {
	t := stats.NewTable("§7 — full-stack emulation: web front-end over CPU vs XFM backends",
		"metric", "CPU backend", "XFM backend")
	row := func(name string, cpu, x interface{}) { t.AddRowf(name, cpu, x) }
	row("swap-outs", r.CPU.BackendStats.SwapOuts, r.XFM.BackendStats.SwapOuts)
	row("swap-ins", r.CPU.BackendStats.SwapIns, r.XFM.BackendStats.SwapIns)
	row("demand faults", r.CPU.HeapStats.DemandFaults, r.XFM.HeapStats.DemandFaults)
	row("prefetches", r.CPU.HeapStats.PrefetchedPages, r.XFM.HeapStats.PrefetchedPages)
	row("compression ratio",
		fmt.Sprintf("%.2f", r.CPU.BackendStats.CompressionRatio()),
		fmt.Sprintf("%.2f", r.XFM.BackendStats.CompressionRatio()))
	row("observed promotion rate", pct(r.CPU.PromotionRate), pct(r.XFM.PromotionRate))
	row("host compression cycles",
		fmt.Sprintf("%.3g", r.CPU.BackendStats.CPUCycles),
		fmt.Sprintf("%.3g", r.XFM.BackendStats.CPUCycles))
	t.AddRow("", "", "")
	t.AddRow("XFM offload rate", pct(r.XFMOffloadRate), "")
	t.AddRow("host cycle reduction", pct(r.CPUCycleReduction), "")
	t.AddRow("NMA conditional share", pct(r.NMA.ConditionalFraction()), "")
	return t
}
