package experiments

import (
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/memsim"
	"xfm/internal/stats"
)

// Fig11SimRow is one victim workload's simulated latency inflation.
type Fig11SimRow struct {
	Name              string
	BaselineInflation float64 // co-run with the SFM swap stream
	XFMInflation      float64 // co-run without it (XFM removes the stream)
}

// Fig11SimResult is the simulation-based cross-check of the analytic
// Fig. 11 model: workload streams run on the actual DRAM bank/bus
// state machines with and without the CPU-SFM swap stream.
type Fig11SimResult struct {
	Rows       []Fig11SimRow
	SFMSwapGBs float64
}

// Fig11Sim replays the Fig. 11 scenario on the timing simulator: four
// representative workload streams co-run with a page-granular SFM swap
// stream (Baseline-CPU) and without it (XFM). The analytic model's
// qualitative result — Baseline inflates memory latency, XFM does not —
// must reproduce on the detailed model.
func Fig11Sim() *Fig11SimResult {
	sys := memsim.DefaultSystem()
	swapGBps := 512 * 0.14 / 60 // Fig. 11 operating point
	dur := dram.Millisecond

	victims := []memsim.StreamSpec{
		{ID: 1, Name: "mcf-like", Pattern: memsim.Random, RateGBps: 8,
			ReqBytes: 128, Base: 0, Size: 1 << 30, Seed: 1},
		{ID: 2, Name: "lbm-like", Pattern: memsim.Sequential, RateGBps: 12,
			ReqBytes: 128, Base: 4 << 30, Size: 1 << 30, Seed: 2},
		{ID: 3, Name: "omnetpp-like", Pattern: memsim.Random, RateGBps: 5,
			ReqBytes: 128, Base: 8 << 30, Size: 1 << 30, Seed: 3},
		{ID: 4, Name: "roms-like", Pattern: memsim.Strided, RateGBps: 10,
			ReqBytes: 128, Base: 12 << 30, Size: 1 << 30, Stride: 4096, Seed: 4},
	}
	// Baseline-CPU SFM: 2 + 2/ratio × swap rate of page-granular
	// bursts (§3.3), half writes.
	sfmStream := memsim.StreamSpec{
		ID: 9, Name: "sfm-swap", Pattern: memsim.SwapBursts,
		RateGBps: swapGBps * 3, ReqBytes: 128,
		Base: 16 << 30, Size: 4 << 30, WriteShare: 0.5, Seed: 9,
	}

	baseline, err := sys.Run(append(append([]memsim.StreamSpec{}, victims...), sfmStream), dur)
	if err != nil {
		panic(err)
	}
	xfmRun, err := sys.Run(victims, dur)
	if err != nil {
		panic(err)
	}
	solo := make([]float64, len(victims))
	for i, v := range victims {
		r, err := sys.Run([]memsim.StreamSpec{v}, dur)
		if err != nil {
			panic(err)
		}
		solo[i] = r[0].MeanLatencyNs
	}

	res := &Fig11SimResult{SFMSwapGBs: swapGBps}
	for i, v := range victims {
		res.Rows = append(res.Rows, Fig11SimRow{
			Name:              v.Name,
			BaselineInflation: baseline[i].MeanLatencyNs / solo[i],
			XFMInflation:      xfmRun[i].MeanLatencyNs / solo[i],
		})
	}
	return res
}

// Table renders the cross-check.
func (r *Fig11SimResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Fig. 11 (simulation cross-check) — memory latency inflation vs solo; SFM swap %.2f GB/s",
			r.SFMSwapGBs),
		"workload", "Baseline-CPU", "XFM")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.3f", row.BaselineInflation),
			fmt.Sprintf("%.3f", row.XFMInflation))
	}
	return t
}
