package experiments

import (
	"fmt"
	"sort"

	"xfm/internal/contention"
	"xfm/internal/parallel"
	"xfm/internal/stats"
	"xfm/internal/workload"
)

// Fig11Result holds the co-run outcomes for all three SFM
// implementations.
type Fig11Result struct {
	Profiles []workload.AntagonistProfile
	Results  map[contention.Mode]contention.Result
}

// Fig11 reproduces the interference experiment (§8): eight
// memory-intensive workloads co-run with a 512 GB SFM at a 14%
// promotion rate under Baseline-CPU, Host-Lockout-NMA, and XFM.
func Fig11() *Fig11Result {
	sys := contention.DefaultSystem()
	profiles := workload.SPECLikeProfiles()
	traffic := contention.SFMTraffic{
		SwapGBps:         512 * 0.14 / 60,
		CompressionRatio: 2.0,
	}
	res := &Fig11Result{
		Profiles: profiles,
		Results:  map[contention.Mode]contention.Result{},
	}
	modes := contention.Modes()
	results := make([]contention.Result, len(modes))
	// CoRun is a pure function of its value arguments, so the three
	// modes evaluate independently; results gather by index.
	parallel.ForEach(len(modes), parallel.Workers(0), func(i int) {
		r, err := contention.CoRun(sys, profiles, traffic, modes[i])
		if err != nil {
			panic(err)
		}
		results[i] = r
	})
	for i, m := range modes {
		res.Results[m] = results[i]
	}
	return res
}

// Table renders the figure.
func (r *Fig11Result) Table() *stats.Table {
	t := stats.NewTable(
		"Fig. 11 — SPEC × SFM co-run (512 GB SFM, 14% promotion); runtime relative to solo",
		"workload", "Baseline-CPU", "Host-Lockout-NMA", "XFM")
	for i, p := range r.Profiles {
		t.AddRow(p.Name,
			fmt.Sprintf("%.3f", r.Results[contention.BaselineCPU].Slowdowns[i]),
			fmt.Sprintf("%.3f", r.Results[contention.HostLockoutNMA].Slowdowns[i]),
			fmt.Sprintf("%.3f", r.Results[contention.XFM].Slowdowns[i]))
	}
	t.AddRow("", "", "", "")
	t.AddRow("SFM throughput factor",
		fmt.Sprintf("%.3f (paper: 0.80-0.95)", r.Results[contention.BaselineCPU].SFMThroughputFactor),
		fmt.Sprintf("%.3f", r.Results[contention.HostLockoutNMA].SFMThroughputFactor),
		fmt.Sprintf("%.3f", r.Results[contention.XFM].SFMThroughputFactor))
	lo, hi := GainBand(MixSweep())
	t.AddRow("combined gain across mixes",
		fmt.Sprintf("%.0f%%-%.0f%%", lo*100, hi*100), "(abstract: 5-27%)", "")
	return t
}

// CombinedImprovement returns the improvement in combined co-running
// performance of XFM over the given mode: the abstract's "5~27%
// improvement in the combined performance of co-running applications"
// compares XFM with the CPU and lockout designs across job mixes.
func (r *Fig11Result) CombinedImprovement(over contention.Mode) float64 {
	// Combined performance = throughput of the SPEC mix × SFM
	// throughput (the paper notes SFM throughput loss multiplies into
	// job throughput).
	perf := func(res contention.Result) float64 {
		appPerf := 0.0
		for _, s := range res.Slowdowns {
			appPerf += 1 / s
		}
		appPerf /= float64(len(res.Slowdowns))
		return appPerf * res.SFMThroughputFactor
	}
	return perf(r.Results[contention.XFM])/perf(r.Results[over]) - 1
}

// Sec32Result is the §3.2 motivating antagonist experiment.
type Sec32Result struct {
	MaxRuntimeIncrease float64 // paper: up to 7.5%
	AntagonistLoss     float64 // paper: more than 5.0%
	PerWorkload        []float64
	Profiles           []workload.AntagonistProfile
}

// Sec32 reproduces §3.2's measurement: 8 LLC/memory-sensitive
// workloads co-run with two processes continuously compressing and
// decompressing 4 KiB pages.
func Sec32() *Sec32Result {
	sys := contention.DefaultSystem()
	profiles := workload.SPECLikeProfiles()
	// Two antagonist processes at software-codec speed ≈ 1 GB/s each.
	tr := contention.SFMTraffic{SwapGBps: 2.0, CompressionRatio: 2.0}
	r, err := contention.CoRun(sys, profiles, tr, contention.BaselineCPU)
	if err != nil {
		panic(err)
	}
	return &Sec32Result{
		MaxRuntimeIncrease: r.MaxSlowdown() - 1,
		AntagonistLoss:     1 - r.SFMThroughputFactor,
		PerWorkload:        r.Slowdowns,
		Profiles:           profiles,
	}
}

// Table renders the experiment.
func (r *Sec32Result) Table() *stats.Table {
	t := stats.NewTable(
		"§3.2 — SPEC co-run with two (de)compression antagonists",
		"workload", "runtime increase")
	for i, p := range r.Profiles {
		t.AddRow(p.Name, pct(r.PerWorkload[i]-1))
	}
	t.AddRow("", "")
	t.AddRow("max runtime increase", pct(r.MaxRuntimeIncrease)+" (paper: up to 7.5%)")
	t.AddRow("antagonist throughput loss", pct(r.AntagonistLoss)+" (paper: > 5.0%)")
	return t
}

// MixImprovement is XFM's combined-performance gain for one job mix
// against one alternative.
type MixImprovement struct {
	Mix  string
	Over contention.Mode
	Gain float64
}

// MixSweep evaluates XFM's combined co-run improvement across several
// job-mix configurations (§8: "The job mix configurations include
// multiple SPEC applications co-running on separate CPUs"), against
// both Baseline-CPU and Host-Lockout-NMA. The abstract's "5~27%
// improvement in the combined performance of co-running applications"
// is the spread of these gains.
func MixSweep() []MixImprovement {
	sys := contention.DefaultSystem()
	all := workload.SPECLikeProfiles()
	mixes := map[string][]workload.AntagonistProfile{
		"all-8":      all,
		"bw-heavy":   {all[1], all[5], all[6], all[7]}, // lbm/cactus/fotonik/roms
		"llc-heavy":  {all[0], all[2], all[4]},         // mcf/omnetpp/xalancbmk
		"light-pair": {all[3], all[2]},
		"single-mcf": {all[0]},
	}
	// Promotion rates bracket the evaluation's realistic operating
	// points (Google's fleet sees ~15%; the co-run experiment uses
	// 14%). Extreme promotion rates drive the lockout design off a
	// cliff and are not part of the reported band.
	rates := []float64{0.05, 0.14, 0.25}

	// Flatten the sweep into an indexed (mix, rate) job list — sorted
	// mix order so the output is deterministic regardless of map
	// iteration — and fan the independent co-runs across workers.
	mixNames := make([]string, 0, len(mixes))
	for name := range mixes { //xfm:ignore sim-determinism keys are sorted immediately below before any use
		mixNames = append(mixNames, name)
	}
	sort.Strings(mixNames)
	type job struct {
		name string
		rate float64
	}
	var jobs []job
	for _, name := range mixNames {
		for _, rate := range rates {
			jobs = append(jobs, job{name: name, rate: rate})
		}
	}
	overs := []contention.Mode{contention.BaselineCPU, contention.HostLockoutNMA}
	gains := make([][]MixImprovement, len(jobs))
	parallel.ForEach(len(jobs), parallel.Workers(0), func(ji int) {
		j := jobs[ji]
		profiles := mixes[j.name]
		traffic := contention.SFMTraffic{SwapGBps: 512 * j.rate / 60, CompressionRatio: 2.0}
		results := map[contention.Mode]contention.Result{}
		for _, m := range contention.Modes() {
			r, err := contention.CoRun(sys, profiles, traffic, m)
			if err != nil {
				panic(err)
			}
			results[m] = r
		}
		f := &Fig11Result{Profiles: profiles, Results: results}
		for _, over := range overs {
			gains[ji] = append(gains[ji], MixImprovement{
				Mix:  fmt.Sprintf("%s@%.0f%%", j.name, j.rate*100),
				Over: over,
				Gain: f.CombinedImprovement(over),
			})
		}
	})
	var out []MixImprovement
	for _, g := range gains {
		out = append(out, g...)
	}
	return out
}

// GainBand returns the (min, max) combined improvement across a sweep.
func GainBand(ms []MixImprovement) (lo, hi float64) {
	if len(ms) == 0 {
		return 0, 0
	}
	lo, hi = ms[0].Gain, ms[0].Gain
	for _, m := range ms {
		if m.Gain < lo {
			lo = m.Gain
		}
		if m.Gain > hi {
			hi = m.Gain
		}
	}
	return lo, hi
}
