package experiments

import (
	"reflect"
	"testing"
)

// TestFig8ParallelMatchesSerial pins the tentpole determinism claim:
// the per-corpus fan-out must render a table bit-identical to the
// serial reference, because rows gather by corpus index and the
// retention means accumulate serially in corpus order.
func TestFig8ParallelMatchesSerial(t *testing.T) {
	serial := Fig8Workers(true, 1)
	parallel := Fig8Workers(true, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel Fig8 result differs from serial")
	}
	if s, p := serial.Table().String(), parallel.Table().String(); s != p {
		t.Fatalf("parallel Fig8 table differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestMixSweepDeterministic: the sweep used to iterate a map; it must
// now produce the same ordered slice on every call.
func TestMixSweepDeterministic(t *testing.T) {
	a, b := MixSweep(), MixSweep()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("MixSweep is not deterministic across calls")
	}
	lo, hi := GainBand(a)
	if lo >= hi {
		t.Fatalf("degenerate gain band [%f, %f]", lo, hi)
	}
}

// TestRunExperimentsParallelMatchesSerial runs a cheap subset of the
// suite at two worker counts and requires identical rendered tables in
// identical order.
func TestRunExperimentsParallelMatchesSerial(t *testing.T) {
	var subset []Experiment
	for _, id := range []string{"fig1", "fig6", "table1", "table2", "table3", "sec32"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		subset = append(subset, e)
	}
	serial := RunExperiments(subset, 1)
	parallel := RunExperiments(subset, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Experiment.ID != parallel[i].Experiment.ID {
			t.Fatalf("result %d: order differs (%s vs %s)",
				i, serial[i].Experiment.ID, parallel[i].Experiment.ID)
		}
		if s, p := serial[i].Table.String(), parallel[i].Table.String(); s != p {
			t.Fatalf("experiment %s renders differently in parallel:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serial[i].Experiment.ID, s, p)
		}
	}
}
