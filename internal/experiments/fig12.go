package experiments

import (
	"fmt"
	"sort"

	"xfm/internal/dram"
	"xfm/internal/nma"
	"xfm/internal/stats"
	"xfm/internal/workload"
)

// Fig12Cell is one grid point of the sensitivity study.
type Fig12Cell struct {
	PromotionRate   float64
	SPMBytes        int
	AccessesPerTRFC int

	FallbackRate        float64
	ConditionalFraction float64
	RandomFraction      float64
}

// Fig12Result is the full sweep.
type Fig12Result struct {
	Cells []Fig12Cell
}

// fig12Config builds the NMA configuration for one grid point of the
// sensitivity studies (32 Gb DDR5 devices, §7/§8). The request queue
// is driver-side and deep: queue entries are page descriptors, not
// data, so waiting for a conditional window is cheap.
func fig12Config(spmBytes, accesses int) nma.Config {
	cfg := nma.DefaultConfig(dram.Device32Gb)
	cfg.SPMBytes = spmBytes
	cfg.AccessesPerTRFC = accesses
	cfg.QueueDepth = 16384
	return cfg
}

// fig12Traffic builds the promotion traffic for the sensitivity
// studies: scan-clustered sources (cold pages are selected by
// address-order scans, so consecutive requests land in consecutive
// refresh groups) and refresh-aware destinations (the allocator picks
// free slots whose rows refresh within the next ~20 ms).
func fig12Traffic(capGB, promotion float64, ranks int, cfg nma.Config, seed int64) workload.PromotionTraffic {
	return workload.PromotionTraffic{
		SFMCapacityGB:  capGB,
		PromotionRate:  promotion,
		Ranks:          ranks,
		PageBytes:      cfg.PageBytes,
		Groups:         cfg.Device.RefreshGroups(),
		Seed:           seed,
		PagesPerGroup:  2,
		RestartProb:    1.0 / 256,
		DstAheadGroups: 5000,
		TREFI:          cfg.Timings.TREFI,
	}
}

// Fig12 reproduces the CPU-fallback sensitivity study: SPM size ∈
// {1, 2, 4, 8} MB × accesses/tRFC ∈ {1, 2, 3} × promotion ∈
// {50%, 100%} for a 512 GB SFM. The paper's headline: "regardless of
// the promotion rate, an 8MB SPM can eliminate all CPU fall backs for
// an XFM implementation that accommodates 3 NMA accesses per REF
// command", with the random-access share scaling with promotion rate.
func Fig12(quick bool) *Fig12Result {
	const ranks = 10
	windows := 3 * 8192 // three full retention walks
	if quick {
		windows = 2 * 8192
	}
	res := &Fig12Result{}
	for _, promotion := range []float64{0.5, 1.0} {
		for _, spmMB := range []int{1, 2, 4, 8} {
			for _, acc := range []int{1, 2, 3} {
				cfg := fig12Config(spmMB<<20, acc)
				sim := nma.NewSim(cfg)
				traffic := fig12Traffic(512, promotion, ranks, cfg, int64(spmMB*100+acc))
				dur := dram.Ps(windows) * cfg.Timings.TREFI
				sim.RunWindows(windows, traffic.Stream(dur))
				st := sim.Stats()
				res.Cells = append(res.Cells, Fig12Cell{
					PromotionRate:       promotion,
					SPMBytes:            spmMB << 20,
					AccessesPerTRFC:     acc,
					FallbackRate:        st.FallbackRate(),
					ConditionalFraction: st.ConditionalFraction(),
					RandomFraction:      1 - st.ConditionalFraction(),
				})
			}
		}
	}
	return res
}

// Cell returns the grid point for (promotion, spmMB, accesses); ok is
// false when absent.
func (r *Fig12Result) Cell(promotion float64, spmMB, accesses int) (Fig12Cell, bool) {
	for _, c := range r.Cells {
		if c.PromotionRate == promotion && c.SPMBytes == spmMB<<20 && c.AccessesPerTRFC == accesses {
			return c, true
		}
	}
	return Fig12Cell{}, false
}

// Table renders the figure.
func (r *Fig12Result) Table() *stats.Table {
	t := stats.NewTable(
		"Fig. 12 — CPU fallbacks, 512 GB SFM over 10 ranks (fallback rate | conditional share)",
		"promotion", "SPM", "1 acc/tRFC", "2 acc/tRFC", "3 acc/tRFC")
	cells := append([]Fig12Cell(nil), r.Cells...)
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].PromotionRate != cells[j].PromotionRate {
			return cells[i].PromotionRate < cells[j].PromotionRate
		}
		return cells[i].SPMBytes < cells[j].SPMBytes
	})
	type key struct {
		prom float64
		spm  int
	}
	rows := map[key]map[int]Fig12Cell{}
	var order []key
	for _, c := range cells {
		k := key{c.PromotionRate, c.SPMBytes}
		if rows[k] == nil {
			rows[k] = map[int]Fig12Cell{}
			order = append(order, k)
		}
		rows[k][c.AccessesPerTRFC] = c
	}
	for _, k := range order {
		cellStr := func(acc int) string {
			c := rows[k][acc]
			return fmt.Sprintf("%5.1f%% | %4.1f%%", c.FallbackRate*100, c.ConditionalFraction*100)
		}
		t.AddRow(pct(k.prom), fmt.Sprintf("%dMB", k.spm>>20),
			cellStr(1), cellStr(2), cellStr(3))
	}
	return t
}
