package experiments

import (
	"fmt"

	"xfm/internal/compress"
	"xfm/internal/corpus"
	"xfm/internal/parallel"
	"xfm/internal/stats"
	"xfm/internal/xfm"
)

// Fig8Row reports one corpus's compression under the three DIMM
// configurations.
type Fig8Row struct {
	Corpus string
	Pages  int
	// Ratio[d] is the compression ratio (original/reserved, including
	// same-offset fragmentation) for the d-DIMM configuration, keyed
	// 1, 2, 4.
	Ratio map[int]float64
}

// Fig8Result is the full corpus sweep.
type Fig8Result struct {
	Rows []Fig8Row
	// MeanSavingsRetention[d] is the mean fraction of 1-DIMM space
	// savings the d-DIMM configuration preserves (paper: 86.2% of the
	// compression ratio retained for 4 DIMMs; savings drop ~5% for
	// 2 DIMMs and ~14% for 4).
	MeanSavingsRetention map[int]float64
	// MeanRatioRetention[d] is the mean ratio_d / ratio_1.
	MeanRatioRetention map[int]float64
}

// Fig8 compresses the 16 page-divided corpora at memory-channel
// interleave granularity using XFM's out-of-order compressed data
// layout (§6, Fig. 8): each DIMM compresses the 256 B chunks it holds
// with a window shrunk to its share of the page, and compressed
// pieces are placed at the same offset on every DIMM. quick reduces
// the corpus size.
func Fig8(quick bool) *Fig8Result { return Fig8Workers(quick, 0) }

// Fig8Workers is Fig8 with an explicit parallelism bound (0 =
// GOMAXPROCS, 1 = the serial reference). Each corpus is an independent
// compression job, so the corpora fan out across workers; rows are
// gathered by corpus index and the retention means are accumulated
// serially in corpus order afterwards, making the result bit-identical
// at any worker count.
func Fig8Workers(quick bool, workers int) *Fig8Result {
	corpusBytes := 512 << 10
	if quick {
		corpusBytes = 64 << 10
	}
	dimmConfigs := []int{1, 2, 4}
	newCodec := func(w int) compress.Codec { return compress.NewXDeflateWindow(w) }

	names := corpus.Names()
	rows := make([]Fig8Row, len(names))
	parallel.ForEach(len(names), parallel.Workers(workers), func(i int) {
		gen, err := corpus.Get(names[i])
		if err != nil {
			panic(err)
		}
		pages := corpus.Pages(gen(1, corpusBytes), 4096)
		row := Fig8Row{Corpus: names[i], Pages: len(pages), Ratio: map[int]float64{}}
		for _, d := range dimmConfigs {
			layout := xfm.DefaultLayout(d)
			var orig, reserved int
			for _, pg := range pages {
				cl := layout.CompressPage(pg, newCodec)
				orig += len(pg)
				reserved += cl.TotalReserved()
			}
			row.Ratio[d] = float64(orig) / float64(reserved)
		}
		rows[i] = row
	})

	res := &Fig8Result{
		Rows:                 rows,
		MeanSavingsRetention: map[int]float64{},
		MeanRatioRetention:   map[int]float64{},
	}
	sums := map[int]float64{} // savings sums
	ratioSums := map[int]float64{}
	n := 0
	for _, row := range rows {
		s1 := 1 - 1/row.Ratio[1]
		if s1 > 0 {
			n++
			for _, d := range dimmConfigs {
				sums[d] += (1 - 1/row.Ratio[d]) / s1
				ratioSums[d] += row.Ratio[d] / row.Ratio[1]
			}
		}
	}
	for _, d := range dimmConfigs {
		if n > 0 {
			res.MeanSavingsRetention[d] = sums[d] / float64(n)
			res.MeanRatioRetention[d] = ratioSums[d] / float64(n)
		}
	}
	return res
}

// Table renders the figure.
func (r *Fig8Result) Table() *stats.Table {
	t := stats.NewTable(
		"Fig. 8 — compression ratio of page-divided corpora (xdeflate, out-of-order layout)",
		"corpus", "pages", "1-DIMM", "2-DIMM", "4-DIMM")
	for _, row := range r.Rows {
		t.AddRow(row.Corpus, fmt.Sprintf("%d", row.Pages),
			fmt.Sprintf("%.2f", row.Ratio[1]),
			fmt.Sprintf("%.2f", row.Ratio[2]),
			fmt.Sprintf("%.2f", row.Ratio[4]))
	}
	t.AddRow("", "", "", "", "")
	t.AddRow("mean savings retention", "",
		"1.000",
		fmt.Sprintf("%.3f (paper ≈0.95)", r.MeanSavingsRetention[2]),
		fmt.Sprintf("%.3f (paper ≈0.86)", r.MeanSavingsRetention[4]))
	return t
}
