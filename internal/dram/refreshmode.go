package dram

// Refresh-mode comparison (§2.2): "Although recent DRAM chips support
// a selective bank refresh mode to prevent the rank from being locked
// during each refresh cycle, the all bank mode is still the most
// efficient way of refreshing rows in a semi-parallel fashion." The
// same-bank (REFsb) mode refreshes one bank group at a time: commands
// come more often and each locks less, but the total locked
// bank-time exceeds all-bank refresh because per-bank refreshes cannot
// amortize the shared peripheral work.

// RefreshMode selects the refresh command style.
type RefreshMode int

// Refresh modes.
const (
	AllBank RefreshMode = iota
	SameBank
)

func (m RefreshMode) String() string {
	if m == AllBank {
		return "all-bank"
	}
	return "same-bank"
}

// SameBankTRFC returns tRFCsb for a device: per JEDEC DDR5, the
// same-bank refresh completes faster than the all-bank command
// (roughly 0.45× tRFC for these densities) but must run once per bank
// group slice, i.e. 4× as many commands at tREFI/4 spacing.
func SameBankTRFC(dev DeviceConfig) Ps {
	return dev.TRFC * 45 / 100
}

// RefreshOverheads compares the two modes for a device over one
// retention window.
type RefreshOverheads struct {
	Mode RefreshMode
	// RankLockedPs is the total time the whole rank is inaccessible.
	RankLockedPs Ps
	// RefreshBusyPs is the total time spent executing refresh
	// commands per retention window — the paper's efficiency metric:
	// all-bank refreshes many banks per command, so it finishes the
	// same work in less command time.
	RefreshBusyPs Ps
	// Commands is the number of refresh commands issued.
	Commands int
	// XFMWindowPs is the per-command window usable by XFM's side
	// channel (the rank-locked interval for all-bank; zero for
	// same-bank, where the rank stays live for the CPU and there is no
	// host-transparent window).
	XFMWindowPs Ps
}

// CompareRefreshModes returns the overheads of all-bank and same-bank
// refresh for the device at the given timing set.
func CompareRefreshModes(dev DeviceConfig, t Timings) (allBank, sameBank RefreshOverheads) {
	refs := t.REFsPerRetention()

	allBank = RefreshOverheads{
		Mode:          AllBank,
		RankLockedPs:  Ps(refs) * dev.TRFC,
		RefreshBusyPs: Ps(refs) * dev.TRFC,
		Commands:      refs,
		XFMWindowPs:   dev.TRFC,
	}
	// Same-bank: 4 bank-group slices, each needing `refs` commands of
	// tRFCsb. tRFCsb > tRFC/4 (per-slice refreshes cannot amortize the
	// shared peripheral work), so the total command time grows.
	const slices = 4
	sbTRFC := SameBankTRFC(dev)
	sameBank = RefreshOverheads{
		Mode:          SameBank,
		RankLockedPs:  0, // the rank as a whole stays accessible
		RefreshBusyPs: Ps(refs*slices) * sbTRFC,
		Commands:      refs * slices,
		XFMWindowPs:   0,
	}
	return allBank, sameBank
}
