package dram

// Target Row Refresh (TRR) modeling (§2.2, §5). DRAM vendors reserve
// capacity within each REF command to additionally refresh the
// neighbors ("victims") of rows that have been activated with high
// frequency, mitigating Rowhammer. The paper observes (citing
// TRRespass) that "TRR cycles are only utilized if the number of
// accesses to neighbouring rows surpass a threshold which is not
// frequently seen in real scenarios. These unused refreshes can be
// utilized by XFM to perform random accesses."
//
// TRRTracker implements a sampling aggressor detector in the style of
// in-DRAM TRR: a small table of row-activation counters; rows whose
// counts cross the threshold get their neighbors refreshed in the
// next REF's TRR slots, consuming slots XFM could otherwise use.

// TRRConfig parameterizes the tracker.
type TRRConfig struct {
	// SlotsPerREF is how many victim rows one REF command can
	// additionally refresh (commodity DDR4 parts implement 1–4).
	SlotsPerREF int
	// Threshold is the activation count that flags an aggressor
	// within one retention window (real parts: tens of thousands).
	Threshold int
	// TableSize is the number of aggressor counters the sampler keeps.
	TableSize int
}

// DefaultTRRConfig returns a commodity-like configuration.
func DefaultTRRConfig() TRRConfig {
	return TRRConfig{SlotsPerREF: 2, Threshold: 32000, TableSize: 16}
}

// TRRTracker watches row activations in one bank group and decides how
// many TRR slots each REF actually needs.
type TRRTracker struct {
	cfg      TRRConfig
	counters map[int]int // row → activations this retention window
	pending  []int       // victim rows awaiting refresh
	stats    TRRStats
}

// TRRStats counts tracker activity.
type TRRStats struct {
	Activations     int64
	Aggressors      int64
	VictimRefreshes int64
	SlotsGranted    int64 // slots handed to the NMA (unused by TRR)
	SlotsUsed       int64 // slots consumed by victim refreshes
}

// NewTRRTracker builds a tracker; it panics on non-positive
// configuration, which indicates a programming error.
func NewTRRTracker(cfg TRRConfig) *TRRTracker {
	if cfg.SlotsPerREF <= 0 || cfg.Threshold <= 0 || cfg.TableSize <= 0 {
		panic("dram: invalid TRR config")
	}
	return &TRRTracker{cfg: cfg, counters: map[int]int{}}
}

// RecordActivation notes an ACT to row. When the row's count crosses
// the threshold its neighbors are scheduled for victim refresh.
func (t *TRRTracker) RecordActivation(row int) {
	t.stats.Activations++
	// Sampling table: evict the coldest entry when full (simplified
	// in-DRAM sampler).
	if _, tracked := t.counters[row]; !tracked && len(t.counters) >= t.cfg.TableSize {
		// Tie-break equal counts on the lower row index: picking the
		// first minimum the map handed out made the eviction — and with
		// it every downstream aggressor detection — depend on map
		// iteration order.
		coldest, min := -1, int(^uint(0)>>1)
		for r, c := range t.counters { //xfm:ignore sim-determinism min+row tie-break makes the fold order-insensitive
			if c < min || (c == min && r < coldest) {
				coldest, min = r, c
			}
		}
		delete(t.counters, coldest)
	}
	t.counters[row]++
	if t.counters[row] == t.cfg.Threshold {
		t.stats.Aggressors++
		t.pending = append(t.pending, row-1, row+1)
		t.counters[row] = 0
	}
}

// OnREF is called at each REF command: it performs pending victim
// refreshes up to the slot budget and returns how many TRR slots
// remain free for the NMA's random accesses (§5).
func (t *TRRTracker) OnREF() (freeSlots int) {
	slots := t.cfg.SlotsPerREF
	for slots > 0 && len(t.pending) > 0 {
		t.pending = t.pending[1:]
		t.stats.VictimRefreshes++
		t.stats.SlotsUsed++
		slots--
	}
	t.stats.SlotsGranted += int64(slots)
	return slots
}

// OnRetentionBoundary clears the activation window (counters reset
// every retention period).
func (t *TRRTracker) OnRetentionBoundary() {
	clear(t.counters)
}

// Stats returns a snapshot.
func (t *TRRTracker) Stats() TRRStats { return t.stats }

// PendingVictims returns how many victim refreshes are queued.
func (t *TRRTracker) PendingVictims() int { return len(t.pending) }
