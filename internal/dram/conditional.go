package dram

// Fig. 6b timing: a conditional read streams a 4 KiB page out of the
// two banks holding it while their rows are activated for refresh.
// This file derives, from the timing parameters alone, how long one
// conditional page access takes and how many fit in a tRFC window —
// reproducing the paper's "110 ns" example and Table 1's 4/3/2
// budgets (§5).

// conditionalChunkBytes is the data one burst slot moves during a
// conditional access in the Fig. 6b illustration: the page's two banks
// alternate, each bursting 16 B per chip × 8 chips = 128 B, so a 4 KiB
// page streams out in 32 burst slots ("tRCD + tCL + 32 × tBURST").
const conditionalChunkBytes = 128

// ConditionalReadLatency returns the time to stream one page of
// pageBytes out of a rank during a refresh window: tRCD + tCL +
// bursts × tBURST with the Fig. 6b two-bank alternation. For a 4 KiB
// page at DDR5-3200 this is 14.4 + 14.4 + 32 × 2.5 ≈ 110 ns, the
// paper's example.
func ConditionalReadLatency(t Timings, pageBytes int) Ps {
	bursts := Ps((pageBytes + conditionalChunkBytes - 1) / conditionalChunkBytes)
	return t.TRCD + t.TCL + bursts*t.TBurst
}

// conditionalStreamTime returns the steady-state cost of one
// additional conditional page access when the row-activation pipeline
// of the next access overlaps the tail of the previous burst (§5:
// "tRCD + tCL for subsequent accesses can be overlapped with the tail
// of the previous burst"): just the data-burst time.
func conditionalStreamTime(t Timings, pageBytes int) Ps {
	bursts := Ps((pageBytes + conditionalChunkBytes - 1) / conditionalChunkBytes)
	return bursts * t.TBurst
}

// MaxConditionalAccesses derives the number of pageBytes-sized
// conditional accesses that fit in one tRFC window: the first access
// pays the full ConditionalReadLatency; each further access pays only
// its burst time thanks to pipeline overlap.
func MaxConditionalAccesses(t Timings, trfc Ps, pageBytes int) int {
	first := ConditionalReadLatency(t, pageBytes)
	if trfc < first {
		return 0
	}
	n := 1
	remaining := trfc - first
	step := conditionalStreamTime(t, pageBytes)
	if step <= 0 {
		return n
	}
	n += int(remaining / step)
	return n
}

// DeriveConditionalBudget computes the Table 1 / §5 conditional access
// budget for a device: 4 KiB pages at DDR5-3200 timing with the
// device's tRFC. The paper reports 4, 3, and 2 for 32, 16, and 8 Gb
// chips.
func DeriveConditionalBudget(dev DeviceConfig) int {
	t := DDR5_3200().WithTRFC(dev.TRFC)
	return MaxConditionalAccesses(t, dev.TRFC, 4096)
}
