package dram

import "xfm/internal/telemetry"

// Process-wide DRAM metrics: refresh pressure is the resource the whole
// paper trades on (NMA compute is hidden under tRFC), so the rank layer
// exports how many all-bank refreshes fired and how long ranks spent
// locked out.
var (
	mREFs = telemetry.NewCounter("dram_refs_total",
		"All-bank REF commands issued across every rank.")
	mRefreshLockPs = telemetry.NewCounter("dram_refresh_lock_ps_total",
		"Total picoseconds ranks spent locked by refresh (tRFC windows).")
)
