package dram

import (
	"testing"
	"testing/quick"
)

func TestDeviceConfigsValid(t *testing.T) {
	for _, d := range Table1Devices() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestTable1Values(t *testing.T) {
	// Exact values from Table 1 of the paper.
	cases := []struct {
		d      DeviceConfig
		rows   int
		banks  int
		trfcNs int64
		perREF int
		subarr int
	}{
		{Device8Gb, 64 << 10, 16, 195, 8, 128},
		{Device16Gb, 64 << 10, 32, 295, 8, 128},
		{Device32Gb, 128 << 10, 32, 410, 16, 256},
	}
	for _, c := range cases {
		if c.d.RowsPerBank != c.rows {
			t.Errorf("%s rows = %d, want %d", c.d.Name, c.d.RowsPerBank, c.rows)
		}
		if c.d.BanksPerChip != c.banks {
			t.Errorf("%s banks = %d, want %d", c.d.Name, c.d.BanksPerChip, c.banks)
		}
		if c.d.TRFC != c.trfcNs*Nanosecond {
			t.Errorf("%s tRFC = %d, want %d ns", c.d.Name, c.d.TRFC, c.trfcNs)
		}
		if c.d.RowsPerBankPerREF != c.perREF {
			t.Errorf("%s rows/REF = %d, want %d", c.d.Name, c.d.RowsPerBankPerREF, c.perREF)
		}
		if c.d.SubarraysPerBank != c.subarr {
			t.Errorf("%s subarrays = %d, want %d", c.d.Name, c.d.SubarraysPerBank, c.subarr)
		}
	}
}

func TestRefreshGroupsCoverAllRows(t *testing.T) {
	for _, d := range Table1Devices() {
		if g := d.RefreshGroups(); g != 8192 {
			t.Errorf("%s: refresh groups = %d, want 8192", d.Name, g)
		}
		// Union of all groups covers [0, RowsPerBank) without overlap.
		covered := 0
		for ref := 0; ref < d.RefreshGroups(); ref++ {
			lo, hi := d.RefreshedRows(ref)
			if lo != covered {
				t.Fatalf("%s: group %d starts at %d, want %d", d.Name, ref, lo, covered)
			}
			covered = hi
		}
		if covered != d.RowsPerBank {
			t.Errorf("%s: groups cover %d rows, want %d", d.Name, covered, d.RowsPerBank)
		}
	}
}

func TestRowRefreshGroupInverse(t *testing.T) {
	d := Device32Gb
	f := func(raw uint32) bool {
		row := int(raw) % d.RowsPerBank
		g := d.RowRefreshGroup(row)
		lo, hi := d.RefreshedRows(g)
		return row >= lo && row < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRefreshedRowsInOneSubarrayPerTRFC(t *testing.T) {
	// §5: "it is safe to assume that the rows refreshed within a bank
	// each belong to a different subarray" is justified because rows
	// per REF << subarrays per bank. We check the weaker invariant the
	// model relies on: one refresh group never spans more rows than a
	// subarray holds.
	for _, d := range Table1Devices() {
		if d.RowsPerBankPerREF > d.RowsPerSubarray {
			t.Errorf("%s: refresh group (%d rows) exceeds subarray (%d rows)",
				d.Name, d.RowsPerBankPerREF, d.RowsPerSubarray)
		}
	}
}

func TestTimingPresets(t *testing.T) {
	for _, tm := range []Timings{DDR4_2400(), DDR5_3200()} {
		if tm.TRCD <= 0 || tm.TCL <= 0 || tm.TRP <= 0 || tm.TRFC <= 0 || tm.TREFI <= 0 {
			t.Errorf("%s: non-positive timing", tm.Name)
		}
		if tm.TRC < tm.TRAS {
			t.Errorf("%s: tRC < tRAS", tm.Name)
		}
		if got := tm.REFsPerRetention(); got != 8192 {
			t.Errorf("%s: REFs per retention = %d, want 8192", tm.Name, got)
		}
	}
	d5 := DDR5_3200()
	if d5.Retention != 32*Millisecond {
		t.Errorf("DDR5 retention = %d, want 32 ms", d5.Retention)
	}
	if d5.TBurst != 2500 {
		t.Errorf("DDR5 tBURST = %d ps, want 2500 (2.5 ns)", d5.TBurst)
	}
	if bw := d5.PeakBandwidthGBps(); bw < 25 || bw > 26 {
		t.Errorf("DDR5-3200 peak bandwidth = %.1f GB/s, want ~25.6", bw)
	}
}

func TestRefreshDutyCycleMatchesPaper(t *testing.T) {
	// §4.3: tRFC 300 ns, 8192 REFs per 32 ms ⇒ rank locked ~2.46 ms,
	// ~8% of cycles.
	tm := DDR5_3200().WithTRFC(300 * Nanosecond)
	duty := tm.RefreshDutyCycle()
	if duty < 0.07 || duty > 0.085 {
		t.Errorf("refresh duty cycle = %.4f, want ≈0.077 (~8%%)", duty)
	}
	locked := float64(tm.TRFC) * 8192 / float64(Millisecond)
	if locked < 2.4 || locked > 2.5 {
		t.Errorf("locked time = %.2f ms per 32 ms, want ≈2.46", locked)
	}
}

func TestBankActivateReadTiming(t *testing.T) {
	tm := DDR5_3200()
	var b Bank
	at := b.Activate(0, 7, tm)
	if at != 0 {
		t.Fatalf("first ACT at %d, want 0", at)
	}
	if b.State() != BankActive || b.OpenRow() != 7 {
		t.Fatalf("bank not active on row 7")
	}
	issue, done := b.Read(0, tm)
	if issue != tm.TRCD {
		t.Errorf("RD issued at %d, want tRCD %d", issue, tm.TRCD)
	}
	if done != tm.TRCD+tm.TCL+tm.TBurst {
		t.Errorf("data done at %d, want %d", done, tm.TRCD+tm.TCL+tm.TBurst)
	}
}

func TestBankBackToBackReadsPipelineAtBurst(t *testing.T) {
	tm := DDR5_3200()
	var b Bank
	b.Activate(0, 0, tm)
	_, d1 := b.Read(0, tm)
	_, d2 := b.Read(0, tm)
	if d2-d1 != tm.TBurst {
		t.Errorf("burst gap = %d, want tBURST %d", d2-d1, tm.TBurst)
	}
}

func TestBankPrechargeThenActivate(t *testing.T) {
	tm := DDR5_3200()
	var b Bank
	b.Activate(0, 1, tm)
	done := b.Precharge(0, tm)
	// PRE cannot issue before tRAS.
	if done != tm.TRAS+tm.TRP {
		t.Errorf("precharge done at %d, want tRAS+tRP = %d", done, tm.TRAS+tm.TRP)
	}
	at := b.Activate(done, 2, tm)
	if at < done {
		t.Errorf("ACT at %d before precharge done %d", at, done)
	}
	if at < tm.TRC {
		t.Errorf("ACT-to-ACT gap %d violates tRC %d", at, tm.TRC)
	}
}

func TestRankAccessRowHitVsMiss(t *testing.T) {
	r := NewRank(Device8Gb, DDR5_3200())
	done1, hit1 := r.Access(0, 0, 100, Read)
	if hit1 {
		t.Error("first access should be a row miss")
	}
	done2, hit2 := r.Access(done1, 0, 100, Read)
	if !hit2 {
		t.Error("second access to same row should hit")
	}
	done3, hit3 := r.Access(done2, 0, 200, Read)
	if hit3 {
		t.Error("different row should miss")
	}
	if !(done3 > done2 && done2 > done1) {
		t.Errorf("times not monotonic: %d %d %d", done1, done2, done3)
	}
	// Row hit should be cheaper than row conflict.
	hitCost := done2 - done1
	missCost := done3 - done2
	if hitCost >= missCost {
		t.Errorf("hit cost %d not cheaper than conflict cost %d", hitCost, missCost)
	}
}

func TestRankRefreshBlocksAccesses(t *testing.T) {
	tm := DDR5_3200()
	r := NewRank(Device8Gb, tm)
	// Jump past the first scheduled REF: access at t = tREFI + 1 ns.
	at := tm.TREFI + Nanosecond
	done, _ := r.Access(at, 0, 0, Read)
	// REF fired at tREFI and locks until tREFI + tRFC; data can only
	// complete after the lock plus access latency.
	minDone := tm.TREFI + tm.TRFC + tm.TRCD + tm.TCL + tm.TBurst
	if done < minDone {
		t.Errorf("access during refresh completed at %d, want ≥ %d", done, minDone)
	}
	if r.Stats().REFs != 1 {
		t.Errorf("REFs = %d, want 1", r.Stats().REFs)
	}
}

func TestRankRefreshCounterWalksGroups(t *testing.T) {
	tm := DDR5_3200()
	r := NewRank(Device8Gb, tm)
	var prevEnd Ps
	for i := 0; i < 10; i++ {
		w := r.ForceRefresh(prevEnd)
		lo, hi := Device8Gb.RefreshedRows(i)
		if w.RowLo != lo || w.RowHi != hi {
			t.Fatalf("window %d rows [%d,%d), want [%d,%d)", i, w.RowLo, w.RowHi, lo, hi)
		}
		if w.End-w.Start != tm.TRFC {
			t.Fatalf("window %d duration %d, want tRFC", i, w.End-w.Start)
		}
		if w.Start < prevEnd {
			t.Fatalf("window %d overlaps previous", i)
		}
		prevEnd = w.End
	}
}

func TestRefreshWindowContains(t *testing.T) {
	w := RefreshWindow{RowLo: 16, RowHi: 24}
	for _, tc := range []struct {
		row  int
		want bool
	}{{15, false}, {16, true}, {23, true}, {24, false}} {
		if got := w.Contains(tc.row); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.row, got, tc.want)
		}
	}
}

func TestRankOpenRowAcrossRefreshIsClosed(t *testing.T) {
	tm := DDR5_3200()
	r := NewRank(Device8Gb, tm)
	r.Access(0, 3, 50, Read) // opens row 50 in bank 3
	r.ForceRefresh(Microsecond)
	if r.Bank(3).State() != BankPrecharged {
		t.Error("refresh should leave banks precharged")
	}
}

func TestRankAccessPanicsOnBadAddress(t *testing.T) {
	r := NewRank(Device8Gb, DDR5_3200())
	for _, tc := range []struct{ bank, row int }{
		{-1, 0}, {16, 0}, {0, -1}, {0, 64 << 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Access(bank=%d,row=%d) did not panic", tc.bank, tc.row)
				}
			}()
			r.Access(0, tc.bank, tc.row, Read)
		}()
	}
}

func TestRankStatsAccounting(t *testing.T) {
	r := NewRank(Device8Gb, DDR5_3200())
	var now Ps
	for i := 0; i < 10; i++ {
		now, _ = r.Access(now, 0, 0, Read)
	}
	for i := 0; i < 5; i++ {
		now, _ = r.Access(now, 1, 1, Write)
	}
	s := r.Stats()
	if s.ReadBursts != 10 || s.WriteBursts != 5 {
		t.Errorf("bursts = %d/%d, want 10/5", s.ReadBursts, s.WriteBursts)
	}
	if s.RowHits != 9+4 {
		t.Errorf("row hits = %d, want 13", s.RowHits)
	}
	if s.RowMisses != 2 {
		t.Errorf("row misses = %d, want 2", s.RowMisses)
	}
}

// TestPropertyAccessTimesMonotonic: issuing accesses at nondecreasing
// times yields nondecreasing completion times, across random banks and
// rows, with refreshes interleaved.
func TestPropertyAccessTimesMonotonic(t *testing.T) {
	f := func(ops []uint32) bool {
		r := NewRank(Device16Gb, DDR5_3200())
		var now, lastDone Ps
		for _, op := range ops {
			bank := int(op>>16) % Device16Gb.BanksPerChip
			row := int(op) % Device16Gb.RowsPerBank
			kind := Read
			if op&1 == 1 {
				kind = Write
			}
			done, _ := r.Access(now, bank, row, kind)
			if done < lastDone && bank == int(op>>16)%Device16Gb.BanksPerChip {
				// Different banks may overlap; completion on the same
				// bank must not go backwards. We conservatively only
				// advance `now`, so done can interleave across banks.
				_ = done
			}
			if done > lastDone {
				lastDone = done
			}
			now += Ps(op % 1000)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRankAccess(b *testing.B) {
	r := NewRank(Device32Gb, DDR5_3200())
	var now Ps
	for i := 0; i < b.N; i++ {
		now, _ = r.Access(now, i%32, (i*37)%Device32Gb.RowsPerBank, Read)
	}
}
