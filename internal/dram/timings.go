// Package dram models the DRAM main-memory hierarchy the paper builds
// on (§2.2): channels of ranks, ranks of banks, banks of subarrays and
// rows, with a command-level timing model (ACT/RD/WR/PRE/REF), an
// all-bank auto-refresh state machine, and the XFM bank extension that
// allows parallel refresh and subarray access within one bank (Fig. 7).
//
// The timing model follows the paper's methodology (§7): a cycle-
// approximate model in the style of gem5's DDR4-2400 interface, with a
// 32 ms retention time, tRFC = 410 ns for the DDR5 32 Gb device, and
// tBURST = 2.5 ns.
package dram

import "fmt"

// Ps is a simulation timestamp or duration in picoseconds. Integer
// picoseconds keep the model deterministic and exact for the
// sub-nanosecond DDR timings (tBURST = 2.5 ns).
type Ps = int64

// Convenient duration units in picoseconds.
const (
	Nanosecond  Ps = 1000
	Microsecond Ps = 1000 * Nanosecond
	Millisecond Ps = 1000 * Microsecond
	Second      Ps = 1000 * Millisecond
)

// Timings is a DDR timing parameter set. All durations are in
// picoseconds.
type Timings struct {
	Name string

	TCK    Ps // clock period
	TRCD   Ps // ACT to RD/WR
	TCL    Ps // RD to first data
	TCWL   Ps // WR to first data
	TRP    Ps // PRE to ACT
	TRAS   Ps // ACT to PRE
	TRC    Ps // ACT to ACT, same bank
	TRFC   Ps // REF to next command (all-bank refresh)
	TREFI  Ps // average interval between REF commands
	TBurst Ps // data burst duration on the bus
	TSTAG  Ps // stagger between per-bank refresh starts (§2.2)

	Retention Ps // row retention time (~32 ms)

	// DataRateMTs is the transfer rate in mega-transfers/s, for
	// documentation and bandwidth math.
	DataRateMTs int
	// BusBytes is the data bus width of a rank in bytes (8 for x64).
	BusBytes int
	// BurstBytes is the number of bytes one burst moves (BusBytes ×
	// burst length).
	BurstBytes int
}

// PeakBandwidthGBps returns the theoretical peak bandwidth of one
// channel in GB/s.
func (t Timings) PeakBandwidthGBps() float64 {
	return float64(t.DataRateMTs) * 1e6 * float64(t.BusBytes) / 1e9
}

// REFsPerRetention returns how many REF commands are issued per
// retention interval (8192 for standard devices).
func (t Timings) REFsPerRetention() int {
	return int(t.Retention / t.TREFI)
}

// RefreshDutyCycle returns the fraction of time a rank is locked by
// all-bank refresh: tRFC/tREFI (§4.3 computes ≈8% for tRFC = 300 ns).
func (t Timings) RefreshDutyCycle() float64 {
	return float64(t.TRFC) / float64(t.TREFI)
}

// DDR4_2400 returns the DDR4-2400 (CL17) timing set used by the
// paper's emulator, matching gem5's DDR4-2400 interface. tRFC is for
// an 8 Gb device.
func DDR4_2400() Timings {
	return Timings{
		Name:        "DDR4-2400",
		TCK:         833,
		TRCD:        14160,
		TCL:         14160,
		TCWL:        10410,
		TRP:         14160,
		TRAS:        32000,
		TRC:         46160,
		TRFC:        350 * Nanosecond,
		TREFI:       64 * Millisecond / 8192, // 7.8125 us
		TBurst:      3333,                    // BL8 at 2400 MT/s
		TSTAG:       10 * Nanosecond,
		Retention:   64 * Millisecond,
		DataRateMTs: 2400,
		BusBytes:    8,
		BurstBytes:  64,
	}
}

// DDR5_3200 returns the DDR5-3200 timing set from the paper's
// evaluation (§7): 32 ms retention, tRFC = 410 ns (32 Gb all-bank),
// tBURST = 2.5 ns.
func DDR5_3200() Timings {
	return Timings{
		Name:        "DDR5-3200",
		TCK:         625,
		TRCD:        14375,
		TCL:         14375,
		TCWL:        11875,
		TRP:         14375,
		TRAS:        32000,
		TRC:         46375,
		TRFC:        410 * Nanosecond,
		TREFI:       32 * Millisecond / 8192, // 3.90625 us
		TBurst:      2500,                    // BL16 at 3200 MT/s, 16 B/chip burst
		TSTAG:       10 * Nanosecond,
		Retention:   32 * Millisecond,
		DataRateMTs: 3200,
		BusBytes:    8,
		BurstBytes:  64,
	}
}

// WithTRFC returns a copy of t with tRFC replaced, used for device
// capacity sweeps (Table 1 ties tRFC to chip capacity).
func (t Timings) WithTRFC(trfc Ps) Timings {
	t.TRFC = trfc
	return t
}

// DeviceConfig describes a DRAM chip generation (Table 1 of the paper)
// plus derived refresh/subarray geometry.
type DeviceConfig struct {
	Name              string
	CapacityGbit      int
	RowsPerBank       int
	BanksPerChip      int
	TRFC              Ps  // all-bank refresh duration
	RowsPerBankPerREF int // rows of one bank refreshed during one tRFC
	SubarraysPerBank  int
	RowsPerSubarray   int
	// MaxConditionalPerTRFC is the maximum number of 4 KiB conditional
	// page accesses per tRFC window (§5, Fig. 6: 4/3/2 for 32/16/8 Gb).
	MaxConditionalPerTRFC int
	// ChipRowBytes is the row (page) size of one chip in bytes.
	ChipRowBytes int
}

// The three DDR5 device configurations of Table 1.
var (
	Device8Gb = DeviceConfig{
		Name: "8Gb", CapacityGbit: 8,
		RowsPerBank: 64 << 10, BanksPerChip: 16,
		TRFC: 195 * Nanosecond, RowsPerBankPerREF: 8,
		SubarraysPerBank: 128, RowsPerSubarray: 512,
		MaxConditionalPerTRFC: 2, ChipRowBytes: 1024,
	}
	Device16Gb = DeviceConfig{
		Name: "16Gb", CapacityGbit: 16,
		RowsPerBank: 64 << 10, BanksPerChip: 32,
		TRFC: 295 * Nanosecond, RowsPerBankPerREF: 8,
		SubarraysPerBank: 128, RowsPerSubarray: 512,
		MaxConditionalPerTRFC: 3, ChipRowBytes: 1024,
	}
	Device32Gb = DeviceConfig{
		Name: "32Gb", CapacityGbit: 32,
		RowsPerBank: 128 << 10, BanksPerChip: 32,
		TRFC: 410 * Nanosecond, RowsPerBankPerREF: 16,
		SubarraysPerBank: 256, RowsPerSubarray: 512,
		MaxConditionalPerTRFC: 4, ChipRowBytes: 1024,
	}
)

// Table1Devices returns the Table 1 device set in capacity order.
func Table1Devices() []DeviceConfig {
	return []DeviceConfig{Device8Gb, Device16Gb, Device32Gb}
}

// Validate checks internal consistency of the configuration.
func (d DeviceConfig) Validate() error {
	if d.RowsPerBank <= 0 || d.BanksPerChip <= 0 || d.SubarraysPerBank <= 0 {
		return fmt.Errorf("dram: %s: non-positive geometry", d.Name)
	}
	if d.RowsPerSubarray*d.SubarraysPerBank != d.RowsPerBank {
		return fmt.Errorf("dram: %s: subarrays (%d×%d) do not cover rows per bank (%d)",
			d.Name, d.SubarraysPerBank, d.RowsPerSubarray, d.RowsPerBank)
	}
	bits := int64(d.RowsPerBank) * int64(d.BanksPerChip) * int64(d.ChipRowBytes) * 8
	if bits != int64(d.CapacityGbit)<<30 {
		return fmt.Errorf("dram: %s: geometry yields %d bits, want %d Gbit", d.Name, bits, d.CapacityGbit)
	}
	return nil
}

// SubarrayOfRow returns the subarray index containing row.
func (d DeviceConfig) SubarrayOfRow(row int) int { return row / d.RowsPerSubarray }

// RefreshGroups returns the number of REF commands needed to walk all
// rows of a bank once (the refresh counter modulus).
func (d DeviceConfig) RefreshGroups() int {
	return d.RowsPerBank / d.RowsPerBankPerREF
}

// RefreshedRows returns the half-open row interval [lo, hi) of every
// bank refreshed by REF command number ref (taken modulo the refresh
// group count).
func (d DeviceConfig) RefreshedRows(ref int) (lo, hi int) {
	g := ref % d.RefreshGroups()
	lo = g * d.RowsPerBankPerREF
	return lo, lo + d.RowsPerBankPerREF
}

// RowRefreshGroup returns the REF index (mod RefreshGroups) during
// which row is refreshed.
func (d DeviceConfig) RowRefreshGroup(row int) int {
	return row / d.RowsPerBankPerREF
}
