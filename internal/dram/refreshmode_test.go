package dram

import "testing"

func TestSameBankLessEfficientOverall(t *testing.T) {
	// §2.2: all-bank is "the most efficient way of refreshing rows in
	// a semi-parallel fashion" — same-bank mode spends more total
	// command time refreshing the same rows.
	for _, dev := range Table1Devices() {
		tm := DDR5_3200().WithTRFC(dev.TRFC)
		ab, sb := CompareRefreshModes(dev, tm)
		if sb.RefreshBusyPs <= ab.RefreshBusyPs {
			t.Errorf("%s: same-bank command time %d not above all-bank %d",
				dev.Name, sb.RefreshBusyPs, ab.RefreshBusyPs)
		}
		if sb.Commands != 4*ab.Commands {
			t.Errorf("%s: same-bank commands = %d, want 4×%d", dev.Name, sb.Commands, ab.Commands)
		}
	}
}

func TestSameBankAvoidsRankLockout(t *testing.T) {
	ab, sb := CompareRefreshModes(Device32Gb, DDR5_3200())
	if sb.RankLockedPs != 0 {
		t.Errorf("same-bank locks the rank for %d ps", sb.RankLockedPs)
	}
	if ab.RankLockedPs == 0 {
		t.Error("all-bank should lock the rank")
	}
}

func TestOnlyAllBankGivesXFMWindows(t *testing.T) {
	// XFM's side channel exists precisely because all-bank refresh
	// makes the rank CPU-inaccessible (§4.3); same-bank mode provides
	// no host-transparent window.
	ab, sb := CompareRefreshModes(Device32Gb, DDR5_3200())
	if ab.XFMWindowPs != Device32Gb.TRFC {
		t.Errorf("all-bank XFM window = %d, want tRFC", ab.XFMWindowPs)
	}
	if sb.XFMWindowPs != 0 {
		t.Errorf("same-bank XFM window = %d, want 0", sb.XFMWindowPs)
	}
}

func TestSameBankTRFCShorter(t *testing.T) {
	for _, dev := range Table1Devices() {
		if got := SameBankTRFC(dev); got >= dev.TRFC || got <= 0 {
			t.Errorf("%s: tRFCsb = %d vs tRFC %d", dev.Name, got, dev.TRFC)
		}
	}
}

func TestRefreshModeStrings(t *testing.T) {
	if AllBank.String() != "all-bank" || SameBank.String() != "same-bank" {
		t.Error("mode strings wrong")
	}
}
