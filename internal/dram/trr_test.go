package dram

import (
	"math/rand"
	"testing"
)

func TestTRRIdleWorkloadGrantsAllSlots(t *testing.T) {
	// §5: "TRR cycles are only utilized if the number of accesses to
	// neighbouring rows surpass a threshold which is not frequently
	// seen in real scenarios. These unused refreshes can be utilized
	// by XFM."
	tr := NewTRRTracker(DefaultTRRConfig())
	rng := rand.New(rand.NewSource(1))
	// A realistic access pattern: activations spread over many rows,
	// none anywhere near the threshold.
	for i := 0; i < 100000; i++ {
		tr.RecordActivation(rng.Intn(1 << 17))
	}
	free := 0
	for ref := 0; ref < 8192; ref++ {
		free += tr.OnREF()
	}
	want := 8192 * DefaultTRRConfig().SlotsPerREF
	if free != want {
		t.Errorf("free TRR slots = %d, want all %d under a benign workload", free, want)
	}
	if tr.Stats().Aggressors != 0 {
		t.Errorf("benign workload flagged %d aggressors", tr.Stats().Aggressors)
	}
}

func TestTRRHammeringConsumesSlots(t *testing.T) {
	cfg := DefaultTRRConfig()
	cfg.Threshold = 1000
	tr := NewTRRTracker(cfg)
	// Rowhammer-style: hammer one row far past the threshold.
	for i := 0; i < 5000; i++ {
		tr.RecordActivation(42)
	}
	st := tr.Stats()
	if st.Aggressors < 5 {
		t.Errorf("aggressor detections = %d, want ≥ 5 (5000 ACTs / 1000 threshold)", st.Aggressors)
	}
	if tr.PendingVictims() == 0 {
		t.Fatal("no victim refreshes queued")
	}
	free := tr.OnREF()
	if free != 0 {
		t.Errorf("REF under hammering granted %d free slots, want 0", free)
	}
	if tr.Stats().VictimRefreshes == 0 {
		t.Error("no victim refreshes performed")
	}
}

func TestTRRVictimsAreNeighbors(t *testing.T) {
	cfg := DefaultTRRConfig()
	cfg.Threshold = 10
	tr := NewTRRTracker(cfg)
	for i := 0; i < 10; i++ {
		tr.RecordActivation(100)
	}
	if got := tr.PendingVictims(); got != 2 {
		t.Fatalf("pending victims = %d, want 2 (rows 99 and 101)", got)
	}
}

func TestTRRRetentionBoundaryResetsCounters(t *testing.T) {
	cfg := DefaultTRRConfig()
	cfg.Threshold = 100
	tr := NewTRRTracker(cfg)
	for i := 0; i < 99; i++ {
		tr.RecordActivation(7)
	}
	tr.OnRetentionBoundary()
	// One more activation must not cross the threshold after reset.
	tr.RecordActivation(7)
	if tr.Stats().Aggressors != 0 {
		t.Error("counter survived retention boundary")
	}
}

func TestTRRSamplerEvictsColdest(t *testing.T) {
	cfg := DefaultTRRConfig()
	cfg.TableSize = 2
	cfg.Threshold = 3
	tr := NewTRRTracker(cfg)
	tr.RecordActivation(1)
	tr.RecordActivation(1)
	tr.RecordActivation(2) // table now {1:2, 2:1}
	tr.RecordActivation(3) // evicts row 2 (coldest)
	tr.RecordActivation(1) // row 1 hits threshold 3
	if tr.Stats().Aggressors != 1 {
		t.Errorf("aggressors = %d, want 1", tr.Stats().Aggressors)
	}
}

func TestTRRInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid TRR config did not panic")
		}
	}()
	NewTRRTracker(TRRConfig{})
}
