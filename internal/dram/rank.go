package dram

import (
	"fmt"

	"xfm/internal/telemetry"
)

// Rank models one DRAM rank: a set of banks acting in lockstep across
// the chips of the rank, plus the all-bank auto-refresh state machine
// (refresh counter, tREFI scheduling, tRFC lockout).
type Rank struct {
	cfg DeviceConfig
	t   Timings

	banks []Bank

	refCounter  int // number of REF commands issued so far
	nextREFAt   Ps
	lockedUntil Ps // end of the current tRFC window, 0 when unlocked

	stats RankStats

	tracer   *telemetry.Tracer
	telTrack int
}

// RankStats aggregates rank-level counters.
type RankStats struct {
	REFs           int64
	RowHits        int64
	RowMisses      int64
	ReadBursts     int64
	WriteBursts    int64
	RefreshLockPs  Ps // total time the rank spent locked by refresh
	StallOnRefresh int64
}

// NewRank builds a rank of cfg-shaped banks with timing set t. The
// refresh schedule starts at one tREFI after time zero.
func NewRank(cfg DeviceConfig, t Timings) *Rank {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Rank{
		cfg:       cfg,
		t:         t,
		banks:     make([]Bank, cfg.BanksPerChip),
		nextREFAt: t.TREFI,
		tracer:    telemetry.DefaultTracer(),
		telTrack:  -1,
	}
}

// SetTracer redirects this rank's refresh spans to tr (nil disables
// them); the default is the process-wide tracer.
func (r *Rank) SetTracer(tr *telemetry.Tracer) {
	r.tracer = tr
	r.telTrack = -1
}

// Config returns the rank's device configuration.
func (r *Rank) Config() DeviceConfig { return r.cfg }

// Timings returns the rank's timing set.
func (r *Rank) Timings() Timings { return r.t }

// NumBanks returns the number of banks in the rank.
func (r *Rank) NumBanks() int { return len(r.banks) }

// Bank returns bank i for inspection.
func (r *Rank) Bank(i int) *Bank { return &r.banks[i] }

// Stats returns a snapshot of rank counters.
func (r *Rank) Stats() RankStats { return r.stats }

// RefCounter returns the number of REF commands issued so far.
func (r *Rank) RefCounter() int { return r.refCounter }

// NextRefreshAt returns the scheduled time of the next REF command.
func (r *Rank) NextRefreshAt() Ps { return r.nextREFAt }

// LockedUntil returns the end of the current refresh lockout, or 0
// when the rank is not refreshing.
func (r *Rank) LockedUntil() Ps { return r.lockedUntil }

// RefreshWindow describes one all-bank refresh (one tRFC): during
// [Start, End) the rank is inaccessible to the CPU and the NMA may use
// the conditional/random side channel (§4.3).
type RefreshWindow struct {
	Ref        int // REF command index
	Start, End Ps
	// RowLo, RowHi bound the rows refreshed in every bank: [RowLo, RowHi).
	RowLo, RowHi int
}

// Contains reports whether row is refreshed during this window, and is
// therefore reachable by a conditional access.
func (w RefreshWindow) Contains(row int) bool {
	return row >= w.RowLo && row < w.RowHi
}

// MaybeRefresh issues a REF if its scheduled time has arrived by now,
// returning the window and true, or a zero window and false. The
// caller (memory controller) drives this before issuing CPU commands.
func (r *Rank) MaybeRefresh(now Ps) (RefreshWindow, bool) {
	if now < r.nextREFAt {
		return RefreshWindow{}, false
	}
	start := r.nextREFAt
	// If a bank is mid-operation the REF waits; model by starting at
	// the latest bank-ready instant.
	for i := range r.banks {
		b := &r.banks[i]
		if b.state == BankActive {
			// Refresh implies precharge-all first.
			done := b.Precharge(start, r.t)
			if done > start {
				start = done
			}
		}
	}
	w := r.refreshAt(start)
	return w, true
}

// ForceRefresh issues the next REF at exactly time at, regardless of
// schedule (used by tests and the NMA-side scheduler replay).
func (r *Rank) ForceRefresh(at Ps) RefreshWindow {
	for i := range r.banks {
		if r.banks[i].state == BankActive {
			r.banks[i].Precharge(at, r.t)
		}
	}
	return r.refreshAt(at)
}

func (r *Rank) refreshAt(start Ps) RefreshWindow {
	lo, hi := r.cfg.RefreshedRows(r.refCounter)
	end := start + r.t.TRFC
	for i := range r.banks {
		r.banks[i].forceClose()
		r.banks[i].blockUntil(end)
	}
	w := RefreshWindow{Ref: r.refCounter, Start: start, End: end, RowLo: lo, RowHi: hi}
	r.refCounter++
	r.nextREFAt += r.t.TREFI
	if r.nextREFAt < end {
		r.nextREFAt = end
	}
	r.lockedUntil = end
	r.stats.REFs++
	r.stats.RefreshLockPs += r.t.TRFC
	mREFs.Inc()
	mRefreshLockPs.Add(int64(r.t.TRFC))
	if r.tracer != nil && r.tracer.Enabled() {
		if r.telTrack < 0 {
			r.telTrack = r.tracer.NewTrack("dram-rank")
		}
		r.tracer.Span(r.telTrack, "refresh", "dram", int64(start), int64(end), map[string]int64{
			"ref":    int64(w.Ref),
			"row_lo": int64(lo),
			"row_hi": int64(hi),
		})
	}
	return w
}

// AccessKind distinguishes reads from writes.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Read {
		return "RD"
	}
	return "WR"
}

// Access performs one burst access (BurstBytes) to (bank, row) at the
// earliest legal time ≥ now, handling row-buffer management (PRE+ACT
// on a conflict, ACT on an empty buffer). It returns the time the data
// transfer completes on the bus. Refresh lockout is respected because
// REF blocks all bank commands until the window ends.
func (r *Rank) Access(now Ps, bank, row int, kind AccessKind) (done Ps, rowHit bool) {
	if bank < 0 || bank >= len(r.banks) {
		panic(fmt.Sprintf("dram: bank %d out of range [0,%d)", bank, len(r.banks)))
	}
	if row < 0 || row >= r.cfg.RowsPerBank {
		panic(fmt.Sprintf("dram: row %d out of range [0,%d)", row, r.cfg.RowsPerBank))
	}
	// Serve any due refresh first: the controller must not delay REF
	// past its deadline in this model.
	for {
		if _, ok := r.MaybeRefresh(now); !ok {
			break
		}
	}
	b := &r.banks[bank]
	switch {
	case b.state == BankActive && b.openRow == row:
		rowHit = true
		b.rowHits++
		r.stats.RowHits++
	case b.state == BankActive:
		b.rowMisses++
		r.stats.RowMisses++
		done := b.Precharge(now, r.t)
		b.Activate(done, row, r.t)
	default:
		b.rowMisses++
		r.stats.RowMisses++
		b.Activate(now, row, r.t)
	}
	if kind == Read {
		_, done = b.Read(now, r.t)
		r.stats.ReadBursts++
	} else {
		_, done = b.Write(now, r.t)
		r.stats.WriteBursts++
	}
	return done, rowHit
}
