package dram

// DRAM power modeling in the Micron IDD style: background power from
// the precharge/active standby states, activation energy per ACT/PRE
// pair, read/write burst energy, and refresh energy. The §3 cost model
// uses a flat 4 W per-DIMM idle figure (EQ2.2); this model derives
// that class of number from device currents and lets the energy
// experiments split NMA savings by component.

// PowerParams holds per-device current/voltage parameters, reduced to
// energy-per-event and standby power for modeling.
type PowerParams struct {
	VDD float64 // volts

	// Standby currents (amps, whole chip).
	IDD2P float64 // precharge power-down
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby

	// Per-event charges, already multiplied out to energy in nJ.
	ActPreNJ        float64 // one ACT+PRE pair
	ReadBurstNJ     float64 // one read burst (per chip row slice)
	WriteBurstNJ    float64
	RefreshPerRowNJ float64
}

// DDR5PowerParams returns representative DDR5 x8 device parameters
// (datasheet-class magnitudes).
func DDR5PowerParams() PowerParams {
	return PowerParams{
		VDD:             1.1,
		IDD2P:           0.030,
		IDD2N:           0.060,
		IDD3N:           0.085,
		ActPreNJ:        2.7, // matches energy.RowActPreNJ
		ReadBurstNJ:     1.3,
		WriteBurstNJ:    1.5,
		RefreshPerRowNJ: 0.6,
	}
}

// PowerUse splits a rank's energy over an interval by component.
type PowerUse struct {
	BackgroundNJ float64
	ActivateNJ   float64
	ReadNJ       float64
	WriteNJ      float64
	RefreshNJ    float64
}

// TotalNJ sums the components.
func (p PowerUse) TotalNJ() float64 {
	return p.BackgroundNJ + p.ActivateNJ + p.ReadNJ + p.WriteNJ + p.RefreshNJ
}

// AverageWatts converts the energy over an interval to power.
func (p PowerUse) AverageWatts(interval Ps) float64 {
	if interval <= 0 {
		return 0
	}
	return p.TotalNJ() * 1e-9 / (float64(interval) / float64(Second))
}

// RankEnergy computes a rank's energy over [0, interval] from its
// statistics. chips is the number of devices acting in lockstep
// (standby power scales with it); activeFrac is the fraction of time
// banks were active (1.0 = always at IDD3N, 0 = always at IDD2N).
func RankEnergy(pp PowerParams, st RankStats, cfg DeviceConfig, interval Ps, chips int, activeFrac float64) PowerUse {
	if activeFrac < 0 {
		activeFrac = 0
	}
	if activeFrac > 1 {
		activeFrac = 1
	}
	seconds := float64(interval) / float64(Second)
	standbyI := pp.IDD2N*(1-activeFrac) + pp.IDD3N*activeFrac
	var use PowerUse
	use.BackgroundNJ = standbyI * pp.VDD * seconds * float64(chips) * 1e9
	acts := float64(st.RowMisses) // each miss costs an ACT(+PRE) cycle
	use.ActivateNJ = acts * pp.ActPreNJ
	use.ReadNJ = float64(st.ReadBursts) * pp.ReadBurstNJ
	use.WriteNJ = float64(st.WriteBursts) * pp.WriteBurstNJ
	rowsRefreshed := float64(st.REFs) * float64(cfg.RowsPerBankPerREF) * float64(cfg.BanksPerChip)
	use.RefreshNJ = rowsRefreshed * pp.RefreshPerRowNJ
	return use
}

// IdleDIMMWatts returns the background power of an idle DIMM (ranks ×
// chips at precharge standby) — the quantity EQ2.2 charges at 4 W.
func IdleDIMMWatts(pp PowerParams, ranks, chipsPerRank int) float64 {
	return pp.IDD2N * pp.VDD * float64(ranks*chipsPerRank)
}
