package dram

// BankState is the row-buffer state of a bank.
type BankState int

// Bank states.
const (
	BankPrecharged BankState = iota
	BankActive
)

func (s BankState) String() string {
	switch s {
	case BankPrecharged:
		return "precharged"
	case BankActive:
		return "active"
	default:
		return "invalid"
	}
}

// Bank models one DRAM bank's row buffer and command timing state.
// With the XFM extension (Fig. 7), each subarray additionally has a
// row-decoder latch and a local-bitline isolation latch, so one
// subarray can be accessed while rows in other subarrays refresh; the
// extension is modeled by the subarray-granular busy times kept by
// Rank, not here.
type Bank struct {
	state   BankState
	openRow int

	// Earliest times the next command of each kind may be accepted.
	nextACT Ps
	nextRD  Ps
	nextWR  Ps
	nextPRE Ps

	// Stats.
	acts, reads, writes, pres, rowHits, rowMisses int64
}

// State returns the current row-buffer state.
func (b *Bank) State() BankState { return b.state }

// OpenRow returns the open row; only meaningful when State is
// BankActive.
func (b *Bank) OpenRow() int { return b.openRow }

// cmdReady returns max(now, t).
func cmdReady(now, t Ps) Ps {
	if t > now {
		return t
	}
	return now
}

// Activate opens row at the earliest legal time ≥ now and returns the
// time the activation command issues. The caller must ensure the bank
// is precharged.
func (b *Bank) Activate(now Ps, row int, t Timings) Ps {
	at := cmdReady(now, b.nextACT)
	b.state = BankActive
	b.openRow = row
	b.acts++
	b.nextRD = at + t.TRCD
	b.nextWR = at + t.TRCD
	b.nextPRE = at + t.TRAS
	b.nextACT = at + t.TRC
	return at
}

// Precharge closes the open row at the earliest legal time ≥ now and
// returns the time the bank becomes precharged (ready for ACT).
func (b *Bank) Precharge(now Ps, t Timings) Ps {
	at := cmdReady(now, b.nextPRE)
	b.state = BankPrecharged
	b.pres++
	done := at + t.TRP
	if done > b.nextACT {
		b.nextACT = done
	}
	return done
}

// Read issues a column read at the earliest legal time ≥ now and
// returns (issueAt, dataDoneAt): the command issue time and the time
// the last data beat leaves the bank. The caller must ensure the bank
// is active on the right row.
func (b *Bank) Read(now Ps, t Timings) (issueAt, dataDoneAt Ps) {
	at := cmdReady(now, b.nextRD)
	b.reads++
	// Back-to-back column commands are separated by the burst time.
	b.nextRD = at + t.TBurst
	b.nextWR = at + t.TBurst
	return at, at + t.TCL + t.TBurst
}

// Write issues a column write at the earliest legal time ≥ now and
// returns (issueAt, dataDoneAt).
func (b *Bank) Write(now Ps, t Timings) (issueAt, dataDoneAt Ps) {
	at := cmdReady(now, b.nextWR)
	b.writes++
	b.nextRD = at + t.TBurst
	b.nextWR = at + t.TBurst
	return at, at + t.TCWL + t.TBurst
}

// blockUntil forbids all commands before t (used by all-bank refresh).
func (b *Bank) blockUntil(t Ps) {
	if t > b.nextACT {
		b.nextACT = t
	}
	if t > b.nextRD {
		b.nextRD = t
	}
	if t > b.nextWR {
		b.nextWR = t
	}
	if t > b.nextPRE {
		b.nextPRE = t
	}
}

// forceClose precharges the bank instantaneously as part of a refresh
// cycle (refresh semantics are a series of ACT/PRE pairs, and the bank
// ends precharged; §5 notes the CPU controller "starts fresh" after
// each refresh).
func (b *Bank) forceClose() { b.state = BankPrecharged }

// BankStats is a read-only snapshot of per-bank counters.
type BankStats struct {
	ACTs, Reads, Writes, PREs int64
	RowHits, RowMisses        int64
}

// Stats returns a snapshot of the bank's counters.
func (b *Bank) Stats() BankStats {
	return BankStats{
		ACTs: b.acts, Reads: b.reads, Writes: b.writes, PREs: b.pres,
		RowHits: b.rowHits, RowMisses: b.rowMisses,
	}
}
