package dram

import (
	"math"
	"testing"
)

func TestIdleDIMMWattsNearCostModelFigure(t *testing.T) {
	// EQ2.2 charges 4 W of static power per extra DIMM; the IDD-based
	// derivation should land in the same regime for a 2-rank, 8-chip
	// DIMM (ECC chips excluded).
	w := IdleDIMMWatts(DDR5PowerParams(), 2, 8)
	if w < 0.5 || w > 6 {
		t.Errorf("idle DIMM = %.2f W, want same order as the 4 W EQ2.2 figure", w)
	}
}

func TestRankEnergyComponents(t *testing.T) {
	pp := DDR5PowerParams()
	st := RankStats{
		REFs:        8192,
		RowMisses:   1000,
		ReadBursts:  50000,
		WriteBursts: 20000,
	}
	use := RankEnergy(pp, st, Device32Gb, 32*Millisecond, 8, 0.5)
	if use.BackgroundNJ <= 0 || use.ActivateNJ <= 0 || use.ReadNJ <= 0 ||
		use.WriteNJ <= 0 || use.RefreshNJ <= 0 {
		t.Fatalf("missing component: %+v", use)
	}
	sum := use.BackgroundNJ + use.ActivateNJ + use.ReadNJ + use.WriteNJ + use.RefreshNJ
	if math.Abs(sum-use.TotalNJ()) > 1e-6 {
		t.Error("TotalNJ mismatch")
	}
	if w := use.AverageWatts(32 * Millisecond); w <= 0 || w > 50 {
		t.Errorf("average power = %.2f W implausible", w)
	}
	if use.AverageWatts(0) != 0 {
		t.Error("zero interval should yield 0")
	}
}

func TestRankEnergyActiveFracMonotone(t *testing.T) {
	pp := DDR5PowerParams()
	st := RankStats{}
	lo := RankEnergy(pp, st, Device32Gb, Second, 8, 0).BackgroundNJ
	hi := RankEnergy(pp, st, Device32Gb, Second, 8, 1).BackgroundNJ
	if hi <= lo {
		t.Error("active standby should cost more than precharge standby")
	}
	// Clamping.
	if RankEnergy(pp, st, Device32Gb, Second, 8, 2).BackgroundNJ != hi {
		t.Error("activeFrac not clamped high")
	}
	if RankEnergy(pp, st, Device32Gb, Second, 8, -1).BackgroundNJ != lo {
		t.Error("activeFrac not clamped low")
	}
}

func TestRefreshEnergyScalesWithDevice(t *testing.T) {
	pp := DDR5PowerParams()
	st := RankStats{REFs: 8192}
	small := RankEnergy(pp, st, Device8Gb, Second, 8, 0).RefreshNJ
	big := RankEnergy(pp, st, Device32Gb, Second, 8, 0).RefreshNJ
	if big <= small {
		t.Error("32Gb refresh energy should exceed 8Gb (more rows per REF × banks)")
	}
}
