package dram

import "testing"

func TestConditionalReadLatencyMatchesPaper(t *testing.T) {
	// §5 / Fig. 6b: "it would take 110ns to send all the data out of
	// the chip to the NMA (tRCD + tCL + 32 × tBURST)".
	tm := DDR5_3200()
	got := ConditionalReadLatency(tm, 4096)
	if got < 105*Nanosecond || got > 115*Nanosecond {
		t.Errorf("conditional 4 KiB read latency = %.1f ns, paper: ~110",
			float64(got)/float64(Nanosecond))
	}
}

func TestMaxConditionalAccessesMatchesTable(t *testing.T) {
	// §5: "the maximum number of 4KB conditional accesses are 4, 3,
	// and 2 for 32Gb, 16Gb, and 8Gb chips."
	want := map[string]int{"8Gb": 2, "16Gb": 3, "32Gb": 4}
	for _, dev := range Table1Devices() {
		if got := DeriveConditionalBudget(dev); got != want[dev.Name] {
			t.Errorf("%s: derived budget = %d, want %d", dev.Name, got, want[dev.Name])
		}
		if dev.MaxConditionalPerTRFC != want[dev.Name] {
			t.Errorf("%s: configured budget %d disagrees with paper %d",
				dev.Name, dev.MaxConditionalPerTRFC, want[dev.Name])
		}
	}
}

func TestMaxConditionalAccessesEdgeCases(t *testing.T) {
	tm := DDR5_3200()
	if got := MaxConditionalAccesses(tm, 50*Nanosecond, 4096); got != 0 {
		t.Errorf("window shorter than one access yielded %d", got)
	}
	// A huge window admits many accesses, monotonically.
	prev := 0
	for _, trfc := range []Ps{200 * Nanosecond, 400 * Nanosecond, 800 * Nanosecond} {
		got := MaxConditionalAccesses(tm, trfc, 4096)
		if got < prev {
			t.Errorf("budget not monotone in tRFC: %d after %d", got, prev)
		}
		prev = got
	}
}
