package contention

import (
	"testing"

	"xfm/internal/workload"
)

// fig11Traffic is the Fig. 11 antagonist: 512 GB SFM at a 14%
// promotion rate.
func fig11Traffic() SFMTraffic {
	return SFMTraffic{SwapGBps: 512 * 0.14 / 60, CompressionRatio: 2.0}
}

func TestModesEnumeration(t *testing.T) {
	ms := Modes()
	if len(ms) != 3 {
		t.Fatalf("modes = %d, want 3", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.String()] = true
	}
	for _, want := range []string{"Baseline-CPU", "Host-Lockout-NMA", "XFM"} {
		if !names[want] {
			t.Errorf("missing mode %s", want)
		}
	}
	if Mode(99).String() != "invalid" {
		t.Error("invalid mode not detected")
	}
}

func TestChannelDemandByMode(t *testing.T) {
	tr := fig11Traffic()
	if d := tr.ChannelDemandGBps(BaselineCPU); d <= tr.SwapGBps*2 {
		t.Errorf("baseline demand %.2f should exceed 2× swap rate", d)
	}
	// §3.3 footnote: with ratio 1 the factor is 4×.
	tr1 := SFMTraffic{SwapGBps: 8.5, CompressionRatio: 1}
	if d := tr1.ChannelDemandGBps(BaselineCPU); d != 4*8.5 {
		t.Errorf("uncompressed baseline demand = %.1f, want 34 (4×8.5)", d)
	}
	for _, m := range []Mode{HostLockoutNMA, XFM} {
		if d := tr.ChannelDemandGBps(m); d != 0 {
			t.Errorf("%v consumes %.2f GB/s of channel bandwidth, want 0", m, d)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	sys := DefaultSystem()
	profiles := workload.SPECLikeProfiles()
	tr := fig11Traffic()

	results := map[Mode]Result{}
	for _, m := range Modes() {
		r, err := CoRun(sys, profiles, tr, m)
		if err != nil {
			t.Fatal(err)
		}
		results[m] = r
	}

	// Shape 1: XFM leaves co-runners essentially untouched.
	if xfm := results[XFM].MaxSlowdown(); xfm > 1.005 {
		t.Errorf("XFM max slowdown = %.3f, want ≈1.0", xfm)
	}
	// Shape 2: Host-Lockout hurts SPEC more than Baseline-CPU (§8:
	// "up to 8% and 15% performance degradation for Baseline-CPU and
	// Host-Lockout-NMA").
	base := results[BaselineCPU].MaxSlowdown()
	lock := results[HostLockoutNMA].MaxSlowdown()
	if lock <= base {
		t.Errorf("lockout max slowdown %.3f not worse than baseline %.3f", lock, base)
	}
	if base < 1.02 || base > 1.10 {
		t.Errorf("baseline max slowdown = %.3f, paper reports up to ~8%%", base)
	}
	if lock < 1.05 || lock > 1.20 {
		t.Errorf("lockout max slowdown = %.3f, paper reports up to ~15%%", lock)
	}
	// Shape 3: only Baseline-CPU SFM throughput degrades, by 5–20%.
	if f := results[BaselineCPU].SFMThroughputFactor; f < 0.80 || f > 0.95 {
		t.Errorf("baseline SFM throughput factor = %.3f, want 0.80–0.95 (5–20%% loss)", f)
	}
	for _, m := range []Mode{HostLockoutNMA, XFM} {
		if f := results[m].SFMThroughputFactor; f != 1 {
			t.Errorf("%v SFM throughput factor = %.3f, want 1", m, f)
		}
	}
}

func TestSec32AntagonistExperiment(t *testing.T) {
	// §3.2: two (de)compression antagonists co-run with 8 SPEC
	// workloads: runtime increases by up to 7.5%, antagonist
	// throughput drops by more than 5%.
	sys := DefaultSystem()
	profiles := workload.SPECLikeProfiles()
	// Two antagonist processes continuously compressing 4 KiB pages
	// at a software-codec rate (~1 GB/s each).
	tr := SFMTraffic{SwapGBps: 2.0, CompressionRatio: 2.0}
	r, err := CoRun(sys, profiles, tr, BaselineCPU)
	if err != nil {
		t.Fatal(err)
	}
	if max := r.MaxSlowdown(); max < 1.02 || max > 1.09 {
		t.Errorf("max runtime increase = %.3f, §3.2 reports up to 7.5%%", max)
	}
	if deg := 1 - r.SFMThroughputFactor; deg < 0.04 || deg > 0.25 {
		t.Errorf("antagonist degradation = %.1f%%, §3.2 reports > 5%%", deg*100)
	}
}

func TestSlowdownsScaleWithTraffic(t *testing.T) {
	sys := DefaultSystem()
	profiles := workload.SPECLikeProfiles()
	light := SFMTraffic{SwapGBps: 0.5, CompressionRatio: 2}
	heavy := SFMTraffic{SwapGBps: 8.5, CompressionRatio: 2}
	rl, _ := CoRun(sys, profiles, light, BaselineCPU)
	rh, _ := CoRun(sys, profiles, heavy, BaselineCPU)
	if rh.MeanSlowdown() <= rl.MeanSlowdown() {
		t.Error("heavier SFM traffic should slow co-runners more")
	}
	if rh.SFMThroughputFactor > rl.SFMThroughputFactor {
		t.Error("SFM throughput factor should not improve with heavier load")
	}
}

func TestLockoutScalesWithEngineSpeed(t *testing.T) {
	profiles := workload.SPECLikeProfiles()
	tr := fig11Traffic()
	slow := DefaultSystem()
	slow.NMAEngineGBps = 0.7
	fast := DefaultSystem()
	fast.NMAEngineGBps = 14.8
	rs, _ := CoRun(slow, profiles, tr, HostLockoutNMA)
	rf, _ := CoRun(fast, profiles, tr, HostLockoutNMA)
	if rs.MaxSlowdown() <= rf.MaxSlowdown() {
		t.Error("slower lockout engine should hurt co-runners more")
	}
}

func TestCoRunInvalidSystem(t *testing.T) {
	if _, err := CoRun(System{}, nil, fig11Traffic(), XFM); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestQueueFactorBounds(t *testing.T) {
	if queueFactor(-1) != 1 {
		t.Error("negative utilization mishandled")
	}
	if queueFactor(0.99) != queueFactor(2) {
		t.Error("saturation cap not applied")
	}
	if queueFactor(0.5) != 2 {
		t.Errorf("queueFactor(0.5) = %v, want 2", queueFactor(0.5))
	}
}

func TestMeanMaxSlowdownEmpty(t *testing.T) {
	var r Result
	if r.MeanSlowdown() != 1 || r.MaxSlowdown() != 1 {
		t.Error("empty result should report 1.0")
	}
}
