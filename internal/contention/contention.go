// Package contention models the co-run interference between
// memory-intensive applications and SFM swap traffic (Fig. 11, §3.2).
//
// The model captures the three interference mechanisms the paper
// identifies:
//
//  1. Memory-channel contention — Baseline-CPU SFM moves every swapped
//     byte over the DDR channels four times (read cold page, write
//     compressed copy, read compressed copy, write decompressed page;
//     §3.3 footnote), inflating queueing delay for co-runners.
//  2. LLC pollution — page-granular streaming (de)compression evicts
//     co-runners' working sets (§3.2, overhead O4).
//  3. Rank lockout — a Host-Lockout NMA (Boroumand et al.'s interface)
//     blocks host accesses to a rank while the NMA works, stalling
//     memory-bound co-runners even though no channel bandwidth is
//     consumed.
//
// XFM suffers none of the three: NMA accesses hide inside refresh
// windows the host loses anyway.
package contention

import (
	"fmt"

	"xfm/internal/workload"
)

// Mode is the SFM implementation being co-run (the three bars of
// Fig. 11).
type Mode int

// Co-run configurations.
const (
	BaselineCPU Mode = iota
	HostLockoutNMA
	XFM
)

func (m Mode) String() string {
	switch m {
	case BaselineCPU:
		return "Baseline-CPU"
	case HostLockoutNMA:
		return "Host-Lockout-NMA"
	case XFM:
		return "XFM"
	default:
		return "invalid"
	}
}

// Modes returns all three configurations in Fig. 11 order.
func Modes() []Mode { return []Mode{BaselineCPU, HostLockoutNMA, XFM} }

// System describes the shared memory system.
type System struct {
	Channels       int
	ChannelGBps    float64 // peak per channel
	Ranks          int
	RankStreamGBps float64 // per-rank sustainable stream bandwidth
	// NMAEngineGBps is the (de)compression engine throughput of the
	// lockout-style NMA; the rank stays locked while the engine works
	// (the open-source FPGA Deflate runs at ~1.4 GB/s, §8).
	NMAEngineGBps float64
	// PageBytes is the offload granularity.
	PageBytes int
	// SFMMemBoundShare is the fraction of the CPU swap path stalled on
	// memory (compression is compute-heavy, so this is modest).
	SFMMemBoundShare float64
	// LLCPollutionCoef converts SFM streaming intensity into an LLC
	// pollution factor; calibrated against the §3.2 antagonist
	// experiment (≈7.5% peak runtime increase).
	LLCPollutionCoef float64
}

// DefaultSystem returns the evaluation platform's shape (§7: Xeon
// Gold 6242-class, 6 DIMMs at 3200 MT/s).
func DefaultSystem() System {
	return System{
		Channels:         6,
		ChannelGBps:      25.6,
		Ranks:            12,
		RankStreamGBps:   12,
		NMAEngineGBps:    1.4,
		PageBytes:        4096,
		SFMMemBoundShare: 0.2,
		LLCPollutionCoef: 0.030,
	}
}

// SFMTraffic describes the swap load.
type SFMTraffic struct {
	// SwapGBps is the one-directional swap rate (EQ1 / 60 s).
	SwapGBps float64
	// CompressionRatio shrinks the compressed-side transfers.
	CompressionRatio float64
}

// ChannelDemandGBps returns the DDR channel bandwidth the SFM
// consumes under the given mode. Baseline-CPU pays full freight
// (§3.3: 4× the swap rate, reduced on the compressed side by the
// ratio); both NMA designs bypass the channel entirely.
func (t SFMTraffic) ChannelDemandGBps(m Mode) float64 {
	if m != BaselineCPU {
		return 0
	}
	ratio := t.CompressionRatio
	if ratio < 1 {
		ratio = 1
	}
	// Uncompressed side: read cold page + write decompressed page.
	// Compressed side: write + read compressed copies.
	return t.SwapGBps * (2 + 2/ratio)
}

// Result holds one co-run outcome.
type Result struct {
	Mode Mode
	// Slowdowns[i] is workload i's runtime relative to running
	// without the SFM antagonist (1.0 = unaffected).
	Slowdowns []float64
	// SFMThroughputFactor is the SFM's achieved swap throughput
	// relative to running alone (1.0 = unaffected).
	SFMThroughputFactor float64
}

// MeanSlowdown returns the average workload slowdown.
func (r Result) MeanSlowdown() float64 {
	if len(r.Slowdowns) == 0 {
		return 1
	}
	sum := 0.0
	for _, s := range r.Slowdowns {
		sum += s
	}
	return sum / float64(len(r.Slowdowns))
}

// MaxSlowdown returns the worst workload slowdown.
func (r Result) MaxSlowdown() float64 {
	m := 1.0
	for _, s := range r.Slowdowns {
		if s > m {
			m = s
		}
	}
	return m
}

// queueFactor converts bus utilization into a relative latency factor
// with an M/M/1-shaped knee, capped to keep the model stable near
// saturation.
func queueFactor(util float64) float64 {
	if util < 0 {
		util = 0
	}
	if util > 0.95 {
		util = 0.95
	}
	return 1 / (1 - util)
}

// CoRun evaluates the co-run of the given workloads with SFM traffic
// under mode m.
func CoRun(sys System, profiles []workload.AntagonistProfile, t SFMTraffic, m Mode) (Result, error) {
	if sys.Channels <= 0 || sys.ChannelGBps <= 0 || sys.Ranks <= 0 {
		return Result{}, fmt.Errorf("contention: invalid system %+v", sys)
	}
	peak := float64(sys.Channels) * sys.ChannelGBps

	appDemand := 0.0
	for _, p := range profiles {
		appDemand += p.BWDemandGBps
	}
	sfmDemand := t.ChannelDemandGBps(m)

	utilWithout := appDemand / peak
	utilWith := (appDemand + sfmDemand) / peak
	// Relative increase in memory latency from the added channel
	// traffic.
	latencyBlowup := queueFactor(utilWith)/queueFactor(utilWithout) - 1

	// Host-lockout: the fraction of time each rank is unavailable to
	// the host because the NMA holds it (§8: the low per-rank
	// bandwidth requirement of SFM "does not justify the lockout
	// interface").
	lockFrac := 0.0
	if m == HostLockoutNMA {
		// Each offload locks its rank for the page transfer plus the
		// engine's compute time; coarse-grain locking is what makes
		// this design expensive (§8: the lockout interface is not
		// justified by SFM's low per-rank bandwidth needs).
		page := float64(sys.PageBytes)
		perOpLockSec := page/(sys.RankStreamGBps*1e9) + page/(sys.NMAEngineGBps*1e9)
		opsPerSec := 2 * t.SwapGBps * 1e9 / page // compress + decompress
		lockFrac = opsPerSec / float64(sys.Ranks) * perOpLockSec
		if lockFrac > 0.9 {
			lockFrac = 0.9
		}
	}

	// LLC pollution applies only when pages stream through the cache
	// hierarchy (CPU compression).
	pollution := 0.0
	if m == BaselineCPU {
		pollution = sys.LLCPollutionCoef * t.SwapGBps // per GB/s of streaming
		if pollution > 0.12 {
			pollution = 0.12
		}
	}

	res := Result{Mode: m, SFMThroughputFactor: 1}
	for _, p := range profiles {
		slow := 1.0
		slow += p.MemBoundShare * latencyBlowup
		slow += p.MemBoundShare * lockFrac / (1 - lockFrac)
		slow += p.LLCSensitivity * pollution
		res.Slowdowns = append(res.Slowdowns, slow)
	}

	// SFM throughput: only the CPU implementation competes for the
	// channels, so only it degrades (§8: "the SFM throughput degrades
	// by 5~20%" for Baseline-CPU). Its slowdown comes from the
	// latency its own memory accesses suffer under the co-runners'
	// traffic, weighted by how memory-bound the swap path is.
	if m == BaselineCPU {
		utilAlone := sfmDemand / peak
		sfmBlowup := queueFactor(utilWith)/queueFactor(utilAlone) - 1
		res.SFMThroughputFactor = 1 / (1 + sys.SFMMemBoundShare*sfmBlowup)
	}
	return res, nil
}
