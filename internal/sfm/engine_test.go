package sfm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"xfm/internal/compress"
)

// mixedBatchOut builds a batch exercising every stage class: ordinary
// compressible pages, same-filled (zero) pages, incompressible
// (random) pages, one short page, and one duplicate id.
func mixedBatchOut(n int) []PageOut {
	rng := rand.New(rand.NewSource(42))
	outs := make([]PageOut, 0, n+2)
	for i := 0; i < n; i++ {
		id := PageID(i * 3)
		var data []byte
		switch i % 4 {
		case 0, 1:
			data = randomPage(id)
		case 2:
			data = make([]byte, PageSize) // same-filled
		default:
			data = make([]byte, PageSize) // incompressible
			rng.Read(data)
		}
		outs = append(outs, PageOut{ID: id, Data: data})
	}
	outs = append(outs, PageOut{ID: 1_000_000, Data: []byte("short")})
	outs = append(outs, PageOut{ID: outs[0].ID, Data: randomPage(outs[0].ID)}) // duplicate
	return outs
}

// TestBatchWorkerCountInvariance pins the commit-ordering invariant:
// results, stats, and restored bytes must be identical at every worker
// count — the pipeline only changes who compresses, never what is
// committed. Run under -cpu=1,2,4 in CI so the inline path (one
// effective worker) and the fan-out path are both covered.
func TestBatchWorkerCountInvariance(t *testing.T) {
	type outcome struct {
		outErrs []string
		stats   BackendStats
		inErrs  []string
		pages   [][]byte
	}
	run := func(workers int) outcome {
		b := NewShardedBackend(compress.NewLZFast(), 0, 8, workers)
		defer b.Close()
		outs := mixedBatchOut(48)
		var o outcome
		for _, err := range b.SwapOutBatch(0, outs) {
			o.outErrs = append(o.outErrs, fmt.Sprint(err))
		}
		o.stats = b.Stats()
		// Drain the stored pages (the first 48 entries; the short page
		// and the duplicate were rejected).
		ids := make([]PageID, 48)
		for i := range ids {
			ids[i] = outs[i].ID
		}
		ins := makeBatchIn(ids)
		for _, err := range b.SwapInBatch(0, ins, false) {
			o.inErrs = append(o.inErrs, fmt.Sprint(err))
		}
		for _, p := range ins {
			o.pages = append(o.pages, p.Dst)
		}
		return o
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if fmt.Sprint(got.outErrs) != fmt.Sprint(want.outErrs) {
			t.Fatalf("workers=%d: swap-out errors diverge:\n%v\n%v", workers, got.outErrs, want.outErrs)
		}
		if fmt.Sprint(got.inErrs) != fmt.Sprint(want.inErrs) {
			t.Fatalf("workers=%d: swap-in errors diverge:\n%v\n%v", workers, got.inErrs, want.inErrs)
		}
		if got.stats != want.stats {
			t.Fatalf("workers=%d: stats diverge:\n%+v\n%+v", workers, got.stats, want.stats)
		}
		for i := range want.pages {
			if !bytes.Equal(got.pages[i], want.pages[i]) {
				t.Fatalf("workers=%d: page %d bytes diverge", workers, i)
			}
		}
	}
}

// TestBatchSkewedSingleShard routes every page of a batch to one shard
// — the pipeline's worst case and the scenario the old shard-granular
// fan-out degraded to serial on. Correctness and serial-equivalent
// stats must survive the skew.
func TestBatchSkewedSingleShard(t *testing.T) {
	const nShards = 8
	codec := compress.NewLZFast()
	sharded := NewShardedBackend(codec, 0, nShards, 4)
	defer sharded.Close()
	serial := NewCPUBackend(codec, 0)

	ids := make([]PageID, 0, 64)
	for id := PageID(0); len(ids) < 64; id++ {
		if ShardIndexFor(id, nShards) == 0 {
			ids = append(ids, id)
		}
	}
	outs := makeBatchOut(ids)
	if err := FirstError(sharded.SwapOutBatch(0, outs)); err != nil {
		t.Fatal(err)
	}
	for _, p := range outs {
		if err := serial.SwapOut(0, p.ID, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	ss, ps := serial.Stats(), sharded.Stats()
	if ss.SwapOuts != ps.SwapOuts || ss.CompressedBytes != ps.CompressedBytes ||
		ss.StoredPages != ps.StoredPages || ss.CPUCycles != ps.CPUCycles {
		t.Fatalf("skewed stats diverge from serial:\nserial  %+v\nsharded %+v", ss, ps)
	}

	ins := makeBatchIn(ids)
	if err := FirstError(sharded.SwapInBatch(0, ins, false)); err != nil {
		t.Fatal(err)
	}
	for i, p := range ins {
		if !bytes.Equal(p.Dst, outs[i].Data) {
			t.Fatalf("page %d corrupted by skewed round trip", p.ID)
		}
	}
	if got := sharded.Stats().StoredPages; got != 0 {
		t.Fatalf("StoredPages = %d after draining, want 0", got)
	}
}

// TestBatchDecompressFailureLeavesStored corrupts a stored page's
// compressed bytes and checks the two-phase swap-in restores the
// entry (index + pin) on decompression failure — the page must remain
// stored and recoverable once the bytes are repaired, exactly as a
// failed serial SwapIn leaves it.
func TestBatchDecompressFailureLeavesStored(t *testing.T) {
	b := NewShardedBackend(compress.NewLZFast(), 0, 4, 2)
	defer b.Close()
	ids := []PageID{10, 11, 12, 13}
	outs := makeBatchOut(ids)
	if err := FirstError(b.SwapOutBatch(0, outs)); err != nil {
		t.Fatal(err)
	}

	// Corrupt page 11's slot in place (zeroed LZ stream: zero-length
	// header followed by trailing garbage, always rejected).
	victim := PageID(11)
	sh := &b.shards[ShardIndexFor(victim, len(b.shards))]
	e, ok := sh.b.index.Get(victim)
	if !ok || !e.stored {
		t.Fatalf("victim page not stored compressed (ok=%v, stored=%v)", ok, e.stored)
	}
	raw, err := sh.b.alloc.Pin(e.handle)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), raw...)
	for i := range raw {
		raw[i] = 0
	}
	if err := sh.b.alloc.Unpin(e.handle); err != nil {
		t.Fatal(err)
	}

	ins := makeBatchIn(ids)
	errs := b.SwapInBatch(0, ins, false)
	for i, id := range ids {
		if id == victim {
			if errs[i] == nil {
				t.Fatal("corrupted page decompressed without error")
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("healthy page %d failed: %v", id, errs[i])
		}
		if !bytes.Equal(ins[i].Dst, outs[i].Data) {
			t.Fatalf("healthy page %d corrupted", id)
		}
	}
	if !b.Contains(victim) {
		t.Fatal("failed page evicted from the index; must stay stored")
	}
	if got := b.Stats().StoredPages; got != 1 {
		t.Fatalf("StoredPages = %d, want 1 (the failed page)", got)
	}

	// Repair the bytes; the page must swap in cleanly, proving the
	// failure path restored both the index entry and the pin state
	// (compaction and Free would misbehave on a leaked pin).
	raw, err = sh.b.alloc.Pin(e.handle)
	if err != nil {
		t.Fatal(err)
	}
	copy(raw, saved)
	if err := sh.b.alloc.Unpin(e.handle); err != nil {
		t.Fatal(err)
	}
	b.Compact()
	dst := make([]byte, PageSize)
	if err := b.SwapIn(0, victim, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, randomPage(victim)) {
		t.Fatal("repaired page corrupted")
	}
}

// TestBatchEngineConcurrentMix interleaves batch swaps, Compact, and
// Stats from many goroutines on one backend. Run with -race: it pins
// the pipeline's locking discipline (stage outside the lock, pinned
// slots vs. concurrent compaction, commit under the lock).
func TestBatchEngineConcurrentMix(t *testing.T) {
	b := NewShardedBackend(compress.NewLZFast(), 0, 8, 4)
	defer b.Close()
	const (
		goroutines = 6
		perG       = 48
		rounds     = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]PageID, perG)
			for i := range ids {
				ids[i] = PageID(g*10_000 + i)
			}
			for r := 0; r < rounds; r++ {
				outs := makeBatchOut(ids)
				if err := FirstError(b.SwapOutBatch(0, outs)); err != nil {
					t.Error(err)
					return
				}
				switch g % 3 {
				case 0:
					b.Compact()
				case 1:
					_ = b.Stats()
				}
				ins := makeBatchIn(ids)
				if err := FirstError(b.SwapInBatch(0, ins, false)); err != nil {
					t.Error(err)
					return
				}
				for i, p := range ins {
					if !bytes.Equal(p.Dst, outs[i].Data) {
						t.Errorf("goroutine %d round %d: page %d corrupted", g, r, p.ID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := b.Stats().StoredPages; got != 0 {
		t.Fatalf("StoredPages = %d after mix, want 0", got)
	}
}

// TestBatchRoundTripAllocs is the allocation regression gate for the
// batched hot path. The pipeline's pooled plans, worker arenas,
// recycled rbtree nodes, and zsmalloc free lists drove a 256-page
// round trip from ~900 allocs/op to a few dozen; the ceiling here is
// deliberately loose (headroom for scheduler noise) but low enough
// that any per-page allocation (256+) fails immediately.
func TestBatchRoundTripAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	const ceiling = 180
	for _, tc := range []struct {
		name string
		mk   func() Backend
	}{
		{"serial", func() Backend { return NewCPUBackend(compress.NewLZFast(), 0) }},
		{"sharded", func() Backend { return NewShardedBackend(compress.NewLZFast(), 0, 16, 0) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mk()
			ids := make([]PageID, 256)
			for i := range ids {
				ids[i] = PageID(i)
			}
			outs := makeBatchOut(ids)
			ins := makeBatchIn(ids)
			// Warm up pools, arenas, and free lists.
			for i := 0; i < 3; i++ {
				if err := FirstError(b.SwapOutBatch(0, outs)); err != nil {
					t.Fatal(err)
				}
				if err := FirstError(b.SwapInBatch(0, ins, false)); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := FirstError(b.SwapOutBatch(0, outs)); err != nil {
					t.Fatal(err)
				}
				if err := FirstError(b.SwapInBatch(0, ins, false)); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > ceiling {
				t.Fatalf("%s batch round trip: %.0f allocs/op, ceiling %d", tc.name, allocs, ceiling)
			}
			t.Logf("%s batch round trip: %.0f allocs/op (ceiling %d)", tc.name, allocs, ceiling)
		})
	}
}
