package sfm

import (
	"sync"

	"xfm/internal/dram"
)

// ConcurrentHeap wraps a Heap with a mutex so multiple application
// goroutines can share one far-memory heap — the multi-threaded web
// front-end shape. The coarse lock matches the reference AIFM
// runtime's per-heap synchronization granularity for swap operations;
// page data returned by Touch is copied so callers never share the
// internal buffer across the lock boundary. Fine-grained parallelism
// lives a layer below: a heap backed by a ShardedBackend still runs
// its batch (de)compression on every core via the engine in
// engine.go, since this lock is held only around the heap's own
// bookkeeping and the per-page backend calls.
type ConcurrentHeap struct {
	mu   sync.Mutex
	heap *Heap //xfm:guardedby mu
}

// NewConcurrentHeap wraps heap.
func NewConcurrentHeap(h *Heap) *ConcurrentHeap {
	return &ConcurrentHeap{heap: h}
}

// Alloc allocates a new resident page.
func (c *ConcurrentHeap) Alloc(now dram.Ps, data []byte) PageID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heap.Alloc(now, data)
}

// Touch accesses a page and returns a copy of its content.
func (c *ConcurrentHeap) Touch(now dram.Ps, id PageID) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := c.heap.Touch(now, id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Write stores data into a resident page (touching it in first when
// needed).
func (c *ConcurrentHeap) Write(now dram.Ps, id PageID, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, err := c.heap.Touch(now, id)
	if err != nil {
		return err
	}
	copy(buf, data)
	return nil
}

// SwapOut demotes a page.
func (c *ConcurrentHeap) SwapOut(now dram.Ps, id PageID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heap.SwapOut(now, id)
}

// Prefetch promotes a page with the offload hint.
func (c *ConcurrentHeap) Prefetch(now dram.Ps, id PageID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heap.Prefetch(now, id)
}

// Resident reports residency.
func (c *ConcurrentHeap) Resident(id PageID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heap.Resident(id)
}

// Stats snapshots the heap counters.
func (c *ConcurrentHeap) Stats() HeapStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.heap.Stats()
}
