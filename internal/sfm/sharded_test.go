package sfm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"xfm/internal/compress"
)

// randomPage builds a compressible page seeded by id so content is
// verifiable after a round trip.
func randomPage(id PageID) []byte {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	p := make([]byte, 0, PageSize)
	for len(p) < PageSize {
		tok := byte('a' + rng.Intn(8))
		run := 4 + rng.Intn(24)
		for i := 0; i < run && len(p) < PageSize; i++ {
			p = append(p, tok)
		}
	}
	return p
}

func makeBatchOut(ids []PageID) []PageOut {
	out := make([]PageOut, len(ids))
	for i, id := range ids {
		out[i] = PageOut{ID: id, Data: randomPage(id)}
	}
	return out
}

func makeBatchIn(ids []PageID) []PageIn {
	in := make([]PageIn, len(ids))
	for i, id := range ids {
		in[i] = PageIn{ID: id, Dst: make([]byte, PageSize)}
	}
	return in
}

func TestShardedBatchRoundTrip(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			b := NewShardedBackend(compress.NewLZFast(), 0, 8, workers)
			ids := make([]PageID, 64)
			for i := range ids {
				ids[i] = PageID(i)
			}
			outs := makeBatchOut(ids)
			if err := FirstError(b.SwapOutBatch(0, outs)); err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				if !b.Contains(id) {
					t.Fatalf("page %d missing after batch swap out", id)
				}
			}
			ins := makeBatchIn(ids)
			if err := FirstError(b.SwapInBatch(0, ins, false)); err != nil {
				t.Fatal(err)
			}
			for i, p := range ins {
				if !bytes.Equal(p.Dst, outs[i].Data) {
					t.Fatalf("page %d corrupted by batch round trip", p.ID)
				}
				if b.Contains(p.ID) {
					t.Fatalf("page %d still stored after batch swap in", p.ID)
				}
			}
		})
	}
}

// TestShardedBatchMatchesSerial checks that a parallel batch produces
// the same aggregate stats and stored state as per-page serial calls
// on a plain CPU backend.
func TestShardedBatchMatchesSerial(t *testing.T) {
	codec := compress.NewLZFast()
	serial := NewCPUBackend(codec, 0)
	sharded := NewShardedBackend(codec, 0, 8, 4)

	ids := make([]PageID, 96)
	for i := range ids {
		ids[i] = PageID(i * 7)
	}
	outs := makeBatchOut(ids)
	for _, p := range outs {
		if err := serial.SwapOut(0, p.ID, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := FirstError(sharded.SwapOutBatch(0, outs)); err != nil {
		t.Fatal(err)
	}

	ss, ps := serial.Stats(), sharded.Stats()
	// The region is sharded, so page-packing fields can differ; the
	// logical swap accounting must not.
	if ss.SwapOuts != ps.SwapOuts || ss.BytesOut != ps.BytesOut ||
		ss.StoredPages != ps.StoredPages || ss.CompressedBytes != ps.CompressedBytes ||
		ss.SameFilledPages != ps.SameFilledPages || ss.IncompressiblePages != ps.IncompressiblePages ||
		ss.CPUCycles != ps.CPUCycles {
		t.Fatalf("stats diverge:\nserial  %+v\nsharded %+v", ss, ps)
	}

	ins := makeBatchIn(ids)
	if err := FirstError(sharded.SwapInBatch(0, ins, false)); err != nil {
		t.Fatal(err)
	}
	for i, p := range ins {
		if !bytes.Equal(p.Dst, outs[i].Data) {
			t.Fatalf("page %d corrupted", p.ID)
		}
	}
	if got := sharded.Stats().StoredPages; got != 0 {
		t.Fatalf("StoredPages = %d after draining, want 0", got)
	}
}

func TestShardedBatchErrorAlignment(t *testing.T) {
	b := NewShardedBackend(compress.NewLZFast(), 0, 4, 2)
	outs := []PageOut{
		{ID: 1, Data: randomPage(1)},
		{ID: 2, Data: []byte("short")},
		{ID: 1, Data: randomPage(1)}, // duplicate of slot 0
		{ID: 3, Data: randomPage(3)},
	}
	errs := b.SwapOutBatch(0, outs)
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid pages failed: %v %v", errs[0], errs[3])
	}
	if errs[1] == nil {
		t.Error("short page accepted")
	}
	if errs[2] != ErrExists {
		t.Errorf("duplicate: err = %v, want ErrExists", errs[2])
	}

	ins := []PageIn{
		{ID: 3, Dst: make([]byte, PageSize)},
		{ID: 99, Dst: make([]byte, PageSize)}, // never stored
		{ID: 1, Dst: make([]byte, PageSize)},
	}
	errs = b.SwapInBatch(0, ins, false)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid pages failed: %v %v", errs[0], errs[2])
	}
	if errs[1] != ErrNotFound {
		t.Errorf("missing page: err = %v, want ErrNotFound", errs[1])
	}
}

// TestShardedConcurrentStress hammers one sharded backend from many
// goroutines mixing batch and single-page operations on disjoint id
// ranges, plus shared read-mostly calls. Run with -race; it exists to
// prove the shard locking, not to measure anything.
func TestShardedConcurrentStress(t *testing.T) {
	b := NewShardedBackend(compress.NewXDeflate(), 0, 8, 4)
	const (
		goroutines = 8
		perG       = 32
		rounds     = 3
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := PageID(g * 1000)
			ids := make([]PageID, perG)
			for i := range ids {
				ids[i] = base + PageID(i)
			}
			for r := 0; r < rounds; r++ {
				outs := makeBatchOut(ids)
				if g%2 == 0 {
					if err := FirstError(b.SwapOutBatch(0, outs)); err != nil {
						t.Error(err)
						return
					}
				} else {
					for _, p := range outs {
						if err := b.SwapOut(0, p.ID, p.Data); err != nil {
							t.Error(err)
							return
						}
					}
				}
				_ = b.Stats()
				_ = b.Contains(ids[0])
				ins := makeBatchIn(ids)
				if err := FirstError(b.SwapInBatch(0, ins, r%2 == 0)); err != nil {
					t.Error(err)
					return
				}
				for i, p := range ins {
					if !bytes.Equal(p.Dst, outs[i].Data) {
						t.Errorf("goroutine %d round %d: page %d corrupted", g, r, p.ID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := b.Stats().StoredPages; got != 0 {
		t.Fatalf("StoredPages = %d after stress, want 0", got)
	}
	b.Compact()
}

// TestTracingBatch checks the tracing wrapper records batch operations
// exactly as a serial loop would.
func TestTracingBatch(t *testing.T) {
	tb := NewTracingBackend(NewCPUBackend(compress.NewLZFast(), 0))
	ids := []PageID{5, 6, 7}
	if err := FirstError(tb.SwapOutBatch(100, makeBatchOut(ids))); err != nil {
		t.Fatal(err)
	}
	if err := FirstError(tb.SwapInBatch(200, makeBatchIn(ids), true)); err != nil {
		t.Fatal(err)
	}
	recs := tb.Trace()
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for i, id := range ids {
		if recs[i].PageID != int64(id) || recs[i].Op != 'O' {
			t.Errorf("record %d = %+v, want swap-out of page %d", i, recs[i], id)
		}
		if recs[3+i].PageID != int64(id) || recs[3+i].Op != 'P' {
			t.Errorf("record %d = %+v, want prefetch of page %d", 3+i, recs[3+i], id)
		}
	}
}
