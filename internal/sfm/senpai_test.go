package sfm

import (
	"math/rand"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
)

func senpaiHeap(pages int) *Heap {
	h := NewHeap(NewCPUBackend(compress.NewLZFast(), 0))
	for i := 0; i < pages; i++ {
		data := make([]byte, PageSize)
		data[0] = byte(i) // avoid the same-filled path
		h.Alloc(0, data)
	}
	return h
}

func TestSenpaiFirstRunInitializes(t *testing.T) {
	h := senpaiHeap(100)
	c := NewSenpaiController(h)
	if n := c.Run(dram.Second); n != 0 {
		t.Errorf("first run demoted %d pages", n)
	}
	if c.Allowance() != 100 {
		t.Errorf("allowance = %d, want 100 (current resident set)", c.Allowance())
	}
}

func TestSenpaiShrinksUnderZeroPressure(t *testing.T) {
	h := senpaiHeap(100)
	c := NewSenpaiController(h)
	c.Run(dram.Second)
	// No faults ever occur: the controller should keep probing down.
	for i := 2; i <= 20; i++ {
		c.Run(dram.Ps(i) * dram.Second)
	}
	if c.Allowance() >= 100 {
		t.Errorf("allowance = %d, want shrunk below 100", c.Allowance())
	}
	if got := h.Stats().ResidentPages; got > c.Allowance() {
		t.Errorf("resident %d exceeds allowance %d", got, c.Allowance())
	}
	if h.Stats().FarPages == 0 {
		t.Error("no pages demoted despite zero pressure")
	}
}

func TestSenpaiBacksOffUnderPressure(t *testing.T) {
	h := senpaiHeap(100)
	c := NewSenpaiController(h)
	now := dram.Second
	c.Run(now)
	// Shrink for a while.
	for i := 0; i < 10; i++ {
		now += dram.Second
		c.Run(now)
	}
	shrunk := c.Allowance()
	// Now the workload touches demoted pages: demand faults = pressure.
	for _, id := range h.PageIDs() {
		if !h.Resident(id) {
			h.Touch(now, id)
		}
	}
	now += dram.Millisecond // short interval → high measured pressure
	c.Run(now)
	if c.Allowance() <= shrunk {
		t.Errorf("allowance %d did not grow after pressure (was %d)", c.Allowance(), shrunk)
	}
	if c.LastPressure <= c.TargetPressure {
		t.Errorf("pressure %.5f not above target %.5f", c.LastPressure, c.TargetPressure)
	}
}

func TestSenpaiRespectsFloor(t *testing.T) {
	h := senpaiHeap(20)
	c := NewSenpaiController(h)
	c.MinResidentPages = 15
	now := dram.Second
	c.Run(now)
	for i := 0; i < 100; i++ {
		now += dram.Second
		c.Run(now)
	}
	if c.Allowance() < 15 {
		t.Errorf("allowance %d fell below floor 15", c.Allowance())
	}
}

func TestSenpaiConvergesOnWorkingSet(t *testing.T) {
	// A Zipf workload over 200 pages with a hot head: senpai should
	// settle well below 200 resident pages without sustained pressure.
	h := senpaiHeap(200)
	c := NewSenpaiController(h)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.5, 1, 199)
	now := dram.Ps(0)
	for step := 0; step < 300; step++ {
		for i := 0; i < 50; i++ {
			now += 100 * dram.Microsecond
			h.Touch(now, PageID(zipf.Uint64()+1))
		}
		now += 10 * dram.Millisecond
		c.Run(now)
	}
	resident := h.Stats().ResidentPages
	if resident >= 190 {
		t.Errorf("resident = %d of 200; senpai failed to reclaim cold tail", resident)
	}
	if resident < c.MinResidentPages {
		t.Errorf("resident %d below floor", resident)
	}
}
