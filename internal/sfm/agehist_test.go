package sfm

import (
	"testing"

	"xfm/internal/dram"
)

// ageHeap builds a heap whose page i was last accessed at time
// i seconds.
func ageHeap(pages int) *Heap {
	h := NewHeap(newBackend())
	for i := 0; i < pages; i++ {
		data := make([]byte, PageSize)
		data[0] = byte(i)
		h.Alloc(dram.Ps(i)*dram.Second, data)
	}
	return h
}

func TestScanAgesBasics(t *testing.T) {
	h := ageHeap(10)
	now := 10 * dram.Second
	hist := ScanAges(h, now)
	if hist.Pages() != 10 {
		t.Fatalf("pages = %d", hist.Pages())
	}
	// Ages are 1..10 seconds. Half the pages are idle ≥ 6 s.
	if got := hist.ColdFraction(6 * dram.Second); got != 0.5 {
		t.Errorf("cold fraction at 6s = %v, want 0.5", got)
	}
	if got := hist.ColdFraction(0); got != 1 {
		t.Errorf("cold fraction at 0 = %v, want 1", got)
	}
	if got := hist.ColdFraction(100 * dram.Second); got != 0 {
		t.Errorf("cold fraction at 100s = %v, want 0", got)
	}
}

func TestThresholdForColdFraction(t *testing.T) {
	h := ageHeap(10)
	hist := ScanAges(h, 10*dram.Second)
	// Want 30% cold: threshold must be the age of the 3rd-oldest page
	// (8 s), and applying it must mark exactly 3 pages.
	thr, ok := hist.ThresholdForColdFraction(0.3)
	if !ok {
		t.Fatal("no threshold found")
	}
	if got := hist.ColdFraction(thr); got < 0.3 || got > 0.35 {
		t.Errorf("threshold %v yields cold fraction %v, want ≈0.3", thr, got)
	}
	if _, ok := hist.ThresholdForColdFraction(0); ok {
		t.Error("zero target accepted")
	}
	if _, ok := hist.ThresholdForColdFraction(1.5); ok {
		t.Error("target > 1 accepted")
	}
}

func TestQuantile(t *testing.T) {
	h := ageHeap(11)
	hist := ScanAges(h, 11*dram.Second)
	// Ages 1..11 s; median is 6 s.
	if got := hist.Quantile(0.5); got != 6*dram.Second {
		t.Errorf("median = %v, want 6 s", got)
	}
	if hist.Quantile(0) != dram.Second || hist.Quantile(1) != 11*dram.Second {
		t.Error("extreme quantiles wrong")
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := NewHeap(newBackend())
	hist := ScanAges(h, dram.Second)
	if hist.Pages() != 0 || hist.ColdFraction(0) != 0 || hist.Quantile(0.5) != 0 {
		t.Error("empty histogram misbehaves")
	}
	if _, ok := hist.ThresholdForColdFraction(0.3); ok {
		t.Error("empty histogram produced a threshold")
	}
}

func TestAdaptiveColdControllerHitsTarget(t *testing.T) {
	h := ageHeap(100)
	c := &AdaptiveColdController{Heap: h, TargetColdFraction: 0.30}
	demoted := c.Run(100 * dram.Second)
	if demoted < 28 || demoted > 32 {
		t.Errorf("demoted %d pages, want ≈30 (30%% of 100)", demoted)
	}
	if c.LastThreshold == 0 {
		t.Error("threshold not recorded")
	}
	// Precisely the oldest pages were demoted. Earlier allocation =
	// earlier last access = older, so the demoted set is the low
	// indexes.
	for i, id := range h.PageIDs() {
		resident := h.Resident(id)
		if i < demoted && resident {
			t.Errorf("old page %d not demoted", i)
		}
		if i >= demoted && !resident {
			t.Errorf("young page %d demoted", i)
		}
	}
}

func TestAdaptiveControllerMinThreshold(t *testing.T) {
	h := ageHeap(10)
	c := &AdaptiveColdController{
		Heap:               h,
		TargetColdFraction: 1.0,
		MinThreshold:       5 * dram.Second,
	}
	// Target says demote everything, but the floor protects pages idle
	// < 5 s (ages are 1..10 s ⇒ 6 qualify).
	demoted := c.Run(10 * dram.Second)
	if demoted != 6 {
		t.Errorf("demoted %d, want 6 (floor protects the rest)", demoted)
	}
}
