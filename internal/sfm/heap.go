package sfm

import (
	"fmt"

	"xfm/internal/dram"
)

// Heap is an application-integrated far-memory heap in the style of
// AIFM (§7): the application allocates page-granular objects, touches
// them over time, and the SFM controller moves cold pages between
// local memory and the compressed far-memory region.
type Heap struct {
	backend Backend
	pages   map[PageID]*pageInfo
	next    PageID

	stats HeapStats
}

type pageInfo struct {
	data       []byte // nil while swapped out
	lastAccess dram.Ps
}

// HeapStats counts heap-level swap activity.
type HeapStats struct {
	Allocated       int64
	ResidentPages   int64
	FarPages        int64
	DemandFaults    int64 // accesses that hit a swapped-out page
	PrefetchedPages int64 // preemptive promotions
	SwapOutFailures int64 // region-full or incompressible rejections
}

// NewHeap builds a heap over the given backend.
func NewHeap(b Backend) *Heap {
	return &Heap{backend: b, pages: map[PageID]*pageInfo{}, next: 1}
}

// Backend returns the heap's backend.
func (h *Heap) Backend() Backend { return h.backend }

// Stats returns heap counters.
func (h *Heap) Stats() HeapStats { return h.stats }

// Alloc creates a new resident page initialized with data (padded or
// truncated to PageSize) and returns its id.
func (h *Heap) Alloc(now dram.Ps, data []byte) PageID {
	page := make([]byte, PageSize)
	copy(page, data)
	id := h.next
	h.next++
	h.pages[id] = &pageInfo{data: page, lastAccess: now}
	h.stats.Allocated++
	h.stats.ResidentPages++
	return id
}

// Touch accesses a page: it returns the page bytes, swapping the page
// in first if it is in far memory (a demand fault, served by the CPU
// path). The returned slice aliases the heap's copy.
func (h *Heap) Touch(now dram.Ps, id PageID) ([]byte, error) {
	p, ok := h.pages[id]
	if !ok {
		return nil, fmt.Errorf("sfm: unknown page %d", id)
	}
	if p.data == nil {
		dst := make([]byte, PageSize)
		if err := h.backend.SwapIn(now, id, dst, false); err != nil {
			return nil, err
		}
		p.data = dst
		h.stats.DemandFaults++
		h.stats.ResidentPages++
		h.stats.FarPages--
	}
	p.lastAccess = now
	return p.data, nil
}

// Resident reports whether the page is in local memory.
func (h *Heap) Resident(id PageID) bool {
	p, ok := h.pages[id]
	return ok && p.data != nil
}

// LastAccess returns the page's last access time; ok is false for
// unknown pages.
func (h *Heap) LastAccess(id PageID) (dram.Ps, bool) {
	p, ok := h.pages[id]
	if !ok {
		return 0, false
	}
	return p.lastAccess, true
}

// SwapOut demotes a resident page to far memory. It is a no-op error
// if the page is already swapped out.
func (h *Heap) SwapOut(now dram.Ps, id PageID) error {
	p, ok := h.pages[id]
	if !ok {
		return fmt.Errorf("sfm: unknown page %d", id)
	}
	if p.data == nil {
		return ErrExists
	}
	if err := h.backend.SwapOut(now, id, p.data); err != nil {
		h.stats.SwapOutFailures++
		return err
	}
	p.data = nil
	h.stats.ResidentPages--
	h.stats.FarPages++
	return nil
}

// Prefetch preemptively promotes a far page back to local memory with
// the offload hint set, letting an NMA backend decompress it in
// memory (§6: prefetch-enabled xfm_swap_in).
func (h *Heap) Prefetch(now dram.Ps, id PageID) error {
	p, ok := h.pages[id]
	if !ok {
		return fmt.Errorf("sfm: unknown page %d", id)
	}
	if p.data != nil {
		return nil // already resident
	}
	dst := make([]byte, PageSize)
	if err := h.backend.SwapIn(now, id, dst, true); err != nil {
		return err
	}
	p.data = dst
	h.stats.PrefetchedPages++
	h.stats.ResidentPages++
	h.stats.FarPages--
	return nil
}

// PageIDs returns all page ids (resident and far) in allocation order.
func (h *Heap) PageIDs() []PageID {
	out := make([]PageID, 0, len(h.pages))
	for id := PageID(1); id < h.next; id++ {
		if _, ok := h.pages[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// Controller is the SFM control plane: it selects cold pages and
// initiates swap-outs (§6 "the SFM_Controller selects a cold page
// based on an algorithm or set of heuristics").
type Controller interface {
	// Run applies the policy at time now and returns how many pages
	// it swapped out.
	Run(now dram.Ps) int
}

// ColdScanController implements Google-style cold page scanning (§2.1:
// "Google's approach involves pre-emptively scanning for cold
// pages"): any resident page idle for at least ColdAfter is demoted.
type ColdScanController struct {
	Heap      *Heap
	ColdAfter dram.Ps
	// MaxPerRun bounds swap-outs per scan; 0 = unlimited.
	MaxPerRun int
}

// Run implements Controller.
func (c *ColdScanController) Run(now dram.Ps) int {
	n := 0
	for _, id := range c.Heap.PageIDs() {
		if c.MaxPerRun > 0 && n >= c.MaxPerRun {
			break
		}
		if !c.Heap.Resident(id) {
			continue
		}
		last, _ := c.Heap.LastAccess(id)
		if now-last >= c.ColdAfter {
			if c.Heap.SwapOut(now, id) == nil {
				n++
			}
		}
	}
	return n
}

// PressureController implements Meta-style pressure-driven reclaim
// (§2.1: "Meta utilizes pressure metrics exposed by the OS"): when
// resident pages exceed TargetResidentPages, the least recently used
// pages are demoted until the target is met.
type PressureController struct {
	Heap                *Heap
	TargetResidentPages int64
}

// Run implements Controller.
func (c *PressureController) Run(now dram.Ps) int {
	over := c.Heap.Stats().ResidentPages - c.TargetResidentPages
	if over <= 0 {
		return 0
	}
	// Collect resident pages sorted by last access (oldest first).
	type cand struct {
		id   PageID
		last dram.Ps
	}
	var cands []cand
	for _, id := range c.Heap.PageIDs() {
		if c.Heap.Resident(id) {
			last, _ := c.Heap.LastAccess(id)
			cands = append(cands, cand{id, last})
		}
	}
	// Insertion sort by last-access time; candidate lists are small in
	// the workloads and mostly sorted by allocation order.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].last < cands[j-1].last; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	n := 0
	for _, cd := range cands {
		if int64(n) >= over {
			break
		}
		if c.Heap.SwapOut(now, cd.id) == nil {
			n++
		}
	}
	return n
}
