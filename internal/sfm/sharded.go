package sfm

import (
	"strconv"
	"sync"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/parallel"
	"xfm/internal/telemetry"
)

// ShardedBackend partitions the far-memory region across several
// CPUBackends so a batch's (de)compression can run on every core at
// once. Pages are routed to shards by a hash of their PageID; each
// shard owns an independent page table and zsmalloc region behind its
// own mutex, so shard-disjoint operations never contend. This is the
// software analogue of the paper's per-rank NMA engines (§5): one
// compression unit per rank, all active in the same refresh window.
//
// Batches run on the two-stage page-granular pipeline in engine.go:
// codec work happens outside the shard locks on a persistent worker
// pool, and only the commit phase (index + allocator + stats) holds a
// lock. Batch semantics still match a serial loop over the same
// backend: results are aligned with the input slice, and within a
// shard pages are committed in input order, so stats and stored bytes
// are identical regardless of worker count.
type ShardedBackend struct {
	shards  []backendShard
	workers int
	pool    *parallel.Pool
	eng     batchEngine
}

type backendShard struct {
	mu sync.Mutex
	// b owns the shard's page table and zsmalloc region; CPUBackend is
	// single-owner, so every touch must hold the shard lock.
	b *CPUBackend //xfm:guardedby mu
	// stored mirrors the shard's StoredPages into the
	// sfm_shard_stored_pages{shard} gauge; cached here so the batch
	// path never takes the registry's label lookup. SetInt itself is
	// atomic, but the value written is read from b, so updates happen
	// under the same lock.
	stored *telemetry.Gauge //xfm:guardedby mu
	// pad spaces the shard locks apart so they do not false-share a
	// cache line when every worker is spinning on a different shard.
	_ [64]byte
}

// NewShardedBackend builds a sharded backend with nShards CPUBackends
// (clamped to ≥1), splitting regionBytes evenly across shards
// (regionBytes ≤ 0 means unlimited everywhere). workers bounds batch
// parallelism as in parallel.Workers: 0 means GOMAXPROCS. The codec is
// shared by all shards and must be safe for concurrent use — every
// codec in the compress package is (their mutable state is either
// stack-local or pooled).
func NewShardedBackend(codec compress.Codec, regionBytes int64, nShards, workers int) *ShardedBackend {
	if nShards < 1 {
		nShards = 1
	}
	perShard := regionBytes
	if regionBytes > 0 {
		perShard = regionBytes / int64(nShards)
		if perShard < PageSize {
			perShard = PageSize
		}
	}
	s := &ShardedBackend{
		shards:  make([]backendShard, nShards),
		workers: parallel.Workers(workers),
	}
	s.pool = parallel.NewPool(s.workers)
	for i := range s.shards {
		//xfm:ignore guardedby construction: the backend has not escaped to any other goroutine yet
		s.shards[i].b = NewCPUBackend(codec, perShard)
		//xfm:ignore guardedby construction: the backend has not escaped to any other goroutine yet
		s.shards[i].stored = gShardStoredPages.With(strconv.Itoa(i))
	}
	s.eng.init(s, codec)
	return s
}

// Shards returns the shard count.
func (s *ShardedBackend) Shards() int { return len(s.shards) }

// Close releases the backend's worker pool goroutines. Optional (idle
// workers only park on a channel); batches after Close degrade to the
// serial inline path.
func (s *ShardedBackend) Close() { s.pool.Close() }

// ShardIndexFor routes a page to its shard with a splitmix64-style
// mixer so sequential PageIDs spread across shards instead of
// clustering. Exported so tests and benchmarks can construct
// deliberately skewed batches (every page on one shard).
func ShardIndexFor(id PageID, nShards int) int {
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(nShards))
}

func (s *ShardedBackend) shardOf(id PageID) *backendShard {
	return &s.shards[ShardIndexFor(id, len(s.shards))]
}

// SwapOut implements Backend.
func (s *ShardedBackend) SwapOut(now dram.Ps, id PageID, data []byte) error {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.b.SwapOut(now, id, data)
	sh.stored.SetInt(sh.b.stats.StoredPages)
	return err
}

// SwapIn implements Backend.
func (s *ShardedBackend) SwapIn(now dram.Ps, id PageID, dst []byte, offload bool) error {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.b.SwapIn(now, id, dst, offload)
	sh.stored.SetInt(sh.b.stats.StoredPages)
	return err
}

// SwapOutBatch implements Backend: workers claim pages off an atomic
// counter, compress them with no lock held, and the last worker to
// finish a shard's pages commits that shard in input order (see
// batchEngine).
func (s *ShardedBackend) SwapOutBatch(now dram.Ps, pages []PageOut) []error {
	hBatchPages.Observe(float64(len(pages)))
	return s.eng.swapOutBatch(now, pages)
}

// SwapInBatch implements Backend: per-shard gather/detach under the
// lock, page-granular lock-free decompression from pinned slots, then
// per-shard free/stats commits (see batchEngine). The offload hint is
// ignored, as in the serial CPU path.
func (s *ShardedBackend) SwapInBatch(now dram.Ps, pages []PageIn, offload bool) []error {
	hBatchPages.Observe(float64(len(pages)))
	return s.eng.swapInBatch(now, pages)
}

// Contains implements Backend.
func (s *ShardedBackend) Contains(id PageID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.b.Contains(id)
}

// Compact implements Backend: every shard compacts; shards compact in
// parallel since their regions are independent.
func (s *ShardedBackend) Compact() int64 {
	moved := make([]int64, len(s.shards))
	s.pool.Run(len(s.shards), s.workers, func(_, si int) {
		sh := &s.shards[si]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		moved[si] = sh.b.Compact()
	})
	var total int64
	for _, m := range moved {
		total += m
	}
	return total
}

// Stats implements Backend, summing counters across shards.
func (s *ShardedBackend) Stats() BackendStats {
	var out BackendStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.b.Stats()
		sh.mu.Unlock()
		out.SwapOuts += st.SwapOuts
		out.SwapIns += st.SwapIns
		out.BytesIn += st.BytesIn
		out.BytesOut += st.BytesOut
		out.CompressedBytes += st.CompressedBytes
		out.StoredPages += st.StoredPages
		out.CPUCycles += st.CPUCycles
		out.IncompressiblePages += st.IncompressiblePages
		out.SameFilledPages += st.SameFilledPages
		out.CompactOnFull += st.CompactOnFull
		out.Region.Objects += st.Region.Objects
		out.Region.StoredBytes += st.Region.StoredBytes
		out.Region.PageBytes += st.Region.PageBytes
		out.Region.Allocs += st.Region.Allocs
		out.Region.Frees += st.Region.Frees
		out.Region.Compactions += st.Region.Compactions
		out.Region.CompactedBytes += st.Region.CompactedBytes
	}
	return out
}

var _ Backend = (*ShardedBackend)(nil)
