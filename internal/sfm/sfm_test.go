package sfm

import (
	"bytes"
	"math/rand"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
)

func newBackend() *CPUBackend {
	return NewCPUBackend(compress.NewLZFast(), 0)
}

func makePage(fill byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestSwapOutInRoundTrip(t *testing.T) {
	b := newBackend()
	page := makePage('A')
	if err := b.SwapOut(0, 1, page); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(1) {
		t.Fatal("page not in far memory after swap out")
	}
	dst := make([]byte, PageSize)
	if err := b.SwapIn(0, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, page) {
		t.Fatal("round trip corrupted page")
	}
	if b.Contains(1) {
		t.Error("page still in far memory after swap in")
	}
}

func TestSwapOutErrors(t *testing.T) {
	b := newBackend()
	if err := b.SwapOut(0, 1, []byte("short")); err == nil {
		t.Error("short page accepted")
	}
	page := makePage('x')
	if err := b.SwapOut(0, 1, page); err != nil {
		t.Fatal(err)
	}
	if err := b.SwapOut(0, 1, page); err != ErrExists {
		t.Errorf("duplicate swap out: err = %v, want ErrExists", err)
	}
}

func TestSwapInErrors(t *testing.T) {
	b := newBackend()
	dst := make([]byte, PageSize)
	if err := b.SwapIn(0, 42, dst, false); err != ErrNotFound {
		t.Errorf("missing page: err = %v, want ErrNotFound", err)
	}
	b.SwapOut(0, 1, makePage('x'))
	if err := b.SwapIn(0, 1, make([]byte, 10), false); err == nil {
		t.Error("short dst accepted")
	}
}

func TestIncompressiblePageStoredRaw(t *testing.T) {
	b := newBackend()
	page := make([]byte, PageSize)
	rand.New(rand.NewSource(1)).Read(page)
	if err := b.SwapOut(0, 1, page); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.IncompressiblePages != 1 {
		t.Errorf("incompressible pages = %d, want 1", st.IncompressiblePages)
	}
	dst := make([]byte, PageSize)
	if err := b.SwapIn(0, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, page) {
		t.Fatal("raw passthrough corrupted page")
	}
}

func TestRegionCapacityEnforced(t *testing.T) {
	// Region of 2 encapsulating pages; random pages stored raw take a
	// full page each.
	b := NewCPUBackend(compress.NewLZFast(), 2*4096)
	rng := rand.New(rand.NewSource(2))
	full := 0
	for i := 0; i < 5; i++ {
		page := make([]byte, PageSize)
		rng.Read(page)
		if err := b.SwapOut(0, PageID(i+1), page); err == ErrFull {
			full++
		}
	}
	if full == 0 {
		t.Error("region never reported full")
	}
}

func TestCompressionRatioTracked(t *testing.T) {
	b := newBackend()
	for i := 0; i < 10; i++ {
		// Repetitive but not same-filled (the first word differs), so
		// the page takes the codec path.
		page := makePage(byte(i))
		page[0] = byte(i + 1)
		b.SwapOut(0, PageID(i+1), page)
	}
	st := b.Stats()
	if r := st.CompressionRatio(); r < 10 {
		t.Errorf("ratio on constant pages = %.1f, want large", r)
	}
	if st.SwapOuts != 10 || st.StoredPages != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.CPUCycles <= 0 {
		t.Error("no CPU cycles accounted")
	}
}

func TestHeapTouchFaultsAndRestores(t *testing.T) {
	h := NewHeap(newBackend())
	id := h.Alloc(0, []byte("hello far memory"))
	if err := h.SwapOut(0, id); err != nil {
		t.Fatal(err)
	}
	if h.Resident(id) {
		t.Fatal("page still resident after swap out")
	}
	data, err := h.Touch(dram.Millisecond, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("hello far memory")) {
		t.Fatal("content lost")
	}
	st := h.Stats()
	if st.DemandFaults != 1 {
		t.Errorf("demand faults = %d, want 1", st.DemandFaults)
	}
	if st.ResidentPages != 1 || st.FarPages != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHeapPrefetch(t *testing.T) {
	h := NewHeap(newBackend())
	id := h.Alloc(0, []byte("prefetch me"))
	h.SwapOut(0, id)
	if err := h.Prefetch(0, id); err != nil {
		t.Fatal(err)
	}
	if !h.Resident(id) {
		t.Fatal("page not resident after prefetch")
	}
	st := h.Stats()
	if st.PrefetchedPages != 1 || st.DemandFaults != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Prefetching a resident page is a no-op.
	if err := h.Prefetch(0, id); err != nil {
		t.Fatal(err)
	}
	if h.Stats().PrefetchedPages != 1 {
		t.Error("resident prefetch counted")
	}
}

func TestHeapDoubleSwapOut(t *testing.T) {
	h := NewHeap(newBackend())
	id := h.Alloc(0, nil)
	if err := h.SwapOut(0, id); err != nil {
		t.Fatal(err)
	}
	if err := h.SwapOut(0, id); err != ErrExists {
		t.Errorf("double swap out: err = %v, want ErrExists", err)
	}
}

func TestHeapUnknownPage(t *testing.T) {
	h := NewHeap(newBackend())
	if _, err := h.Touch(0, 123); err == nil {
		t.Error("touch of unknown page succeeded")
	}
	if err := h.SwapOut(0, 123); err == nil {
		t.Error("swap out of unknown page succeeded")
	}
	if err := h.Prefetch(0, 123); err == nil {
		t.Error("prefetch of unknown page succeeded")
	}
}

func TestColdScanControllerDemotesIdlePages(t *testing.T) {
	h := NewHeap(newBackend())
	hot := h.Alloc(0, []byte("hot"))
	cold := h.Alloc(0, []byte("cold"))
	// Advance: touch only the hot page.
	now := 120 * dram.Second
	h.Touch(now, hot)
	ctl := &ColdScanController{Heap: h, ColdAfter: 60 * dram.Second}
	n := ctl.Run(now)
	if n != 1 {
		t.Fatalf("controller demoted %d pages, want 1", n)
	}
	if !h.Resident(hot) {
		t.Error("hot page demoted")
	}
	if h.Resident(cold) {
		t.Error("cold page not demoted")
	}
}

func TestColdScanMaxPerRun(t *testing.T) {
	h := NewHeap(newBackend())
	for i := 0; i < 10; i++ {
		h.Alloc(0, nil)
	}
	ctl := &ColdScanController{Heap: h, ColdAfter: dram.Second, MaxPerRun: 3}
	if n := ctl.Run(10 * dram.Second); n != 3 {
		t.Errorf("demoted %d, want 3", n)
	}
}

func TestPressureControllerEvictsLRU(t *testing.T) {
	h := NewHeap(newBackend())
	var ids []PageID
	for i := 0; i < 6; i++ {
		ids = append(ids, h.Alloc(dram.Ps(i)*dram.Second, nil))
	}
	// Touch pages 0 and 1 recently: they become MRU.
	h.Touch(100*dram.Second, ids[0])
	h.Touch(101*dram.Second, ids[1])
	ctl := &PressureController{Heap: h, TargetResidentPages: 3}
	n := ctl.Run(200 * dram.Second)
	if n != 3 {
		t.Fatalf("evicted %d, want 3", n)
	}
	// The three oldest by last access are ids[2..4].
	for _, id := range ids[2:5] {
		if h.Resident(id) {
			t.Errorf("LRU page %d not evicted", id)
		}
	}
	for _, id := range []PageID{ids[0], ids[1], ids[5]} {
		if !h.Resident(id) {
			t.Errorf("MRU page %d evicted", id)
		}
	}
}

func TestPressureControllerNoopUnderTarget(t *testing.T) {
	h := NewHeap(newBackend())
	h.Alloc(0, nil)
	ctl := &PressureController{Heap: h, TargetResidentPages: 5}
	if n := ctl.Run(dram.Second); n != 0 {
		t.Errorf("evicted %d under target", n)
	}
}

// TestHeapContentFidelityUnderChurn drives random swap traffic and
// verifies every page keeps its content.
func TestHeapContentFidelityUnderChurn(t *testing.T) {
	h := NewHeap(NewCPUBackend(compress.NewXDeflate(), 0))
	rng := rand.New(rand.NewSource(77))
	want := map[PageID]byte{}
	var ids []PageID
	for i := 0; i < 50; i++ {
		fill := byte(rng.Intn(256))
		id := h.Alloc(0, makePage(fill))
		want[id] = fill
		ids = append(ids, id)
	}
	for op := 0; op < 2000; op++ {
		id := ids[rng.Intn(len(ids))]
		now := dram.Ps(op) * dram.Microsecond
		switch rng.Intn(3) {
		case 0:
			if h.Resident(id) {
				h.SwapOut(now, id)
			}
		case 1:
			data, err := h.Touch(now, id)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != want[id] || data[PageSize-1] != want[id] {
				t.Fatalf("page %d content lost", id)
			}
		case 2:
			h.Prefetch(now, id)
		}
	}
	for _, id := range ids {
		data, err := h.Touch(dram.Second, id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != want[id] {
			t.Fatalf("final content of %d wrong", id)
		}
	}
}

func TestBackendCompactAfterChurn(t *testing.T) {
	b := newBackend()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		page := make([]byte, PageSize)
		for j := range page {
			page[j] = byte(rng.Intn(4)) // compressible but varied sizes
		}
		if err := b.SwapOut(0, PageID(i+1), page); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]byte, PageSize)
	for i := 0; i < 100; i += 2 {
		if err := b.SwapIn(0, PageID(i+1), dst, false); err != nil {
			t.Fatal(err)
		}
	}
	before := b.Stats().Region.PageBytes
	b.Compact()
	after := b.Stats().Region.PageBytes
	if after > before {
		t.Errorf("compaction grew the region: %d -> %d", before, after)
	}
	// Remaining pages still correct.
	for i := 1; i < 100; i += 2 {
		if err := b.SwapIn(0, PageID(i+1), dst, false); err != nil {
			t.Fatalf("page %d after compact: %v", i+1, err)
		}
	}
}

func BenchmarkSwapOutCompressible(b *testing.B) {
	back := newBackend()
	page := makePage('z')
	dst := make([]byte, PageSize)
	for i := 0; i < b.N; i++ {
		id := PageID(i + 1)
		if err := back.SwapOut(0, id, page); err != nil {
			b.Fatal(err)
		}
		if err := back.SwapIn(0, id, dst, false); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSameFilledPageOptimization(t *testing.T) {
	b := newBackend()
	// A zero page and a constant-word page store without zsmalloc.
	zero := make([]byte, PageSize)
	if err := b.SwapOut(0, 1, zero); err != nil {
		t.Fatal(err)
	}
	patterned := make([]byte, PageSize)
	for off := 0; off < PageSize; off += 8 {
		copy(patterned[off:], []byte{0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef})
	}
	if err := b.SwapOut(0, 2, patterned); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.SameFilledPages != 2 {
		t.Errorf("same-filled pages = %d, want 2", st.SameFilledPages)
	}
	if st.Region.PageBytes != 0 {
		t.Errorf("same-filled pages consumed %d region bytes, want 0", st.Region.PageBytes)
	}
	dst := make([]byte, PageSize)
	if err := b.SwapIn(0, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, zero) {
		t.Error("zero page corrupted")
	}
	if err := b.SwapIn(0, 2, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, patterned) {
		t.Error("patterned page corrupted")
	}
	if b.Stats().StoredPages != 0 {
		t.Error("pages not removed after swap in")
	}
}

func TestAlmostSameFilledGoesToCodec(t *testing.T) {
	b := newBackend()
	page := make([]byte, PageSize)
	page[PageSize-1] = 1 // breaks the fill pattern
	if err := b.SwapOut(0, 1, page); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.SameFilledPages != 0 {
		t.Error("non-uniform page treated as same-filled")
	}
	if st.Region.PageBytes == 0 {
		t.Error("page not stored in region")
	}
	dst := make([]byte, PageSize)
	if err := b.SwapIn(0, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, page) {
		t.Error("content corrupted")
	}
}

func TestCompactOnFullRecoversSpace(t *testing.T) {
	// Region of 4 encapsulating pages. Fill two pages with small-class
	// objects and two with big-class objects, punch holes in the small
	// class, then store another big object: only compaction (merging
	// the sparse small-class pages) frees a whole page for it.
	b := NewCPUBackend(compress.NewLZFast(), 4*4096)
	mixed := func(seed int64, randomBytes int) []byte {
		// Compresses to ≈ randomBytes (+ small framing).
		p := make([]byte, PageSize)
		rand.New(rand.NewSource(seed)).Read(p[:randomBytes])
		return p
	}
	// Small class (~1.25 KiB compressed, 3 slots per page): 6 objects
	// fill 2 pages.
	for i := 0; i < 6; i++ {
		if err := b.SwapOut(0, PageID(i+1), mixed(int64(i), 1200)); err != nil {
			t.Fatalf("small fill %d: %v", i, err)
		}
	}
	// Big class (~2.4 KiB compressed, 1 slot per page): 2 objects fill
	// the remaining 2 pages.
	for i := 0; i < 2; i++ {
		if err := b.SwapOut(0, PageID(100+i), mixed(int64(100+i), 2400)); err != nil {
			t.Fatalf("big fill %d: %v", i, err)
		}
	}
	// Punch holes: free 4 of the 6 small objects.
	dst := make([]byte, PageSize)
	for _, id := range []PageID{1, 2, 4, 6} {
		if err := b.SwapIn(0, id, dst, false); err != nil {
			t.Fatal(err)
		}
	}
	// Another big object needs a fresh page: capacity-triggered
	// compaction must consolidate the small class and make room.
	if err := b.SwapOut(0, 200, mixed(200, 2400)); err != nil {
		t.Fatalf("post-fragmentation store failed: %v", err)
	}
	if got := b.Stats().CompactOnFull; got == 0 {
		t.Error("capacity-triggered compaction not recorded")
	}
}
