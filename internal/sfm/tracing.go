package sfm

import (
	"xfm/internal/dram"
	"xfm/internal/trace"
)

// TracingBackend wraps any Backend and records every swap operation as
// a trace.Record — the capture point the paper's methodology implies
// ("Swap-in/out traces are generated using the AIFM userspace far
// memory framework", §7). Demand swap-ins and offloadable prefetches
// are distinguished by the offload hint.
type TracingBackend struct {
	inner Backend
	recs  []trace.Record
}

// NewTracingBackend wraps inner.
func NewTracingBackend(inner Backend) *TracingBackend {
	return &TracingBackend{inner: inner}
}

// record appends one swap record.
func (t *TracingBackend) record(now dram.Ps, op trace.Op, id PageID) {
	t.recs = append(t.recs, trace.Record{
		AtPs: int64(now), Op: op, PageID: int64(id), Bytes: PageSize,
	})
}

// SwapOut implements Backend.
func (t *TracingBackend) SwapOut(now dram.Ps, id PageID, data []byte) error {
	if err := t.inner.SwapOut(now, id, data); err != nil {
		return err
	}
	t.record(now, trace.SwapOut, id)
	return nil
}

// SwapIn implements Backend.
func (t *TracingBackend) SwapIn(now dram.Ps, id PageID, dst []byte, offload bool) error {
	if err := t.inner.SwapIn(now, id, dst, offload); err != nil {
		return err
	}
	op := trace.SwapIn
	if offload {
		op = trace.Prefetch
	}
	t.record(now, op, id)
	return nil
}

// Contains implements Backend.
func (t *TracingBackend) Contains(id PageID) bool { return t.inner.Contains(id) }

// Compact implements Backend.
func (t *TracingBackend) Compact() int64 { return t.inner.Compact() }

// Stats implements Backend.
func (t *TracingBackend) Stats() BackendStats { return t.inner.Stats() }

// Trace returns the records captured so far (shared slice; callers
// must not mutate).
func (t *TracingBackend) Trace() []trace.Record { return t.recs }

// WriteTrace drains the captured records into w and clears the buffer.
func (t *TracingBackend) WriteTrace(w *trace.Writer) error {
	for _, r := range t.recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	t.recs = t.recs[:0]
	return w.Flush()
}

var _ Backend = (*TracingBackend)(nil)
