package sfm

import (
	"xfm/internal/dram"
	"xfm/internal/telemetry"
	"xfm/internal/trace"
)

// TracingBackend wraps any Backend and records every swap operation as
// a trace.Record — the capture point the paper's methodology implies
// ("Swap-in/out traces are generated using the AIFM userspace far
// memory framework", §7). Demand swap-ins and offloadable prefetches
// are distinguished by the offload hint.
//
// The record path doubles as a telemetry capture point: when the
// configured span tracer is enabled, every swap operation is also
// emitted as an instant event on a "swap" track, so the trace.Writer
// file and the Chrome-trace timeline export are fed by one code path.
type TracingBackend struct {
	inner Backend
	recs  []trace.Record

	tracer *telemetry.Tracer
	track  int
}

// NewTracingBackend wraps inner.
func NewTracingBackend(inner Backend) *TracingBackend {
	return NewTracingBackendCapacity(inner, 0)
}

// NewTracingBackendCapacity wraps inner with room for capacity records
// preallocated, so long captures append without growing the slice.
func NewTracingBackendCapacity(inner Backend, capacity int) *TracingBackend {
	t := &TracingBackend{inner: inner, tracer: telemetry.DefaultTracer(), track: -1}
	if capacity > 0 {
		t.recs = make([]trace.Record, 0, capacity)
	}
	return t
}

// SetTracer redirects the telemetry mirror to tr (nil disables it);
// tests inject private tracers here.
func (t *TracingBackend) SetTracer(tr *telemetry.Tracer) {
	t.tracer = tr
	t.track = -1
}

// record appends one swap record and mirrors it into the span tracer.
//
//xfm:allocok tracing mirror allocates span args only in traced diagnostic runs, never in steady-state benchmarks
func (t *TracingBackend) record(now dram.Ps, op trace.Op, id PageID) {
	t.recs = append(t.recs, trace.Record{
		AtPs: int64(now), Op: op, PageID: int64(id), Bytes: PageSize,
	})
	if t.tracer != nil && t.tracer.Enabled() {
		if t.track < 0 {
			t.track = t.tracer.NewTrack("swap")
		}
		t.tracer.Instant(t.track, "swap-"+op.String(), "swap", int64(now), map[string]int64{
			"page":  int64(id),
			"bytes": PageSize,
		})
	}
}

// SwapOut implements Backend.
func (t *TracingBackend) SwapOut(now dram.Ps, id PageID, data []byte) error {
	if err := t.inner.SwapOut(now, id, data); err != nil {
		return err
	}
	t.record(now, trace.SwapOut, id)
	return nil
}

// SwapIn implements Backend.
func (t *TracingBackend) SwapIn(now dram.Ps, id PageID, dst []byte, offload bool) error {
	if err := t.inner.SwapIn(now, id, dst, offload); err != nil {
		return err
	}
	op := trace.SwapIn
	if offload {
		op = trace.Prefetch
	}
	t.record(now, op, id)
	return nil
}

// Contains implements Backend.
func (t *TracingBackend) Contains(id PageID) bool { return t.inner.Contains(id) }

// Compact implements Backend.
func (t *TracingBackend) Compact() int64 { return t.inner.Compact() }

// Stats implements Backend.
func (t *TracingBackend) Stats() BackendStats { return t.inner.Stats() }

// Trace returns the records captured so far (shared slice; callers
// must not mutate).
func (t *TracingBackend) Trace() []trace.Record { return t.recs }

// Reset discards the captured records, keeping the allocated capacity
// for the next capture.
func (t *TracingBackend) Reset() { t.recs = t.recs[:0] }

// WriteTrace drains the captured records into w and clears the buffer.
func (t *TracingBackend) WriteTrace(w *trace.Writer) error {
	for _, r := range t.recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	t.recs = t.recs[:0]
	return w.Flush()
}

var _ Backend = (*TracingBackend)(nil)
