// Package sfm implements the software-defined far memory stack of the
// paper (§2.1, §6): an application-integrated far-memory heap (in the
// style of AIFM), a cold-page-selection control plane (Google-style
// age scanning and Meta-style pressure control), and a zswap-like
// backend that compresses cold pages into a zsmalloc-managed region
// indexed by a red-black tree.
package sfm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/rbtree"
	"xfm/internal/zsmalloc"
)

// PageSize is the OS page granularity of all swap operations (§7:
// "Objects are allocated at the traditional page-size granularity").
const PageSize = 4096

// PageID identifies an application page.
type PageID int64

// Errors returned by backends.
var (
	ErrNotFound = errors.New("sfm: page not in far memory")
	ErrExists   = errors.New("sfm: page already in far memory")
	ErrFull     = errors.New("sfm: far memory region full")
)

// Backend stores compressed cold pages and restores them on demand.
// SwapOut corresponds to the paper's swapOut()/xfm_swap_out() control
// flow and SwapIn to swapIn()/xfm_swap_in() (§6).
type Backend interface {
	// SwapOut compresses data (one page) and stores it under id.
	SwapOut(now dram.Ps, id PageID, data []byte) error
	// SwapIn decompresses the page stored under id into dst (len
	// PageSize) and removes it from far memory. The offload hint is
	// true for preemptive promotions (prefetch), where the controller
	// permits NMA offloading; demand faults pass false and the
	// backend must take the low-latency CPU path (§6: "CPU_Fallback
	// is called by default unless the do_offload parameter is
	// asserted").
	SwapIn(now dram.Ps, id PageID, dst []byte, offload bool) error
	// SwapOutBatch swaps out every page in pages and returns one error
	// slot per page (nil on success), aligned with the input. Batches
	// are the unit of offload submission in the paper (§5: swap traffic
	// is batched per tREFI window); backends with internal sharding run
	// the (de)compression of a batch in parallel.
	SwapOutBatch(now dram.Ps, pages []PageOut) []error
	// SwapInBatch swaps in every page in pages with the given offload
	// hint, returning one error slot per page.
	SwapInBatch(now dram.Ps, pages []PageIn, offload bool) []error
	// Contains reports whether id is stored.
	Contains(id PageID) bool
	// Compact defragments the region and returns bytes moved.
	Compact() int64
	// Stats returns accumulated counters.
	Stats() BackendStats
}

// BackendStats aggregates backend activity. Cycle counts follow each
// codec's CodecInfo model and feed the §3 cost model.
type BackendStats struct {
	SwapOuts, SwapIns   int64
	BytesIn, BytesOut   int64 // uncompressed bytes swapped out / in
	CompressedBytes     int64 // current bytes stored (compressed)
	StoredPages         int64 // current page count
	CPUCycles           float64
	IncompressiblePages int64
	SameFilledPages     int64
	CompactOnFull       int64 // capacity-triggered compactions (§6)
	Region              zsmalloc.Stats

	// Offloads and Fallbacks are populated by NMA-backed backends.
	Offloads, Fallbacks int64
}

// CompressionRatio returns lifetime original/compressed over all
// swap-outs.
func (s BackendStats) CompressionRatio() float64 {
	if s.Region.StoredBytes == 0 || s.StoredPages == 0 {
		return 1
	}
	return float64(s.StoredPages) * PageSize / float64(s.Region.StoredBytes)
}

// CPUBackend is the baseline zswap-style backend: the CPU compresses
// and decompresses pages synchronously with a software codec.
//
// CPUBackend is not safe for concurrent use; it is either owned by one
// goroutine or wrapped in a ShardedBackend shard (which serializes
// access per shard). That single-owner property lets it embed one
// compress.Scratch whose buffers the swap hot path reuses instead of
// allocating per page.
type CPUBackend struct {
	codec   compress.Codec
	alloc   *zsmalloc.Allocator
	index   *rbtree.Tree[PageID, entry]
	stats   BackendStats
	scratch compress.Scratch
}

type entry struct {
	handle  zsmalloc.Handle
	rawSize int
	stored  bool // false when kept uncompressed (incompressible page)
	// sameFilled marks a page whose every 8-byte word equals fillWord:
	// zswap stores such pages as just the word, with no zsmalloc
	// allocation at all (the "same-filled page" optimization).
	sameFilled bool
	fillWord   uint64
}

// NewCPUBackend builds a CPU backend with the given codec and a far
// memory region limited to regionBytes of encapsulating pages
// (regionBytes ≤ 0 means unlimited).
func NewCPUBackend(codec compress.Codec, regionBytes int64) *CPUBackend {
	return &CPUBackend{
		codec: codec,
		alloc: zsmalloc.New(regionBytes),
		index: rbtree.New[PageID, entry](func(a, b PageID) bool { return a < b }),
	}
}

// sameFilledWord reports whether every aligned 8-byte word of the
// page equals the first one, returning that word. The scan runs 32
// bytes per iteration with the four XORs OR-combined into one branch,
// so the common early-mismatch case (an ordinary page) exits after one
// cache line and the all-same case (a zero page) runs four loads per
// branch instead of one.
//
//xfm:hotpath
func sameFilledWord(data []byte) (uint64, bool) {
	w0 := binary.LittleEndian.Uint64(data)
	off := 8
	for ; off+32 <= len(data); off += 32 {
		x := (binary.LittleEndian.Uint64(data[off:]) ^ w0) |
			(binary.LittleEndian.Uint64(data[off+8:]) ^ w0) |
			(binary.LittleEndian.Uint64(data[off+16:]) ^ w0) |
			(binary.LittleEndian.Uint64(data[off+24:]) ^ w0)
		if x != 0 {
			return 0, false
		}
	}
	for ; off+8 <= len(data); off += 8 {
		if binary.LittleEndian.Uint64(data[off:]) != w0 {
			return 0, false
		}
	}
	return w0, true
}

// SwapOut implements Backend.
//
//xfm:hotpath
func (b *CPUBackend) SwapOut(now dram.Ps, id PageID, data []byte) error {
	if len(data) != PageSize {
		//xfm:ignore hotpath-alloc cold validation path, only reachable by a caller bug
		return fmt.Errorf("sfm: page %d has %d bytes, want %d", id, len(data), PageSize)
	}
	if _, dup := b.index.Get(id); dup {
		return ErrExists
	}
	if w, same := sameFilledWord(data); same {
		// Same-filled page: store only the fill word (zswap's
		// optimization; zero pages are the common case).
		b.index.Put(id, entry{rawSize: PageSize, sameFilled: true, fillWord: w})
		b.stats.SwapOuts++
		b.stats.BytesOut += PageSize
		b.stats.StoredPages++
		b.stats.SameFilledPages++
		cSwapOuts.Inc()
		cSameFilled.Inc()
		return nil
	}
	// Compress into the backend's scratch buffer: zsmalloc copies the
	// bytes into its slot, so the staging buffer is reusable right
	// after Alloc and the hot path allocates nothing per page.
	comp := b.scratch.Compress(b.codec, data)
	stored := comp
	e := entry{rawSize: PageSize, stored: true}
	if len(comp) >= PageSize {
		// Incompressible page: store raw, like zswap's same-size
		// passthrough.
		stored = data
		e.stored = false
		b.stats.IncompressiblePages++
		cIncompressible.Inc()
	}
	h, err := b.alloc.Alloc(stored)
	if err == zsmalloc.ErrCapacity {
		// §6: swapOut "initiates an internal compaction operation if
		// the SFM capacity limit is hit", then retries once.
		b.alloc.Compact()
		b.stats.CompactOnFull++
		cCompactOnFull.Inc()
		h, err = b.alloc.Alloc(stored)
	}
	if err != nil {
		if err == zsmalloc.ErrCapacity {
			return ErrFull
		}
		return err
	}
	e.handle = h
	b.index.Put(id, e)
	b.stats.SwapOuts++
	b.stats.BytesOut += PageSize
	b.stats.StoredPages++
	b.stats.CompressedBytes += int64(len(stored))
	b.stats.CPUCycles += b.codec.Info().CompressCyclesPerByte * PageSize
	cSwapOuts.Inc()
	hCompressedBytes.Observe(float64(len(stored)))
	return nil
}

// SwapIn implements Backend. The CPU backend ignores the offload hint:
// every swap-in runs on the CPU.
//
//xfm:hotpath
func (b *CPUBackend) SwapIn(now dram.Ps, id PageID, dst []byte, offload bool) error {
	if len(dst) != PageSize {
		//xfm:ignore hotpath-alloc cold validation path, only reachable by a caller bug
		return fmt.Errorf("sfm: dst has %d bytes, want %d", len(dst), PageSize)
	}
	e, ok := b.index.Get(id)
	if !ok {
		return ErrNotFound
	}
	if e.sameFilled {
		for off := 0; off < PageSize; off += 8 {
			binary.LittleEndian.PutUint64(dst[off:], e.fillWord)
		}
		b.index.Delete(id)
		b.stats.SwapIns++
		b.stats.BytesIn += PageSize
		b.stats.StoredPages--
		cSwapIns.Inc()
		return nil
	}
	raw, err := b.alloc.Get(b.scratch.Raw[:0], e.handle)
	b.scratch.Raw = raw[:0]
	if err != nil {
		return err
	}
	if e.stored {
		out, err := b.codec.Decompress(dst[:0], raw)
		if err != nil {
			return err
		}
		if len(out) != PageSize {
			//xfm:ignore hotpath-alloc cold corruption path; a short page is already a data-loss event
			return fmt.Errorf("sfm: page %d decompressed to %d bytes", id, len(out))
		}
	} else {
		copy(dst, raw)
	}
	if err := b.alloc.Free(e.handle); err != nil {
		return err
	}
	b.index.Delete(id)
	b.stats.SwapIns++
	b.stats.BytesIn += PageSize
	b.stats.StoredPages--
	b.stats.CompressedBytes -= int64(len(raw))
	b.stats.CPUCycles += b.codec.Info().DecompressCyclesPerByte * PageSize
	cSwapIns.Inc()
	return nil
}

// Contains implements Backend.
func (b *CPUBackend) Contains(id PageID) bool {
	_, ok := b.index.Get(id)
	return ok
}

// Compact implements Backend.
func (b *CPUBackend) Compact() int64 { return b.alloc.Compact() }

// Stats implements Backend.
func (b *CPUBackend) Stats() BackendStats {
	s := b.stats
	s.Region = b.alloc.Stats()
	return s
}

// StoredPageIDs returns the ids currently in far memory in ascending
// order (compaction and inspection helper).
func (b *CPUBackend) StoredPageIDs() []PageID {
	return b.index.Keys()
}
