// Package sfm implements the software-defined far memory stack of the
// paper (§2.1, §6): an application-integrated far-memory heap (in the
// style of AIFM), a cold-page-selection control plane (Google-style
// age scanning and Meta-style pressure control), and a zswap-like
// backend that compresses cold pages into a zsmalloc-managed region
// indexed by a red-black tree.
package sfm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/rbtree"
	"xfm/internal/zsmalloc"
)

// PageSize is the OS page granularity of all swap operations (§7:
// "Objects are allocated at the traditional page-size granularity").
const PageSize = 4096

// PageID identifies an application page.
type PageID int64

// Errors returned by backends.
var (
	ErrNotFound = errors.New("sfm: page not in far memory")
	ErrExists   = errors.New("sfm: page already in far memory")
	ErrFull     = errors.New("sfm: far memory region full")
)

// Backend stores compressed cold pages and restores them on demand.
// SwapOut corresponds to the paper's swapOut()/xfm_swap_out() control
// flow and SwapIn to swapIn()/xfm_swap_in() (§6).
type Backend interface {
	// SwapOut compresses data (one page) and stores it under id.
	SwapOut(now dram.Ps, id PageID, data []byte) error
	// SwapIn decompresses the page stored under id into dst (len
	// PageSize) and removes it from far memory. The offload hint is
	// true for preemptive promotions (prefetch), where the controller
	// permits NMA offloading; demand faults pass false and the
	// backend must take the low-latency CPU path (§6: "CPU_Fallback
	// is called by default unless the do_offload parameter is
	// asserted").
	SwapIn(now dram.Ps, id PageID, dst []byte, offload bool) error
	// SwapOutBatch swaps out every page in pages and returns one error
	// slot per page (nil on success), aligned with the input. Batches
	// are the unit of offload submission in the paper (§5: swap traffic
	// is batched per tREFI window); backends with internal sharding run
	// the (de)compression of a batch in parallel.
	SwapOutBatch(now dram.Ps, pages []PageOut) []error
	// SwapInBatch swaps in every page in pages with the given offload
	// hint, returning one error slot per page.
	SwapInBatch(now dram.Ps, pages []PageIn, offload bool) []error
	// Contains reports whether id is stored.
	Contains(id PageID) bool
	// Compact defragments the region and returns bytes moved.
	Compact() int64
	// Stats returns accumulated counters.
	Stats() BackendStats
}

// BackendStats aggregates backend activity. Cycle counts follow each
// codec's CodecInfo model and feed the §3 cost model.
type BackendStats struct {
	SwapOuts, SwapIns   int64
	BytesIn, BytesOut   int64 // uncompressed bytes swapped out / in
	CompressedBytes     int64 // current bytes stored (compressed)
	StoredPages         int64 // current page count
	CPUCycles           float64
	IncompressiblePages int64
	SameFilledPages     int64
	CompactOnFull       int64 // capacity-triggered compactions (§6)
	Region              zsmalloc.Stats

	// Offloads and Fallbacks are populated by NMA-backed backends.
	Offloads, Fallbacks int64
}

// CompressionRatio returns lifetime original/compressed over all
// swap-outs.
func (s BackendStats) CompressionRatio() float64 {
	if s.Region.StoredBytes == 0 || s.StoredPages == 0 {
		return 1
	}
	return float64(s.StoredPages) * PageSize / float64(s.Region.StoredBytes)
}

// CPUBackend is the baseline zswap-style backend: the CPU compresses
// and decompresses pages synchronously with a software codec.
//
// CPUBackend is not safe for concurrent use; it is either owned by one
// goroutine or wrapped in a ShardedBackend shard (which serializes
// access per shard). That single-owner property lets it embed one
// compress.Scratch whose buffers the swap hot path reuses instead of
// allocating per page.
type CPUBackend struct {
	codec   compress.Codec
	alloc   *zsmalloc.Allocator
	index   *rbtree.Tree[PageID, entry]
	stats   BackendStats
	scratch compress.Scratch
}

type entry struct {
	handle  zsmalloc.Handle
	rawSize int
	stored  bool // false when kept uncompressed (incompressible page)
	// sameFilled marks a page whose every 8-byte word equals fillWord:
	// zswap stores such pages as just the word, with no zsmalloc
	// allocation at all (the "same-filled page" optimization).
	sameFilled bool
	fillWord   uint64
}

// NewCPUBackend builds a CPU backend with the given codec and a far
// memory region limited to regionBytes of encapsulating pages
// (regionBytes ≤ 0 means unlimited).
func NewCPUBackend(codec compress.Codec, regionBytes int64) *CPUBackend {
	return &CPUBackend{
		codec: codec,
		alloc: zsmalloc.New(regionBytes),
		index: rbtree.New[PageID, entry](func(a, b PageID) bool { return a < b }),
	}
}

// sameFilledWord reports whether every aligned 8-byte word of the
// page equals the first one, returning that word. The scan runs 32
// bytes per iteration with the four XORs OR-combined into one branch,
// so the common early-mismatch case (an ordinary page) exits after one
// cache line and the all-same case (a zero page) runs four loads per
// branch instead of one.
//
//xfm:hotpath
func sameFilledWord(data []byte) (uint64, bool) {
	w0 := binary.LittleEndian.Uint64(data)
	off := 8
	for ; off+32 <= len(data); off += 32 {
		x := (binary.LittleEndian.Uint64(data[off:]) ^ w0) |
			(binary.LittleEndian.Uint64(data[off+8:]) ^ w0) |
			(binary.LittleEndian.Uint64(data[off+16:]) ^ w0) |
			(binary.LittleEndian.Uint64(data[off+24:]) ^ w0)
		if x != 0 {
			return 0, false
		}
	}
	for ; off+8 <= len(data); off += 8 {
		if binary.LittleEndian.Uint64(data[off:]) != w0 {
			return 0, false
		}
	}
	return w0, true
}

// The swap paths are split into a pure stage half and a mutating
// commit half so the batch engine (engine.go) can run the expensive
// codec work outside the shard locks: stageOut/decompressIn touch no
// backend state and may run on any worker, while commitOut /
// gatherIn / commitIn are the only code that mutates the index, the
// allocator, or stats — under the shard lock when the backend is a
// ShardedBackend shard. The single-page SwapOut/SwapIn wrappers run
// the same two halves back to back, so serial and batched executions
// share one code path and stay bit-identical.

// pageClass classifies a staged swap-out page.
type pageClass int8

const (
	classError pageClass = iota
	classSameFilled
	classCompressed
	classIncompressible
)

// outPlan is the staged form of one swap-out page: everything the
// commit phase needs, produced without touching backend state.
type outPlan struct {
	class    pageClass
	fillWord uint64
	comp     []byte // compressed bytes (classCompressed); arena-backed
	err      error  // classError only
}

// stageOut classifies and compresses one swap-out page. It is pure:
// no backend state is read or written, so any worker may run it
// without a lock. Compressed output is appended to arena (a
// per-worker buffer); the returned plan's comp slice aliases it, and
// stays valid across later appends even if the arena's backing array
// is reallocated by growth.
//
//xfm:hotpath
func stageOut(codec compress.Codec, id PageID, data []byte, arena []byte) (outPlan, []byte) {
	if len(data) != PageSize {
		//xfm:ignore hotpath-alloc cold validation path, only reachable by a caller bug
		err := fmt.Errorf("sfm: page %d has %d bytes, want %d", id, len(data), PageSize)
		return outPlan{class: classError, err: err}, arena
	}
	if w, same := sameFilledWord(data); same {
		return outPlan{class: classSameFilled, fillWord: w}, arena
	}
	start := len(arena)
	arena = codec.Compress(arena, data)
	comp := arena[start:len(arena):len(arena)]
	if len(comp) >= PageSize {
		// Incompressible page: the commit will store the raw bytes, so
		// the compressed form is dead weight — roll the arena back.
		return outPlan{class: classIncompressible}, arena[:start]
	}
	return outPlan{class: classCompressed, comp: comp}, arena
}

// commitOut applies a staged swap-out to the backend: duplicate
// check, zsmalloc allocation (with the §6 compact-on-full retry),
// index insert, and stats. This is the only swap-out code that
// mutates backend state; under a ShardedBackend it runs holding the
// shard lock, in input order within the shard, which keeps batch
// results bit-identical to a serial loop.
//
//xfm:hotpath
func (b *CPUBackend) commitOut(id PageID, data []byte, p *outPlan) error {
	if p.class == classError {
		return p.err
	}
	if _, dup := b.index.Get(id); dup {
		return ErrExists
	}
	if p.class == classSameFilled {
		// Same-filled page: store only the fill word (zswap's
		// optimization; zero pages are the common case).
		b.index.Put(id, entry{rawSize: PageSize, sameFilled: true, fillWord: p.fillWord})
		b.stats.SwapOuts++
		b.stats.BytesOut += PageSize
		b.stats.StoredPages++
		b.stats.SameFilledPages++
		cSwapOuts.Inc()
		cSameFilled.Inc()
		return nil
	}
	stored := p.comp
	e := entry{rawSize: PageSize, stored: true}
	if p.class == classIncompressible {
		// Incompressible page: store raw, like zswap's same-size
		// passthrough.
		stored = data
		e.stored = false
		b.stats.IncompressiblePages++
		cIncompressible.Inc()
	}
	h, err := b.alloc.Alloc(stored)
	if err == zsmalloc.ErrCapacity {
		// §6: swapOut "initiates an internal compaction operation if
		// the SFM capacity limit is hit", then retries once.
		b.alloc.Compact()
		b.stats.CompactOnFull++
		cCompactOnFull.Inc()
		h, err = b.alloc.Alloc(stored)
	}
	if err != nil {
		if err == zsmalloc.ErrCapacity {
			return ErrFull
		}
		return err
	}
	e.handle = h
	b.index.Put(id, e)
	b.stats.SwapOuts++
	b.stats.BytesOut += PageSize
	b.stats.StoredPages++
	b.stats.CompressedBytes += int64(len(stored))
	b.stats.CPUCycles += b.codec.Info().CompressCyclesPerByte * PageSize
	cSwapOuts.Inc()
	hCompressedBytes.Observe(float64(len(stored)))
	return nil
}

// SwapOut implements Backend.
//
//xfm:hotpath
func (b *CPUBackend) SwapOut(now dram.Ps, id PageID, data []byte) error {
	var p outPlan
	p, b.scratch.Comp = stageOut(b.codec, id, data, b.scratch.Comp[:0])
	return b.commitOut(id, data, &p)
}

// inPlan is the staged form of one swap-in page across the two-phase
// protocol: gatherIn fills it under the lock, decompressIn consumes
// it lock-free, commitIn settles it under the lock again.
type inPlan struct {
	e entry
	// pinned aliases the compressed object's live zsmalloc slot,
	// pinned so compaction cannot move it while a worker decompresses
	// without the shard lock. Valid until commitIn frees or unpins.
	pinned []byte
	err    error
	// detached: the entry was removed from the index and its handle
	// pinned; commitIn must either free it (success) or restore it
	// (decompress failure), so a failed page is left stored exactly as
	// a serial SwapIn would leave it.
	detached bool
}

// gatherIn detaches one swap-in page under the shard lock: it looks
// up the entry, removes it from the index (so concurrent single-page
// ops cannot double-claim it), and pins the compressed object so
// compact-on-full from another batch cannot move the bytes while
// decompressIn reads them without the lock. It mutates only the index
// and the pin bit — all stats settle in commitIn.
//
//xfm:hotpath
func (b *CPUBackend) gatherIn(id PageID, dst []byte) inPlan {
	if len(dst) != PageSize {
		//xfm:ignore hotpath-alloc cold validation path, only reachable by a caller bug
		return inPlan{err: fmt.Errorf("sfm: dst has %d bytes, want %d", len(dst), PageSize)}
	}
	e, ok := b.index.Get(id)
	if !ok {
		return inPlan{err: ErrNotFound}
	}
	if e.sameFilled {
		b.index.Delete(id)
		return inPlan{e: e, detached: true}
	}
	raw, err := b.alloc.Pin(e.handle)
	if err != nil {
		return inPlan{err: err}
	}
	b.index.Delete(id)
	return inPlan{e: e, pinned: raw, detached: true}
}

// decompressIn restores the page bytes into dst from a gathered plan.
// It is pure modulo dst and the plan's err field: no backend state is
// touched, so any worker may run it without a lock (the pinned slice
// is protected by the pin, not the lock).
//
//xfm:hotpath
func decompressIn(codec compress.Codec, id PageID, p *inPlan, dst []byte) {
	if !p.detached {
		return
	}
	e := &p.e
	if e.sameFilled {
		for off := 0; off < PageSize; off += 8 {
			binary.LittleEndian.PutUint64(dst[off:], e.fillWord)
		}
		return
	}
	if e.stored {
		out, err := codec.Decompress(dst[:0], p.pinned)
		if err != nil {
			p.err = err
			return
		}
		if len(out) != PageSize {
			//xfm:ignore hotpath-alloc cold corruption path; a short page is already a data-loss event
			p.err = fmt.Errorf("sfm: page %d decompressed to %d bytes", id, len(out))
			return
		}
	} else {
		copy(dst, p.pinned)
	}
}

// commitIn settles a gathered page under the shard lock: on success
// it frees the compressed object (ending the pin) and applies stats;
// on a decompression failure it restores the entry to the index and
// unpins, so the page stays stored — the same end state a serial
// SwapIn leaves after a failed decompress.
//
//xfm:hotpath
func (b *CPUBackend) commitIn(id PageID, p *inPlan) error {
	if !p.detached {
		return p.err
	}
	e := &p.e
	if e.sameFilled {
		b.stats.SwapIns++
		b.stats.BytesIn += PageSize
		b.stats.StoredPages--
		cSwapIns.Inc()
		return nil
	}
	if p.err != nil {
		b.index.Put(id, p.e)
		b.alloc.Unpin(e.handle)
		return p.err
	}
	if err := b.alloc.Free(e.handle); err != nil {
		b.index.Put(id, p.e)
		return err
	}
	b.stats.SwapIns++
	b.stats.BytesIn += PageSize
	b.stats.StoredPages--
	b.stats.CompressedBytes -= int64(len(p.pinned))
	b.stats.CPUCycles += b.codec.Info().DecompressCyclesPerByte * PageSize
	cSwapIns.Inc()
	return nil
}

// SwapIn implements Backend. The CPU backend ignores the offload hint:
// every swap-in runs on the CPU. Decompression reads the pinned
// zsmalloc slot directly — no staging copy of the compressed bytes.
//
//xfm:hotpath
func (b *CPUBackend) SwapIn(now dram.Ps, id PageID, dst []byte, offload bool) error {
	p := b.gatherIn(id, dst)
	decompressIn(b.codec, id, &p, dst)
	return b.commitIn(id, &p)
}

// Contains implements Backend.
func (b *CPUBackend) Contains(id PageID) bool {
	_, ok := b.index.Get(id)
	return ok
}

// Compact implements Backend.
func (b *CPUBackend) Compact() int64 { return b.alloc.Compact() }

// Stats implements Backend.
func (b *CPUBackend) Stats() BackendStats {
	s := b.stats
	s.Region = b.alloc.Stats()
	return s
}

// StoredPageIDs returns the ids currently in far memory in ascending
// order (compaction and inspection helper).
func (b *CPUBackend) StoredPageIDs() []PageID {
	return b.index.Keys()
}
