package sfm

import (
	"xfm/internal/dram"
	"xfm/internal/trace"
)

// Batched swap APIs (§5–§6 of the paper): XFM's whole throughput story
// is that swap traffic is accumulated and executed in batches per
// refresh interval rather than as per-page round trips. PageOut and
// PageIn are the batch elements; every Backend implements
// SwapOutBatch/SwapInBatch, and backends with internal sharding
// (ShardedBackend, the xfm backends) run a batch's (de)compression in
// parallel across a worker pool.

// PageOut is one element of a batched swap-out: the page id and its
// uncompressed bytes (len PageSize). The backend does not retain Data
// past the call.
type PageOut struct {
	ID   PageID
	Data []byte
}

// PageIn is one element of a batched swap-in: the page id and the
// destination buffer (len PageSize) the backend decompresses into.
type PageIn struct {
	ID  PageID
	Dst []byte
}

// FirstError returns the first non-nil error in errs, or nil.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SwapOutBatch implements Backend: the CPU backend executes the batch
// serially — it owns one scratch buffer and one zsmalloc region, so
// the batch is a loop. ShardedBackend supplies the parallel version.
func (b *CPUBackend) SwapOutBatch(now dram.Ps, pages []PageOut) []error {
	hBatchPages.Observe(float64(len(pages)))
	errs := make([]error, len(pages))
	for i, p := range pages {
		errs[i] = b.SwapOut(now, p.ID, p.Data)
	}
	return errs
}

// SwapInBatch implements Backend.
func (b *CPUBackend) SwapInBatch(now dram.Ps, pages []PageIn, offload bool) []error {
	hBatchPages.Observe(float64(len(pages)))
	errs := make([]error, len(pages))
	for i, p := range pages {
		errs[i] = b.SwapIn(now, p.ID, p.Dst, offload)
	}
	return errs
}

// SwapOutBatch implements Backend: the batch is forwarded to the inner
// backend and each successful page is recorded, matching the per-page
// records a serial loop would produce.
func (t *TracingBackend) SwapOutBatch(now dram.Ps, pages []PageOut) []error {
	errs := t.inner.SwapOutBatch(now, pages)
	for i, p := range pages {
		if errs[i] == nil {
			t.record(now, trace.SwapOut, p.ID)
		}
	}
	return errs
}

// SwapInBatch implements Backend.
func (t *TracingBackend) SwapInBatch(now dram.Ps, pages []PageIn, offload bool) []error {
	errs := t.inner.SwapInBatch(now, pages, offload)
	op := trace.SwapIn
	if offload {
		op = trace.Prefetch
	}
	for i, p := range pages {
		if errs[i] == nil {
			t.record(now, op, p.ID)
		}
	}
	return errs
}
