package sfm

import "xfm/internal/telemetry"

// Process-wide SFM metrics: swap counts and the compressibility
// profile of swapped pages (the §3 cost model's inputs), batch fan-out,
// and per-shard occupancy for the sharded store. The counters are
// bumped on the per-page swap paths; at a handful of uncontended
// atomic adds next to a 4 KiB (de)compression they are invisible in
// profiles (see BenchmarkBatchSwapOutParallel).
var (
	cSwapOuts = telemetry.NewCounter("sfm_swap_outs_total",
		"Pages compressed into far memory (swapOut calls that succeeded).")
	cSwapIns = telemetry.NewCounter("sfm_swap_ins_total",
		"Pages decompressed out of far memory (swapIn calls that succeeded).")
	cSameFilled = telemetry.NewCounter("sfm_same_filled_total",
		"Swap-outs stored as a single fill word (zswap's same-filled-page path).")
	cIncompressible = telemetry.NewCounter("sfm_incompressible_total",
		"Swap-outs stored raw because compression did not shrink the page.")
	cCompactOnFull = telemetry.NewCounter("sfm_compact_on_full_total",
		"Capacity-triggered internal compactions (§6).")
	hCompressedBytes = telemetry.NewHistogram("sfm_compressed_page_bytes",
		"Stored bytes per compressed page (excludes same-filled pages).",
		telemetry.LinearBuckets(256, 256, 16))
	hBatchPages = telemetry.NewHistogram("sfm_batch_pages",
		"Pages per SwapOutBatch/SwapInBatch call into the SFM store.",
		telemetry.ExpBuckets(1, 2, 13))
	hShardBatchPages = telemetry.NewHistogram("sfm_shard_batch_pages",
		"Pages routed to one shard by one batch (fan-out balance).",
		telemetry.ExpBuckets(1, 2, 13))
	gShardStoredPages = telemetry.NewGaugeVec("sfm_shard_stored_pages",
		"Pages currently stored per shard of the sharded backend.", "shard")

	// Batch-engine seams (the two-stage pipeline in engine.go). Stage
	// histograms are observed once per batch phase and lock waits once
	// per shard acquisition, so even with wall-clock reads they are far
	// off the per-page hot path.
	hStageNs = telemetry.NewHistogramVec("sfm_batch_stage_ns",
		"Wall time per batch pipeline stage (stage_out covers compress+commit, "+
			"gather/decompress_commit are the two swap-in phases).",
		"stage", telemetry.ExpBuckets(1024, 4, 14))
	hLockWaitNs = telemetry.NewHistogram("sfm_shard_lock_wait_ns",
		"Wall time batch workers spent waiting to acquire a shard lock.",
		telemetry.ExpBuckets(64, 4, 14))
	gPipelineDepth = telemetry.NewGauge("sfm_batch_pipeline_depth",
		"Shards of the in-flight batch still awaiting their commit phase "+
			"(0 when no batch is running).")
)
