package sfm

import (
	"bytes"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/trace"
)

func TestTracingBackendRecordsOps(t *testing.T) {
	tb := NewTracingBackend(newBackend())
	h := NewHeap(tb)
	id := h.Alloc(0, []byte("traced page"))
	if err := h.SwapOut(dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Touch(2*dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	h.SwapOut(3*dram.Microsecond, id)
	if err := h.Prefetch(4*dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	recs := tb.Trace()
	wantOps := []trace.Op{trace.SwapOut, trace.SwapIn, trace.SwapOut, trace.Prefetch}
	if len(recs) != len(wantOps) {
		t.Fatalf("records = %d, want %d", len(recs), len(wantOps))
	}
	for i, r := range recs {
		if r.Op != wantOps[i] {
			t.Errorf("record %d op = %v, want %v", i, r.Op, wantOps[i])
		}
		if r.PageID != int64(id) || r.Bytes != PageSize {
			t.Errorf("record %d fields wrong: %+v", i, r)
		}
	}
}

func TestTracingBackendSkipsFailedOps(t *testing.T) {
	tb := NewTracingBackend(newBackend())
	if err := tb.SwapOut(0, 1, []byte("short")); err == nil {
		t.Fatal("short page accepted")
	}
	dst := make([]byte, PageSize)
	if err := tb.SwapIn(0, 99, dst, false); err == nil {
		t.Fatal("missing page accepted")
	}
	if len(tb.Trace()) != 0 {
		t.Error("failed operations were traced")
	}
}

func TestTracingBackendWriteTrace(t *testing.T) {
	tb := NewTracingBackend(NewCPUBackend(compress.NewLZFast(), 0))
	h := NewHeap(tb)
	id := h.Alloc(0, []byte("x"))
	h.SwapOut(dram.Microsecond, id)
	var buf bytes.Buffer
	if err := tb.WriteTrace(trace.NewWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	if len(tb.Trace()) != 0 {
		t.Error("buffer not drained")
	}
	recs, err := trace.ReadAll(trace.NewReader(&buf))
	if err != nil || len(recs) != 1 {
		t.Fatalf("read back %d records, %v", len(recs), err)
	}
}
