package sfm

import (
	"bytes"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/telemetry"
	"xfm/internal/trace"
)

func TestTracingBackendRecordsOps(t *testing.T) {
	tb := NewTracingBackend(newBackend())
	h := NewHeap(tb)
	id := h.Alloc(0, []byte("traced page"))
	if err := h.SwapOut(dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Touch(2*dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	h.SwapOut(3*dram.Microsecond, id)
	if err := h.Prefetch(4*dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	recs := tb.Trace()
	wantOps := []trace.Op{trace.SwapOut, trace.SwapIn, trace.SwapOut, trace.Prefetch}
	if len(recs) != len(wantOps) {
		t.Fatalf("records = %d, want %d", len(recs), len(wantOps))
	}
	for i, r := range recs {
		if r.Op != wantOps[i] {
			t.Errorf("record %d op = %v, want %v", i, r.Op, wantOps[i])
		}
		if r.PageID != int64(id) || r.Bytes != PageSize {
			t.Errorf("record %d fields wrong: %+v", i, r)
		}
	}
}

func TestTracingBackendSkipsFailedOps(t *testing.T) {
	tb := NewTracingBackend(newBackend())
	if err := tb.SwapOut(0, 1, []byte("short")); err == nil {
		t.Fatal("short page accepted")
	}
	dst := make([]byte, PageSize)
	if err := tb.SwapIn(0, 99, dst, false); err == nil {
		t.Fatal("missing page accepted")
	}
	if len(tb.Trace()) != 0 {
		t.Error("failed operations were traced")
	}
}

func TestTracingBackendWriteTrace(t *testing.T) {
	tb := NewTracingBackend(NewCPUBackend(compress.NewLZFast(), 0))
	h := NewHeap(tb)
	id := h.Alloc(0, []byte("x"))
	h.SwapOut(dram.Microsecond, id)
	var buf bytes.Buffer
	if err := tb.WriteTrace(trace.NewWriter(&buf)); err != nil {
		t.Fatal(err)
	}
	if len(tb.Trace()) != 0 {
		t.Error("buffer not drained")
	}
	recs, err := trace.ReadAll(trace.NewReader(&buf))
	if err != nil || len(recs) != 1 {
		t.Fatalf("read back %d records, %v", len(recs), err)
	}
}

func TestTracingBackendResetAndCapacity(t *testing.T) {
	tb := NewTracingBackendCapacity(newBackend(), 128)
	if cap(tb.Trace()) < 128 {
		t.Errorf("preallocated cap = %d, want ≥ 128", cap(tb.Trace()))
	}
	h := NewHeap(tb)
	id := h.Alloc(0, []byte("x"))
	if err := h.SwapOut(dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	if len(tb.Trace()) != 1 {
		t.Fatalf("records = %d, want 1", len(tb.Trace()))
	}
	tb.Reset()
	if len(tb.Trace()) != 0 {
		t.Error("Reset left records behind")
	}
	if cap(tb.Trace()) < 128 {
		t.Error("Reset dropped the preallocated capacity")
	}
	if _, err := h.Touch(2*dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	if len(tb.Trace()) != 1 {
		t.Error("capture after Reset did not record")
	}
}

func TestTracingBackendEmitsTelemetrySpans(t *testing.T) {
	tr := telemetry.NewTracer()
	tr.SetEnabled(true)
	tb := NewTracingBackend(newBackend())
	tb.SetTracer(tr)
	h := NewHeap(tb)
	id := h.Alloc(0, []byte("traced"))
	if err := h.SwapOut(dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Touch(2*dram.Microsecond, id); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "swap-"+trace.SwapOut.String() || !spans[0].Instant {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if spans[0].Args["page"] != int64(id) || spans[0].Args["bytes"] != PageSize {
		t.Errorf("span[0] args = %v", spans[0].Args)
	}
	// A disabled tracer must cost nothing and record nothing.
	tr.SetEnabled(false)
	h.SwapOut(3*dram.Microsecond, id)
	if tr.Len() != 2 {
		t.Errorf("disabled tracer recorded spans: %d", tr.Len())
	}
}
