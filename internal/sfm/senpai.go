package sfm

import "xfm/internal/dram"

// SenpaiController implements Meta's pressure-driven reclaim policy
// (§2.1: "Meta uses a userspace program, senpai, to initiate reclaim
// based on OS-provided performance metrics"). It continuously probes
// for the smallest resident set the workload tolerates: while measured
// memory pressure (stall time caused by demand faults, the PSI
// metric) stays below the target, the resident allowance shrinks;
// when pressure exceeds the target, the allowance backs off.
type SenpaiController struct {
	Heap *Heap

	// TargetPressure is the acceptable stall-time fraction (senpai
	// defaults to ~0.1%).
	TargetPressure float64
	// FaultCost is the modeled stall per demand fault (CPU
	// decompression latency plus the page walk).
	FaultCost dram.Ps
	// ShrinkStep and GrowStep are the multiplicative adjustments per
	// run (senpai shrinks slowly, backs off fast).
	ShrinkStep float64
	GrowStep   float64
	// MinResidentPages floors the allowance.
	MinResidentPages int64

	// allowance is the current resident-set target; 0 = uninitialized
	// (set to the current resident count on first Run).
	allowance  int64
	lastFaults int64
	lastRun    dram.Ps

	// LastPressure is the pressure observed at the previous Run, for
	// inspection.
	LastPressure float64
}

// NewSenpaiController returns a controller with senpai-like defaults.
func NewSenpaiController(h *Heap) *SenpaiController {
	return &SenpaiController{
		Heap:             h,
		TargetPressure:   0.001,
		FaultCost:        20 * dram.Microsecond,
		ShrinkStep:       0.02,
		GrowStep:         0.10,
		MinResidentPages: 8,
	}
}

// Allowance returns the current resident-set target in pages.
func (c *SenpaiController) Allowance() int64 { return c.allowance }

// Run implements Controller: it measures pressure since the last run,
// adjusts the allowance, and demotes LRU pages above it. It returns
// the number of pages swapped out.
func (c *SenpaiController) Run(now dram.Ps) int {
	st := c.Heap.Stats()
	if c.allowance == 0 {
		c.allowance = st.ResidentPages
		c.lastFaults = st.DemandFaults
		c.lastRun = now
		return 0
	}
	interval := now - c.lastRun
	if interval <= 0 {
		return 0
	}
	faults := st.DemandFaults - c.lastFaults
	pressure := float64(faults) * float64(c.FaultCost) / float64(interval)
	c.LastPressure = pressure
	c.lastFaults = st.DemandFaults
	c.lastRun = now

	if pressure > c.TargetPressure {
		// Back off: grow the allowance quickly.
		c.allowance = int64(float64(c.allowance) * (1 + c.GrowStep))
		if c.allowance > st.ResidentPages+st.FarPages {
			c.allowance = st.ResidentPages + st.FarPages
		}
		return 0
	}
	// Probe: shrink the allowance slowly and reclaim down to it.
	c.allowance = int64(float64(c.allowance) * (1 - c.ShrinkStep))
	if c.allowance < c.MinResidentPages {
		c.allowance = c.MinResidentPages
	}
	inner := &PressureController{Heap: c.Heap, TargetResidentPages: c.allowance}
	return inner.Run(now)
}

var _ Controller = (*SenpaiController)(nil)
