package sfm

import (
	"sync"
	"sync/atomic"
	"time"

	"xfm/internal/compress"
	"xfm/internal/dram"
)

// batchClock feeds the lock-wait and stage-duration histograms.
var batchClock = time.Now //xfm:ignore sim-determinism telemetry-only wall clock; simulation state and results never read it

// stageClock reads the wall clock through the batchClock seam for the
// stage-duration and lock-wait histograms.
//
//xfm:allocok telemetry clock seam: the indirect time.Now call allocates nothing
func stageClock() time.Time { return batchClock() }

// batchEngine executes a ShardedBackend batch as a two-stage,
// page-granular pipeline (the software analogue of the paper's §5
// refresh-access overlap: do the heavy work where it doesn't
// contend).
//
// Swap-out: workers claim pages (not shards) off the pool's atomic
// counter and run stageOut — the codec work, ~99% of the batch cost —
// with no lock held, into a per-worker arena. Each page then
// decrements its shard's pending counter; the worker that takes a
// counter to zero immediately commits that whole shard (commitOut per
// page, in input order, under the shard lock). Commits therefore
// overlap the remaining compression instead of waiting for a barrier,
// and a skewed batch (every page in one shard) still compresses on
// all cores.
//
// Swap-in mirrors it with the two-phase protocol: gather/detach under
// each shard lock (index delete + zsmalloc pin, so concurrent
// compact-on-full cannot move the bytes), decompress lock-free at
// page granularity straight from the pinned slots, then a per-shard
// free/stats commit, again triggered by the last pending decrement.
//
// Ordering invariant: within a shard, commits apply in batch input
// order — exactly the order a serial loop would use — so results,
// stats (including float CPUCycles accumulation order), and zsmalloc
// layout are bit-identical to the serial path at any worker count.
//
// One batch runs at a time (mu); the slices below are the engine's
// reusable scratch, valid only inside the batch that planned them.
type batchEngine struct {
	s     *ShardedBackend
	codec compress.Codec

	mu sync.Mutex // serializes batches; guards every field below across batches

	// In-flight batch inputs and outputs. outs/ins alias the caller's
	// batch slice for the duration of the call; errs is the freshly
	// allocated result slice (callers may retain it, so it is the one
	// per-batch allocation that is not pooled).
	outs []PageOut //xfm:guardedby mu
	ins  []PageIn  //xfm:guardedby mu
	now  dram.Ps   //xfm:guardedby mu
	errs []error   //xfm:guardedby mu

	// Pooled plan state, reused across batches. byShard holds each
	// shard's batch indexes in input order; active lists the shards
	// with work this batch. During a batch, pool workers read these
	// (and write disjoint outPlans/inPlans/errs slots) while the batch
	// owner holds mu for the whole Run — the worker-side accesses
	// carry per-function guardedby suppressions saying so.
	outPlans []outPlan      //xfm:guardedby mu
	inPlans  []inPlan       //xfm:guardedby mu
	byShard  [][]int32      //xfm:guardedby mu
	active   []int32        //xfm:guardedby mu
	pending  []atomic.Int32 // per-shard stage work left; the worker that hits 0 commits
	workers  []workerArena

	// Persistent bound closures handed to pool.Run, created once so
	// the steady-state batch path allocates no closures.
	outStepFn    func(w, i int)
	gatherStepFn func(w, i int)
	inStepFn     func(w, i int)
}

// workerArena is one worker's append-only compressed-output buffer.
// Plans hold slices into it; growth reallocations leave those slices
// pointing at the old backing array, so they stay valid for the whole
// batch, and the arena keeps its high-water capacity across batches.
type workerArena struct {
	buf []byte
	_   [64]byte // keep neighbouring workers' slice headers off one cache line
}

// init wires the engine to its backend (called once from
// NewShardedBackend, before the backend escapes).
func (e *batchEngine) init(s *ShardedBackend, codec compress.Codec) {
	e.s = s
	e.codec = codec
	e.workers = make([]workerArena, s.pool.Width())
	e.outStepFn = e.outStep
	e.gatherStepFn = e.gatherStep
	e.inStepFn = e.inStep
}

// Stage-duration histogram handles, resolved once (label lookup takes
// a registry lock).
var (
	hStageOut  = hStageNs.With("stage_out")
	hStageGth  = hStageNs.With("gather")
	hStageInDC = hStageNs.With("decompress_commit")
)

// plan groups batch indexes by shard into pooled slices and arms the
// per-shard pending counters. n is the batch length; shardOf must be
// the routing hash of element i.
func (e *batchEngine) plan(n int, shardOf func(i int) int) {
	nsh := len(e.s.shards)
	byShard, active := e.byShard, e.active //xfm:ignore guardedby plan runs inside swapOutBatch/swapInBatch, which hold e.mu for the whole batch
	if cap(byShard) < nsh {
		byShard = make([][]int32, nsh)
	}
	byShard = byShard[:nsh]
	for i := range byShard {
		byShard[i] = byShard[i][:0]
	}
	if cap(e.pending) < nsh {
		e.pending = make([]atomic.Int32, nsh)
	}
	e.pending = e.pending[:nsh]
	active = active[:0]
	for i := 0; i < n; i++ {
		si := shardOf(i)
		if len(byShard[si]) == 0 {
			active = append(active, int32(si))
		}
		byShard[si] = append(byShard[si], int32(i))
	}
	for _, si := range active {
		e.pending[si].Store(int32(len(byShard[si])))
	}
	for i := range e.workers {
		e.workers[i].buf = e.workers[i].buf[:0]
	}
	e.byShard, e.active = byShard, active //xfm:ignore guardedby plan runs inside swapOutBatch/swapInBatch, which hold e.mu for the whole batch
}

// swapOutBatch runs the staged swap-out pipeline. Caller-visible
// semantics match a serial loop over the same pages.
func (e *batchEngine) swapOutBatch(now dram.Ps, pages []PageOut) []error {
	errs := make([]error, len(pages))
	if len(pages) == 0 {
		return errs
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.outs, e.errs, e.now = pages, errs, now
	if cap(e.outPlans) < len(pages) {
		e.outPlans = make([]outPlan, len(pages))
	}
	e.outPlans = e.outPlans[:len(pages)]
	e.plan(len(pages), func(i int) int { return ShardIndexFor(pages[i].ID, len(e.s.shards)) })
	gPipelineDepth.SetInt(int64(len(e.active)))
	t0 := stageClock()
	e.s.pool.Run(len(pages), e.s.workers, e.outStepFn)
	hStageOut.Observe(float64(stageClock().Sub(t0)))
	e.outs, e.errs = nil, nil
	return errs
}

// outStep stages one page lock-free and, when it is the last staged
// page of its shard, commits the whole shard. Reads of other workers'
// outPlans entries are ordered by the pending counter: every stager
// decrements after its plan store, and the committer observed the
// count reach zero.
//
//xfm:hotpath
func (e *batchEngine) outStep(w, i int) {
	outs, plans := e.outs, e.outPlans //xfm:ignore guardedby worker side of one batch: the batch owner holds e.mu across the whole pool.Run and workers write disjoint slots
	pg := &outs[i]
	plans[i], e.workers[w].buf = stageOut(e.codec, pg.ID, pg.Data, e.workers[w].buf)
	si := ShardIndexFor(pg.ID, len(e.s.shards))
	if e.pending[si].Add(-1) == 0 {
		e.commitOutShard(si)
	}
}

// commitOutShard applies one shard's staged pages in input order
// under the shard lock.
func (e *batchEngine) commitOutShard(si int) {
	idxs, outs := e.byShard[si], e.outs //xfm:ignore guardedby worker side of one batch: e.mu is held by the batch owner; the pending counter ordered every stager's plan write before this read
	plans, errs := e.outPlans, e.errs
	hShardBatchPages.Observe(float64(len(idxs)))
	sh := &e.s.shards[si]
	t0 := stageClock()
	sh.mu.Lock()
	hLockWaitNs.Observe(float64(stageClock().Sub(t0)))
	for _, i := range idxs {
		pg := &outs[i]
		errs[i] = sh.b.commitOut(pg.ID, pg.Data, &plans[i])
	}
	sh.stored.SetInt(sh.b.stats.StoredPages)
	sh.mu.Unlock()
	gPipelineDepth.Add(-1)
}

// swapInBatch runs the two-phase swap-in pipeline: gather/detach per
// shard under the lock, then page-granular lock-free decompression
// with per-shard commits piggybacked on the last pending decrement.
func (e *batchEngine) swapInBatch(now dram.Ps, pages []PageIn) []error {
	errs := make([]error, len(pages))
	if len(pages) == 0 {
		return errs
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ins, e.errs, e.now = pages, errs, now
	if cap(e.inPlans) < len(pages) {
		e.inPlans = make([]inPlan, len(pages))
	}
	e.inPlans = e.inPlans[:len(pages)]
	e.plan(len(pages), func(i int) int { return ShardIndexFor(pages[i].ID, len(e.s.shards)) })
	gPipelineDepth.SetInt(int64(len(e.active)))
	t0 := stageClock()
	e.s.pool.Run(len(e.active), e.s.workers, e.gatherStepFn)
	t1 := stageClock()
	hStageGth.Observe(float64(t1.Sub(t0)))
	e.s.pool.Run(len(pages), e.s.workers, e.inStepFn)
	hStageInDC.Observe(float64(stageClock().Sub(t1)))
	e.ins, e.errs = nil, nil
	for i := range e.inPlans {
		e.inPlans[i] = inPlan{} // drop pinned-slot aliases
	}
	return errs
}

// gatherStep detaches every page of one active shard under its lock,
// in input order (so duplicate ids in one batch resolve exactly as a
// serial loop would).
//
//xfm:hotpath
func (e *batchEngine) gatherStep(_, i int) {
	si, ins, plans := e.active[i], e.ins, e.inPlans //xfm:ignore guardedby worker side of one batch: e.mu is held by the batch owner and workers own disjoint shards in this phase
	idxs := e.byShard[si]
	hShardBatchPages.Observe(float64(len(idxs)))
	sh := &e.s.shards[si]
	t0 := stageClock()
	sh.mu.Lock()
	hLockWaitNs.Observe(float64(stageClock().Sub(t0)))
	for _, j := range idxs {
		pg := &ins[j]
		plans[j] = sh.b.gatherIn(pg.ID, pg.Dst)
	}
	sh.mu.Unlock()
}

// inStep decompresses one page lock-free from its pinned slot and,
// when it is the shard's last, commits the shard's frees and stats.
//
//xfm:hotpath
func (e *batchEngine) inStep(_, i int) {
	ins, plans := e.ins, e.inPlans //xfm:ignore guardedby worker side of one batch: e.mu is held by the batch owner; the gather phase completed before this Run started
	pg := &ins[i]
	decompressIn(e.codec, pg.ID, &plans[i], pg.Dst)
	si := ShardIndexFor(pg.ID, len(e.s.shards))
	if e.pending[si].Add(-1) == 0 {
		e.commitInShard(si)
	}
}

// commitInShard settles one shard's gathered pages in input order
// under the shard lock.
func (e *batchEngine) commitInShard(si int) {
	idxs, ins := e.byShard[si], e.ins //xfm:ignore guardedby worker side of one batch: e.mu is held by the batch owner; the pending counter ordered every decompressor's write before this read
	plans, errs := e.inPlans, e.errs
	sh := &e.s.shards[si]
	t0 := stageClock()
	sh.mu.Lock()
	hLockWaitNs.Observe(float64(stageClock().Sub(t0)))
	for _, i := range idxs {
		errs[i] = sh.b.commitIn(ins[i].ID, &plans[i])
	}
	sh.stored.SetInt(sh.b.stats.StoredPages)
	sh.mu.Unlock()
	gPipelineDepth.Add(-1)
}
