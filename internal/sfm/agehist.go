package sfm

import (
	"sort"

	"xfm/internal/dram"
)

// AgeHistogram summarizes how long the heap's resident pages have been
// idle — the kstaled-style page-age scanning behind Google's cold-page
// policy (§2.1, §3.1: "classifying pages as cold after going 120
// seconds without an access results in over 30% of memory being
// detected as cold and a 15% promotion rate"). The SFM controller uses
// it to pick a cold-age threshold that yields a target cold fraction
// instead of hard-coding one.
type AgeHistogram struct {
	ages []dram.Ps // idle durations of resident pages, sorted
}

// ScanAges builds the histogram for the heap's resident set at time
// now.
func ScanAges(h *Heap, now dram.Ps) *AgeHistogram {
	var ages []dram.Ps
	for _, id := range h.PageIDs() {
		if !h.Resident(id) {
			continue
		}
		last, _ := h.LastAccess(id)
		age := now - last
		if age < 0 {
			age = 0
		}
		ages = append(ages, age)
	}
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	return &AgeHistogram{ages: ages}
}

// Pages returns the number of resident pages scanned.
func (a *AgeHistogram) Pages() int { return len(a.ages) }

// ColdFraction returns the fraction of resident pages idle for at
// least threshold.
func (a *AgeHistogram) ColdFraction(threshold dram.Ps) float64 {
	if len(a.ages) == 0 {
		return 0
	}
	// First index with age ≥ threshold.
	i := sort.Search(len(a.ages), func(i int) bool { return a.ages[i] >= threshold })
	return float64(len(a.ages)-i) / float64(len(a.ages))
}

// ThresholdForColdFraction returns the smallest idle threshold that
// still marks at least the target fraction of pages cold; ok is false
// when even a zero threshold cannot reach the target (target > 1) or
// the heap is empty.
func (a *AgeHistogram) ThresholdForColdFraction(target float64) (dram.Ps, bool) {
	if len(a.ages) == 0 || target <= 0 || target > 1 {
		return 0, false
	}
	// Marking the oldest k pages cold needs threshold ≤ age of the
	// k-th oldest page.
	k := int(target * float64(len(a.ages)))
	if k == 0 {
		k = 1
	}
	idx := len(a.ages) - k
	return a.ages[idx], true
}

// Quantile returns the q-th idle-age quantile.
func (a *AgeHistogram) Quantile(q float64) dram.Ps {
	if len(a.ages) == 0 {
		return 0
	}
	if q <= 0 {
		return a.ages[0]
	}
	if q >= 1 {
		return a.ages[len(a.ages)-1]
	}
	return a.ages[int(q*float64(len(a.ages)-1))]
}

// AdaptiveColdController pairs the age histogram with the cold
// scanner: each run it re-derives the cold threshold that demotes the
// target fraction of the resident set, then applies it — Google's
// approach of tuning the cold-age cutoff against a memory-savings
// goal.
type AdaptiveColdController struct {
	Heap *Heap
	// TargetColdFraction is the share of resident memory to demote
	// per pass (Google's fleet observation: 120 s cutoff ⇒ ≈30%).
	TargetColdFraction float64
	// MinThreshold floors the derived cutoff so recently used pages
	// are never demoted.
	MinThreshold dram.Ps

	// LastThreshold records the cutoff used by the previous run.
	LastThreshold dram.Ps
}

// Run implements Controller.
func (c *AdaptiveColdController) Run(now dram.Ps) int {
	hist := ScanAges(c.Heap, now)
	threshold, ok := hist.ThresholdForColdFraction(c.TargetColdFraction)
	if !ok {
		return 0
	}
	if threshold < c.MinThreshold {
		threshold = c.MinThreshold
	}
	c.LastThreshold = threshold
	inner := &ColdScanController{Heap: c.Heap, ColdAfter: threshold}
	return inner.Run(now)
}

var _ Controller = (*AdaptiveColdController)(nil)
