package sfm

import (
	"sync"
	"testing"

	"xfm/internal/dram"
)

func TestConcurrentHeapParallelChurn(t *testing.T) {
	ch := NewConcurrentHeap(NewHeap(newBackend()))
	const pages = 64
	ids := make([]PageID, pages)
	for i := range ids {
		data := make([]byte, PageSize)
		data[0] = byte(i)
		ids[i] = ch.Alloc(0, data)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < 500; op++ {
				id := ids[(g*7+op)%pages]
				now := dram.Ps(g*1000+op) * dram.Microsecond
				switch op % 3 {
				case 0:
					ch.SwapOut(now, id) // may fail if already out; fine
				case 1:
					if data, err := ch.Touch(now, id); err != nil {
						t.Errorf("touch: %v", err)
					} else if len(data) != PageSize {
						t.Errorf("short page")
					}
				case 2:
					ch.Prefetch(now, id)
				}
			}
		}(g)
	}
	wg.Wait()
	// Every page still holds its fill byte.
	for i, id := range ids {
		data, err := ch.Touch(dram.Second, id)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("page %d corrupted under concurrency", i)
		}
	}
	st := ch.Stats()
	if st.Allocated != pages {
		t.Errorf("allocated = %d", st.Allocated)
	}
}

func TestConcurrentHeapTouchReturnsCopy(t *testing.T) {
	ch := NewConcurrentHeap(NewHeap(newBackend()))
	id := ch.Alloc(0, []byte{1, 2, 3})
	a, _ := ch.Touch(0, id)
	a[0] = 99 // mutating the copy must not affect the heap
	b, _ := ch.Touch(0, id)
	if b[0] != 1 {
		t.Error("Touch exposed the internal buffer")
	}
}

func TestConcurrentHeapWrite(t *testing.T) {
	ch := NewConcurrentHeap(NewHeap(newBackend()))
	id := ch.Alloc(0, nil)
	payload := make([]byte, PageSize)
	payload[17] = 0xAB
	if err := ch.Write(0, id, payload); err != nil {
		t.Fatal(err)
	}
	ch.SwapOut(dram.Millisecond, id)
	data, err := ch.Touch(dram.Second, id)
	if err != nil {
		t.Fatal(err)
	}
	if data[17] != 0xAB {
		t.Error("write lost through a swap cycle")
	}
}
