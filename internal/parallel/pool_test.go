package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolCoversAllIndexes(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{1, 2, 7, 64, 1000} {
		var hits = make([]atomic.Int32, n)
		p.Run(n, 0, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times, want 1", n, i, got)
			}
		}
	}
}

func TestPoolWorkerIDsDistinctAndBounded(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Per-worker counters indexed by worker id: racing ids would trip
	// -race; ids outside [0, Width()) would panic the bounds check.
	counts := make([]int, p.Width())
	var total atomic.Int64
	p.Run(512, 0, func(w, _ int) {
		counts[w]++
		total.Add(1)
	})
	if got := total.Load(); got != 512 {
		t.Fatalf("executed %d calls, want 512", got)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 512 {
		t.Fatalf("per-worker counts sum to %d, want 512", sum)
	}
}

func TestPoolLimitOneRunsInline(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	// limit=1 must run on the caller: a plain counter and in-order
	// indexes would both break if any fan-out happened (-race would
	// flag the counter, the order check the claiming).
	next := 0
	p.Run(32, 1, func(w, i int) {
		if w != 0 {
			t.Errorf("inline run used worker id %d, want 0", w)
		}
		if i != next {
			t.Errorf("inline run visited index %d, want %d", i, next)
		}
		next++
	})
	if next != 32 {
		t.Fatalf("executed %d calls, want 32", next)
	}
}

func TestPoolZeroAndNegativeN(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ran := false
	p.Run(0, 0, func(_, _ int) { ran = true })
	p.Run(-3, 0, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("fn ran for n ≤ 0")
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	p.Run(64, 0, func(_, i int) {
		if i == 13 {
			panic("boom")
		}
	})
	t.Fatal("Run returned after a panicking fn")
}

func TestPoolSerializesRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Fan-out Runs on one pool must not overlap. shared is written
	// once per batch (index 0 only) with no synchronization of its
	// own: if two batches ever ran concurrently, -race would flag it;
	// serialized batches are ordered by the pool mutex.
	shared := 0
	done := make(chan struct{}, 2)
	for g := 0; g < 2; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for r := 0; r < 50; r++ {
				p.Run(8, 2, func(_, i int) {
					if i == 0 {
						shared++
					}
				})
			}
		}()
	}
	<-done
	<-done
	if shared != 100 {
		t.Fatalf("shared = %d, want 100 (one increment per batch)", shared)
	}
}

func TestPoolRunAfterCloseFallsBackInline(t *testing.T) {
	p := NewPool(4)
	p.Close()
	var hits atomic.Int32
	p.Run(16, 0, func(w, _ int) {
		if w != 0 {
			t.Errorf("post-Close run used worker id %d, want 0", w)
		}
		hits.Add(1)
	})
	if got := hits.Load(); got != 16 {
		t.Fatalf("executed %d calls after Close, want 16", got)
	}
}

func TestPoolSteadyStateAllocs(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Inline path allocates nothing by construction; the claim
		// under test is the fan-out path.
		t.Skip("needs ≥2 procs to exercise the fan-out path")
	}
	p := NewPool(0)
	defer p.Close()
	work := func(_, _ int) {}
	p.Run(256, 0, work) // spawn workers, warm the job descriptor
	allocs := testing.AllocsPerRun(20, func() { p.Run(256, 0, work) })
	// The one deferred closure per worker per batch is amortized; the
	// descriptor, chunk counter, and wake signals must not allocate.
	if allocs > float64(p.Width()+1) {
		t.Fatalf("steady-state Run: %.1f allocs/op, want ≤%d", allocs, p.Width()+1)
	}
}

func TestChunkFor(t *testing.T) {
	for _, tc := range []struct{ n, workers, want int }{
		{8, 8, 1},
		{64, 8, 1},
		{512, 8, 8},
		{100_000, 4, 64}, // clamped high
		{1, 16, 1},       // clamped low
	} {
		if got := chunkFor(tc.n, tc.workers); got != tc.want {
			t.Errorf("chunkFor(%d, %d) = %d, want %d", tc.n, tc.workers, got, tc.want)
		}
	}
}
