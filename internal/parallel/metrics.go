package parallel

import "xfm/internal/telemetry"

// Worker-pool metrics: how often the stack fans out, how wide, and how
// evenly the atomic work-claiming spreads indexes across workers. The
// per-worker counts are accumulated in locals inside ForEach and
// observed once per batch, so the claiming loop itself stays free of
// shared writes.
var (
	mBatches = telemetry.NewCounter("parallel_batches_total",
		"ForEach invocations that fanned out to more than one worker.")
	mTasks = telemetry.NewCounter("parallel_tasks_total",
		"Indexes executed by ForEach (serial and parallel).")
	hWorkerTasks = telemetry.NewHistogram("parallel_worker_tasks",
		"Indexes claimed by one worker in one parallel ForEach (balance).",
		telemetry.ExpBuckets(1, 2, 13))
)
