package parallel

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for the batched swap pipeline. A
// ForEach call pays a goroutine spin-up (and join) per batch; a Pool
// spawns its workers once, parks them between batches, and reuses one
// job descriptor, so a steady-state batch performs no allocations in
// the pool itself.
//
// Identity: Run executes fn(worker, i) where worker is a stable id in
// [0, Width()). The calling goroutine participates as worker 0; the
// spawned goroutines are 1..Width()-1. At most one goroutine uses a
// given worker id at a time, so callers may index per-worker state
// (scratch buffers, arenas) by the id without synchronization.
//
// Runs are serialized: one batch executes at a time per Pool, and a
// concurrent Run blocks until the current one drains. Workers are
// spawned lazily on the first Run that fans out, so a Pool that only
// ever runs inline (one CPU, tiny batches) costs nothing.
type Pool struct {
	width int

	mu    sync.Mutex // serializes Run; job below is valid only inside one Run
	spawn sync.Once
	wake  chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup
	job   poolJob
}

// poolJob is the reusable batch descriptor shared with the workers.
// It is written by Run (under mu, before the wake signals) and read by
// the woken workers; the WaitGroup join orders the final reads.
type poolJob struct {
	fn       func(worker, i int)
	n        int
	chunk    int
	next     atomic.Int64
	panicked atomic.Bool
	panicVal any
}

// NewPool builds a pool with Workers(workers) worker identities (0
// passes through to GOMAXPROCS). No goroutines start until a Run fans
// out.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	return &Pool{
		width: w,
		wake:  make(chan struct{}, w),
		stop:  make(chan struct{}),
	}
}

// Width returns the number of worker identities (the upper bound on
// parallelism and the size callers should give per-worker state).
func (p *Pool) Width() int { return p.width }

// Close releases the pool's goroutines. Close is optional — idle
// workers are parked on a channel and cost only their stacks — and
// safe to call at most once; Run after Close degrades to the inline
// serial path.
func (p *Pool) Close() { close(p.stop) }

func (p *Pool) closed() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

// Run executes fn(worker, i) for every i in [0, n) and returns when
// all calls completed. limit > 0 caps the workers used this batch
// (limit ≤ 0 means the full width); a single effective worker (or
// n ≤ 1) runs inline on the caller with worker id 0, so serial and
// parallel executions share one code path. Indexes are claimed from an
// atomic counter in chunks, so fn must not depend on which worker runs
// which index — only per-index and per-worker state may be written
// without synchronization. Panics inside fn propagate to the caller
// (the first one observed; others are dropped).
func (p *Pool) Run(n, limit int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	active := p.width
	if limit > 0 && limit < active {
		active = limit
	}
	if active > n {
		active = n
	}
	if active <= 1 || p.closed() {
		mTasks.Add(int64(n))
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.spawn.Do(p.spawnWorkers)
	mBatches.Inc()
	mTasks.Add(int64(n))
	j := &p.job
	j.fn, j.n = fn, n
	j.chunk = chunkFor(n, active)
	j.next.Store(0)
	j.panicked.Store(false)
	j.panicVal = nil
	p.wg.Add(active - 1)
	for w := 1; w < active; w++ {
		p.wake <- struct{}{}
	}
	p.runBody(0)
	p.wg.Wait()
	j.fn = nil
	if j.panicked.Load() {
		panic(j.panicVal)
	}
}

// spawnWorkers starts the parked worker goroutines (ids 1..width-1).
func (p *Pool) spawnWorkers() {
	for id := 1; id < p.width; id++ {
		go p.work(id)
	}
}

// work parks until a batch needs this worker, runs its share, and
// parks again. Each wake signal corresponds to exactly one wg slot, so
// it does not matter which parked worker picks a signal up.
func (p *Pool) work(id int) {
	for {
		select {
		case <-p.wake:
			p.runBody(id)
			p.wg.Done()
		case <-p.stop:
			return
		}
	}
}

// runBody claims index chunks off the shared counter until the batch
// is exhausted — the same claiming discipline as ForEach, so fast
// workers steal from slow ones near the tail.
//
//xfm:hotpath
func (p *Pool) runBody(id int) {
	j := &p.job
	claimed := 0
	//xfm:ignore hotpath-alloc one deferred closure per worker per batch, amortized over the worker's whole claimed share
	defer func() {
		hWorkerTasks.Observe(float64(claimed))
		if r := recover(); r != nil {
			if j.panicked.CompareAndSwap(false, true) {
				j.panicVal = r
			}
		}
	}()
	n, chunk := j.n, j.chunk
	for {
		end := int(j.next.Add(int64(chunk)))
		start := end - chunk
		if start >= n {
			return
		}
		if end > n {
			end = n
		}
		claimed += end - start
		for i := start; i < end; i++ {
			j.fn(id, i) //xfm:ignore hotpath-alloc the per-item body is the caller's zero-alloc contract, pinned by the allocs/op regression tests
		}
	}
}

// chunkFor sizes the atomic-claim granularity: ~8 chunks per worker,
// clamped so tiny batches still balance and huge ones do not spin on
// the counter.
func chunkFor(n, workers int) int {
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	return chunk
}
