// Package parallel provides the small worker-pool primitive shared by
// the batched offload pipeline: sfm batch swap operations, xfm batch
// offload submission, and the experiments runner all fan work out
// through ForEach. Keeping one implementation makes the concurrency
// shape of the whole stack auditable in one place.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values > 0 pass through,
// anything else means "one worker per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) using up to workers
// goroutines and returns when all calls have completed. workers ≤ 0
// means GOMAXPROCS; a single worker (or n ≤ 1) runs inline with no
// goroutines, so serial and parallel executions share one code path.
//
// Indexes are claimed from an atomic counter in chunks (larger batches
// claim larger chunks, capped so the tail still balances), so fn must
// not depend on which goroutine runs which index — only per-index
// state may be written without synchronization. Panics inside fn
// propagate to the caller (the first one observed; others are
// dropped).
//
// ForEach is on the batch hot path: its only allocations are the
// one-time pool spin-up (worker closure + goroutines), amortized over
// the whole batch; the per-index loop allocates nothing.
//
//xfm:hotpath
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i) //xfm:ignore hotpath-alloc the per-item body is the caller's zero-alloc contract, pinned by the allocs/op regression tests
		}
		mTasks.Add(int64(n))
		return
	}
	mBatches.Inc()
	mTasks.Add(int64(n))
	// Chunked claiming: one atomic op hands out `chunk` consecutive
	// indexes. ~8 chunks per worker keeps the contended-counter cost
	// down (per-page claiming put one RMW on every 4 KiB page) while
	// still letting fast workers steal from slow ones near the tail.
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	//xfm:ignore hotpath-alloc one closure per batch, amortized over >= workers*8 pages
	body := func() {
		defer wg.Done()
		claimed := 0
		defer func() {
			hWorkerTasks.Observe(float64(claimed))
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicVal = r })
			}
		}()
		for {
			end := int(next.Add(int64(chunk)))
			start := end - chunk
			if start >= n {
				return
			}
			if end > n {
				end = n
			}
			claimed += end - start
			for i := start; i < end; i++ {
				fn(i) //xfm:ignore hotpath-alloc the per-item body is the caller's zero-alloc contract, pinned by the allocs/op regression tests
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go body() //xfm:ignore hotpath-alloc pool spin-up is once per batch, not per page
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
