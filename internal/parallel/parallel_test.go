package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

func TestForEachSerialFallbackRunsInline(t *testing.T) {
	// With one worker the calls must run on the caller's goroutine in
	// order — the property the determinism tests rely on.
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v, want ascending", order)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(100, 4, func(i int) {
		if i == 42 {
			panic("boom")
		}
	})
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}
