// Package zsmalloc implements a size-class slab allocator for
// compressed pages, modeled on the Linux zsmalloc allocator that
// production SFMs use (§2.1 of the paper): it packs as many compressed
// objects as possible into 4 KiB encapsulating pages, at the cost of
// intermittent compaction to resolve the internal fragmentation left
// by pages promoted out of the SFM (§6, "SFM Compaction").
package zsmalloc

import (
	"errors"
	"fmt"
	"sort"
)

// PageSize is the encapsulating page size.
const PageSize = 4096

// classGranularity is the spacing between size classes in bytes.
const classGranularity = 64

// Handle identifies a stored object. Handles are stable across
// compaction.
type Handle int64

// Errors returned by the allocator.
var (
	ErrTooLarge      = errors.New("zsmalloc: object larger than a page")
	ErrInvalidHandle = errors.New("zsmalloc: invalid handle")
	ErrCapacity      = errors.New("zsmalloc: region capacity exhausted")
)

// Stats summarizes allocator state.
type Stats struct {
	Objects        int
	StoredBytes    int64 // sum of object sizes
	PageBytes      int64 // bytes of encapsulating pages held
	Allocs, Frees  int64
	Compactions    int64
	CompactedBytes int64 // bytes memcpy'd by compaction
}

// Utilization returns StoredBytes / PageBytes, the packing efficiency.
func (s Stats) Utilization() float64 {
	if s.PageBytes == 0 {
		return 0
	}
	return float64(s.StoredBytes) / float64(s.PageBytes)
}

type slot struct {
	page   *zpage
	index  int
	length int
	// pinned marks the object as an active migration exclusion:
	// compaction will not move it, so bytes returned by Pin stay valid
	// until Unpin or Free. Set only via Pin/Unpin.
	pinned bool
}

type zpage struct {
	class   *sizeClass
	data    []byte
	handles []Handle // handle occupying each slot; 0 = free
	free    int
	inFree  bool // member of the class's free-page list
	freeIdx int  // index within the class's free-page list
}

func (p *zpage) slotBytes(i, length int) []byte {
	off := i * p.class.size
	return p.data[off : off+length]
}

type sizeClass struct {
	size  int
	slots int // objects per encapsulating page
	pages []*zpage
	// freePages lists pages with at least one free slot, so Alloc
	// finds a slot in O(1) instead of scanning the class.
	freePages []*zpage
	// spare caches emptied encapsulating pages for reuse instead of
	// returning them to the Go heap, so a free-then-alloc batch cycle
	// (swap-in batch followed by swap-out batch) allocates no new
	// pages in steady state. Spare pages are not "held": they count
	// toward neither Stats.PageBytes nor the region capacity, and the
	// list is bounded by the class's high-water page count.
	spare []*zpage
}

// noteFree ensures p is on the free-page list.
func (c *sizeClass) noteFree(p *zpage) {
	if !p.inFree && p.free > 0 {
		p.inFree = true
		p.freeIdx = len(c.freePages)
		c.freePages = append(c.freePages, p)
	}
}

// dropFree removes p from the free-page list in O(1) (swap-remove).
func (c *sizeClass) dropFree(p *zpage) {
	if !p.inFree {
		return
	}
	p.inFree = false
	last := len(c.freePages) - 1
	moved := c.freePages[last]
	c.freePages[p.freeIdx] = moved
	moved.freeIdx = p.freeIdx
	c.freePages = c.freePages[:last]
}

// Allocator packs variable-size compressed objects into fixed-size
// encapsulating pages. The zero value is not usable; call New.
type Allocator struct {
	maxPages int // capacity limit in encapsulating pages; 0 = unlimited
	classes  []*sizeClass
	objects  map[Handle]*slot
	next     Handle
	stats    Stats
	// freeSlots recycles slot descriptors released by Free, so the
	// steady-state alloc/free cycle of a batch swap round trip does
	// not touch the Go heap. Bounded by the high-water object count.
	freeSlots []*slot
}

// New returns an allocator limited to maxBytes of encapsulating pages
// (rounded down to whole pages); maxBytes ≤ 0 means unlimited. This
// limit is the SFM region capacity.
func New(maxBytes int64) *Allocator {
	a := &Allocator{objects: map[Handle]*slot{}, next: 1}
	if maxBytes > 0 {
		a.maxPages = int(maxBytes / PageSize)
	}
	for size := classGranularity; size <= PageSize; size += classGranularity {
		a.classes = append(a.classes, &sizeClass{size: size, slots: PageSize / size})
	}
	return a
}

// classFor returns the smallest size class that fits n bytes.
func (a *Allocator) classFor(n int) *sizeClass {
	idx := (n + classGranularity - 1) / classGranularity
	if idx == 0 {
		idx = 1
	}
	return a.classes[idx-1]
}

// pagesHeld returns the current number of encapsulating pages.
func (a *Allocator) pagesHeld() int {
	n := 0
	for _, c := range a.classes {
		n += len(c.pages)
	}
	return n
}

// Alloc stores a copy of data and returns its handle. It fails with
// ErrCapacity when a new encapsulating page would exceed the region
// limit and no free slot exists, and with ErrTooLarge for objects over
// PageSize.
func (a *Allocator) Alloc(data []byte) (Handle, error) {
	if len(data) > PageSize {
		return 0, ErrTooLarge
	}
	if len(data) == 0 {
		return 0, errors.New("zsmalloc: empty object")
	}
	c := a.classFor(len(data))
	// Take any page with a free slot from the class's free list.
	var page *zpage
	if n := len(c.freePages); n > 0 {
		page = c.freePages[n-1]
	}
	if page == nil {
		if a.maxPages > 0 && a.pagesHeld() >= a.maxPages {
			return 0, ErrCapacity
		}
		if n := len(c.spare); n > 0 {
			page = c.spare[n-1]
			c.spare[n-1] = nil
			c.spare = c.spare[:n-1]
		} else {
			page = &zpage{
				class:   c,
				data:    make([]byte, PageSize),
				handles: make([]Handle, c.slots),
				free:    c.slots,
			}
		}
		c.pages = append(c.pages, page)
		c.noteFree(page)
		a.stats.PageBytes += PageSize
	}
	idx := -1
	for i, h := range page.handles {
		if h == 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("zsmalloc: page with free count but no free slot")
	}
	h := a.next
	a.next++
	copy(page.slotBytes(idx, len(data)), data)
	page.handles[idx] = h
	page.free--
	if page.free == 0 {
		page.class.dropFree(page)
	}
	var s *slot
	if n := len(a.freeSlots); n > 0 {
		s = a.freeSlots[n-1]
		a.freeSlots[n-1] = nil
		a.freeSlots = a.freeSlots[:n-1]
		*s = slot{page: page, index: idx, length: len(data)}
	} else {
		s = &slot{page: page, index: idx, length: len(data)}
	}
	a.objects[h] = s
	a.stats.Objects++
	a.stats.StoredBytes += int64(len(data))
	a.stats.Allocs++
	return h, nil
}

// Get appends the object's bytes to dst and returns the extended
// slice.
func (a *Allocator) Get(dst []byte, h Handle) ([]byte, error) {
	s, ok := a.objects[h]
	if !ok {
		return dst, ErrInvalidHandle
	}
	return append(dst, s.page.slotBytes(s.index, s.length)...), nil
}

// Size returns the stored size of the object.
func (a *Allocator) Size(h Handle) (int, error) {
	s, ok := a.objects[h]
	if !ok {
		return 0, ErrInvalidHandle
	}
	return s.length, nil
}

// Free releases the object's slot (pinned or not; freeing an object
// ends its pin). Empty encapsulating pages are cached for reuse.
func (a *Allocator) Free(h Handle) error {
	s, ok := a.objects[h]
	if !ok {
		return ErrInvalidHandle
	}
	delete(a.objects, h)
	page := s.page
	page.handles[s.index] = 0
	page.free++
	page.class.noteFree(page)
	a.stats.Objects--
	a.stats.StoredBytes -= int64(s.length)
	a.stats.Frees++
	*s = slot{}
	a.freeSlots = append(a.freeSlots, s)
	if page.free == page.class.slots {
		a.releasePage(page)
	}
	return nil
}

// Pin returns the object's live slot bytes and excludes it from
// compaction migration until Unpin or Free, so a caller may read the
// bytes without holding the allocator's external lock for the whole
// read. The slice aliases the encapsulating page: it is valid only
// while the pin holds and must be treated as read-only.
func (a *Allocator) Pin(h Handle) ([]byte, error) {
	s, ok := a.objects[h]
	if !ok {
		return nil, ErrInvalidHandle
	}
	s.pinned = true
	return s.page.slotBytes(s.index, s.length), nil
}

// Unpin makes the object movable by compaction again. Bytes returned
// by Pin must not be used afterwards.
func (a *Allocator) Unpin(h Handle) error {
	s, ok := a.objects[h]
	if !ok {
		return ErrInvalidHandle
	}
	s.pinned = false
	return nil
}

func (a *Allocator) releasePage(p *zpage) {
	c := p.class
	c.dropFree(p)
	for i, q := range c.pages {
		if q == p {
			c.pages = append(c.pages[:i], c.pages[i+1:]...)
			a.stats.PageBytes -= PageSize
			// p is empty (all handles zero, free == slots), so it can
			// be handed straight back to Alloc later.
			c.spare = append(c.spare, p)
			return
		}
	}
}

// Compact defragments every size class by migrating objects out of
// sparsely used pages into denser ones, releasing emptied pages. It
// returns the number of bytes moved (the memcpy cost the paper's
// xfm_compact() interface exposes, §6).
//
//xfm:allocok compact-on-full is a rare slow path (counted by sfm_compact_on_full_total), not per-page steady state
func (a *Allocator) Compact() int64 {
	var moved int64
	for _, c := range a.classes {
		moved += a.compactClass(c)
	}
	a.stats.Compactions++
	a.stats.CompactedBytes += moved
	return moved
}

func (a *Allocator) compactClass(c *sizeClass) int64 {
	if len(c.pages) < 2 {
		return 0
	}
	// Densest pages first as migration targets; sparsest last as
	// sources.
	sort.Slice(c.pages, func(i, j int) bool { return c.pages[i].free < c.pages[j].free })
	var moved int64
	lo, hi := 0, len(c.pages)-1
	for lo < hi {
		dst, src := c.pages[lo], c.pages[hi]
		if dst.free == 0 {
			lo++
			continue
		}
		if src.free == c.slots {
			hi--
			continue
		}
		// Move one object from src to dst. Pinned objects are not
		// migration sources: a batch swap-in may be decompressing
		// their bytes in place without the allocator's external lock.
		srcIdx := -1
		for i := len(src.handles) - 1; i >= 0; i-- {
			if h := src.handles[i]; h != 0 && !a.objects[h].pinned {
				srcIdx = i
				break
			}
		}
		if srcIdx < 0 {
			// Everything left on this source page is pinned; skip it.
			hi--
			continue
		}
		dstIdx := -1
		for i, h := range dst.handles {
			if h == 0 {
				dstIdx = i
				break
			}
		}
		if dstIdx < 0 {
			break
		}
		h := src.handles[srcIdx]
		s := a.objects[h]
		copy(dst.slotBytes(dstIdx, s.length), src.slotBytes(srcIdx, s.length))
		moved += int64(s.length)
		dst.handles[dstIdx] = h
		dst.free--
		src.handles[srcIdx] = 0
		src.free++
		s.page, s.index = dst, dstIdx
	}
	// Release pages emptied by migration, then rebuild the free list
	// (migration changed many occupancies).
	var emptied []*zpage
	for _, p := range c.pages {
		if p.free == c.slots {
			emptied = append(emptied, p)
		}
	}
	for _, p := range emptied {
		a.releasePage(p)
	}
	c.freePages = c.freePages[:0]
	for _, p := range c.pages {
		p.inFree = false
		c.noteFree(p)
	}
	return moved
}

// Stats returns a snapshot of allocator statistics.
func (a *Allocator) Stats() Stats { return a.stats }

// CheckInvariants verifies internal consistency; tests call it after
// mutation storms. It returns an error describing the first violation.
func (a *Allocator) CheckInvariants() error {
	objects := 0
	var stored int64
	for _, c := range a.classes {
		// Free-list consistency: every page with free slots is listed
		// exactly once, full pages are not.
		listed := map[*zpage]int{}
		for _, p := range c.freePages {
			listed[p]++
		}
		for _, p := range c.pages {
			switch {
			case p.free > 0 && (listed[p] != 1 || !p.inFree):
				return fmt.Errorf("class %d: page with %d free slots not on free list", c.size, p.free)
			case p.free == 0 && (listed[p] != 0 || p.inFree):
				return fmt.Errorf("class %d: full page on free list", c.size)
			}
		}
		// Spare pages must be clean (empty, detached, reusable as-is).
		for _, p := range c.spare {
			if p.free != c.slots || p.inFree {
				return fmt.Errorf("class %d: spare page not clean", c.size)
			}
			for _, h := range p.handles {
				if h != 0 {
					return fmt.Errorf("class %d: spare page holds handle %d", c.size, h)
				}
			}
		}
		for _, p := range c.pages {
			if p.free == c.slots {
				return fmt.Errorf("class %d holds an empty page", c.size)
			}
			used := 0
			for i, h := range p.handles {
				if h == 0 {
					continue
				}
				used++
				s, ok := a.objects[h]
				if !ok {
					return fmt.Errorf("page slot holds unknown handle %d", h)
				}
				if s.page != p || s.index != i {
					return fmt.Errorf("handle %d back-pointer mismatch", h)
				}
				if s.length > c.size {
					return fmt.Errorf("handle %d length %d exceeds class %d", h, s.length, c.size)
				}
			}
			if used != c.slots-p.free {
				return fmt.Errorf("class %d page free count %d inconsistent with %d used slots",
					c.size, p.free, used)
			}
			objects += used
		}
	}
	for h, s := range a.objects {
		if s.page.handles[s.index] != h {
			return fmt.Errorf("object %d not present at its slot", h)
		}
		stored += int64(s.length)
	}
	if objects != len(a.objects) {
		return fmt.Errorf("page slots hold %d objects, map holds %d", objects, len(a.objects))
	}
	if objects != a.stats.Objects {
		return fmt.Errorf("stats.Objects %d, want %d", a.stats.Objects, objects)
	}
	if stored != a.stats.StoredBytes {
		return fmt.Errorf("stats.StoredBytes %d, want %d", a.stats.StoredBytes, stored)
	}
	return nil
}
