package zsmalloc

import (
	"bytes"
	"testing"
)

// fillPages allocates count objects of size n and returns their
// handles and contents.
func fillPages(t *testing.T, a *Allocator, count, n int) ([]Handle, [][]byte) {
	t.Helper()
	hs := make([]Handle, count)
	data := make([][]byte, count)
	for i := range hs {
		data[i] = bytes.Repeat([]byte{byte('a' + i%23)}, n)
		h, err := a.Alloc(data[i])
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	return hs, data
}

func TestPinReturnsLiveBytes(t *testing.T) {
	a := New(0)
	hs, data := fillPages(t, a, 3, 100)
	raw, err := a.Pin(hs[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, data[1]) {
		t.Fatal("pinned bytes differ from stored object")
	}
	if err := a.Unpin(hs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Pin(Handle(999)); err != ErrInvalidHandle {
		t.Fatalf("Pin(bad) = %v, want ErrInvalidHandle", err)
	}
	if err := a.Unpin(Handle(999)); err != ErrInvalidHandle {
		t.Fatalf("Unpin(bad) = %v, want ErrInvalidHandle", err)
	}
}

// TestPinExcludesFromCompaction fragments two pages, pins the only
// object left on the sparse source page, and checks compaction leaves
// the pinned bytes in place (the Pin-returned slice stays valid — the
// batch engine decompresses from it with no lock held).
func TestPinExcludesFromCompaction(t *testing.T) {
	a := New(0)
	// 1000-byte objects land in the 1024 class: four per page, so 8
	// objects fill two pages deterministically (0-3 and 4-7).
	hs, data := fillPages(t, a, 8, 1000)
	// Page 1 loses one object (free=1), page 2 loses three (free=3),
	// so page 2 is unambiguously the compaction source.
	for _, h := range []Handle{hs[0], hs[5], hs[6], hs[7]} {
		if err := a.Free(h); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := a.Pin(hs[4]) // the source page's only survivor
	if err != nil {
		t.Fatal(err)
	}
	moved := a.Compact()
	if moved != 0 {
		t.Fatalf("compaction moved %d bytes; the only movable candidate was pinned", moved)
	}
	if !bytes.Equal(raw, data[4]) {
		t.Fatal("pinned slice invalidated by compaction")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Unpinned, the survivor migrates and its page is released.
	if err := a.Unpin(hs[4]); err != nil {
		t.Fatal(err)
	}
	if moved := a.Compact(); moved != 1000 {
		t.Fatalf("post-unpin compaction moved %d bytes, want 1000", moved)
	}
	got, err := a.Get(nil, hs[4])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[4]) {
		t.Fatal("object corrupted by post-unpin compaction")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFreeEndsPin pins an object, frees it without unpinning, and
// checks the slot is genuinely recycled (the contract commitIn relies
// on: Free on the success path ends the pin implicitly).
func TestFreeEndsPin(t *testing.T) {
	a := New(0)
	hs, _ := fillPages(t, a, 2, 300)
	if _, err := a.Pin(hs[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(hs[0]); err != nil {
		t.Fatal(err)
	}
	// The freed slot must be allocatable and movable again.
	h, err := a.Alloc(bytes.Repeat([]byte{'z'}, 300))
	if err != nil {
		t.Fatal(err)
	}
	if a.objects[h].pinned {
		t.Fatal("recycled slot kept its pin bit")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSparePageReuse drains an allocator and checks emptied
// encapsulating pages come back from the spare cache instead of the
// heap, without double-counting PageBytes.
func TestSparePageReuse(t *testing.T) {
	a := New(0)
	hs, _ := fillPages(t, a, 8, 1000)
	before := a.Stats().PageBytes
	for _, h := range hs {
		if err := a.Free(h); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().PageBytes; got != 0 {
		t.Fatalf("PageBytes = %d after draining, want 0 (spare pages are not held)", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	hs2, data2 := fillPages(t, a, 8, 1000)
	if got := a.Stats().PageBytes; got != before {
		t.Fatalf("PageBytes = %d after refill, want %d", got, before)
	}
	for i, h := range hs2 {
		got, err := a.Get(nil, h)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data2[i]) {
			t.Fatalf("object %d corrupted after spare-page reuse", i)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAllPinnedSourceSkipped pins every object on the sparse source
// page and checks compaction terminates and skips it (the hi--
// continue path) rather than spinning or moving pinned bytes.
func TestAllPinnedSourceSkipped(t *testing.T) {
	a := New(0)
	hs, _ := fillPages(t, a, 4, 2000) // two per page
	if err := a.Free(hs[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(hs[3]); err != nil {
		t.Fatal(err)
	}
	for _, h := range []Handle{hs[1], hs[2]} {
		if _, err := a.Pin(h); err != nil {
			t.Fatal(err)
		}
	}
	if moved := a.Compact(); moved != 0 {
		t.Fatalf("compaction moved %d bytes with every candidate pinned", moved)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocReusesFreedSlotStructs drives alloc/free cycles and checks
// the steady state allocates no slot bookkeeping (the freeSlots and
// spare-page caches feed the batch engine's zero-alloc hot path).
func TestAllocReusesFreedSlotStructs(t *testing.T) {
	a := New(0)
	payload := bytes.Repeat([]byte{'q'}, 500)
	// Warm the caches.
	for i := 0; i < 3; i++ {
		hs := make([]Handle, 16)
		for j := range hs {
			h, err := a.Alloc(payload)
			if err != nil {
				t.Fatal(err)
			}
			hs[j] = h
		}
		for _, h := range hs {
			if err := a.Free(h); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		h, err := a.Alloc(payload)
		if err != nil {
			panic(err)
		}
		if err := a.Free(h); err != nil {
			panic(err)
		}
	})
	// The objects map insert/delete may allocate occasionally; slot
	// structs and page buffers must not.
	if allocs > 2 {
		t.Fatalf("steady-state alloc/free cycle: %.1f allocs/op, want ≤2", allocs)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
