package zsmalloc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocGetRoundTrip(t *testing.T) {
	a := New(0)
	data := []byte("compressed page payload")
	h, err := a.Alloc(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Get(nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	if n, _ := a.Size(h); n != len(data) {
		t.Errorf("Size = %d, want %d", n, len(data))
	}
}

func TestAllocErrors(t *testing.T) {
	a := New(0)
	if _, err := a.Alloc(make([]byte, PageSize+1)); err != ErrTooLarge {
		t.Errorf("oversized alloc: err = %v, want ErrTooLarge", err)
	}
	if _, err := a.Alloc(nil); err == nil {
		t.Error("empty alloc accepted")
	}
	if _, err := a.Get(nil, Handle(999)); err != ErrInvalidHandle {
		t.Errorf("bad handle Get: err = %v", err)
	}
	if err := a.Free(Handle(999)); err != ErrInvalidHandle {
		t.Errorf("bad handle Free: err = %v", err)
	}
	if _, err := a.Size(Handle(999)); err != ErrInvalidHandle {
		t.Errorf("bad handle Size: err = %v", err)
	}
}

func TestFreeReleasesEmptyPages(t *testing.T) {
	a := New(0)
	var hs []Handle
	for i := 0; i < 10; i++ {
		h, err := a.Alloc(make([]byte, 2048))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	// 2048-byte class: 2 slots per page, so 5 pages.
	if got := a.Stats().PageBytes; got != 5*PageSize {
		t.Fatalf("PageBytes = %d, want %d", got, 5*PageSize)
	}
	for _, h := range hs {
		if err := a.Free(h); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().PageBytes; got != 0 {
		t.Errorf("PageBytes after freeing all = %d, want 0", got)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDoubleFree(t *testing.T) {
	a := New(0)
	h, _ := a.Alloc([]byte("x"))
	if err := a.Free(h); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(h); err != ErrInvalidHandle {
		t.Errorf("double free: err = %v, want ErrInvalidHandle", err)
	}
}

func TestCapacityLimit(t *testing.T) {
	a := New(2 * PageSize) // room for 2 encapsulating pages
	// 4096-byte objects: one per page.
	if _, err := a.Alloc(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(make([]byte, 4096)); err != ErrCapacity {
		t.Errorf("over-capacity alloc: err = %v, want ErrCapacity", err)
	}
	// Small objects can still share existing pages only if a class
	// page exists — here none, so they must also fail.
	if _, err := a.Alloc(make([]byte, 64)); err != ErrCapacity {
		t.Errorf("new class page over capacity: err = %v, want ErrCapacity", err)
	}
}

func TestPackingMultipleObjectsPerPage(t *testing.T) {
	a := New(0)
	// 64 × 64-byte objects fit in exactly one page.
	for i := 0; i < 64; i++ {
		if _, err := a.Alloc(make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().PageBytes; got != PageSize {
		t.Errorf("64 small objects used %d page bytes, want one page", got)
	}
	if u := a.Stats().Utilization(); u != 1.0 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
}

func TestCompactionReclaimsFragmentation(t *testing.T) {
	a := New(0)
	var hs []Handle
	// Fill 8 pages of the 1024-byte class (4 slots each).
	for i := 0; i < 32; i++ {
		h, err := a.Alloc(make([]byte, 1000))
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	// Free 3 of every 4 objects: pages become sparse but none empty.
	for i, h := range hs {
		if i%4 != 0 {
			a.Free(h)
		}
	}
	before := a.Stats().PageBytes
	if before != 8*PageSize {
		t.Fatalf("pages before compaction = %d bytes, want 8 pages", before)
	}
	moved := a.Compact()
	if moved <= 0 {
		t.Fatal("compaction moved nothing")
	}
	after := a.Stats().PageBytes
	// 8 surviving objects of 1000 B fit in 2 pages.
	if after != 2*PageSize {
		t.Errorf("pages after compaction = %d bytes, want 2 pages", after)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Surviving objects still readable.
	for i, h := range hs {
		if i%4 == 0 {
			if _, err := a.Get(nil, h); err != nil {
				t.Errorf("object %d unreadable after compaction: %v", i, err)
			}
		}
	}
}

func TestCompactionPreservesContent(t *testing.T) {
	a := New(0)
	rng := rand.New(rand.NewSource(4))
	contents := map[Handle][]byte{}
	var order []Handle
	for i := 0; i < 200; i++ {
		data := make([]byte, rng.Intn(3000)+1)
		rng.Read(data)
		h, err := a.Alloc(data)
		if err != nil {
			t.Fatal(err)
		}
		contents[h] = data
		order = append(order, h)
	}
	for i, h := range order {
		if i%3 == 0 {
			a.Free(h)
			delete(contents, h)
		}
	}
	a.Compact()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for h, want := range contents {
		got, err := a.Get(nil, h)
		if err != nil {
			t.Fatalf("Get(%d): %v", h, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("content of %d corrupted by compaction", h)
		}
	}
}

// TestPropertyRandomOps runs random alloc/free/get/compact sequences
// and checks invariants plus content fidelity throughout.
func TestPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(256 * PageSize)
		contents := map[Handle][]byte{}
		var hs []Handle
		for op := 0; op < 800; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // alloc
				data := make([]byte, rng.Intn(4096)+1)
				rng.Read(data)
				h, err := a.Alloc(data)
				if err == ErrCapacity {
					continue
				}
				if err != nil {
					return false
				}
				contents[h] = data
				hs = append(hs, h)
			case 5, 6, 7: // free
				if len(hs) == 0 {
					continue
				}
				i := rng.Intn(len(hs))
				h := hs[i]
				hs = append(hs[:i], hs[i+1:]...)
				if _, live := contents[h]; live {
					if err := a.Free(h); err != nil {
						return false
					}
					delete(contents, h)
				}
			case 8: // get
				if len(hs) == 0 {
					continue
				}
				h := hs[rng.Intn(len(hs))]
				want, live := contents[h]
				got, err := a.Get(nil, h)
				if live != (err == nil) {
					return false
				}
				if live && !bytes.Equal(got, want) {
					return false
				}
			case 9: // compact
				a.Compact()
			}
		}
		if a.CheckInvariants() != nil {
			return false
		}
		for h, want := range contents {
			got, err := a.Get(nil, h)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	a := New(0)
	h1, _ := a.Alloc(make([]byte, 100))
	h2, _ := a.Alloc(make([]byte, 200))
	st := a.Stats()
	if st.Objects != 2 || st.StoredBytes != 300 || st.Allocs != 2 {
		t.Errorf("stats = %+v", st)
	}
	a.Free(h1)
	a.Free(h2)
	st = a.Stats()
	if st.Objects != 0 || st.StoredBytes != 0 || st.Frees != 2 {
		t.Errorf("stats after frees = %+v", st)
	}
}

func TestUtilizationZeroWhenEmpty(t *testing.T) {
	if u := (Stats{}).Utilization(); u != 0 {
		t.Errorf("empty utilization = %v", u)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(0)
	data := make([]byte, 1800)
	for i := 0; i < b.N; i++ {
		h, err := a.Alloc(data)
		if err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			a.Free(h)
		}
	}
}

func BenchmarkCompact(b *testing.B) {
	// Build one fragmented arena per iteration batch; per-iteration
	// setup via StopTimer is prohibitively slow at large b.N.
	build := func() *Allocator {
		a := New(0)
		rng := rand.New(rand.NewSource(1))
		var hs []Handle
		for j := 0; j < 400; j++ {
			h, _ := a.Alloc(make([]byte, rng.Intn(2000)+1))
			hs = append(hs, h)
		}
		for j, h := range hs {
			if j%2 == 0 {
				a.Free(h)
			}
		}
		return a
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := build() // included in timing: compaction cost dominates
		a.Compact()
	}
}
