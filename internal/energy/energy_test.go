package energy

import (
	"math"
	"testing"

	"xfm/internal/dram"
)

func TestDataMovementSavingMatchesPaper(t *testing.T) {
	// §4.3: on-DIMM data movement "cuts the overall data movement
	// energy by 69%".
	got := DataMovementSavingFraction()
	if math.Abs(got-0.69) > 0.01 {
		t.Errorf("data movement saving = %.3f, want ≈0.69", got)
	}
}

func TestConditionalAccessCheaperThanRandom(t *testing.T) {
	cond := NMAAccessEnergyNJ(4096, 2, true)
	rnd := NMAAccessEnergyNJ(4096, 2, false)
	if cond >= rnd {
		t.Errorf("conditional access (%.1f nJ) not cheaper than random (%.1f nJ)", cond, rnd)
	}
	if math.Abs((rnd-cond)-2*RowActPreNJ) > 1e-9 {
		t.Errorf("saving = %.2f nJ, want 2×ACT+PRE = %.2f", rnd-cond, 2*RowActPreNJ)
	}
}

func TestConditionalSavingNearPaperAverage(t *testing.T) {
	// §8: "the conditional accesses enable XFM to reduce the NMA access
	// energy by 10.1% across various promotion rates". With the
	// conditional fractions the scheduler achieves (~0.7-0.9), the
	// saving should bracket 10%.
	low := ConditionalSavingFraction(0.7, 4096, 2)
	high := ConditionalSavingFraction(0.9, 4096, 2)
	if low > 0.101 || high < 0.101 {
		t.Errorf("saving range [%.3f, %.3f] does not bracket 0.101", low, high)
	}
}

func TestConditionalSavingMonotone(t *testing.T) {
	prev := -1.0
	for f := 0.0; f <= 1.0; f += 0.1 {
		s := ConditionalSavingFraction(f, 4096, 2)
		if s < prev {
			t.Fatalf("saving not monotone at f=%.1f", f)
		}
		prev = s
	}
	if s := ConditionalSavingFraction(0, 4096, 2); s != 0 {
		t.Errorf("saving at f=0 is %.3f, want 0", s)
	}
}

func TestCPUPathCostsMoreThanNMAPath(t *testing.T) {
	cpu := CPUAccessEnergyNJ(4096, 2)
	nmaRand := NMAAccessEnergyNJ(4096, 2, false)
	if nmaRand >= cpu {
		t.Errorf("NMA random access (%.1f nJ) not cheaper than CPU access (%.1f nJ)", nmaRand, cpu)
	}
}

func TestTable2Constants(t *testing.T) {
	rows := Table2FPGAResources()
	if len(rows) != 3 {
		t.Fatalf("Table 2 has %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		pct := float64(r.Used) / float64(r.Total) * 100
		if math.Abs(pct-r.Percent) > 0.05 {
			t.Errorf("%s: computed %.2f%%, table says %.2f%%", r.Name, pct, r.Percent)
		}
	}
	if rows[0].Name != "LUTs" || rows[0].Percent != 83.30 {
		t.Errorf("LUT row wrong: %+v", rows[0])
	}
}

func TestTable3Consistency(t *testing.T) {
	p := Table3Power()
	if math.Abs(p.DynamicWatts+p.StaticWatts-p.TotalWatts) > 0.001 {
		t.Errorf("dynamic %.3f + static %.3f != total %.3f",
			p.DynamicWatts, p.StaticWatts, p.TotalWatts)
	}
	if math.Abs(p.DynamicPct+p.StaticPct-100) > 0.01 {
		t.Errorf("percentages do not sum to 100")
	}
	dynPct := p.DynamicWatts / p.TotalWatts * 100
	if math.Abs(dynPct-p.DynamicPct) > 0.6 {
		t.Errorf("dynamic share %.1f%%, table says %.0f%%", dynPct, p.DynamicPct)
	}
}

func TestBankModificationOverheadsSmall(t *testing.T) {
	o := BankModificationOverheads()
	if o.AreaFraction > 0.002 {
		t.Errorf("area overhead %.4f, paper reports ~0.15%%", o.AreaFraction)
	}
	if o.PowerFraction > 0.0001 {
		t.Errorf("power overhead %.6f, paper reports ~0.002%%", o.PowerFraction)
	}
}

func TestPrototypeOverprovisioned(t *testing.T) {
	// §8: the open-source Deflate accelerator (1.4/1.7 GB/s) is
	// overprovisioned because the guaranteed NMA bandwidth is < 1 GB/s.
	tm := dram.DDR5_3200()
	guaranteed := NMABandwidthGBps(1, 4096, tm.TREFI)
	if guaranteed >= 1.1 {
		t.Errorf("guaranteed NMA bandwidth = %.2f GB/s, want ≈1", guaranteed)
	}
	comp, decomp := OpenSourceDeflateGBps()
	if comp <= guaranteed {
		t.Errorf("compression engine (%.1f GB/s) not overprovisioned vs %.2f GB/s", comp, guaranteed)
	}
	if decomp <= comp {
		t.Error("decompression should be faster than compression")
	}
}

func TestAxDIMMPrototypeThroughput(t *testing.T) {
	comp, decomp := PrototypeThroughputGBps()
	if comp != 14.8 || decomp != 17.2 {
		t.Errorf("prototype throughput = %.1f/%.1f, want 14.8/17.2 (§7)", comp, decomp)
	}
}

func TestPageTransferScalesLinearly(t *testing.T) {
	e1 := PageTransferNJ(1024, OnDIMMLinkPJPerBit)
	e4 := PageTransferNJ(4096, OnDIMMLinkPJPerBit)
	if math.Abs(e4-4*e1) > 1e-9 {
		t.Errorf("transfer energy not linear: %v vs 4×%v", e4, e1)
	}
}
