// Package energy models the data-movement and access energy of XFM
// (§4.3, §8) and carries the FPGA resource/power constants of
// Tables 2 and 3. Hardware synthesis cannot be reproduced in software;
// the reported constants are embedded and the derived quantities (the
// 69% data-movement saving, the 10.1% conditional-access saving) are
// computed from first principles so the relationships can be tested.
package energy

// Link energies in picojoules per bit.
const (
	// OnDIMMLinkPJPerBit is the on-PCB serial link energy between the
	// data buffers and the RCD (Wilson et al., cited in §4.1):
	// 1.17 pJ/bit.
	OnDIMMLinkPJPerBit = 1.17
	// ChannelPJPerBit is the DDR channel energy from DRAM to CPU.
	// §4.3: moving data on-DIMM instead "cuts the overall data
	// movement energy by 69%", which pins the channel at
	// 1.17 / 0.31 ≈ 3.77 pJ/bit.
	ChannelPJPerBit = 3.774
)

// RowActPreNJ is the energy of one ACT+PRE pair in nanojoules.
// Calibrated so that the activation share of a 4 KiB NMA page access
// reproduces the paper's 10.1% average conditional-access saving at
// the observed conditional fractions (§8).
const RowActPreNJ = 2.7

// DataMovementSavingFraction returns the fraction of data-movement
// energy saved by moving data over the on-DIMM link instead of the
// DDR channel (§4.3 reports 69%).
func DataMovementSavingFraction() float64 {
	return 1 - OnDIMMLinkPJPerBit/ChannelPJPerBit
}

// PageTransferNJ returns the energy to move one page of n bytes over
// a link with the given pJ/bit cost.
func PageTransferNJ(n int, pjPerBit float64) float64 {
	return float64(n) * 8 * pjPerBit / 1000
}

// NMAAccessEnergyNJ returns the energy of one NMA page access of n
// bytes. A random access activates and precharges the page's rows
// itself (banksTouched ACT+PRE pairs); a conditional access rides the
// activation the refresh already performs and pays only the data
// movement (§5: "less access energy is used since NMA accesses do not
// need to activate a page").
func NMAAccessEnergyNJ(n int, banksTouched int, conditional bool) float64 {
	e := PageTransferNJ(n, OnDIMMLinkPJPerBit)
	if !conditional {
		e += RowActPreNJ * float64(banksTouched)
	}
	return e
}

// ConditionalSavingFraction returns the average NMA access-energy
// saving when a fraction f of accesses is conditional, for n-byte
// pages interleaved over banksTouched banks. The paper reports 10.1%
// on average across promotion rates and DRAM configurations (§8).
func ConditionalSavingFraction(f float64, n, banksTouched int) float64 {
	random := NMAAccessEnergyNJ(n, banksTouched, false)
	mixed := f*NMAAccessEnergyNJ(n, banksTouched, true) + (1-f)*random
	return 1 - mixed/random
}

// CPUAccessEnergyNJ returns the energy for the CPU path: the page
// crosses the DDR channel (and, for SFM, is read cold and written
// back, so callers typically double it).
func CPUAccessEnergyNJ(n int, banksTouched int) float64 {
	return PageTransferNJ(n, ChannelPJPerBit) + RowActPreNJ*float64(banksTouched)
}

// FPGAResource is one row of Table 2.
type FPGAResource struct {
	Name    string
	Used    int
	Total   int
	Percent float64
}

// Table2FPGAResources returns the FPGA resource utilization of the
// XFM prototype (Table 2, Xilinx UltraScale+ on Samsung AxDIMM).
func Table2FPGAResources() []FPGAResource {
	return []FPGAResource{
		{Name: "LUTs", Used: 435467, Total: 522720, Percent: 83.30},
		{Name: "FFs", Used: 94135, Total: 1045440, Percent: 9.00},
		{Name: "BRAM", Used: 51, Total: 984, Percent: 5.18},
	}
}

// PowerBreakdown is Table 3: the prototype's power consumption.
type PowerBreakdown struct {
	TotalWatts   float64
	DynamicWatts float64
	DynamicPct   float64
	StaticWatts  float64
	StaticPct    float64
}

// Table3Power returns the power breakdown of the XFM FPGA
// implementation (Table 3).
func Table3Power() PowerBreakdown {
	return PowerBreakdown{
		TotalWatts:   7.024,
		DynamicWatts: 5.718,
		DynamicPct:   81,
		StaticWatts:  1.306,
		StaticPct:    19,
	}
}

// DRAMOverheads holds the CACTI-modeled cost of the Fig. 7 bank
// modifications (§8: "~0.15% area and ~0.002% power overhead" for an
// 8 Gb DDR4 chip in 22 nm).
type DRAMOverheads struct {
	AreaFraction  float64
	PowerFraction float64
}

// BankModificationOverheads returns the modeled DRAM bank overheads.
func BankModificationOverheads() DRAMOverheads {
	return DRAMOverheads{AreaFraction: 0.0015, PowerFraction: 0.00002}
}

// PrototypeThroughputGBps returns the AxDIMM prototype accelerator
// throughputs (§7): compression and decompression.
func PrototypeThroughputGBps() (comp, decomp float64) { return 14.8, 17.2 }

// OpenSourceDeflateGBps returns the FPGA Deflate accelerator
// throughput from Table 2's discussion (§8): 1.4 GB/s compression and
// 1.7 GB/s decompression — "highly overprovisioned for XFM" because
// the NMA's refresh-window DRAM bandwidth is under 1 GB/s.
func OpenSourceDeflateGBps() (comp, decomp float64) { return 1.4, 1.7 }

// NMABandwidthGBps returns the DRAM bandwidth the NMA obtains from
// refresh windows when it moves pagesPerWindow pages of pageBytes each
// tREFI. The *guaranteed* bandwidth uses one page per window (the
// random-access slot, §7), which for 4 KiB pages at tREFI = 3.9 µs is
// ≈1 GB/s — the paper's "theoretical memory bandwidth available to
// the NMA is less than 1 GBps" (§8). Conditional accesses add
// opportunistic capacity on top when queued requests match the
// refresh schedule.
func NMABandwidthGBps(pagesPerWindow, pageBytes int, treFIPs int64) float64 {
	bytesPerWindow := float64(pagesPerWindow * pageBytes)
	windowsPerSec := 1e12 / float64(treFIPs)
	return bytesPerWindow * windowsPerSec / 1e9
}
