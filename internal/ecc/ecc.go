// Package ecc implements side-band SECDED (single-error-correcting,
// double-error-detecting) ECC as used on x72 DDR DIMMs (§4.1 of the
// paper). The NMA sits between the DRAM chips and the memory
// controller, so it reads error-free data (on-die ECC) and does not
// need to *check* the side-band code — but it must *regenerate* the
// parity bytes when writing compressed data back, "so the memory
// controller can perform side-band ECC error detection and
// correction".
//
// The code is the classic extended Hamming (72,64): seven Hamming
// check bits at power-of-two codeword positions plus one overall
// parity bit, protecting each 64-bit data word with 8 ECC bits — the
// x72 DIMM layout (8 data chips + 1 ECC chip).
package ecc

import "encoding/binary"

// Status is the outcome of a Decode.
type Status int

// Decode outcomes.
const (
	OK            Status = iota // no error
	Corrected                   // single-bit error corrected
	ParityBitFlip               // error in the ECC bits themselves, data intact
	DoubleError                 // uncorrectable double-bit error detected
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case ParityBitFlip:
		return "parity-bit-flip"
	case DoubleError:
		return "double-error"
	default:
		return "invalid"
	}
}

// The codeword has 72 positions, indexed 1..72 for the Hamming part
// with position 0 holding the overall parity bit. Positions 1, 2, 4,
// 8, 16, 32, 64 hold the seven Hamming check bits; the remaining 64
// positions hold data bits in ascending order.

// dataPositions[i] is the codeword position of data bit i.
var dataPositions = func() [64]int {
	var out [64]int
	i := 0
	for pos := 1; pos <= 72 && i < 64; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit
			continue
		}
		out[i] = pos
		i++
	}
	return out
}()

// checkPositions are the power-of-two codeword positions.
var checkPositions = [7]int{1, 2, 4, 8, 16, 32, 64}

// Encode computes the 8 ECC bits for one 64-bit data word: bits 0-6
// are the Hamming check bits, bit 7 is the overall parity of the full
// 72-bit codeword.
func Encode(data uint64) uint8 {
	var code [73]bool
	for i := 0; i < 64; i++ {
		code[dataPositions[i]] = data>>uint(i)&1 == 1
	}
	var parity uint8
	for c, cp := range checkPositions {
		bit := false
		for pos := 1; pos <= 72; pos++ {
			if pos&cp != 0 && code[pos] {
				bit = !bit
			}
		}
		if bit {
			parity |= 1 << uint(c)
			code[cp] = true
		}
	}
	// Overall parity over all 72 Hamming positions.
	overall := false
	for pos := 1; pos <= 72; pos++ {
		if code[pos] {
			overall = !overall
		}
	}
	if overall {
		parity |= 1 << 7
	}
	return parity
}

// Decode checks (and if needed corrects) a data word against its ECC
// bits. It returns the possibly corrected data and the outcome.
func Decode(data uint64, parity uint8) (uint64, Status) {
	var code [73]bool
	for i := 0; i < 64; i++ {
		code[dataPositions[i]] = data>>uint(i)&1 == 1
	}
	for c, cp := range checkPositions {
		code[cp] = parity>>uint(c)&1 == 1
	}
	// Syndrome: for each check bit, parity over its coverage class
	// (including the stored check bit itself).
	syndrome := 0
	for c, cp := range checkPositions {
		bit := false
		for pos := 1; pos <= 72; pos++ {
			if pos&cp != 0 && code[pos] {
				bit = !bit
			}
		}
		if bit {
			syndrome |= cp
		}
		_ = c
	}
	// Recompute overall parity across positions plus the stored
	// overall-parity bit.
	overall := parity>>7&1 == 1
	for pos := 1; pos <= 72; pos++ {
		if code[pos] {
			overall = !overall
		}
	}
	switch {
	case syndrome == 0 && !overall:
		return data, OK
	case syndrome == 0 && overall:
		// The overall parity bit itself flipped.
		return data, ParityBitFlip
	case overall:
		// Single-bit error at codeword position `syndrome`.
		if syndrome > 72 {
			return data, DoubleError // syndrome outside the codeword
		}
		if syndrome&(syndrome-1) == 0 {
			// A check bit flipped; data is intact.
			return data, ParityBitFlip
		}
		// Map the position back to its data bit index.
		for i := 0; i < 64; i++ {
			if dataPositions[i] == syndrome {
				return data ^ 1<<uint(i), Corrected
			}
		}
		return data, DoubleError
	default:
		// Nonzero syndrome with even overall parity: two errors.
		return data, DoubleError
	}
}

// PageParity computes one ECC byte per 8 data bytes for a buffer whose
// length is a multiple of 8 — the side-band parity the NMA must
// regenerate on write-back (§4.1). It panics on misaligned input,
// which indicates a programming error (pages are 4 KiB).
func PageParity(data []byte) []byte {
	if len(data)%8 != 0 {
		panic("ecc: data length not a multiple of 8")
	}
	out := make([]byte, len(data)/8)
	for i := 0; i < len(data); i += 8 {
		out[i/8] = Encode(binary.LittleEndian.Uint64(data[i:]))
	}
	return out
}

// VerifyPage checks data against its parity bytes, correcting any
// single-bit errors in place. It returns the number of corrected
// words and the number of uncorrectable words.
func VerifyPage(data, parity []byte) (corrected, uncorrectable int) {
	if len(data)%8 != 0 || len(parity) != len(data)/8 {
		panic("ecc: mismatched data/parity lengths")
	}
	for i := 0; i < len(data); i += 8 {
		word := binary.LittleEndian.Uint64(data[i:])
		fixed, st := Decode(word, parity[i/8])
		switch st {
		case Corrected:
			binary.LittleEndian.PutUint64(data[i:], fixed)
			corrected++
		case DoubleError:
			uncorrectable++
		}
	}
	return corrected, uncorrectable
}
