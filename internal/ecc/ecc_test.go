package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCleanWordDecodesOK(t *testing.T) {
	f := func(data uint64) bool {
		p := Encode(data)
		out, st := Decode(data, p)
		return st == OK && out == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSingleDataBitErrorCorrected(t *testing.T) {
	f := func(data uint64, bitSel uint8) bool {
		p := Encode(data)
		bit := uint(bitSel) % 64
		corrupted := data ^ 1<<bit
		out, st := Decode(corrupted, p)
		return st == Corrected && out == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSingleParityBitErrorDetected(t *testing.T) {
	f := func(data uint64, bitSel uint8) bool {
		p := Encode(data)
		bit := uint(bitSel) % 8
		out, st := Decode(data, p^1<<bit)
		// Data must be untouched; the flip is in the ECC byte.
		return st == ParityBitFlip && out == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDoubleDataBitErrorDetected(t *testing.T) {
	f := func(data uint64, aSel, bSel uint8) bool {
		a := uint(aSel) % 64
		b := uint(bSel) % 64
		if a == b {
			return true
		}
		p := Encode(data)
		corrupted := data ^ 1<<a ^ 1<<b
		_, st := Decode(corrupted, p)
		return st == DoubleError
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDoubleMixedErrorDetected(t *testing.T) {
	// One data bit + one parity bit flipped must never be silently
	// "corrected" into wrong data.
	f := func(data uint64, dSel, pSel uint8) bool {
		p := Encode(data)
		corrupted := data ^ 1<<(uint(dSel)%64)
		badParity := p ^ 1<<(uint(pSel)%8)
		out, st := Decode(corrupted, badParity)
		if st == Corrected || st == OK || st == ParityBitFlip {
			// Acceptable only if it restored the true data.
			return out == data
		}
		return st == DoubleError
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPageParityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	page := make([]byte, 4096)
	rng.Read(page)
	parity := PageParity(page)
	if len(parity) != 512 {
		t.Fatalf("parity bytes = %d, want 512 (x72 layout: 1 ECC byte / 8 data bytes)", len(parity))
	}
	corrected, bad := VerifyPage(page, parity)
	if corrected != 0 || bad != 0 {
		t.Fatalf("clean page reported corrected=%d bad=%d", corrected, bad)
	}
}

func TestPageSingleBitStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	page := make([]byte, 4096)
	rng.Read(page)
	want := append([]byte(nil), page...)
	parity := PageParity(page)
	// Flip one bit in each of 64 distinct words.
	for w := 0; w < 64; w++ {
		byteIdx := w*64 + rng.Intn(8)
		page[byteIdx] ^= 1 << uint(rng.Intn(8))
	}
	corrected, bad := VerifyPage(page, parity)
	if corrected != 64 || bad != 0 {
		t.Fatalf("corrected=%d bad=%d, want 64/0", corrected, bad)
	}
	for i := range page {
		if page[i] != want[i] {
			t.Fatalf("byte %d not restored", i)
		}
	}
}

func TestPageDoubleBitDetected(t *testing.T) {
	page := make([]byte, 64)
	parity := PageParity(page)
	page[0] ^= 0x03 // two bits in the same word
	corrected, bad := VerifyPage(page, parity)
	if corrected != 0 || bad != 1 {
		t.Fatalf("corrected=%d bad=%d, want 0/1", corrected, bad)
	}
}

func TestPanicsOnMisalignedInput(t *testing.T) {
	for _, f := range []func(){
		func() { PageParity(make([]byte, 7)) },
		func() { VerifyPage(make([]byte, 8), make([]byte, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("misaligned input did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		OK: "ok", Corrected: "corrected", ParityBitFlip: "parity-bit-flip",
		DoubleError: "double-error", Status(99): "invalid",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func BenchmarkEncodeWord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkPageParity4K(b *testing.B) {
	page := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(page)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		PageParity(page)
	}
}
