// Package corpus generates the 16 deterministic synthetic corpora used
// by the Fig. 8 compression-ratio experiments. The paper compresses
// page-divided corpora (Calgary/Silesia-style files); this package
// substitutes generators that reproduce the structural properties LZ
// compression depends on — repeated dictionaries, local redundancy,
// field structure, and varying entropy — without shipping licensed
// corpus files.
package corpus

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Generator produces n deterministic bytes for a seed.
type Generator func(seed int64, n int) []byte

var generators = map[string]Generator{
	"text-english": EnglishText,
	"html":         HTML,
	"c-source":     CSource,
	"json-log":     JSONLog,
	"csv-table":    CSVTable,
	"xml-feed":     XMLFeed,
	"binary-code":  BinaryCode,
	"float-array":  FloatArray,
	"int-counters": IntCounters,
	"base64-blob":  Base64Blob,
	"sql-dump":     SQLDump,
	"syslog":       Syslog,
	"key-value":    KeyValue,
	"dna":          DNA,
	"sparse-zero":  SparseZero,
	"random":       Random,
}

// Names returns all corpus names, sorted.
func Names() []string {
	out := make([]string, 0, len(generators))
	for n := range generators { //xfm:ignore sim-determinism keys are sorted immediately below before return
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns the generator registered under name.
func Get(name string) (Generator, error) {
	g, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown corpus %q", name)
	}
	return g, nil
}

// Pages splits a corpus into 4 KiB pages, discarding a trailing
// partial page, mirroring the paper's "page-divided corpuses" (Fig. 8).
func Pages(data []byte, pageSize int) [][]byte {
	var out [][]byte
	for off := 0; off+pageSize <= len(data); off += pageSize {
		out = append(out, data[off:off+pageSize])
	}
	return out
}

var wordList = strings.Fields(`
the of and to in a is that for it as was with be by on not he this are
at from his they which or had we an you were her all she there their
one have each about how up out them then many some so these would other
into has more two like him time see could no make than first been its
who now people my made over did down only way find use may water long
little very after words called just where most know memory system page
data cache cold compress refresh bank row access control store far near
local swap rate cost energy power model device channel rank module`)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// EnglishText emits natural-language-like prose with a Zipfian word
// distribution and sentence structure.
func EnglishText(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	sentence := 0
	for len(b) < n {
		// Zipf-ish: favor early words.
		idx := int(float64(len(wordList)) * r.Float64() * r.Float64())
		w := wordList[idx]
		if sentence == 0 && len(w) > 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		b = append(b, w...)
		sentence++
		if sentence > 6+r.Intn(10) {
			b = append(b, ". "...)
			sentence = 0
		} else {
			b = append(b, ' ')
		}
	}
	return b[:n]
}

// HTML emits markup-heavy hypertext.
func HTML(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	b = append(b, "<!DOCTYPE html><html><head><title>report</title></head><body>\n"...)
	for len(b) < n {
		switch r.Intn(4) {
		case 0:
			b = append(b, fmt.Sprintf("<div class=\"row-%d\"><span>%s</span></div>\n",
				r.Intn(100), wordList[r.Intn(len(wordList))])...)
		case 1:
			b = append(b, fmt.Sprintf("<a href=\"/item/%d\">%s %s</a>\n",
				r.Intn(10000), wordList[r.Intn(len(wordList))], wordList[r.Intn(len(wordList))])...)
		case 2:
			b = append(b, fmt.Sprintf("<p>%s</p>\n", EnglishText(int64(r.Int31()), 40+r.Intn(80)))...)
		case 3:
			b = append(b, fmt.Sprintf("<table><tr><td>%d</td><td>%d</td></tr></table>\n",
				r.Intn(1000), r.Intn(1000))...)
		}
	}
	return b[:n]
}

// CSource emits C-like source code.
func CSource(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	for len(b) < n {
		fn := r.Intn(1000)
		b = append(b, fmt.Sprintf("static int handle_%d(struct ctx *c, int flags) {\n", fn)...)
		for i := 0; i < 3+r.Intn(5); i++ {
			b = append(b, fmt.Sprintf("\tif (c->field_%d > %d) return -EINVAL;\n",
				r.Intn(16), r.Intn(256))...)
		}
		b = append(b, fmt.Sprintf("\treturn c->field_%d + %d;\n}\n\n", r.Intn(16), fn)...)
	}
	return b[:n]
}

// JSONLog emits newline-delimited JSON log records.
func JSONLog(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	ts := int64(1700000000)
	for len(b) < n {
		ts += int64(r.Intn(5))
		b = append(b, fmt.Sprintf(
			`{"ts":%d,"level":"%s","svc":"web-%d","msg":"%s","lat_ms":%d}`+"\n",
			ts, []string{"info", "warn", "error", "debug"}[r.Intn(4)],
			r.Intn(8), wordList[r.Intn(len(wordList))], r.Intn(500))...)
	}
	return b[:n]
}

// CSVTable emits a numeric CSV table with correlated columns.
func CSVTable(seed int64, n int) []byte {
	r := rng(seed)
	b := []byte("id,region,value,count,flag\n")
	id := 0
	for len(b) < n {
		id++
		b = append(b, fmt.Sprintf("%d,us-east-%d,%0.2f,%d,%t\n",
			id, r.Intn(4), 100*r.Float64(), r.Intn(50), r.Intn(2) == 0)...)
	}
	return b[:n]
}

// XMLFeed emits an RSS-like XML feed.
func XMLFeed(seed int64, n int) []byte {
	r := rng(seed)
	b := []byte("<?xml version=\"1.0\"?><feed>\n")
	for len(b) < n {
		b = append(b, fmt.Sprintf(
			"  <entry><id>%d</id><title>%s %s</title><updated>2023-10-%02dT12:00:00Z</updated></entry>\n",
			r.Intn(100000), wordList[r.Intn(len(wordList))],
			wordList[r.Intn(len(wordList))], 1+r.Intn(28))...)
	}
	return b[:n]
}

// BinaryCode emits machine-code-like bytes: opcode-ish patterns with
// small immediate fields and repeated prologue/epilogue sequences.
func BinaryCode(seed int64, n int) []byte {
	r := rng(seed)
	prologue := []byte{0x55, 0x48, 0x89, 0xe5, 0x48, 0x83, 0xec, 0x20}
	epilogue := []byte{0x48, 0x83, 0xc4, 0x20, 0x5d, 0xc3}
	ops := [][]byte{{0x48, 0x8b}, {0x48, 0x89}, {0x83, 0xc0}, {0xe8}, {0xeb}, {0x0f, 0x84}}
	var b []byte
	for len(b) < n {
		b = append(b, prologue...)
		for i := 0; i < 8+r.Intn(24); i++ {
			op := ops[r.Intn(len(ops))]
			b = append(b, op...)
			b = append(b, byte(r.Intn(64)))
		}
		b = append(b, epilogue...)
	}
	return b[:n]
}

// FloatArray emits little-endian float64 sensor-like readings with a
// smooth trend (high redundancy in exponent bytes).
func FloatArray(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	v := 20.0
	for len(b) < n {
		v += r.Float64() - 0.5
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		b = append(b, buf[:]...)
	}
	return b[:n]
}

// IntCounters emits little-endian int64 counters with small deltas
// (timestamps, sequence numbers): mostly-zero high bytes.
func IntCounters(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	v := int64(1 << 40)
	for len(b) < n {
		v += int64(r.Intn(1000))
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		b = append(b, buf[:]...)
	}
	return b[:n]
}

// Base64Blob emits base64-looking text (6-bit entropy per byte).
func Base64Blob(seed int64, n int) []byte {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	r := rng(seed)
	b := make([]byte, n)
	for i := range b {
		if i%77 == 76 {
			b[i] = '\n'
		} else {
			b[i] = alphabet[r.Intn(64)]
		}
	}
	return b
}

// SQLDump emits INSERT-statement dumps.
func SQLDump(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	id := 1000
	for len(b) < n {
		id++
		b = append(b, fmt.Sprintf(
			"INSERT INTO users (id, name, email, active) VALUES (%d, '%s', '%s@example.com', %d);\n",
			id, wordList[r.Intn(len(wordList))], wordList[r.Intn(len(wordList))], r.Intn(2))...)
	}
	return b[:n]
}

// Syslog emits RFC3164-style log lines.
func Syslog(seed int64, n int) []byte {
	r := rng(seed)
	var b []byte
	for len(b) < n {
		b = append(b, fmt.Sprintf(
			"Oct %2d 12:%02d:%02d host%d kernel: [%d.%06d] %s: %s limit=%d\n",
			1+r.Intn(28), r.Intn(60), r.Intn(60), r.Intn(4),
			r.Intn(100000), r.Intn(1000000),
			[]string{"oom", "net", "sched", "mm"}[r.Intn(4)],
			wordList[r.Intn(len(wordList))], r.Intn(4096))...)
	}
	return b[:n]
}

// KeyValue emits config-file key=value text with a small key universe.
func KeyValue(seed int64, n int) []byte {
	r := rng(seed)
	keys := []string{"timeout_ms", "retries", "cache_size", "endpoint", "region",
		"log_level", "batch", "max_conn", "tls", "pool"}
	var b []byte
	for len(b) < n {
		b = append(b, fmt.Sprintf("%s=%d\n", keys[r.Intn(len(keys))], r.Intn(10000))...)
	}
	return b[:n]
}

// DNA emits 4-symbol genomic text: low entropy (2 bits/byte) but no
// long-range structure.
func DNA(seed int64, n int) []byte {
	r := rng(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = "ACGT"[r.Intn(4)]
	}
	return b
}

// SparseZero emits mostly-zero pages with scattered nonzero runs
// (freshly-allocated heap pages).
func SparseZero(seed int64, n int) []byte {
	r := rng(seed)
	b := make([]byte, n)
	writes := n / 64
	for i := 0; i < writes; i++ {
		off := r.Intn(n)
		run := 1 + r.Intn(16)
		for k := 0; k < run && off+k < n; k++ {
			b[off+k] = byte(r.Intn(256))
		}
	}
	return b
}

// Random emits uniformly random (incompressible) bytes.
func Random(seed int64, n int) []byte {
	b := make([]byte, n)
	rng(seed).Read(b)
	return b
}
