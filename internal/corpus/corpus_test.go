package corpus

import (
	"bytes"
	"testing"

	"xfm/internal/compress"
)

func TestAllCorporaRegistered(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Errorf("corpus count = %d, want 16 (Fig. 8 uses 16 corpus files)", len(names))
	}
	for _, n := range names {
		g, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			t.Fatalf("%s: nil generator", n)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown corpus accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, n := range Names() {
		g, _ := Get(n)
		a := g(42, 8192)
		b := g(42, 8192)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: not deterministic for same seed", n)
		}
		c := g(43, 8192)
		if n != "sparse-zero" && bytes.Equal(a, c) {
			t.Errorf("%s: identical output for different seeds", n)
		}
	}
}

func TestGeneratorsExactLength(t *testing.T) {
	for _, n := range Names() {
		g, _ := Get(n)
		for _, size := range []int{1, 100, 4096, 12288} {
			if got := len(g(1, size)); got != size {
				t.Errorf("%s: len = %d, want %d", n, got, size)
			}
		}
	}
}

func TestPagesSplitsCleanly(t *testing.T) {
	data := make([]byte, 4096*3+100)
	pages := Pages(data, 4096)
	if len(pages) != 3 {
		t.Errorf("pages = %d, want 3 (partial trailing page dropped)", len(pages))
	}
	for i, p := range pages {
		if len(p) != 4096 {
			t.Errorf("page %d has %d bytes", i, len(p))
		}
	}
	if got := Pages(make([]byte, 100), 4096); got != nil {
		t.Errorf("undersized corpus should yield no pages, got %d", len(got))
	}
}

func TestCorporaCompressibilityOrdering(t *testing.T) {
	// Structural sanity: random must be the least compressible;
	// sparse-zero and key-value must compress well.
	codec := compress.NewXDeflate()
	ratio := func(name string) float64 {
		g, _ := Get(name)
		data := g(7, 64<<10)
		var orig, comp int
		for _, p := range Pages(data, 4096) {
			orig += len(p)
			comp += len(codec.Compress(nil, p))
		}
		return float64(orig) / float64(comp)
	}
	rRandom := ratio("random")
	rSparse := ratio("sparse-zero")
	rKV := ratio("key-value")
	rText := ratio("text-english")
	if rRandom > 1.1 {
		t.Errorf("random ratio = %.2f, want ≈1", rRandom)
	}
	if rSparse < 4 {
		t.Errorf("sparse-zero ratio = %.2f, want ≥ 4", rSparse)
	}
	if rKV < 2 {
		t.Errorf("key-value ratio = %.2f, want ≥ 2", rKV)
	}
	if rText < 1.5 {
		t.Errorf("text ratio = %.2f, want ≥ 1.5", rText)
	}
	if rRandom >= rText || rRandom >= rKV || rRandom >= rSparse {
		t.Error("random should be the least compressible corpus")
	}
}

func TestDNAEntropyBound(t *testing.T) {
	// 4-symbol data: an entropy coder should approach 4× but a pure
	// match coder cannot; both must stay above 1×.
	g, _ := Get("dna")
	data := g(3, 32<<10)
	rXD := func() float64 {
		c := compress.NewXDeflate()
		out := c.Compress(nil, data)
		return float64(len(data)) / float64(len(out))
	}()
	if rXD < 1.5 {
		t.Errorf("dna xdeflate ratio = %.2f, want ≥ 1.5", rXD)
	}
}

func BenchmarkGenerateAllCorpora(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range Names() {
			g, _ := Get(n)
			g(int64(i), 4096)
		}
	}
}
