package telemetry

import (
	"math"
	"sync"
)

// The health monitor: declarative rules evaluated over the flight
// recorder's series windows, folding trajectories into one
// OK/DEGRADED/CRITICAL verdict with firing-rule details. Rules are
// pure functions of a Dump, so the same set runs server-side on
// /debug/health and client-side in xfmtop over a recorded file.

// Severity orders health outcomes; the overall status is the worst
// firing rule's severity.
type Severity int

// Severity levels.
const (
	SevOK Severity = iota
	SevDegraded
	SevCritical
)

func (s Severity) String() string {
	switch s {
	case SevDegraded:
		return "DEGRADED"
	case SevCritical:
		return "CRITICAL"
	default:
		return "OK"
	}
}

// Agg folds a series window into one value.
type Agg int

// Window aggregations.
const (
	AggLast Agg = iota
	AggSum
	AggMean
	AggMax
	AggMin
)

// SeriesIndex is the evaluation input: series name → points, oldest
// first (see Dump.Index).
type SeriesIndex map[string][]Point

// Expr computes one scalar from a SeriesIndex. ok=false means the
// value is undefined (series missing, empty window, zero denominator)
// and any rule built on it stays inactive rather than firing.
type Expr interface {
	Eval(idx SeriesIndex) (v float64, ok bool)
}

type seriesExpr struct {
	name   string
	agg    Agg
	window int
}

// SeriesExpr aggregates the last window points of the named series
// (window ≤ 0 takes the whole recording).
func SeriesExpr(name string, agg Agg, window int) Expr {
	return seriesExpr{name: name, agg: agg, window: window}
}

func (e seriesExpr) Eval(idx SeriesIndex) (float64, bool) {
	pts := idx[e.name]
	if len(pts) == 0 {
		return 0, false
	}
	if e.window > 0 && len(pts) > e.window {
		pts = pts[len(pts)-e.window:]
	}
	switch e.agg {
	case AggLast:
		return pts[len(pts)-1].V, true
	case AggSum, AggMean:
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		if e.agg == AggMean {
			return sum / float64(len(pts)), true
		}
		return sum, true
	case AggMax:
		v := math.Inf(-1)
		for _, p := range pts {
			if p.V > v {
				v = p.V
			}
		}
		return v, true
	case AggMin:
		v := math.Inf(1)
		for _, p := range pts {
			if p.V < v {
				v = p.V
			}
		}
		return v, true
	}
	return 0, false
}

type constExpr float64

// ConstExpr is always defined with the given value; combined with
// AddExpr it builds thresholded guards ("active only when the window
// saw more than N swaps").
func ConstExpr(v float64) Expr { return constExpr(v) }

func (e constExpr) Eval(SeriesIndex) (float64, bool) { return float64(e), true }

type addExpr struct{ xs []Expr }

// AddExpr sums its sub-expressions; undefined if any of them is.
func AddExpr(xs ...Expr) Expr { return addExpr{xs} }

func (e addExpr) Eval(idx SeriesIndex) (float64, bool) {
	sum := 0.0
	for _, x := range e.xs {
		v, ok := x.Eval(idx)
		if !ok {
			return 0, false
		}
		sum += v
	}
	return sum, true
}

type ratioExpr struct{ num, den Expr }

// RatioExpr divides num by den; undefined when den is 0 or either side
// is undefined, so rate rules stay silent on idle systems instead of
// firing on 0/0.
func RatioExpr(num, den Expr) Expr { return ratioExpr{num, den} }

func (e ratioExpr) Eval(idx SeriesIndex) (float64, bool) {
	n, ok := e.num.Eval(idx)
	if !ok {
		return 0, false
	}
	d, ok := e.den.Eval(idx)
	if !ok || d == 0 {
		return 0, false
	}
	return n / d, true
}

// Rule is one declarative health check: fire at Severity when Value
// compares Above/below Threshold. A non-nil Guard gates the rule: it
// is active only while the guard evaluates defined and > 0 (e.g. "the
// queue actually holds work"), which keeps utilization rules from
// crying wolf on idle systems.
type Rule struct {
	Name      string
	Help      string
	Value     Expr
	Above     bool // true: fire when value > threshold; false: when <
	Threshold float64
	Severity  Severity
	Guard     Expr
}

// CheckResult is one rule's evaluation.
type CheckResult struct {
	Rule      string  `json:"rule"`
	Help      string  `json:"help,omitempty"`
	Severity  string  `json:"severity"`
	Active    bool    `json:"active"`
	Firing    bool    `json:"firing"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// Check evaluates the rule against the index.
func (r Rule) Check(idx SeriesIndex) CheckResult {
	res := CheckResult{Rule: r.Name, Help: r.Help, Severity: r.Severity.String(), Threshold: r.Threshold}
	if r.Guard != nil {
		g, ok := r.Guard.Eval(idx)
		if !ok || g <= 0 {
			return res
		}
	}
	v, ok := r.Value.Eval(idx)
	if !ok {
		return res
	}
	res.Active = true
	res.Value = v
	if r.Above {
		res.Firing = v > r.Threshold
	} else {
		res.Firing = v < r.Threshold
	}
	return res
}

// Health is the monitor's verdict: the worst firing severity plus
// every rule's evaluation.
type Health struct {
	Status  string        `json:"status"`
	Code    int           `json:"code"` // 0 OK, 1 DEGRADED, 2 CRITICAL
	Samples int           `json:"samples"`
	Clock   string        `json:"clock,omitempty"`
	Checks  []CheckResult `json:"checks"`
}

// Monitor evaluates a rule set over flight-recorder dumps, optionally
// mirroring the verdict into a gauge.
type Monitor struct {
	mu    sync.Mutex
	rules []Rule
	gauge *Gauge
}

// NewMonitor builds a monitor over the given rules (DefaultRules when
// empty).
func NewMonitor(rules ...Rule) *Monitor {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	return &Monitor{rules: append([]Rule(nil), rules...)}
}

// SetGauge mirrors each Evaluate verdict (0/1/2) into g.
func (m *Monitor) SetGauge(g *Gauge) {
	m.mu.Lock()
	m.gauge = g
	m.mu.Unlock()
}

// Rules returns a copy of the monitor's rule set.
func (m *Monitor) Rules() []Rule {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Rule(nil), m.rules...)
}

// Evaluate runs every rule over the dump and returns the folded
// verdict.
func (m *Monitor) Evaluate(d *Dump) Health {
	m.mu.Lock()
	rules := m.rules
	gauge := m.gauge
	m.mu.Unlock()

	idx := d.Index()
	h := Health{Samples: d.Samples, Clock: d.Clock}
	worst := SevOK
	for _, r := range rules {
		res := r.Check(idx)
		h.Checks = append(h.Checks, res)
		if res.Firing && r.Severity > worst {
			worst = r.Severity
		}
	}
	h.Status = worst.String()
	h.Code = int(worst)
	if gauge != nil {
		gauge.SetInt(int64(worst))
	}
	return h
}

// healthWindow is the default look-back for windowed rules, in
// samples.
const healthWindow = 8

// minRateSwaps is the minimum swap traffic inside the look-back window
// before the fallback-rate rules activate: a handful of stray CPU
// fallbacks on an otherwise idle tail is not an accelerator outage.
const minRateSwaps = 16

// DefaultRules is the stock rule table (DESIGN §7b): the failure modes
// of the offload path that are only visible as trajectories.
func DefaultRules() []Rule {
	swapsW := AddExpr(
		SeriesExpr("xfm_fallbacks_total", AggSum, healthWindow),
		SeriesExpr("xfm_offloads_total", AggSum, healthWindow))
	fallbackRateW := RatioExpr(SeriesExpr("xfm_fallbacks_total", AggSum, healthWindow), swapsW)
	// Positive only when the window carried real swap volume.
	rateGuard := AddExpr(swapsW, ConstExpr(-minRateSwaps))
	slotUtilW := RatioExpr(
		AddExpr(
			SeriesExpr("nma_conditional_accesses_total", AggSum, healthWindow),
			SeriesExpr("nma_random_accesses_total", AggSum, healthWindow)),
		SeriesExpr("nma_slots_offered_total", AggSum, healthWindow))
	promotion := SeriesExpr("sfm_promotion_rate", AggLast, 1)
	// The degradation-ladder gauge orders by severity (HEALTHY 0,
	// DEGRADED 1, RECOVERING 2, CPU_ONLY 3; DESIGN §10), so the mode
	// rules are plain thresholds on its last sample.
	degMode := SeriesExpr("xfm_degraded_mode", AggLast, 1)
	return []Rule{
		{
			Name: "degraded-cpu-only", Severity: SevCritical,
			Help: "The XFM circuit breaker is open (CPU_ONLY): every swap runs on the CPU until " +
				"canary probes close it again (DESIGN §10).",
			Value: degMode, Above: true, Threshold: 2.5,
		},
		{
			Name: "degraded-recovering", Severity: SevDegraded,
			Help: "The XFM backend sits above HEALTHY on the degradation ladder (DEGRADED or " +
				"probing recovery canaries; DESIGN §10).",
			Value: degMode, Above: true, Threshold: 0.5,
		},
		{
			Name: "fallback-rate-spike", Severity: SevDegraded,
			Help:  "Windowed CPU-fallback share of swap traffic; the NMA is shedding load (§6 back-pressure).",
			Value: fallbackRateW, Above: true, Threshold: 0.5,
			Guard: rateGuard,
		},
		{
			Name: "fallback-rate-saturated", Severity: SevCritical,
			Help:  "Nearly all swaps run on the CPU: the accelerator path is effectively down.",
			Value: fallbackRateW, Above: true, Threshold: 0.9,
			Guard: rateGuard,
		},
		{
			Name: "slot-utilization-collapse", Severity: SevDegraded,
			Help: "Offered refresh-window access slots go unused while the request queue holds work " +
				"(RogueRFM-style refresh pathology or a scheduling bug).",
			Value: slotUtilW, Above: false, Threshold: 0.02,
			Guard: SeriesExpr("nma_queue_depth", AggMax, healthWindow),
		},
		{
			Name: "queue-stall-storm", Severity: SevDegraded,
			Help:  "Memory-controller transaction-queue rejections in the window; back-pressure is reaching the core.",
			Value: SeriesExpr("memctrl_queue_full_stalls_total", AggSum, healthWindow), Above: true, Threshold: 1000,
		},
		{
			Name: "ecc-uncorrectable", Severity: SevCritical,
			Help:  "Any uncorrectable side-band ECC word in the recording is data loss (§4.1).",
			Value: SeriesExpr("xfm_ecc_uncorrectable_total", AggSum, 0), Above: true, Threshold: 0,
		},
		{
			Name: "promotion-rate-low", Severity: SevDegraded,
			Help: "Observed promotion rate fell below the validated band (§2.1): far memory is " +
				"over-provisioned relative to the cost model's operating point.",
			Value: promotion, Above: false, Threshold: 0.30,
			Guard: promotion,
		},
		{
			Name: "promotion-rate-high", Severity: SevDegraded,
			Help: "Observed promotion rate above the validated band (§2.1): the working set thrashes " +
				"through far memory and decompression is on the access path.",
			Value: promotion, Above: true, Threshold: 0.90,
		},
	}
}

var (
	defaultMonitorOnce sync.Once
	defaultMonitor     *Monitor
	gHealthStatus      *Gauge
)

// DefaultMonitor returns the process-wide monitor over DefaultRules,
// mirroring verdicts into the telemetry_health_status gauge
// (0 OK, 1 DEGRADED, 2 CRITICAL).
func DefaultMonitor() *Monitor {
	defaultMonitorOnce.Do(func() {
		gHealthStatus = NewGauge("telemetry_health_status",
			"Overall health verdict of the default monitor: 0 OK, 1 DEGRADED, 2 CRITICAL.")
		defaultMonitor = NewMonitor()
		defaultMonitor.SetGauge(gHealthStatus)
	})
	return defaultMonitor
}
