package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestWritePrometheusLabelEscaping pins the text-exposition escaping
// rules: backslash, double quote, and newline are the three characters
// the format requires escaping inside label values.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "Escaping.", "path")
	v.With(`C:\temp`).Inc()
	v.With(`say "hi"`).Add(2)
	v.With("line1\nline2").Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`esc_total{path="C:\\temp"} 1`,
		`esc_total{path="say \"hi\""} 2`,
		`esc_total{path="line1\nline2"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// The raw newline must not survive into the exposition: every
	// non-comment line still parses as `name{labels} value`.
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, " 1") && !strings.HasSuffix(line, " 2") && !strings.HasSuffix(line, " 3") {
			t.Errorf("line %d does not end in a value: %q", i+1, line)
		}
	}
}

// TestWritePrometheusEmptyHistogram: a registered histogram that never
// observed anything must still emit a complete, parseable block —
// zeroed buckets, zero sum and count, zero quantile estimates — rather
// than being skipped or emitting NaN.
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_ps", "Never observed.", []float64{1, 10})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`idle_ps_bucket{le="1"} 0`,
		`idle_ps_bucket{le="10"} 0`,
		`idle_ps_bucket{le="+Inf"} 0`,
		"idle_ps_sum 0",
		"idle_ps_count 0",
		"idle_ps_p50 0",
		"idle_ps_p95 0",
		"idle_ps_p99 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("empty histogram leaked NaN:\n%s", out)
	}
}

// TestWritePrometheusGolden pins the full exposition byte-for-byte
// against testdata/golden.prom. Any intentional format change must
// regenerate the file (go test -run Golden -update ./internal/telemetry)
// and show up in review as a diff.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("golden_swaps_total", "Total swaps.").Add(42)
	r.FloatCounter("golden_bytes_total", "Float counter.").Add(1.5)
	r.Gauge("golden_depth", "Queue depth.").SetInt(7)
	r.GaugeFunc("golden_rate", "Derived ratio.", func() float64 { return 0.754 })
	h := r.Histogram("golden_lat_ps", "Latency.", []float64{10, 100, 1000})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	v := r.CounterVec("golden_ops_total", "Per-kind ops.", "kind")
	v.With("compress").Add(3)
	v.With("decompress").Add(4)
	hv := r.HistogramVec("golden_sz", "Per-shard sizes.", "shard", []float64{8, 64})
	hv.With("0").Observe(4)
	hv.With("1").Observe(32)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if b.String() != string(want) {
		t.Fatalf("exposition format drifted from %s (regenerate with -update if intentional)\n--- got ---\n%s--- want ---\n%s",
			golden, b.String(), want)
	}
}
