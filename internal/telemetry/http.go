package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarsHandler serves an expvar-style JSON snapshot of the registry.
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// TraceHandler serves the tracer's live spans as Chrome trace-event
// JSON (download and open in chrome://tracing or Perfetto).
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = t.WriteChromeTrace(w)
	})
}

// TimeseriesHandler serves the flight recorder's series as the Dump
// JSON schema; `?format=csv` switches to long-format CSV
// (series,t,value).
func TimeseriesHandler(s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "csv" {
			w.Header().Set("Content-Type", "text/csv; charset=utf-8")
			_ = s.WriteCSV(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = s.WriteJSON(w)
	})
}

// HealthHandler evaluates the monitor over the sampler's current
// series and serves the verdict as JSON. A CRITICAL verdict answers
// 503 so load balancers and `curl -f` can gate on it; OK and DEGRADED
// answer 200.
func HealthHandler(m *Monitor, s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := m.Evaluate(s.Dump())
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if h.Code >= int(SevCritical) {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
}

// DebugMux builds the debug HTTP surface: /metrics (Prometheus),
// /debug/vars (JSON snapshot), /debug/trace (Chrome trace JSON),
// /debug/timeseries (flight-recorder dump, JSON or ?format=csv),
// /debug/health (monitor verdict), and the standard /debug/pprof
// endpoints for wall-clock profiling.
func DebugMux(r *Registry, t *Tracer, s *Sampler, m *Monitor) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/debug/vars", VarsHandler(r))
	mux.Handle("/debug/trace", TraceHandler(t))
	mux.Handle("/debug/timeseries", TimeseriesHandler(s))
	mux.Handle("/debug/health", HealthHandler(m, s))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe serves DebugMux on addr (e.g. ":6060"), blocking; run
// it in a goroutine.
func ListenAndServe(addr string, r *Registry, t *Tracer, s *Sampler, m *Monitor) error {
	return http.ListenAndServe(addr, DebugMux(r, t, s, m))
}
