package telemetry

// Default is the process-wide registry every instrumented package
// records into; CLIs export it with -metrics-out and serve it with
// -pprof.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// defaultTracer is the process-wide span tracer, disabled until a CLI
// (or test) enables it.
var defaultTracer = NewTracer()

// DefaultTracer returns the process-wide span tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// NewCounter registers (or fetches) a counter in the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.Counter(name, help) }

// NewFloatCounter registers a float counter in the default registry.
func NewFloatCounter(name, help string) *FloatCounter {
	return defaultRegistry.FloatCounter(name, help)
}

// NewGauge registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.Gauge(name, help) }

// NewGaugeFunc registers a derived gauge in the default registry.
func NewGaugeFunc(name, help string, fn func() float64) {
	defaultRegistry.GaugeFunc(name, help, fn)
}

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return defaultRegistry.Histogram(name, help, buckets)
}

// NewCounterVec registers a labeled counter family in the default
// registry.
func NewCounterVec(name, help, labelKey string) *CounterVec {
	return defaultRegistry.CounterVec(name, help, labelKey)
}

// NewGaugeVec registers a labeled gauge family in the default registry.
func NewGaugeVec(name, help, labelKey string) *GaugeVec {
	return defaultRegistry.GaugeVec(name, help, labelKey)
}

// NewHistogramVec registers a labeled histogram family in the default
// registry.
func NewHistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	return defaultRegistry.HistogramVec(name, help, labelKey, buckets)
}
