package telemetry

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"
)

// CLI bundles the observability flags shared by cmd/xfmbench and
// cmd/dramsim: metrics/trace/time-series file export, a debug HTTP
// server, and wall-clock CPU/heap profiling that composes with
// simulated-time tracing.
type CLI struct {
	MetricsOut    string
	TraceOut      string
	TraceBuf      int
	TimeseriesOut string
	SampleEvery   int
	SampleWall    time.Duration
	PprofAddr     string
	CPUProfile    string
	MemProfile    string

	cpuFile *os.File
}

// RegisterFlags installs the shared flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write Prometheus text metrics to this file at exit")
	fs.StringVar(&c.TraceOut, "trace-out", "", "record simulated-time spans and write Chrome trace-event JSON to this file at exit")
	fs.IntVar(&c.TraceBuf, "trace-buf", DefaultTraceCapacity, "span ring-buffer capacity for -trace-out (oldest spans drop when exceeded)")
	fs.StringVar(&c.TimeseriesOut, "timeseries-out", "", "record metric time series and write the flight-recorder dump to this file at exit (.csv extension switches to long-format CSV)")
	fs.IntVar(&c.SampleEvery, "sample-every", DefaultSimEvery, "simulated-time sampling period for -timeseries-out, in refresh windows (tREFI intervals)")
	fs.DurationVar(&c.SampleWall, "sample-wall", 0, "sample on the wall clock at this interval instead of on refresh windows (e.g. 250ms; for server runs)")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve /metrics, /debug/vars, /debug/trace, /debug/timeseries, /debug/health and /debug/pprof on this address (e.g. :6060)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a runtime/pprof heap profile to this file at exit")
}

// Start enables tracing and the flight recorder, starts profiling, and
// launches the debug server as requested by the parsed flags.
func (c *CLI) Start() error {
	if c.TraceOut != "" {
		tr := DefaultTracer()
		tr.SetCapacity(c.TraceBuf)
		tr.SetEnabled(true)
	}
	if c.TimeseriesOut != "" || c.PprofAddr != "" {
		s := DefaultSampler()
		s.Reset()
		if c.SampleWall > 0 {
			s.StartWall(c.SampleWall)
		} else {
			s.SetSimEvery(c.SampleEvery)
			s.SetEnabled(true)
		}
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		c.cpuFile = f
	}
	if c.PprofAddr != "" {
		go func() {
			if err := ListenAndServe(c.PprofAddr, DefaultRegistry(), DefaultTracer(),
				DefaultSampler(), DefaultMonitor()); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: debug server: %v\n", err)
			}
		}()
	}
	return nil
}

// Finish flushes every requested artifact: the Prometheus metrics
// file, the Chrome trace, the CPU profile, and the heap profile.
func (c *CLI) Finish() error {
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			return err
		}
		c.cpuFile = nil
	}
	if c.MetricsOut != "" {
		f, err := os.Create(c.MetricsOut)
		if err != nil {
			return err
		}
		if err := DefaultRegistry().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.TraceOut != "" {
		DefaultTracer().SetEnabled(false)
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return err
		}
		if err := DefaultTracer().WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.TimeseriesOut != "" {
		s := DefaultSampler()
		if s.Samples() == 0 {
			// Short runs (or replays with no NMA in the loop) may never
			// cross a sampling period; one final sample still records
			// the run's totals as a single window.
			s.FinalSample()
		}
		s.Stop()
		f, err := os.Create(c.TimeseriesOut)
		if err != nil {
			return err
		}
		write := s.WriteJSON
		if strings.HasSuffix(c.TimeseriesOut, ".csv") {
			write = s.WriteCSV
		}
		if werr := write(f); werr != nil {
			f.Close()
			return werr
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
