package telemetry

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI bundles the observability flags shared by cmd/xfmbench and
// cmd/dramsim: metrics/trace file export, a debug HTTP server, and
// wall-clock CPU/heap profiling that composes with simulated-time
// tracing.
type CLI struct {
	MetricsOut string
	TraceOut   string
	TraceBuf   int
	PprofAddr  string
	CPUProfile string
	MemProfile string

	cpuFile *os.File
}

// RegisterFlags installs the shared flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.MetricsOut, "metrics-out", "", "write Prometheus text metrics to this file at exit")
	fs.StringVar(&c.TraceOut, "trace-out", "", "record simulated-time spans and write Chrome trace-event JSON to this file at exit")
	fs.IntVar(&c.TraceBuf, "trace-buf", DefaultTraceCapacity, "span ring-buffer capacity for -trace-out (oldest spans drop when exceeded)")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve /metrics, /debug/vars, /debug/trace and /debug/pprof on this address (e.g. :6060)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a runtime/pprof heap profile to this file at exit")
}

// Start enables tracing, starts profiling, and launches the debug
// server as requested by the parsed flags.
func (c *CLI) Start() error {
	if c.TraceOut != "" {
		tr := DefaultTracer()
		tr.SetCapacity(c.TraceBuf)
		tr.SetEnabled(true)
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		c.cpuFile = f
	}
	if c.PprofAddr != "" {
		go func() {
			if err := ListenAndServe(c.PprofAddr, DefaultRegistry(), DefaultTracer()); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: debug server: %v\n", err)
			}
		}()
	}
	return nil
}

// Finish flushes every requested artifact: the Prometheus metrics
// file, the Chrome trace, the CPU profile, and the heap profile.
func (c *CLI) Finish() error {
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			return err
		}
		c.cpuFile = nil
	}
	if c.MetricsOut != "" {
		f, err := os.Create(c.MetricsOut)
		if err != nil {
			return err
		}
		if err := DefaultRegistry().WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.TraceOut != "" {
		DefaultTracer().SetEnabled(false)
		f, err := os.Create(c.TraceOut)
		if err != nil {
			return err
		}
		if err := DefaultTracer().WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
