package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Span is one recorded simulated-time interval (or instant). Start and
// Dur are in picoseconds (dram.Ps); the Chrome exporter converts to
// microseconds.
type Span struct {
	Name  string
	Cat   string
	Track int
	Start int64
	Dur   int64 // 0 with Instant=true for point events
	// Instant marks a zero-duration point event (Chrome "i" phase).
	Instant bool
	Args    map[string]int64
}

// End returns Start+Dur.
func (s Span) End() int64 { return s.Start + s.Dur }

// Tracer records spans into a bounded ring buffer. Recording is a
// single short mutex-protected append; when the tracer is disabled
// (the default) the fast path is one atomic load and no lock, so
// instrumented hot paths cost nothing in production runs. When the
// ring is full the oldest spans are overwritten and counted as
// dropped.
type Tracer struct {
	enabled atomic.Bool

	mu      sync.Mutex
	buf     []Span
	next    int   // next write index
	n       int   // live spans (≤ len(buf))
	dropped int64 // spans overwritten after the ring wrapped
	tracks  []string
}

// DefaultTraceCapacity is the ring size NewTracer allocates lazily on
// first record.
const DefaultTraceCapacity = 1 << 16

// NewTracer builds a disabled tracer with the default capacity.
func NewTracer() *Tracer { return &Tracer{} }

// SetEnabled turns recording on or off.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether spans are being recorded. Instrumentation
// must check this before building span arguments.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetCapacity resizes the ring to hold up to n spans, discarding
// anything recorded so far.
func (t *Tracer) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = make([]Span, n)
	t.next, t.n, t.dropped = 0, 0, 0
}

// NewTrack registers a named timeline track (a Chrome trace tid) and
// returns its id. Tracks group spans from one emitter — an NMA rank, a
// DRAM rank, the swap capture point — into separate rows of the
// timeline view.
func (t *Tracer) NewTrack(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracks = append(t.tracks, name)
	return len(t.tracks) - 1
}

// Tracks returns the registered track names indexed by track id.
func (t *Tracer) Tracks() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.tracks...)
}

func (t *Tracer) record(s Span) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	if t.buf == nil {
		t.buf = make([]Span, DefaultTraceCapacity)
	}
	t.buf[t.next] = s
	t.next = (t.next + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Span records a [start, end] interval on a track. args may be nil;
// the map is retained, so callers must not reuse it.
func (t *Tracer) Span(track int, name, cat string, start, end int64, args map[string]int64) {
	if end < start {
		end = start
	}
	t.record(Span{Name: name, Cat: cat, Track: track, Start: start, Dur: end - start, Args: args})
}

// Instant records a point event at time at.
func (t *Tracer) Instant(track int, name, cat string, at int64, args map[string]int64) {
	t.record(Span{Name: name, Cat: cat, Track: track, Start: at, Instant: true, Args: args})
}

// Len returns the number of live spans in the ring.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many spans the ring overwrote.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded spans (tracks stay registered).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next, t.n, t.dropped = 0, 0, 0
}

// Spans returns a copy of the live spans in recording order (oldest
// first).
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.next - t.n
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(start+i+len(t.buf))%len(t.buf)])
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"` // instant scope
	Args map[string]interface{} `json:"args,omitempty"`
}

const psPerMicrosecond = 1e6

// WriteChromeTrace exports the live spans as Chrome trace-event JSON,
// loadable in chrome://tracing and Perfetto. Simulated picosecond
// timestamps map to trace microseconds; track ids become thread ids
// with thread_name metadata, so each emitter renders as one timeline
// row and nested spans (NMA ops inside refresh windows) stack.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	tracks := t.Tracks()

	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	if err := emit(chromeEvent{Name: "process_name", Ph: "M",
		Args: map[string]interface{}{"name": "xfm-sim"}}); err != nil {
		return err
	}
	for tid, name := range tracks {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Tid: tid,
			Args: map[string]interface{}{"name": fmt.Sprintf("%s [%d]", name, tid)}}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		e := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ts:   float64(s.Start) / psPerMicrosecond,
			Tid:  s.Track,
		}
		if len(s.Args) > 0 {
			e.Args = make(map[string]interface{}, len(s.Args))
			for k, v := range s.Args {
				e.Args[k] = v
			}
		}
		if s.Instant {
			e.Ph = "i"
			e.S = "t"
		} else {
			e.Ph = "X"
			dur := float64(s.Dur) / psPerMicrosecond
			e.Dur = &dur
		}
		if err := emit(e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, `],"otherData":{"droppedSpans":%d}}`, t.Dropped())
	return err
}
