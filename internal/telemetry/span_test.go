package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer()
	tk := tr.NewTrack("t")
	tr.Span(tk, "a", "c", 0, 10, nil)
	tr.Instant(tk, "b", "c", 5, nil)
	if tr.Len() != 0 {
		t.Errorf("disabled tracer recorded %d spans", tr.Len())
	}
}

func TestTracerRecordsAndResets(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	tk := tr.NewTrack("t")
	tr.Span(tk, "a", "c", 100, 200, map[string]int64{"k": 1})
	tr.Instant(tk, "b", "c", 150, nil)
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	spans := tr.Spans()
	if spans[0].Name != "a" || spans[0].Start != 100 || spans[0].Dur != 100 {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if !spans[1].Instant {
		t.Errorf("span[1] should be instant: %+v", spans[1])
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Error("reset should clear spans and drop count")
	}
}

func TestTracerNegativeDurationClamps(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	tk := tr.NewTrack("t")
	tr.Span(tk, "a", "c", 100, 50, nil)
	if s := tr.Spans()[0]; s.Dur != 0 {
		t.Errorf("dur = %d, want clamp to 0", s.Dur)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer()
	tr.SetCapacity(4)
	tr.SetEnabled(true)
	tk := tr.NewTrack("t")
	for i := 0; i < 10; i++ {
		tr.Span(tk, "s", "c", int64(i), int64(i+1), nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	// Oldest-first: the survivors are the last four records.
	for i, s := range spans {
		if want := int64(6 + i); s.Start != want {
			t.Errorf("span[%d].Start = %d, want %d", i, s.Start, want)
		}
	}
}

func TestWriteChromeTraceJSON(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	outer := tr.NewTrack("nma")
	tr.Span(outer, "refresh-window", "dram", 0, 1_000_000, nil)
	tr.Span(outer, "compress", "nma", 100_000, 400_000, map[string]int64{"req": 1})
	tr.Instant(tr.NewTrack("swap"), "swap-out", "swap", 500_000, nil)

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &tf); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	var win, comp, inst, meta int
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "M":
			meta++
		case ev.Ph == "i" || ev.Ph == "I":
			inst++
		case ev.Name == "refresh-window":
			win++
			if ev.Ts != 0 || ev.Dur != 1 { // 1e6 ps = 1 µs
				t.Errorf("window ts/dur = %v/%v, want 0/1", ev.Ts, ev.Dur)
			}
		case ev.Name == "compress":
			comp++
			if ev.Ts != 0.1 || ev.Dur != 0.3 {
				t.Errorf("compress ts/dur = %v/%v, want 0.1/0.3", ev.Ts, ev.Dur)
			}
		}
	}
	if win != 1 || comp != 1 || inst != 1 {
		t.Errorf("events: %d windows, %d compress, %d instants", win, comp, inst)
	}
	if meta == 0 {
		t.Error("expected process/thread metadata events")
	}
}

// TestTracerConcurrent drives spans from several goroutines while a
// reader snapshots, for the -race suite.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	tr.SetCapacity(1024)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(tk int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tr.Span(tk, "s", "c", int64(i), int64(i+1), nil)
			}
		}(tr.NewTrack("t"))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Spans()
			var b strings.Builder
			_ = tr.WriteChromeTrace(&b)
		}
	}()
	wg.Wait()
	<-done
	if tr.Len()+int(tr.Dropped()) != 4*2000 {
		t.Errorf("live %d + dropped %d != %d recorded", tr.Len(), tr.Dropped(), 4*2000)
	}
}
