// Package telemetry is the unified observability layer of the
// simulator: a concurrency-safe metrics registry (atomic counters,
// gauges, and fixed-bucket latency histograms with estimated
// p50/p95/p99), a lock-cheap span tracer that records simulated-time
// spans into a bounded ring buffer, and exporters for the Prometheus
// text exposition format, Chrome trace-event JSON
// (chrome://tracing / Perfetto), and an expvar-style JSON snapshot.
//
// Every package of the offload path (sfm, xfm, nma, dram, memctrl,
// parallel) records into the process-wide Default registry and
// DefaultTracer, so a single benchmark run can emit a navigable
// timeline of compression bursts packed inside refresh windows plus a
// scrapeable metrics file. All metric types are safe for concurrent
// use; snapshots taken while writers are active are approximate but
// race-free.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for Prometheus counter semantics; this is
// not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter (test/benchmark support).
func (c *Counter) Reset() { c.v.Store(0) }

// FloatCounter is a monotonically increasing float accumulator
// (e.g. CPU cycles), updated with a compare-and-swap loop.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Reset zeroes the accumulator.
func (c *FloatCounter) Reset() { c.bits.Store(0) }

// Gauge is an instantaneous float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.bits.Store(0) }

// Histogram is a fixed-bucket histogram with atomic bucket counts. It
// tracks count, sum, min, and max, and estimates quantiles by linear
// interpolation inside the bucket containing the target rank. NaN
// observations are ignored.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds; implicit +Inf last
	counts []atomic.Int64
	count  atomic.Int64
	sum    FloatCounter
	min    atomic.Uint64 // float bits
	max    atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	h.resetExtrema()
	return h
}

func (h *Histogram) resetExtrema() {
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
}

// Observe records one sample. NaN is dropped (it has no rank and would
// poison sum and quantiles).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, i.e. le-bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.min.Load())
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Mean returns Sum/Count, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Value() / float64(n)
}

// Buckets returns the upper bounds and the (non-cumulative) per-bucket
// counts; the final count is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-th quantile (clamped to [0, 1]) by linear
// interpolation within the bucket holding the target rank, clamped to
// the observed [Min, Max]. Returns 0 when empty or when q is NaN.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	lo, hi := h.Min(), h.Max()
	cum := 0.0
	lower := lo
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= target {
			upper := hi
			if i < len(h.bounds) && h.bounds[i] < upper {
				upper = h.bounds[i]
			}
			if lower < lo {
				lower = lo
			}
			if upper < lower {
				upper = lower
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / c
			}
			return lower + (upper-lower)*frac
		}
		cum += c
		if i < len(h.bounds) {
			lower = h.bounds[i]
		}
	}
	return hi
}

// HistogramState is a value snapshot of a histogram's buckets and sum,
// the unit of windowed (per-sample-interval) quantile math: the flight
// recorder subtracts two states to get the observations of one window
// without ever calling Reset on a live instrument. Count is derived
// from the buckets, so per-bucket deltas between two states taken from
// the same histogram are always ≥ 0 even while writers are running
// (each bucket is individually monotone). Sum is read separately and
// may lag or lead the buckets by in-flight observations.
type HistogramState struct {
	// Bounds aliases the histogram's sorted upper bounds; callers must
	// not mutate it.
	Bounds []float64
	// Counts holds non-cumulative per-bucket counts; the final entry is
	// the +Inf bucket.
	Counts []int64
	Sum    float64
}

// State captures the current bucket counts and sum.
func (h *Histogram) State() HistogramState {
	s := HistogramState{Bounds: h.bounds, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Value()
	return s
}

// Count returns the total observations in the state (the sum of the
// bucket counts).
func (s HistogramState) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns Sum/Count, or 0 when empty.
func (s HistogramState) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return s.Sum / float64(n)
}

// Delta returns the windowed view s − prev: the observations recorded
// between the two snapshots. A zero-value prev yields s itself, so the
// first window of a recording needs no special casing. The states must
// come from the same histogram (same bucket layout); a shape mismatch
// panics, as it indicates the caller mixed instruments.
func (s HistogramState) Delta(prev HistogramState) HistogramState {
	if prev.Counts == nil {
		return s
	}
	if len(prev.Counts) != len(s.Counts) {
		panic("telemetry: HistogramState.Delta across different bucket layouts")
	}
	d := HistogramState{Bounds: s.Bounds, Counts: make([]int64, len(s.Counts)), Sum: s.Sum - prev.Sum}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return d
}

// Quantile estimates the q-th quantile of the state's observations by
// linear interpolation inside the bucket holding the target rank
// (Prometheus histogram_quantile semantics: the lower edge of the
// first bucket is 0 when its upper bound is positive, and the +Inf
// bucket answers with the largest finite bound). Returns 0 when the
// state is empty or q is NaN.
func (s HistogramState) Quantile(q float64) float64 {
	n := s.Count()
	if n == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	cum := 0.0
	for i, c := range s.Counts {
		cum += float64(c)
		if c == 0 || cum < target {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: the best available answer is the largest
			// finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		upper := s.Bounds[i]
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		} else if upper <= 0 {
			lower = upper
		}
		frac := (target - (cum - float64(c))) / float64(c)
		return lower + (upper-lower)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Reset zeroes every bucket, the count, the sum, and the extrema.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Reset()
	h.resetExtrema()
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	bs := make([]float64, n)
	v := start
	for i := range bs {
		bs[i] = v
		v *= factor
	}
	return bs
}

// LinearBuckets returns n linearly spaced upper bounds starting at
// start with the given step.
func LinearBuckets(start, step float64, n int) []float64 {
	bs := make([]float64, n)
	for i := range bs {
		bs[i] = start + float64(i)*step
	}
	return bs
}
