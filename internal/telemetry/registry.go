package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metric kinds held by a registry family.
const (
	kindCounter      = "counter"
	kindFloatCounter = "floatcounter"
	kindGauge        = "gauge"
	kindGaugeFunc    = "gaugefunc"
	kindHistogram    = "histogram"
)

// family is one named metric family: an unlabeled metric or a set of
// children keyed by one label value.
type family struct {
	name     string
	help     string
	kind     string
	labelKey string // "" for unlabeled families
	buckets  []float64
	fn       func() float64 // kindGaugeFunc only

	mu       sync.RWMutex
	children map[string]interface{} // label value ("" when unlabeled) → metric
}

func (f *family) child(label string) interface{} {
	f.mu.RLock()
	m := f.children[label]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if existing := f.children[label]; existing != nil {
		return existing
	}
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindFloatCounter:
		m = &FloatCounter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = newHistogram(f.buckets)
	default:
		panic(fmt.Sprintf("telemetry: family %q has no instantiable kind %q", f.name, f.kind))
	}
	f.children[label] = m
	return m
}

// sortedLabels returns the label values in deterministic order.
func (f *family) sortedLabels() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.children))
	for k := range f.children {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Registry is a named set of metric families. The zero value is not
// usable; call NewRegistry (or use Default).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// family returns the family, creating it on first use. Re-registering
// an existing name with a different kind or label key panics: that is
// a programming error, caught at init time.
func (r *Registry) family(name, help, kind, labelKey string, buckets []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || f.labelKey != labelKey {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s/%q (was %s/%q)",
				name, kind, labelKey, f.kind, f.labelKey))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labelKey: labelKey,
		buckets: buckets, fn: fn, children: map[string]interface{}{},
	}
	r.fams[name] = f
	return f
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, "", nil, nil).child("").(*Counter)
}

// FloatCounter returns the registered float counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	return r.family(name, help, kindFloatCounter, "", nil, nil).child("").(*FloatCounter)
}

// Gauge returns the registered gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, "", nil, nil).child("").(*Gauge)
}

// GaugeFunc registers a derived gauge evaluated at export time (rates
// and ratios computed from counters).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGaugeFunc, "", nil, fn)
}

// Histogram returns the registered histogram with the given inclusive
// upper bucket bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, "", buckets, nil).child("").(*Histogram)
}

// CounterVec is a counter family labeled by one key.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelKey, nil, nil)}
}

// With returns the child counter for the label value.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.child(labelValue).(*Counter)
}

// GaugeVec is a gauge family labeled by one key.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelKey, nil, nil)}
}

// With returns the child gauge for the label value.
func (v *GaugeVec) With(labelValue string) *Gauge {
	return v.f.child(labelValue).(*Gauge)
}

// HistogramVec is a histogram family labeled by one key.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family.
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labelKey, buckets, nil)}
}

// With returns the child histogram for the label value.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.child(labelValue).(*Histogram)
}

// ResetAll zeroes every metric in the registry (tests and benchmark
// isolation); families stay registered.
func (r *Registry) ResetAll() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.fams {
		f.mu.RLock()
		for _, m := range f.children {
			switch m := m.(type) {
			case *Counter:
				m.Reset()
			case *FloatCounter:
				m.Reset()
			case *Gauge:
				m.Reset()
			case *Histogram:
				m.Reset()
			}
		}
		f.mu.RUnlock()
	}
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders {key="value"} (or "" when unlabeled), optionally
// merging an extra le pair for histogram buckets.
func promLabels(key, value, extraKey, extraValue string) string {
	var parts []string
	if key != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, key, escapeLabel(value)))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extraKey, escapeLabel(extraValue)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the whole registry in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative
// le-buckets plus _sum and _count, and additionally estimated
// <name>_p50 / _p95 / _p99 quantile samples (untyped) so a scrape of a
// single benchmark run carries latency percentiles without a server.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		typ := f.kind
		switch f.kind {
		case kindFloatCounter:
			typ = "counter"
		case kindGaugeFunc:
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ); err != nil {
			return err
		}
		if f.kind == kindGaugeFunc {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, promFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		var quantileLines []string
		for _, label := range f.sortedLabels() {
			f.mu.RLock()
			m := f.children[label]
			f.mu.RUnlock()
			ls := promLabels(f.labelKey, label, "", "")
			var err error
			switch m := m.(type) {
			case *Counter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, ls, m.Value())
			case *FloatCounter:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, ls, promFloat(m.Value()))
			case *Gauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, ls, promFloat(m.Value()))
			case *Histogram:
				bounds, counts := m.Buckets()
				cum := int64(0)
				for i, b := range bounds {
					cum += counts[i]
					if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.name, promLabels(f.labelKey, label, "le", promFloat(b)), cum); err != nil {
						return err
					}
				}
				cum += counts[len(counts)-1]
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, promLabels(f.labelKey, label, "le", "+Inf"), cum); err != nil {
					return err
				}
				if _, err = fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
					f.name, ls, promFloat(m.Sum()), f.name, ls, m.Count()); err != nil {
					return err
				}
				for _, q := range []struct {
					suffix string
					q      float64
				}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
					quantileLines = append(quantileLines, fmt.Sprintf("%s_%s%s %s\n",
						f.name, q.suffix, ls, promFloat(m.Quantile(q.q))))
				}
			}
			if err != nil {
				return err
			}
		}
		// Quantile samples are distinct (untyped) metrics; they follow
		// the histogram block so each family's samples stay contiguous.
		for _, line := range quantileLines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// HistogramSnapshot is the exported view of one histogram.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
}

// Snapshot is a point-in-time expvar-style view of a registry. Metric
// keys include the label suffix (`name{key="value"}`) for labeled
// children.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. Values observed while writers are
// running are approximate (each field is read atomically but the set
// is not a consistent cut).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, f := range r.sortedFamilies() {
		if f.kind == kindGaugeFunc {
			s.Gauges[f.name] = f.fn()
			continue
		}
		for _, label := range f.sortedLabels() {
			f.mu.RLock()
			m := f.children[label]
			f.mu.RUnlock()
			key := f.name + promLabels(f.labelKey, label, "", "")
			switch m := m.(type) {
			case *Counter:
				s.Counters[key] = m.Value()
			case *FloatCounter:
				s.Gauges[key] = m.Value()
			case *Gauge:
				s.Gauges[key] = m.Value()
			case *Histogram:
				bounds, counts := m.Buckets()
				s.Histograms[key] = HistogramSnapshot{
					Count: m.Count(), Sum: m.Sum(), Min: m.Min(), Max: m.Max(),
					Mean: m.Mean(),
					P50:  m.Quantile(0.50), P95: m.Quantile(0.95), P99: m.Quantile(0.99),
					Bounds: bounds, Counts: counts,
				}
			}
		}
	}
	return s
}
