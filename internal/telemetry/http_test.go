package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTimeseriesAndHealthEndpoints(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test_ops_total", "ops")
	s := NewSampler(reg, 8, "test_ops_total")
	s.Reset()
	s.SetEnabled(true)
	ctr.Add(3)
	s.Sample(100)

	m := NewMonitor(
		Rule{Name: "ops-flowing", Value: SeriesExpr("test_ops_total", AggLast, 0),
			Above: true, Threshold: 100, Severity: SevCritical},
	)
	mux := DebugMux(reg, NewTracer(), s, m)

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/timeseries", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/timeseries = %d", rr.Code)
	}
	d, err := ReadDump(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if pts := d.Index()["test_ops_total"]; len(pts) != 1 || pts[0].V != 3 {
		t.Fatalf("served dump points = %v, want one delta of 3", d.Index()["test_ops_total"])
	}

	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/timeseries?format=csv", nil))
	if got := rr.Body.String(); !strings.HasPrefix(got, "series,t,value\n") ||
		!strings.Contains(got, "test_ops_total,100,3\n") {
		t.Fatalf("CSV body = %q", got)
	}

	// Rule not firing (3 < 100): healthy, HTTP 200.
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/health", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/health healthy = %d, want 200", rr.Code)
	}
	var h Health
	if err := json.NewDecoder(rr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "OK" || len(h.Checks) != 1 {
		t.Fatalf("healthy verdict = %+v", h)
	}

	// Push the counter over the critical threshold: HTTP 503, body
	// still the verdict.
	ctr.Add(500)
	s.Sample(200)
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/health", nil))
	if rr.Code != 503 {
		t.Fatalf("/debug/health critical = %d, want 503", rr.Code)
	}
	if err := json.NewDecoder(rr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "CRITICAL" || !h.Checks[0].Firing {
		t.Fatalf("critical verdict = %+v", h)
	}
}
