package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramStateDelta(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5)
	first := h.State()
	if got := first.Count(); got != 3 {
		t.Fatalf("first.Count() = %d, want 3", got)
	}
	// Zero-value prev yields the state itself.
	d0 := first.Delta(HistogramState{})
	if d0.Count() != 3 || d0.Sum != first.Sum {
		t.Fatalf("delta against zero prev = %+v, want %+v", d0, first)
	}

	h.Observe(50)
	h.Observe(500) // +Inf bucket
	second := h.State()
	d := second.Delta(first)
	if got := d.Count(); got != 2 {
		t.Fatalf("windowed Count = %d, want 2", got)
	}
	if got, want := d.Sum, 550.0; got != want {
		t.Fatalf("windowed Sum = %g, want %g", got, want)
	}
	// Window holds one observation in (10,100] and one in +Inf.
	if d.Counts[2] != 1 || d.Counts[3] != 1 {
		t.Fatalf("windowed Counts = %v, want [0 0 1 1]", d.Counts)
	}
	if got, want := d.Mean(), 275.0; got != want {
		t.Fatalf("windowed Mean = %g, want %g", got, want)
	}
}

func TestHistogramStateDeltaLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Delta across bucket layouts did not panic")
		}
	}()
	a := newHistogram([]float64{1, 2}).State()
	b := newHistogram([]float64{1, 2, 3}).State()
	b.Delta(a)
}

func TestHistogramStateQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // (0,10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // (10,20]
	}
	s := h.State()
	// Median rank lands exactly on the first bucket's upper edge.
	if got := s.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %g, want 10", got)
	}
	// p95 interpolates inside (10,20].
	if got := s.Quantile(0.95); got <= 10 || got > 20 {
		t.Fatalf("p95 = %g, want in (10,20]", got)
	}
	if got := s.Quantile(0); got < 0 || got > 10 {
		t.Fatalf("p0 = %g, want in [0,10]", got)
	}
	// Empty state answers 0.
	if got := (HistogramState{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %g, want 0", got)
	}
	// +Inf-only mass answers the largest finite bound.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.State().Quantile(0.99); got != 2 {
		t.Fatalf("+Inf quantile = %g, want 2", got)
	}
}

// TestHistogramStateConcurrentConsistency hammers Observe while taking
// State snapshots and checks the windowed-view invariants the flight
// recorder depends on: per-bucket deltas are never negative (each
// bucket is individually monotone), derived counts never run
// backwards, and windowed quantiles stay within the bucket range.
func TestHistogramStateConcurrentConsistency(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8, 16})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			x := uint64(seed)*2654435761 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				x = x*6364136223846793005 + 1442695040888963407
				h.Observe(float64(x%20) + 0.5)
			}
		}(w + 1)
	}

	prev := HistogramState{}
	for i := 0; i < 2000; i++ {
		cur := h.State()
		d := cur.Delta(prev)
		for b, c := range d.Counts {
			if c < 0 {
				t.Errorf("snapshot %d: bucket %d delta %d < 0", i, b, c)
			}
		}
		if n := d.Count(); n < 0 {
			t.Errorf("snapshot %d: windowed count %d < 0", i, n)
		} else if n > 0 {
			for _, q := range []float64{0.5, 0.95, 0.99} {
				v := d.Quantile(q)
				if v < 0 || v > 16 {
					t.Errorf("snapshot %d: q%.2f = %g outside [0, 16]", i, q, v)
				}
			}
		}
		prev = cur
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Quiesced: the final state agrees with the atomic total count.
	final := h.State()
	if got, want := final.Count(), h.Count(); got != want {
		t.Fatalf("quiesced State Count = %d, want %d", got, want)
	}
}

func TestSamplerCountersGaugesHistograms(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test_ops_total", "ops")
	g := reg.Gauge("test_depth", "depth")
	reg.GaugeFunc("test_rate", "rate", func() float64 { return 0.25 })
	h := reg.Histogram("test_lat", "latency", []float64{10, 100})

	ctr.Add(5) // pre-recording activity must not leak into window 1
	s := NewSampler(reg, 8, "test_ops_total", "test_depth", "test_rate", "test_lat")
	s.Reset()
	s.SetEnabled(true)

	ctr.Add(3)
	g.Set(7)
	h.Observe(5)
	h.Observe(50)
	s.Sample(100)

	ctr.Add(2)
	g.Set(9)
	s.Sample(200)

	d := s.Dump()
	if d.Samples != 2 {
		t.Fatalf("Samples = %d, want 2", d.Samples)
	}
	idx := d.Index()
	wantSeries := map[string][]Point{
		"test_ops_total": {{T: 100, V: 3}, {T: 200, V: 2}},
		"test_depth":     {{T: 100, V: 7}, {T: 200, V: 9}},
		"test_rate":      {{T: 100, V: 0.25}, {T: 200, V: 0.25}},
		"test_lat_count": {{T: 100, V: 2}, {T: 200, V: 0}},
		"test_lat_sum":   {{T: 100, V: 55}, {T: 200, V: 0}},
	}
	for name, want := range wantSeries {
		got := idx[name]
		if len(got) != len(want) {
			t.Fatalf("series %s = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("series %s[%d] = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
	// Quantile series exist and the first window's p50 is in-range.
	p50 := idx["test_lat_p50"]
	if len(p50) != 2 || p50[0].V <= 0 || p50[0].V > 100 {
		t.Fatalf("test_lat_p50 = %v, want 2 points with first in (0,100]", p50)
	}
	// Kinds are labeled for downstream validators.
	kinds := map[string]string{}
	for _, sr := range d.Series {
		kinds[sr.Name] = sr.Kind
	}
	if kinds["test_ops_total"] != SeriesCounter || kinds["test_depth"] != SeriesGauge ||
		kinds["test_rate"] != SeriesGauge || kinds["test_lat_p99"] != SeriesHP99 {
		t.Fatalf("unexpected kinds: %v", kinds)
	}
}

func TestSamplerVecFamiliesSumChildren(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("test_shard_ops_total", "per-shard ops", "shard")
	gv := reg.GaugeVec("test_shard_depth", "per-shard depth", "shard")
	s := NewSampler(reg, 8, "test_shard_ops_total", "test_shard_depth")
	s.Reset()
	s.SetEnabled(true)

	cv.With("0").Add(2)
	cv.With("1").Add(3)
	gv.With("0").Set(4)
	gv.With("1").Set(6)
	s.Sample(1)

	idx := s.Dump().Index()
	if got := idx["test_shard_ops_total"][0].V; got != 5 {
		t.Fatalf("summed counter delta = %g, want 5", got)
	}
	if got := idx["test_shard_depth"][0].V; got != 10 {
		t.Fatalf("summed gauge = %g, want 10", got)
	}
}

func TestSamplerMonotonicTimestampsAndReset(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test_ops_total", "ops")
	s := NewSampler(reg, 8, "test_ops_total")
	s.Reset()
	s.SetEnabled(true)

	ctr.Add(1)
	s.Sample(100)
	ctr.Add(1)
	s.Sample(50) // behind the timeline: dropped
	s.Sample(100)
	if got := s.Samples(); got != 1 {
		t.Fatalf("Samples after non-monotonic inputs = %d, want 1", got)
	}
	s.Sample(150)
	idx := s.Dump().Index()
	pts := idx["test_ops_total"]
	if len(pts) != 2 || pts[1] != (Point{T: 150, V: 1}) {
		t.Fatalf("points = %v, want delta 1 at t=150", pts)
	}

	// Reset re-baselines: activity before the reset never shows up.
	ctr.Add(10)
	s.Reset()
	ctr.Add(2)
	s.Sample(1) // timeline restarted, small t is fine after Reset
	idx = s.Dump().Index()
	if got := idx["test_ops_total"]; len(got) != 1 || got[0].V != 2 {
		t.Fatalf("post-reset points = %v, want single delta 2", got)
	}
}

func TestSamplerRingOverflow(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_depth", "depth")
	s := NewSampler(reg, 4, "test_depth")
	s.Reset()
	s.SetEnabled(true)
	for i := 1; i <= 10; i++ {
		g.Set(float64(i))
		s.Sample(int64(i))
	}
	d := s.Dump()
	sr := d.Series[0]
	if sr.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", sr.Dropped)
	}
	if len(sr.Points) != 4 || sr.Points[0].T != 7 || sr.Points[3].T != 10 {
		t.Fatalf("ring kept %v, want t=7..10", sr.Points)
	}
}

func TestSamplerSimTick(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test_ops_total", "ops")
	s := NewSampler(reg, 8, "test_ops_total")
	s.SetSimEvery(4)
	s.Reset()

	// Disabled: ticks are ignored entirely.
	for i := 0; i < 16; i++ {
		s.SimTick(int64(i))
	}
	if got := s.Samples(); got != 0 {
		t.Fatalf("disabled sampler took %d samples", got)
	}

	s.SetEnabled(true)
	for i := 1; i <= 9; i++ {
		ctr.Inc()
		s.SimTick(int64(i * 1000))
	}
	// Ticks 4 and 8 sample (every 4th).
	if got := s.Samples(); got != 2 {
		t.Fatalf("Samples = %d, want 2", got)
	}
	idx := s.Dump().Index()
	pts := idx["test_ops_total"]
	if len(pts) != 2 || pts[0] != (Point{T: 4000, V: 4}) || pts[1] != (Point{T: 8000, V: 4}) {
		t.Fatalf("points = %v, want deltas of 4 at t=4000, 8000", pts)
	}

	// FinalSample flushes the tail window (tick 9's increment plus one
	// more).
	ctr.Inc()
	s.FinalSample()
	pts = s.Dump().Index()["test_ops_total"]
	if len(pts) != 3 || pts[2] != (Point{T: 8001, V: 2}) {
		t.Fatalf("after FinalSample points = %v, want tail delta 2 at t=8001", pts)
	}
}

func TestSamplerDumpRoundTripAndCSV(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test_ops_total", "ops")
	s := NewSampler(reg, 8, "test_ops_total")
	s.Reset()
	s.SetEnabled(true)
	ctr.Add(2)
	s.Sample(10)
	ctr.Add(4)
	s.Sample(20)

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != DumpSchemaVersion || d.Clock != ClockSimPs || d.Samples != 2 {
		t.Fatalf("round-tripped header = %+v", d)
	}
	pts := d.Index()["test_ops_total"]
	if len(pts) != 2 || pts[0] != (Point{T: 10, V: 2}) || pts[1] != (Point{T: 20, V: 4}) {
		t.Fatalf("round-tripped points = %v", pts)
	}

	buf.Reset()
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "series,t,value\ntest_ops_total,10,2\ntest_ops_total,20,4\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}

	if _, err := ReadDump(strings.NewReader("not json")); err == nil {
		t.Fatal("ReadDump accepted garbage")
	}
}

func TestSamplerWallClock(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("test_depth", "depth").Set(1)
	s := NewSampler(reg, 8, "test_depth")
	s.Reset()
	s.StartWall(time.Millisecond)
	defer s.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Samples() == 0 {
		t.Fatal("wall sampler took no samples within 2s")
	}
	// Sim ticks are ignored in the wall domain.
	before := s.Dump()
	s.SimTick(1)
	s.SimTick(2)
	if d := s.Dump(); d.Clock != ClockWallNs {
		t.Fatalf("Clock = %q, want %q", d.Clock, ClockWallNs)
	} else if d.SimEvery != 0 {
		t.Fatalf("SimEvery = %d in wall mode, want 0", d.SimEvery)
	}
	_ = before
	s.Stop()
	n := s.Samples()
	time.Sleep(10 * time.Millisecond)
	if got := s.Samples(); got != n {
		t.Fatalf("sampler kept sampling after Stop: %d -> %d", n, got)
	}
}

func TestDefaultSeriesMetricsResolve(t *testing.T) {
	// Every catalogue entry must stay a registered family name once the
	// instrumented packages are linked in; here we only check the list
	// is non-empty, free of duplicates, and uses valid metric names.
	names := DefaultSeriesMetrics()
	if len(names) == 0 {
		t.Fatal("empty default series catalogue")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate catalogue entry %q", n)
		}
		seen[n] = true
		if !validName(n) {
			t.Errorf("invalid metric name %q in catalogue", n)
		}
	}
}
