package telemetry

import (
	"strings"
	"testing"
)

func TestSimTickRangeMatchesSequentialTicks(t *testing.T) {
	// The bulk clock input must be indistinguishable from n sequential
	// SimTick calls when the caller lands the same per-tick counter
	// increments: same sample timestamps, same sampled values, same
	// tick count.
	run := func(bulk bool) *Dump {
		reg := NewRegistry()
		ctr := reg.Counter("test_ops_total", "ops")
		s := NewSampler(reg, 64, "test_ops_total")
		s.SetSimEvery(4)
		s.Reset()
		s.SetEnabled(true)
		// A stepped prefix so the bulk range starts mid-period.
		for i := 1; i <= 2; i++ {
			ctr.Inc()
			s.SimTick(int64(i * 10))
		}
		const n, start, step = 21, 30, 10
		if bulk {
			s.SimTickRange(start, step, n, func(k int64) { ctr.Add(k) })
		} else {
			for i := int64(0); i < n; i++ {
				ctr.Inc()
				s.SimTick(start + i*step)
			}
		}
		return s.Dump()
	}
	a, b := run(false), run(true)
	if diffs := DiffDumps(a, b); len(diffs) != 0 {
		for _, d := range diffs {
			t.Errorf("diff: %s", d)
		}
		t.Fatal("bulk ticks diverge from sequential ticks")
	}
	if a.Ticks != 23 || a.Samples != 5 {
		t.Fatalf("ticks=%d samples=%d, want 23 ticks / 5 samples", a.Ticks, a.Samples)
	}
}

func TestSimTickRangeDisabledStillAdvances(t *testing.T) {
	reg := NewRegistry()
	s := NewSampler(reg, 8)
	s.SetSimEvery(4)
	// Disabled recorder: no ticks counted (mirrors SimTick), but the
	// caller's bulk advance must still run in full.
	var advanced int64
	s.SimTickRange(0, 1, 100, func(k int64) { advanced += k })
	if advanced != 100 {
		t.Fatalf("advance covered %d of 100 ticks with recorder disabled", advanced)
	}
	if got := s.Dump().Ticks; got != 0 {
		t.Fatalf("disabled recorder counted %d ticks", got)
	}
	// Enabled but sim sampling off (every ≤ 0): same contract.
	s.SetEnabled(true)
	s.SetSimEvery(0)
	advanced = 0
	s.SimTickRange(0, 1, 7, func(k int64) { advanced += k })
	if advanced != 7 {
		t.Fatalf("advance covered %d of 7 ticks with sim sampling off", advanced)
	}
	// Nil advance and non-positive n are no-ops.
	s.SetSimEvery(4)
	s.SimTickRange(0, 1, 3, nil)
	s.SimTickRange(0, 1, 0, func(int64) { t.Fatal("advance called for n=0") })
}

func dumpWith(points ...Point) *Dump {
	return &Dump{
		Schema: DumpSchemaVersion, Clock: ClockSimPs, SimEvery: 4,
		Samples: len(points), Ticks: int64(4 * len(points)),
		Series: []SeriesDump{{Name: "s", Kind: "counter", Metric: "m", Points: points}},
	}
}

func TestDiffDumpsIdentical(t *testing.T) {
	a := dumpWith(Point{T: 1, V: 2}, Point{T: 2, V: 3})
	b := dumpWith(Point{T: 1, V: 2}, Point{T: 2, V: 3})
	if diffs := DiffDumps(a, b); len(diffs) != 0 {
		t.Fatalf("identical dumps diverge: %v", diffs)
	}
}

func TestDiffDumpsFirstDivergentWindow(t *testing.T) {
	a := dumpWith(Point{T: 1, V: 2}, Point{T: 2, V: 3}, Point{T: 3, V: 4})
	b := dumpWith(Point{T: 1, V: 2}, Point{T: 2, V: 9}, Point{T: 3, V: 8})
	diffs := DiffDumps(a, b)
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1 (first divergence only): %v", len(diffs), diffs)
	}
	if diffs[0].Series != "s" || diffs[0].T != 2 {
		t.Fatalf("first divergence = %+v, want series s at t=2", diffs[0])
	}
	if !strings.Contains(diffs[0].String(), "t=2") {
		t.Fatalf("String() misses timestamp: %s", diffs[0])
	}
}

func TestDiffDumpsStructuralAndMissingSeries(t *testing.T) {
	a := dumpWith(Point{T: 1, V: 2})
	b := dumpWith(Point{T: 1, V: 2})
	b.SimEvery = 8
	b.Ticks = 8
	b.Series[0].Name = "other"
	diffs := DiffDumps(a, b)
	var reasons []string
	for _, d := range diffs {
		reasons = append(reasons, d.String())
	}
	all := strings.Join(reasons, "\n")
	for _, want := range []string{"sampling period", "tick count", "missing from second", "missing from first"} {
		if !strings.Contains(all, want) {
			t.Errorf("diffs missing %q:\n%s", want, all)
		}
	}
	// Timestamp skew and point-count mismatches are each one finding.
	c := dumpWith(Point{T: 5, V: 2})
	if diffs := DiffDumps(a, c); len(diffs) != 1 || !strings.Contains(diffs[0].Reason, "timestamp") {
		t.Fatalf("timestamp skew diffs = %v", diffs)
	}
	d := dumpWith(Point{T: 1, V: 2}, Point{T: 2, V: 3})
	d.Samples, d.Ticks = a.Samples, a.Ticks // isolate the per-series finding
	if diffs := DiffDumps(a, d); len(diffs) != 1 || !strings.Contains(diffs[0].Reason, "point count") {
		t.Fatalf("point count diffs = %v", diffs)
	}
}
