package telemetry

import "fmt"

// Cross-run recording diff: sim-time recordings are bit-deterministic,
// so any behavioral divergence between two runs of the same workload —
// a regression, a nondeterministic code path, a fast-forward bug —
// shows up as a first divergent window in some series. DiffDumps turns
// "the recordings differ" into "series X diverges at t=...", which is
// a pinpointed simulated timestamp instead of a byte offset.

// SeriesDiff describes the first divergence found in one series (or a
// structural mismatch between the dumps when Series is empty). T is
// the timestamp of the first divergent point, or -1 for structural
// findings with no single timestamp.
type SeriesDiff struct {
	Series string
	T      int64
	Reason string
}

func (d SeriesDiff) String() string {
	if d.Series == "" {
		return d.Reason
	}
	if d.T < 0 {
		return fmt.Sprintf("%s: %s", d.Series, d.Reason)
	}
	return fmt.Sprintf("%s: first divergence at t=%d: %s", d.Series, d.T, d.Reason)
}

// DiffDumps compares two recordings and returns one entry per
// divergent series (the first divergent point of each), plus
// structural mismatches (clock domain, sampling period, sample count,
// series present on only one side). A nil/empty result means the dumps
// are identical at every recorded window. Values are compared exactly
// — the recordings' determinism contract is bit-identity, so any
// difference, however small, is a finding.
func DiffDumps(a, b *Dump) []SeriesDiff {
	var out []SeriesDiff
	structural := func(format string, args ...any) {
		out = append(out, SeriesDiff{T: -1, Reason: fmt.Sprintf(format, args...)})
	}
	if a.Schema != b.Schema {
		structural("schema differs: %d vs %d", a.Schema, b.Schema)
	}
	if a.Clock != b.Clock {
		structural("clock domain differs: %s vs %s", a.Clock, b.Clock)
	}
	if a.SimEvery != b.SimEvery {
		structural("sampling period differs: every %d vs %d windows", a.SimEvery, b.SimEvery)
	}
	if a.Samples != b.Samples {
		structural("sample count differs: %d vs %d", a.Samples, b.Samples)
	}
	if a.Ticks != b.Ticks {
		structural("tick count differs: %d vs %d", a.Ticks, b.Ticks)
	}

	bByName := make(map[string]SeriesDump, len(b.Series))
	for _, s := range b.Series {
		bByName[s.Name] = s
	}
	seen := make(map[string]bool, len(a.Series))
	for _, sa := range a.Series {
		seen[sa.Name] = true
		sb, ok := bByName[sa.Name]
		if !ok {
			out = append(out, SeriesDiff{Series: sa.Name, T: -1, Reason: "missing from second dump"})
			continue
		}
		if d, found := diffSeries(sa, sb); found {
			out = append(out, d)
		}
	}
	for _, sb := range b.Series {
		if !seen[sb.Name] {
			out = append(out, SeriesDiff{Series: sb.Name, T: -1, Reason: "missing from first dump"})
		}
	}
	return out
}

// diffSeries returns the first divergent point of one series pair.
func diffSeries(a, b SeriesDump) (SeriesDiff, bool) {
	if a.Kind != b.Kind {
		return SeriesDiff{Series: a.Name, T: -1,
			Reason: fmt.Sprintf("kind differs: %s vs %s", a.Kind, b.Kind)}, true
	}
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	for i := 0; i < n; i++ {
		pa, pb := a.Points[i], b.Points[i]
		if pa.T != pb.T {
			return SeriesDiff{Series: a.Name, T: pa.T,
				Reason: fmt.Sprintf("point %d timestamp differs: %d vs %d", i, pa.T, pb.T)}, true
		}
		// Exact comparison, NaN-aware: two NaNs are "equal" for the
		// purpose of bit-identity (they serialize identically).
		if pa.V != pb.V && !(pa.V != pa.V && pb.V != pb.V) {
			return SeriesDiff{Series: a.Name, T: pa.T,
				Reason: fmt.Sprintf("value differs: %v vs %v", pa.V, pb.V)}, true
		}
	}
	if len(a.Points) != len(b.Points) {
		t := int64(-1)
		longer := a.Points
		if len(b.Points) > len(a.Points) {
			longer = b.Points
		}
		if n < len(longer) {
			t = longer[n].T
		}
		return SeriesDiff{Series: a.Name, T: t,
			Reason: fmt.Sprintf("point count differs: %d vs %d", len(a.Points), len(b.Points))}, true
	}
	return SeriesDiff{}, false
}
