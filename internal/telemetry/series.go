package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder: a Sampler periodically snapshots selected
// registry metrics into fixed-capacity ring-buffered time series, so
// the signals that matter in a windowed system — fallback-rate spikes,
// slot-utilization collapse, queue-full stall storms — are visible as
// trajectories instead of end-of-run totals.
//
// Two clock domains exist. In the simulated-time domain (the default)
// nma.Sim drives the recorder by calling SimTick at the end of every
// refresh window; the sampler takes one sample every SimEvery ticks,
// so each sample is a tREFI epoch and the recorded series are
// bit-deterministic for a fixed seed at any worker count (samples are
// taken on the serial window-stepping path, after all parallel-phase
// counter bumps have completed). In the wall-clock domain (StartWall)
// a goroutine samples every interval, for long-running servers and
// benches. The disabled fast path of SimTick is one atomic load.

// Point is one sample of one series: T is simulated picoseconds in
// the sim domain or Unix nanoseconds in the wall domain.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series kinds recorded by the sampler.
const (
	SeriesCounter = "counter" // per-window delta of a (summed) counter family
	SeriesGauge   = "gauge"   // instantaneous value (summed across children)
	SeriesHCount  = "hist_count"
	SeriesHSum    = "hist_sum"
	SeriesHP50    = "hist_p50"
	SeriesHP95    = "hist_p95"
	SeriesHP99    = "hist_p99"
)

// series is one ring-buffered timeline.
type series struct {
	name    string // series name (metric name plus any histogram suffix)
	kind    string
	metric  string // source family
	buf     []Point
	next, n int
	dropped int64
}

func (s *series) push(p Point) {
	s.buf[s.next] = p
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	} else {
		s.dropped++
	}
}

func (s *series) points() []Point {
	out := make([]Point, 0, s.n)
	start := s.next - s.n
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i+len(s.buf))%len(s.buf)])
	}
	return out
}

// DefaultSeriesCapacity is the per-series ring size.
const DefaultSeriesCapacity = 1024

// DefaultSimEvery is the default sampling period in refresh windows
// (tREFI intervals) for the simulated-time clock domain.
const DefaultSimEvery = 64

// Sampler records time series over one registry. The zero value is not
// usable; call NewSampler (or use DefaultSampler). All methods are safe
// for concurrent use.
type Sampler struct {
	reg     *Registry
	enabled atomic.Bool
	// simEvery is the sim-domain sampling period in ticks; 0 routes
	// around SimTick entirely (wall domain or recorder unused).
	simEvery atomic.Int64
	ticks    atomic.Int64

	mu       sync.Mutex
	wall     bool // true after StartWall: timestamps are wall nanoseconds
	names    []string
	capacity int
	order    []*series
	byName   map[string]*series
	prevCtr  map[string]float64
	prevHist map[string]HistogramState
	samples  int
	lastT    int64
	haveLast bool
	stop     chan struct{}

	// Per-sim fan-out (multi-sim recording). One sampler owns one
	// strictly monotonic timeline, so when several simulators run in
	// parallel (xfmbench -j) and share the recorder, only the first to
	// reach a timestamp records it. With fan-out enabled, SimSampler
	// hands each new simulator a private child sampler (own tick clock
	// and rings, same registry and catalogue) and Dump merges the
	// per-sim rings afterwards. children has its own mutex so no
	// Sampler.mu ever nests inside another Sampler.mu.
	fanOut   atomic.Bool
	childMu  sync.Mutex
	children []*Sampler
}

// NewSampler builds a disabled sampler over reg recording the given
// metric families (DefaultSeriesMetrics when empty) with the given
// per-series ring capacity (DefaultSeriesCapacity when ≤ 0).
func NewSampler(reg *Registry, capacity int, metrics ...string) *Sampler {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	if len(metrics) == 0 {
		metrics = DefaultSeriesMetrics()
	}
	s := &Sampler{
		reg:      reg,
		capacity: capacity,
		names:    append([]string(nil), metrics...),
		byName:   map[string]*series{},
		prevCtr:  map[string]float64{},
		prevHist: map[string]HistogramState{},
	}
	s.simEvery.Store(DefaultSimEvery)
	return s
}

// SetMetrics replaces the selected metric families and clears any
// recorded data.
func (s *Sampler) SetMetrics(metrics ...string) {
	s.mu.Lock()
	s.names = append([]string(nil), metrics...)
	s.resetLocked()
	s.mu.Unlock()
}

// Metrics returns the selected metric family names.
func (s *Sampler) Metrics() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names...)
}

// SetSimEvery sets the simulated-time sampling period in refresh
// windows (SimTick calls per sample); n ≤ 0 disables sim-domain
// sampling.
func (s *Sampler) SetSimEvery(n int) {
	if n < 0 {
		n = 0
	}
	s.simEvery.Store(int64(n))
}

// SetEnabled turns the recorder on or off (children included).
// Enabling does not re-baseline; call Reset first when starting a
// fresh recording.
func (s *Sampler) SetEnabled(on bool) {
	s.enabled.Store(on)
	for _, c := range s.childrenSnapshot() {
		c.SetEnabled(on)
	}
}

// Enabled reports whether the recorder is on.
func (s *Sampler) Enabled() bool { return s.enabled.Load() }

// Reset clears every recorded series and re-baselines the counter and
// histogram snapshots at the metrics' current values, so the first
// recorded window holds only activity after the reset. Fan-out
// children are detached: simulators built before a Reset belong to the
// previous recording.
func (s *Sampler) Reset() {
	s.mu.Lock()
	s.resetLocked()
	s.mu.Unlock()
	s.childMu.Lock()
	s.children = nil
	s.childMu.Unlock()
}

// SetFanOut enables (or disables) per-sim fan-out: while on, each
// SimSampler call returns a fresh child sampler instead of s itself.
// Existing children stay attached until Reset.
func (s *Sampler) SetFanOut(on bool) { s.fanOut.Store(on) }

// SimSampler returns the sampler a newly built simulator should tick.
// In the default single-recorder mode that is s itself — zero behavior
// change, one dump, bit-deterministic. With fan-out enabled it is a
// fresh child sampler over the same registry and catalogue, with its
// own tick clock and rings, baselined at the current registry state;
// Dump() merges the per-sim rings so no simulator's timeline is lost
// to another's first-writer-wins timestamp collision. Note the
// registry itself stays shared: under -j a child's windowed deltas
// include concurrent activity from sibling sims, so merged parallel
// recordings are full-coverage but not per-sim-exact.
func (s *Sampler) SimSampler() *Sampler {
	if !s.fanOut.Load() {
		return s
	}
	s.mu.Lock()
	capacity := s.capacity
	names := append([]string(nil), s.names...)
	s.mu.Unlock()
	c := NewSampler(s.reg, capacity, names...)
	c.simEvery.Store(s.simEvery.Load())
	c.Reset()
	c.enabled.Store(s.enabled.Load())
	s.childMu.Lock()
	s.children = append(s.children, c)
	s.childMu.Unlock()
	return c
}

// childrenSnapshot returns the attached fan-out children.
func (s *Sampler) childrenSnapshot() []*Sampler {
	s.childMu.Lock()
	defer s.childMu.Unlock()
	return append([]*Sampler(nil), s.children...)
}

func (s *Sampler) resetLocked() {
	s.order = nil
	s.byName = map[string]*series{}
	s.prevCtr = map[string]float64{}
	s.prevHist = map[string]HistogramState{}
	s.samples = 0
	s.haveLast = false
	s.lastT = 0
	s.ticks.Store(0)
	for _, name := range s.names {
		f := s.reg.familyByName(name)
		if f == nil {
			continue
		}
		switch f.kind {
		case kindCounter, kindFloatCounter:
			s.prevCtr[name] = f.counterTotal()
		case kindHistogram:
			s.prevHist[name] = f.mergedState()
		}
	}
}

// Samples returns the number of samples taken since the last Reset,
// including samples recorded by fan-out children.
func (s *Sampler) Samples() int {
	s.mu.Lock()
	n := s.samples
	s.mu.Unlock()
	for _, c := range s.childrenSnapshot() {
		n += c.Samples()
	}
	return n
}

// SimTick is the simulated-time clock input, called by nma.Sim at the
// end of every refresh window with the window's execution time in
// picoseconds. Every SimEvery-th tick takes a sample. Ticks that do
// not advance the recorded timeline (a second simulator running behind
// the first) are dropped, keeping timestamps strictly monotonic.
//
//xfm:allocok sampling is amortized to once per sim_every ticks and writes into preallocated rings
func (s *Sampler) SimTick(nowPs int64) {
	if !s.enabled.Load() {
		return
	}
	every := s.simEvery.Load()
	if every <= 0 {
		return
	}
	if s.ticks.Add(1)%every != 0 {
		return
	}
	s.mu.Lock()
	if !s.wall {
		s.sampleLocked(nowPs)
	}
	s.mu.Unlock()
}

// SimTickRange advances the simulated-time clock by n ticks at once:
// the first tick lands at startPs and each subsequent tick stepPs
// later, exactly as n sequential SimTick calls would. It exists for
// the NMA engine's idle fast-forward, which must publish bulk counter
// updates without desynchronizing the recorded series: advance(k) is
// invoked with a not-yet-accounted tick count immediately before each
// sample the range triggers (and once with the remainder at the end),
// so the caller lands its coalesced metric adds in sample-aligned
// chunks and every sample reads exactly the registry state a stepped
// run would have produced. advance is always called with chunk counts
// summing to n, even when the recorder is disabled.
//
//xfm:allocok sampling is amortized to once per sim_every ticks and writes into preallocated rings
func (s *Sampler) SimTickRange(startPs, stepPs, n int64, advance func(k int64)) {
	if n <= 0 {
		return
	}
	if advance == nil {
		advance = func(int64) {}
	}
	// Disabled recorders do not count ticks (SimTick returns before its
	// ticks.Add), and neither does a sampler with sim-domain sampling
	// off; mirror both fast paths.
	if !s.enabled.Load() {
		advance(n)
		return
	}
	every := s.simEvery.Load()
	if every <= 0 {
		advance(n)
		return
	}
	done := int64(0)
	for done < n {
		t := s.ticks.Load()
		rem := every - t%every // ticks until the next sample fires
		if rem > n-done {
			k := n - done
			advance(k)
			s.ticks.Add(k)
			return
		}
		advance(rem)
		s.ticks.Add(rem)
		done += rem
		s.mu.Lock()
		if !s.wall {
			// The sample lands on the rem-th skipped window, whose
			// execution time is its position in the range.
			s.sampleLocked(startPs + (done-1)*stepPs)
		}
		s.mu.Unlock()
	}
}

// Sample takes one sample at timestamp t (simulated picoseconds or
// wall nanoseconds, depending on the clock domain). Non-monotonic
// timestamps are dropped.
func (s *Sampler) Sample(t int64) {
	s.mu.Lock()
	s.sampleLocked(t)
	s.mu.Unlock()
}

// FinalSample appends one last sample just past the end of the
// recorded timeline, so short runs that never crossed a sampling
// period still produce a non-empty artifact.
func (s *Sampler) FinalSample() {
	s.mu.Lock()
	s.sampleLocked(s.lastT + 1)
	s.mu.Unlock()
}

func (s *Sampler) sampleLocked(t int64) {
	if s.haveLast && t <= s.lastT {
		return
	}
	s.lastT = t
	s.haveLast = true
	for _, name := range s.names {
		f := s.reg.familyByName(name)
		if f == nil {
			continue
		}
		switch f.kind {
		case kindCounter, kindFloatCounter:
			cur := f.counterTotal()
			s.get(name, SeriesCounter, name).push(Point{T: t, V: cur - s.prevCtr[name]})
			s.prevCtr[name] = cur
		case kindGauge:
			s.get(name, SeriesGauge, name).push(Point{T: t, V: f.gaugeTotal()})
		case kindGaugeFunc:
			s.get(name, SeriesGauge, name).push(Point{T: t, V: f.fn()})
		case kindHistogram:
			cur := f.mergedState()
			d := cur.Delta(s.prevHist[name])
			s.prevHist[name] = cur
			s.get(name+"_count", SeriesHCount, name).push(Point{T: t, V: float64(d.Count())})
			s.get(name+"_sum", SeriesHSum, name).push(Point{T: t, V: d.Sum})
			s.get(name+"_p50", SeriesHP50, name).push(Point{T: t, V: d.Quantile(0.50)})
			s.get(name+"_p95", SeriesHP95, name).push(Point{T: t, V: d.Quantile(0.95)})
			s.get(name+"_p99", SeriesHP99, name).push(Point{T: t, V: d.Quantile(0.99)})
		}
	}
	s.samples++
}

func (s *Sampler) get(name, kind, metric string) *series {
	sr := s.byName[name]
	if sr == nil {
		sr = &series{name: name, kind: kind, metric: metric, buf: make([]Point, s.capacity)}
		s.byName[name] = sr
		s.order = append(s.order, sr)
	}
	return sr
}

// StartWall switches the sampler to the wall-clock domain and starts a
// goroutine sampling every interval until Stop. Sim ticks are ignored
// while the wall clock runs.
func (s *Sampler) StartWall(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.wall = true
	s.simEvery.Store(0)
	stop := make(chan struct{})
	s.stop = stop
	s.mu.Unlock()
	s.enabled.Store(true)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				s.Sample(now.UnixNano())
			}
		}
	}()
}

// Stop halts a wall-clock sampling goroutine (no-op otherwise) and
// disables the recorder, fan-out children included. Recorded series
// stay readable.
func (s *Sampler) Stop() {
	s.enabled.Store(false)
	s.mu.Lock()
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
	for _, c := range s.childrenSnapshot() {
		c.Stop()
	}
}

// Clock names used in dumps.
const (
	ClockSimPs  = "sim-ps"
	ClockWallNs = "wall-ns"
)

// SeriesDump is the exported view of one recorded series.
type SeriesDump struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Metric  string  `json:"metric"`
	Dropped int64   `json:"dropped,omitempty"`
	Points  []Point `json:"points"`
}

// Dump is the time-series artifact schema (written by -timeseries-out,
// served on /debug/timeseries, validated by telemetryck, rendered by
// xfmtop).
type Dump struct {
	Schema   int    `json:"schema"`
	Clock    string `json:"clock"`
	SimEvery int64  `json:"sim_every,omitempty"`
	Samples  int    `json:"samples"`
	// Ticks counts clock inputs seen (sim domain: refresh windows).
	Ticks  int64        `json:"ticks,omitempty"`
	Series []SeriesDump `json:"series"`
}

// DumpSchemaVersion is the current Dump schema.
const DumpSchemaVersion = 1

// Dump snapshots every recorded series. When fan-out children are
// attached (multi-sim recording), their rings are merged in: series
// are matched by name and points merged by timestamp, with the earlier
// source (parent first, then children in creation order) winning a
// timestamp collision, so every merged series stays strictly
// monotonic.
func (s *Sampler) Dump() *Dump {
	d := s.dumpOwn()
	kids := s.childrenSnapshot()
	if len(kids) == 0 {
		return d
	}
	dumps := make([]*Dump, 0, len(kids)+1)
	dumps = append(dumps, d)
	for _, c := range kids {
		dumps = append(dumps, c.dumpOwn())
	}
	return mergeDumps(dumps)
}

// dumpOwn snapshots this sampler's own rings, ignoring children.
func (s *Sampler) dumpOwn() *Dump {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := &Dump{
		Schema:  DumpSchemaVersion,
		Clock:   ClockSimPs,
		Samples: s.samples,
		Ticks:   s.ticks.Load(),
	}
	if s.wall {
		d.Clock = ClockWallNs
	} else {
		d.SimEvery = s.simEvery.Load()
	}
	for _, sr := range s.order {
		d.Series = append(d.Series, SeriesDump{
			Name: sr.name, Kind: sr.kind, Metric: sr.metric,
			Dropped: sr.dropped, Points: sr.points(),
		})
	}
	return d
}

// mergeDumps combines per-sim dumps into one artifact: Samples and
// Ticks sum, series match by name in first-seen order, and each
// series' points merge sorted by timestamp with the earlier source
// winning ties. Sources are passed in a deterministic order, so the
// merged dump is bit-reproducible whenever the inputs are.
func mergeDumps(dumps []*Dump) *Dump {
	out := &Dump{
		Schema:   DumpSchemaVersion,
		Clock:    dumps[0].Clock,
		SimEvery: dumps[0].SimEvery,
	}
	var names []string
	byName := map[string][]SeriesDump{}
	for _, d := range dumps {
		out.Samples += d.Samples
		out.Ticks += d.Ticks
		for _, sr := range d.Series {
			if _, ok := byName[sr.Name]; !ok {
				names = append(names, sr.Name)
			}
			byName[sr.Name] = append(byName[sr.Name], sr)
		}
	}
	for _, name := range names {
		srcs := byName[name]
		m := SeriesDump{Name: name, Kind: srcs[0].Kind, Metric: srcs[0].Metric}
		n := 0
		for _, sr := range srcs {
			m.Dropped += sr.Dropped
			n += len(sr.Points)
		}
		pts := make([]Point, 0, n)
		for _, sr := range srcs {
			pts = append(pts, sr.Points...)
		}
		// Stable sort keeps the earlier source's point first among equal
		// timestamps; the dedupe below then drops the later ones.
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		merged := pts[:0]
		for _, p := range pts {
			if len(merged) > 0 && merged[len(merged)-1].T == p.T {
				continue
			}
			merged = append(merged, p)
		}
		m.Points = merged
		out.Series = append(out.Series, m)
	}
	return out
}

// WriteJSON writes the dump as indented JSON.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.Dump())
}

// WriteCSV writes the dump in long format (series,t,value), one row
// per point — trivially loadable into any plotting tool and robust to
// series of unequal length.
func (s *Sampler) WriteCSV(w io.Writer) error {
	d := s.Dump()
	if _, err := io.WriteString(w, "series,t,value\n"); err != nil {
		return err
	}
	for _, sr := range d.Series {
		for _, p := range sr.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%s\n", sr.Name, p.T, promFloat(p.V)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadDump parses a time-series artifact.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("telemetry: invalid time-series dump: %w", err)
	}
	return &d, nil
}

// Index maps series names to their points for health-rule evaluation.
func (d *Dump) Index() SeriesIndex {
	idx := make(SeriesIndex, len(d.Series))
	for _, s := range d.Series {
		idx[s.Name] = s.Points
	}
	return idx
}

// familyByName returns the named family, or nil.
func (r *Registry) familyByName(name string) *family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fams[name]
}

// counterTotal sums a counter family's children (one child when
// unlabeled). Summation commutes, so map iteration order is harmless.
func (f *family) counterTotal() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := 0.0
	for _, m := range f.children {
		switch m := m.(type) {
		case *Counter:
			total += float64(m.Value())
		case *FloatCounter:
			total += m.Value()
		}
	}
	return total
}

// gaugeTotal sums a gauge family's children (for vec families like
// per-shard occupancy the sum is the meaningful fleet-wide value).
func (f *family) gaugeTotal() float64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := 0.0
	for _, m := range f.children {
		if g, ok := m.(*Gauge); ok {
			total += g.Value()
		}
	}
	return total
}

// mergedState merges the bucket states of a histogram family's
// children (same bucket layout within one family by construction).
func (f *family) mergedState() HistogramState {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out HistogramState
	for _, m := range f.children {
		h, ok := m.(*Histogram)
		if !ok {
			continue
		}
		st := h.State()
		if out.Counts == nil {
			out = st
			continue
		}
		for i := range st.Counts {
			out.Counts[i] += st.Counts[i]
		}
		out.Sum += st.Sum
	}
	return out
}

// DefaultSeriesMetrics is the curated catalogue the default sampler
// records: the windowed signals the health rules and xfmtop read. Every
// entry is deterministic under the simulated clock (no wall-time
// histograms), so sim-domain recordings are bit-identical for a fixed
// seed at any worker count.
func DefaultSeriesMetrics() []string {
	return []string{
		// Offload path volume.
		"sfm_swap_outs_total", "sfm_swap_ins_total",
		"sfm_same_filled_total", "sfm_incompressible_total",
		"xfm_offloads_total", "xfm_fallbacks_total",
		"xfm_ecc_corrected_total", "xfm_ecc_uncorrectable_total",
		// Degradation ladder and fault plane (DESIGN §10).
		"xfm_op_timeouts_total", "xfm_breaker_trips_total",
		"fault_injected_total",
		// NMA refresh-window machinery.
		"nma_windows_total", "nma_busy_windows_total",
		"nma_storm_windows_total",
		"nma_requests_submitted_total", "nma_requests_rejected_total",
		"nma_requests_completed_total",
		"nma_conditional_accesses_total", "nma_random_accesses_total",
		"nma_slots_offered_total",
		// Memory controller pressure.
		"memctrl_requests_total", "memctrl_queue_full_stalls_total",
		// Instantaneous state and derived rates.
		"xfm_degraded_mode", "xfm_quarantined_pages",
		"xfm_fallback_rate", "nma_slot_utilization",
		"nma_queue_depth", "nma_spm_used_bytes",
		"memctrl_read_queue_depth", "memctrl_write_queue_depth",
		"sfm_promotion_rate",
		// Latency and size distributions (windowed quantiles).
		"nma_offload_latency_ps", "memctrl_request_latency_ps",
		"sfm_compressed_page_bytes",
	}
}

var (
	defaultSamplerOnce sync.Once
	defaultSampler     *Sampler
)

// DefaultSampler returns the process-wide flight recorder over the
// default registry, disabled until a CLI (or test) enables it.
func DefaultSampler() *Sampler {
	defaultSamplerOnce.Do(func() {
		defaultSampler = NewSampler(defaultRegistry, DefaultSeriesCapacity)
	})
	return defaultSampler
}
