package telemetry

import (
	"reflect"
	"testing"
)

// Multi-sim recording: with fan-out enabled every simulator gets a
// private child sampler and Dump merges the per-sim rings, so no
// sample is lost to another sim's first-writer-wins timestamp.

func TestSimSamplerWithoutFanOutIsSelf(t *testing.T) {
	p := NewSampler(NewRegistry(), 16, "test_ops_total")
	if p.SimSampler() != p {
		t.Fatal("SimSampler diverged from the parent with fan-out off")
	}
}

func TestFanOutMergesChildRings(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("test_ops_total", "ops")
	p := NewSampler(reg, 16, "test_ops_total")
	p.SetSimEvery(1)
	p.Reset()
	p.SetEnabled(true)
	p.SetFanOut(true)

	a := p.SimSampler()
	b := p.SimSampler()
	if a == p || b == p || a == b {
		t.Fatal("fan-out did not hand out distinct child samplers")
	}
	if !a.Enabled() || !b.Enabled() {
		t.Fatal("children did not inherit the enabled state")
	}

	// Two sims ticking out of lockstep, with one timestamp collision
	// at t=100. The registry is shared, so each child's windowed delta
	// is relative to its own previous sample of the shared total.
	ctr.Add(3)
	a.SimTick(100) // a: (100, 3)
	ctr.Add(2)
	b.SimTick(50)  // b: (50, 5)
	b.SimTick(100) // b: (100, 0) — loses the collision to a
	a.SimTick(200) // a: (200, 2)

	if got := p.Samples(); got != 4 {
		t.Fatalf("parent Samples() = %d, want 4 (2 per child)", got)
	}

	d := p.Dump()
	if d.Samples != 4 || d.Ticks != 4 {
		t.Fatalf("merged dump samples=%d ticks=%d, want 4/4", d.Samples, d.Ticks)
	}
	if len(d.Series) != 1 || d.Series[0].Name != "test_ops_total" {
		t.Fatalf("merged series = %+v", d.Series)
	}
	want := []Point{{T: 50, V: 5}, {T: 100, V: 3}, {T: 200, V: 2}}
	if got := d.Series[0].Points; !reflect.DeepEqual(got, want) {
		t.Fatalf("merged points = %v, want %v (earlier source wins the t=100 collision)", got, want)
	}

	// Disabling the parent silences the children too.
	p.SetEnabled(false)
	ctr.Inc()
	a.SimTick(300)
	if got := p.Samples(); got != 4 {
		t.Fatalf("child sampled while parent disabled: Samples() = %d", got)
	}

	// Reset detaches children: they belong to the previous recording.
	p.Reset()
	if got := p.Samples(); got != 0 {
		t.Fatalf("Samples() = %d after Reset, want 0", got)
	}
	if d := p.Dump(); len(d.Series) != 0 {
		t.Fatalf("detached children leaked %d series into the dump", len(d.Series))
	}
}

func TestMergeDumpsPreservesKindAndDropped(t *testing.T) {
	a := &Dump{Schema: DumpSchemaVersion, Clock: ClockSimPs, SimEvery: 7, Samples: 2, Ticks: 14,
		Series: []SeriesDump{{Name: "x", Kind: SeriesGauge, Metric: "x", Dropped: 1,
			Points: []Point{{T: 1, V: 10}, {T: 3, V: 30}}}}}
	b := &Dump{Schema: DumpSchemaVersion, Clock: ClockSimPs, SimEvery: 7, Samples: 1, Ticks: 7,
		Series: []SeriesDump{{Name: "x", Kind: SeriesGauge, Metric: "x", Dropped: 2,
			Points: []Point{{T: 2, V: 20}}}}}
	m := mergeDumps([]*Dump{a, b})
	if m.Clock != ClockSimPs || m.SimEvery != 7 || m.Samples != 3 || m.Ticks != 21 {
		t.Fatalf("merged header = %+v", m)
	}
	sr := m.Series[0]
	if sr.Kind != SeriesGauge || sr.Dropped != 3 {
		t.Fatalf("merged series header = %+v", sr)
	}
	want := []Point{{T: 1, V: 10}, {T: 2, V: 20}, {T: 3, V: 30}}
	if !reflect.DeepEqual(sr.Points, want) {
		t.Fatalf("merged points = %v, want %v", sr.Points, want)
	}
}
