package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "help"); again != c {
		t.Error("re-registration should return the same counter")
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %v, want 7", g.Value())
	}
}

func TestFloatCounter(t *testing.T) {
	var c FloatCounter
	c.Add(1.5)
	c.Add(2.25)
	if c.Value() != 3.75 {
		t.Errorf("float counter = %v, want 3.75", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("reset float counter = %v, want 0", c.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "help")
	defer func() {
		if recover() == nil {
			t.Error("registering dup as gauge should panic")
		}
	}()
	r.Gauge("dup", "help")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", LinearBuckets(10, 10, 10))

	// Empty histogram: everything zero.
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}

	// Single sample: every quantile collapses onto it (the bucket
	// interpolation is clamped to the observed min/max).
	h.Observe(25)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 25 {
			t.Errorf("single-sample Quantile(%v) = %v, want 25", q, got)
		}
	}

	// NaN samples are dropped; ±Inf land in the extreme buckets.
	h.Observe(math.NaN())
	if h.Count() != 1 {
		t.Errorf("NaN sample was counted: count = %d", h.Count())
	}
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if !math.IsInf(h.Max(), 1) || !math.IsInf(h.Min(), -1) {
		t.Errorf("min/max = %v/%v, want ±Inf", h.Min(), h.Max())
	}

	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("reset histogram should be empty")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 40 || p50 > 60 {
		t.Errorf("p50 = %v, want ≈50", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90 || p99 > 100 {
		t.Errorf("p99 = %v, want ≈99", p99)
	}
	if h.Quantile(math.NaN()) != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0", h.Quantile(math.NaN()))
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("swaps_total", "Swap count.").Add(100)
	r.Gauge("depth", "Queue depth.").SetInt(0)
	r.GaugeFunc("rate", "Derived.", func() float64 { return 0.25 })
	h := r.Histogram("lat_ps", "Latency.", ExpBuckets(1, 10, 3))
	h.Observe(5)
	v := r.CounterVec("by_kind_total", "By kind.", "kind")
	v.With("read").Inc()
	v.With("write").Add(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Every sample line must carry a value — a trailing space with no
	// value is the classic float-formatting regression.
	for i, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("line %d malformed: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"swaps_total 100",
		"depth 0",
		"rate 0.25",
		`by_kind_total{kind="read"} 1`,
		`by_kind_total{kind="write"} 2`,
		`lat_ps_bucket{le="+Inf"} 1`,
		"lat_ps_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Inc()
	r.Histogram("h", "help", LinearBuckets(1, 1, 4)).Observe(2)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]interface{}
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines so
// `go test -race` proves the registration and observation paths are
// data-race free.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 8; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			c := r.Counter("shared_total", "help")
			h := r.Histogram("shared_hist", "help", ExpBuckets(1, 2, 10))
			v := r.CounterVec("shared_vec_total", "help", "k")
			for i := 0; i < 5000; i++ {
				c.Inc()
				h.Observe(float64(i % 700))
				v.With([]string{"a", "b", "c"}[i%3]).Inc()
			}
		}()
	}
	// Concurrent readers: exposition, snapshot, quantiles.
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if got := r.Counter("shared_total", "help").Value(); got != 8*5000 {
		t.Errorf("counter = %d, want %d", got, 8*5000)
	}
	if got := r.Histogram("shared_hist", "help", ExpBuckets(1, 2, 10)).Count(); got != 8*5000 {
		t.Errorf("histogram count = %d, want %d", got, 8*5000)
	}
}
