package telemetry

import (
	"testing"
)

// mkDump builds a synthetic flight-recorder dump from name → values,
// with timestamps 1..n.
func mkDump(series map[string][]float64) *Dump {
	d := &Dump{Schema: DumpSchemaVersion, Clock: ClockSimPs}
	for name, vs := range series {
		sd := SeriesDump{Name: name, Kind: SeriesGauge, Metric: name}
		for i, v := range vs {
			sd.Points = append(sd.Points, Point{T: int64(i + 1), V: v})
		}
		if len(sd.Points) > d.Samples {
			d.Samples = len(sd.Points)
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

func TestSeriesExprAggs(t *testing.T) {
	idx := mkDump(map[string][]float64{"x": {1, 2, 3, 4}}).Index()
	cases := []struct {
		agg    Agg
		window int
		want   float64
	}{
		{AggLast, 0, 4},
		{AggSum, 0, 10},
		{AggMean, 0, 2.5},
		{AggMax, 0, 4},
		{AggMin, 0, 1},
		{AggSum, 2, 7},   // windowed: last two points
		{AggMin, 2, 3},   // windowed min
		{AggSum, 99, 10}, // window larger than series: whole series
	}
	for _, c := range cases {
		v, ok := SeriesExpr("x", c.agg, c.window).Eval(idx)
		if !ok || v != c.want {
			t.Errorf("SeriesExpr(x, %v, %d) = (%g, %v), want (%g, true)", c.agg, c.window, v, ok, c.want)
		}
	}
	if _, ok := SeriesExpr("missing", AggLast, 0).Eval(idx); ok {
		t.Error("missing series evaluated as defined")
	}
}

func TestConstExpr(t *testing.T) {
	if v, ok := ConstExpr(3.5).Eval(nil); !ok || v != 3.5 {
		t.Fatalf("ConstExpr = (%g, %v), want (3.5, true)", v, ok)
	}
}

func TestAddAndRatioExprs(t *testing.T) {
	idx := mkDump(map[string][]float64{"a": {2}, "b": {6}, "z": {0}}).Index()
	if v, ok := AddExpr(SeriesExpr("a", AggLast, 0), SeriesExpr("b", AggLast, 0)).Eval(idx); !ok || v != 8 {
		t.Errorf("AddExpr = (%g, %v), want (8, true)", v, ok)
	}
	if _, ok := AddExpr(SeriesExpr("a", AggLast, 0), SeriesExpr("missing", AggLast, 0)).Eval(idx); ok {
		t.Error("AddExpr with undefined operand evaluated as defined")
	}
	if v, ok := RatioExpr(SeriesExpr("b", AggLast, 0), SeriesExpr("a", AggLast, 0)).Eval(idx); !ok || v != 3 {
		t.Errorf("RatioExpr = (%g, %v), want (3, true)", v, ok)
	}
	// Zero denominator is undefined, not +Inf: idle systems stay quiet.
	if _, ok := RatioExpr(SeriesExpr("b", AggLast, 0), SeriesExpr("z", AggLast, 0)).Eval(idx); ok {
		t.Error("RatioExpr with zero denominator evaluated as defined")
	}
}

func TestRuleCheck(t *testing.T) {
	idx := mkDump(map[string][]float64{"v": {0.7}, "guard": {0}}).Index()
	above := Rule{Name: "a", Value: SeriesExpr("v", AggLast, 0), Above: true, Threshold: 0.5, Severity: SevDegraded}
	if res := above.Check(idx); !res.Active || !res.Firing || res.Value != 0.7 {
		t.Fatalf("above rule = %+v, want active firing 0.7", res)
	}
	below := Rule{Name: "b", Value: SeriesExpr("v", AggLast, 0), Above: false, Threshold: 0.5}
	if res := below.Check(idx); res.Firing {
		t.Fatalf("below rule fired on 0.7 < 0.5: %+v", res)
	}
	// Undefined value: inactive, not firing.
	undef := Rule{Name: "u", Value: SeriesExpr("missing", AggLast, 0), Above: true}
	if res := undef.Check(idx); res.Active || res.Firing {
		t.Fatalf("undefined rule = %+v, want inactive", res)
	}
	// Guard at 0 keeps the rule inactive even though the value fires.
	guarded := above
	guarded.Guard = SeriesExpr("guard", AggLast, 0)
	if res := guarded.Check(idx); res.Active || res.Firing {
		t.Fatalf("guarded rule = %+v, want inactive", res)
	}
	guarded.Guard = SeriesExpr("v", AggLast, 0) // positive guard
	if res := guarded.Check(idx); !res.Firing {
		t.Fatalf("positively guarded rule = %+v, want firing", res)
	}
}

func TestMonitorEvaluateWorstSeverity(t *testing.T) {
	rules := []Rule{
		{Name: "deg", Value: SeriesExpr("x", AggLast, 0), Above: true, Threshold: 0, Severity: SevDegraded},
		{Name: "crit", Value: SeriesExpr("y", AggLast, 0), Above: true, Threshold: 0, Severity: SevCritical},
	}
	m := NewMonitor(rules...)
	g := &Gauge{}
	m.SetGauge(g)

	h := m.Evaluate(mkDump(map[string][]float64{"x": {1}, "y": {0}}))
	if h.Status != "DEGRADED" || h.Code != 1 || g.Value() != 1 {
		t.Fatalf("degraded verdict = %+v gauge=%g", h, g.Value())
	}
	h = m.Evaluate(mkDump(map[string][]float64{"x": {1}, "y": {1}}))
	if h.Status != "CRITICAL" || h.Code != 2 || g.Value() != 2 {
		t.Fatalf("critical verdict = %+v gauge=%g", h, g.Value())
	}
	h = m.Evaluate(mkDump(map[string][]float64{"x": {0}, "y": {0}}))
	if h.Status != "OK" || h.Code != 0 || g.Value() != 0 {
		t.Fatalf("ok verdict = %+v gauge=%g", h, g.Value())
	}
	if len(h.Checks) != 2 {
		t.Fatalf("Checks = %d, want 2", len(h.Checks))
	}
}

// healthyBase is a synthetic recording of a well-behaved run: mostly
// offloads, busy accelerator, no ECC loss, promotion in the validated
// band.
func healthyBase() map[string][]float64 {
	return map[string][]float64{
		"xfm_offloads_total":              {100, 100, 100},
		"xfm_fallbacks_total":             {2, 3, 2},
		"nma_conditional_accesses_total":  {400, 400, 400},
		"nma_random_accesses_total":       {50, 50, 50},
		"nma_slots_offered_total":         {1000, 1000, 1000},
		"nma_queue_depth":                 {4, 6, 5},
		"memctrl_queue_full_stalls_total": {0, 1, 0},
		"xfm_ecc_uncorrectable_total":     {0, 0, 0},
		"sfm_promotion_rate":              {0.74, 0.75, 0.75},
	}
}

func evalDefault(t *testing.T, series map[string][]float64) Health {
	t.Helper()
	return NewMonitor().Evaluate(mkDump(series))
}

func firing(h Health, name string) bool {
	for _, c := range h.Checks {
		if c.Rule == name {
			return c.Firing
		}
	}
	return false
}

func TestDefaultRulesScenarios(t *testing.T) {
	if h := evalDefault(t, healthyBase()); h.Status != "OK" {
		t.Fatalf("healthy run = %+v, want OK", h)
	}

	spike := healthyBase()
	spike["xfm_fallbacks_total"] = []float64{100, 150, 200}
	if h := evalDefault(t, spike); h.Status != "DEGRADED" || !firing(h, "fallback-rate-spike") {
		t.Fatalf("fallback spike = %+v, want DEGRADED via fallback-rate-spike", h)
	}

	saturated := healthyBase()
	saturated["xfm_offloads_total"] = []float64{1, 1, 1}
	saturated["xfm_fallbacks_total"] = []float64{200, 200, 200}
	if h := evalDefault(t, saturated); h.Status != "CRITICAL" || !firing(h, "fallback-rate-saturated") {
		t.Fatalf("fallback saturation = %+v, want CRITICAL", h)
	}

	// A few stray fallbacks on an idle tail (no offload volume) must
	// not read as an accelerator outage: the traffic guard holds both
	// rate rules inactive below minRateSwaps swaps per window.
	idleTail := healthyBase()
	idleTail["xfm_offloads_total"] = []float64{0, 0, 0}
	idleTail["xfm_fallbacks_total"] = []float64{0, 3, 0}
	if h := evalDefault(t, idleTail); firing(h, "fallback-rate-spike") || firing(h, "fallback-rate-saturated") {
		t.Fatalf("idle tail = %+v, want fallback rules guarded off", h)
	}

	collapse := healthyBase()
	collapse["nma_conditional_accesses_total"] = []float64{0, 0, 0}
	collapse["nma_random_accesses_total"] = []float64{0, 0, 0}
	if h := evalDefault(t, collapse); !firing(h, "slot-utilization-collapse") {
		t.Fatalf("slot collapse with queued work = %+v, want firing", h)
	}
	// Same collapse with an empty queue is benign idleness (guard).
	collapse["nma_queue_depth"] = []float64{0, 0, 0}
	if h := evalDefault(t, collapse); firing(h, "slot-utilization-collapse") {
		t.Fatalf("slot collapse on idle queue = %+v, want guarded off", h)
	}

	storm := healthyBase()
	storm["memctrl_queue_full_stalls_total"] = []float64{500, 400, 300}
	if h := evalDefault(t, storm); !firing(h, "queue-stall-storm") {
		t.Fatalf("stall storm = %+v, want firing", h)
	}

	ecc := healthyBase()
	ecc["xfm_ecc_uncorrectable_total"] = []float64{0, 1, 0}
	if h := evalDefault(t, ecc); h.Status != "CRITICAL" || !firing(h, "ecc-uncorrectable") {
		t.Fatalf("uncorrectable ECC = %+v, want CRITICAL", h)
	}

	// Degradation-ladder gauge: CPU_ONLY (3) is CRITICAL, any mode
	// above HEALTHY is DEGRADED, and HEALTHY (0) fires nothing.
	open := healthyBase()
	open["xfm_degraded_mode"] = []float64{0, 1, 3}
	if h := evalDefault(t, open); h.Status != "CRITICAL" || !firing(h, "degraded-cpu-only") {
		t.Fatalf("open breaker = %+v, want CRITICAL via degraded-cpu-only", h)
	}
	recovering := healthyBase()
	recovering["xfm_degraded_mode"] = []float64{3, 3, 2}
	if h := evalDefault(t, recovering); h.Status != "DEGRADED" || !firing(h, "degraded-recovering") ||
		firing(h, "degraded-cpu-only") {
		t.Fatalf("recovering breaker = %+v, want DEGRADED via degraded-recovering only", h)
	}
	closed := healthyBase()
	closed["xfm_degraded_mode"] = []float64{3, 2, 0}
	if h := evalDefault(t, closed); firing(h, "degraded-recovering") || firing(h, "degraded-cpu-only") {
		t.Fatalf("closed breaker = %+v, want mode rules quiet", h)
	}

	low := healthyBase()
	low["sfm_promotion_rate"] = []float64{0.2, 0.15, 0.1}
	if h := evalDefault(t, low); !firing(h, "promotion-rate-low") {
		t.Fatalf("low promotion = %+v, want firing", h)
	}
	// Promotion gauge still at its zero value: guard keeps the low-band
	// rule quiet (no workload ran).
	low["sfm_promotion_rate"] = []float64{0, 0, 0}
	if h := evalDefault(t, low); firing(h, "promotion-rate-low") {
		t.Fatalf("zero promotion = %+v, want guarded off", h)
	}

	high := healthyBase()
	high["sfm_promotion_rate"] = []float64{0.95, 0.97, 0.99}
	if h := evalDefault(t, high); !firing(h, "promotion-rate-high") {
		t.Fatalf("high promotion = %+v, want firing", h)
	}

	// Empty recording: everything inactive, verdict OK.
	if h := evalDefault(t, map[string][]float64{}); h.Status != "OK" {
		t.Fatalf("empty recording = %+v, want OK", h)
	}
}

func TestDefaultMonitorSingleton(t *testing.T) {
	m1 := DefaultMonitor()
	m2 := DefaultMonitor()
	if m1 != m2 {
		t.Fatal("DefaultMonitor not a singleton")
	}
	if len(m1.Rules()) == 0 {
		t.Fatal("default monitor has no rules")
	}
}
