package xfm

import (
	"fmt"
	"sync/atomic"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/ecc"
	"xfm/internal/fault"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/parallel"
	"xfm/internal/sfm"
	"xfm/internal/telemetry"
)

// Backend is the XFM_Backend of §6: an sfm.Backend whose swap paths
// (xfm_swap_out / xfm_swap_in) offload (de)compression to the NMA.
//
// Like the paper's emulator (§7), the data path runs in software (the
// inner CPU backend stores real compressed bytes) while the offload
// accounting — request queues, SPM occupancy, refresh-window
// scheduling, CPU fallbacks — runs through the Driver against the NMA
// timing model. CPU cycles are charged only for operations that
// actually fell back to the CPU.
type Backend struct {
	inner   sfm.Backend
	driver  *Driver
	mapp    memctrl.Mapping
	workers int // batch parallelism bound (0 = GOMAXPROCS)
	// pool runs the batch fan-outs (ECC parity math); persistent so
	// steady-state batches spin up no goroutines. workers caps each
	// Run rather than the pool width, so SetWorkers-style rebinding
	// stays cheap.
	pool *parallel.Pool

	// Lazy SPM occupancy tracking (§6): the backend assumes every
	// submitted offload still occupies the SPM until a completion-
	// counter poll (an MMIO read) proves otherwise, so the common-case
	// submission path touches no hardware registers.
	completedSeen atomic.Int64
	spmSyncs      telemetry.Counter

	// Mutation of these counters happens only on the serial submission
	// path (single-page calls and the serial phase of a batch), but
	// Stats()/ECCStats() may be called from other goroutines while a
	// batch is in flight, so every counter a snapshot reads is an
	// atomic telemetry counter.
	nextReq   int64 // serial-phase only, never read by snapshots
	offloads  telemetry.Counter
	fallbacks telemetry.Counter
	cpuCycles telemetry.FloatCounter
	codec     compress.Codec

	// Side-band ECC (§4.1): the NMA regenerates the x72 parity bytes
	// when writing data back so the host memory controller can keep
	// performing SECDED on later reads. The backend keeps the parity
	// of every stored page and verifies it on swap-in.
	eccEnabled       bool
	parity           map[sfm.PageID][]byte
	parityBytes      telemetry.Counter
	eccCorrected     telemetry.Counter
	eccUncorrectable telemetry.Counter

	// Fault plane and graceful degradation (both nil/empty unless
	// explicitly armed; the default backend pays one nil check per op).
	// inj schedules deterministic ECC bit flips on swap-in images; deg
	// is the circuit breaker (degrade.go); staging holds raw page
	// copies that back quarantine re-serves; quarantined lists pages
	// whose verification found uncorrectable words (bad-word count).
	// Like parity, staging and quarantined are touched only on the
	// serial phases of the swap paths.
	inj         *fault.Injector
	deg         *degrader
	staging     map[sfm.PageID][]byte
	quarantined map[sfm.PageID]int
}

// NewBackend builds an XFM backend. regionBytes limits the SFM region;
// the driver must cover the rank holding the region. The mapping is
// used to derive which refresh group each page's DRAM rows belong to.
func NewBackend(codec compress.Codec, regionBytes int64, driver *Driver, m memctrl.Mapping) (*Backend, error) {
	return newBackend(codec, sfm.NewCPUBackend(codec, regionBytes), regionBytes, driver, m)
}

// NewShardedBackend builds an XFM backend whose SFM store is sharded
// across nShards page tables, so SwapOutBatch/SwapInBatch run their
// (de)compression on up to workers goroutines (0 = GOMAXPROCS). This
// models the paper's per-rank NMA parallelism (§5) on the emulator's
// software datapath.
func NewShardedBackend(codec compress.Codec, regionBytes int64, nShards, workers int,
	driver *Driver, m memctrl.Mapping) (*Backend, error) {
	b, err := newBackend(codec, sfm.NewShardedBackend(codec, regionBytes, nShards, workers), regionBytes, driver, m)
	if err != nil {
		return nil, err
	}
	b.workers = workers
	return b, nil
}

func newBackend(codec compress.Codec, inner sfm.Backend, regionBytes int64,
	driver *Driver, m memctrl.Mapping) (*Backend, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := driver.Paramset(0, regionBytes); err != nil {
		return nil, err
	}
	return &Backend{
		inner:       inner,
		driver:      driver,
		mapp:        m,
		codec:       codec,
		eccEnabled:  true,
		parity:      map[sfm.PageID][]byte{},
		quarantined: map[sfm.PageID]int{},
		pool:        parallel.NewPool(0),
	}, nil
}

// SetInjector arms deterministic fault injection (nil disarms): the
// injector reaches the driver's submission path, the NMA sim's storm
// schedule, and this backend's ECC verification images.
func (b *Backend) SetInjector(in *fault.Injector) {
	b.inj = in
	b.driver.SetInjector(in)
}

// Close releases the backend's worker pool (and the inner store's,
// when it has one). Optional: idle workers only park on a channel.
func (b *Backend) Close() {
	b.pool.Close()
	if c, ok := b.inner.(interface{ Close() }); ok {
		c.Close()
	}
}

// SetECC enables or disables side-band parity regeneration; it is on
// by default (commodity servers run ECC DIMMs, §4.1).
func (b *Backend) SetECC(on bool) { b.eccEnabled = on }

// Driver returns the backend's driver.
func (b *Backend) Driver() *Driver { return b.driver }

// pageGroup derives the refresh group of the DRAM row(s) holding a
// page-aligned address. All banks refresh the same row index during a
// window and the page's two interleaved banks share one row (Fig. 6a),
// so a page maps to a single group.
func (b *Backend) pageGroup(addr int64) int {
	addr %= b.mapp.TotalBytes()
	if addr < 0 {
		addr += b.mapp.TotalBytes()
	}
	co := b.mapp.Decompose(addr)
	return b.mapp.Device.RowRefreshGroup(co.Row)
}

// localAddr places a page id in the local address space; the SFM
// region lives beyond the application pages.
func (b *Backend) localAddr(id sfm.PageID) int64 {
	return int64(id) * sfm.PageSize
}

// regionAddr places an SFM region slot: region slots follow the
// driver-configured base.
func (b *Backend) regionAddr(id sfm.PageID) int64 {
	base, size := b.driver.Region()
	if size <= 0 {
		size = sfm.PageSize
	}
	return base + (int64(id)*sfm.PageSize)%size
}

// SwapOut implements sfm.Backend: xfm_swap_out(). The cold page is
// read from its local rows (source group) and its compressed form is
// written into the SFM region (destination group). If the NMA rejects
// the request the CPU performs the compression (CPU_Fallback).
//
//xfm:hotpath
func (b *Backend) SwapOut(now dram.Ps, id sfm.PageID, data []byte) error {
	if err := b.inner.SwapOut(now, id, data); err != nil {
		return err
	}
	if b.eccEnabled {
		// Regenerate the side-band parity for the page image the NMA
		// writes back (§4.1: "the NMA calculates the parity bits and
		// stores them in the ECC DRAM chips, when writing back").
		b.parity[id] = ecc.PageParity(data)
		b.parityBytes.Add(int64(len(b.parity[id])))
	}
	if b.deg != nil {
		b.stageCopy(id, data)
	}
	b.driver.AdvanceTo(now)
	b.nextReq++
	req := nma.Request{
		ID:       b.nextReq,
		Kind:     nma.CompressOp,
		SrcGroup: b.pageGroup(b.localAddr(id)),
		DstGroup: b.pageGroup(b.regionAddr(id)),
		Arrive:   now,
	}
	b.submitOrFallback(req, nma.CompressOp)
	return nil
}

// SwapIn implements sfm.Backend: xfm_swap_in(). Demand faults
// (offload=false) always run on the CPU — "CPU_Fallback is called by
// default unless the do_offload parameter is asserted" (§6) — because
// the NMA datapath adds at least 2×tREFI of latency (Fig. 10).
// Prefetches (offload=true) go to the NMA.
//
//xfm:hotpath
func (b *Backend) SwapIn(now dram.Ps, id sfm.PageID, dst []byte, offload bool) error {
	if err := b.inner.SwapIn(now, id, dst, offload); err != nil {
		return err
	}
	if b.eccEnabled {
		if p, ok := b.parity[id]; ok {
			if b.inj != nil {
				b.injectECC(id, dst)
			}
			corrected, bad := ecc.VerifyPage(dst, p)
			b.recordECC(corrected, bad)
			delete(b.parity, id)
			if bad > 0 {
				if err := b.quarantinePage(id, bad, dst); err != nil {
					return err
				}
			}
		}
	}
	delete(b.staging, id)
	b.driver.AdvanceTo(now)
	if !offload {
		b.recordFallback(nma.DecompressOp)
		return nil
	}
	b.nextReq++
	req := nma.Request{
		ID:       b.nextReq,
		Kind:     nma.DecompressOp,
		SrcGroup: b.pageGroup(b.regionAddr(id)),
		DstGroup: b.pageGroup(b.localAddr(id)),
		Arrive:   now,
	}
	b.submitOrFallback(req, nma.DecompressOp)
	return nil
}

// submitOrFallback runs the §6 submission protocol: lazy occupancy
// check, MMIO sync when the inferred SPM bound is exhausted, then an
// MMIO write into the request queue; on rejection the CPU performs
// the operation.
// recordFallback charges one CPU-executed swap operation.
func (b *Backend) recordFallback(kind nma.OpKind) {
	b.fallbacks.Inc()
	gmFallbacks.Inc()
	var perByte float64
	if kind == nma.CompressOp {
		perByte = b.codec.Info().CompressCyclesPerByte
	} else {
		perByte = b.codec.Info().DecompressCyclesPerByte
	}
	b.cpuCycles.Add(perByte * sfm.PageSize)
}

// stageCopy keeps an uncompressed staging copy of a swapped-out page:
// the CPU-side backstop that lets a later uncorrectable ECC hit be
// re-served intact instead of surfacing data loss. Buffers recycle per
// page ID across swap cycles.
//
//xfm:allocok staging copies exist only with degradation armed (chaos runs), never in steady-state benchmarks
func (b *Backend) stageCopy(id sfm.PageID, data []byte) {
	buf := b.staging[id]
	if cap(buf) < len(data) {
		buf = make([]byte, len(data))
	}
	buf = buf[:len(data)]
	copy(buf, data)
	b.staging[id] = buf
}

// injectECC applies the chaos plan's scheduled bit flips to the page
// image read back from far memory, before parity verification. The
// draw is keyed by page ID, so which pages get hit is independent of
// swap order; multi takes precedence over single when both fire.
func (b *Backend) injectECC(id sfm.PageID, dst []byte) {
	words := len(dst) / 8
	if words == 0 {
		return
	}
	if b.inj.Hit(fault.SiteECCMulti, uint64(id)) {
		// Two flipped bits in one 64-bit word: uncorrectable under
		// SECDED (§4.1). The word index is a hash of the page ID so
		// hits spread across the page.
		w := int((uint64(id) * 0x9e3779b97f4a7c15 >> 17) % uint64(words))
		dst[w*8] ^= 0x41
		return
	}
	if b.inj.Hit(fault.SiteECCSingle, uint64(id)) {
		w := int((uint64(id) * 0xbf58476d1ce4e5b9 >> 17) % uint64(words))
		dst[w*8] ^= 0x01
	}
}

// quarantinePage handles an uncorrectable ECC verification: the page
// joins the quarantine list and, when a staging copy of the original
// bytes exists, the swap-in is re-served intact from it. Only when no
// copy is available does the caller surface data loss, as a typed
// *UncorrectableError.
//
//xfm:allocok quarantine is the uncorrectable-ECC cold path, never steady-state work
func (b *Backend) quarantinePage(id sfm.PageID, bad int, dst []byte) error {
	if _, dup := b.quarantined[id]; !dup {
		gmQuarantinedPages.Add(1)
	}
	b.quarantined[id] = bad
	if c, ok := b.staging[id]; ok && len(c) == len(dst) {
		copy(dst, c)
		gmQuarantineServed.Inc()
		return nil
	}
	return &UncorrectableError{Page: id, BadWords: bad}
}

// QuarantinedPages returns how many pages are on the quarantine list.
func (b *Backend) QuarantinedPages() int { return len(b.quarantined) }

// QuarantineServed returns how many quarantined swap-ins were re-served
// from staging copies, process-wide.
func QuarantineServed() int64 { return gmQuarantineServed.Value() }

// recordECC accumulates one page's verification result.
func (b *Backend) recordECC(corrected, bad int) {
	b.eccCorrected.Add(int64(corrected))
	gmECCCorrected.Add(int64(corrected))
	b.eccUncorrectable.Add(int64(bad))
	gmECCUncorrectable.Add(int64(bad))
}

//xfm:hotpath
func (b *Backend) submitOrFallback(req nma.Request, kind nma.OpKind) {
	d := b.deg
	if d == nil {
		// Default path: §6's stateless per-op fallback, no breaker.
		if ok, err := b.submitOnce(req); err != nil || !ok {
			b.recordFallback(kind)
			return
		}
		b.offloads.Inc()
		gmOffloads.Inc()
		return
	}
	switch Mode(d.mode.Load()) {
	case ModeCPUOnly:
		// Breaker open: skip the MMIO round trip entirely; after
		// ReprobeAfter absorbed ops, start probing with canaries.
		d.cpuOps++
		if d.cpuOps >= d.policy.ReprobeAfter {
			b.transition(ModeRecovering, req.Arrive)
		}
		b.recordFallback(kind)
		return
	case ModeRecovering:
		// Canary probe: a real op, but one failure re-opens the
		// breaker immediately instead of feeding the sliding window.
		gmCanaryProbes.Inc()
		if ok, err := b.submitOnce(req); err != nil || !ok {
			gmCanaryFailures.Inc()
			b.transition(ModeCPUOnly, req.Arrive)
			b.recordFallback(kind)
			return
		}
		d.canaryOK++
		if d.canaryOK >= d.policy.CanarySuccesses {
			b.transition(ModeHealthy, req.Arrive)
		}
		b.offloads.Inc()
		gmOffloads.Inc()
		return
	}
	ok, err := b.submitOnce(req)
	if err == ErrOpTimeout {
		gmOpTimeouts.Inc()
		if d.policy.RetryOnce {
			// Per-op deadline policy: retry once (a fresh submission
			// sequence number, so injection draws fresh), then fall
			// back to the CPU.
			gmOpRetries.Inc()
			ok, err = b.submitOnce(req)
			if err == ErrOpTimeout {
				gmOpTimeouts.Inc()
			}
		}
	}
	// Only op-deadline failures feed the breaker window: a queue
	// rejection is §6's designed backpressure path (one CPU fallback),
	// not a hardware-health signal, so sustained storms or spurious
	// queue-fulls degrade throughput without opening the breaker.
	fail := err != nil
	d.recordOutcome(fail)
	if fail {
		if d.failures >= d.policy.TripFailures {
			b.transition(ModeCPUOnly, req.Arrive)
		} else if d.failures >= d.policy.DegradeFailures {
			b.transition(ModeDegraded, req.Arrive)
		}
		b.recordFallback(kind)
		return
	}
	if Mode(d.mode.Load()) == ModeDegraded && d.failures < d.policy.DegradeFailures {
		b.transition(ModeHealthy, req.Arrive)
	}
	if !ok {
		b.recordFallback(kind)
		return
	}
	b.offloads.Inc()
	gmOffloads.Inc()
}

// submitOnce runs one §6 submission: lazy SPM occupancy check, MMIO
// sync when the inferred bound is exhausted, then the queue doorbell.
//
//xfm:hotpath
func (b *Backend) submitOnce(req nma.Request) (bool, error) {
	cfg := b.driver.Sim().Config()
	// Upper bound: every submitted-but-unobserved offload may still
	// hold a page in the SPM. When the bound says the SPM is full,
	// poll the completion counter once to shrink it.
	outstanding := b.offloads.Value() - b.completedSeen.Load()
	if (outstanding+1)*int64(cfg.PageBytes) > int64(cfg.SPMBytes) {
		b.completedSeen.Store(b.driver.PollCompletions())
		b.spmSyncs.Inc()
		gmSPMSyncs.Inc()
	}
	return b.driver.Submit(req)
}

// Contains implements sfm.Backend.
func (b *Backend) Contains(id sfm.PageID) bool { return b.inner.Contains(id) }

// Compact implements sfm.Backend: xfm_compact() shifts compressed
// pages with memcpys (§6).
func (b *Backend) Compact() int64 { return b.inner.Compact() }

// Stats implements sfm.Backend. CPU cycles reflect only fallback work;
// offloaded operations cost no host cycles. The snapshot is safe to
// take from any goroutine while batches are in flight: every field it
// reads is an atomic telemetry counter, and the inner store's Stats
// are themselves synchronized when the store is sharded.
func (b *Backend) Stats() sfm.BackendStats {
	s := b.inner.Stats()
	s.CPUCycles = b.cpuCycles.Value()
	s.Offloads = b.offloads.Value()
	s.Fallbacks = b.fallbacks.Value()
	return s
}

// SPMSyncs returns how many MMIO occupancy resynchronizations the lazy
// tracking needed.
func (b *Backend) SPMSyncs() int64 { return b.spmSyncs.Value() }

// ECCStats returns (parity bytes generated, words corrected, words
// uncorrectable) for the side-band ECC path. Like Stats, it is a
// race-free snapshot under concurrent batch swaps.
func (b *Backend) ECCStats() (parityBytes, corrected, uncorrectable int64) {
	return b.parityBytes.Value(), b.eccCorrected.Value(), b.eccUncorrectable.Value()
}

var _ sfm.Backend = (*Backend)(nil)

// String describes the backend configuration.
func (b *Backend) String() string {
	cfg := b.driver.Sim().Config()
	return fmt.Sprintf("xfm.Backend{codec=%s spm=%dKiB acc/tRFC=%d}",
		b.codec.Name(), cfg.SPMBytes>>10, cfg.AccessesPerTRFC)
}
