package xfm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
)

func newTestBackend(t *testing.T) *Backend {
	t.Helper()
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	d := NewDriver(sim)
	m := memctrl.SkylakeMapping(4, 2, dram.Device32Gb)
	b, err := NewBackend(compress.NewLZFast(), 1<<30, d, m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func page(fill byte) []byte {
	p := make([]byte, sfm.PageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestDriverParamset(t *testing.T) {
	d := NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb)))
	if _, err := d.Submit(nma.Request{}); err == nil {
		t.Error("Submit before Paramset succeeded")
	}
	if err := d.Paramset(0, -1); err == nil {
		t.Error("negative size accepted")
	}
	if err := d.Paramset(-1, 100); err == nil {
		t.Error("negative base accepted")
	}
	if err := d.Paramset(4096, 1<<20); err != nil {
		t.Fatal(err)
	}
	base, size := d.Region()
	if base != 4096 || size != 1<<20 {
		t.Errorf("region = (%d,%d)", base, size)
	}
	_, writes, ioctls := d.MMIOStats()
	if writes != 2 || ioctls != 1 {
		t.Errorf("MMIO writes=%d ioctls=%d, want 2/1", writes, ioctls)
	}
}

func TestDriverSPCapacityCountsMMIO(t *testing.T) {
	d := NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb)))
	free := d.SPCapacity()
	if free != 2<<20 {
		t.Errorf("empty SPM free = %d, want 2 MiB", free)
	}
	reads, _, _ := d.MMIOStats()
	if reads != 1 {
		t.Errorf("MMIO reads = %d, want 1", reads)
	}
}

func TestBackendSwapOutInRoundTrip(t *testing.T) {
	b := newTestBackend(t)
	in := page('Q')
	if err := b.SwapOut(0, 1, in); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(1) {
		t.Fatal("page not stored")
	}
	dst := make([]byte, sfm.PageSize)
	if err := b.SwapIn(dram.Millisecond, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, in) {
		t.Fatal("round trip corrupted data")
	}
}

func TestBackendOffloadsSwapOuts(t *testing.T) {
	b := newTestBackend(t)
	for i := 0; i < 10; i++ {
		if err := b.SwapOut(dram.Ps(i)*dram.Microsecond, sfm.PageID(i+1), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.Offloads != 10 {
		t.Errorf("offloads = %d, want 10", st.Offloads)
	}
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 at idle", st.Fallbacks)
	}
	if st.CPUCycles != 0 {
		t.Errorf("CPU cycles charged for offloaded work: %v", st.CPUCycles)
	}
}

func TestBackendDemandSwapInUsesCPU(t *testing.T) {
	b := newTestBackend(t)
	b.SwapOut(0, 1, page('x'))
	dst := make([]byte, sfm.PageSize)
	if err := b.SwapIn(dram.Second, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	// The swap-out offloaded; the demand swap-in fell back to CPU.
	if st.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1 (demand swap-in)", st.Fallbacks)
	}
	if st.CPUCycles <= 0 {
		t.Error("demand swap-in charged no CPU cycles")
	}
}

func TestBackendPrefetchSwapInOffloads(t *testing.T) {
	b := newTestBackend(t)
	b.SwapOut(0, 1, page('x'))
	dst := make([]byte, sfm.PageSize)
	if err := b.SwapIn(dram.Second, 1, dst, true); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Offloads != 2 {
		t.Errorf("offloads = %d, want 2 (swap-out + prefetch)", st.Offloads)
	}
}

func TestBackendFallsBackWhenQueueFull(t *testing.T) {
	cfg := nma.DefaultConfig(dram.Device32Gb)
	cfg.QueueDepth = 2
	sim := nma.NewSim(cfg)
	d := NewDriver(sim)
	m := memctrl.SkylakeMapping(4, 2, dram.Device32Gb)
	b, err := NewBackend(compress.NewLZFast(), 1<<30, d, m)
	if err != nil {
		t.Fatal(err)
	}
	// Submit many swap-outs at the same instant: the queue (depth 2)
	// overflows and the rest run on the CPU.
	for i := 0; i < 10; i++ {
		if err := b.SwapOut(0, sfm.PageID(i+1), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.Offloads != 2 {
		t.Errorf("offloads = %d, want 2", st.Offloads)
	}
	if st.Fallbacks != 8 {
		t.Errorf("fallbacks = %d, want 8", st.Fallbacks)
	}
	if st.CPUCycles <= 0 {
		t.Error("fallback work charged no CPU cycles")
	}
}

func TestBackendAdvancesNMATime(t *testing.T) {
	b := newTestBackend(t)
	b.SwapOut(0, 1, page('a'))
	// A swap-out far in the future forces the driver to step windows,
	// completing the earlier offload.
	b.SwapOut(dram.Second, 2, page('b'))
	if got := b.Driver().NMAStats().Completed; got < 1 {
		t.Errorf("completed offloads = %d, want ≥ 1 after 1 s", got)
	}
}

func TestSplitGatherInverse(t *testing.T) {
	for _, dimms := range []int{1, 2, 4} {
		l := DefaultLayout(dimms)
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			pg := make([]byte, 4096)
			rng.Read(pg)
			parts := l.Split(pg)
			if len(parts) != dimms {
				return false
			}
			return bytes.Equal(l.Gather(parts), pg)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%d DIMMs: %v", dimms, err)
		}
	}
}

func TestSplitChunkAssignment(t *testing.T) {
	l := DefaultLayout(2)
	pg := make([]byte, 1024)
	for i := range pg {
		pg[i] = byte(i / 256) // chunk index
	}
	parts := l.Split(pg)
	// Chunks 0,2 → DIMM 0; chunks 1,3 → DIMM 1.
	if parts[0][0] != 0 || parts[0][256] != 2 {
		t.Errorf("DIMM 0 got chunks %d,%d; want 0,2", parts[0][0], parts[0][256])
	}
	if parts[1][0] != 1 || parts[1][256] != 3 {
		t.Errorf("DIMM 1 got chunks %d,%d; want 1,3", parts[1][0], parts[1][256])
	}
}

func TestWindowShrinksWithDIMMs(t *testing.T) {
	if w := DefaultLayout(1).WindowBytes(4096); w != 4096 {
		t.Errorf("1-DIMM window = %d, want 4096", w)
	}
	if w := DefaultLayout(2).WindowBytes(4096); w != 2048 {
		t.Errorf("2-DIMM window = %d, want 2048", w)
	}
	if w := DefaultLayout(4).WindowBytes(4096); w != 1024 {
		t.Errorf("4-DIMM window = %d, want 1024 (§6)", w)
	}
}

func TestCompressPageRoundTrip(t *testing.T) {
	newCodec := func(w int) compress.Codec { return compress.NewXDeflateWindow(w) }
	rng := rand.New(rand.NewSource(8))
	pg := make([]byte, 4096)
	for i := range pg {
		pg[i] = byte(rng.Intn(16))
	}
	for _, dimms := range []int{1, 2, 4} {
		l := DefaultLayout(dimms)
		cl := l.CompressPage(pg, newCodec)
		out, err := l.DecompressPage(cl, newCodec, 4096)
		if err != nil {
			t.Fatalf("%d DIMMs: %v", dimms, err)
		}
		if !bytes.Equal(out, pg) {
			t.Fatalf("%d DIMMs: round trip mismatch", dimms)
		}
		if cl.TotalReserved() < cl.TotalStored() {
			t.Errorf("%d DIMMs: reserved %d < stored %d", dimms, cl.TotalReserved(), cl.TotalStored())
		}
		if cl.FragmentationBytes() < 0 {
			t.Errorf("%d DIMMs: negative fragmentation", dimms)
		}
	}
}

func TestMultiChannelRatioDegradesGracefully(t *testing.T) {
	// Fig. 8: interleaved multi-DIMM compression keeps most of the
	// in-order *space savings* (the paper measures 86.2% retained on
	// average for 4 DIMMs). Check savings retention ≥ 75% on
	// structured data.
	pg := bytes.Repeat([]byte("log: user=alice action=GET path=/idx code=200\n"), 90)[:4096]
	newCodec := func(w int) compress.Codec { return compress.NewXDeflateWindow(w) }
	r1 := DefaultLayout(1).CompressPage(pg, newCodec).TotalReserved()
	r4 := DefaultLayout(4).CompressPage(pg, newCodec).TotalReserved()
	sav1 := 1 - float64(r1)/float64(len(pg))
	sav4 := 1 - float64(r4)/float64(len(pg))
	if sav1 <= 0 {
		t.Fatalf("1-DIMM config did not compress: reserved %d", r1)
	}
	if retention := sav4 / sav1; retention < 0.75 {
		t.Errorf("4-DIMM retains %.1f%% of 1-DIMM savings (reserved %d vs %d), want ≥ 75%%",
			retention*100, r4, r1)
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := (MultiChannelLayout{DIMMs: 0, InterleaveBytes: 256}).Validate(); err == nil {
		t.Error("0 DIMMs accepted")
	}
	if err := (MultiChannelLayout{DIMMs: 2, InterleaveBytes: 0}).Validate(); err == nil {
		t.Error("0 interleave accepted")
	}
	if err := DefaultLayout(4).Validate(); err != nil {
		t.Error(err)
	}
}

func TestGatherPanicsOnWrongPartCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gather with wrong part count did not panic")
		}
	}()
	DefaultLayout(2).Gather([][]byte{{1}})
}

func BenchmarkBackendSwapOut(b *testing.B) {
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	d := NewDriver(sim)
	m := memctrl.SkylakeMapping(4, 2, dram.Device32Gb)
	back, err := NewBackend(compress.NewLZFast(), 1<<30, d, m)
	if err != nil {
		b.Fatal(err)
	}
	pg := page('b')
	dst := make([]byte, sfm.PageSize)
	for i := 0; i < b.N; i++ {
		id := sfm.PageID(i + 1)
		now := dram.Ps(i) * dram.Microsecond
		if err := back.SwapOut(now, id, pg); err != nil {
			b.Fatal(err)
		}
		if err := back.SwapIn(now, id, dst, false); err != nil {
			b.Fatal(err)
		}
	}
}

func TestECCParityPath(t *testing.T) {
	b := newTestBackend(t)
	in := page('e')
	if err := b.SwapOut(0, 1, in); err != nil {
		t.Fatal(err)
	}
	pb, corrected, bad := b.ECCStats()
	if pb != 512 {
		t.Errorf("parity bytes = %d, want 512 per 4 KiB page", pb)
	}
	dst := make([]byte, sfm.PageSize)
	if err := b.SwapIn(dram.Millisecond, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	_, corrected, bad = b.ECCStats()
	if corrected != 0 || bad != 0 {
		t.Errorf("clean round trip reported corrected=%d bad=%d", corrected, bad)
	}
	if !bytes.Equal(dst, in) {
		t.Fatal("content corrupted")
	}
}

func TestECCDisabled(t *testing.T) {
	b := newTestBackend(t)
	b.SetECC(false)
	b.SwapOut(0, 1, page('x'))
	if pb, _, _ := b.ECCStats(); pb != 0 {
		t.Errorf("parity generated while ECC disabled: %d bytes", pb)
	}
}

func TestLazySPMTrackingSyncsOnlyAtBound(t *testing.T) {
	cfg := nma.DefaultConfig(dram.Device32Gb)
	cfg.SPMBytes = 16 * cfg.PageBytes // bound reached after 15 submissions
	sim := nma.NewSim(cfg)
	d := NewDriver(sim)
	b, err := NewBackend(compress.NewLZFast(), 1<<30, d,
		memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		t.Fatal(err)
	}
	// Ten offloads: bound (10+1)×4K < 64K, so no MMIO occupancy reads.
	for i := 0; i < 10; i++ {
		if err := b.SwapOut(dram.Ps(i)*dram.Microsecond, sfm.PageID(i+1), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if b.SPMSyncs() != 0 {
		t.Errorf("syncs = %d before the inferred bound filled, want 0", b.SPMSyncs())
	}
	// Eight more crosses the inferred bound (outstanding+1 > 16):
	// at least one poll happens.
	for i := 10; i < 18; i++ {
		if err := b.SwapOut(dram.Ps(i)*dram.Microsecond, sfm.PageID(i+1), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if b.SPMSyncs() == 0 {
		t.Error("no occupancy sync despite crossing the inferred bound")
	}
}
