package xfm

import (
	"sync"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
)

// TestStatsConcurrentWithBatch reads every snapshot API while sharded
// batch swaps are in flight. Run under -race this proves the satellite
// guarantee: Stats/ECCStats/SPMSyncs/MMIOStats are safe to call from a
// monitoring goroutine at any time.
func TestStatsConcurrentWithBatch(t *testing.T) {
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	b, err := NewShardedBackend(compress.NewLZFast(), 1<<30, 4, 4,
		NewDriver(sim), memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		t.Fatal(err)
	}

	const rounds, batch = 20, 64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := b.Stats()
				if st.SwapOuts < 0 || st.Fallbacks > st.SwapOuts+st.SwapIns {
					t.Errorf("implausible snapshot: %+v", st)
					return
				}
				b.ECCStats()
				b.SPMSyncs()
				b.Driver().MMIOStats()
			}
		}()
	}

	now := 50 * dram.Microsecond
	for r := 0; r < rounds; r++ {
		outs := make([]sfm.PageOut, batch)
		for i := range outs {
			id := sfm.PageID(r*batch + i)
			outs[i] = sfm.PageOut{ID: id, Data: compressiblePage(id)}
		}
		if err := sfm.FirstError(b.SwapOutBatch(now, outs)); err != nil {
			t.Fatal(err)
		}
		ins := make([]sfm.PageIn, batch)
		for i := range ins {
			ins[i] = sfm.PageIn{ID: outs[i].ID, Dst: make([]byte, sfm.PageSize)}
		}
		if err := sfm.FirstError(b.SwapInBatch(now+dram.Microsecond, ins, true)); err != nil {
			t.Fatal(err)
		}
		now += 2 * dram.Microsecond
	}
	close(stop)
	readers.Wait()

	st := b.Stats()
	if st.SwapOuts != rounds*batch || st.SwapIns != rounds*batch {
		t.Errorf("swap counts = %d/%d, want %d each", st.SwapOuts, st.SwapIns, rounds*batch)
	}
}
