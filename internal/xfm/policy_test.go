package xfm

import "testing"

func testPolicy() OffloadPolicy {
	return OffloadPolicy{
		NMADecompressLatencyPs: 8_000_000, // ≥ 2×tREFI
		CPUDecompressLatencyPs: 20_000,
		PageBytes:              4096,
		CompressedBytes:        2048,
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := testPolicy().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testPolicy()
	bad.CompressedBytes = 5000
	if bad.Validate() == nil {
		t.Error("compressed > page accepted")
	}
	bad = testPolicy()
	bad.NMADecompressLatencyPs = 0
	if bad.Validate() == nil {
		t.Error("zero latency accepted")
	}
}

func TestIOAmplificationShape(t *testing.T) {
	p := testPolicy()
	// Using the whole page with no eviction: amplification is the
	// compressed share (< 1): the CPU path is efficient.
	if a := p.IOAmplification(4096, 0); a >= 1 {
		t.Errorf("full use, cached: amplification %.2f, want < 1", a)
	}
	// Using 64 bytes of the page: heavy amplification.
	if a := p.IOAmplification(64, 0); a <= 1 {
		t.Errorf("sparse use: amplification %.2f, want > 1", a)
	}
	// LLC contention (page evicted before use) raises amplification
	// even for full use (§3.2: "if there is contention on the LLC or
	// the use-distance ... is long, the I/O amplification ratio
	// increases").
	if a := p.IOAmplification(4096, 1); a <= 1 {
		t.Errorf("evicted before use: amplification %.2f, want > 1", a)
	}
	if p.IOAmplification(4096, 1) <= p.IOAmplification(4096, 0) {
		t.Error("eviction did not raise amplification")
	}
}

func TestShouldOffloadLatencyCriticalPath(t *testing.T) {
	p := testPolicy()
	// Demand fault (latency-critical): the slow NMA must not be used
	// even when amplification favors it — matches §6's CPU_Fallback
	// default on swap-in.
	if p.ShouldOffload(64, 1, true) {
		t.Error("latency-critical access offloaded to a slower NMA")
	}
	// Prefetch (not latency-critical): offload when traffic is saved.
	if !p.ShouldOffload(64, 1, false) {
		t.Error("prefetch with high amplification not offloaded")
	}
	// Prefetch of a page that will be fully used from cache: CPU path
	// moves fewer bytes (compressed only), keep it.
	if p.ShouldOffload(4096, 0, false) {
		t.Error("offloaded despite amplification below 1")
	}
}

func TestShouldOffloadFastNMA(t *testing.T) {
	p := testPolicy()
	p.NMADecompressLatencyPs = 10_000 // faster than CPU
	if !p.ShouldOffload(64, 1, true) {
		t.Error("fast NMA not used on latency-critical path with savings")
	}
}
