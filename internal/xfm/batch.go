package xfm

import (
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/ecc"
	"xfm/internal/nma"
	"xfm/internal/sfm"
)

// Batched swap paths. The XFM backends split each batch into a
// parallel phase (pure per-page work: (de)compression via the inner
// store, ECC parity math) and a serial phase (driver submissions,
// parity-map and slot bookkeeping) executed in input order. Because
// the serial phase runs in the same order a page-at-a-time loop would
// use, and driver.AdvanceTo is idempotent at a fixed timestamp, batch
// results, stats, and NMA accounting are identical to serial calls.

// SwapOutBatch implements sfm.Backend: the inner store compresses the
// batch (in parallel when the inner store is sharded), ECC parity is
// computed on every core, and the offload submissions replay serially.
func (b *Backend) SwapOutBatch(now dram.Ps, pages []sfm.PageOut) []error {
	hBatchPages.Observe(float64(len(pages)))
	errs := b.inner.SwapOutBatch(now, pages)
	var pars [][]byte
	if b.eccEnabled {
		// §4.1: the NMA regenerates side-band parity when writing back.
		// Parity generation is pure per-page math — fan it out.
		pars = make([][]byte, len(pages))
		b.pool.Run(len(pages), b.workers, func(_, i int) {
			if errs[i] == nil {
				pars[i] = ecc.PageParity(pages[i].Data)
			}
		})
	}
	b.driver.AdvanceTo(now)
	for i, p := range pages {
		if errs[i] != nil {
			continue
		}
		if b.eccEnabled {
			b.parity[p.ID] = pars[i]
			b.parityBytes.Add(int64(len(pars[i])))
		}
		if b.deg != nil {
			b.stageCopy(p.ID, p.Data)
		}
		b.nextReq++
		req := nma.Request{
			ID:       b.nextReq,
			Kind:     nma.CompressOp,
			SrcGroup: b.pageGroup(b.localAddr(p.ID)),
			DstGroup: b.pageGroup(b.regionAddr(p.ID)),
			Arrive:   now,
		}
		b.submitOrFallback(req, nma.CompressOp)
	}
	return errs
}

// SwapInBatch implements sfm.Backend: the inner store decompresses the
// batch, parity verification fans out (the parity map sees only reads
// during the parallel phase), and driver accounting replays serially.
func (b *Backend) SwapInBatch(now dram.Ps, pages []sfm.PageIn, offload bool) []error {
	hBatchPages.Observe(float64(len(pages)))
	errs := b.inner.SwapInBatch(now, pages, offload)
	type verify struct {
		corrected, bad int
		checked        bool
	}
	var vs []verify
	if b.eccEnabled {
		if b.inj != nil {
			// Draw and apply the scheduled bit flips serially, in input
			// order, before the verification fan-out: the draws are
			// keyed by page ID but budget accounting is call-ordered,
			// and determinism of budgeted plans must not depend on
			// worker scheduling.
			for i := range pages {
				if errs[i] != nil {
					continue
				}
				if _, ok := b.parity[pages[i].ID]; ok {
					b.injectECC(pages[i].ID, pages[i].Dst)
				}
			}
		}
		vs = make([]verify, len(pages))
		b.pool.Run(len(pages), b.workers, func(_, i int) {
			if errs[i] != nil {
				return
			}
			if p, ok := b.parity[pages[i].ID]; ok {
				c, bad := ecc.VerifyPage(pages[i].Dst, p)
				vs[i] = verify{corrected: c, bad: bad, checked: true}
			}
		})
	}
	b.driver.AdvanceTo(now)
	for i, p := range pages {
		if errs[i] != nil {
			continue
		}
		if b.eccEnabled && vs[i].checked {
			b.recordECC(vs[i].corrected, vs[i].bad)
			delete(b.parity, p.ID)
			if vs[i].bad > 0 {
				if err := b.quarantinePage(p.ID, vs[i].bad, p.Dst); err != nil {
					errs[i] = err
					continue
				}
			}
		}
		delete(b.staging, p.ID)
		if !offload {
			b.recordFallback(nma.DecompressOp)
			continue
		}
		b.nextReq++
		req := nma.Request{
			ID:       b.nextReq,
			Kind:     nma.DecompressOp,
			SrcGroup: b.pageGroup(b.regionAddr(p.ID)),
			DstGroup: b.pageGroup(b.localAddr(p.ID)),
			Arrive:   now,
		}
		b.submitOrFallback(req, nma.DecompressOp)
	}
	return errs
}

// SwapOutBatch implements sfm.Backend: the multi-channel
// split-and-compress of every page runs in parallel (it touches no
// shared state), then slots are placed and offloads submitted in input
// order.
func (g *GroupBackend) SwapOutBatch(now dram.Ps, pages []sfm.PageOut) []error {
	errs := make([]error, len(pages))
	cls := make([]CompressedLayout, len(pages))
	g.pool.Run(len(pages), g.workers, func(_, i int) {
		data := pages[i].Data
		if len(data) != sfm.PageSize {
			errs[i] = fmt.Errorf("xfm: page %d has %d bytes, want %d", pages[i].ID, len(data), sfm.PageSize)
			return
		}
		cls[i] = g.layout.CompressPage(data, g.newCodec)
	})
	for i, p := range pages {
		if errs[i] != nil {
			continue
		}
		errs[i] = g.placeCompressed(now, p.ID, cls[i])
	}
	return errs
}

// SwapInBatch implements sfm.Backend: per-DIMM decompression and
// gathering run in parallel (the slot map sees only reads), then slot
// removal and offload submission replay in input order. A page that
// appears twice in one batch decompresses twice but only the first
// occurrence succeeds, matching a serial loop.
func (g *GroupBackend) SwapInBatch(now dram.Ps, pages []sfm.PageIn, offload bool) []error {
	errs := make([]error, len(pages))
	cls := make([]CompressedLayout, len(pages))
	done := make([]bool, len(pages))
	g.pool.Run(len(pages), g.workers, func(_, i int) {
		p := pages[i]
		if len(p.Dst) != sfm.PageSize {
			errs[i] = fmt.Errorf("xfm: dst has %d bytes, want %d", len(p.Dst), sfm.PageSize)
			return
		}
		cl, ok := g.slots[p.ID]
		if !ok {
			errs[i] = sfm.ErrNotFound
			return
		}
		if _, err := g.layout.DecompressPageInto(p.Dst[:0], cl, g.newCodec, sfm.PageSize); err != nil {
			errs[i] = err
			return
		}
		cls[i] = cl
		done[i] = true
	})
	for i, p := range pages {
		if !done[i] {
			continue
		}
		if _, ok := g.slots[p.ID]; !ok {
			// An earlier batch element already swapped this id in.
			errs[i] = sfm.ErrNotFound
			continue
		}
		g.finishSwapIn(now, p.ID, cls[i], offload)
	}
	return errs
}
