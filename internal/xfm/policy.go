package xfm

import "fmt"

// Offload decision policy (§3.2). Offloading decompression to memory
// is NOT beneficial when (1) near-memory decompression latency exceeds
// on-CPU decompression, or (2) the page's decompressed bytes are used
// by the application before being written back — i.e. the I/O
// amplification of letting the CPU read the compressed copy is small.
//
// "We define the I/O amplification ratio for accessing SFM as the
// ratio of compressed bytes accessed over the memory channel to the
// total number of decompressed bytes used by the application."

// OffloadPolicy holds the platform parameters for the decision.
type OffloadPolicy struct {
	// NMADecompressLatencyPs is the end-to-end near-memory
	// decompression latency for one page (≥ 2×tREFI, Fig. 10).
	NMADecompressLatencyPs int64
	// CPUDecompressLatencyPs is the on-CPU decompression latency for
	// one page.
	CPUDecompressLatencyPs int64
	// PageBytes is the page size; CompressedBytes the typical
	// compressed size.
	PageBytes       int
	CompressedBytes int
}

// Validate checks the policy parameters.
func (p OffloadPolicy) Validate() error {
	if p.NMADecompressLatencyPs <= 0 || p.CPUDecompressLatencyPs <= 0 {
		return fmt.Errorf("xfm: non-positive latency in policy")
	}
	if p.PageBytes <= 0 || p.CompressedBytes <= 0 || p.CompressedBytes > p.PageBytes {
		return fmt.Errorf("xfm: bad sizes in policy")
	}
	return nil
}

// IOAmplification returns the §3.2 ratio for an access that will use
// usedBytes of the decompressed page, assuming the CPU path moves the
// compressed copy over the channel once and the used bytes once
// (writeback of unused bytes is what drives the ratio above the
// compressed share when LLC contention forces eviction; the
// evictedShare parameter models that: 0 = decompressed page stays
// cached, 1 = the whole page round-trips to DRAM before use).
func (p OffloadPolicy) IOAmplification(usedBytes int, evictedShare float64) float64 {
	if usedBytes <= 0 {
		return 1
	}
	channelBytes := float64(p.CompressedBytes) +
		evictedShare*2*float64(p.PageBytes) // write back + re-read
	return channelBytes / float64(usedBytes)
}

// ShouldOffload reports whether near-memory decompression pays off for
// an access that is not latency-critical (prefetch). Both §3.2
// conditions must hold: the NMA must not be slower than the CPU when
// latency matters (latencyCritical), and the saved channel traffic —
// amplification above 1 — must be positive.
func (p OffloadPolicy) ShouldOffload(usedBytes int, evictedShare float64, latencyCritical bool) bool {
	if latencyCritical && p.NMADecompressLatencyPs > p.CPUDecompressLatencyPs {
		return false // condition (1): near-memory latency too high
	}
	// Condition (2): the extra bytes the CPU path would move must
	// exceed the bytes the application actually uses.
	return p.IOAmplification(usedBytes, evictedShare) > 1
}
