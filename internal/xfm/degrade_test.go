package xfm

import (
	"bytes"
	"errors"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/fault"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
)

func chaosBackend(t *testing.T, spec string, seed int64) (*Backend, *fault.Injector) {
	t.Helper()
	b := newTestBackend(t)
	plan, err := fault.ParseSpec(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	b.SetInjector(inj)
	return b, inj
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	// Every submission stalls until the budget runs out, then the NMA
	// is healthy again: the breaker must trip to CPU_ONLY, re-probe
	// with canaries, and close.
	b, _ := chaosBackend(t, "nma-stall=1:40", 1)
	pol := DegradePolicy{
		Window: 8, TripFailures: 4, DegradeFailures: 2,
		ReprobeAfter: 8, CanarySuccesses: 3, RetryOnce: true,
	}
	b.EnableDegradation(pol)
	if b.Mode() != ModeHealthy {
		t.Fatalf("initial mode = %v", b.Mode())
	}
	trefi := b.Driver().Sim().Config().Timings.TREFI
	now := dram.Ps(0)
	sawCPUOnly, sawRecovering := false, false
	for i := 0; i < 400; i++ {
		now += trefi
		id := sfm.PageID(i)
		if err := b.SwapOut(now, id, page(byte(i))); err != nil {
			t.Fatal(err)
		}
		switch b.Mode() {
		case ModeCPUOnly:
			sawCPUOnly = true
		case ModeRecovering:
			sawRecovering = true
		}
	}
	if !sawCPUOnly {
		t.Fatal("breaker never tripped to CPU_ONLY")
	}
	if !sawRecovering {
		t.Fatal("breaker never probed with canaries")
	}
	trips, recoveries := b.BreakerStats()
	if trips < 1 || recoveries < 1 {
		t.Fatalf("trips=%d recoveries=%d, want >=1 each", trips, recoveries)
	}
	if b.Mode() != ModeHealthy {
		t.Fatalf("end mode = %v, want HEALTHY after the stall budget drains", b.Mode())
	}
	// Healthy again: offloads flow.
	if off := b.Stats().Offloads; off == 0 {
		t.Fatal("no offloads after recovery")
	}
}

func TestRetryOnceAbsorbsIsolatedTimeouts(t *testing.T) {
	// Probability low enough that stalls are isolated: with RetryOnce
	// the retry draw (a fresh submit sequence number) almost always
	// passes, so no failures reach the window and the breaker stays
	// closed.
	b, _ := chaosBackend(t, "nma-stall=0.05", 7)
	b.EnableDegradation(DefaultDegradePolicy())
	trefi := b.Driver().Sim().Config().Timings.TREFI
	now := dram.Ps(0)
	for i := 0; i < 300; i++ {
		now += trefi
		if err := b.SwapOut(now, sfm.PageID(i), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	trips, _ := b.BreakerStats()
	if trips != 0 {
		t.Fatalf("isolated 5%% stalls tripped the breaker %d times", trips)
	}
	if gmOpRetries.Value() == 0 {
		t.Fatal("no retries recorded despite injected stalls")
	}
}

func TestUncorrectableTypedError(t *testing.T) {
	// Multi-bit flips on every page, no degradation armed: swap-in
	// must fail with the typed, errors.Is-able error.
	b, _ := chaosBackend(t, "ecc-multi=1", 3)
	if err := b.SwapOut(0, 9, page('Z')); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, sfm.PageSize)
	err := b.SwapIn(dram.Millisecond, 9, dst, false)
	if err == nil {
		t.Fatal("uncorrectable flip survived verification")
	}
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("errors.Is(ErrUncorrectable) false for %v", err)
	}
	var ue *UncorrectableError
	if !errors.As(err, &ue) {
		t.Fatalf("errors.As(*UncorrectableError) false for %v", err)
	}
	if ue.Page != 9 || ue.BadWords < 1 {
		t.Fatalf("typed error carries page=%d bad=%d", ue.Page, ue.BadWords)
	}
}

func TestQuarantineReservesFromStaging(t *testing.T) {
	// Same flips, but with degradation armed the staging copy makes
	// the swap-in lossless and the page lands in quarantine.
	b, _ := chaosBackend(t, "ecc-multi=1", 3)
	b.EnableDegradation(DefaultDegradePolicy())
	servedBefore := QuarantineServed()
	orig := page('Q')
	orig[17] = 0xAB
	if err := b.SwapOut(0, 11, orig); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, sfm.PageSize)
	if err := b.SwapIn(dram.Millisecond, 11, dst, false); err != nil {
		t.Fatalf("quarantine should re-serve, got %v", err)
	}
	if !bytes.Equal(dst, orig) {
		t.Fatal("re-served page differs from the swapped-out original")
	}
	if b.QuarantinedPages() != 1 {
		t.Fatalf("QuarantinedPages = %d, want 1", b.QuarantinedPages())
	}
	if QuarantineServed() != servedBefore+1 {
		t.Fatal("quarantine serve not counted")
	}
}

func TestECCSingleBitFlipsAreCorrected(t *testing.T) {
	b, _ := chaosBackend(t, "ecc-single=1", 5)
	orig := page('S')
	if err := b.SwapOut(0, 21, orig); err != nil {
		t.Fatal(err)
	}
	_, correctedBefore, _ := b.ECCStats()
	dst := make([]byte, sfm.PageSize)
	if err := b.SwapIn(dram.Millisecond, 21, dst, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, orig) {
		t.Fatal("single-bit flip not corrected in place")
	}
	_, corrected, bad := b.ECCStats()
	if corrected <= correctedBefore || bad != 0 {
		t.Fatalf("corrected=%d bad=%d, want corrected>0 bad=0", corrected, bad)
	}
}

func TestBatchQuarantineMatchesSerial(t *testing.T) {
	// The batched swap-in path must quarantine and re-serve exactly
	// like the serial path.
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	d := NewDriver(sim)
	m := memctrl.SkylakeMapping(4, 2, dram.Device32Gb)
	b, err := NewShardedBackend(compress.NewLZFast(), 1<<30, 4, 2, d, m)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	plan, err := fault.ParseSpec("ecc-multi=0.5", 11)
	if err != nil {
		t.Fatal(err)
	}
	b.SetInjector(fault.NewInjector(plan))
	b.EnableDegradation(DefaultDegradePolicy())

	const n = 64
	outs := make([]sfm.PageOut, n)
	origs := make([][]byte, n)
	for i := range outs {
		origs[i] = page(byte(i * 7))
		origs[i][i%sfm.PageSize] = 0xEE
		outs[i] = sfm.PageOut{ID: sfm.PageID(i), Data: origs[i]}
	}
	for i, err := range b.SwapOutBatch(dram.Millisecond, outs) {
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	ins := make([]sfm.PageIn, n)
	dsts := make([][]byte, n)
	for i := range ins {
		dsts[i] = make([]byte, sfm.PageSize)
		ins[i] = sfm.PageIn{ID: sfm.PageID(i), Dst: dsts[i]}
	}
	for i, err := range b.SwapInBatch(2*dram.Millisecond, ins, true) {
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	for i := range dsts {
		if !bytes.Equal(dsts[i], origs[i]) {
			t.Fatalf("page %d lost data through batched quarantine", i)
		}
	}
	if b.QuarantinedPages() == 0 {
		t.Fatal("p=0.5 multi-bit flips quarantined nothing across 64 pages")
	}
}

func TestDriverQueueFullInjection(t *testing.T) {
	b, inj := chaosBackend(t, "queue-full=1:10", 1)
	trefi := b.Driver().Sim().Config().Timings.TREFI
	now := dram.Ps(0)
	for i := 0; i < 20; i++ {
		now += trefi
		if err := b.SwapOut(now, sfm.PageID(i), page(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := inj.Injected(fault.SiteQueueFull); got != 10 {
		t.Fatalf("queue-full injections = %d, want the budget of 10", got)
	}
	s := b.Stats()
	if s.Fallbacks < 10 {
		t.Fatalf("fallbacks = %d, want >= 10 (one per spurious rejection)", s.Fallbacks)
	}
}
