package xfm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
)

func compressiblePage(id sfm.PageID) []byte {
	rng := rand.New(rand.NewSource(int64(id) + 1))
	p := make([]byte, 0, sfm.PageSize)
	for len(p) < sfm.PageSize {
		tok := byte('a' + rng.Intn(8))
		run := 4 + rng.Intn(24)
		for i := 0; i < run && len(p) < sfm.PageSize; i++ {
			p = append(p, tok)
		}
	}
	return p
}

func batchIDs(n int) []sfm.PageID {
	ids := make([]sfm.PageID, n)
	for i := range ids {
		ids[i] = sfm.PageID(i * 3)
	}
	return ids
}

// TestBackendBatchMatchesSerial drives two identically configured XFM
// backends — one page at a time, one batched — and requires identical
// stats, ECC accounting, and restored bytes.
func TestBackendBatchMatchesSerial(t *testing.T) {
	mk := func() *Backend {
		sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
		b, err := NewBackend(compress.NewLZFast(), 1<<30,
			NewDriver(sim), memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial, batched := mk(), mk()

	ids := batchIDs(48)
	outs := make([]sfm.PageOut, len(ids))
	for i, id := range ids {
		outs[i] = sfm.PageOut{ID: id, Data: compressiblePage(id)}
	}
	now := 50 * dram.Microsecond
	for _, p := range outs {
		if err := serial.SwapOut(now, p.ID, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sfm.FirstError(batched.SwapOutBatch(now, outs)); err != nil {
		t.Fatal(err)
	}
	if s, b := serial.Stats(), batched.Stats(); s != b {
		t.Fatalf("post-swap-out stats diverge:\nserial  %+v\nbatched %+v", s, b)
	}

	for _, offload := range []bool{false, true} {
		t.Run(fmt.Sprintf("offload=%v", offload), func(t *testing.T) {
			serial, batched := mk(), mk()
			if err := sfm.FirstError(serial.SwapOutBatch(now, outs)); err != nil {
				t.Fatal(err)
			}
			if err := sfm.FirstError(batched.SwapOutBatch(now, outs)); err != nil {
				t.Fatal(err)
			}
			later := now + 10*dram.Microsecond
			sIns := make([]sfm.PageIn, len(ids))
			bIns := make([]sfm.PageIn, len(ids))
			for i, id := range ids {
				sIns[i] = sfm.PageIn{ID: id, Dst: make([]byte, sfm.PageSize)}
				bIns[i] = sfm.PageIn{ID: id, Dst: make([]byte, sfm.PageSize)}
			}
			for _, p := range sIns {
				if err := serial.SwapIn(later, p.ID, p.Dst, offload); err != nil {
					t.Fatal(err)
				}
			}
			if err := sfm.FirstError(batched.SwapInBatch(later, bIns, offload)); err != nil {
				t.Fatal(err)
			}
			for i := range ids {
				if !bytes.Equal(sIns[i].Dst, outs[i].Data) || !bytes.Equal(bIns[i].Dst, outs[i].Data) {
					t.Fatalf("page %d corrupted", ids[i])
				}
			}
			if s, b := serial.Stats(), batched.Stats(); s != b {
				t.Fatalf("post-swap-in stats diverge:\nserial  %+v\nbatched %+v", s, b)
			}
			sp, sc, su := serial.ECCStats()
			bp, bc, bu := batched.ECCStats()
			if sp != bp || sc != bc || su != bu {
				t.Fatalf("ECC stats diverge: serial (%d,%d,%d) batched (%d,%d,%d)",
					sp, sc, su, bp, bc, bu)
			}
		})
	}
}

// TestShardedXFMBackendRoundTrip exercises the sharded-inner
// constructor end to end.
func TestShardedXFMBackendRoundTrip(t *testing.T) {
	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	b, err := NewShardedBackend(compress.NewXDeflate(), 1<<30, 8, 4,
		NewDriver(sim), memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		t.Fatal(err)
	}
	ids := batchIDs(64)
	outs := make([]sfm.PageOut, len(ids))
	for i, id := range ids {
		outs[i] = sfm.PageOut{ID: id, Data: compressiblePage(id)}
	}
	now := 50 * dram.Microsecond
	if err := sfm.FirstError(b.SwapOutBatch(now, outs)); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().StoredPages; got != int64(len(ids)) {
		t.Fatalf("StoredPages = %d, want %d", got, len(ids))
	}
	ins := make([]sfm.PageIn, len(ids))
	for i, id := range ids {
		ins[i] = sfm.PageIn{ID: id, Dst: make([]byte, sfm.PageSize)}
	}
	if err := sfm.FirstError(b.SwapInBatch(now+10*dram.Microsecond, ins, true)); err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if !bytes.Equal(ins[i].Dst, outs[i].Data) {
			t.Fatalf("page %d corrupted", ids[i])
		}
	}
}

// TestGroupBatchMatchesSerial does the serial-vs-batch comparison for
// the multi-channel backend.
func TestGroupBatchMatchesSerial(t *testing.T) {
	mk := func() *GroupBackend {
		drivers := []*Driver{
			NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb))),
			NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb))),
		}
		g, err := NewGroupBackend(func(w int) compress.Codec {
			return compress.NewXDeflateWindow(w)
		}, 1<<30, drivers, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	serial, batched := mk(), mk()
	batched.SetWorkers(4)

	ids := batchIDs(32)
	outs := make([]sfm.PageOut, len(ids))
	for i, id := range ids {
		outs[i] = sfm.PageOut{ID: id, Data: compressiblePage(id)}
	}
	now := 50 * dram.Microsecond
	for _, p := range outs {
		if err := serial.SwapOut(now, p.ID, p.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sfm.FirstError(batched.SwapOutBatch(now, outs)); err != nil {
		t.Fatal(err)
	}
	if s, b := serial.Stats(), batched.Stats(); s != b {
		t.Fatalf("post-swap-out stats diverge:\nserial  %+v\nbatched %+v", s, b)
	}
	if s, b := serial.FragmentationBytes(), batched.FragmentationBytes(); s != b {
		t.Fatalf("fragmentation diverges: serial %d batched %d", s, b)
	}

	later := now + 10*dram.Microsecond
	sIns := make([]sfm.PageIn, len(ids))
	bIns := make([]sfm.PageIn, len(ids))
	for i, id := range ids {
		sIns[i] = sfm.PageIn{ID: id, Dst: make([]byte, sfm.PageSize)}
		bIns[i] = sfm.PageIn{ID: id, Dst: make([]byte, sfm.PageSize)}
	}
	for _, p := range sIns {
		if err := serial.SwapIn(later, p.ID, p.Dst, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := sfm.FirstError(batched.SwapInBatch(later, bIns, true)); err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if !bytes.Equal(sIns[i].Dst, outs[i].Data) || !bytes.Equal(bIns[i].Dst, outs[i].Data) {
			t.Fatalf("page %d corrupted", ids[i])
		}
	}
	if s, b := serial.Stats(), batched.Stats(); s != b {
		t.Fatalf("post-swap-in stats diverge:\nserial  %+v\nbatched %+v", s, b)
	}
}

// TestGroupBatchDuplicateID: a page appearing twice in one batch
// behaves like a serial loop — first occurrence wins.
func TestGroupBatchDuplicateID(t *testing.T) {
	drivers := []*Driver{NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb)))}
	g, err := NewGroupBackend(func(w int) compress.Codec {
		return compress.NewLZFastWindow(w)
	}, 1<<30, drivers, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		t.Fatal(err)
	}
	pg := compressiblePage(9)
	errs := g.SwapOutBatch(0, []sfm.PageOut{{ID: 9, Data: pg}, {ID: 9, Data: pg}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if errs[1] != sfm.ErrExists {
		t.Fatalf("duplicate swap out: err = %v, want ErrExists", errs[1])
	}
	ins := []sfm.PageIn{
		{ID: 9, Dst: make([]byte, sfm.PageSize)},
		{ID: 9, Dst: make([]byte, sfm.PageSize)},
	}
	errs = g.SwapInBatch(0, ins, false)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if errs[1] != sfm.ErrNotFound {
		t.Fatalf("duplicate swap in: err = %v, want ErrNotFound", errs[1])
	}
	if !bytes.Equal(ins[0].Dst, pg) {
		t.Fatal("page corrupted")
	}
}

// TestSplitIntoGatherInto checks the scratch-backed split/gather agree
// with the allocating versions and invert each other.
func TestSplitIntoGatherInto(t *testing.T) {
	for _, d := range []int{1, 2, 4} {
		layout := DefaultLayout(d)
		pg := compressiblePage(sfm.PageID(d))
		want := layout.Split(pg)
		s := compress.GetScratch()
		got := layout.SplitInto(s.Parts(d), pg)
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("%d DIMMs: SplitInto part %d differs from Split", d, i)
			}
		}
		back := layout.GatherInto(nil, got)
		if !bytes.Equal(back, pg) {
			t.Fatalf("%d DIMMs: GatherInto did not invert SplitInto", d)
		}
		s.Release()
	}
}

// TestDecompressPageInto matches DecompressPage and reuses dst.
func TestDecompressPageInto(t *testing.T) {
	layout := DefaultLayout(4)
	newCodec := func(w int) compress.Codec { return compress.NewXDeflateWindow(w) }
	pg := compressiblePage(77)
	cl := layout.CompressPage(pg, newCodec)
	want, err := layout.DecompressPage(cl, newCodec, sfm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, sfm.PageSize)
	got, err := layout.DecompressPageInto(dst[:0], cl, newCodec, sfm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) || !bytes.Equal(got, pg) {
		t.Fatal("DecompressPageInto differs from DecompressPage")
	}
	if &got[0] != &dst[0] {
		t.Error("DecompressPageInto reallocated despite sufficient capacity")
	}
}
