// Package xfm is the core library of this reproduction: the XFM
// driver (MMIO register interface to the near-memory accelerator), the
// XFM backend (an sfm.Backend that offloads page compression and
// decompression to the NMA during DRAM refresh windows, falling back
// to the CPU under back-pressure), and the multi-channel data layout
// (§6, Fig. 9).
package xfm

import (
	"errors"
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/fault"
	"xfm/internal/nma"
	"xfm/internal/telemetry"
)

// errNotInitialized is preallocated: Submit sits on the swap-out hot
// path and must not construct an error per rejected call.
var errNotInitialized = errors.New("xfm: driver not initialized with Paramset")

// Driver models the XFM_Driver (§6): "primitives for interacting with
// XFM hardware via MMIO operations to internal registers", exposing
// the SP_Capacity_Register and the Compress_Request_Queue. In Linux
// these are reached through ioctl() on a character device; here the
// ioctl surface is the exported method set.
type Driver struct {
	sim *nma.Sim

	regionBase  int64
	regionBytes int64
	paramSet    bool

	// MMIO round trips are the control-path cost of every offload;
	// atomic telemetry counters make MMIOStats a race-free snapshot and
	// feed the process-wide xfm_mmio_* metrics.
	mmioReads  telemetry.Counter
	mmioWrites telemetry.Counter
	ioctls     telemetry.Counter

	// Fault injection (nil unless a chaos plan is armed). submitSeq
	// serializes submissions so each Submit — including the backend's
	// retry of a stalled op — draws a fresh, deterministic injection
	// decision. Submissions are serial by design (the batch paths
	// replay them in input order), so the sequence is reproducible.
	inj       *fault.Injector
	submitSeq uint64
}

// mmioRead charges one register read.
func (d *Driver) mmioRead() {
	d.mmioReads.Inc()
	gmMMIOReads.Inc()
}

// mmioWrite charges n register writes.
func (d *Driver) mmioWrite(n int64) {
	d.mmioWrites.Add(n)
	gmMMIOWrites.Add(n)
}

// NewDriver builds a driver over one NMA rank simulator.
func NewDriver(sim *nma.Sim) *Driver {
	return &Driver{sim: sim}
}

// SetInjector arms fault injection on the driver and its NMA sim (nil
// disarms): submissions can stall past their deadline or bounce off a
// spuriously full queue, and the sim's refresh windows can be starved
// by storms.
func (d *Driver) SetInjector(in *fault.Injector) {
	d.inj = in
	d.sim.SetInjector(in)
}

// Paramset configures the SFM region's base offset and size in
// physical memory via MMIO writes to internal configuration registers
// (§6 "Initialization ... xfm_paramset()").
func (d *Driver) Paramset(base, size int64) error {
	if size <= 0 {
		return fmt.Errorf("xfm: non-positive region size %d", size)
	}
	if base < 0 {
		return fmt.Errorf("xfm: negative region base %d", base)
	}
	d.ioctls.Inc()
	gmIoctls.Inc()
	d.mmioWrite(2)
	d.regionBase, d.regionBytes = base, size
	d.paramSet = true
	return nil
}

// Region returns the configured SFM region.
func (d *Driver) Region() (base, size int64) { return d.regionBase, d.regionBytes }

// SPCapacity reads the SP_Capacity_Register: the free bytes in the
// ScratchPad Memory. The read is an MMIO round trip, so callers track
// occupancy lazily and only sync when their inferred bound hits zero
// (§6).
func (d *Driver) SPCapacity() int {
	d.mmioRead()
	return d.sim.Config().SPMBytes - d.sim.SPMUsed()
}

// QueueFree reads the free depth of the Compress_Request_Queue.
func (d *Driver) QueueFree() int {
	d.mmioRead()
	return d.sim.Config().QueueDepth - d.sim.QueueLen()
}

// PollCompletions reads the completion counter register: the total
// number of offloads the NMA has finished. The backend uses the delta
// against its own submission count to maintain its lazy upper bound on
// SPM occupancy without per-operation synchronization (§6).
func (d *Driver) PollCompletions() int64 {
	d.mmioRead()
	return d.sim.Stats().Completed
}

// Submit pushes one offload request into the Compress_Request_Queue
// with an MMIO write. It returns false when the hardware rejected the
// request and the caller must run the operation on the CPU; a
// (false, ErrOpTimeout) return means the queue accepted the doorbell
// but the op blew its completion deadline (injected stalls model this
// — the op is treated as never having run).
//
// Both injected faults fire before the sim sees the request, so a
// stalled or spuriously rejected op leaves no trace in the NMA
// accounting — exactly like hardware that dropped the op on the floor.
func (d *Driver) Submit(req nma.Request) (bool, error) {
	if !d.paramSet {
		return false, errNotInitialized
	}
	d.mmioWrite(1)
	if d.inj != nil {
		d.submitSeq++
		if d.inj.Hit(fault.SiteNMAStall, d.submitSeq) {
			return false, ErrOpTimeout
		}
		if d.inj.Hit(fault.SiteQueueFull, d.submitSeq) {
			return false, nil
		}
	}
	return d.sim.Submit(req), nil
}

// AdvanceTo steps the NMA's refresh windows until the window clock
// passes now; the emulator harness calls this as simulated time
// advances. Idle stretches fast-forward in O(1).
func (d *Driver) AdvanceTo(now dram.Ps) {
	d.sim.AdvanceTo(now)
}

// NMAStats returns the underlying accelerator statistics.
func (d *Driver) NMAStats() nma.Stats { return d.sim.Stats() }

// MMIOStats returns (reads, writes, ioctls) counts, the cost of the
// control path.
func (d *Driver) MMIOStats() (reads, writes, ioctls int64) {
	return d.mmioReads.Value(), d.mmioWrites.Value(), d.ioctls.Value()
}

// Sim exposes the NMA simulator (experiments inspect it directly).
func (d *Driver) Sim() *nma.Sim { return d.sim }
