package xfm

import (
	"fmt"

	"xfm/internal/compress"
)

// Multi-channel mode (§6, Fig. 9): on a server with channel
// interleaving, a logically contiguous 4 KiB page is physically
// scattered across DIMMs at the channel interleave granularity
// (256 B). Each XFM DIMM compresses only the chunks it holds — the
// "out of order compressed data layout" of Fig. 8 — and the
// compressed pieces are placed at the *same offset* in every DIMM's
// SFM region, trading internal fragmentation for a design where the
// host can address all pieces with a single offset.

// MultiChannelLayout describes an XFM multi-channel configuration.
type MultiChannelLayout struct {
	// DIMMs is the number of XFM memory modules the page is spread
	// over (Fig. 8 evaluates 1, 2, and 4).
	DIMMs int
	// InterleaveBytes is the channel interleave granularity (256 B on
	// Skylake).
	InterleaveBytes int
}

// DefaultLayout returns the paper's reference layout for n DIMMs:
// 256 B interleaving.
func DefaultLayout(n int) MultiChannelLayout {
	return MultiChannelLayout{DIMMs: n, InterleaveBytes: 256}
}

// Validate checks the layout.
func (l MultiChannelLayout) Validate() error {
	if l.DIMMs < 1 {
		return fmt.Errorf("xfm: layout needs at least 1 DIMM, got %d", l.DIMMs)
	}
	if l.InterleaveBytes < 1 {
		return fmt.Errorf("xfm: non-positive interleave %d", l.InterleaveBytes)
	}
	return nil
}

// WindowBytes returns the per-DIMM compression window for a page of
// pageBytes: the share of the page a single DIMM sees (4 KiB → 2 KiB
// → 1 KiB for 1/2/4 DIMMs, §6).
func (l MultiChannelLayout) WindowBytes(pageBytes int) int {
	return pageBytes / l.DIMMs
}

// Split partitions a page into per-DIMM buffers: chunk i of the page
// (InterleaveBytes long) goes to DIMM (i mod DIMMs), preserving chunk
// order within each DIMM (the reordered data of Fig. 9b).
func (l MultiChannelLayout) Split(page []byte) [][]byte {
	parts := make([][]byte, l.DIMMs)
	for i := range parts {
		parts[i] = make([]byte, 0, len(page)/l.DIMMs+l.InterleaveBytes)
	}
	return l.SplitInto(parts, page)
}

// SplitInto is Split appending into caller-provided part buffers (one
// per DIMM, each typically length 0 with retained capacity — e.g. from
// compress.Scratch.Parts). The hot path uses it to stage the
// interleave split without allocating.
func (l MultiChannelLayout) SplitInto(parts [][]byte, page []byte) [][]byte {
	if len(parts) != l.DIMMs {
		panic(fmt.Sprintf("xfm: SplitInto got %d parts, layout has %d DIMMs", len(parts), l.DIMMs)) //xfm:ignore hotpath-alloc panic guard on layout misuse; Sprintf runs only when panicking
	}
	for off, i := 0, 0; off < len(page); off, i = off+l.InterleaveBytes, i+1 {
		end := off + l.InterleaveBytes
		if end > len(page) {
			end = len(page)
		}
		d := i % l.DIMMs
		parts[d] = append(parts[d], page[off:end]...)
	}
	return parts
}

// Gather reassembles a page from per-DIMM buffers produced by Split.
// It is the inverse of Split for any page whose length is a multiple
// of InterleaveBytes.
func (l MultiChannelLayout) Gather(parts [][]byte) []byte {
	var total int
	for _, p := range parts {
		total += len(p)
	}
	return l.GatherInto(make([]byte, 0, total), parts)
}

// GatherInto is Gather appending into page (typically a reused buffer
// resliced to length 0).
func (l MultiChannelLayout) GatherInto(page []byte, parts [][]byte) []byte {
	if len(parts) != l.DIMMs {
		panic(fmt.Sprintf("xfm: Gather got %d parts, layout has %d DIMMs", len(parts), l.DIMMs)) //xfm:ignore hotpath-alloc panic guard on layout misuse; Sprintf runs only when panicking
	}
	// Real layouts interleave over 1-4 DIMMs; keep the cursor array on
	// the stack so GatherInto stays allocation-free.
	var offbuf [8]int
	var offsets []int
	if l.DIMMs <= len(offbuf) {
		offsets = offbuf[:l.DIMMs]
	} else {
		offsets = make([]int, l.DIMMs)
	}
	for i := 0; ; i++ {
		d := i % l.DIMMs
		off := offsets[d]
		if off >= len(parts[d]) {
			break
		}
		end := off + l.InterleaveBytes
		if end > len(parts[d]) {
			end = len(parts[d])
		}
		page = append(page, parts[d][off:end]...)
		offsets[d] = end
	}
	return page
}

// CompressedLayout is the result of compressing one page in
// multi-channel mode.
type CompressedLayout struct {
	// Parts holds each DIMM's compressed buffer.
	Parts [][]byte
	// SlotBytes is the per-DIMM space reserved: because all pieces
	// are placed at the same offset in every DIMM's region (§6), each
	// DIMM reserves the size of the *largest* piece.
	SlotBytes int
}

// TotalStored returns the actual compressed payload bytes.
func (c CompressedLayout) TotalStored() int {
	n := 0
	for _, p := range c.Parts {
		n += len(p)
	}
	return n
}

// TotalReserved returns the space consumed including same-offset
// internal fragmentation: DIMMs × SlotBytes.
func (c CompressedLayout) TotalReserved() int {
	return len(c.Parts) * c.SlotBytes
}

// FragmentationBytes returns the internal fragmentation the
// same-offset placement costs.
func (c CompressedLayout) FragmentationBytes() int {
	return c.TotalReserved() - c.TotalStored()
}

// CompressPage compresses a page in multi-channel mode with the given
// codec constructor, which receives the per-DIMM window size (the
// codec's match window shrinks with the page share each DIMM sees).
// The interleave split is staged in pooled scratch; only the returned
// compressed parts are allocated (they are stored durably).
func (l MultiChannelLayout) CompressPage(page []byte, newCodec func(window int) compress.Codec) CompressedLayout {
	s := compress.GetScratch()
	defer s.Release()
	parts := l.SplitInto(s.Parts(l.DIMMs), page)
	window := l.WindowBytes(len(page))
	if window < 1 {
		window = 1
	}
	codec := newCodec(window) //xfm:ignore hotpath-alloc codec constructor is a configuration seam; codecs reuse pooled scratch, allocs/op pinned by the batch benchmarks
	out := CompressedLayout{Parts: make([][]byte, len(parts))}
	for i, p := range parts {
		out.Parts[i] = codec.Compress(nil, p)
		if len(out.Parts[i]) > out.SlotBytes {
			out.SlotBytes = len(out.Parts[i])
		}
	}
	return out
}

// DecompressPage reverses CompressPage.
func (l MultiChannelLayout) DecompressPage(c CompressedLayout, newCodec func(window int) compress.Codec, pageBytes int) ([]byte, error) {
	return l.DecompressPageInto(make([]byte, 0, pageBytes), c, newCodec, pageBytes)
}

// DecompressPageInto is DecompressPage appending the reassembled page
// into dst (typically a reused buffer resliced to length 0). The
// per-DIMM decompressed parts are staged in pooled scratch, so the
// only allocation on a warmed path is dst's own growth.
func (l MultiChannelLayout) DecompressPageInto(dst []byte, c CompressedLayout, newCodec func(window int) compress.Codec, pageBytes int) ([]byte, error) {
	codec := newCodec(l.WindowBytes(pageBytes)) //xfm:ignore hotpath-alloc codec constructor is a configuration seam; codecs reuse pooled scratch, allocs/op pinned by the batch benchmarks
	s := compress.GetScratch()
	defer s.Release()
	parts := s.Parts(len(c.Parts))
	for i, p := range c.Parts {
		out, err := codec.Decompress(parts[i], p)
		if err != nil {
			return dst, err
		}
		parts[i] = out
	}
	if len(parts) != l.DIMMs {
		return dst, fmt.Errorf("xfm: layout has %d DIMMs, compressed page has %d parts", l.DIMMs, len(parts)) //xfm:ignore hotpath-alloc corrupt-page error path, not steady-state
	}
	return l.GatherInto(dst, parts), nil
}
