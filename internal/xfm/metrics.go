package xfm

import "xfm/internal/telemetry"

// Process-wide XFM metrics: the control-path cost (MMIO round trips,
// ioctls, lazy SPM resyncs) and the offload-vs-fallback split across
// every backend in the process. xfm_fallback_rate is derived at export
// time; it is the §7 number that decides whether the NMA absorbed the
// swap traffic.
var (
	gmMMIOReads = telemetry.NewCounter("xfm_mmio_reads_total",
		"Driver MMIO register reads (SP capacity, queue depth, completion polls).")
	gmMMIOWrites = telemetry.NewCounter("xfm_mmio_writes_total",
		"Driver MMIO register writes (request submissions, configuration).")
	gmIoctls = telemetry.NewCounter("xfm_ioctls_total",
		"Driver ioctl-surface calls (xfm_paramset and friends).")
	gmSPMSyncs = telemetry.NewCounter("xfm_spm_syncs_total",
		"Completion-counter polls forced by the lazy SPM occupancy bound.")
	gmOffloads = telemetry.NewCounter("xfm_offloads_total",
		"Swap operations the NMA accepted for offload.")
	gmFallbacks = telemetry.NewCounter("xfm_fallbacks_total",
		"Swap operations executed by the CPU (demand faults and NMA back-pressure).")
	gmECCCorrected = telemetry.NewCounter("xfm_ecc_corrected_total",
		"Side-band ECC words corrected on swap-in verification.")
	gmECCUncorrectable = telemetry.NewCounter("xfm_ecc_uncorrectable_total",
		"Side-band ECC words with uncorrectable errors on swap-in verification.")
	hBatchPages = telemetry.NewHistogram("xfm_batch_pages",
		"Pages per SwapOutBatch/SwapInBatch call through an XFM backend.",
		telemetry.ExpBuckets(1, 2, 13))

	// Degradation ladder (degrade.go). The mode gauge is the health
	// monitor's primary signal: 0 HEALTHY, 1 DEGRADED, 2 RECOVERING,
	// 3 CPU_ONLY. With several backends in one process the gauge
	// reflects the most recent transition; per-backend state is exact
	// via Backend.Mode().
	gmDegradedMode = telemetry.NewGauge("xfm_degraded_mode",
		"Current degradation mode (0 HEALTHY, 1 DEGRADED, 2 RECOVERING, 3 CPU_ONLY).")
	gmModeTransitions = telemetry.NewCounter("xfm_mode_transitions_total",
		"Degradation-ladder mode transitions across all backends.")
	gmBreakerTrips = telemetry.NewCounter("xfm_breaker_trips_total",
		"Circuit-breaker trips to CPU_ONLY (N submit failures inside the sliding window).")
	gmBreakerRecoveries = telemetry.NewCounter("xfm_breaker_recoveries_total",
		"Breaker closes: canary probes proved the NMA healthy again.")
	gmOpTimeouts = telemetry.NewCounter("xfm_op_timeouts_total",
		"Offload submissions that blew their per-op deadline (ErrOpTimeout).")
	gmOpRetries = telemetry.NewCounter("xfm_op_retries_total",
		"Timed-out submissions retried once before falling back to the CPU.")
	gmCanaryProbes = telemetry.NewCounter("xfm_canary_probes_total",
		"Real ops routed to the NMA as canaries while RECOVERING.")
	gmCanaryFailures = telemetry.NewCounter("xfm_canary_failures_total",
		"Canary probes that failed and re-opened the breaker.")

	// ECC quarantine (§4.1 integrity + graceful degradation): pages
	// whose side-band verification found uncorrectable words.
	gmQuarantinedPages = telemetry.NewGauge("xfm_quarantined_pages",
		"Pages currently quarantined after uncorrectable ECC verification.")
	gmQuarantineServed = telemetry.NewCounter("xfm_quarantine_served_total",
		"Quarantined swap-ins re-served intact from the CPU staging copy.")
)

func init() {
	telemetry.NewGaugeFunc("xfm_fallback_rate",
		"CPU fallbacks over all swap operations (fallbacks / (offloads + fallbacks)).",
		func() float64 {
			off, fb := gmOffloads.Value(), gmFallbacks.Value()
			if off+fb == 0 {
				return 0
			}
			return float64(fb) / float64(off+fb)
		})
}
