package xfm

import (
	"errors"
	"fmt"

	"xfm/internal/sfm"
)

// ErrUncorrectable is the errors.Is target for uncorrectable side-band
// ECC verification failures (§4.1): more than one flipped bit in a
// 64-bit word defeats SECDED.
var ErrUncorrectable = errors.New("xfm: uncorrectable ECC words")

// ErrOpTimeout is the per-op deadline error for a submitted offload
// the NMA accepted but never completed in time (an injected stall, or
// real hardware wedging). It is a static sentinel — Submit sits on the
// swap hot path and must not construct an error per rejection — and
// the backend's policy on seeing it is retry once, then CPU fallback.
var ErrOpTimeout = errors.New("xfm: offload op deadline exceeded")

// UncorrectableError reports which page failed ECC verification and
// how many words were uncorrectable. The struct is plain data: no fmt
// call happens until Error() renders it, so constructing one on the
// swap-in path allocates only the (cold, error-path) struct itself and
// needs no hotpath-alloc suppression.
type UncorrectableError struct {
	Page     sfm.PageID
	BadWords int
}

// Error implements error.
func (e *UncorrectableError) Error() string {
	return fmt.Sprintf("xfm: page %d has %d uncorrectable ECC words", e.Page, e.BadWords)
}

// Is makes errors.Is(err, ErrUncorrectable) match any UncorrectableError.
func (e *UncorrectableError) Is(target error) bool {
	return target == ErrUncorrectable
}
