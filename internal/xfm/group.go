package xfm

import (
	"fmt"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/parallel"
	"xfm/internal/sfm"
)

// GroupBackend is XFM operating in multi-channel mode (§6, Fig. 9): a
// logically contiguous page is physically interleaved across several
// XFM DIMMs; each DIMM's NMA compresses only the chunks it holds
// (with a correspondingly smaller window), and every DIMM places its
// piece at the *same offset* within its SFM region, so the host
// addresses a compressed page with a single offset. The price is
// internal fragmentation: each DIMM reserves the size of the largest
// piece.
type GroupBackend struct {
	layout  MultiChannelLayout
	drivers []*Driver
	mapp    memctrl.Mapping

	newCodec func(window int) compress.Codec
	codec    compress.Codec // window-limited instance used per part

	// Same-offset slot store: id → per-DIMM compressed parts.
	slots map[sfm.PageID]CompressedLayout
	// perDIMMRegion limits each DIMM's reserved bytes.
	perDIMMRegion int64
	reservedBytes int64 // per DIMM (identical across DIMMs by design)

	nextReq   int64
	offloads  int64
	fallbacks int64
	cpuCycles float64
	workers   int            // batch parallelism bound (0 = GOMAXPROCS)
	pool      *parallel.Pool // persistent batch fan-out workers

	stats groupStats
}

// Close releases the backend's worker pool goroutines. Optional: idle
// workers only park on a channel.
func (g *GroupBackend) Close() { g.pool.Close() }

// SetWorkers bounds the goroutines SwapOutBatch/SwapInBatch use for
// (de)compression (0, the default, means GOMAXPROCS).
func (g *GroupBackend) SetWorkers(n int) { g.workers = n }

type groupStats struct {
	swapOuts, swapIns int64
	storedBytes       int64 // actual compressed payload across DIMMs
	fragBytes         int64 // same-offset fragmentation across DIMMs
	storedPages       int64
}

// NewGroupBackend builds a multi-channel backend over the given
// drivers (one per DIMM). newCodec builds a window-limited codec for
// the per-DIMM share of the page. perDIMMRegion limits each DIMM's
// SFM region.
func NewGroupBackend(newCodec func(window int) compress.Codec, perDIMMRegion int64,
	drivers []*Driver, m memctrl.Mapping) (*GroupBackend, error) {
	if len(drivers) == 0 {
		return nil, fmt.Errorf("xfm: group needs at least one driver")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	layout := DefaultLayout(len(drivers))
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	for _, d := range drivers {
		if err := d.Paramset(0, perDIMMRegion); err != nil {
			return nil, err
		}
	}
	return &GroupBackend{
		layout:        layout,
		drivers:       drivers,
		mapp:          m,
		newCodec:      newCodec,
		codec:         newCodec(layout.WindowBytes(sfm.PageSize)),
		slots:         map[sfm.PageID]CompressedLayout{},
		perDIMMRegion: perDIMMRegion,
		pool:          parallel.NewPool(0),
	}, nil
}

// DIMMs returns the number of memory modules in the group.
func (g *GroupBackend) DIMMs() int { return g.layout.DIMMs }

// pageGroupOf maps an address to its refresh group (as Backend does).
func (g *GroupBackend) pageGroupOf(addr int64) int {
	addr %= g.mapp.TotalBytes()
	if addr < 0 {
		addr += g.mapp.TotalBytes()
	}
	co := g.mapp.Decompose(addr)
	return g.mapp.Device.RowRefreshGroup(co.Row)
}

// SwapOut implements sfm.Backend: the page is split at the channel
// interleave granularity; each DIMM's share is compressed with the
// reduced window and placed at the same offset on every DIMM.
func (g *GroupBackend) SwapOut(now dram.Ps, id sfm.PageID, data []byte) error {
	if len(data) != sfm.PageSize {
		return fmt.Errorf("xfm: page %d has %d bytes, want %d", id, len(data), sfm.PageSize) //xfm:ignore hotpath-alloc cold validation path: wrong page size is a caller bug, never taken steady-state
	}
	if _, dup := g.slots[id]; dup {
		return sfm.ErrExists
	}
	cl := g.layout.CompressPage(data, g.newCodec)
	return g.placeCompressed(now, id, cl)
}

// placeCompressed stores an already-compressed page and submits the
// per-DIMM offload requests — the serial bookkeeping half of SwapOut,
// shared with SwapOutBatch (whose compression runs in parallel).
func (g *GroupBackend) placeCompressed(now dram.Ps, id sfm.PageID, cl CompressedLayout) error {
	if _, dup := g.slots[id]; dup {
		return sfm.ErrExists
	}
	if g.reservedBytes+int64(cl.SlotBytes) > g.perDIMMRegion {
		return sfm.ErrFull
	}
	g.slots[id] = cl
	g.reservedBytes += int64(cl.SlotBytes)
	g.stats.swapOuts++
	g.stats.storedPages++
	g.stats.storedBytes += int64(cl.TotalStored())
	g.stats.fragBytes += int64(cl.FragmentationBytes())

	// One offload request per DIMM: each NMA reads its own chunks of
	// the cold page during its refresh windows.
	srcGroup := g.pageGroupOf(int64(id) * sfm.PageSize)
	dstGroup := g.pageGroupOf(g.perDIMMRegion + (int64(id)*sfm.PageSize)%g.perDIMMRegion)
	allOK := true
	for _, d := range g.drivers {
		d.AdvanceTo(now)
		g.nextReq++
		ok, err := d.Submit(nma.Request{
			ID: g.nextReq, Kind: nma.CompressOp,
			SrcGroup: srcGroup, DstGroup: dstGroup, Arrive: now,
		})
		if err != nil || !ok {
			allOK = false
		}
	}
	if allOK {
		g.offloads++
	} else {
		// CPU_Fallback compresses the whole page on the host with the
		// scatter-aware function (Fig. 9b).
		g.fallbacks++
		g.cpuCycles += g.codec.Info().CompressCyclesPerByte * sfm.PageSize
	}
	return nil
}

// SwapIn implements sfm.Backend: parts are fetched from every DIMM,
// decompressed, and gathered back into host-logical order. The
// specialized CPU fallback "handles both decompression and gathering
// operations without additional memory copies" (§6).
func (g *GroupBackend) SwapIn(now dram.Ps, id sfm.PageID, dst []byte, offload bool) error {
	if len(dst) != sfm.PageSize {
		return fmt.Errorf("xfm: dst has %d bytes, want %d", len(dst), sfm.PageSize) //xfm:ignore hotpath-alloc cold validation path: wrong buffer size is a caller bug, never taken steady-state
	}
	cl, ok := g.slots[id]
	if !ok {
		return sfm.ErrNotFound
	}
	// Decompress and gather straight into dst (the specialized CPU
	// fallback "handles both decompression and gathering operations
	// without additional memory copies", §6).
	if _, err := g.layout.DecompressPageInto(dst[:0], cl, g.newCodec, sfm.PageSize); err != nil {
		return err
	}
	g.finishSwapIn(now, id, cl, offload)
	return nil
}

// finishSwapIn removes a decompressed page's slot and submits the
// per-DIMM offload requests — the serial bookkeeping half of SwapIn,
// shared with SwapInBatch.
func (g *GroupBackend) finishSwapIn(now dram.Ps, id sfm.PageID, cl CompressedLayout, offload bool) {
	delete(g.slots, id)
	g.reservedBytes -= int64(cl.SlotBytes)
	g.stats.swapIns++
	g.stats.storedPages--
	g.stats.storedBytes -= int64(cl.TotalStored())
	g.stats.fragBytes -= int64(cl.FragmentationBytes())

	srcGroup := g.pageGroupOf(g.perDIMMRegion + (int64(id)*sfm.PageSize)%g.perDIMMRegion)
	dstGroup := g.pageGroupOf(int64(id) * sfm.PageSize)
	if !offload {
		g.fallbacks++
		g.cpuCycles += g.codec.Info().DecompressCyclesPerByte * sfm.PageSize
		for _, d := range g.drivers {
			d.AdvanceTo(now)
		}
		return
	}
	allOK := true
	for _, d := range g.drivers {
		d.AdvanceTo(now)
		g.nextReq++
		ok, err := d.Submit(nma.Request{
			ID: g.nextReq, Kind: nma.DecompressOp,
			SrcGroup: srcGroup, DstGroup: dstGroup, Arrive: now,
		})
		if err != nil || !ok {
			allOK = false
		}
	}
	if allOK {
		g.offloads++
	} else {
		g.fallbacks++
		g.cpuCycles += g.codec.Info().DecompressCyclesPerByte * sfm.PageSize
	}
}

// Contains implements sfm.Backend.
func (g *GroupBackend) Contains(id sfm.PageID) bool {
	_, ok := g.slots[id]
	return ok
}

// Compact implements sfm.Backend. The same-offset layout compacts by
// re-packing slots; the model reports zero movement because slot
// reservations are already dense in this in-memory representation.
func (g *GroupBackend) Compact() int64 { return 0 }

// Stats implements sfm.Backend.
func (g *GroupBackend) Stats() sfm.BackendStats {
	return sfm.BackendStats{
		SwapOuts:        g.stats.swapOuts,
		SwapIns:         g.stats.swapIns,
		BytesOut:        g.stats.swapOuts * sfm.PageSize,
		BytesIn:         g.stats.swapIns * sfm.PageSize,
		CompressedBytes: g.stats.storedBytes,
		StoredPages:     g.stats.storedPages,
		CPUCycles:       g.cpuCycles,
		Offloads:        g.offloads,
		Fallbacks:       g.fallbacks,
	}
}

// FragmentationBytes returns the current internal fragmentation the
// same-offset placement costs across all DIMMs (§6: "this comes at
// the cost of some internal fragmentation").
func (g *GroupBackend) FragmentationBytes() int64 { return g.stats.fragBytes }

// ReservedBytesPerDIMM returns the per-DIMM region consumption.
func (g *GroupBackend) ReservedBytesPerDIMM() int64 { return g.reservedBytes }

var _ sfm.Backend = (*GroupBackend)(nil)
