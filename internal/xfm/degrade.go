// Graceful degradation for the XFM backend: a sliding-window circuit
// breaker over offload submission outcomes. §6's protocol already
// degrades every *individual* rejection to CPU_Fallback; this layer
// adds the policy above it — when the NMA is persistently failing,
// stop paying the MMIO round trip per op, run everything on the CPU,
// and periodically re-probe the hardware with canary ops before
// trusting it again. Only op-deadline timeouts count as window
// failures; queue rejections are the protocol's designed backpressure
// (fallback per op, breaker closed), though a rejected *canary* does
// re-open the breaker — an NMA that cannot even accept a probe is not
// yet trustworthy.
//
//	HEALTHY ──(failures ≥ DegradeFailures in window)──▶ DEGRADED
//	HEALTHY/DEGRADED ──(failures ≥ TripFailures)──────▶ CPU_ONLY
//	CPU_ONLY ──(ReprobeAfter CPU ops)─────────────────▶ RECOVERING
//	RECOVERING ──(CanarySuccesses in a row)───────────▶ HEALTHY
//	RECOVERING ──(any canary failure)─────────────────▶ CPU_ONLY
//	DEGRADED ──(window drains below DegradeFailures)──▶ HEALTHY
//
// The machinery is armed only by EnableDegradation — the default
// backend keeps §6's stateless per-op fallback and pays nothing.

package xfm

import (
	"sync/atomic"

	"xfm/internal/dram"
	"xfm/internal/sfm"
	"xfm/internal/telemetry"
)

// Mode is the backend's degradation state. The zero value is healthy;
// values order by severity so a gauge of the mode thresholds cleanly
// (health rules fire DEGRADED above 0.5 and CRITICAL above 2.5).
type Mode int32

// Degradation ladder states.
const (
	ModeHealthy    Mode = 0
	ModeDegraded   Mode = 1
	ModeRecovering Mode = 2
	ModeCPUOnly    Mode = 3
)

// String returns the mode's telemetry name.
func (m Mode) String() string {
	switch m {
	case ModeHealthy:
		return "HEALTHY"
	case ModeDegraded:
		return "DEGRADED"
	case ModeRecovering:
		return "RECOVERING"
	case ModeCPUOnly:
		return "CPU_ONLY"
	}
	return "UNKNOWN"
}

// DegradePolicy parameterizes the circuit breaker.
type DegradePolicy struct {
	// Window is the sliding window length W, in submission outcomes.
	Window int
	// TripFailures is N: failures within the window that trip the
	// breaker to CPU_ONLY.
	TripFailures int
	// DegradeFailures marks the earlier DEGRADED threshold (the
	// backend still submits, but the health monitor sees the mode).
	DegradeFailures int
	// ReprobeAfter is how many CPU-only ops to absorb before probing
	// the NMA again with canaries.
	ReprobeAfter int
	// CanarySuccesses is how many consecutive canary ops must succeed
	// to close the breaker; one canary failure re-opens it.
	CanarySuccesses int
	// RetryOnce retries a submission once after an op-deadline timeout
	// (ErrOpTimeout) before counting it as a failure.
	RetryOnce bool
}

// DefaultDegradePolicy returns the policy the chaos gate runs with.
func DefaultDegradePolicy() DegradePolicy {
	return DegradePolicy{
		Window:          32,
		TripFailures:    8,
		DegradeFailures: 3,
		ReprobeAfter:    32,
		CanarySuccesses: 4,
		RetryOnce:       true,
	}
}

// normalize clamps a policy into its valid domain.
func (p *DegradePolicy) normalize() {
	if p.Window < 1 {
		p.Window = 1
	}
	if p.TripFailures < 1 {
		p.TripFailures = 1
	}
	if p.TripFailures > p.Window {
		p.TripFailures = p.Window
	}
	if p.DegradeFailures < 1 {
		p.DegradeFailures = 1
	}
	if p.DegradeFailures > p.TripFailures {
		p.DegradeFailures = p.TripFailures
	}
	if p.ReprobeAfter < 1 {
		p.ReprobeAfter = 1
	}
	if p.CanarySuccesses < 1 {
		p.CanarySuccesses = 1
	}
}

// degrader is the circuit breaker state. Like Backend.nextReq, all
// fields except mode mutate only on the serial submission path; mode
// is atomic because Mode()/health snapshots read it from other
// goroutines while a batch is in flight.
type degrader struct {
	policy DegradePolicy
	mode   atomic.Int32

	// Sliding outcome ring: outcomes[i] is true for a failed
	// submission; failures counts trues currently in the ring.
	outcomes []bool
	head     int
	filled   int
	failures int

	cpuOps   int // CPU_ONLY ops absorbed since the trip
	canaryOK int // consecutive canary successes while RECOVERING

	trips      telemetry.Counter
	recoveries telemetry.Counter

	track int // lazily allocated tracer track, -1 until first event
}

// recordOutcome pushes one submission outcome into the sliding window.
func (d *degrader) recordOutcome(fail bool) {
	if d.filled == len(d.outcomes) {
		if d.outcomes[d.head] {
			d.failures--
		}
	} else {
		d.filled++
	}
	d.outcomes[d.head] = fail
	if fail {
		d.failures++
	}
	d.head++
	if d.head == len(d.outcomes) {
		d.head = 0
	}
}

// resetWindow clears the sliding window (used when closing the breaker
// so stale pre-trip failures cannot immediately re-trip it).
func (d *degrader) resetWindow() {
	for i := range d.outcomes {
		d.outcomes[i] = false
	}
	d.head, d.filled, d.failures = 0, 0, 0
}

// EnableDegradation arms the circuit breaker and the ECC staging
// copies that back quarantine re-serves. It is not part of the default
// configuration: an un-armed backend behaves exactly like §6's
// stateless per-op fallback (and allocates nothing extra).
func (b *Backend) EnableDegradation(p DegradePolicy) {
	p.normalize()
	b.deg = &degrader{
		policy:   p,
		outcomes: make([]bool, p.Window),
		track:    -1,
	}
	if b.staging == nil {
		b.staging = map[sfm.PageID][]byte{}
	}
	gmDegradedMode.SetInt(int64(ModeHealthy))
}

// Mode returns the backend's degradation state; ModeHealthy when
// degradation is not armed. Safe from any goroutine.
func (b *Backend) Mode() Mode {
	if b.deg == nil {
		return ModeHealthy
	}
	return Mode(b.deg.mode.Load())
}

// BreakerStats returns (trips to CPU_ONLY, recoveries to HEALTHY).
func (b *Backend) BreakerStats() (trips, recoveries int64) {
	if b.deg == nil {
		return 0, 0
	}
	return b.deg.trips.Value(), b.deg.recoveries.Value()
}

// transition moves the breaker to mode `to`, publishing the gauge, the
// transition counters, and a trace instant on the backend's track.
//
//xfm:allocok mode transitions are rare breaker events (a handful per chaos run), not steady-state work
func (b *Backend) transition(to Mode, now dram.Ps) {
	d := b.deg
	from := Mode(d.mode.Swap(int32(to)))
	if from == to {
		return
	}
	gmDegradedMode.SetInt(int64(to))
	gmModeTransitions.Inc()
	switch to {
	case ModeCPUOnly:
		d.trips.Inc()
		gmBreakerTrips.Inc()
		d.cpuOps = 0
	case ModeRecovering:
		d.canaryOK = 0
	case ModeHealthy:
		if from == ModeRecovering {
			d.recoveries.Inc()
			gmBreakerRecoveries.Inc()
			d.resetWindow()
		}
	}
	if tr := telemetry.DefaultTracer(); tr != nil && tr.Enabled() {
		if d.track < 0 {
			d.track = tr.NewTrack("xfm-breaker")
		}
		tr.Instant(d.track, to.String(), "xfm", int64(now), map[string]int64{
			"from": int64(from),
			"to":   int64(to),
		})
	}
}
