package xfm

import (
	"testing"

	"xfm/internal/dram"
	"xfm/internal/nma"
)

func newRegs() *RegisterFile {
	return NewRegisterFile(nma.NewSim(nma.DefaultConfig(dram.Device32Gb)))
}

func TestRegisterDefaults(t *testing.T) {
	r := newRegs()
	if v, err := r.Read(RegSPCapacity); err != nil || v != 2<<20 {
		t.Errorf("SP capacity = %d, %v; want 2 MiB", v, err)
	}
	if v, err := r.Read(RegQueueFree); err != nil || v != 4096 {
		t.Errorf("queue free = %d, %v", v, err)
	}
	if v, err := r.Read(RegCompleted); err != nil || v != 0 {
		t.Errorf("completed = %d, %v", v, err)
	}
}

func TestRegisterSubmitFlow(t *testing.T) {
	r := newRegs()
	// Doorbell before paramset must fail.
	if err := r.Write(RegDoorbell, 1); err == nil {
		t.Error("doorbell before configuration accepted")
	}
	// xfm_paramset: configure the region.
	if err := r.Write(RegRegionBase, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(RegRegionSize, 1<<30); err != nil {
		t.Fatal(err)
	}
	// Stage and ring a compress request.
	r.Write(RegSubmitKind, 0)
	r.Write(RegSubmitSrcGrp, 10)
	r.Write(RegSubmitDstGrp, 20)
	r.Write(RegSubmitArrive, 0)
	if err := r.Write(RegDoorbell, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Read(RegSubmitStatus); v != 1 {
		t.Error("accepted submit not reflected in status register")
	}
	if free, _ := r.Read(RegQueueFree); free != 4095 {
		t.Errorf("queue free = %d after one submit", free)
	}
}

func TestRegisterFlexibleDestination(t *testing.T) {
	r := newRegs()
	r.Write(RegRegionSize, 1<<20)
	r.Write(RegSubmitKind, 1) // decompress
	r.Write(RegSubmitSrcGrp, 0)
	r.Write(RegSubmitDstGrp, ^uint64(0)) // flexible
	if err := r.Write(RegDoorbell, 1); err != nil {
		t.Fatal(err)
	}
	// One window serves the read (group 0), the next the flexible
	// write.
	sim := rfSim(r)
	sim.StepWindow()
	sim.StepWindow()
	if got, _ := r.Read(RegCompleted); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

// rfSim digs the simulator out for test stepping.
func rfSim(r *RegisterFile) *nma.Sim { return r.sim }

func TestRegisterInvalidAccesses(t *testing.T) {
	r := newRegs()
	if _, err := r.Read(0x100); err == nil {
		t.Error("read of invalid offset accepted")
	}
	if err := r.Write(0x100, 0); err == nil {
		t.Error("write of invalid offset accepted")
	}
	if err := r.Write(RegDoorbell, 2); err == nil {
		t.Error("bad doorbell value accepted")
	}
	r.Write(RegRegionSize, 1<<20)
	r.Write(RegSubmitKind, 7)
	if err := r.Write(RegDoorbell, 1); err == nil {
		t.Error("invalid kind accepted")
	}
	// RO registers reject writes.
	if err := r.Write(RegSPCapacity, 1); err == nil {
		t.Error("write to RO register accepted")
	}
}

func TestRegisterAccessCounts(t *testing.T) {
	r := newRegs()
	r.Read(RegSPCapacity)
	r.Write(RegRegionSize, 4096)
	reads, writes := r.AccessCounts()
	if reads != 1 || writes != 1 {
		t.Errorf("counts = %d/%d, want 1/1", reads, writes)
	}
	if r.Size() <= RegSubmitStatus {
		t.Error("BAR size too small")
	}
}

func TestRegisterRejectionStatus(t *testing.T) {
	cfg := nma.DefaultConfig(dram.Device32Gb)
	cfg.QueueDepth = 1
	r := NewRegisterFile(nma.NewSim(cfg))
	r.Write(RegRegionSize, 1<<20)
	r.Write(RegSubmitKind, 0)
	r.Write(RegSubmitSrcGrp, 5)
	r.Write(RegSubmitDstGrp, 6)
	r.Write(RegDoorbell, 1)
	r.Write(RegDoorbell, 1) // queue (depth 1) now full
	if v, _ := r.Read(RegSubmitStatus); v != 0 {
		t.Error("rejected submit reported as accepted")
	}
}
