package xfm

import (
	"bytes"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/corpus"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
)

func newGroup(t *testing.T, dimms int) *GroupBackend {
	t.Helper()
	drivers := make([]*Driver, dimms)
	for i := range drivers {
		drivers[i] = NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb)))
	}
	g, err := NewGroupBackend(
		func(w int) compress.Codec { return compress.NewXDeflateWindow(w) },
		1<<28, drivers, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroupRoundTrip(t *testing.T) {
	for _, dimms := range []int{1, 2, 4} {
		g := newGroup(t, dimms)
		in := corpus.JSONLog(7, sfm.PageSize)
		if err := g.SwapOut(0, 1, in); err != nil {
			t.Fatalf("%d DIMMs: %v", dimms, err)
		}
		if !g.Contains(1) {
			t.Fatalf("%d DIMMs: page missing", dimms)
		}
		dst := make([]byte, sfm.PageSize)
		if err := g.SwapIn(dram.Millisecond, 1, dst, false); err != nil {
			t.Fatalf("%d DIMMs: %v", dimms, err)
		}
		if !bytes.Equal(dst, in) {
			t.Fatalf("%d DIMMs: content corrupted", dimms)
		}
		if g.Contains(1) {
			t.Fatalf("%d DIMMs: page still stored", dimms)
		}
	}
}

func TestGroupErrors(t *testing.T) {
	g := newGroup(t, 2)
	if err := g.SwapOut(0, 1, []byte("short")); err == nil {
		t.Error("short page accepted")
	}
	in := corpus.KeyValue(1, sfm.PageSize)
	if err := g.SwapOut(0, 1, in); err != nil {
		t.Fatal(err)
	}
	if err := g.SwapOut(0, 1, in); err != sfm.ErrExists {
		t.Errorf("duplicate: err = %v", err)
	}
	dst := make([]byte, sfm.PageSize)
	if err := g.SwapIn(0, 42, dst, false); err != sfm.ErrNotFound {
		t.Errorf("missing: err = %v", err)
	}
	if err := g.SwapIn(0, 1, make([]byte, 3), false); err == nil {
		t.Error("short dst accepted")
	}
}

func TestGroupFragmentationTracked(t *testing.T) {
	g := newGroup(t, 4)
	// Pages whose parts compress unevenly produce fragmentation.
	for i := 0; i < 8; i++ {
		in := corpus.HTML(int64(i), sfm.PageSize)
		if err := g.SwapOut(0, sfm.PageID(i+1), in); err != nil {
			t.Fatal(err)
		}
	}
	if g.FragmentationBytes() <= 0 {
		t.Error("no fragmentation recorded for uneven parts on 4 DIMMs")
	}
	if g.ReservedBytesPerDIMM() <= 0 {
		t.Error("no reservation recorded")
	}
	// Reserved × DIMMs = stored + fragmentation.
	st := g.Stats()
	if g.ReservedBytesPerDIMM()*int64(g.DIMMs()) != st.CompressedBytes+g.FragmentationBytes() {
		t.Errorf("reservation accounting inconsistent: %d×%d vs %d+%d",
			g.ReservedBytesPerDIMM(), g.DIMMs(), st.CompressedBytes, g.FragmentationBytes())
	}
	// Draining restores zero.
	dst := make([]byte, sfm.PageSize)
	for i := 0; i < 8; i++ {
		if err := g.SwapIn(0, sfm.PageID(i+1), dst, false); err != nil {
			t.Fatal(err)
		}
	}
	if g.FragmentationBytes() != 0 || g.ReservedBytesPerDIMM() != 0 {
		t.Error("accounting not restored after draining")
	}
}

func TestGroupRegionCapacity(t *testing.T) {
	drivers := []*Driver{NewDriver(nma.NewSim(nma.DefaultConfig(dram.Device32Gb)))}
	g, err := NewGroupBackend(
		func(w int) compress.Codec { return compress.NewLZFastWindow(w) },
		8<<10, drivers, memctrl.SkylakeMapping(4, 2, dram.Device32Gb)) // 8 KiB region
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for i := 0; i < 20; i++ {
		in := corpus.Random(int64(i), sfm.PageSize) // stores ≈ raw
		if err := g.SwapOut(0, sfm.PageID(i+1), in); err == sfm.ErrFull {
			full++
		}
	}
	if full == 0 {
		t.Error("tiny region never reported full")
	}
}

func TestGroupOffloadsToAllDIMMs(t *testing.T) {
	g := newGroup(t, 4)
	for i := 0; i < 5; i++ {
		if err := g.SwapOut(dram.Ps(i)*dram.Microsecond, sfm.PageID(i+1), corpus.Syslog(int64(i), sfm.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.Offloads != 5 {
		t.Errorf("offloads = %d, want 5", st.Offloads)
	}
	// Each DIMM's NMA received one request per page.
	for i, d := range g.drivers {
		if got := d.Sim().Stats().Submitted; got != 5 {
			t.Errorf("DIMM %d received %d requests, want 5", i, got)
		}
	}
	if st.CPUCycles != 0 {
		t.Error("offloaded group work charged CPU cycles")
	}
}

func TestGroupDemandSwapInChargesCPU(t *testing.T) {
	g := newGroup(t, 2)
	g.SwapOut(0, 1, corpus.CSVTable(3, sfm.PageSize))
	dst := make([]byte, sfm.PageSize)
	if err := g.SwapIn(dram.Millisecond, 1, dst, false); err != nil {
		t.Fatal(err)
	}
	if g.Stats().CPUCycles <= 0 {
		t.Error("demand swap-in charged no CPU cycles")
	}
}

func TestGroupNeedsDrivers(t *testing.T) {
	_, err := NewGroupBackend(
		func(w int) compress.Codec { return compress.NewLZFastWindow(w) },
		1<<20, nil, memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err == nil {
		t.Error("empty driver list accepted")
	}
}

func TestGroupHeapIntegration(t *testing.T) {
	g := newGroup(t, 4)
	heap := sfm.NewHeap(g)
	var ids []sfm.PageID
	for i := 0; i < 16; i++ {
		ids = append(ids, heap.Alloc(0, corpus.SQLDump(int64(i), sfm.PageSize)))
	}
	now := dram.Ps(0)
	for _, id := range ids {
		now += 10 * dram.Microsecond
		if err := heap.SwapOut(now, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		now += 10 * dram.Microsecond
		if _, err := heap.Touch(now, id); err != nil {
			t.Fatal(err)
		}
	}
	if heap.Stats().DemandFaults != 16 {
		t.Errorf("faults = %d, want 16", heap.Stats().DemandFaults)
	}
}
