package xfm

import (
	"bytes"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/memctrl"
	"xfm/internal/nma"
	"xfm/internal/sfm"
	"xfm/internal/telemetry"
)

// recordTimeseries runs a fixed batched swap workload against an XFM
// backend with the given worker count, recording the default series
// catalogue in the simulated-time clock domain, and returns the JSON
// artifact bytes.
func recordTimeseries(t *testing.T, workers int) []byte {
	t.Helper()
	// Zero the process-wide metrics so gauges start from the same state
	// on every run; the sampler re-baselines counters itself.
	telemetry.DefaultRegistry().ResetAll()
	smp := telemetry.NewSampler(telemetry.DefaultRegistry(), 256)
	smp.SetSimEvery(4)
	smp.Reset()
	smp.SetEnabled(true)

	sim := nma.NewSim(nma.DefaultConfig(dram.Device32Gb))
	sim.SetSampler(smp)
	b, err := NewShardedBackend(compress.NewLZFast(), 1<<30, 8, workers,
		NewDriver(sim), memctrl.SkylakeMapping(4, 2, dram.Device32Gb))
	if err != nil {
		t.Fatal(err)
	}

	ids := batchIDs(48)
	outs := make([]sfm.PageOut, len(ids))
	for i, id := range ids {
		outs[i] = sfm.PageOut{ID: id, Data: compressiblePage(id)}
	}
	ins := make([]sfm.PageIn, len(ids))
	for i, id := range ids {
		ins[i] = sfm.PageIn{ID: id, Dst: make([]byte, sfm.PageSize)}
	}
	// Several waves spaced widely enough that AdvanceTo steps many
	// refresh windows (and so takes many samples) between batches.
	now := 50 * dram.Microsecond
	for wave := 0; wave < 4; wave++ {
		if err := sfm.FirstError(b.SwapOutBatch(now, outs)); err != nil {
			t.Fatal(err)
		}
		now += 50 * dram.Microsecond
		if err := sfm.FirstError(b.SwapInBatch(now, ins, true)); err != nil {
			t.Fatal(err)
		}
		now += 50 * dram.Microsecond
	}
	smp.FinalSample()
	smp.Stop()

	var buf bytes.Buffer
	if err := smp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := telemetry.ReadDump(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples < 8 {
		t.Fatalf("workload produced only %d samples; widen the waves", d.Samples)
	}
	return buf.Bytes()
}

// TestTimeseriesBitDeterministic pins the ISSUE acceptance criterion:
// for a fixed seed, simulated-time series are bit-identical across
// reruns and across worker counts. Samples fire on nma.Sim's serial
// window-stepping path after each batch's parallel phase has fully
// landed its counter bumps, and the default catalogue excludes
// wall-clock instruments, so the recorded bytes must not depend on
// scheduling.
func TestTimeseriesBitDeterministic(t *testing.T) {
	first := recordTimeseries(t, 1)
	rerun := recordTimeseries(t, 1)
	if !bytes.Equal(first, rerun) {
		t.Fatal("time-series artifact differs across reruns at workers=1")
	}
	parallel := recordTimeseries(t, 4)
	if !bytes.Equal(first, parallel) {
		t.Fatal("time-series artifact differs between workers=1 and workers=4")
	}
}

// TestTimeseriesFastForwardInvariant extends the determinism contract
// across the NMA engine's idle fast-forward: the same workload
// recorded with every refresh window stepped must produce the same
// bytes as the fast-forwarded default (DESIGN §6b). CI proves the
// same property on the full emulator via `telemetryck -diff`.
func TestTimeseriesFastForwardInvariant(t *testing.T) {
	fast := recordTimeseries(t, 1)
	nma.SetFastForward(false)
	defer nma.SetFastForward(true)
	stepped := recordTimeseries(t, 1)
	if bytes.Equal(fast, stepped) {
		return
	}
	a, err := telemetry.ReadDump(bytes.NewReader(fast))
	if err != nil {
		t.Fatal(err)
	}
	b, err := telemetry.ReadDump(bytes.NewReader(stepped))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range telemetry.DiffDumps(a, b) {
		t.Errorf("diff: %s", d)
	}
	t.Fatal("fast-forwarded recording differs from stepped recording")
}
