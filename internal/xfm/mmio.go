package xfm

import (
	"fmt"

	"xfm/internal/nma"
)

// MMIO register file (§6): XFM exposes its control interface as
// memory-mapped registers behind an ioctl'd character device. This
// file makes the register map concrete — the Driver's method surface
// is implemented on top of RegisterFile, so a test (or a curious
// user) can interact with XFM exactly the way the kernel driver
// would: 64-bit reads and writes at fixed offsets.

// Register offsets (byte addresses within the XFM BAR).
const (
	RegSPCapacity    = 0x00 // RO: free ScratchPad bytes
	RegQueueFree     = 0x08 // RO: free Compress_Request_Queue entries
	RegCompleted     = 0x10 // RO: completed-operation counter
	RegRegionBase    = 0x18 // RW: SFM region base (xfm_paramset)
	RegRegionSize    = 0x20 // RW: SFM region size (xfm_paramset)
	RegSubmitKind    = 0x28 // WO: 0 = compress, 1 = decompress
	RegSubmitSrcGrp  = 0x30 // WO: source refresh group
	RegSubmitDstGrp  = 0x38 // WO: destination refresh group (max uint64 = flexible)
	RegSubmitArrive  = 0x40 // WO: submission timestamp (ps)
	RegDoorbell      = 0x48 // WO: writing 1 enqueues the staged request
	RegSubmitStatus  = 0x50 // RO: 1 = last doorbell accepted, 0 = rejected
	registerFileSize = 0x58
)

// flexibleGroup is the RegSubmitDstGrp encoding for "any group".
const flexibleGroup = ^uint64(0)

// RegisterFile is the XFM DIMM's MMIO window over one NMA.
type RegisterFile struct {
	sim *nma.Sim

	regionBase uint64
	regionSize uint64

	// Staged submit descriptor, latched by the doorbell.
	kind, srcGrp, dstGrp, arrive uint64
	lastAccepted                 bool

	reads, writes int64
	nextID        int64
}

// NewRegisterFile maps a register file over the simulator.
func NewRegisterFile(sim *nma.Sim) *RegisterFile {
	return &RegisterFile{sim: sim}
}

// Read32/Write32 are not provided: the device requires 64-bit access,
// like most accelerator BARs.

// Read returns the register at offset.
func (r *RegisterFile) Read(offset int) (uint64, error) {
	r.reads++
	switch offset {
	case RegSPCapacity:
		return uint64(r.sim.Config().SPMBytes - r.sim.SPMUsed()), nil
	case RegQueueFree:
		return uint64(r.sim.Config().QueueDepth - r.sim.QueueLen()), nil
	case RegCompleted:
		return uint64(r.sim.Stats().Completed), nil
	case RegRegionBase:
		return r.regionBase, nil
	case RegRegionSize:
		return r.regionSize, nil
	case RegSubmitStatus:
		if r.lastAccepted {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("xfm: read of invalid register %#x", offset)
	}
}

// Write stores v into the register at offset.
func (r *RegisterFile) Write(offset int, v uint64) error {
	r.writes++
	switch offset {
	case RegRegionBase:
		r.regionBase = v
	case RegRegionSize:
		r.regionSize = v
	case RegSubmitKind:
		r.kind = v
	case RegSubmitSrcGrp:
		r.srcGrp = v
	case RegSubmitDstGrp:
		r.dstGrp = v
	case RegSubmitArrive:
		r.arrive = v
	case RegDoorbell:
		if v != 1 {
			return fmt.Errorf("xfm: doorbell write %d, want 1", v)
		}
		return r.ring()
	default:
		return fmt.Errorf("xfm: write of invalid register %#x", offset)
	}
	return nil
}

// ring latches the staged descriptor into the request queue.
func (r *RegisterFile) ring() error {
	if r.regionSize == 0 {
		return fmt.Errorf("xfm: doorbell before region configuration")
	}
	kind := nma.CompressOp
	if r.kind == 1 {
		kind = nma.DecompressOp
	} else if r.kind != 0 {
		return fmt.Errorf("xfm: invalid submit kind %d", r.kind)
	}
	dst := int(r.dstGrp)
	if r.dstGrp == flexibleGroup {
		dst = -1
	}
	r.nextID++
	r.lastAccepted = r.sim.Submit(nma.Request{
		ID:       r.nextID,
		Kind:     kind,
		SrcGroup: int(r.srcGrp),
		DstGroup: dst,
		Arrive:   int64(r.arrive),
	})
	return nil
}

// AccessCounts returns (reads, writes) for the register file.
func (r *RegisterFile) AccessCounts() (int64, int64) { return r.reads, r.writes }

// Size returns the BAR size in bytes.
func (r *RegisterFile) Size() int { return registerFileSize }
