package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.ExtraGB = 0
	if bad.Validate() == nil {
		t.Error("zero ExtraGB accepted")
	}
	bad = DefaultParams()
	bad.PromotionRate = 1.5
	if bad.Validate() == nil {
		t.Error("promotion > 1 accepted")
	}
}

func TestEQ1GBSwappedPerMin(t *testing.T) {
	// §2.1: "A 20% promotion rate for a 512GB far memory implies that
	// 102GB of the far memory is accessed during a 60-second interval."
	p := DefaultParams()
	p.PromotionRate = 0.20
	if got := p.GBSwappedPerMin(); math.Abs(got-102.4) > 0.01 {
		t.Errorf("GBSwappedPerMin = %v, want 102.4", got)
	}
}

func TestFootnoteSwapBandwidth(t *testing.T) {
	// Footnote 1: 100% promotion in a 512GB SFM requires (de)compressing
	// at 8.5 GB/s.
	p := DefaultParams()
	p.PromotionRate = 1.0
	gbps := p.GBSwappedPerMin() / 60
	if math.Abs(gbps-8.53) > 0.05 {
		t.Errorf("swap rate = %.2f GB/s, want ≈8.5", gbps)
	}
}

func TestCPUNeededFractionAt100(t *testing.T) {
	// 8.5 GB/s × 7.65e9 cycles/GB ≈ 65 Gcycles/s ≈ 25 cores at 2.6 GHz
	// ≈ 3.1 8-core sockets.
	p := DefaultParams()
	p.PromotionRate = 1.0
	frac := p.CPUNeededFraction()
	if frac < 3.0 || frac > 3.3 {
		t.Errorf("CPU fraction at 100%% = %.2f, want ≈3.1 sockets", frac)
	}
}

func TestCostBreakEvenDRAMAt100MatchesPaper(t *testing.T) {
	// §3.1: "It takes 8.5 years for SFM to break even with the cost of
	// a DRAM-based DFM" at 100% promotion.
	p := DefaultParams()
	p.PromotionRate = 1.0
	years, ok := p.CostBreakEvenYears(DRAM, 50)
	if !ok {
		t.Fatal("no cost break-even found for DRAM at 100%")
	}
	if years < 7 || years > 10 {
		t.Errorf("break-even = %.1f years, paper reports 8.5", years)
	}
}

func TestSFMCheaperThanPMemAt20(t *testing.T) {
	// §3.1: "at a 20% promotion rate, SFM may prove more cost-effective,
	// even when compared to a PMem-based DFM" — no break-even within a
	// server lifetime.
	p := DefaultParams()
	p.PromotionRate = 0.20
	if years, ok := p.CostBreakEvenYears(PMem, 10); ok {
		t.Errorf("SFM overtook PMem-DFM cost at %.1f years; want > 10", years)
	}
	// SFM must actually be cheaper over the 5-year lifetime.
	if p.SFMCost(5) >= p.DFMCost(PMem, 5) {
		t.Error("SFM not cheaper than PMem DFM over 5 years at 20%")
	}
}

func TestEmissionDRAMNeverBreaksEvenIn5Years(t *testing.T) {
	// §3.1: "DRAM-based DFM and SFM never break even in terms of carbon
	// emissions during the typical 5-year lifetime of a server."
	p := DefaultParams()
	p.PromotionRate = 0.20
	if years, ok := p.EmissionBreakEvenYears(DRAM, 5); ok {
		t.Errorf("emissions broke even at %.1f years; want never within 5", years)
	}
	if p.SFMEmission(5) >= p.DFMEmission(DRAM, 5) {
		t.Error("SFM emissions not below DRAM-DFM over 5 years at 20%")
	}
}

func TestEmissionPMemBreaksEvenInSeveralYears(t *testing.T) {
	// §3.1: "Even with PMem, it can take several years for SFM with a
	// 20% promotion rate to break even in emissions."
	p := DefaultParams()
	p.PromotionRate = 0.20
	years, ok := p.EmissionBreakEvenYears(PMem, 20)
	if !ok {
		t.Fatal("no PMem emission break-even found")
	}
	if years < 2 || years > 6 {
		t.Errorf("PMem emission break-even = %.1f years, want 'several' (2-6)", years)
	}
}

func TestAcceleratorBeneficialPromotion(t *testing.T) {
	// §3.2: "an integrated hardware accelerator becomes beneficial when
	// the average promotion rate is higher than 6% in a 512GB SFM."
	p := DefaultParams()
	got := p.AcceleratorBeneficialPromotion()
	if got < 0.04 || got > 0.08 {
		t.Errorf("accelerator break-even promotion = %.3f, want ≈0.06", got)
	}
}

func TestCostMonotonicInPromotionRate(t *testing.T) {
	f := func(raw uint8) bool {
		p := DefaultParams()
		r1 := float64(raw%50) / 100
		r2 := r1 + 0.3
		p.PromotionRate = r1
		c1 := p.SFMCost(5)
		p.PromotionRate = r2
		c2 := p.SFMCost(5)
		return c2 >= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCostsMonotonicInTime(t *testing.T) {
	p := DefaultParams()
	for _, tech := range []MemoryTech{DRAM, PMem} {
		prevD, prevS, prevDE, prevSE := -1.0, -1.0, -1.0, -1.0
		for y := 0.0; y <= 10; y += 0.5 {
			d, s := p.DFMCost(tech, y), p.SFMCost(y)
			de, se := p.DFMEmission(tech, y), p.SFMEmission(y)
			if d < prevD || s < prevS || de < prevDE || se < prevSE {
				t.Fatalf("%v: cumulative curve decreased at year %.1f", tech, y)
			}
			prevD, prevS, prevDE, prevSE = d, s, de, se
		}
	}
}

func TestDFMUpfrontDominatesAtYearZero(t *testing.T) {
	p := DefaultParams()
	if got, want := p.DFMCost(DRAM, 0), p.ExtraGB*p.DRAMCostPerGB; got != want {
		t.Errorf("DFM cost at year 0 = %v, want upfront %v", got, want)
	}
	if got, want := p.DFMEmission(PMem, 0), p.ExtraGB*p.PMemEmissionPerGB; got != want {
		t.Errorf("PMem embodied = %v, want %v", got, want)
	}
}

func TestPMemCheaperUpfrontThanDRAM(t *testing.T) {
	p := DefaultParams()
	if p.DFMCost(PMem, 0) >= p.DFMCost(DRAM, 0) {
		t.Error("PMem DFM should be cheaper upfront than DRAM DFM")
	}
	if p.DFMEmission(PMem, 0) >= p.DFMEmission(DRAM, 0) {
		t.Error("PMem DFM should have lower embodied emissions (2× density)")
	}
}

func TestBreakEvenEdgeCases(t *testing.T) {
	p := DefaultParams()
	p.PromotionRate = 1.0
	// Make SFM more expensive from the start: huge CPU price.
	p.CPUPurchasePrice = 1e9
	if _, ok := p.CostBreakEvenYears(DRAM, 50); ok {
		t.Error("break-even reported when SFM starts more expensive")
	}
}

func TestMemoryTechString(t *testing.T) {
	if DRAM.String() != "DRAM" || PMem.String() != "PMem" {
		t.Error("MemoryTech String broken")
	}
}

func BenchmarkCostSweep(b *testing.B) {
	p := DefaultParams()
	for i := 0; i < b.N; i++ {
		for y := 0.0; y <= 10; y += 0.1 {
			_ = p.DFMCost(DRAM, y)
			_ = p.SFMCost(y)
		}
	}
}
