package costmodel

import "testing"

func base100() Params {
	p := DefaultParams()
	p.PromotionRate = 1.0
	return p
}

func TestSensitivityRowsComplete(t *testing.T) {
	rows := SensitivityOf(base100(), 0.2, 50)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	// Sorted by decreasing spread.
	for i := 1; i < len(rows); i++ {
		if rows[i].Spread > rows[i-1].Spread {
			t.Fatal("rows not sorted by spread")
		}
	}
	// The memory price must be among the influential parameters: it
	// sets the DFM upfront cost the SFM has to catch up to.
	foundPrice := false
	for i, r := range rows {
		if r.Param == "DRAMCostPerGB" {
			foundPrice = true
			if i > 3 {
				t.Errorf("DRAMCostPerGB ranked %d; expected among the top drivers", i)
			}
		}
	}
	if !foundPrice {
		t.Error("DRAMCostPerGB missing")
	}
}

func TestSensitivityDirections(t *testing.T) {
	rows := SensitivityOf(base100(), 0.2, 50)
	get := func(name string) SensitivityRow {
		for _, r := range rows {
			if r.Param == name {
				return r
			}
		}
		t.Fatalf("row %s missing", name)
		return SensitivityRow{}
	}
	// Cheaper DRAM ⇒ smaller DFM head start ⇒ earlier break-even.
	price := get("DRAMCostPerGB")
	if price.LowOK && price.HighOK && price.LowYears >= price.HighYears {
		t.Errorf("cheaper DRAM should break even sooner: low %.1f vs high %.1f",
			price.LowYears, price.HighYears)
	}
	// A pricier CPU raises SFM's upfront cost ⇒ earlier break-even.
	cpu := get("CPUPurchasePrice")
	if cpu.LowOK && cpu.HighOK && cpu.HighYears >= cpu.LowYears {
		t.Errorf("pricier CPU should break even sooner: high %.1f vs low %.1f",
			cpu.HighYears, cpu.LowYears)
	}
}

func TestBreakEvenRobustness(t *testing.T) {
	// The *qualitative* conclusion — SFM starts cheaper and a break-even
	// exists at a multi-month-to-decades horizon — survives ±20% on
	// every fitted constant. The *magnitude* does not: the sweep shows
	// the break-even year moving from <1 to ~20 years across single
	// ±20% perturbations of the unprinted constants (memory price,
	// CCPerGB), which is why EXPERIMENTS.md treats the paper's 8.5-year
	// figure as illustrative rather than fundamental.
	if !BreakEvenRobust(base100(), 0.2, 0.1, 45, 60) {
		t.Error("qualitative break-even conclusion not robust to ±20% swings")
	}
	// And the magnitude is demonstrably sensitive: the top driver's
	// spread exceeds 10 years.
	rows := SensitivityOf(base100(), 0.2, 60)
	if rows[0].Spread < 10 {
		t.Errorf("top sensitivity spread = %.1f years; expected the model to be "+
			"strongly parameter-sensitive", rows[0].Spread)
	}
}

func TestMonteCarloBreakEven(t *testing.T) {
	r := MonteCarloBreakEven(base100(), 0.2, 500, 1, 60)
	if r.Samples != 500 {
		t.Fatalf("samples = %d", r.Samples)
	}
	// Percentiles ordered and positive.
	if !(r.P10 > 0 && r.P10 <= r.P50 && r.P50 <= r.P90) {
		t.Errorf("percentiles disordered: %v %v %v", r.P10, r.P50, r.P90)
	}
	// The nominal 8.5-year point sits inside the sampled distribution.
	if r.P10 > 8.5 || r.P90 < 8.5 {
		t.Errorf("nominal 8.5y outside [P10=%.1f, P90=%.1f]", r.P10, r.P90)
	}
	// Fractions are sane.
	if r.NoBreakEvenFrac < 0 || r.NoBreakEvenFrac > 1 || r.UpfrontLossFrac > 0.2 {
		t.Errorf("fractions implausible: %+v", r)
	}
	// Deterministic per seed.
	r2 := MonteCarloBreakEven(base100(), 0.2, 500, 1, 60)
	if r != r2 {
		t.Error("Monte Carlo not deterministic for fixed seed")
	}
}
