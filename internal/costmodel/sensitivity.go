package costmodel

import (
	"math/rand"
	"sort"
)

// Sensitivity analysis of the §3 model: because several constants are
// not printed in the paper (memory prices, per-cycle energy), the
// break-even conclusions must be robust to them. SensitivityOf sweeps
// each parameter ±`swing` and reports how far the DRAM-DFM cost
// break-even year moves — a tornado-chart input.

// SensitivityRow is one parameter's effect.
type SensitivityRow struct {
	Param string
	// LowYears / HighYears are the break-even years at (1−swing)× and
	// (1+swing)× the parameter. 0 with OK=false means no break-even
	// within the horizon.
	LowYears, HighYears float64
	LowOK, HighOK       bool
	// Spread is |HighYears − LowYears| when both exist, else the
	// horizon (maximally sensitive).
	Spread float64
}

// paramAccessor mutates one Params field multiplicatively.
type paramAccessor struct {
	name  string
	apply func(p *Params, factor float64)
}

func accessors() []paramAccessor {
	return []paramAccessor{
		{"DRAMCostPerGB", func(p *Params, f float64) { p.DRAMCostPerGB *= f }},
		{"CPUPurchasePrice", func(p *Params, f float64) { p.CPUPurchasePrice *= f }},
		{"CCPerGB", func(p *Params, f float64) { p.CCPerGB *= f }},
		{"CycleEnergyNJ", func(p *Params, f float64) { p.CycleEnergyNJ *= f }},
		{"ElectricityCost", func(p *Params, f float64) { p.ElectricityCost *= f }},
		{"IdleDIMMWatts", func(p *Params, f float64) { p.IdleDIMMWatts *= f }},
		{"PromotionRate", func(p *Params, f float64) {
			p.PromotionRate *= f
			if p.PromotionRate > 1 {
				p.PromotionRate = 1
			}
		}},
	}
}

// SensitivityOf sweeps every parameter ±swing around base and returns
// rows sorted by decreasing spread of the DRAM cost break-even year.
func SensitivityOf(base Params, swing, horizon float64) []SensitivityRow {
	rows := make([]SensitivityRow, 0, len(accessors()))
	for _, a := range accessors() {
		var row SensitivityRow
		row.Param = a.name

		lo := base
		a.apply(&lo, 1-swing)
		row.LowYears, row.LowOK = lo.CostBreakEvenYears(DRAM, horizon)

		hi := base
		a.apply(&hi, 1+swing)
		row.HighYears, row.HighOK = hi.CostBreakEvenYears(DRAM, horizon)

		switch {
		case row.LowOK && row.HighOK:
			row.Spread = row.HighYears - row.LowYears
			if row.Spread < 0 {
				row.Spread = -row.Spread
			}
		case row.LowOK || row.HighOK:
			row.Spread = horizon
		default:
			row.Spread = 0
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Spread > rows[j].Spread })
	return rows
}

// BreakEvenRobust reports whether the DRAM cost break-even stays
// within [minYears, maxYears] for every single-parameter perturbation
// of ±swing — the check that the paper's 8.5-year conclusion is not an
// artifact of one fitted constant.
func BreakEvenRobust(base Params, swing, minYears, maxYears, horizon float64) bool {
	for _, r := range SensitivityOf(base, swing, horizon) {
		for _, ok := range []struct {
			ok bool
			y  float64
		}{{r.LowOK, r.LowYears}, {r.HighOK, r.HighYears}} {
			if !ok.ok {
				return false
			}
			if ok.y < minYears || ok.y > maxYears {
				return false
			}
		}
	}
	return true
}

// MonteCarloResult summarizes a sampled break-even distribution.
type MonteCarloResult struct {
	Samples int
	// NoBreakEvenFrac is the fraction of samples where SFM never
	// catches DFM within the horizon (SFM stays cheaper throughout).
	NoBreakEvenFrac float64
	// UpfrontLossFrac is the fraction where SFM starts more expensive.
	UpfrontLossFrac float64
	// P10, P50, P90 are percentiles of the break-even year among
	// samples that have one.
	P10, P50, P90 float64
}

// MonteCarloBreakEven samples every model parameter independently and
// uniformly within ±swing and returns the distribution of the
// DRAM-DFM cost break-even year. Deterministic for a given seed.
func MonteCarloBreakEven(base Params, swing float64, samples int, seed int64, horizon float64) MonteCarloResult {
	rng := rand.New(rand.NewSource(seed))
	var years []float64
	res := MonteCarloResult{Samples: samples}
	none, upfront := 0, 0
	for i := 0; i < samples; i++ {
		p := base
		for _, a := range accessors() {
			a.apply(&p, 1-swing+2*swing*rng.Float64())
		}
		if p.SFMCost(0) >= p.DFMCost(DRAM, 0) {
			upfront++
			continue
		}
		if y, ok := p.CostBreakEvenYears(DRAM, horizon); ok {
			years = append(years, y)
		} else {
			none++
		}
	}
	res.NoBreakEvenFrac = float64(none) / float64(samples)
	res.UpfrontLossFrac = float64(upfront) / float64(samples)
	if len(years) > 0 {
		sort.Float64s(years)
		pick := func(q float64) float64 {
			i := int(q * float64(len(years)-1))
			return years[i]
		}
		res.P10, res.P50, res.P90 = pick(0.1), pick(0.5), pick(0.9)
	}
	return res
}
