// Package costmodel implements the paper's first-order analytical
// model of DFM vs SFM capital cost and carbon emissions (§3.1,
// EQ1–EQ5, Fig. 3). All equations and constants come from the paper;
// deviations are noted inline.
package costmodel

import (
	"fmt"
	"math"
)

// Params holds the model inputs. The zero value is not meaningful; use
// DefaultParams and override.
type Params struct {
	// ExtraGB is the far-memory capacity both deployments provide.
	ExtraGB float64
	// PromotionRate is the fraction of far memory accessed per minute
	// (§2.1); 0.2 means 20%.
	PromotionRate float64

	// DRAMCostPerGB and PMemCostPerGB are upfront memory prices
	// ($/GB). DIMMSizeGB is per technology (64 GB DRAM DIMMs, 512 GB
	// PMem DIMMs).
	DRAMCostPerGB   float64
	PMemCostPerGB   float64
	DRAMDIMMSizeGB  float64
	PMemDIMMSizeGB  float64
	PCIeEnergyKWhGB float64 // 2.44e-8 kWh/GB (88 pJ/byte, EQ2.1)
	IdleDIMMWatts   float64 // 4 W static per extra DIMM

	ElectricityCost float64 // $/kWh (0.12)

	// CPU parameters for SFM (EQ3): Intel Xeon E5-2670.
	CPUTDPWatts      float64
	CPUFreqGHz       float64
	CPUCores         int
	CPUPurchasePrice float64
	// CCPerGB is the average cycles to (de)compress one GB
	// (7.65e9, zstd/lzo average).
	CCPerGB float64
	// CycleEnergyNJ is the marginal CPU energy per compression cycle
	// in nanojoules. The paper derives energy from TDP, clock rate,
	// and CCPerGB without printing the intermediate value; we
	// calibrate this constant (≈1.9 nJ/cycle, a realistic per-core
	// dynamic energy) so the model reproduces the paper's break-even
	// shapes (see DESIGN.md).
	CycleEnergyNJ float64
	// OffloadMgmtFactor is the cycle overhead multiplier for the
	// dedicated core that manages accelerator offloads (§3.2).
	OffloadMgmtFactor float64

	// Emission factors (§3.1 Environmental Cost).
	ElectricityEmission float64 // 479 gCO2eq/kWh (Southwest Power Pool 2022)
	DRAMEmissionPerGB   float64 // 1.01 kgCO2eq/GB
	PMemEmissionPerGB   float64 // 0.62 kgCO2eq/GB
	CPUEmissionPerCore  float64 // 0.625 kgCO2eq/core
}

// DefaultParams returns the constants the paper uses. Memory prices
// are representative 2023 street prices; the paper does not print its
// exact $/GB, so these are documented substitutions.
func DefaultParams() Params {
	return Params{
		ExtraGB:             512,
		PromotionRate:       0.20,
		DRAMCostPerGB:       7.75,
		PMemCostPerGB:       3.9,
		DRAMDIMMSizeGB:      64,
		PMemDIMMSizeGB:      512,
		PCIeEnergyKWhGB:     2.44e-8,
		IdleDIMMWatts:       4,
		ElectricityCost:     0.12,
		CPUTDPWatts:         115,
		CPUFreqGHz:          2.6,
		CPUCores:            8,
		CPUPurchasePrice:    1000,
		CCPerGB:             7.65e9,
		CycleEnergyNJ:       1.93,
		OffloadMgmtFactor:   1.5,
		ElectricityEmission: 479, // gCO2eq/kWh
		DRAMEmissionPerGB:   1.01,
		PMemEmissionPerGB:   0.62,
		CPUEmissionPerCore:  0.625,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.ExtraGB <= 0 {
		return fmt.Errorf("costmodel: ExtraGB must be positive")
	}
	if p.PromotionRate < 0 || p.PromotionRate > 1 {
		return fmt.Errorf("costmodel: promotion rate %v outside [0,1]", p.PromotionRate)
	}
	if p.CPUFreqGHz <= 0 || p.CPUCores <= 0 {
		return fmt.Errorf("costmodel: invalid CPU parameters")
	}
	return nil
}

// GBSwappedPerMin implements EQ1: ExtraGB × PromotionRate.
func (p Params) GBSwappedPerMin() float64 {
	return p.ExtraGB * p.PromotionRate
}

// MemoryTech selects the DFM memory technology.
type MemoryTech int

// Memory technologies.
const (
	DRAM MemoryTech = iota
	PMem
)

func (m MemoryTech) String() string {
	if m == DRAM {
		return "DRAM"
	}
	return "PMem"
}

// DFMCost implements EQ2: the cumulative cost of a DFM deployment
// after `years` of operation, in dollars.
func (p Params) DFMCost(tech MemoryTech, years float64) float64 {
	costPerGB := p.DRAMCostPerGB
	if tech == PMem {
		costPerGB = p.PMemCostPerGB
	}
	upfront := p.ExtraGB * costPerGB
	hours := years * 365 * 24
	// EQ2.1: PCIe transfer energy for the swap traffic.
	gbPerHour := p.GBSwappedPerMin() * 60
	pcieKWh := p.PCIeEnergyKWhGB * gbPerHour * hours
	// EQ2.2: static power of the extra DIMMs.
	dimmSize := p.DRAMDIMMSizeGB
	if tech == PMem {
		dimmSize = p.PMemDIMMSizeGB
	}
	ndimms := math.Ceil(p.ExtraGB / dimmSize)
	idleKWh := p.IdleDIMMWatts / 1000 * ndimms * hours
	return upfront + (pcieKWh+idleKWh)*p.ElectricityCost
}

// CCNeededPerMin implements EQ3.4.
func (p Params) CCNeededPerMin() float64 {
	return p.GBSwappedPerMin() * p.CCPerGB
}

// CCAvailablePerMin implements EQ3.3.
func (p Params) CCAvailablePerMin() float64 {
	return p.CPUFreqGHz * 1e9 * float64(p.CPUCores) * 60
}

// CPUNeededFraction implements EQ3.2: the fraction of the CPU's
// cycles consumed by (de)compression.
func (p Params) CPUNeededFraction() float64 {
	return p.CCNeededPerMin() / p.CCAvailablePerMin()
}

// EnergyPerGBkWh is the CPU energy to (de)compress one GB:
// cycles/GB × energy/cycle.
func (p Params) EnergyPerGBkWh() float64 {
	joules := p.CCPerGB * p.CycleEnergyNJ * 1e-9
	return joules / 3.6e6 // J → kWh
}

// CompressionWatts returns the continuous CPU power the swap traffic
// demands (the §3.2 footnote's sustained (de)compression load).
func (p Params) CompressionWatts() float64 {
	gbPerSec := p.GBSwappedPerMin() / 60
	return gbPerSec * p.EnergyPerGBkWh() * 3.6e6 * 1000 / 1000
}

// SFMCost implements EQ3: cumulative SFM cost after `years`, in
// dollars: compression energy plus the amortized share of CPU
// purchase price.
func (p Params) SFMCost(years float64) float64 {
	hours := years * 365 * 24
	gbPerHour := p.GBSwappedPerMin() * 60
	energyCost := p.EnergyPerGBkWh() * gbPerHour * p.ElectricityCost * hours
	cpuCost := p.CPUNeededFraction() * p.CPUPurchasePrice // EQ3.1
	return energyCost + cpuCost
}

// DFMEmission implements EQ4: cumulative kgCO2eq after `years`.
func (p Params) DFMEmission(tech MemoryTech, years float64) float64 {
	perGB := p.DRAMEmissionPerGB
	if tech == PMem {
		perGB = p.PMemEmissionPerGB
	}
	embodied := p.ExtraGB * perGB
	hours := years * 365 * 24
	dimmSize := p.DRAMDIMMSizeGB
	if tech == PMem {
		dimmSize = p.PMemDIMMSizeGB
	}
	ndimms := math.Ceil(p.ExtraGB / dimmSize)
	idleKWh := p.IdleDIMMWatts / 1000 * ndimms * hours
	operational := idleKWh * p.ElectricityEmission / 1000 // g → kg
	return embodied + operational
}

// SFMEmission implements EQ5: cumulative kgCO2eq after `years`.
func (p Params) SFMEmission(years float64) float64 {
	embodied := p.CPUNeededFraction() * float64(p.CPUCores) * p.CPUEmissionPerCore
	hours := years * 365 * 24
	gbPerHour := p.GBSwappedPerMin() * 60
	operational := p.EnergyPerGBkWh() * gbPerHour * hours * p.ElectricityEmission / 1000
	return embodied + operational
}

// BreakEvenYears returns the years until SFM's cumulative cost reaches
// DFM's, using bisection over [0, horizon]. ok is false when SFM stays
// cheaper for the whole horizon (never breaks even) or is more
// expensive from the start.
func (p Params) BreakEvenYears(tech MemoryTech, horizon float64,
	sfmOf func(float64) float64, dfmOf func(MemoryTech, float64) float64) (float64, bool) {
	f := func(y float64) float64 { return dfmOf(tech, y) - sfmOf(y) }
	if f(0) <= 0 {
		return 0, false // SFM starts more expensive
	}
	if f(horizon) > 0 {
		return 0, false // never breaks even within horizon
	}
	lo, hi := 0.0, horizon
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, true
}

// CostBreakEvenYears returns when cumulative SFM cost overtakes DFM's.
func (p Params) CostBreakEvenYears(tech MemoryTech, horizon float64) (float64, bool) {
	return p.BreakEvenYears(tech, horizon, p.SFMCost, p.DFMCost)
}

// EmissionBreakEvenYears returns when cumulative SFM emissions
// overtake DFM's.
func (p Params) EmissionBreakEvenYears(tech MemoryTech, horizon float64) (float64, bool) {
	return p.BreakEvenYears(tech, horizon, p.SFMEmission, p.DFMEmission)
}

// AcceleratorBeneficialPromotion returns the promotion rate above
// which an integrated hardware accelerator pays for its dedicated
// management core (§3.2: "an integrated hardware accelerator becomes
// beneficial when the average promotion rate is higher than 6% in a
// 512GB SFM"). The accelerator consumes one physical core to manage
// offloads; it wins when SFM compression would otherwise need more
// than one core's worth of cycles.
func (p Params) AcceleratorBeneficialPromotion() float64 {
	// Cycles one management core provides per minute, inflated by the
	// offload management overhead.
	perCore := p.CPUFreqGHz * 1e9 * 60 * p.OffloadMgmtFactor
	// Promotion rate whose compression demand equals that budget.
	return perCore / (p.ExtraGB * p.CCPerGB)
}
