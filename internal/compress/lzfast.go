package compress

import (
	"encoding/binary"
	"math/bits"
	"sync"
)

// LZFast is a word-oriented LZ77 codec in the LZO/LZ4 speed class: a
// two-slot hash table probed with 8-byte loads, greedy matching with
// word-at-a-time extension, and a token-based output format with no
// entropy stage. It stands in for the lzo codec the paper's production
// SFMs use for low CPU overhead (§2.1); the kernels are written the
// way production LZ4-class codecs are written — machine-word probes and
// copies, not byte loops.
//
// Stream format (little-endian), unchanged since the byte-serial
// implementation (wire compatibility in both directions is pinned by
// the differential fuzz targets in compat_fuzz_test.go):
//
//	varint originalLen
//	sequence*:
//	  token byte: hi nibble = literal run length (15 ⇒ extended bytes
//	              follow, each adding 0-254, terminated by a byte <255);
//	              lo nibble = match length − 4 (15 ⇒ extended likewise)
//	  literal bytes
//	  uint16 match offset (absent in the final sequence)
//	  extended match length bytes (absent in the final sequence)
//
// The final sequence of a stream carries only literals; its token's low
// nibble is zero and no offset follows.
type LZFast struct {
	// maxOffset limits how far back matches may reach. This models the
	// compression window and is exercised by the multi-channel-mode
	// experiments (Fig. 8), where per-DIMM windows shrink to 2 KiB and
	// 1 KiB.
	maxOffset int
}

const (
	lzfMinMatch  = 4
	lzfMaxOffset = 65535
	lzfHashLog   = 13
	// lzfAccept is the prefer-recent heuristic threshold: when the most
	// recent hash slot already yields a match this long, the second
	// slot is not probed. Recent candidates win ties anyway (shorter
	// offsets), so the extra probe only pays off for short matches.
	lzfAccept = 32
)

// lzfEncState is the pooled per-call state of the compress hot path:
// a two-slot hash table validated by a per-call generation stamp, so
// no per-call table clearing is needed (the byte-serial kernel zeroed
// 32 KiB of table per 4 KiB page).
type lzfEncState struct {
	gen  uint32
	tag  [1 << lzfHashLog]uint32
	slot [1 << lzfHashLog][2]int32
}

var lzfEncPool = sync.Pool{New: func() any { return new(lzfEncState) }}

// next advances the generation stamp, clearing the tag table only on
// the (once per 2³² calls) wraparound.
func (st *lzfEncState) next() uint32 {
	st.gen++
	if st.gen == 0 {
		for i := range st.tag {
			st.tag[i] = 0
		}
		st.gen = 1
	}
	return st.gen
}

// NewLZFast returns the default LZFast codec with a 64 KiB window.
func NewLZFast() *LZFast { return &LZFast{maxOffset: lzfMaxOffset} }

// NewLZFastWindow returns an LZFast codec whose matches are limited to
// the given window in bytes (clamped to [1, 65535]).
func NewLZFastWindow(window int) *LZFast {
	if window < 1 {
		window = 1
	}
	if window > lzfMaxOffset {
		window = lzfMaxOffset
	}
	return &LZFast{maxOffset: window}
}

// Name implements Codec.
func (z *LZFast) Name() string {
	if z.maxOffset == lzfMaxOffset {
		return "lzfast"
	}
	return "lzfast-w" + itoa(z.maxOffset)
}

// Info implements Codec. Constants follow the paper's lzo-class cost:
// fast compression and very fast decompression.
func (z *LZFast) Info() CodecInfo {
	return CodecInfo{
		CompressCyclesPerByte:   6.0,
		DecompressCyclesPerByte: 1.5,
		TypicalRatio:            2.1,
	}
}

// MaxCompressedLen implements Codec.
func (z *LZFast) MaxCompressedLen(n int) int {
	// varint header + literals + one extension byte per 255 literals
	// + token overhead.
	return n + n/255 + 16
}

// lzfHash8 hashes the low 5 bytes of an 8-byte little-endian load.
// Hashing one byte past the 4-byte minimum match keeps the two slots
// from filling up with short-period collisions while still finding
// every ≥ 5-byte repeat; 4-byte candidates are verified explicitly.
func lzfHash8(v uint64) uint32 {
	return uint32(((v << 24) * 0x9E3779B185EBCA87) >> (64 - lzfHashLog))
}

// lzfExtendMatch returns the common-prefix length of src[a:] and
// src[b:] (b > a), comparing 8 bytes per iteration and finishing the
// first differing word with a trailing-zero count.
func lzfExtendMatch(src []byte, a, b int) int {
	n := 0
	for b+n+8 <= len(src) {
		x := binary.LittleEndian.Uint64(src[a+n:]) ^ binary.LittleEndian.Uint64(src[b+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for b+n < len(src) && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// Compress implements Codec.
//
//xfm:hotpath
func (z *LZFast) Compress(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	st := lzfEncPool.Get().(*lzfEncState)
	gen := st.next()
	anchor := 0 // start of pending literal run
	i := 0
	// Word probes need an 8-byte load at i; the (< 8 byte) tail is
	// emitted as literals.
	probeLimit := len(src) - 8
	for i <= probeLimit {
		v := binary.LittleEndian.Uint64(src[i:])
		h := lzfHash8(v)
		cand := -1
		mlen := 0
		if st.tag[h] == gen {
			// Prefer-recent: slot 0 holds the most recent position with
			// this hash. Only when its match is short is the older slot
			// worth probing for a longer one.
			s0, s1 := int(st.slot[h][0]), int(st.slot[h][1])
			if i-s0 <= z.maxOffset &&
				binary.LittleEndian.Uint32(src[s0:]) == uint32(v) {
				cand = s0
				mlen = lzfMinMatch + lzfExtendMatch(src, s0+lzfMinMatch, i+lzfMinMatch)
			}
			if mlen < lzfAccept && s1 >= 0 && i-s1 <= z.maxOffset &&
				binary.LittleEndian.Uint32(src[s1:]) == uint32(v) {
				if l := lzfMinMatch + lzfExtendMatch(src, s1+lzfMinMatch, i+lzfMinMatch); l > mlen {
					cand = s1
					mlen = l
				}
			}
			st.slot[h][1] = st.slot[h][0]
			st.slot[h][0] = int32(i)
		} else {
			st.tag[h] = gen
			st.slot[h][0] = int32(i)
			st.slot[h][1] = -1
		}
		if mlen >= lzfMinMatch {
			dst = lzfEmit(dst, src[anchor:i], i-cand, mlen)
			i += mlen
			anchor = i
			continue
		}
		i++
	}
	// Trailing literals-only sequence, omitted when a match consumed
	// the input exactly.
	if anchor < len(src) {
		dst = lzfEmitFinal(dst, src[anchor:])
	}
	lzfEncPool.Put(st)
	return dst
}

// lzfEmit appends one (literals, match) sequence. Capacity for the
// whole sequence is ensured once up front, then every byte is written
// by index — no per-byte append bounds checks on the hot path.
func lzfEmit(dst, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	matchCode := mlen - lzfMinMatch
	// Worst case: token + litLen/255+1 extension bytes + literals +
	// 2-byte offset + matchCode/255+1 extension bytes.
	need := 1 + litLen/255 + 1 + litLen + 2 + matchCode/255 + 1
	o := len(dst)
	dst = growSlack(dst, need)
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if matchCode >= 15 {
		token |= 15
	} else {
		token |= byte(matchCode)
	}
	dst[o] = token
	o++
	if litLen >= 15 {
		o = lzfPutExt(dst, o, litLen-15)
	}
	copy(dst[o:], lits)
	o += litLen
	dst[o] = byte(offset)
	dst[o+1] = byte(offset >> 8)
	o += 2
	if matchCode >= 15 {
		o = lzfPutExt(dst, o, matchCode-15)
	}
	return dst[:o]
}

// lzfEmitFinal appends the terminal literals-only sequence.
func lzfEmitFinal(dst, lits []byte) []byte {
	litLen := len(lits)
	o := len(dst)
	dst = growSlack(dst, 1+litLen/255+1+litLen)
	if litLen >= 15 {
		dst[o] = 15 << 4
		o++
		o = lzfPutExt(dst, o, litLen-15)
	} else {
		dst[o] = byte(litLen) << 4
		o++
	}
	copy(dst[o:], lits)
	return dst[:o+litLen]
}

// lzfPutExt writes an extension count at dst[o:]: bytes of 255
// followed by the remainder byte (<255). Returns the new offset.
func lzfPutExt(dst []byte, o, n int) int {
	for n >= 255 {
		dst[o] = 255
		o++
		n -= 255
	}
	dst[o] = byte(n)
	return o + 1
}

// growSlack extends dst's length by n (contents unspecified),
// reallocating only when capacity is short — the index-write
// counterpart of repeated appends.
func growSlack(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	grown := make([]byte, len(dst)+n, (len(dst)+n)*2+64)
	copy(grown, dst)
	return grown
}

// Decompress implements Codec.
//
//xfm:hotpath
func (z *LZFast) Decompress(dst, src []byte) ([]byte, error) {
	origLen, n, ok := readUvarint(src)
	if !ok {
		return dst, ErrCorrupt
	}
	src = src[n:]
	base := len(dst)
	want := base + int(origLen)
	if want <= base {
		// Zero-length claim (or a wrapped 64-bit one): valid only when
		// nothing follows the header.
		if len(src) != 0 {
			return dst, ErrCorrupt
		}
		return dst, nil
	}
	// Expansion sanity bound: one compressed byte cannot decode to more
	// than 255 output bytes (extension bytes add ≤ 255 each), so a
	// longer claim is corrupt. Checking up front lets the hot loop
	// reserve the whole output once and write by index.
	if origLen > uint64(len(src))*256+64 {
		return dst, ErrCorrupt
	}
	// Exact-size reservation: callers decompress in place into
	// page-sized buffers (CPUBackend passes dst[:0] with cap PageSize),
	// so the output must not outgrow want. Word-wise copies below are
	// bounded to never overshoot it.
	out := Grow(dst, int(origLen))
	o := base
	s := 0
	for o < want {
		if s >= len(src) {
			return dst, ErrCorrupt
		}
		token := src[s]
		s++
		litLen := int(token >> 4)
		if litLen == 15 {
			ext, ns, err := lzfReadExtAt(src, s)
			if err != nil {
				return dst, err
			}
			litLen += ext
			s = ns
		}
		if litLen > len(src)-s {
			return dst, ErrCorrupt
		}
		if o+litLen > want {
			return dst, ErrCorrupt
		}
		copy(out[o:], src[s:s+litLen])
		o += litLen
		s += litLen
		if o == want {
			// Final literals-only sequence: the match half of the
			// token must be empty and the stream must end here.
			if token&0x0f != 0 {
				return dst, ErrCorrupt
			}
			break
		}
		if len(src)-s < 2 {
			return dst, ErrCorrupt
		}
		offset := int(src[s]) | int(src[s+1])<<8
		s += 2
		mlen := int(token&0x0f) + lzfMinMatch
		if token&0x0f == 15 {
			ext, ns, err := lzfReadExtAt(src, s)
			if err != nil {
				return dst, err
			}
			mlen += ext
			s = ns
		}
		start := o - offset
		if offset == 0 || start < base {
			return dst, ErrCorrupt
		}
		if o+mlen > want {
			return dst, ErrCorrupt
		}
		if offset >= 8 {
			// Word-wise match copy. The wildcopy form overshoots by up
			// to 7 bytes, so it runs only while that slack fits inside
			// the output; the final match of a stream finishes with an
			// exact word loop plus a byte tail.
			k := 0
			if o+mlen+8 <= len(out) {
				for ; k < mlen; k += 8 {
					binary.LittleEndian.PutUint64(out[o+k:], binary.LittleEndian.Uint64(out[start+k:]))
				}
			} else {
				for ; k+8 <= mlen; k += 8 {
					binary.LittleEndian.PutUint64(out[o+k:], binary.LittleEndian.Uint64(out[start+k:]))
				}
				for ; k < mlen; k++ {
					out[o+k] = out[start+k]
				}
			}
			o += mlen
		} else {
			// Overlapping copy (RLE via offset < length): write one
			// period byte-wise, then double the region with
			// memmove-backed copies.
			end := o + mlen
			p := o
			for k := 0; k < offset && p < end; k++ {
				out[p] = out[start+k]
				p++
			}
			for p < end {
				p += copy(out[p:end], out[start:p])
			}
			o = end
		}
	}
	if s != len(src) {
		return dst, ErrCorrupt
	}
	return out[:want], nil
}

// lzfReadExtAt reads an extension count at src[o:], returning the
// count and the new offset.
func lzfReadExtAt(src []byte, o int) (int, int, error) {
	ext := 0
	for {
		if o >= len(src) {
			return 0, o, ErrCorrupt
		}
		b := src[o]
		o++
		ext += int(b)
		if b < 255 {
			return ext, o, nil
		}
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(src []byte) (v uint64, n int, ok bool) {
	var shift uint
	for i, b := range src {
		if i >= 10 {
			return 0, 0, false
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1, true
		}
		shift += 7
	}
	return 0, 0, false
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
