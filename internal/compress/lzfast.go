package compress

import "encoding/binary"

// LZFast is a byte-oriented LZ77 codec in the LZO/LZ4 speed class: a
// single-probe hash table, greedy matching, and a token-based output
// format with no entropy stage. It stands in for the lzo codec the
// paper's production SFMs use for low CPU overhead (§2.1).
//
// Stream format (little-endian):
//
//	varint originalLen
//	sequence*:
//	  token byte: hi nibble = literal run length (15 ⇒ extended bytes
//	              follow, each adding 0-254, terminated by a byte <255);
//	              lo nibble = match length − 4 (15 ⇒ extended likewise)
//	  literal bytes
//	  uint16 match offset (absent in the final sequence)
//	  extended match length bytes (absent in the final sequence)
//
// The final sequence of a stream carries only literals; its token's low
// nibble is zero and no offset follows.
type LZFast struct {
	// maxOffset limits how far back matches may reach. This models the
	// compression window and is exercised by the multi-channel-mode
	// experiments (Fig. 8), where per-DIMM windows shrink to 2 KiB and
	// 1 KiB.
	maxOffset int
}

const (
	lzfMinMatch  = 4
	lzfMaxOffset = 65535
	lzfHashLog   = 13
)

// NewLZFast returns the default LZFast codec with a 64 KiB window.
func NewLZFast() *LZFast { return &LZFast{maxOffset: lzfMaxOffset} }

// NewLZFastWindow returns an LZFast codec whose matches are limited to
// the given window in bytes (clamped to [1, 65535]).
func NewLZFastWindow(window int) *LZFast {
	if window < 1 {
		window = 1
	}
	if window > lzfMaxOffset {
		window = lzfMaxOffset
	}
	return &LZFast{maxOffset: window}
}

// Name implements Codec.
func (z *LZFast) Name() string {
	if z.maxOffset == lzfMaxOffset {
		return "lzfast"
	}
	return "lzfast-w" + itoa(z.maxOffset)
}

// Info implements Codec. Constants follow the paper's lzo-class cost:
// fast compression and very fast decompression.
func (z *LZFast) Info() CodecInfo {
	return CodecInfo{
		CompressCyclesPerByte:   6.0,
		DecompressCyclesPerByte: 1.5,
		TypicalRatio:            2.1,
	}
}

// MaxCompressedLen implements Codec.
func (z *LZFast) MaxCompressedLen(n int) int {
	// varint header + literals + one extension byte per 255 literals
	// + token overhead.
	return n + n/255 + 16
}

// Compress implements Codec.
func (z *LZFast) Compress(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [1 << lzfHashLog]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0 // start of pending literal run
	i := 0
	limit := len(src) - lzfMinMatch
	for i <= limit {
		h := lzfHash(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand <= z.maxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == binary.LittleEndian.Uint32(src[i:]) {
			// Extend the match forward.
			mlen := lzfMinMatch
			for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			dst = lzfEmit(dst, src[anchor:i], i-cand, mlen)
			i += mlen
			anchor = i
			continue
		}
		i++
	}
	// Trailing literals-only sequence, omitted when a match consumed
	// the input exactly.
	if anchor < len(src) {
		dst = lzfEmitFinal(dst, src[anchor:])
	}
	return dst
}

// lzfEmit appends one (literals, match) sequence.
func lzfEmit(dst, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	matchCode := mlen - lzfMinMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if matchCode >= 15 {
		token |= 15
	} else {
		token |= byte(matchCode)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lzfExt(dst, litLen-15)
	}
	dst = append(dst, lits...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if matchCode >= 15 {
		dst = lzfExt(dst, matchCode-15)
	}
	return dst
}

// lzfEmitFinal appends the terminal literals-only sequence.
func lzfEmitFinal(dst, lits []byte) []byte {
	litLen := len(lits)
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lzfExt(dst, litLen-15)
	}
	return append(dst, lits...)
}

// lzfExt encodes an extension count: bytes of 255 followed by the
// remainder byte (<255).
func lzfExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompress implements Codec.
func (z *LZFast) Decompress(dst, src []byte) ([]byte, error) {
	origLen, n, ok := readUvarint(src)
	if !ok {
		return dst, ErrCorrupt
	}
	src = src[n:]
	base := len(dst)
	want := base + int(origLen)
	for len(dst) < want {
		if len(src) == 0 {
			return dst, ErrCorrupt
		}
		token := src[0]
		src = src[1:]
		litLen := int(token >> 4)
		if litLen == 15 {
			var ext int
			var err error
			ext, src, err = lzfReadExt(src)
			if err != nil {
				return dst, err
			}
			litLen += ext
		}
		if litLen > len(src) {
			return dst, ErrCorrupt
		}
		dst = append(dst, src[:litLen]...)
		src = src[litLen:]
		if len(dst) == want {
			// Final literals-only sequence: the match half of the
			// token must be empty and the stream must end here.
			if token&0x0f != 0 {
				return dst, ErrCorrupt
			}
			break
		}
		if len(dst) > want {
			return dst, ErrCorrupt
		}
		if len(src) < 2 {
			return dst, ErrCorrupt
		}
		offset := int(src[0]) | int(src[1])<<8
		src = src[2:]
		mlen := int(token&0x0f) + lzfMinMatch
		if token&0x0f == 15 {
			var ext int
			var err error
			ext, src, err = lzfReadExt(src)
			if err != nil {
				return dst, err
			}
			mlen += ext
		}
		start := len(dst) - offset
		if offset == 0 || start < base {
			return dst, ErrCorrupt
		}
		if len(dst)+mlen > want {
			return dst, ErrCorrupt
		}
		// Byte-at-a-time copy: matches may overlap their own output
		// (run-length encoding via offset < length).
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	if len(src) != 0 {
		return dst, ErrCorrupt
	}
	return dst, nil
}

func lzfReadExt(src []byte) (int, []byte, error) {
	ext := 0
	for {
		if len(src) == 0 {
			return 0, src, ErrCorrupt
		}
		b := src[0]
		src = src[1:]
		ext += int(b)
		if b < 255 {
			return ext, src, nil
		}
	}
}

func lzfHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzfHashLog)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(src []byte) (v uint64, n int, ok bool) {
	var shift uint
	for i, b := range src {
		if i >= 10 {
			return 0, 0, false
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1, true
		}
		shift += 7
	}
	return 0, 0, false
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
