package compress

import "sort"

// Canonical Huffman coding used by the xdeflate codec. Code lengths are
// limited to huffMaxBits; codes are assigned canonically (by length,
// then symbol), so a decoder needs only the length table.

const huffMaxBits = 15

// huffBuildLengths computes length-limited Huffman code lengths for the
// given symbol frequencies. Symbols with zero frequency get length 0.
// If only one symbol has nonzero frequency it is assigned length 1.
func huffBuildLengths(freq []int) []uint8 {
	lengths := make([]uint8, len(freq))
	var live []int // indexes of unmerged nodes
	var nodes []nodeRef
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, nodeRef{weight: f, sym: s, left: -1, right: -1})
			live = append(live, len(nodes)-1)
		}
	}
	switch len(live) {
	case 0:
		return lengths
	case 1:
		lengths[nodes[live[0]].sym] = 1
		return lengths
	}
	for attempt := 0; ; attempt++ {
		// Standard Huffman construction over the current weights.
		work := append([]int(nil), live...)
		sort.Slice(work, func(i, j int) bool {
			return nodes[work[i]].weight < nodes[work[j]].weight
		})
		// Simple two-queue merge: leaves queue + internal queue, both
		// kept sorted by construction.
		leaves := work
		var internal []int
		pop := func() int {
			if len(leaves) == 0 {
				n := internal[0]
				internal = internal[1:]
				return n
			}
			if len(internal) == 0 || nodes[leaves[0]].weight <= nodes[internal[0]].weight {
				n := leaves[0]
				leaves = leaves[1:]
				return n
			}
			n := internal[0]
			internal = internal[1:]
			return n
		}
		total := len(leaves)
		for total > 1 {
			a := pop()
			b := pop()
			nodes = append(nodes, nodeRef{weight: nodes[a].weight + nodes[b].weight, sym: -1, left: a, right: b})
			internal = append(internal, len(nodes)-1)
			total--
		}
		root := pop()
		// Walk depths iteratively.
		maxDepth := assignDepths(nodes, root, lengths)
		if maxDepth <= huffMaxBits {
			return lengths
		}
		// Length overflow: dampen the weights and retry. Each round
		// halves the dynamic range, converging to equal weights
		// (a balanced tree) in the worst case.
		for _, idx := range live {
			nodes[idx].weight = nodes[idx].weight/2 + 1
		}
		nodes = nodes[:len(live)] // drop internal nodes
		for i := range lengths {
			lengths[i] = 0
		}
	}
}

// nodeRef is a Huffman tree node: sym >= 0 for leaves, -1 for internal
// nodes; left/right index into the shared nodes slice.
type nodeRef struct {
	weight int
	sym    int
	left   int
	right  int
}

// assignDepths writes leaf depths into lengths and returns the maximum
// depth found.
func assignDepths(nodes []nodeRef, root int, lengths []uint8) int {
	type item struct {
		idx   int
		depth int
	}
	maxDepth := 0
	stack := []item{{root, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := nodes[it.idx]
		if n.sym >= 0 {
			d := it.depth
			if d == 0 {
				d = 1 // single-symbol tree
			}
			lengths[n.sym] = uint8(d)
			if d > maxDepth {
				maxDepth = d
			}
			continue
		}
		stack = append(stack, item{n.left, it.depth + 1}, item{n.right, it.depth + 1})
	}
	return maxDepth
}

// huffCanonicalCodes assigns canonical codes from lengths. The returned
// codes are bit-reversed for LSB-first emission (like DEFLATE).
func huffCanonicalCodes(lengths []uint8) []uint32 {
	codes := make([]uint32, len(lengths))
	var blCount [huffMaxBits + 1]int
	for _, l := range lengths {
		blCount[l]++
	}
	blCount[0] = 0
	var nextCode [huffMaxBits + 1]uint32
	code := uint32(0)
	for bits := 1; bits <= huffMaxBits; bits++ {
		code = (code + uint32(blCount[bits-1])) << 1
		nextCode[bits] = code
	}
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		codes[sym] = reverseBits(nextCode[l], uint(l))
		nextCode[l]++
	}
	return codes
}

func reverseBits(v uint32, n uint) uint32 {
	var out uint32
	for i := uint(0); i < n; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}

// huffDecoder decodes canonical codes emitted LSB-first, one bit at a
// time. Simple but sufficient: xdeflate is a model codec, not a
// throughput record-setter.
type huffDecoder struct {
	// count[l] = number of codes of length l; syms lists symbols in
	// canonical order.
	count [huffMaxBits + 1]int
	syms  []int
}

func newHuffDecoder(lengths []uint8) *huffDecoder {
	d := &huffDecoder{}
	type sl struct {
		sym int
		l   uint8
	}
	var entries []sl
	for sym, l := range lengths {
		if l > 0 {
			d.count[l]++
			entries = append(entries, sl{sym, l})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].l != entries[j].l {
			return entries[i].l < entries[j].l
		}
		return entries[i].sym < entries[j].sym
	})
	d.syms = make([]int, len(entries))
	for i, e := range entries {
		d.syms[i] = e.sym
	}
	return d
}

// decode reads one symbol from r. Returns -1 on corrupt input.
func (d *huffDecoder) decode(r *bitReader) int {
	code := 0
	first := 0
	index := 0
	for l := 1; l <= huffMaxBits; l++ {
		code |= int(r.readBits(1))
		if r.bad {
			return -1
		}
		count := d.count[l]
		if code-first < count {
			return d.syms[index+code-first]
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return -1
}
