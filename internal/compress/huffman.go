package compress

import "slices"

// Canonical Huffman coding used by the xdeflate codec. Code lengths are
// limited to huffMaxBits; codes are assigned canonically (by length,
// then symbol), so a decoder needs only the length table.

const huffMaxBits = 15

// huffScratch holds the reusable working state of the Huffman
// construction so the hot path builds code tables without allocating.
// It lives inside the pooled xdeflate encode state.
type huffScratch struct {
	nodes    []nodeRef
	live     []int32
	keys     []int64
	work     []int32
	internal []int32
	stack    []depthItem
}

type depthItem struct {
	idx   int32
	depth int32
}

// huffBuildLengthsInto computes length-limited Huffman code lengths for
// the given symbol frequencies into lengths (len(lengths) must equal
// len(freq)). Symbols with zero frequency get length 0. If only one
// symbol has nonzero frequency it is assigned length 1. All working
// memory comes from hs.
//
//xfm:allocok pop/merge closures do not escape and are stack-allocated; zero allocs/op pinned by the compression benchmarks
func huffBuildLengthsInto(lengths []uint8, freq []int, hs *huffScratch) {
	for i := range lengths {
		lengths[i] = 0
	}
	hs.nodes = hs.nodes[:0]
	hs.live = hs.live[:0]
	for s, f := range freq {
		if f > 0 {
			hs.nodes = append(hs.nodes, nodeRef{weight: f, sym: s, left: -1, right: -1})
			hs.live = append(hs.live, int32(len(hs.nodes)-1))
		}
	}
	switch len(hs.live) {
	case 0:
		return
	case 1:
		lengths[hs.nodes[hs.live[0]].sym] = 1
		return
	}
	for attempt := 0; ; attempt++ {
		// Standard Huffman construction over the current weights. The
		// sort key is (weight, node index): a total order packed into
		// one int64, so the code assignment is deterministic and the
		// sort runs closure- and allocation-free.
		hs.keys = hs.keys[:0]
		for _, idx := range hs.live {
			hs.keys = append(hs.keys, int64(hs.nodes[idx].weight)<<20|int64(idx))
		}
		slices.Sort(hs.keys)
		hs.work = hs.work[:0]
		for _, k := range hs.keys {
			hs.work = append(hs.work, int32(k&(1<<20-1)))
		}
		// Simple two-queue merge: leaves queue + internal queue, both
		// kept sorted by construction.
		leaves := hs.work
		li := 0
		hs.internal = hs.internal[:0]
		ii := 0
		pop := func() int32 {
			if li >= len(leaves) {
				n := hs.internal[ii]
				ii++
				return n
			}
			if ii >= len(hs.internal) || hs.nodes[leaves[li]].weight <= hs.nodes[hs.internal[ii]].weight {
				n := leaves[li]
				li++
				return n
			}
			n := hs.internal[ii]
			ii++
			return n
		}
		total := len(leaves)
		for total > 1 {
			a := pop()
			b := pop()
			hs.nodes = append(hs.nodes, nodeRef{
				weight: hs.nodes[a].weight + hs.nodes[b].weight,
				sym:    -1, left: a, right: b,
			})
			hs.internal = append(hs.internal, int32(len(hs.nodes)-1))
			total--
		}
		root := pop()
		// Walk depths iteratively.
		maxDepth := assignDepths(hs, root, lengths)
		if maxDepth <= huffMaxBits {
			return
		}
		// Length overflow: dampen the weights and retry. Each round
		// halves the dynamic range, converging to equal weights
		// (a balanced tree) in the worst case.
		for _, idx := range hs.live {
			hs.nodes[idx].weight = hs.nodes[idx].weight/2 + 1
		}
		hs.nodes = hs.nodes[:len(hs.live)] // drop internal nodes
		for i := range lengths {
			lengths[i] = 0
		}
	}
}

// huffBuildLengths is the allocating convenience form used by tests.
func huffBuildLengths(freq []int) []uint8 {
	lengths := make([]uint8, len(freq))
	var hs huffScratch
	huffBuildLengthsInto(lengths, freq, &hs)
	return lengths
}

// nodeRef is a Huffman tree node: sym >= 0 for leaves, -1 for internal
// nodes; left/right index into the shared nodes slice.
type nodeRef struct {
	weight int
	sym    int
	left   int32
	right  int32
}

// assignDepths writes leaf depths into lengths and returns the maximum
// depth found.
func assignDepths(hs *huffScratch, root int32, lengths []uint8) int {
	maxDepth := 0
	hs.stack = append(hs.stack[:0], depthItem{root, 0})
	for len(hs.stack) > 0 {
		it := hs.stack[len(hs.stack)-1]
		hs.stack = hs.stack[:len(hs.stack)-1]
		n := hs.nodes[it.idx]
		if n.sym >= 0 {
			d := int(it.depth)
			if d == 0 {
				d = 1 // single-symbol tree
			}
			lengths[n.sym] = uint8(d)
			if d > maxDepth {
				maxDepth = d
			}
			continue
		}
		hs.stack = append(hs.stack, depthItem{n.left, it.depth + 1}, depthItem{n.right, it.depth + 1})
	}
	return maxDepth
}

// huffCanonicalCodesInto assigns canonical codes from lengths into
// codes (len(codes) must equal len(lengths)). The codes are
// bit-reversed for LSB-first emission (like DEFLATE).
func huffCanonicalCodesInto(codes []uint32, lengths []uint8) {
	var blCount [huffMaxBits + 1]int
	for _, l := range lengths {
		blCount[l]++
	}
	blCount[0] = 0
	var nextCode [huffMaxBits + 1]uint32
	code := uint32(0)
	for bits := 1; bits <= huffMaxBits; bits++ {
		code = (code + uint32(blCount[bits-1])) << 1
		nextCode[bits] = code
	}
	for sym, l := range lengths {
		if l == 0 {
			codes[sym] = 0
			continue
		}
		codes[sym] = reverseBits(nextCode[l], uint(l))
		nextCode[l]++
	}
}

// huffCanonicalCodes is the allocating convenience form used by tests.
func huffCanonicalCodes(lengths []uint8) []uint32 {
	codes := make([]uint32, len(lengths))
	huffCanonicalCodesInto(codes, lengths)
	return codes
}

func reverseBits(v uint32, n uint) uint32 {
	var out uint32
	for i := uint(0); i < n; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}

// huffTableBits is the width of the first-level decode table: codes up
// to 9 bits resolve with one peek + one lookup. DEFLATE-style litlen
// trees put all frequent symbols well inside 9 bits, so the bit-serial
// walk below survives only as the cold fallback for 10–15 bit codes.
const huffTableBits = 9

// huffDecoder decodes canonical codes emitted LSB-first: a multi-bit
// first-level lookup table resolves short codes in one step, and a
// canonical (count, syms) walk handles the over-long tail.
type huffDecoder struct {
	// count[l] = number of codes of length l; syms lists symbols in
	// canonical order.
	count [huffMaxBits + 1]int
	syms  []int
	// table maps the next huffTableBits input bits (LSB-first, i.e.
	// bit-reversed code prefixes) to sym<<4 | codeLen for codes of
	// ≤ huffTableBits bits. A zero entry means "not decodable at this
	// level": fall back to the bit-serial walk. (A real symbol 0 of
	// length l encodes as the nonzero value l, so 0 is unambiguous.)
	table [1 << huffTableBits]uint16
}

// init rebuilds the decoder from a code-length table, reusing the
// symbol buffer. Canonical order is (length, symbol), which a pass per
// length in ascending symbol order produces directly — no sort, no
// allocation in the steady state.
func (d *huffDecoder) init(lengths []uint8) {
	for i := range d.count {
		d.count[i] = 0
	}
	n := 0
	for _, l := range lengths {
		if l > 0 {
			d.count[l]++
			n++
		}
	}
	if cap(d.syms) < n {
		d.syms = make([]int, n)
	}
	d.syms = d.syms[:n]
	idx := 0
	for l := uint8(1); l <= huffMaxBits; l++ {
		if d.count[l] == 0 {
			continue
		}
		for sym, sl := range lengths {
			if sl == l {
				d.syms[idx] = sym
				idx++
			}
		}
	}
	d.buildTable()
}

// buildTable fills the first-level table from the canonical (count,
// syms) form. Each ≤ huffTableBits code occupies every table index
// whose low bits equal its bit-reversed pattern.
func (d *huffDecoder) buildTable() {
	for i := range d.table {
		d.table[i] = 0
	}
	// Over-subscribed length tables (possible only on corrupt input)
	// break the canonical progression below: an overflowed code aliases
	// earlier table slots after bit reversal. Leave the table empty in
	// that case so every decode takes the bit-serial walk, which keeps
	// the accept/reject behavior of the pre-table decoder bit-for-bit.
	kraft := uint32(0)
	for l := 1; l <= huffMaxBits; l++ {
		kraft = kraft<<1 + uint32(d.count[l])
		if kraft > 1<<l {
			return
		}
	}
	// Reconstruct the canonical code progression (same recurrence as
	// huffCanonicalCodesInto) over the symbols in canonical order.
	code := uint32(0)
	idx := 0
	for l := uint(1); l <= huffMaxBits; l++ {
		code <<= 1
		cnt := d.count[l]
		if l > huffTableBits {
			break
		}
		for k := 0; k < cnt; k++ {
			rev := reverseBits(code, l)
			entry := uint16(d.syms[idx])<<4 | uint16(l)
			for j := rev; j < uint32(len(d.table)); j += 1 << l {
				d.table[j] = entry
			}
			code++
			idx++
		}
	}
}

func newHuffDecoder(lengths []uint8) *huffDecoder {
	d := &huffDecoder{}
	d.init(lengths)
	return d
}

// decode reads one symbol from r. Returns -1 on corrupt input. The
// fast path is one peek + one table lookup; codes longer than
// huffTableBits fall back to the canonical bit-serial walk.
func (d *huffDecoder) decode(r *bitReader) int {
	if e := d.table[r.peek(huffTableBits)]; e != 0 {
		if !r.consume(uint(e & 0x0f)) {
			// Table hit on end-of-stream zero padding: the code needs
			// more bits than the stream holds.
			return -1
		}
		return int(e >> 4)
	}
	return d.decodeSlow(r)
}

// decodeSlow is the bit-serial canonical walk for codes longer than
// huffTableBits (and the no-table corner cases).
func (d *huffDecoder) decodeSlow(r *bitReader) int {
	code := 0
	first := 0
	index := 0
	for l := 1; l <= huffMaxBits; l++ {
		code |= int(r.readBits(1))
		if r.bad {
			return -1
		}
		count := d.count[l]
		if code-first < count {
			return d.syms[index+code-first]
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return -1
}
