package compress

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Streaming wrappers: frame a byte stream into independently
// compressed blocks so any Codec can serve io.Reader/io.Writer
// pipelines (trace files, corpus dumps). Each frame is
// [uvarint compressedLen][compressed block]; blocks are BlockSize
// bytes of plaintext except the last. Framing at page granularity
// mirrors how the SFM stores data, so stream ratios match page
// ratios.

// DefaultBlockSize is the plaintext block size of the stream format.
const DefaultBlockSize = 4096

// StreamWriter compresses written data block by block.
type StreamWriter struct {
	w     io.Writer
	codec Codec
	block []byte
	buf   []byte
	comp  []byte
	err   error
}

// NewStreamWriter returns a writer compressing onto w with the codec
// at DefaultBlockSize granularity.
func NewStreamWriter(w io.Writer, c Codec) *StreamWriter {
	return &StreamWriter{w: w, codec: c, block: make([]byte, 0, DefaultBlockSize)}
}

// Write implements io.Writer.
func (s *StreamWriter) Write(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n := len(p)
	for len(p) > 0 {
		room := DefaultBlockSize - len(s.block)
		take := room
		if take > len(p) {
			take = len(p)
		}
		s.block = append(s.block, p[:take]...)
		p = p[take:]
		if len(s.block) == DefaultBlockSize {
			if err := s.flushBlock(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

func (s *StreamWriter) flushBlock() error {
	if len(s.block) == 0 {
		return nil
	}
	s.comp = s.codec.Compress(s.comp[:0], s.block)
	s.buf = binary.AppendUvarint(s.buf[:0], uint64(len(s.comp)))
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(s.comp); err != nil {
		s.err = err
		return err
	}
	s.block = s.block[:0]
	return nil
}

// Close flushes the final partial block. It does not close the
// underlying writer.
func (s *StreamWriter) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.flushBlock()
}

// StreamReader decompresses a stream produced by StreamWriter.
type StreamReader struct {
	r     *byteReader
	codec Codec
	block []byte
	pos   int
	comp  []byte
	err   error
}

// byteReader adapts an io.Reader for binary.ReadUvarint while keeping
// bulk reads efficient.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

// NewStreamReader returns a reader decompressing from r with the
// codec.
func NewStreamReader(r io.Reader, c Codec) *StreamReader {
	return &StreamReader{r: &byteReader{r: r}, codec: c}
}

// Read implements io.Reader.
func (s *StreamReader) Read(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	total := 0
	for len(p) > 0 {
		if s.pos == len(s.block) {
			if err := s.nextBlock(); err != nil {
				if total > 0 && err == io.EOF {
					return total, nil
				}
				s.err = err
				return total, err
			}
		}
		n := copy(p, s.block[s.pos:])
		s.pos += n
		p = p[n:]
		total += n
	}
	return total, nil
}

func (s *StreamReader) nextBlock() error {
	clen, err := binary.ReadUvarint(s.r)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return ErrCorrupt
		}
		return err
	}
	if clen > uint64(DefaultBlockSize)*2+64 {
		return fmt.Errorf("%w: frame length %d", ErrCorrupt, clen) //xfm:ignore hotpath-alloc corrupt-frame error path, not steady-state
	}
	if cap(s.comp) < int(clen) {
		s.comp = make([]byte, clen)
	}
	s.comp = s.comp[:clen]
	if _, err := io.ReadFull(s.r, s.comp); err != nil {
		return ErrCorrupt
	}
	s.block, err = s.codec.Decompress(s.block[:0], s.comp)
	if err != nil {
		return err
	}
	if len(s.block) > DefaultBlockSize {
		return ErrCorrupt
	}
	s.pos = 0
	return nil
}
