package compress

// Reference (pre-word-wise) codec implementations, frozen at the PR 2
// state of lzfast.go / xdeflate.go / bitio.go / huffman.go. They pin
// the stream formats: the differential fuzz targets in
// compat_fuzz_test.go check that streams produced by the word-wise
// encoders decode through these reference decoders and vice versa, so
// a kernel optimization can never silently fork the format.
//
// Everything here is a byte-for-byte copy of the old hot paths with a
// `ref` prefix, kept deliberately byte-serial. Do not optimize this
// file.

// --- reference LZFast ---

type refLZFast struct {
	maxOffset int
}

func newRefLZFast() *refLZFast { return &refLZFast{maxOffset: lzfMaxOffset} }

func (z *refLZFast) Compress(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [1 << 13]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(v uint32) uint32 { return (v * 2654435761) >> (32 - 13) }
	load32 := func(p []byte) uint32 {
		return uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16 | uint32(p[3])<<24
	}
	anchor := 0
	i := 0
	limit := len(src) - lzfMinMatch
	for i <= limit {
		h := hash(load32(src[i:]))
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand <= z.maxOffset && load32(src[cand:]) == load32(src[i:]) {
			mlen := lzfMinMatch
			for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			dst = refLzfEmit(dst, src[anchor:i], i-cand, mlen)
			i += mlen
			anchor = i
			continue
		}
		i++
	}
	if anchor < len(src) {
		dst = refLzfEmitFinal(dst, src[anchor:])
	}
	return dst
}

func refLzfEmit(dst, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	matchCode := mlen - lzfMinMatch
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if matchCode >= 15 {
		token |= 15
	} else {
		token |= byte(matchCode)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = refLzfExt(dst, litLen-15)
	}
	dst = append(dst, lits...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if matchCode >= 15 {
		dst = refLzfExt(dst, matchCode-15)
	}
	return dst
}

func refLzfEmitFinal(dst, lits []byte) []byte {
	litLen := len(lits)
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = refLzfExt(dst, litLen-15)
	}
	return append(dst, lits...)
}

func refLzfExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

func (z *refLZFast) Decompress(dst, src []byte) ([]byte, error) {
	origLen, n, ok := readUvarint(src)
	if !ok {
		return dst, ErrCorrupt
	}
	src = src[n:]
	base := len(dst)
	want := base + int(origLen)
	for len(dst) < want {
		if len(src) == 0 {
			return dst, ErrCorrupt
		}
		token := src[0]
		src = src[1:]
		litLen := int(token >> 4)
		if litLen == 15 {
			var ext int
			var err error
			ext, src, err = refLzfReadExt(src)
			if err != nil {
				return dst, err
			}
			litLen += ext
		}
		if litLen > len(src) {
			return dst, ErrCorrupt
		}
		dst = append(dst, src[:litLen]...)
		src = src[litLen:]
		if len(dst) == want {
			if token&0x0f != 0 {
				return dst, ErrCorrupt
			}
			break
		}
		if len(dst) > want {
			return dst, ErrCorrupt
		}
		if len(src) < 2 {
			return dst, ErrCorrupt
		}
		offset := int(src[0]) | int(src[1])<<8
		src = src[2:]
		mlen := int(token&0x0f) + lzfMinMatch
		if token&0x0f == 15 {
			var ext int
			var err error
			ext, src, err = refLzfReadExt(src)
			if err != nil {
				return dst, err
			}
			mlen += ext
		}
		start := len(dst) - offset
		if offset == 0 || start < base {
			return dst, ErrCorrupt
		}
		if len(dst)+mlen > want {
			return dst, ErrCorrupt
		}
		for k := 0; k < mlen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	if len(src) != 0 {
		return dst, ErrCorrupt
	}
	return dst, nil
}

func refLzfReadExt(src []byte) (int, []byte, error) {
	ext := 0
	for {
		if len(src) == 0 {
			return 0, src, ErrCorrupt
		}
		b := src[0]
		src = src[1:]
		ext += int(b)
		if b < 255 {
			return ext, src, nil
		}
	}
}

// --- reference bit I/O (per-byte flush, bit-serial read) ---

type refBitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
}

func (w *refBitWriter) writeBits(v uint32, n uint) {
	w.acc |= uint64(v) << w.nacc
	w.nacc += n
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

func (w *refBitWriter) flush() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.nacc = 0
	}
	return w.buf
}

type refBitReader struct {
	src  []byte
	pos  int
	acc  uint64
	nacc uint
	bad  bool
}

func (r *refBitReader) fill() {
	for r.nacc <= 56 && r.pos < len(r.src) {
		r.acc |= uint64(r.src[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

func (r *refBitReader) readBits(n uint) uint32 {
	if n == 0 {
		return 0
	}
	if r.nacc < n {
		r.fill()
		if r.nacc < n {
			r.bad = true
			return 0
		}
	}
	v := uint32(r.acc & ((1 << n) - 1))
	r.acc >>= n
	r.nacc -= n
	return v
}

// --- reference canonical Huffman decoder (bit-serial tree walk) ---

type refHuffDecoder struct {
	count [huffMaxBits + 1]int
	syms  []int
}

func (d *refHuffDecoder) init(lengths []uint8) {
	for i := range d.count {
		d.count[i] = 0
	}
	n := 0
	for _, l := range lengths {
		if l > 0 {
			d.count[l]++
			n++
		}
	}
	if cap(d.syms) < n {
		d.syms = make([]int, n)
	}
	d.syms = d.syms[:n]
	idx := 0
	for l := uint8(1); l <= huffMaxBits; l++ {
		if d.count[l] == 0 {
			continue
		}
		for sym, sl := range lengths {
			if sl == l {
				d.syms[idx] = sym
				idx++
			}
		}
	}
}

func (d *refHuffDecoder) decode(r *refBitReader) int {
	code := 0
	first := 0
	index := 0
	for l := 1; l <= huffMaxBits; l++ {
		code |= int(r.readBits(1))
		if r.bad {
			return -1
		}
		count := d.count[l]
		if code-first < count {
			return d.syms[index+code-first]
		}
		index += count
		first = (first + count) << 1
		code <<= 1
	}
	return -1
}

// --- reference LZ77 matcher (byte-serial matchLen, linear code maps) ---

func refLengthCode(l int) int {
	for c := len(lengthBase) - 1; c >= 0; c-- {
		if l >= lengthBase[c] {
			return c
		}
	}
	return 0
}

func refDistCode(d int) int {
	for c := len(distBase) - 1; c >= 0; c-- {
		if d >= distBase[c] {
			return c
		}
	}
	return 0
}

type refLZ77Encoder struct {
	tokens []lzToken
	head   [1 << lz77HashLog]int32
	prev   []int32
	src    []byte
	window int
}

func (e *refLZ77Encoder) insert(pos int) {
	if pos+lz77MinMatch > len(e.src) {
		return
	}
	h := refLZ77Hash(e.src[pos:])
	e.prev[pos] = e.head[h]
	e.head[h] = int32(pos)
}

func (e *refLZ77Encoder) findMatch(i int) (bestLen, bestDist int) {
	src := e.src
	if i+lz77MinMatch > len(src) {
		return 0, 0
	}
	h := refLZ77Hash(src[i:])
	cand := e.head[h]
	chain := 0
	for cand >= 0 && chain < lz77MaxChain {
		c := int(cand)
		dist := i - c
		if dist > e.window {
			break
		}
		if dist > 0 {
			l := refMatchLen(src, c, i)
			if l > bestLen {
				bestLen, bestDist = l, dist
				if l >= lz77MaxMatch {
					break
				}
			}
		}
		cand = e.prev[c]
		chain++
	}
	return bestLen, bestDist
}

func (e *refLZ77Encoder) parse(src []byte, window int, lazy bool) []lzToken {
	if window < 1 {
		window = 1
	}
	if window > 65535 {
		window = 65535
	}
	e.src, e.window = src, window
	e.tokens = e.tokens[:0]
	for i := range e.head {
		e.head[i] = -1
	}
	if cap(e.prev) < len(src) {
		e.prev = make([]int32, len(src))
	}
	e.prev = e.prev[:len(src)]
	i := 0
	for i < len(src) {
		bestLen, bestDist := e.findMatch(i)
		if lazy && bestLen >= lz77MinMatch && bestLen < lz77MaxMatch && i+1 < len(src) {
			e.insert(i)
			nextLen, nextDist := e.findMatch(i + 1)
			firstInsert := 1
			if nextLen > bestLen {
				e.tokens = append(e.tokens, lzToken{lit: src[i]})
				i++
				bestLen, bestDist = nextLen, nextDist
				firstInsert = 0
			}
			e.tokens = append(e.tokens, lzToken{length: uint16(bestLen), dist: uint16(bestDist)})
			for k := firstInsert; k < bestLen; k++ {
				e.insert(i + k)
			}
			i += bestLen
			continue
		}
		if bestLen >= lz77MinMatch {
			if bestLen > lz77MaxMatch {
				bestLen = lz77MaxMatch
			}
			e.tokens = append(e.tokens, lzToken{length: uint16(bestLen), dist: uint16(bestDist)})
			for k := 0; k < bestLen; k++ {
				e.insert(i + k)
			}
			i += bestLen
		} else {
			e.tokens = append(e.tokens, lzToken{lit: src[i]})
			e.insert(i)
			i++
		}
	}
	e.src = nil
	return e.tokens
}

func refMatchLen(src []byte, a, b int) int {
	n := 0
	maxN := len(src) - b
	if maxN > lz77MaxMatch {
		maxN = lz77MaxMatch
	}
	for n < maxN && src[a+n] == src[b+n] {
		n++
	}
	return n
}

func refLZ77Hash(p []byte) uint32 {
	v := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16
	return (v * 2654435761) >> (32 - lz77HashLog)
}

// --- reference XDeflate ---

type refXDeflate struct {
	window int
	lazy   bool
}

func newRefXDeflate() *refXDeflate { return &refXDeflate{window: 32768, lazy: true} }

func (x *refXDeflate) Compress(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return append(dst, 0)
	}
	body := x.encodeHuffman(src)
	if body == nil || len(body) >= len(src) {
		dst = append(dst, 0)
		return append(dst, src...)
	}
	dst = append(dst, 1)
	return append(dst, body...)
}

func (x *refXDeflate) encodeHuffman(src []byte) []byte {
	var lz refLZ77Encoder
	tokens := lz.parse(src, x.window, x.lazy)
	litFreq := make([]int, xdLitLenSyms)
	distFreq := make([]int, xdDistSyms)
	for _, t := range tokens {
		if t.length == 0 {
			litFreq[t.lit]++
		} else {
			litFreq[257+refLengthCode(int(t.length))]++
			distFreq[refDistCode(int(t.dist))]++
		}
	}
	litFreq[xdEOB]++
	litLens := huffBuildLengths(litFreq)
	distLens := huffBuildLengths(distFreq)
	litCodes := huffCanonicalCodes(litLens)
	distCodes := huffCanonicalCodes(distLens)

	maxLit := maxUsedSym(litLens)
	maxDist := maxUsedSym(distLens)
	out := []byte{byte(maxLit), byte(maxLit >> 8)}
	out = packNibbles(out, litLens[:maxLit+1])
	out = append(out, byte(maxDist))
	if maxDist >= 0 {
		out = packNibbles(out, distLens[:maxDist+1])
	}

	w := refBitWriter{buf: out}
	emitLit := func(sym int) {
		w.writeBits(litCodes[sym], uint(litLens[sym]))
	}
	for _, t := range tokens {
		if t.length == 0 {
			emitLit(int(t.lit))
			continue
		}
		lc := refLengthCode(int(t.length))
		emitLit(257 + lc)
		w.writeBits(uint32(int(t.length)-lengthBase[lc]), lengthExtra[lc])
		dc := refDistCode(int(t.dist))
		w.writeBits(distCodes[dc], uint(distLens[dc]))
		w.writeBits(uint32(int(t.dist)-distBase[dc]), distExtra[dc])
	}
	emitLit(xdEOB)
	return w.flush()
}

func (x *refXDeflate) Decompress(dst, src []byte) ([]byte, error) {
	origLen, n, ok := readUvarint(src)
	if !ok {
		return dst, ErrCorrupt
	}
	src = src[n:]
	if len(src) == 0 {
		return dst, ErrCorrupt
	}
	blockType := src[0]
	src = src[1:]
	base := len(dst)
	want := base + int(origLen)
	switch blockType {
	case 0:
		if len(src) != int(origLen) {
			return dst, ErrCorrupt
		}
		return append(dst, src...), nil
	case 1:
		return x.decodeHuffman(dst, src, want, base)
	default:
		return dst, ErrCorrupt
	}
}

func (x *refXDeflate) decodeHuffman(dst, src []byte, want, base int) ([]byte, error) {
	if len(src) < 2 {
		return dst, ErrCorrupt
	}
	maxLit := int(src[0]) | int(src[1])<<8
	src = src[2:]
	if maxLit < xdEOB || maxLit >= xdLitLenSyms {
		return dst, ErrCorrupt
	}
	litLens := make([]uint8, xdLitLenSyms)
	var ok bool
	src, ok = unpackNibbles(src, litLens[:maxLit+1])
	if !ok || len(src) < 1 {
		return dst, ErrCorrupt
	}
	maxDist := int(int8(src[0]))
	src = src[1:]
	distLens := make([]uint8, xdDistSyms)
	if maxDist >= 0 {
		if maxDist >= xdDistSyms {
			return dst, ErrCorrupt
		}
		src, ok = unpackNibbles(src, distLens[:maxDist+1])
		if !ok {
			return dst, ErrCorrupt
		}
	}
	var litDec, distDec refHuffDecoder
	litDec.init(litLens)
	distDec.init(distLens)
	r := refBitReader{src: src}
	for {
		sym := litDec.decode(&r)
		if sym < 0 {
			return dst, ErrCorrupt
		}
		if sym == xdEOB {
			break
		}
		if sym < 256 {
			if len(dst) >= want {
				return dst, ErrCorrupt
			}
			dst = append(dst, byte(sym))
			continue
		}
		lc := sym - 257
		if lc >= len(lengthBase) {
			return dst, ErrCorrupt
		}
		length := lengthBase[lc] + int(r.readBits(lengthExtra[lc]))
		dc := distDec.decode(&r)
		if dc < 0 || dc >= len(distBase) {
			return dst, ErrCorrupt
		}
		dist := distBase[dc] + int(r.readBits(distExtra[dc]))
		if r.bad {
			return dst, ErrCorrupt
		}
		start := len(dst) - dist
		if start < base || len(dst)+length > want {
			return dst, ErrCorrupt
		}
		for k := 0; k < length; k++ {
			dst = append(dst, dst[start+k])
		}
	}
	if len(dst) != want {
		return dst, ErrCorrupt
	}
	return dst, nil
}
