//go:build !race

package compress

const raceEnabled = false
