package compress

// bitWriter packs bits least-significant-first into a byte slice, the
// same bit order DEFLATE uses.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
}

func (w *bitWriter) writeBits(v uint32, n uint) {
	w.acc |= uint64(v) << w.nacc
	w.nacc += n
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// flush pads the final partial byte with zero bits.
func (w *bitWriter) flush() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.nacc = 0
	}
	return w.buf
}

// bitReader consumes bits least-significant-first.
type bitReader struct {
	src  []byte
	pos  int
	acc  uint64
	nacc uint
	bad  bool
}

func (r *bitReader) fill() {
	for r.nacc <= 56 && r.pos < len(r.src) {
		r.acc |= uint64(r.src[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

// readBits returns the next n bits (n ≤ 32). Reading past the end sets
// bad and returns zeros.
func (r *bitReader) readBits(n uint) uint32 {
	if n == 0 {
		return 0
	}
	if r.nacc < n {
		r.fill()
		if r.nacc < n {
			r.bad = true
			return 0
		}
	}
	v := uint32(r.acc & ((1 << n) - 1))
	r.acc >>= n
	r.nacc -= n
	return v
}
