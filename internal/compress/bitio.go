package compress

import "encoding/binary"

// bitWriter packs bits least-significant-first into a byte slice, the
// same bit order DEFLATE uses. Bits accumulate in a 64-bit register
// and drain with a single 64-bit store per 32 emitted bits (the low
// half is committed, the high half is rewritten by the next store), so
// the hot emit loop runs one bounds check per flush instead of one per
// byte. The emitted byte stream is identical to a per-byte flush.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
}

// writeBits appends the low n bits of v (n ≤ 32). Safe because the
// accumulator never holds more than 31 bits on entry: 31+32 < 64.
func (w *bitWriter) writeBits(v uint32, n uint) {
	w.acc |= uint64(v) << w.nacc
	w.nacc += n
	if w.nacc >= 32 {
		ln := len(w.buf)
		if cap(w.buf)-ln < 8 {
			w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)[:ln]
		}
		binary.LittleEndian.PutUint64(w.buf[ln:ln+8:cap(w.buf)], w.acc)
		w.buf = w.buf[:ln+4]
		w.acc >>= 32
		w.nacc -= 32
	}
}

// flush pads the final partial byte with zero bits.
func (w *bitWriter) flush() []byte {
	for w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		if w.nacc >= 8 {
			w.nacc -= 8
		} else {
			w.nacc = 0
		}
	}
	return w.buf
}

// bitReader consumes bits least-significant-first.
type bitReader struct {
	src  []byte
	pos  int
	acc  uint64
	nacc uint
	bad  bool
}

func (r *bitReader) fill() {
	if r.pos+8 <= len(r.src) && r.nacc <= 56 {
		// Word-wise refill: one 64-bit load tops the accumulator up to
		// ≥ 56 bits in a single step on the common path.
		r.acc |= binary.LittleEndian.Uint64(r.src[r.pos:]) << r.nacc
		fetched := (64 - r.nacc) &^ 7 // whole bytes that fit
		r.pos += int(fetched >> 3)
		r.nacc += fetched
		return
	}
	for r.nacc <= 56 && r.pos < len(r.src) {
		r.acc |= uint64(r.src[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
}

// readBits returns the next n bits (n ≤ 32). Reading past the end sets
// bad and returns zeros.
func (r *bitReader) readBits(n uint) uint32 {
	if n == 0 {
		return 0
	}
	if r.nacc < n {
		r.fill()
		if r.nacc < n {
			r.bad = true
			return 0
		}
	}
	v := uint32(r.acc & ((1 << n) - 1))
	r.acc >>= n
	r.nacc -= n
	return v
}

// peek returns the next n bits (n ≤ 32) without consuming them,
// zero-padded when fewer than n bits remain. It never sets bad.
func (r *bitReader) peek(n uint) uint32 {
	if r.nacc < n {
		r.fill()
	}
	return uint32(r.acc & ((1 << n) - 1))
}

// consume drops n previously peeked bits. It reports false (and sets
// bad) when fewer than n bits remain, which is how a table hit on
// zero-padding at end of stream is rejected.
func (r *bitReader) consume(n uint) bool {
	if r.nacc < n {
		r.bad = true
		return false
	}
	r.acc >>= n
	r.nacc -= n
	return true
}
