//go:build race

package compress

// raceEnabled reports that this binary was built with -race, whose
// instrumentation defeats sync.Pool caching and adds allocations;
// alloc-count regression tests skip themselves under it.
const raceEnabled = true
