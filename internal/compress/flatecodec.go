package compress

import (
	"bytes"
	"compress/flate"
	"io"
)

// Flate wraps the standard library's DEFLATE implementation as a
// reference codec: it validates the from-scratch codecs' ratios and
// serves as the "hardware deflate" quality target (§2.1, §7).
type Flate struct {
	level int
}

// NewFlate returns the reference codec at flate's default compression
// level.
func NewFlate() *Flate { return &Flate{level: flate.DefaultCompression} }

// NewFlateLevel returns a reference codec at the given flate level.
func NewFlateLevel(level int) *Flate { return &Flate{level: level} }

// Name implements Codec.
func (f *Flate) Name() string {
	if f.level == flate.DefaultCompression {
		return "flate"
	}
	return "flate-l" + itoa(f.level)
}

// Info implements Codec.
func (f *Flate) Info() CodecInfo {
	return CodecInfo{
		CompressCyclesPerByte:   15.0,
		DecompressCyclesPerByte: 5.0,
		TypicalRatio:            3.1,
	}
}

// MaxCompressedLen implements Codec.
func (f *Flate) MaxCompressedLen(n int) int {
	// flate stored blocks add 5 bytes per 64 KiB plus stream overhead.
	return n + n/65535*5 + 64
}

// Compress implements Codec.
func (f *Flate) Compress(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, f.level)
	if err != nil {
		// Only possible for an invalid level, which the constructors
		// prevent; fall back to the default level.
		w, _ = flate.NewWriter(&buf, flate.DefaultCompression)
	}
	_, _ = w.Write(src)
	_ = w.Close()
	return append(dst, buf.Bytes()...)
}

// Decompress implements Codec.
func (f *Flate) Decompress(dst, src []byte) ([]byte, error) {
	origLen, n, ok := readUvarint(src)
	if !ok {
		return dst, ErrCorrupt
	}
	r := flate.NewReader(bytes.NewReader(src[n:]))
	defer r.Close()
	out := make([]byte, origLen)
	if _, err := io.ReadFull(r, out); err != nil {
		return dst, ErrCorrupt
	}
	// A valid stream must end exactly here.
	var one [1]byte
	if m, _ := r.Read(one[:]); m != 0 {
		return dst, ErrCorrupt
	}
	return append(dst, out...), nil
}
