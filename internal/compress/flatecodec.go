package compress

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"
)

// Flate wraps the standard library's DEFLATE implementation as a
// reference codec: it validates the from-scratch codecs' ratios and
// serves as the "hardware deflate" quality target (§2.1, §7).
//
// flate.Writer is a ~700 KiB allocation, so the hot path reuses
// writers and readers through per-codec pools (both support Reset).
type Flate struct {
	level int
	wpool sync.Pool // *flateEnc
	rpool sync.Pool // *flateDec
}

// flateEnc bundles a reusable flate writer with its output sink.
type flateEnc struct {
	w  *flate.Writer
	sw sliceWriter
}

// flateDec bundles a reusable flate reader with its input source.
type flateDec struct {
	r  io.ReadCloser
	br bytes.Reader
}

// sliceWriter appends written bytes to b, letting flate stream
// straight into the caller's dst without an intermediate buffer.
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// NewFlate returns the reference codec at flate's default compression
// level.
func NewFlate() *Flate { return &Flate{level: flate.DefaultCompression} }

// NewFlateLevel returns a reference codec at the given flate level.
func NewFlateLevel(level int) *Flate { return &Flate{level: level} }

// Name implements Codec.
func (f *Flate) Name() string {
	if f.level == flate.DefaultCompression {
		return "flate"
	}
	return "flate-l" + itoa(f.level)
}

// Info implements Codec.
func (f *Flate) Info() CodecInfo {
	return CodecInfo{
		CompressCyclesPerByte:   15.0,
		DecompressCyclesPerByte: 5.0,
		TypicalRatio:            3.1,
	}
}

// MaxCompressedLen implements Codec.
func (f *Flate) MaxCompressedLen(n int) int {
	// flate stored blocks add 5 bytes per 64 KiB plus stream overhead.
	return n + n/65535*5 + 64
}

// Compress implements Codec.
func (f *Flate) Compress(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	enc, _ := f.wpool.Get().(*flateEnc)
	if enc == nil {
		enc = &flateEnc{}
		w, err := flate.NewWriter(&enc.sw, f.level)
		if err != nil {
			// Only possible for an invalid level, which the constructors
			// prevent; fall back to the default level.
			w, _ = flate.NewWriter(&enc.sw, flate.DefaultCompression)
		}
		enc.w = w
	}
	enc.sw.b = dst
	enc.w.Reset(&enc.sw)
	_, _ = enc.w.Write(src)
	_ = enc.w.Close()
	dst = enc.sw.b
	enc.sw.b = nil // do not retain the caller's buffer in the pool
	f.wpool.Put(enc)
	return dst
}

// Decompress implements Codec.
func (f *Flate) Decompress(dst, src []byte) ([]byte, error) {
	origLen, n, ok := readUvarint(src)
	if !ok {
		return dst, ErrCorrupt
	}
	dec, _ := f.rpool.Get().(*flateDec)
	if dec == nil {
		dec = &flateDec{}
		dec.r = flate.NewReader(&dec.br)
	}
	dec.br.Reset(src[n:])
	_ = dec.r.(flate.Resetter).Reset(&dec.br, nil)
	base := len(dst)
	out := Grow(dst, int(origLen))
	if _, err := io.ReadFull(dec.r, out[base:]); err != nil {
		f.rpool.Put(dec)
		return dst, ErrCorrupt
	}
	// A valid stream must end exactly here.
	var one [1]byte
	if m, _ := dec.r.Read(one[:]); m != 0 {
		f.rpool.Put(dec)
		return dst, ErrCorrupt
	}
	f.rpool.Put(dec)
	return out, nil
}
