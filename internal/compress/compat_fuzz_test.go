package compress

import (
	"bytes"
	"fmt"
	"testing"

	"xfm/internal/corpus"
)

// Differential stream-format tests: the word-wise kernels must stay
// wire-compatible with the PR 2 byte-serial reference implementations
// in compat_ref_test.go, in both directions. The corpus pages used by
// the experiments seed the fuzz targets so the "real" page shapes are
// always covered, on top of the structural testInputs cases.

// compatCorpusPages returns a spread of experiment-corpus pages.
func compatCorpusPages() [][]byte {
	var pages [][]byte
	for seed := int64(0); seed < 4; seed++ {
		pages = append(pages,
			corpus.KeyValue(seed, 4096),
			corpus.CSVTable(seed, 4096),
		)
	}
	return pages
}

// compatInputs is every deterministic differential-test input: the
// structural cases plus the corpus pages.
func compatInputs() map[string][]byte {
	in := testInputs()
	for i, p := range compatCorpusPages() {
		in[fmt.Sprintf("corpus-%d", i)] = p
	}
	return in
}

// TestLZFastCompatWithReference checks both stream directions for
// lzfast: new encoder → reference decoder, reference encoder → new
// decoder.
func TestLZFastCompatWithReference(t *testing.T) {
	nw := NewLZFast()
	ref := newRefLZFast()
	for name, in := range compatInputs() {
		newStream := nw.Compress(nil, in)
		out, err := ref.Decompress(nil, newStream)
		if err != nil {
			t.Fatalf("%s: reference decoder rejects new stream: %v", name, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("%s: new stream through reference decoder: got %d bytes, want %d",
				name, len(out), len(in))
		}
		refStream := ref.Compress(nil, in)
		out, err = nw.Decompress(nil, refStream)
		if err != nil {
			t.Fatalf("%s: new decoder rejects reference stream: %v", name, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("%s: reference stream through new decoder: got %d bytes, want %d",
				name, len(out), len(in))
		}
	}
}

// TestXDeflateCompatWithReference checks both stream directions for
// xdeflate.
func TestXDeflateCompatWithReference(t *testing.T) {
	nw := NewXDeflate()
	ref := newRefXDeflate()
	for name, in := range compatInputs() {
		newStream := nw.Compress(nil, in)
		out, err := ref.Decompress(nil, newStream)
		if err != nil {
			t.Fatalf("%s: reference decoder rejects new stream: %v", name, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("%s: new stream through reference decoder: got %d bytes, want %d",
				name, len(out), len(in))
		}
		refStream := ref.Compress(nil, in)
		out, err = nw.Decompress(nil, refStream)
		if err != nil {
			t.Fatalf("%s: new decoder rejects reference stream: %v", name, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("%s: reference stream through new decoder: got %d bytes, want %d",
				name, len(out), len(in))
		}
	}
}

// TestXDeflateEncoderBitIdentical pins a stronger property than wire
// compatibility: the word-wise xdeflate encoder emits byte-identical
// streams to the PR 2 encoder. The experiment tables report real
// compressed sizes, so this is what keeps them bit-identical across
// the kernel overhaul.
func TestXDeflateEncoderBitIdentical(t *testing.T) {
	nw := NewXDeflate()
	ref := newRefXDeflate()
	for name, in := range compatInputs() {
		got := nw.Compress(nil, in)
		want := ref.Compress(nil, in)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: stream diverged: new %d bytes, reference %d bytes",
				name, len(got), len(want))
		}
	}
}

// FuzzLZFastCompat fuzzes both stream directions of the lzfast format
// against the reference implementation.
func FuzzLZFastCompat(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("hello hello hello"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	for _, p := range compatCorpusPages() {
		f.Add(p)
	}
	nw := NewLZFast()
	ref := newRefLZFast()
	f.Fuzz(func(t *testing.T, in []byte) {
		newStream := nw.Compress(nil, in)
		out, err := ref.Decompress(nil, newStream)
		if err != nil || !bytes.Equal(out, in) {
			t.Fatalf("reference decoder on new stream: err=%v", err)
		}
		refStream := ref.Compress(nil, in)
		out, err = nw.Decompress(nil, refStream)
		if err != nil || !bytes.Equal(out, in) {
			t.Fatalf("new decoder on reference stream: err=%v", err)
		}
	})
}

// FuzzXDeflateCompat fuzzes both stream directions of the xdeflate
// format against the reference implementation, plus encoder stream
// identity.
func FuzzXDeflateCompat(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte("xy"), 3000))
	for _, p := range compatCorpusPages() {
		f.Add(p)
	}
	nw := NewXDeflate()
	ref := newRefXDeflate()
	f.Fuzz(func(t *testing.T, in []byte) {
		newStream := nw.Compress(nil, in)
		refStream := ref.Compress(nil, in)
		if !bytes.Equal(newStream, refStream) {
			t.Fatal("encoder stream diverged from reference")
		}
		out, err := ref.Decompress(nil, newStream)
		if err != nil || !bytes.Equal(out, in) {
			t.Fatalf("reference decoder on new stream: err=%v", err)
		}
		out, err = nw.Decompress(nil, refStream)
		if err != nil || !bytes.Equal(out, in) {
			t.Fatalf("new decoder on reference stream: err=%v", err)
		}
	})
}

// FuzzDecodersAgreeOnGarbage feeds arbitrary bytes to the new and
// reference decoders: they must agree on accept/reject (and on the
// output when both accept), so corrupt-input handling cannot drift.
func FuzzDecodersAgreeOnGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add(NewLZFast().Compress(nil, []byte("seed")))
	f.Add(NewXDeflate().Compress(nil, []byte("seed seed seed")))
	// Truncated valid streams: the highest-value garbage is a real
	// stream cut mid-structure (header, token boundary, Huffman table),
	// the exact shape a torn far-memory read produces. The exhaustive
	// all-prefix sweep lives in truncation_test.go; these seeds steer
	// the fuzzer's mutations into the same territory.
	for _, in := range [][]byte{
		[]byte("truncation seed truncation seed"),
		bytes.Repeat([]byte{0}, 4096),
		corpus.KeyValue(11, 4096),
	} {
		for _, codec := range []Codec{NewLZFast(), NewXDeflate()} {
			stream := codec.Compress(nil, in)
			for _, frac := range []int{1, 2, 4} {
				cut := len(stream) / (frac * 2)
				f.Add(stream[:cut:cut])
			}
			if len(stream) > 0 {
				f.Add(stream[: len(stream)-1 : len(stream)-1])
			}
		}
	}
	lz, refLz := NewLZFast(), newRefLZFast()
	xd, refXd := NewXDeflate(), newRefXDeflate()
	f.Fuzz(func(t *testing.T, in []byte) {
		gotLz, errLz := lz.Decompress(nil, in)
		refGotLz, refErrLz := refLz.Decompress(nil, in)
		if (errLz == nil) != (refErrLz == nil) {
			t.Fatalf("lzfast decoders disagree: new err=%v, reference err=%v", errLz, refErrLz)
		}
		if errLz == nil && !bytes.Equal(gotLz, refGotLz) {
			t.Fatal("lzfast decoders accept but differ")
		}
		gotXd, errXd := xd.Decompress(nil, in)
		refGotXd, refErrXd := refXd.Decompress(nil, in)
		if (errXd == nil) != (refErrXd == nil) {
			t.Fatalf("xdeflate decoders disagree: new err=%v, reference err=%v", errXd, refErrXd)
		}
		if errXd == nil && !bytes.Equal(gotXd, refGotXd) {
			t.Fatal("xdeflate decoders accept but differ")
		}
	})
}
