package compress

import (
	"encoding/binary"
	"math/bits"
)

// LZ77 matcher with hash chains used by the xdeflate codec. The window
// size is configurable so the multi-channel experiments (Fig. 8) can
// model the reduced per-DIMM compression windows (4 KiB → 2 KiB → 1 KiB).

const (
	lz77MinMatch = 3
	lz77MaxMatch = 258
	lz77HashLog  = 14
	lz77MaxChain = 32
)

// lzToken is either a literal (length == 0, lit valid) or a match
// (length in [3,258], dist in [1,window]).
type lzToken struct {
	length uint16
	dist   uint16
	lit    byte
}

// lz77Encoder holds the matcher's reusable state (token output, hash
// heads, chain links) so the hot path parses without allocating. It is
// pooled inside the xdeflate encode state; a zero value is ready to
// use.
type lz77Encoder struct {
	tokens []lzToken
	head   [1 << lz77HashLog]int32
	prev   []int32
	src    []byte
	window int
}

// insert records position pos in the hash chains.
func (e *lz77Encoder) insert(pos int) {
	if pos+lz77MinMatch > len(e.src) {
		return
	}
	h := lz77Hash(e.src[pos:])
	e.prev[pos] = e.head[h]
	e.head[h] = int32(pos)
}

// findMatch returns the best match starting at i within the window.
func (e *lz77Encoder) findMatch(i int) (bestLen, bestDist int) {
	src := e.src
	if i+lz77MinMatch > len(src) {
		return 0, 0
	}
	h := lz77Hash(src[i:])
	cand := e.head[h]
	chain := 0
	for cand >= 0 && chain < lz77MaxChain {
		c := int(cand)
		dist := i - c
		if dist > e.window {
			break
		}
		if dist > 0 {
			l := matchLen(src, c, i)
			if l > bestLen {
				bestLen, bestDist = l, dist
				if l >= lz77MaxMatch {
					break
				}
			}
		}
		cand = e.prev[c]
		chain++
	}
	return bestLen, bestDist
}

// parse produces the token stream for src with matches limited to the
// given window. With lazy matching (the standard DEFLATE heuristic) a
// match is deferred by one position when the next position holds a
// strictly longer one, trading a literal for a better match. The
// returned slice is owned by the encoder and valid until the next
// parse call.
func (e *lz77Encoder) parse(src []byte, window int, lazy bool) []lzToken {
	if window < 1 {
		window = 1
	}
	if window > 65535 {
		window = 65535
	}
	e.src, e.window = src, window
	e.tokens = e.tokens[:0]
	for i := range e.head {
		e.head[i] = -1
	}
	if cap(e.prev) < len(src) {
		e.prev = make([]int32, len(src))
	}
	e.prev = e.prev[:len(src)]
	i := 0
	for i < len(src) {
		bestLen, bestDist := e.findMatch(i)
		if lazy && bestLen >= lz77MinMatch && bestLen < lz77MaxMatch && i+1 < len(src) {
			// Insert i (it is consumed either way), then peek one
			// position ahead for a strictly longer match.
			e.insert(i)
			nextLen, nextDist := e.findMatch(i + 1)
			firstInsert := 1 // position i is already inserted
			if nextLen > bestLen {
				// Emit the current byte as a literal and take the
				// longer match starting at i+1.
				e.tokens = append(e.tokens, lzToken{lit: src[i]})
				i++
				bestLen, bestDist = nextLen, nextDist
				firstInsert = 0 // the deferred match start is not inserted
			}
			e.tokens = append(e.tokens, lzToken{length: uint16(bestLen), dist: uint16(bestDist)})
			for k := firstInsert; k < bestLen; k++ {
				e.insert(i + k)
			}
			i += bestLen
			continue
		}
		if bestLen >= lz77MinMatch {
			if bestLen > lz77MaxMatch {
				bestLen = lz77MaxMatch
			}
			e.tokens = append(e.tokens, lzToken{length: uint16(bestLen), dist: uint16(bestDist)})
			// Insert hash entries for every position the match covers
			// so later matches can reference them.
			for k := 0; k < bestLen; k++ {
				e.insert(i + k)
			}
			i += bestLen
		} else {
			e.tokens = append(e.tokens, lzToken{lit: src[i]})
			e.insert(i)
			i++
		}
	}
	e.src = nil
	return e.tokens
}

// lz77Parse is the allocation-per-call convenience form used by tests.
func lz77Parse(src []byte, window int, lazy bool) []lzToken {
	var e lz77Encoder
	return e.parse(src, window, lazy)
}

// matchLen returns the common-prefix length of src[a:] and src[b:]
// capped at lz77MaxMatch, with b > a. It compares 8 bytes per
// iteration and finishes with a trailing-zero count of the first
// differing word; both loads stay in bounds because a < b and
// n+8 ≤ maxN ≤ len(src)−b. The result is identical to a byte loop.
func matchLen(src []byte, a, b int) int {
	maxN := len(src) - b
	if maxN > lz77MaxMatch {
		maxN = lz77MaxMatch
	}
	n := 0
	for n+8 <= maxN {
		x := binary.LittleEndian.Uint64(src[a+n:]) ^ binary.LittleEndian.Uint64(src[b+n:])
		if x != 0 {
			n += bits.TrailingZeros64(x) >> 3
			return n
		}
		n += 8
	}
	for n < maxN && src[a+n] == src[b+n] {
		n++
	}
	return n
}

func lz77Hash(p []byte) uint32 {
	v := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16
	return (v * 2654435761) >> (32 - lz77HashLog)
}

// DEFLATE-style length and distance code tables (RFC 1951 §3.2.5).

var lengthBase = [29]int{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var lengthExtra = [29]uint{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

var distBase = [30]int{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
	8193, 12289, 16385, 24577,
}

var distExtra = [30]uint{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

// lengthCodeTab maps match length − 3 to its length code; distCodeTab
// covers distances 1..256 directly and distCodeTab2 covers 257..32768
// at (d−1)>>7 granularity (zlib's split). Both are built once at init
// from the base tables, replacing the per-token linear scans the
// encoder profile was dominated by.
var (
	lengthCodeTab [lz77MaxMatch - lz77MinMatch + 1]uint8
	distCodeTab   [256]uint8
	distCodeTab2  [256]uint8
)

func init() {
	scanLength := func(l int) int {
		for c := len(lengthBase) - 1; c >= 0; c-- {
			if l >= lengthBase[c] {
				return c
			}
		}
		return 0
	}
	scanDist := func(d int) int {
		for c := len(distBase) - 1; c >= 0; c-- {
			if d >= distBase[c] {
				return c
			}
		}
		return 0
	}
	for l := lz77MinMatch; l <= lz77MaxMatch; l++ {
		lengthCodeTab[l-lz77MinMatch] = uint8(scanLength(l))
	}
	for d := 1; d <= 256; d++ {
		distCodeTab[d-1] = uint8(scanDist(d))
	}
	for i := 0; i < 256; i++ {
		// Representative distance for bucket i: (i<<7)+1 .. (i+1)<<7;
		// all distances in a 128-wide bucket above 256 share one code.
		distCodeTab2[i] = uint8(scanDist(i<<7 + 1))
	}
}

// lengthCode maps a match length (3..258) to its length code index
// (0..28).
func lengthCode(l int) int {
	if l < lz77MinMatch {
		return 0
	}
	if l > lz77MaxMatch {
		return len(lengthBase) - 1
	}
	return int(lengthCodeTab[l-lz77MinMatch])
}

// distCode maps a distance (1..32768) to its code index (0..29).
func distCode(d int) int {
	if d < 1 {
		return 0
	}
	if d <= 256 {
		return int(distCodeTab[d-1])
	}
	if d > 32768 {
		return len(distBase) - 1
	}
	return int(distCodeTab2[(d-1)>>7])
}
