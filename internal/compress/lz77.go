package compress

// LZ77 matcher with hash chains used by the xdeflate codec. The window
// size is configurable so the multi-channel experiments (Fig. 8) can
// model the reduced per-DIMM compression windows (4 KiB → 2 KiB → 1 KiB).

const (
	lz77MinMatch = 3
	lz77MaxMatch = 258
	lz77HashLog  = 14
	lz77MaxChain = 32
)

// lzToken is either a literal (length == 0, lit valid) or a match
// (length in [3,258], dist in [1,window]).
type lzToken struct {
	length uint16
	dist   uint16
	lit    byte
}

// lz77Encoder holds the matcher's reusable state (token output, hash
// heads, chain links) so the hot path parses without allocating. It is
// pooled inside the xdeflate encode state; a zero value is ready to
// use.
type lz77Encoder struct {
	tokens []lzToken
	head   [1 << lz77HashLog]int32
	prev   []int32
	src    []byte
	window int
}

// insert records position pos in the hash chains.
func (e *lz77Encoder) insert(pos int) {
	if pos+lz77MinMatch > len(e.src) {
		return
	}
	h := lz77Hash(e.src[pos:])
	e.prev[pos] = e.head[h]
	e.head[h] = int32(pos)
}

// findMatch returns the best match starting at i within the window.
func (e *lz77Encoder) findMatch(i int) (bestLen, bestDist int) {
	src := e.src
	if i+lz77MinMatch > len(src) {
		return 0, 0
	}
	h := lz77Hash(src[i:])
	cand := e.head[h]
	chain := 0
	for cand >= 0 && chain < lz77MaxChain {
		c := int(cand)
		dist := i - c
		if dist > e.window {
			break
		}
		if dist > 0 {
			l := matchLen(src, c, i)
			if l > bestLen {
				bestLen, bestDist = l, dist
				if l >= lz77MaxMatch {
					break
				}
			}
		}
		cand = e.prev[c]
		chain++
	}
	return bestLen, bestDist
}

// parse produces the token stream for src with matches limited to the
// given window. With lazy matching (the standard DEFLATE heuristic) a
// match is deferred by one position when the next position holds a
// strictly longer one, trading a literal for a better match. The
// returned slice is owned by the encoder and valid until the next
// parse call.
func (e *lz77Encoder) parse(src []byte, window int, lazy bool) []lzToken {
	if window < 1 {
		window = 1
	}
	if window > 65535 {
		window = 65535
	}
	e.src, e.window = src, window
	e.tokens = e.tokens[:0]
	for i := range e.head {
		e.head[i] = -1
	}
	if cap(e.prev) < len(src) {
		e.prev = make([]int32, len(src))
	}
	e.prev = e.prev[:len(src)]
	i := 0
	for i < len(src) {
		bestLen, bestDist := e.findMatch(i)
		if lazy && bestLen >= lz77MinMatch && bestLen < lz77MaxMatch && i+1 < len(src) {
			// Insert i (it is consumed either way), then peek one
			// position ahead for a strictly longer match.
			e.insert(i)
			nextLen, nextDist := e.findMatch(i + 1)
			firstInsert := 1 // position i is already inserted
			if nextLen > bestLen {
				// Emit the current byte as a literal and take the
				// longer match starting at i+1.
				e.tokens = append(e.tokens, lzToken{lit: src[i]})
				i++
				bestLen, bestDist = nextLen, nextDist
				firstInsert = 0 // the deferred match start is not inserted
			}
			e.tokens = append(e.tokens, lzToken{length: uint16(bestLen), dist: uint16(bestDist)})
			for k := firstInsert; k < bestLen; k++ {
				e.insert(i + k)
			}
			i += bestLen
			continue
		}
		if bestLen >= lz77MinMatch {
			if bestLen > lz77MaxMatch {
				bestLen = lz77MaxMatch
			}
			e.tokens = append(e.tokens, lzToken{length: uint16(bestLen), dist: uint16(bestDist)})
			// Insert hash entries for every position the match covers
			// so later matches can reference them.
			for k := 0; k < bestLen; k++ {
				e.insert(i + k)
			}
			i += bestLen
		} else {
			e.tokens = append(e.tokens, lzToken{lit: src[i]})
			e.insert(i)
			i++
		}
	}
	e.src = nil
	return e.tokens
}

// lz77Parse is the allocation-per-call convenience form used by tests.
func lz77Parse(src []byte, window int, lazy bool) []lzToken {
	var e lz77Encoder
	return e.parse(src, window, lazy)
}

// matchLen returns the common-prefix length of src[a:] and src[b:]
// capped at lz77MaxMatch, with b > a.
func matchLen(src []byte, a, b int) int {
	n := 0
	maxN := len(src) - b
	if maxN > lz77MaxMatch {
		maxN = lz77MaxMatch
	}
	for n < maxN && src[a+n] == src[b+n] {
		n++
	}
	return n
}

func lz77Hash(p []byte) uint32 {
	v := uint32(p[0]) | uint32(p[1])<<8 | uint32(p[2])<<16
	return (v * 2654435761) >> (32 - lz77HashLog)
}

// DEFLATE-style length and distance code tables (RFC 1951 §3.2.5).

var lengthBase = [29]int{
	3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
	35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
}

var lengthExtra = [29]uint{
	0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
	3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
}

var distBase = [30]int{
	1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
	257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
	8193, 12289, 16385, 24577,
}

var distExtra = [30]uint{
	0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
	7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
}

// lengthCode maps a match length (3..258) to its length code index
// (0..28) without a 256-entry table.
func lengthCode(l int) int {
	for c := len(lengthBase) - 1; c >= 0; c-- {
		if l >= lengthBase[c] {
			return c
		}
	}
	return 0
}

// distCode maps a distance (1..32768) to its code index (0..29).
func distCode(d int) int {
	for c := len(distBase) - 1; c >= 0; c-- {
		if d >= distBase[c] {
			return c
		}
	}
	return 0
}
