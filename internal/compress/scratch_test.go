package compress

import (
	"bytes"
	"math/rand"
	"testing"
)

// testPage builds a compressible pseudo-random page: runs of repeated
// tokens so every codec finds matches.
func testPage(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	p := make([]byte, 0, n)
	for len(p) < n {
		tok := byte('a' + rng.Intn(8))
		run := 4 + rng.Intn(24)
		for i := 0; i < run && len(p) < n; i++ {
			p = append(p, tok)
		}
	}
	return p
}

func TestScratchRoundTrip(t *testing.T) {
	codecs := []Codec{NewLZFast(), NewXDeflate(), NewFlate()}
	for _, c := range codecs {
		t.Run(c.Name(), func(t *testing.T) {
			s := GetScratch()
			defer s.Release()
			for trial := 0; trial < 4; trial++ {
				src := testPage(int64(trial), 4096)
				comp := s.Compress(c, src)
				got, err := s.Decompress(c, comp)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !bytes.Equal(got, src) {
					t.Fatalf("trial %d: round trip corrupted page", trial)
				}
			}
		})
	}
}

// TestScratchInterleaved checks that two scratches in flight at once
// never share buffers: compressing on one must not invalidate bytes
// held by the other.
func TestScratchInterleaved(t *testing.T) {
	c := NewXDeflate()
	s1, s2 := GetScratch(), GetScratch()
	defer s1.Release()
	defer s2.Release()
	src1, src2 := testPage(1, 4096), testPage(2, 4096)
	comp1 := s1.Compress(c, src1)
	comp2 := s2.Compress(c, src2)
	got1, err := s1.Decompress(c, comp1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s2.Decompress(c, comp2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, src1) || !bytes.Equal(got2, src2) {
		t.Fatal("interleaved scratches corrupted data")
	}
}

func TestScratchParts(t *testing.T) {
	s := GetScratch()
	defer s.Release()
	parts := s.Parts(3)
	if len(parts) != 3 {
		t.Fatalf("Parts(3) returned %d parts", len(parts))
	}
	for i := range parts {
		parts[i] = append(parts[i], byte(i), byte(i))
	}
	// A second request must reset lengths but may keep capacity.
	parts = s.Parts(2)
	if len(parts) != 2 {
		t.Fatalf("Parts(2) returned %d parts", len(parts))
	}
	for i, p := range parts {
		if len(p) != 0 {
			t.Errorf("part %d not reset: len %d", i, len(p))
		}
	}
}

func TestGrow(t *testing.T) {
	buf := make([]byte, 2, 16)
	buf[0], buf[1] = 7, 8
	grown := Grow(buf, 4)
	if len(grown) != 6 {
		t.Fatalf("len = %d, want 6", len(grown))
	}
	if &grown[0] != &buf[0] {
		t.Error("Grow reallocated despite sufficient capacity")
	}
	if grown[0] != 7 || grown[1] != 8 {
		t.Error("Grow lost prefix bytes")
	}
	grown2 := Grow(grown, 100)
	if len(grown2) != 106 {
		t.Fatalf("len = %d, want 106", len(grown2))
	}
	if grown2[0] != 7 || grown2[1] != 8 {
		t.Error("reallocating Grow lost prefix bytes")
	}
}

// TestCompressHotPathAllocs pins the zero-allocation property of the
// compress hot path: with a warmed Scratch (and warmed codec pools),
// compressing a page must not allocate. The acceptance bar is ≤ 1
// alloc/op; the from-scratch codecs achieve 0.
func TestCompressHotPathAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool caching")
	}
	src := testPage(3, 4096)
	for _, c := range []Codec{NewLZFast(), NewXDeflate(), NewFlate()} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			s := GetScratch()
			defer s.Release()
			// Warm the scratch and any codec-internal pools.
			for i := 0; i < 4; i++ {
				s.Compress(c, src)
			}
			allocs := testing.AllocsPerRun(50, func() {
				s.Compress(c, src)
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocs/op on warmed compress path, want 0", c.Name(), allocs)
			}
		})
	}
}

// TestDecompressHotPathAllocs does the same for the from-scratch
// decompress paths (stdlib flate's reader allocates internally and is
// exempt; it is a reference codec, not the hot path).
func TestDecompressHotPathAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool caching")
	}
	src := testPage(4, 4096)
	for _, c := range []Codec{NewLZFast(), NewXDeflate()} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			s := GetScratch()
			defer s.Release()
			comp := append([]byte(nil), s.Compress(c, src)...)
			for i := 0; i < 4; i++ {
				if _, err := s.Decompress(c, comp); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := s.Decompress(c, comp); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: %v allocs/op on warmed decompress path, want 0", c.Name(), allocs)
			}
		})
	}
}
