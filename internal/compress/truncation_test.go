package compress

import (
	"bytes"
	"fmt"
	"testing"

	"xfm/internal/corpus"
)

// Truncation tests: a compressed stream cut short at ANY byte boundary
// must be rejected with an error — never a panic, never a silent
// partial page. The fault plane (internal/fault corrupt-stream site)
// and the swap-in path both lean on this: a torn or truncated far
// memory read surfaces as a typed decode error the degradation ladder
// can route to the CPU staging copy, so the property is a load-bearing
// robustness invariant, not just decoder hygiene.

// truncationInputs is the page spread used for the all-prefix sweep:
// structural shapes plus real experiment-corpus pages.
func truncationInputs() map[string][]byte {
	in := map[string][]byte{
		"empty":      {},
		"one-byte":   {0x41},
		"short-text": []byte("hello hello hello hello"),
		"all-zero":   bytes.Repeat([]byte{0}, 4096),
		"incompress": corpus.Random(7, 512),
		"periodic":   bytes.Repeat([]byte("xy"), 2048),
		"kv-page":    corpus.KeyValue(3, 4096),
		"csv-page":   corpus.CSVTable(5, 4096),
	}
	return in
}

// testTruncatedPrefixesError runs the all-prefix-lengths sweep for one
// codec: every proper prefix of every valid stream must error, and the
// full stream must still round-trip. The prefix is passed as a
// three-index slice so any decoder append past the cut reallocates
// instead of scribbling on the tail of the original stream.
func testTruncatedPrefixesError(t *testing.T, codec Codec) {
	t.Helper()
	for name, in := range truncationInputs() {
		t.Run(name, func(t *testing.T) {
			stream := codec.Compress(nil, in)
			out, err := codec.Decompress(nil, stream)
			if err != nil || !bytes.Equal(out, in) {
				t.Fatalf("full stream must round-trip before truncating: err=%v", err)
			}
			for cut := 0; cut < len(stream); cut++ {
				prefix := stream[:cut:cut]
				got, err := codec.Decompress(nil, prefix)
				if err == nil {
					t.Fatalf("prefix [0:%d) of %d-byte stream decoded without error (%d bytes out, input %d bytes)",
						cut, len(stream), len(got), len(in))
				}
			}
		})
	}
}

func TestLZFastTruncatedPrefixesError(t *testing.T) {
	testTruncatedPrefixesError(t, NewLZFast())
}

func TestXDeflateTruncatedPrefixesError(t *testing.T) {
	testTruncatedPrefixesError(t, NewXDeflate())
}

// TestTruncatedPrefixesAgreeWithReference pins that the word-wise
// decoders and the byte-serial PR 2 references reject the same
// truncations: corrupt-input behaviour is part of the wire contract,
// and a decoder that starts accepting a prefix the other rejects is a
// compatibility drift even if both are "safe".
func TestTruncatedPrefixesAgreeWithReference(t *testing.T) {
	codecs := []struct {
		name string
		new  Codec
		ref  interface {
			Decompress(dst, src []byte) ([]byte, error)
		}
	}{
		{"lzfast", NewLZFast(), newRefLZFast()},
		{"xdeflate", NewXDeflate(), newRefXDeflate()},
	}
	for _, c := range codecs {
		t.Run(c.name, func(t *testing.T) {
			for name, in := range truncationInputs() {
				stream := c.new.Compress(nil, in)
				for cut := 0; cut < len(stream); cut++ {
					prefix := stream[:cut:cut]
					_, errNew := c.new.Decompress(nil, prefix)
					_, errRef := c.ref.Decompress(nil, prefix)
					if (errNew == nil) != (errRef == nil) {
						t.Fatalf("%s: decoders disagree on prefix [0:%d): new err=%v, reference err=%v",
							name, cut, errNew, errRef)
					}
				}
			}
		})
	}
}

// TestTruncationErrorsAreErrors documents that truncation failures are
// plain decode errors the callers branch on — non-nil, with a message.
func TestTruncationErrorsAreErrors(t *testing.T) {
	for _, c := range []struct {
		name  string
		codec Codec
	}{{"lzfast", NewLZFast()}, {"xdeflate", NewXDeflate()}} {
		stream := c.codec.Compress(nil, []byte("truncate me truncate me"))
		for _, cut := range []int{0, 1, len(stream) / 2, len(stream) - 1} {
			_, err := c.codec.Decompress(nil, stream[:cut:cut])
			if err == nil || err.Error() == "" {
				t.Fatalf("%s: prefix [0:%d) must yield a descriptive error, got %v", c.name, cut, err)
			}
			if msg := fmt.Sprintf("%v", err); msg == "" {
				t.Fatalf("%s: error must format non-empty", c.name)
			}
		}
	}
}
