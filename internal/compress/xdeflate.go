package compress

import (
	"encoding/binary"
	"sync"
)

// XDeflate is a from-scratch LZ77 + canonical-Huffman codec in the
// DEFLATE class. It stands in for the Deflate accelerator the paper's
// NMA implements (§7) and for zstd on the CPU path: slower than LZFast,
// higher compression ratio.
//
// Stream format (little-endian bit order within bytes, like DEFLATE):
//
//	varint originalLen
//	1 byte  block type: 0 = stored, 1 = huffman
//	stored:  raw bytes
//	huffman: uint16 maxLitSym, nibble-packed litlen code lengths
//	         uint8  maxDistSym, nibble-packed dist code lengths
//	         bit-packed symbol stream terminated by EOB (symbol 256)
//
// The litlen alphabet is DEFLATE's: 0-255 literals, 256 end-of-block,
// 257-285 length codes with extra bits. The distance alphabet is
// DEFLATE's 30 codes. Code lengths are ≤ 15 so they pack into nibbles
// only when ≤ 15 — they always are (huffMaxBits = 15).
//
// All per-call working state (LZ77 matcher, frequency tables, code
// tables, the bit-packed body) lives in pooled xdEncState/xdDecState
// values, so steady-state Compress and Decompress calls do not
// allocate beyond the caller's dst buffer.
type XDeflate struct {
	window int
	// lazy enables one-position lazy match deferral (DEFLATE's
	// classic heuristic); on by default.
	lazy bool
}

const (
	xdLitLenSyms = 286
	xdDistSyms   = 30
	xdEOB        = 256
)

// xdEncState is the pooled per-call state of the encoder hot path.
type xdEncState struct {
	lz        lz77Encoder
	hs        huffScratch
	litFreq   [xdLitLenSyms]int
	distFreq  [xdDistSyms]int
	litLens   [xdLitLenSyms]uint8
	distLens  [xdDistSyms]uint8
	litCodes  [xdLitLenSyms]uint32
	distCodes [xdDistSyms]uint32
	nibs      []uint8
	body      []byte
}

var xdEncPool = sync.Pool{New: func() any { return new(xdEncState) }}

// xdDecState is the pooled per-call state of the decoder hot path.
type xdDecState struct {
	litLens  [xdLitLenSyms]uint8
	distLens [xdDistSyms]uint8
	litDec   huffDecoder
	distDec  huffDecoder
}

var xdDecPool = sync.Pool{New: func() any { return new(xdDecState) }}

// NewXDeflate returns the default codec with a 32 KiB window and lazy
// matching.
func NewXDeflate() *XDeflate { return &XDeflate{window: 32768, lazy: true} }

// NewXDeflateGreedy returns a codec with lazy matching disabled — the
// faster, lower-ratio parse, used by the greedy-vs-lazy comparison.
func NewXDeflateGreedy() *XDeflate { return &XDeflate{window: 32768} }

// NewXDeflateWindow returns a codec whose match window is limited to
// the given size in bytes; used by the Fig. 8 multi-channel study.
func NewXDeflateWindow(window int) *XDeflate {
	if window < 1 {
		window = 1
	}
	if window > 32768 {
		window = 32768
	}
	return &XDeflate{window: window, lazy: true}
}

// Name implements Codec.
func (x *XDeflate) Name() string {
	if x.window == 32768 {
		if !x.lazy {
			return "xdeflate-greedy"
		}
		return "xdeflate"
	}
	return "xdeflate-w" + itoa(x.window)
}

// Info implements Codec. Calibrated to the paper's CCPerGB average
// (7.65e9 cycles/GB ≈ 7.65 cycles per byte averaged over compress and
// decompress across the zstd/lzo mix).
func (x *XDeflate) Info() CodecInfo {
	return CodecInfo{
		CompressCyclesPerByte:   12.0,
		DecompressCyclesPerByte: 4.0,
		TypicalRatio:            3.0,
	}
}

// MaxCompressedLen implements Codec.
func (x *XDeflate) MaxCompressedLen(n int) int {
	// varint + block type + stored fallback.
	return n + 16
}

// Compress implements Codec.
//
//xfm:hotpath
func (x *XDeflate) Compress(dst, src []byte) []byte {
	dst = appendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return append(dst, 0) // empty stored block
	}
	st := xdEncPool.Get().(*xdEncState)
	body := x.encodeHuffman(st, src)
	if body == nil || len(body) >= len(src) {
		xdEncPool.Put(st)
		dst = append(dst, 0) // stored
		return append(dst, src...)
	}
	dst = append(dst, 1)
	dst = append(dst, body...)
	xdEncPool.Put(st)
	return dst
}

// encodeHuffman builds the huffman block into st.body and returns it;
// the result is valid until st is reused.
//
//xfm:allocok emitLit closure does not escape and output reuses xdEncState scratch; zero allocs/op pinned by the compression benchmarks
func (x *XDeflate) encodeHuffman(st *xdEncState, src []byte) []byte {
	tokens := st.lz.parse(src, x.window, x.lazy)
	// Frequency pass.
	litFreq := st.litFreq[:]
	distFreq := st.distFreq[:]
	for i := range litFreq {
		litFreq[i] = 0
	}
	for i := range distFreq {
		distFreq[i] = 0
	}
	for _, t := range tokens {
		if t.length == 0 {
			litFreq[t.lit]++
		} else {
			litFreq[257+lengthCode(int(t.length))]++
			distFreq[distCode(int(t.dist))]++
		}
	}
	litFreq[xdEOB]++
	litLens := st.litLens[:]
	distLens := st.distLens[:]
	huffBuildLengthsInto(litLens, litFreq, &st.hs)
	huffBuildLengthsInto(distLens, distFreq, &st.hs)
	litCodes := st.litCodes[:]
	distCodes := st.distCodes[:]
	huffCanonicalCodesInto(litCodes, litLens)
	huffCanonicalCodesInto(distCodes, distLens)

	// Header: trimmed, nibble-packed code length tables.
	maxLit := maxUsedSym(litLens)
	maxDist := maxUsedSym(distLens)
	out := st.body[:0]
	out = append(out, byte(maxLit), byte(maxLit>>8))
	out = st.packNibbles(out, litLens[:maxLit+1])
	out = append(out, byte(maxDist))
	if maxDist >= 0 {
		out = st.packNibbles(out, distLens[:maxDist+1])
	}

	w := bitWriter{buf: out}
	emitLit := func(sym int) {
		w.writeBits(litCodes[sym], uint(litLens[sym]))
	}
	for _, t := range tokens {
		if t.length == 0 {
			emitLit(int(t.lit))
			continue
		}
		lc := lengthCode(int(t.length))
		emitLit(257 + lc)
		w.writeBits(uint32(int(t.length)-lengthBase[lc]), lengthExtra[lc])
		dc := distCode(int(t.dist))
		w.writeBits(distCodes[dc], uint(distLens[dc]))
		w.writeBits(uint32(int(t.dist)-distBase[dc]), distExtra[dc])
	}
	emitLit(xdEOB)
	st.body = w.flush()
	return st.body
}

// Decompress implements Codec.
//
//xfm:hotpath
func (x *XDeflate) Decompress(dst, src []byte) ([]byte, error) {
	origLen, n, ok := readUvarint(src)
	if !ok {
		return dst, ErrCorrupt
	}
	src = src[n:]
	if len(src) == 0 {
		return dst, ErrCorrupt
	}
	blockType := src[0]
	src = src[1:]
	base := len(dst)
	want := base + int(origLen)
	switch blockType {
	case 0: // stored
		if len(src) != int(origLen) {
			return dst, ErrCorrupt
		}
		return append(dst, src...), nil
	case 1:
		// Expansion sanity bound: a valid huffman block cannot decode
		// to more than ~1032 bytes per compressed byte (≥ 2 bits per
		// ≤ 258-byte match), so a longer claim is corrupt. Checking up
		// front lets decodeHuffman reserve the whole output once.
		if int(origLen) < 0 || origLen > uint64(len(src))*1040+64 {
			return dst, ErrCorrupt
		}
		st := xdDecPool.Get().(*xdDecState)
		dst, err := x.decodeHuffman(st, dst, src, want, base)
		xdDecPool.Put(st)
		return dst, err
	default:
		return dst, ErrCorrupt
	}
}

func (x *XDeflate) decodeHuffman(st *xdDecState, dst, src []byte, want, base int) ([]byte, error) {
	if len(src) < 2 {
		return dst, ErrCorrupt
	}
	maxLit := int(src[0]) | int(src[1])<<8
	src = src[2:]
	if maxLit < xdEOB || maxLit >= xdLitLenSyms {
		return dst, ErrCorrupt
	}
	litLens := st.litLens[:]
	for i := range litLens {
		litLens[i] = 0
	}
	var ok bool
	src, ok = unpackNibbles(src, litLens[:maxLit+1])
	if !ok || len(src) < 1 {
		return dst, ErrCorrupt
	}
	maxDist := int(int8(src[0]))
	src = src[1:]
	distLens := st.distLens[:]
	for i := range distLens {
		distLens[i] = 0
	}
	if maxDist >= 0 {
		if maxDist >= xdDistSyms {
			return dst, ErrCorrupt
		}
		src, ok = unpackNibbles(src, distLens[:maxDist+1])
		if !ok {
			return dst, ErrCorrupt
		}
	}
	st.litDec.init(litLens)
	st.distDec.init(distLens)
	litDec, distDec := &st.litDec, &st.distDec
	r := bitReader{src: src}
	// Reserve the whole output once (bounded by the caller's expansion
	// check), then write by index: literals are single stores and match
	// copies run 8 bytes per iteration, with no per-byte append bounds
	// checks. The reservation is exact-size — callers decompress in
	// place into page-sized buffers (CPUBackend passes dst[:0] with cap
	// PageSize), so the output must not outgrow want; the word-wise
	// copies below are bounded to never overshoot it.
	out := Grow(dst, want-base)
	o := base
	for {
		sym := litDec.decode(&r)
		if sym < 0 {
			return dst, ErrCorrupt
		}
		if sym == xdEOB {
			break
		}
		if sym < 256 {
			if o >= want {
				return dst, ErrCorrupt
			}
			out[o] = byte(sym)
			o++
			continue
		}
		lc := sym - 257
		if lc >= len(lengthBase) {
			return dst, ErrCorrupt
		}
		length := lengthBase[lc] + int(r.readBits(lengthExtra[lc]))
		dc := distDec.decode(&r)
		if dc < 0 || dc >= len(distBase) {
			return dst, ErrCorrupt
		}
		dist := distBase[dc] + int(r.readBits(distExtra[dc]))
		if r.bad {
			return dst, ErrCorrupt
		}
		start := o - dist
		if start < base || o+length > want {
			return dst, ErrCorrupt
		}
		if dist >= 8 {
			// Non-self-overlapping at word granularity: copy 8 bytes
			// per iteration. The wildcopy form overshoots by up to 7
			// bytes, so it runs only while that slack fits inside the
			// output; a match ending near want finishes with an exact
			// word loop plus a byte tail.
			k := 0
			if o+length+8 <= len(out) {
				for ; k < length; k += 8 {
					binary.LittleEndian.PutUint64(out[o+k:], binary.LittleEndian.Uint64(out[start+k:]))
				}
			} else {
				for ; k+8 <= length; k += 8 {
					binary.LittleEndian.PutUint64(out[o+k:], binary.LittleEndian.Uint64(out[start+k:]))
				}
				for ; k < length; k++ {
					out[o+k] = out[start+k]
				}
			}
			o += length
		} else {
			// Overlapping match (RLE via offset < length): write one
			// period byte-wise, then double the copied region with
			// memmove-backed copies — O(log length) passes.
			end := o + length
			n := o
			for k := 0; k < dist && n < end; k++ {
				out[n] = out[start+k]
				n++
			}
			for n < end {
				n += copy(out[n:end], out[start:n])
			}
			o = end
		}
	}
	if o != want {
		return dst, ErrCorrupt
	}
	return out[:want], nil
}

func maxUsedSym(lens []uint8) int {
	for i := len(lens) - 1; i >= 0; i-- {
		if lens[i] != 0 {
			return i
		}
	}
	return -1
}

// packNibbles appends lens (each ≤ 15) as a nibble stream with
// zero-run-length encoding: a nonzero nibble is a literal code length;
// a zero nibble is followed by one nibble encoding a run of 1–16
// zeros. Unused-literal gaps dominate the table, so this keeps the
// per-block header small enough for the 1 KiB per-DIMM segments of
// multi-channel mode (Fig. 8). The nibble staging buffer is reused
// from the encode state.
func (st *xdEncState) packNibbles(dst []byte, lens []uint8) []byte {
	nibs := st.nibs[:0]
	for i := 0; i < len(lens); {
		if lens[i] != 0 {
			nibs = append(nibs, lens[i]&0x0f)
			i++
			continue
		}
		run := 0
		for i < len(lens) && lens[i] == 0 && run < 16 {
			run++
			i++
		}
		nibs = append(nibs, 0, uint8(run-1))
	}
	st.nibs = nibs
	for i := 0; i < len(nibs); i += 2 {
		b := nibs[i]
		if i+1 < len(nibs) {
			b |= nibs[i+1] << 4
		}
		dst = append(dst, b)
	}
	return dst
}

// packNibbles is the allocating convenience form used by tests.
func packNibbles(dst []byte, lens []uint8) []byte {
	var st xdEncState
	return st.packNibbles(dst, lens)
}

// unpackNibbles fills out from src and returns the remaining source.
//
//xfm:allocok read closure does not escape and writes into caller scratch; zero allocs/op pinned by the compression benchmarks
func unpackNibbles(src []byte, out []uint8) ([]byte, bool) {
	pos := 0 // nibble index into src
	read := func() (uint8, bool) {
		if pos/2 >= len(src) {
			return 0, false
		}
		b := src[pos/2]
		var n uint8
		if pos%2 == 0 {
			n = b & 0x0f
		} else {
			n = b >> 4
		}
		pos++
		return n, true
	}
	for i := 0; i < len(out); {
		n, ok := read()
		if !ok {
			return src, false
		}
		if n != 0 {
			out[i] = n
			i++
			continue
		}
		r, ok := read()
		if !ok {
			return src, false
		}
		run := int(r) + 1
		if i+run > len(out) {
			return src, false
		}
		for k := 0; k < run; k++ {
			out[i+k] = 0
		}
		i += run
	}
	// Consume padding up to a byte boundary.
	used := (pos + 1) / 2
	return src[used:], true
}
