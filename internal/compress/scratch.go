package compress

import "sync"

// Scratch is a reusable buffer arena for the (de)compression hot path.
// The per-page `make` sites in the swap pipeline (backend compress
// staging, zsmalloc fetch staging, multi-channel interleave splitting)
// all draw from a Scratch instead of allocating, so a steady-state
// swap batch runs allocation-free.
//
// Ownership rules (documented for every holder in DESIGN.md):
//
//   - A Scratch is single-owner: exactly one goroutine may use it at a
//     time. Worker pools take one Scratch per worker (GetScratch /
//     Release), long-lived single-threaded owners (CPUBackend) embed
//     one.
//   - Buffers handed out by a Scratch (Comp, Raw, Page, Parts) are
//     valid only until the next use of the same field or Release; a
//     caller that needs bytes beyond that must copy them out. Nothing
//     stored durably (zsmalloc slots, multi-channel slot parts) may
//     alias scratch memory.
type Scratch struct {
	// Comp stages compressed output (the Compress dst buffer).
	Comp []byte
	// Raw stages compressed bytes fetched back from a store before
	// decompression.
	Raw []byte
	// Page stages a decompressed page.
	Page []byte

	parts [][]byte
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a Scratch from the shared pool. Callers must
// Release it when done; the buffers keep their grown capacity across
// reuses, which is what makes the steady state allocation-free.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the Scratch (and its buffers) to the pool. The
// caller must not touch the Scratch or any buffer obtained from it
// afterwards.
func (s *Scratch) Release() { scratchPool.Put(s) }

// Compress runs c.Compress over src into the reusable Comp buffer and
// returns it. The result is invalidated by the next Compress call on
// the same Scratch.
//
//xfm:hotpath
func (s *Scratch) Compress(c Codec, src []byte) []byte {
	s.Comp = c.Compress(s.Comp[:0], src)
	return s.Comp
}

// Decompress runs c.Decompress over src into the reusable Page buffer
// and returns it. The result is invalidated by the next Decompress
// call on the same Scratch.
//
//xfm:hotpath
func (s *Scratch) Decompress(c Codec, src []byte) ([]byte, error) {
	out, err := c.Decompress(s.Page[:0], src)
	s.Page = out[:0]
	return out, err
}

// Parts returns n reusable byte slices, each reset to length zero but
// keeping its capacity. Callers append into parts[i] (and store the
// grown slice back into parts[i]) exactly as they would with freshly
// made buffers; the backing headers live in the Scratch so capacity
// survives to the next call.
func (s *Scratch) Parts(n int) [][]byte {
	if cap(s.parts) < n {
		grown := make([][]byte, n)
		copy(grown, s.parts[:cap(s.parts)])
		s.parts = grown
	}
	s.parts = s.parts[:n]
	for i := range s.parts {
		s.parts[i] = s.parts[i][:0]
	}
	return s.parts
}

// Grow extends buf by n bytes (contents unspecified) without an
// allocation when capacity suffices, returning the extended slice.
// It is the append-friendly replacement for `make([]byte, n)` staging
// buffers.
//
//xfm:hotpath
func Grow(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf[:len(buf)+n]
	}
	grown := make([]byte, len(buf)+n)
	copy(grown, buf)
	return grown
}
