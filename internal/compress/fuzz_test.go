package compress

import (
	"bytes"
	"testing"
)

// Fuzz targets: round-trip integrity for the encoders and crash-freedom
// for the decoders on arbitrary input. Run with `go test -fuzz` for
// deep exploration; `go test` exercises the seed corpus.

func FuzzLZFastRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("hello hello hello"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	c := NewLZFast()
	f.Fuzz(func(t *testing.T, in []byte) {
		comp := c.Compress(nil, in)
		out, err := c.Decompress(nil, comp)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(out, in) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzXDeflateRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("abcabcabcabc"))
	f.Add(bytes.Repeat([]byte("xy"), 3000))
	c := NewXDeflate()
	f.Fuzz(func(t *testing.T, in []byte) {
		comp := c.Compress(nil, in)
		out, err := c.Decompress(nil, comp)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(out, in) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecodersNoCrash feeds arbitrary bytes to the decoders: they may
// reject the input but must never panic or hang.
func FuzzDecodersNoCrash(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add(NewLZFast().Compress(nil, []byte("seed")))
	f.Add(NewXDeflate().Compress(nil, []byte("seed seed seed")))
	lz := NewLZFast()
	xd := NewXDeflate()
	f.Fuzz(func(t *testing.T, in []byte) {
		_, _ = lz.Decompress(nil, in)
		_, _ = xd.Decompress(nil, in)
	})
}
