package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// testInputs covers the structural cases LZ codecs must handle:
// empty, tiny, runs, periodic, text-like, and random data.
func testInputs() map[string][]byte {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 8192)
	rng.Read(random)
	lowEntropy := make([]byte, 8192)
	for i := range lowEntropy {
		lowEntropy[i] = byte(rng.Intn(4))
	}
	periodic := make([]byte, 5000)
	for i := range periodic {
		periodic[i] = byte(i % 7)
	}
	return map[string][]byte{
		"empty":      {},
		"one":        {0x41},
		"two":        {0x41, 0x42},
		"three-same": {7, 7, 7},
		"short":      []byte("abcdefg"),
		"run":        bytes.Repeat([]byte{0xAA}, 4096),
		"runs-mixed": append(bytes.Repeat([]byte{1}, 300), bytes.Repeat([]byte{2}, 300)...),
		"periodic":   periodic,
		"text": []byte(strings.Repeat(
			"the quick brown fox jumps over the lazy dog. ", 100)),
		"random":      random,
		"low-entropy": lowEntropy,
		"overlap":     []byte("abcabcabcabcabcabcabcabcabcabcabc"),
		"page4k":      bytes.Repeat([]byte("key=value;count=123;flag=true;\n"), 140)[:4096],
	}
}

func allCodecs() []Codec {
	return []Codec{
		NewLZFast(),
		NewLZFastWindow(1024),
		NewXDeflate(),
		NewXDeflateWindow(1024),
		NewFlate(),
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for name, in := range testInputs() {
				comp := c.Compress(nil, in)
				if len(comp) > c.MaxCompressedLen(len(in)) {
					t.Errorf("%s: compressed %d > MaxCompressedLen %d",
						name, len(comp), c.MaxCompressedLen(len(in)))
				}
				out, err := c.Decompress(nil, comp)
				if err != nil {
					t.Fatalf("%s: decompress: %v", name, err)
				}
				if !bytes.Equal(out, in) {
					t.Fatalf("%s: round trip mismatch: got %d bytes, want %d",
						name, len(out), len(in))
				}
			}
		})
	}
}

func TestRoundTripAppendsToDst(t *testing.T) {
	c := NewLZFast()
	prefix := []byte("prefix")
	in := []byte("hello hello hello hello")
	comp := c.Compress(append([]byte(nil), prefix...), in)
	if !bytes.HasPrefix(comp, prefix) {
		t.Fatal("Compress did not append to dst")
	}
	out, err := c.Decompress(append([]byte(nil), prefix...), comp[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, append(prefix, in...)) {
		t.Fatal("Decompress did not append to dst")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	for _, c := range []Codec{NewLZFast(), NewXDeflate()} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			f := func(in []byte) bool {
				comp := c.Compress(nil, in)
				out, err := c.Decompress(nil, comp)
				return err == nil && bytes.Equal(out, in)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPropertyRoundTripStructured feeds inputs with heavy repetition,
// the regime where match-copy bugs (overlapping copies, offset
// boundaries) live.
func TestPropertyRoundTripStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []Codec{NewLZFast(), NewXDeflate(), NewLZFastWindow(64), NewXDeflateWindow(64)} {
		for trial := 0; trial < 200; trial++ {
			var in []byte
			for len(in) < 2000 {
				switch rng.Intn(3) {
				case 0: // random run
					in = append(in, bytes.Repeat([]byte{byte(rng.Intn(256))}, rng.Intn(50)+1)...)
				case 1: // copy from earlier
					if len(in) > 4 {
						start := rng.Intn(len(in))
						n := rng.Intn(len(in)-start) + 1
						in = append(in, in[start:start+n]...)
					}
				case 2: // random bytes
					chunk := make([]byte, rng.Intn(30)+1)
					rng.Read(chunk)
					in = append(in, chunk...)
				}
			}
			comp := c.Compress(nil, in)
			out, err := c.Decompress(nil, comp)
			if err != nil {
				t.Fatalf("%s trial %d: %v", c.Name(), trial, err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("%s trial %d: mismatch", c.Name(), trial)
			}
		}
	}
}

func TestCompressibleDataCompresses(t *testing.T) {
	in := bytes.Repeat([]byte("abcdefgh"), 512) // 4 KiB, ratio should be high
	for _, c := range allCodecs() {
		r := Ratio(c, in)
		if r < 4 {
			t.Errorf("%s: ratio %.2f on trivially compressible page, want ≥ 4", c.Name(), r)
		}
	}
}

func TestRandomDataDoesNotExplode(t *testing.T) {
	in := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(in)
	for _, c := range allCodecs() {
		comp := c.Compress(nil, in)
		if len(comp) > len(in)+len(in)/16+64 {
			t.Errorf("%s: random 4 KiB grew to %d bytes", c.Name(), len(comp))
		}
	}
}

func TestXDeflateBeatsLZFastOnLowEntropyData(t *testing.T) {
	// Random draws from a 4-symbol alphabet: entropy coding shines,
	// match-only coding does not.
	rng := rand.New(rand.NewSource(5))
	in := make([]byte, 8192)
	for i := range in {
		in[i] = "ACGT"[rng.Intn(4)]
	}
	rLZ := Ratio(NewLZFast(), in)
	rXD := Ratio(NewXDeflate(), in)
	if rXD <= rLZ {
		t.Errorf("xdeflate ratio %.2f should exceed lzfast ratio %.2f on low-entropy data", rXD, rLZ)
	}
}

func TestSmallerWindowLowersRatio(t *testing.T) {
	// Data with long-range redundancy: matches mostly farther than 1 KiB.
	rng := rand.New(rand.NewSource(3))
	block := make([]byte, 2048)
	rng.Read(block)
	in := bytes.Repeat(block, 4) // 8 KiB with 2 KiB period
	full := Ratio(NewXDeflate(), in)
	small := Ratio(NewXDeflateWindow(1024), in)
	if small >= full {
		t.Errorf("window-1K ratio %.3f should be below full-window ratio %.3f", small, full)
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	c := NewLZFast()
	good := c.Compress(nil, []byte(strings.Repeat("hello world ", 50)))
	cases := [][]byte{
		nil,
		{0xff}, // truncated varint
		good[:len(good)/2],
		append(append([]byte(nil), good...), 0x00), // trailing garbage
	}
	for i, in := range cases {
		if _, err := c.Decompress(nil, in); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// Bad offset: token says match but offset 0.
	bad := appendUvarint(nil, 8)
	bad = append(bad, 0x12, 'a', 0, 0) // 1 literal, match len 6, offset 0
	if _, err := c.Decompress(nil, bad); err == nil {
		t.Error("zero offset accepted")
	}
}

func TestXDeflateCorruptInputs(t *testing.T) {
	c := NewXDeflate()
	good := c.Compress(nil, []byte(strings.Repeat("corruption test payload ", 80)))
	for cut := 1; cut < len(good); cut += 7 {
		if out, err := c.Decompress(nil, good[:cut]); err == nil {
			// Truncation may still decode if it cut only padding bits;
			// in that case content must match a prefix decode of the
			// full length, which requires full length — so it must err.
			if len(out) != 0 {
				t.Errorf("truncated at %d accepted with %d bytes", cut, len(out))
			}
		}
	}
	if _, err := c.Decompress(nil, []byte{5, 2}); err == nil {
		t.Error("bad block type accepted")
	}
}

func TestFlateCorrupt(t *testing.T) {
	c := NewFlate()
	if _, err := c.Decompress(nil, []byte{10, 1, 2, 3}); err == nil {
		t.Error("garbage flate stream accepted")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"lzfast", "xdeflate", "flate"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown codec succeeded")
	}
	c, err := Lookup("lzfast")
	if err != nil || c.Name() != "lzfast" {
		t.Errorf("Lookup(lzfast) = %v, %v", c, err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(NewLZFast())
}

func TestRatioEmptyInput(t *testing.T) {
	if r := Ratio(NewLZFast(), nil); r != 1 {
		t.Errorf("Ratio(empty) = %v, want 1", r)
	}
}

func TestCodecInfoPositive(t *testing.T) {
	for _, c := range allCodecs() {
		info := c.Info()
		if info.CompressCyclesPerByte <= 0 || info.DecompressCyclesPerByte <= 0 || info.TypicalRatio <= 0 {
			t.Errorf("%s: non-positive CodecInfo %+v", c.Name(), info)
		}
		if info.DecompressCyclesPerByte >= info.CompressCyclesPerByte {
			t.Errorf("%s: decompression should be cheaper than compression", c.Name())
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	in := bytes.Repeat([]byte{'z'}, 1000)
	c := NewXDeflate()
	comp := c.Compress(nil, in)
	out, err := c.Decompress(nil, comp)
	if err != nil || !bytes.Equal(out, in) {
		t.Fatalf("single-symbol stream failed: %v", err)
	}
	// The trimmed code-length header costs ~150 bytes; the body itself
	// is a handful of bytes.
	if len(comp) > 200 {
		t.Errorf("single-symbol 1000-byte run compressed to %d bytes", len(comp))
	}
}

func TestHuffmanLengthLimit(t *testing.T) {
	// Exponential frequencies force deep trees; lengths must stay ≤ 15.
	freq := make([]int, 40)
	f := 1
	for i := range freq {
		freq[i] = f
		if f < 1<<28 {
			f *= 2
		}
	}
	lens := huffBuildLengths(freq)
	for s, l := range lens {
		if l > huffMaxBits {
			t.Fatalf("symbol %d got length %d > %d", s, l, huffMaxBits)
		}
		if freq[s] > 0 && l == 0 {
			t.Fatalf("symbol %d with freq %d got zero length", s, freq[s])
		}
	}
}

// TestHuffmanKraft verifies the Kraft inequality holds (codes are
// prefix-decodable) for random frequency vectors.
func TestHuffmanKraft(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		freq := make([]int, len(raw))
		for i, v := range raw {
			freq[i] = int(v)
		}
		lens := huffBuildLengths(freq)
		sum := 0.0
		for _, l := range lens {
			if l > 0 {
				sum += 1 / float64(uint(1)<<l)
			}
		}
		return sum <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHuffmanRoundTripCodes(t *testing.T) {
	freq := []int{10, 1, 5, 0, 3, 7, 2, 0, 100}
	lens := huffBuildLengths(freq)
	codes := huffCanonicalCodes(lens)
	dec := newHuffDecoder(lens)
	var w bitWriter
	seq := []int{0, 8, 2, 5, 4, 8, 8, 6, 1, 0}
	for _, s := range seq {
		if lens[s] == 0 {
			t.Fatalf("symbol %d unexpectedly has no code", s)
		}
		w.writeBits(codes[s], uint(lens[s]))
	}
	r := bitReader{src: w.flush()}
	for i, want := range seq {
		if got := dec.decode(&r); got != want {
			t.Fatalf("symbol %d: decoded %d, want %d", i, got, want)
		}
	}
}

func TestBitIORoundTrip(t *testing.T) {
	f := func(vals []uint16, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		var w bitWriter
		type pair struct {
			v uint32
			n uint
		}
		var pairs []pair
		for i := 0; i < n; i++ {
			width := uint(widths[i]%16) + 1
			v := uint32(vals[i]) & ((1 << width) - 1)
			pairs = append(pairs, pair{v, width})
			w.writeBits(v, width)
		}
		r := bitReader{src: w.flush()}
		for _, p := range pairs {
			if r.readBits(p.n) != p.v {
				return false
			}
		}
		return !r.bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitReaderPastEnd(t *testing.T) {
	r := bitReader{src: []byte{0xff}}
	r.readBits(8)
	if r.bad {
		t.Fatal("first 8 bits should be fine")
	}
	r.readBits(1)
	if !r.bad {
		t.Fatal("reading past end should set bad")
	}
}

func TestLengthDistCodeTables(t *testing.T) {
	for l := 3; l <= 258; l++ {
		c := lengthCode(l)
		lo := lengthBase[c]
		hi := lo + (1 << lengthExtra[c]) - 1
		if c == 28 {
			hi = 258
		}
		if l < lo || l > hi {
			t.Fatalf("length %d mapped to code %d range [%d,%d]", l, c, lo, hi)
		}
	}
	for d := 1; d <= 32768; d *= 3 {
		c := distCode(d)
		lo := distBase[c]
		hi := lo + (1 << distExtra[c]) - 1
		if d < lo || d > hi {
			t.Fatalf("dist %d mapped to code %d range [%d,%d]", d, c, lo, hi)
		}
	}
}

func TestLZ77ParseReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		in := make([]byte, rng.Intn(3000))
		for i := range in {
			in[i] = byte(rng.Intn(8)) // low entropy, many matches
		}
		tokens := lz77Parse(in, 32768, true)
		var out []byte
		for _, tok := range tokens {
			if tok.length == 0 {
				out = append(out, tok.lit)
			} else {
				start := len(out) - int(tok.dist)
				if start < 0 {
					t.Fatal("negative match start")
				}
				for k := 0; k < int(tok.length); k++ {
					out = append(out, out[start+k])
				}
			}
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("trial %d: token reconstruction mismatch", trial)
		}
	}
}

func TestLazyMatchingImprovesRatio(t *testing.T) {
	// Lazy matching must round-trip and, on structured text, compress
	// at least as well as greedy parsing.
	in := EnglishTextLike()
	lazy := NewXDeflate()
	greedy := NewXDeflateGreedy()
	lc := lazy.Compress(nil, in)
	gc := greedy.Compress(nil, in)
	if out, err := lazy.Decompress(nil, lc); err != nil || !bytes.Equal(out, in) {
		t.Fatalf("lazy round trip failed: %v", err)
	}
	if out, err := greedy.Decompress(nil, gc); err != nil || !bytes.Equal(out, in) {
		t.Fatalf("greedy round trip failed: %v", err)
	}
	if len(lc) > len(gc) {
		t.Errorf("lazy output %d bytes worse than greedy %d", len(lc), len(gc))
	}
}

// EnglishTextLike builds structured prose with overlapping phrases
// where lazy matching finds longer deferred matches.
func EnglishTextLike() []byte {
	phrases := []string{
		"the memory controller schedules ", "a refresh command every interval ",
		"the memory controller delays ", "refresh commands under load ",
		"scheduling the refresh early ", "controller schedules refresh ",
	}
	var b []byte
	rng := rand.New(rand.NewSource(12))
	for len(b) < 16384 {
		b = append(b, phrases[rng.Intn(len(phrases))]...)
	}
	return b
}

func TestGreedyLazyBothRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		in := make([]byte, rng.Intn(3000))
		for i := range in {
			in[i] = byte(rng.Intn(6))
		}
		for _, c := range []Codec{NewXDeflate(), NewXDeflateGreedy()} {
			comp := c.Compress(nil, in)
			out, err := c.Decompress(nil, comp)
			if err != nil || !bytes.Equal(out, in) {
				t.Fatalf("%s trial %d failed: %v", c.Name(), trial, err)
			}
		}
	}
}

func TestLZ77WindowRespected(t *testing.T) {
	in := bytes.Repeat([]byte("abcdefghij"), 200)
	for _, window := range []int{64, 256, 1024} {
		for _, tok := range lz77Parse(in, window, true) {
			if tok.length > 0 && int(tok.dist) > window {
				t.Fatalf("window %d: match dist %d exceeds window", window, tok.dist)
			}
		}
	}
}

// The 4K codec benchmarks reuse their dst buffers the way the swap
// pipeline does (Scratch staging), so their allocs/op reflect the
// steady-state hot path: 0 allocs/op, asserted by the regression tests
// in scratch_test.go and gated in CI via -bench-json.
func BenchmarkLZFastCompress4K(b *testing.B) {
	in := bytes.Repeat([]byte("key=value;count=123;flag=true;\n"), 140)[:4096]
	c := NewLZFast()
	dst := c.Compress(nil, in)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], in)
	}
}

func BenchmarkLZFastDecompress4K(b *testing.B) {
	in := bytes.Repeat([]byte("key=value;count=123;flag=true;\n"), 140)[:4096]
	c := NewLZFast()
	comp := c.Compress(nil, in)
	dst, err := c.Decompress(nil, comp)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = c.Decompress(dst[:0], comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXDeflateCompress4K(b *testing.B) {
	in := bytes.Repeat([]byte("key=value;count=123;flag=true;\n"), 140)[:4096]
	c := NewXDeflate()
	dst := c.Compress(nil, in)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], in)
	}
}

func BenchmarkXDeflateDecompress4K(b *testing.B) {
	in := bytes.Repeat([]byte("key=value;count=123;flag=true;\n"), 140)[:4096]
	c := NewXDeflate()
	comp := c.Compress(nil, in)
	dst, err := c.Decompress(nil, comp)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = c.Decompress(dst[:0], comp); err != nil {
			b.Fatal(err)
		}
	}
}
