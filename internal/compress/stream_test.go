package compress

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func streamRoundTrip(t *testing.T, c Codec, in []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, c)
	// Write in awkward chunk sizes to exercise block boundaries.
	for off := 0; off < len(in); {
		n := 1000
		if off+n > len(in) {
			n = len(in) - off
		}
		if m, err := w.Write(in[off : off+n]); err != nil || m != n {
			t.Fatalf("write: %d, %v", m, err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(NewStreamReader(&buf, c))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("stream framing test "), 500),
		make([]byte, 4096),      // exactly one block
		make([]byte, 4096*3+17), // partial tail
		func() []byte { // random
			b := make([]byte, 10000)
			rng.Read(b)
			return b
		}(),
	}
	for _, c := range []Codec{NewLZFast(), NewXDeflate(), NewFlate()} {
		for i, in := range inputs {
			out := streamRoundTrip(t, c, in)
			if !bytes.Equal(out, in) {
				t.Errorf("%s input %d: round trip mismatch (%d vs %d bytes)",
					c.Name(), i, len(out), len(in))
			}
		}
	}
}

func TestStreamCompresses(t *testing.T) {
	in := bytes.Repeat([]byte("key=value;"), 5000)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, NewLZFast())
	w.Write(in)
	w.Close()
	if buf.Len() >= len(in)/2 {
		t.Errorf("stream output %d bytes for %d of repetitive input", buf.Len(), len(in))
	}
}

func TestStreamReaderSmallReads(t *testing.T) {
	in := []byte(lorem())
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, NewXDeflate())
	w.Write(in)
	w.Close()
	r := NewStreamReader(&buf, NewXDeflate())
	var out []byte
	tmp := make([]byte, 7) // awkward read size
	for {
		n, err := r.Read(tmp)
		out = append(out, tmp[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out, in) {
		t.Fatal("small-read round trip mismatch")
	}
}

func lorem() string {
	s := ""
	for i := 0; i < 300; i++ {
		s += "the quick brown fox jumps over the lazy dog. "
	}
	return s
}

func TestStreamReaderCorrupt(t *testing.T) {
	in := bytes.Repeat([]byte("abc"), 3000)
	var buf bytes.Buffer
	w := NewStreamWriter(&buf, NewLZFast())
	w.Write(in)
	w.Close()
	data := buf.Bytes()
	// Truncate mid-frame.
	if _, err := io.ReadAll(NewStreamReader(bytes.NewReader(data[:len(data)/2]), NewLZFast())); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupt a frame length to something absurd.
	bad := append([]byte{0xff, 0xff, 0xff, 0x7f}, data...)
	if _, err := io.ReadAll(NewStreamReader(bytes.NewReader(bad), NewLZFast())); err == nil {
		t.Error("absurd frame length accepted")
	}
}

func TestStreamWriterAfterError(t *testing.T) {
	w := NewStreamWriter(failWriter{}, NewLZFast())
	w.Write(make([]byte, 8192)) // forces a flush into the failing sink
	if err := w.Close(); err == nil {
		t.Error("error not sticky")
	}
	if _, err := w.Write([]byte("more")); err == nil {
		t.Error("write after error succeeded")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }

func BenchmarkStreamWrite(b *testing.B) {
	in := bytes.Repeat([]byte("benchmark stream payload "), 2000)
	b.SetBytes(int64(len(in)))
	for i := 0; i < b.N; i++ {
		w := NewStreamWriter(io.Discard, NewLZFast())
		w.Write(in)
		w.Close()
	}
}
