// Package compress provides the page-compression codecs used by the SFM
// stack: a from-scratch byte-oriented LZ codec ("lzfast", LZO/LZ4-class),
// a from-scratch LZ77+Huffman codec ("xdeflate", DEFLATE-class), and a
// wrapper over the standard library's flate as a reference.
//
// The paper's SFM control plane uses lzo and zstd in production (§2.1) and
// the XFM accelerator implements Deflate (§7). The cost model (§3) needs
// per-codec cycles-per-byte figures; these are attached to each codec as
// CodecInfo and calibrated so the average matches the paper's
// CCPerGB ≈ 7.65e9 cycles per GB.
package compress

import (
	"errors"
	"fmt"
	"sort"
)

// Codec compresses and decompresses byte buffers (OS pages in the SFM
// use case). Implementations must be deterministic and must round-trip
// exactly.
type Codec interface {
	// Name returns the registry name of the codec.
	Name() string
	// Compress appends the compressed form of src to dst and returns
	// the extended slice. Compress never fails: incompressible input
	// is stored in an escape form that grows by a bounded overhead.
	Compress(dst, src []byte) []byte
	// Decompress appends the decompressed form of src to dst and
	// returns the extended slice, or an error for corrupt input.
	Decompress(dst, src []byte) ([]byte, error)
	// MaxCompressedLen bounds the compressed size for an input of n
	// bytes.
	MaxCompressedLen(n int) int
	// Info reports the codec's modeling constants.
	Info() CodecInfo
}

// CodecInfo carries the analytical-model constants for a codec.
type CodecInfo struct {
	// CompressCyclesPerByte is the modeled CPU cost of compression.
	CompressCyclesPerByte float64
	// DecompressCyclesPerByte is the modeled CPU cost of decompression.
	DecompressCyclesPerByte float64
	// TypicalRatio is the codec's typical compression ratio on
	// warehouse page data (original/compressed), for documentation.
	TypicalRatio float64
}

// ErrCorrupt is returned by Decompress when the input stream is not a
// valid compressed stream.
var ErrCorrupt = errors.New("compress: corrupt input")

var registry = map[string]Codec{}

// Register adds a codec to the global registry. It panics on duplicate
// names, which indicates a programming error.
func Register(c Codec) {
	name := c.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("compress: duplicate codec %q", name))
	}
	registry[name] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names returns the sorted names of all registered codecs.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ratio returns the compression ratio original/compressed for codec c
// on src. A ratio below 1 means the data expanded.
func Ratio(c Codec, src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	out := c.Compress(nil, src)
	if len(out) == 0 {
		return 1
	}
	return float64(len(src)) / float64(len(out))
}

func init() {
	Register(NewLZFast())
	Register(NewXDeflate())
	Register(NewFlate())
}
