package memsim

import (
	"testing"

	"xfm/internal/dram"
)

func spec(id int, name string, p Pattern, rate float64, base int64) StreamSpec {
	return StreamSpec{
		ID: id, Name: name, Pattern: p, RateGBps: rate,
		ReqBytes: 128, Base: base, Size: 1 << 30, Stride: 4096, Seed: int64(id),
	}
}

func TestValidate(t *testing.T) {
	sys := DefaultSystem()
	bad := spec(1, "x", Random, 1, 0)
	bad.RateGBps = 0
	if bad.Validate(sys.Mapping) == nil {
		t.Error("zero rate accepted")
	}
	bad = spec(1, "x", Random, 1, 0)
	bad.Base = sys.Mapping.TotalBytes()
	if bad.Validate(sys.Mapping) == nil {
		t.Error("out-of-range region accepted")
	}
	bad = spec(1, "x", Random, 1, 0)
	bad.WriteShare = 2
	if bad.Validate(sys.Mapping) == nil {
		t.Error("write share > 1 accepted")
	}
}

func TestSingleStreamAchievesOfferedRate(t *testing.T) {
	sys := DefaultSystem()
	res, err := sys.Run([]StreamSpec{spec(1, "seq", Sequential, 4, 0)}, 2*dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	got := res[0].AchievedGBps
	if got < 3.5 || got > 4.5 {
		t.Errorf("achieved %.2f GB/s, offered 4 (open loop should keep rate)", got)
	}
	if res[0].MeanLatencyNs <= 0 {
		t.Error("zero latency")
	}
}

func TestSequentialBeatsRandomRowHits(t *testing.T) {
	sys := DefaultSystem()
	res, err := sys.Run([]StreamSpec{
		spec(1, "seq", Sequential, 2, 0),
		spec(2, "rnd", Random, 2, 8<<30),
	}, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].RowHitRate <= res[1].RowHitRate {
		t.Errorf("sequential row-hit rate %.2f not above random %.2f",
			res[0].RowHitRate, res[1].RowHitRate)
	}
}

func TestContentionInflatesLatency(t *testing.T) {
	sys := DefaultSystem()
	// A victim stream co-runs with three heavy antagonists.
	streams := []StreamSpec{
		spec(1, "victim", Random, 2, 0),
		spec(2, "ant-a", Sequential, 20, 4<<30),
		spec(3, "ant-b", Sequential, 20, 8<<30),
		spec(4, "ant-c", Random, 15, 12<<30),
	}
	slow, err := sys.SlowdownVsSolo(streams, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if slow[0] <= 1.01 {
		t.Errorf("victim latency inflation = %.3f, want > 1.01 under heavy co-run", slow[0])
	}
}

func TestSwapBurstsInterfereMoreThanSmoothTraffic(t *testing.T) {
	// The Fig. 11 mechanism in simulation: page-granular SFM swap
	// bursts at the same average bandwidth hurt a victim at least as
	// much as smooth traffic.
	sys := DefaultSystem()
	victim := spec(1, "victim", Random, 4, 0)
	smooth := spec(2, "smooth", Sequential, 6, 8<<30)
	bursty := spec(3, "sfm", SwapBursts, 6, 8<<30)
	bursty.WriteShare = 0.5

	withSmooth, err := sys.Run([]StreamSpec{victim, smooth}, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	withBursty, err := sys.Run([]StreamSpec{victim, bursty}, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if withBursty[0].MeanLatencyNs < withSmooth[0].MeanLatencyNs*0.9 {
		t.Errorf("bursty swap traffic (%.1f ns) interferes much less than smooth (%.1f ns)",
			withBursty[0].MeanLatencyNs, withSmooth[0].MeanLatencyNs)
	}
}

func TestXFMRemovesSFMStreamEntirely(t *testing.T) {
	// Under XFM the SFM stream simply does not exist on the channels:
	// the victim's latency equals its solo latency.
	sys := DefaultSystem()
	victim := spec(1, "victim", Random, 4, 0)
	solo, err := sys.Run([]StreamSpec{victim}, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// "XFM co-run" = same single stream; trivially equal, asserted to
	// document the modeling claim.
	xfmRun, err := sys.Run([]StreamSpec{victim}, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if solo[0].MeanLatencyNs != xfmRun[0].MeanLatencyNs {
		t.Error("deterministic run differed")
	}
}

func TestDeterministicRuns(t *testing.T) {
	sys := DefaultSystem()
	streams := []StreamSpec{
		spec(1, "a", Random, 3, 0),
		spec(2, "b", SwapBursts, 2, 4<<30),
	}
	r1, err := sys.Run(streams, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Run(streams, dram.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Stats != r2[i].Stats {
			t.Fatalf("stream %d stats differ between identical runs", i)
		}
	}
}

func TestWriteShareProducesWrites(t *testing.T) {
	sys := DefaultSystem()
	s := spec(1, "w", Sequential, 2, 0)
	s.WriteShare = 1.0
	if _, err := sys.Run([]StreamSpec{s}, 100*dram.Microsecond); err != nil {
		t.Fatal(err)
	}
	// Run again and check controller-level accounting via results.
	res, _ := sys.Run([]StreamSpec{s}, 100*dram.Microsecond)
	if res[0].Stats.Bytes == 0 {
		t.Error("write-only stream moved no bytes")
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[Pattern]string{
		Sequential: "sequential", Strided: "strided", Random: "random",
		SwapBursts: "swap-bursts", Pattern(9): "invalid",
	} {
		if p.String() != want {
			t.Errorf("%d = %q, want %q", p, p.String(), want)
		}
	}
}

func BenchmarkRunFourStreams(b *testing.B) {
	sys := DefaultSystem()
	streams := []StreamSpec{
		spec(1, "a", Sequential, 8, 0),
		spec(2, "b", Random, 5, 4<<30),
		spec(3, "c", Strided, 4, 8<<30),
		spec(4, "d", SwapBursts, 3, 12<<30),
	}
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(streams, 100*dram.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}
