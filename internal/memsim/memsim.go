// Package memsim drives the DRAM timing model with multi-stream
// traffic: workload streams (sequential, strided, random) and SFM swap
// streams are merged in time order onto the memory controller, and
// per-stream bandwidth and latency are measured. It is the
// simulation-based counterpart of the analytic contention model — the
// Fig. 11 mechanisms (channel queueing, page-granular swap bursts)
// reproduced on the actual bank/bus state machines, in the spirit of
// the paper's gem5-based emulator (§7).
package memsim

import (
	"fmt"
	"math/rand"
	"sort"

	"xfm/internal/dram"
	"xfm/internal/memctrl"
)

// Pattern is a traffic stream's address pattern.
type Pattern int

// Address patterns.
const (
	Sequential Pattern = iota // streaming walk (lbm-like)
	Strided                   // fixed stride, row-buffer hostile
	Random                    // uniform random (mcf-like)
	SwapBursts                // page-granular read+write bursts (SFM)
)

func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	case SwapBursts:
		return "swap-bursts"
	default:
		return "invalid"
	}
}

// StreamSpec describes one traffic source.
type StreamSpec struct {
	ID      int
	Name    string
	Pattern Pattern
	// RateGBps is the offered bandwidth.
	RateGBps float64
	// ReqBytes is the request size (64–4096).
	ReqBytes int
	// Region is the address range [Base, Base+Size) the stream walks.
	Base, Size int64
	// WriteShare is the fraction of requests that are writes.
	WriteShare float64
	// Stride for Strided patterns, in bytes.
	Stride int64
	Seed   int64
}

// Validate checks the spec against a mapping.
func (s StreamSpec) Validate(m memctrl.Mapping) error {
	if s.RateGBps <= 0 || s.ReqBytes <= 0 || s.Size <= 0 {
		return fmt.Errorf("memsim: non-positive rate/size in %q", s.Name)
	}
	if s.Base < 0 || s.Base+s.Size > m.TotalBytes() {
		return fmt.Errorf("memsim: stream %q region outside memory", s.Name)
	}
	if s.WriteShare < 0 || s.WriteShare > 1 {
		return fmt.Errorf("memsim: stream %q write share %v", s.Name, s.WriteShare)
	}
	return nil
}

// event is one pending request of a stream.
type event struct {
	at  dram.Ps
	req memctrl.Request
}

// streamState generates a stream's requests lazily.
type streamState struct {
	spec   StreamSpec
	rng    *rand.Rand
	cursor int64
	next   event
	gap    dram.Ps
	phase  int // for SwapBursts: position within the page burst
}

func newStreamState(spec StreamSpec) *streamState {
	bytesPerSec := spec.RateGBps * 1e9
	reqsPerSec := bytesPerSec / float64(spec.ReqBytes)
	st := &streamState{
		spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		gap:  dram.Ps(float64(dram.Second) / reqsPerSec),
	}
	st.next = st.generate(0)
	return st
}

// generate builds the request issued at time `at`.
func (s *streamState) generate(at dram.Ps) event {
	spec := s.spec
	var addr int64
	switch spec.Pattern {
	case Sequential:
		addr = spec.Base + s.cursor%spec.Size
		s.cursor += int64(spec.ReqBytes)
	case Strided:
		addr = spec.Base + s.cursor%spec.Size
		s.cursor += spec.Stride
	case Random:
		addr = spec.Base + (s.rng.Int63n(spec.Size/int64(spec.ReqBytes)))*int64(spec.ReqBytes)
	case SwapBursts:
		// A swap moves a whole page: consecutive chunks back to back,
		// then a pause until the next page (bursty, like SFM).
		pageStart := spec.Base + (s.cursor/4096*4096)%spec.Size
		addr = pageStart + int64(s.phase*spec.ReqBytes)%4096
		s.phase++
		if s.phase*spec.ReqBytes >= 4096 {
			s.phase = 0
			s.cursor += 4096
		}
	}
	kind := dram.Read
	if s.rng.Float64() < spec.WriteShare {
		kind = dram.Write
	}
	return event{at: at, req: memctrl.Request{
		Addr: addr, Size: spec.ReqBytes, Kind: kind, Stream: spec.ID, At: at,
	}}
}

func (s *streamState) advance() {
	at := s.next.at + s.gap
	s.next = s.generate(at)
}

// Result reports one stream's measured behavior.
type Result struct {
	Spec          StreamSpec
	Stats         memctrl.StreamStats
	AchievedGBps  float64
	MeanLatencyNs float64
	RowHitRate    float64
}

// System couples a controller with streams.
type System struct {
	Mapping memctrl.Mapping
	Timings dram.Timings
}

// DefaultSystem returns a 4-channel, 2-rank DDR5-3200 system of 32 Gb
// devices.
func DefaultSystem() System {
	return System{
		Mapping: memctrl.SkylakeMapping(4, 2, dram.Device32Gb),
		Timings: dram.DDR5_3200().WithTRFC(dram.Device32Gb.TRFC),
	}
}

// Run simulates the streams for `dur` of simulated time and returns
// per-stream results in spec order. Requests are merged across streams
// in arrival order (open loop: offered rate is maintained regardless
// of completion times, so queueing shows up as latency).
func (sys System) Run(specs []StreamSpec, dur dram.Ps) ([]Result, error) {
	for _, s := range specs {
		if err := s.Validate(sys.Mapping); err != nil {
			return nil, err
		}
	}
	ctl := memctrl.NewController(sys.Mapping, sys.Timings)
	states := make([]*streamState, len(specs))
	for i, s := range specs {
		states[i] = newStreamState(s)
	}
	for {
		// Pick the earliest pending event; k is small (≤ ~10 streams).
		best := -1
		for i, st := range states {
			if st.next.at > dur {
				continue
			}
			if best < 0 || st.next.at < states[best].next.at {
				best = i
			}
		}
		if best < 0 {
			break
		}
		ctl.Submit(states[best].next.req)
		states[best].advance()
	}
	out := make([]Result, len(specs))
	for i, s := range specs {
		st := ctl.Stream(s.ID)
		r := Result{Spec: s, Stats: st}
		r.AchievedGBps = memctrl.BandwidthGBps(st.Bytes, dur)
		r.MeanLatencyNs = st.MeanLatencyNs()
		if st.RowAccesses > 0 {
			r.RowHitRate = float64(st.RowHits) / float64(st.RowAccesses)
		}
		out[i] = r
	}
	return out, nil
}

// SlowdownVsSolo runs each stream alone and then all together, and
// returns each stream's latency inflation factor (co-run mean latency
// ÷ solo mean latency) — the simulation analogue of Fig. 11's runtime
// slowdowns for memory-bound workloads.
func (sys System) SlowdownVsSolo(specs []StreamSpec, dur dram.Ps) ([]float64, error) {
	co, err := sys.Run(specs, dur)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(specs))
	for i, s := range specs {
		solo, err := sys.Run([]StreamSpec{s}, dur)
		if err != nil {
			return nil, err
		}
		if solo[0].MeanLatencyNs > 0 {
			out[i] = co[i].MeanLatencyNs / solo[0].MeanLatencyNs
		} else {
			out[i] = 1
		}
	}
	return out, nil
}

// SortResultsByID orders results for stable display.
func SortResultsByID(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Spec.ID < rs[j].Spec.ID })
}
