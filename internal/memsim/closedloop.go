package memsim

import (
	"xfm/internal/dram"
	"xfm/internal/memctrl"
)

// Closed-loop mode: instead of offering a fixed rate (open loop, where
// contention shows up as latency), each stream keeps a bounded number
// of requests in flight and issues the next one when an earlier one
// completes. Contention then shows up as lost throughput — the runtime
// slowdown co-running applications actually experience.

// ClosedLoopResult reports one stream's achieved service.
type ClosedLoopResult struct {
	Spec          StreamSpec
	Requests      int64
	Bytes         int64
	AchievedGBps  float64
	MeanLatencyNs float64
}

// RunClosedLoop simulates the streams for dur with each stream keeping
// `outstanding` requests in flight (≥1). The StreamSpec rates are
// ignored; each stream issues as fast as its completions allow.
func (sys System) RunClosedLoop(specs []StreamSpec, dur dram.Ps, outstanding int) ([]ClosedLoopResult, error) {
	for _, s := range specs {
		if err := s.Validate(sys.Mapping); err != nil {
			return nil, err
		}
	}
	if outstanding < 1 {
		outstanding = 1
	}
	ctl := memctrl.NewController(sys.Mapping, sys.Timings)
	states := make([]*streamState, len(specs))
	// next-issue times per stream: a ring of the last `outstanding`
	// completions; the next request may issue when the oldest
	// outstanding slot frees.
	slots := make([][]dram.Ps, len(specs))
	for i, s := range specs {
		states[i] = newStreamState(s)
		slots[i] = make([]dram.Ps, outstanding) // all zero: can issue at t=0
	}
	cursor := make([]int, len(specs))

	for {
		// Pick the stream able to issue earliest.
		best, bestAt := -1, dram.Ps(0)
		for i := range states {
			at := slots[i][cursor[i]]
			if at > dur {
				continue
			}
			if best < 0 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best < 0 {
			break
		}
		ev := states[best].generate(bestAt)
		ev.req.At = bestAt
		done := ctl.Submit(ev.req)
		slots[best][cursor[best]] = done
		cursor[best] = (cursor[best] + 1) % outstanding
	}

	out := make([]ClosedLoopResult, len(specs))
	for i, s := range specs {
		st := ctl.Stream(s.ID)
		out[i] = ClosedLoopResult{
			Spec:          s,
			Requests:      st.Requests,
			Bytes:         st.Bytes,
			AchievedGBps:  float64(st.Bytes) / (float64(dur) / float64(dram.Second)) / 1e9,
			MeanLatencyNs: st.MeanLatencyNs(),
		}
	}
	return out, nil
}

// ThroughputSlowdown runs each stream alone and together in closed
// loop and returns achieved-bandwidth ratios (solo ÷ co-run ≥ 1): the
// direct analogue of the paper's runtime slowdowns.
func (sys System) ThroughputSlowdown(specs []StreamSpec, dur dram.Ps, outstanding int) ([]float64, error) {
	co, err := sys.RunClosedLoop(specs, dur, outstanding)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(specs))
	for i, s := range specs {
		solo, err := sys.RunClosedLoop([]StreamSpec{s}, dur, outstanding)
		if err != nil {
			return nil, err
		}
		if co[i].AchievedGBps > 0 {
			out[i] = solo[0].AchievedGBps / co[i].AchievedGBps
		} else {
			out[i] = 1
		}
	}
	return out, nil
}
