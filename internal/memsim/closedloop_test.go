package memsim

import (
	"testing"

	"xfm/internal/dram"
)

func TestClosedLoopServesRequests(t *testing.T) {
	sys := DefaultSystem()
	res, err := sys.RunClosedLoop([]StreamSpec{spec(1, "seq", Sequential, 1, 0)},
		dram.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Requests == 0 || res[0].AchievedGBps <= 0 {
		t.Fatalf("closed loop served nothing: %+v", res[0])
	}
	// Serialized closed loop: throughput ≈ reqBytes / latency.
	implied := float64(res[0].Spec.ReqBytes) / (res[0].MeanLatencyNs * 1e-9) / 1e9
	ratio := res[0].AchievedGBps / implied
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("throughput %.2f GB/s inconsistent with latency-implied %.2f", res[0].AchievedGBps, implied)
	}
}

func TestClosedLoopMoreOutstandingMoreThroughput(t *testing.T) {
	sys := DefaultSystem()
	streams := []StreamSpec{spec(1, "seq", Sequential, 1, 0)}
	one, err := sys.RunClosedLoop(streams, dram.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := sys.RunClosedLoop(streams, dram.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four[0].AchievedGBps <= one[0].AchievedGBps {
		t.Errorf("outstanding=4 (%.2f GB/s) not above outstanding=1 (%.2f GB/s)",
			four[0].AchievedGBps, one[0].AchievedGBps)
	}
}

func TestThroughputSlowdownUnderContention(t *testing.T) {
	sys := DefaultSystem()
	streams := []StreamSpec{
		spec(1, "victim", Random, 1, 0),
		spec(2, "ant-a", Sequential, 1, 4<<30),
		spec(3, "ant-b", Sequential, 1, 8<<30),
	}
	slow, err := sys.ThroughputSlowdown(streams, dram.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if slow[0] <= 1.0 {
		t.Errorf("victim throughput slowdown = %.3f, want > 1 under co-run", slow[0])
	}
}

func TestClosedLoopValidates(t *testing.T) {
	sys := DefaultSystem()
	bad := spec(1, "x", Random, 1, 0)
	bad.Size = 0
	if _, err := sys.RunClosedLoop([]StreamSpec{bad}, dram.Millisecond, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}
