package memctrl

import "xfm/internal/telemetry"

// Process-wide memory-controller metrics: request volume and latency as
// seen at the host controller (the vantage point of the paper's §7
// co-run interference experiments), plus FR-FCFS queue occupancy so
// back-pressure into the core is visible on a dashboard.
var (
	mRequests = telemetry.NewCounterVec("memctrl_requests_total",
		"Requests submitted to the controller, by access kind.", "kind")
	mReqReads, mReqWrites *telemetry.Counter

	hReqLatency = telemetry.NewHistogram("memctrl_request_latency_ps",
		"Per-request completion latency in picoseconds (all chunks done).",
		telemetry.ExpBuckets(1e3, 2, 24))

	gReadQueue = telemetry.NewGauge("memctrl_read_queue_depth",
		"Current FR-FCFS read queue occupancy.")
	gWriteQueue = telemetry.NewGauge("memctrl_write_queue_depth",
		"Current FR-FCFS write queue occupancy.")
	mQueueStalls = telemetry.NewCounterVec("memctrl_queue_full_stalls_total",
		"Enqueue rejections due to a full transaction queue, by queue.", "queue")
	mReadStalls, mWriteStalls *telemetry.Counter
)

func init() {
	mReqReads = mRequests.With("read")
	mReqWrites = mRequests.With("write")
	mReadStalls = mQueueStalls.With("read")
	mWriteStalls = mQueueStalls.With("write")
}
