package memctrl

import (
	"xfm/internal/dram"
)

// QueuedController adds transaction queues and FR-FCFS scheduling on
// top of the channel model: reads are prioritized over writes, writes
// buffer until a high-watermark then drain to a low-watermark (the
// standard write-drain policy), and within a queue, row-buffer hits
// are served before older row misses (first-ready, first-come
// first-served). This is the scheduling layer a real host controller
// applies to the CPU and Baseline-SFM traffic the paper co-runs.
type QueuedController struct {
	inner *Controller

	// ReadQueueDepth and WriteQueueDepth bound the queues.
	ReadQueueDepth  int
	WriteQueueDepth int
	// DrainHigh/DrainLow are the write-buffer watermarks.
	DrainHigh, DrainLow int

	readQ, writeQ []Request
	draining      bool

	stats QueuedStats
}

// QueuedStats counts scheduling behavior.
type QueuedStats struct {
	ReadsServed, WritesServed int64
	FRReorders                int64 // row-hit requests served ahead of older misses
	DrainEntries              int64 // write-drain episodes
	ReadQueueFullStalls       int64
	WriteQueueFullStalls      int64
}

// NewQueuedController wraps a base controller with typical queue
// parameters (64-entry read queue, 64-entry write queue, drain at
// 48/16).
func NewQueuedController(m Mapping, t dram.Timings) *QueuedController {
	return &QueuedController{
		inner:           NewController(m, t),
		ReadQueueDepth:  64,
		WriteQueueDepth: 64,
		DrainHigh:       48,
		DrainLow:        16,
	}
}

// Inner returns the wrapped controller for stats access.
func (q *QueuedController) Inner() *Controller { return q.inner }

// Stats returns scheduling counters.
func (q *QueuedController) Stats() QueuedStats { return q.stats }

// Enqueue admits a request; it returns false when the relevant queue
// is full (the caller must retry later — modeling back-pressure into
// the core).
func (q *QueuedController) Enqueue(req Request) bool {
	if req.Kind == dram.Read {
		if len(q.readQ) >= q.ReadQueueDepth {
			q.stats.ReadQueueFullStalls++
			mReadStalls.Inc()
			return false
		}
		q.readQ = append(q.readQ, req)
		gReadQueue.SetInt(int64(len(q.readQ)))
		return true
	}
	if len(q.writeQ) >= q.WriteQueueDepth {
		q.stats.WriteQueueFullStalls++
		mWriteStalls.Inc()
		return false
	}
	q.writeQ = append(q.writeQ, req)
	gWriteQueue.SetInt(int64(len(q.writeQ)))
	return true
}

// QueueLens returns the current (read, write) queue depths.
func (q *QueuedController) QueueLens() (int, int) { return len(q.readQ), len(q.writeQ) }

// rowHit reports whether the request's first chunk targets an open
// row.
func (q *QueuedController) rowHit(req Request) bool {
	co := q.inner.Map.Decompose(req.Addr)
	bank := q.inner.Channel(co.Channel).Rank(co.Rank).Bank(co.Bank)
	return bank.State() == dram.BankActive && bank.OpenRow() == co.Row
}

// pickFR returns the index to serve from queue: the oldest row-hit if
// any (first-ready), else the oldest request.
func (q *QueuedController) pickFR(queue []Request) int {
	for i, r := range queue {
		if q.rowHit(r) {
			if i > 0 {
				q.stats.FRReorders++
			}
			return i
		}
	}
	return 0
}

// ServeOne issues the next scheduled request and returns its
// completion time; ok is false when both queues are empty. Reads are
// served unless a write drain is in progress.
func (q *QueuedController) ServeOne() (dram.Ps, bool) {
	// Enter/leave drain mode by watermark.
	if !q.draining && len(q.writeQ) >= q.DrainHigh {
		q.draining = true
		q.stats.DrainEntries++
	}
	if q.draining && len(q.writeQ) <= q.DrainLow {
		q.draining = false
	}

	useWrites := q.draining || len(q.readQ) == 0
	if useWrites && len(q.writeQ) > 0 {
		i := q.pickFR(q.writeQ)
		req := q.writeQ[i]
		q.writeQ = append(q.writeQ[:i], q.writeQ[i+1:]...)
		q.stats.WritesServed++
		gWriteQueue.SetInt(int64(len(q.writeQ)))
		return q.inner.Submit(req), true
	}
	if len(q.readQ) > 0 {
		i := q.pickFR(q.readQ)
		req := q.readQ[i]
		q.readQ = append(q.readQ[:i], q.readQ[i+1:]...)
		q.stats.ReadsServed++
		gReadQueue.SetInt(int64(len(q.readQ)))
		return q.inner.Submit(req), true
	}
	return 0, false
}

// Drain services queued requests until both queues are empty and
// returns the last completion time.
func (q *QueuedController) Drain() dram.Ps {
	var last dram.Ps
	for {
		done, ok := q.ServeOne()
		if !ok {
			return last
		}
		if done > last {
			last = done
		}
	}
}
