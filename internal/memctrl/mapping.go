// Package memctrl implements the CPU-side memory controller: physical
// address mapping (Skylake-style channel/bank interleaving, §5/§6 of
// the paper), per-channel command scheduling over the dram model, and
// bandwidth/latency accounting.
package memctrl

import (
	"fmt"

	"xfm/internal/dram"
)

// Mapping decomposes physical addresses into DRAM coordinates. The
// paper assumes the Intel Xeon Skylake mapping: 256 B channel
// interleave granularity and 128 B bank interleave granularity (§5),
// so a 4 KiB page is spread over four channels and two banks per rank
// (Fig. 6a).
type Mapping struct {
	Channels        int
	RanksPerChannel int
	Device          dram.DeviceConfig
	ChipsPerRank    int

	// ChannelInterleave and BankInterleave are the interleaving
	// granularities in bytes.
	ChannelInterleave int
	BankInterleave    int

	// XORBankHash folds low row bits into the bank-group index (the
	// bank-address hashing real controllers use, and the kind of
	// permutation-based mapping the DRAMA reverse-engineering the
	// paper cites uncovers). It spreads strided streams that would
	// otherwise camp on one bank across the bank groups.
	XORBankHash bool
}

// SkylakeMapping returns the paper's reference mapping: 256 B channel
// and 128 B bank interleave with 8 data chips per rank.
func SkylakeMapping(channels, ranksPerChannel int, dev dram.DeviceConfig) Mapping {
	return Mapping{
		Channels:          channels,
		RanksPerChannel:   ranksPerChannel,
		Device:            dev,
		ChipsPerRank:      8,
		ChannelInterleave: 256,
		BankInterleave:    128,
	}
}

// RowBytes returns the number of bytes in one rank-level row (all
// chips' rows combined).
func (m Mapping) RowBytes() int { return m.Device.ChipRowBytes * m.ChipsPerRank }

// RankBytes returns the capacity of one rank in bytes.
func (m Mapping) RankBytes() int64 {
	return int64(m.RowBytes()) * int64(m.Device.RowsPerBank) * int64(m.Device.BanksPerChip)
}

// TotalBytes returns the capacity of the whole memory system.
func (m Mapping) TotalBytes() int64 {
	return m.RankBytes() * int64(m.Channels) * int64(m.RanksPerChannel)
}

// Coord is a fully decomposed physical address.
type Coord struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Col     int // byte offset within the rank-level row
}

// Validate checks the mapping's internal consistency.
func (m Mapping) Validate() error {
	if m.Channels <= 0 || m.RanksPerChannel <= 0 || m.ChipsPerRank <= 0 {
		return fmt.Errorf("memctrl: non-positive geometry %+v", m)
	}
	if m.ChannelInterleave <= 0 || m.BankInterleave <= 0 {
		return fmt.Errorf("memctrl: non-positive interleave")
	}
	if m.ChannelInterleave%m.BankInterleave != 0 {
		return fmt.Errorf("memctrl: channel interleave %d not a multiple of bank interleave %d",
			m.ChannelInterleave, m.BankInterleave)
	}
	return m.Device.Validate()
}

// Decompose maps a physical byte address to its DRAM coordinates.
//
// Bit layout (low to high): [bank-interleave offset][bank][channel]
// [column chunks][row][rank]. This mirrors the structure of the
// Skylake mapping in the paper's Fig. 6a: consecutive 128 B chunks
// alternate between two banks, consecutive 256 B chunks rotate across
// channels, and a 4 KiB page lands in one row of two banks of one
// rank per channel.
func (m Mapping) Decompose(addr int64) Coord {
	if addr < 0 || addr >= m.TotalBytes() {
		panic(fmt.Sprintf("memctrl: address %#x out of range [0, %#x)", addr, m.TotalBytes())) //xfm:ignore hotpath-alloc panic guard on out-of-range address; Sprintf runs only when panicking
	}
	off := int(addr % int64(m.BankInterleave))
	chunk := addr / int64(m.BankInterleave)

	banksInterleaved := 2 // a 4 KiB page interleaves across 2 banks (Fig. 6a)
	bankLow := int(chunk % int64(banksInterleaved))
	chunk /= int64(banksInterleaved)

	ch := int(chunk % int64(m.Channels))
	chunk /= int64(m.Channels)

	// Remaining chunks walk the column space of the (pair of) rows,
	// then rows, then bank groups, then ranks.
	colChunks := m.RowBytes() / m.BankInterleave
	colChunk := int(chunk % int64(colChunks))
	chunk /= int64(colChunks)

	row := int(chunk % int64(m.Device.RowsPerBank))
	chunk /= int64(m.Device.RowsPerBank)

	bankGroups := m.Device.BanksPerChip / banksInterleaved
	bankHigh := int(chunk % int64(bankGroups))
	chunk /= int64(bankGroups)
	if m.XORBankHash {
		bankHigh ^= row % bankGroups
	}

	rank := int(chunk % int64(m.RanksPerChannel))

	return Coord{
		Channel: ch,
		Rank:    rank,
		Bank:    bankHigh*banksInterleaved + bankLow,
		Row:     row,
		Col:     colChunk*m.BankInterleave + off,
	}
}

// PageCoords returns the distinct (channel, rank, bank, row) tuples a
// physically contiguous region [addr, addr+size) touches. The SFM swap
// path uses this to find which rows a 4 KiB page occupies, which the
// NMA matches against refresh windows.
func (m Mapping) PageCoords(addr int64, size int) []Coord {
	seen := map[Coord]bool{}
	var out []Coord
	for off := int64(0); off < int64(size); off += int64(m.BankInterleave) {
		c := m.Decompose(addr + off)
		key := Coord{Channel: c.Channel, Rank: c.Rank, Bank: c.Bank, Row: c.Row}
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	return out
}
