package memctrl

import (
	"fmt"

	"xfm/internal/dram"
)

// Request is one memory access presented to the controller.
type Request struct {
	Addr   int64
	Size   int // bytes; split into bus bursts internally
	Kind   dram.AccessKind
	Stream int // traffic stream id for per-stream accounting
	At     dram.Ps
}

// StreamStats aggregates per-stream results.
type StreamStats struct {
	Requests    int64
	Bytes       int64
	TotalLatPs  dram.Ps
	MaxLatPs    dram.Ps
	RowHits     int64
	RowAccesses int64
}

// MeanLatencyNs returns the mean request latency in nanoseconds.
func (s StreamStats) MeanLatencyNs() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TotalLatPs) / float64(s.Requests) / float64(dram.Nanosecond)
}

// Channel models one DDR channel: the shared command/data bus plus its
// ranks. Accesses are serviced in call order (the harness submits them
// in time order; FR-FCFS reordering happens implicitly through the
// open-row policy of the banks).
type Channel struct {
	t     dram.Timings
	ranks []*dram.Rank

	busFreeAt dram.Ps
	busBusyPs dram.Ps // accumulated data-bus occupancy
	lastDone  dram.Ps

	bytesRead    int64
	bytesWritten int64
}

// NewChannel builds a channel with n ranks of the given device and
// timing set.
func NewChannel(n int, dev dram.DeviceConfig, t dram.Timings) *Channel {
	ch := &Channel{t: t}
	for i := 0; i < n; i++ {
		ch.ranks = append(ch.ranks, dram.NewRank(dev, t))
	}
	return ch
}

// Rank returns rank i of the channel.
func (c *Channel) Rank(i int) *dram.Rank { return c.ranks[i] }

// NumRanks returns the number of ranks on the channel.
func (c *Channel) NumRanks() int { return len(c.ranks) }

// Access performs one chunk access of the given size on the channel
// and returns the completion time of the data transfer and whether
// the row buffer hit. The chunk is moved as ceil(bytes/BurstBytes)
// back-to-back bursts on the shared data bus.
func (c *Channel) Access(now dram.Ps, rank, bank, row int, kind dram.AccessKind, bytes int) (dram.Ps, bool) {
	if rank < 0 || rank >= len(c.ranks) {
		panic(fmt.Sprintf("memctrl: rank %d out of range", rank))
	}
	if bytes <= 0 {
		return now, false
	}
	bursts := (bytes + c.t.BurstBytes - 1) / c.t.BurstBytes
	done, hit := c.ranks[rank].Access(now, bank, row, kind)
	done += dram.Ps(bursts-1) * c.t.TBurst
	// Serialize the data beats on the shared bus.
	busTime := dram.Ps(bursts) * c.t.TBurst
	start := done - busTime
	if start < c.busFreeAt {
		done = c.busFreeAt + busTime
	}
	c.busFreeAt = done
	c.busBusyPs += busTime
	if done > c.lastDone {
		c.lastDone = done
	}
	if kind == dram.Read {
		c.bytesRead += int64(bytes)
	} else {
		c.bytesWritten += int64(bytes)
	}
	return done, hit
}

// BusUtilization returns the fraction of [0, horizon] the data bus was
// busy.
func (c *Channel) BusUtilization(horizon dram.Ps) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(c.busBusyPs) / float64(horizon)
}

// BytesMoved returns the total read and written byte counts.
func (c *Channel) BytesMoved() (read, written int64) {
	return c.bytesRead, c.bytesWritten
}

// Controller is the multi-channel memory controller: it owns the
// address mapping and one Channel per hardware channel.
type Controller struct {
	Map      Mapping
	channels []*Channel

	streams map[int]*StreamStats
}

// NewController builds a controller for the mapping with the given
// timing set.
func NewController(m Mapping, t dram.Timings) *Controller {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	ctl := &Controller{Map: m, streams: map[int]*StreamStats{}}
	for i := 0; i < m.Channels; i++ {
		ctl.channels = append(ctl.channels, NewChannel(m.RanksPerChannel, m.Device, t))
	}
	return ctl
}

// Channel returns channel i.
func (ctl *Controller) Channel(i int) *Channel { return ctl.channels[i] }

// Submit services a request, splitting it into bank-interleave-sized
// chunks, and returns the completion time of the last chunk.
func (ctl *Controller) Submit(req Request) dram.Ps {
	if req.Size <= 0 {
		return req.At
	}
	st := ctl.streams[req.Stream]
	if st == nil {
		st = &StreamStats{}
		ctl.streams[req.Stream] = st
	}
	var last dram.Ps
	step := int64(ctl.Map.BankInterleave)
	end := req.Addr + int64(req.Size)
	for a := req.Addr; a < end; a += step {
		chunk := int(step)
		if rem := end - a; rem < step {
			chunk = int(rem)
		}
		co := ctl.Map.Decompose(a)
		done, hit := ctl.channels[co.Channel].Access(req.At, co.Rank, co.Bank, co.Row, req.Kind, chunk)
		if done > last {
			last = done
		}
		st.RowAccesses++
		if hit {
			st.RowHits++
		}
	}
	st.Requests++
	st.Bytes += int64(req.Size)
	lat := last - req.At
	st.TotalLatPs += lat
	if lat > st.MaxLatPs {
		st.MaxLatPs = lat
	}
	if req.Kind == dram.Read {
		mReqReads.Inc()
	} else {
		mReqWrites.Inc()
	}
	hReqLatency.Observe(float64(lat))
	return last
}

// Stream returns the accumulated stats for a stream id (zero stats if
// the stream never submitted).
func (ctl *Controller) Stream(id int) StreamStats {
	if st := ctl.streams[id]; st != nil {
		return *st
	}
	return StreamStats{}
}

// TotalBusUtilization returns the mean data-bus utilization across
// channels over [0, horizon].
func (ctl *Controller) TotalBusUtilization(horizon dram.Ps) float64 {
	var sum float64
	for _, ch := range ctl.channels {
		sum += ch.BusUtilization(horizon)
	}
	return sum / float64(len(ctl.channels))
}

// TotalBytes returns system-wide read and written bytes.
func (ctl *Controller) TotalBytes() (read, written int64) {
	for _, ch := range ctl.channels {
		r, w := ch.BytesMoved()
		read += r
		written += w
	}
	return read, written
}

// BandwidthGBps converts a byte count over a horizon into GB/s.
func BandwidthGBps(bytes int64, horizon dram.Ps) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(bytes) / (float64(horizon) / float64(dram.Second)) / 1e9
}
