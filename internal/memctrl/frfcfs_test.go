package memctrl

import (
	"testing"

	"xfm/internal/dram"
)

func newQC() *QueuedController {
	return NewQueuedController(SkylakeMapping(1, 1, dram.Device8Gb), dram.DDR5_3200())
}

func TestQueueAdmissionLimits(t *testing.T) {
	q := newQC()
	q.ReadQueueDepth = 2
	q.WriteQueueDepth = 1
	if !q.Enqueue(Request{Addr: 0, Size: 64, Kind: dram.Read}) {
		t.Fatal("first read rejected")
	}
	if !q.Enqueue(Request{Addr: 64, Size: 64, Kind: dram.Read}) {
		t.Fatal("second read rejected")
	}
	if q.Enqueue(Request{Addr: 128, Size: 64, Kind: dram.Read}) {
		t.Error("read beyond depth accepted")
	}
	if !q.Enqueue(Request{Addr: 0, Size: 64, Kind: dram.Write}) {
		t.Fatal("write rejected")
	}
	if q.Enqueue(Request{Addr: 64, Size: 64, Kind: dram.Write}) {
		t.Error("write beyond depth accepted")
	}
	st := q.Stats()
	if st.ReadQueueFullStalls != 1 || st.WriteQueueFullStalls != 1 {
		t.Errorf("stall counts = %+v", st)
	}
}

func TestReadsPrioritizedOverWrites(t *testing.T) {
	q := newQC()
	q.Enqueue(Request{Addr: 0, Size: 64, Kind: dram.Write})
	q.Enqueue(Request{Addr: 4096, Size: 64, Kind: dram.Read})
	q.ServeOne()
	st := q.Stats()
	if st.ReadsServed != 1 || st.WritesServed != 0 {
		t.Errorf("read not prioritized: %+v", st)
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	q := newQC()
	q.DrainHigh = 4
	q.DrainLow = 1
	// One read plus 4 writes: hitting the high watermark forces a
	// drain that proceeds ahead of the read until the low watermark.
	q.Enqueue(Request{Addr: 0, Size: 64, Kind: dram.Read})
	for i := 0; i < 4; i++ {
		q.Enqueue(Request{Addr: int64(i) * 8192, Size: 64, Kind: dram.Write})
	}
	q.ServeOne() // enters drain → serves a write
	q.ServeOne() // still draining (3 > low)
	q.ServeOne() // drains to 1 ⇒ leaves drain mode after this serve
	st := q.Stats()
	if st.WritesServed < 3 {
		t.Fatalf("writes served = %d during drain, want ≥ 3", st.WritesServed)
	}
	if st.DrainEntries != 1 {
		t.Errorf("drain episodes = %d, want 1", st.DrainEntries)
	}
	// With the drain over, the read goes next.
	q.ServeOne()
	if q.Stats().ReadsServed != 1 {
		t.Error("read not served after drain")
	}
}

func TestFirstReadyReordering(t *testing.T) {
	q := newQC()
	// Open a row by serving one read.
	q.Enqueue(Request{Addr: 0, Size: 64, Kind: dram.Read})
	q.Drain()
	// Now queue an older row-miss (different row, same bank) and a
	// younger row-hit (same row as the open one).
	missAddr := int64(1 << 20) // far away: different row
	q.Enqueue(Request{Addr: missAddr, Size: 64, Kind: dram.Read})
	q.Enqueue(Request{Addr: 64, Size: 64, Kind: dram.Read}) // row hit at row 0... same 128B chunk region
	before := q.Stats().FRReorders
	q.ServeOne()
	if q.Stats().FRReorders != before+1 {
		t.Errorf("row-hit request not served first (FR reorders = %d)", q.Stats().FRReorders)
	}
}

func TestDrainServesEverything(t *testing.T) {
	q := newQC()
	total := 0
	for i := 0; i < 30; i++ {
		kind := dram.Read
		if i%3 == 0 {
			kind = dram.Write
		}
		if q.Enqueue(Request{Addr: int64(i) * 4096, Size: 128, Kind: kind}) {
			total++
		}
	}
	last := q.Drain()
	if last <= 0 {
		t.Fatal("no completion time")
	}
	st := q.Stats()
	if int(st.ReadsServed+st.WritesServed) != total {
		t.Errorf("served %d of %d", st.ReadsServed+st.WritesServed, total)
	}
	r, w := q.QueueLens()
	if r != 0 || w != 0 {
		t.Errorf("queues not empty: %d/%d", r, w)
	}
}

func TestServeOneEmpty(t *testing.T) {
	q := newQC()
	if _, ok := q.ServeOne(); ok {
		t.Error("served from empty queues")
	}
}
