package memctrl

import (
	"testing"
	"testing/quick"

	"xfm/internal/dram"
)

func testMapping() Mapping {
	return SkylakeMapping(4, 2, dram.Device8Gb)
}

func TestMappingValidate(t *testing.T) {
	if err := testMapping().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testMapping()
	bad.ChannelInterleave = 100 // not a multiple of 128
	if err := bad.Validate(); err == nil {
		t.Error("invalid interleave accepted")
	}
}

func TestMappingCapacity(t *testing.T) {
	m := testMapping()
	// 8 Gb chip × 8 chips = 8 GiB per rank; 4 ch × 2 ranks = 64 GiB.
	if got := m.RankBytes(); got != 8<<30 {
		t.Errorf("RankBytes = %d, want %d", got, int64(8)<<30)
	}
	if got := m.TotalBytes(); got != 64<<30 {
		t.Errorf("TotalBytes = %d, want %d", got, int64(64)<<30)
	}
}

func TestDecomposeFieldsInRange(t *testing.T) {
	m := testMapping()
	f := func(raw uint64) bool {
		addr := int64(raw % uint64(m.TotalBytes()))
		c := m.Decompose(addr)
		return c.Channel >= 0 && c.Channel < m.Channels &&
			c.Rank >= 0 && c.Rank < m.RanksPerChannel &&
			c.Bank >= 0 && c.Bank < m.Device.BanksPerChip &&
			c.Row >= 0 && c.Row < m.Device.RowsPerBank &&
			c.Col >= 0 && c.Col < m.RowBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecomposeInjective: two distinct addresses never map to the same
// full coordinate + byte offset. We check it on a dense range, which
// exercises all interleave boundaries.
func TestDecomposeInjective(t *testing.T) {
	m := testMapping()
	seen := map[Coord]int64{}
	for addr := int64(0); addr < 64<<10; addr += int64(m.BankInterleave) {
		c := m.Decompose(addr)
		if prev, dup := seen[c]; dup {
			t.Fatalf("addresses %#x and %#x both map to %+v", prev, addr, c)
		}
		seen[c] = addr
	}
}

func TestChannelInterleaveGranularity(t *testing.T) {
	m := testMapping()
	// Consecutive 256 B blocks must rotate channels; bytes within a
	// 256 B block may split across banks but not channels.
	c0 := m.Decompose(0)
	c255 := m.Decompose(255)
	if c0.Channel != c255.Channel {
		t.Errorf("bytes 0 and 255 in different channels: %d vs %d", c0.Channel, c255.Channel)
	}
	c256 := m.Decompose(256)
	if c256.Channel == c0.Channel {
		t.Errorf("consecutive 256 B blocks share channel %d", c0.Channel)
	}
}

func TestBankInterleaveGranularity(t *testing.T) {
	m := testMapping()
	// Fig. 6a: consecutive 128 B chunks alternate between two banks.
	c0 := m.Decompose(0)
	c128 := m.Decompose(128)
	if c0.Bank == c128.Bank {
		t.Errorf("consecutive 128 B chunks share bank %d", c0.Bank)
	}
	if c0.Row != c128.Row {
		t.Errorf("bank-interleaved chunks land in different rows: %d vs %d", c0.Row, c128.Row)
	}
}

func TestPageCoordsShape(t *testing.T) {
	m := testMapping()
	// A 4 KiB page: 4 channels × 2 banks, one row per (channel, bank).
	coords := m.PageCoords(0, 4096)
	if len(coords) != 8 {
		t.Fatalf("4 KiB page touches %d (ch,rank,bank,row) tuples, want 8", len(coords))
	}
	perChannel := map[int]int{}
	for _, c := range coords {
		perChannel[c.Channel]++
	}
	if len(perChannel) != 4 {
		t.Errorf("page spread over %d channels, want 4", len(perChannel))
	}
	for ch, n := range perChannel {
		if n != 2 {
			t.Errorf("channel %d holds %d banks of the page, want 2", ch, n)
		}
	}
}

func TestPageCoordsSingleChannel(t *testing.T) {
	m := SkylakeMapping(1, 1, dram.Device8Gb)
	coords := m.PageCoords(0, 4096)
	// Fig. 6a single-channel: the page lives in one rank, two banks.
	if len(coords) != 2 {
		t.Fatalf("single-channel 4 KiB page touches %d tuples, want 2", len(coords))
	}
	if coords[0].Row != coords[1].Row {
		t.Errorf("page rows differ across banks: %d vs %d", coords[0].Row, coords[1].Row)
	}
}

func TestDecomposePanicsOutOfRange(t *testing.T) {
	m := testMapping()
	for _, addr := range []int64{-1, m.TotalBytes()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decompose(%#x) did not panic", addr)
				}
			}()
			m.Decompose(addr)
		}()
	}
}

func TestControllerSubmitAccounting(t *testing.T) {
	ctl := NewController(testMapping(), dram.DDR5_3200())
	done := ctl.Submit(Request{Addr: 0, Size: 4096, Kind: dram.Read, Stream: 1, At: 0})
	if done <= 0 {
		t.Fatal("completion time not positive")
	}
	st := ctl.Stream(1)
	if st.Requests != 1 || st.Bytes != 4096 {
		t.Errorf("stream stats = %+v", st)
	}
	if st.RowAccesses != 4096/128 {
		t.Errorf("row accesses = %d, want 32", st.RowAccesses)
	}
	read, written := ctl.TotalBytes()
	if read != 4096 || written != 0 {
		t.Errorf("bytes = %d read, %d written; want 4096/0", read, written)
	}
}

func TestControllerParallelChannelsFasterThanOne(t *testing.T) {
	t4 := NewController(SkylakeMapping(4, 1, dram.Device8Gb), dram.DDR5_3200())
	t1 := NewController(SkylakeMapping(1, 1, dram.Device8Gb), dram.DDR5_3200())
	done4 := t4.Submit(Request{Addr: 0, Size: 64 << 10, Kind: dram.Read})
	done1 := t1.Submit(Request{Addr: 0, Size: 64 << 10, Kind: dram.Read})
	if done4 >= done1 {
		t.Errorf("4-channel read (%d ps) not faster than 1-channel (%d ps)", done4, done1)
	}
}

func TestControllerBusSerialization(t *testing.T) {
	ctl := NewController(SkylakeMapping(1, 1, dram.Device8Gb), dram.DDR5_3200())
	// Open-loop saturation: offer requests faster than the bus can
	// drain them. Utilization must approach but never exceed 1.
	tm := dram.DDR5_3200()
	var last dram.Ps
	for i := 0; i < 2000; i++ {
		at := dram.Ps(i) * tm.TBurst // offered rate ≥ service rate
		done := ctl.Submit(Request{Addr: int64(i%1024) * 128, Size: 128, Kind: dram.Read, At: at})
		if done > last {
			last = done
		}
	}
	util := ctl.Channel(0).BusUtilization(last)
	if util > 1.0 {
		t.Errorf("bus utilization %.3f exceeds 1", util)
	}
	if util < 0.7 {
		t.Errorf("saturating stream achieved only %.3f utilization", util)
	}
}

func TestStreamLatencyStats(t *testing.T) {
	ctl := NewController(testMapping(), dram.DDR5_3200())
	ctl.Submit(Request{Addr: 0, Size: 128, Kind: dram.Read, Stream: 7, At: 0})
	st := ctl.Stream(7)
	if st.MeanLatencyNs() <= 0 {
		t.Error("mean latency not positive")
	}
	if st.MaxLatPs < dram.Ps(st.MeanLatencyNs()*float64(dram.Nanosecond)) {
		t.Error("max latency below mean")
	}
	if ctl.Stream(99).Requests != 0 {
		t.Error("unknown stream should have zero stats")
	}
}

func TestBandwidthGBps(t *testing.T) {
	// 1 GB over 1 s = 1 GB/s.
	if got := BandwidthGBps(1e9, dram.Second); got != 1 {
		t.Errorf("BandwidthGBps = %v, want 1", got)
	}
	if got := BandwidthGBps(100, 0); got != 0 {
		t.Errorf("zero horizon should yield 0, got %v", got)
	}
}

func BenchmarkControllerSubmit4K(b *testing.B) {
	ctl := NewController(testMapping(), dram.DDR5_3200())
	var now dram.Ps
	for i := 0; i < b.N; i++ {
		now = ctl.Submit(Request{Addr: int64(i%4096) * 4096, Size: 4096, Kind: dram.Read, At: now})
	}
}

func TestXORBankHashStaysInjective(t *testing.T) {
	m := testMapping()
	m.XORBankHash = true
	seen := map[Coord]int64{}
	for addr := int64(0); addr < 1<<22; addr += int64(m.BankInterleave) {
		c := m.Decompose(addr)
		if c.Bank < 0 || c.Bank >= m.Device.BanksPerChip {
			t.Fatalf("bank %d out of range", c.Bank)
		}
		if prev, dup := seen[c]; dup {
			t.Fatalf("addresses %#x and %#x collide at %+v", prev, addr, c)
		}
		seen[c] = addr
	}
}

func TestXORBankHashSpreadsRowStrides(t *testing.T) {
	// A stream striding by exactly one row-pair (the row-buffer-hostile
	// pattern) camps on one bank pair without hashing, but spreads
	// across bank groups with it.
	plain := testMapping()
	hashed := testMapping()
	hashed.XORBankHash = true
	stride := int64(plain.RowBytes()) * 2 * int64(plain.Channels) // +1 row, same bank/channel path
	banksSeen := func(m Mapping) int {
		set := map[int]bool{}
		for i := int64(0); i < 64; i++ {
			set[m.Decompose(i*stride).Bank] = true
		}
		return len(set)
	}
	p, h := banksSeen(plain), banksSeen(hashed)
	if h <= p {
		t.Errorf("XOR hash banks = %d, plain = %d; hashing should spread strides", h, p)
	}
}
