package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	ops := []Op{SwapOut, SwapIn, Prefetch}
	out := make([]Record, n)
	at := int64(0)
	for i := range out {
		at += int64(rng.Intn(1000000))
		out[i] = Record{
			AtPs:   at,
			Op:     ops[rng.Intn(3)],
			PageID: int64(rng.Intn(100000)),
			Bytes:  4096,
		}
	}
	return out
}

func TestTextRoundTrip(t *testing.T) {
	recs := sampleRecords(100, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d, want 100", w.Count())
	}
	got, err := ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords(500, 2)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if buf.Len() != 500*21 {
		t.Errorf("binary size = %d, want %d", buf.Len(), 500*21)
	}
	got, err := ReadAll(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestWriteRejectsInvalidOp(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Write(Record{Op: 'Z'}); err != ErrBadRecord {
		t.Errorf("invalid op accepted: %v", err)
	}
}

func TestReadMalformedText(t *testing.T) {
	cases := []string{
		"not json\n",
		`{"at":1,"op":"O","page":2}` + "\n",                // missing bytes
		`{"at":"x","op":"O","page":2,"bytes":4096}` + "\n", // bad int
		`{"at":1,"op":"ZZ","page":2,"bytes":4096}` + "\n",  // bad op
	}
	for _, c := range cases {
		_, err := NewReader(bytes.NewBufferString(c)).Read()
		if err == nil {
			t.Errorf("malformed line accepted: %q", c)
		}
	}
}

func TestReadTruncatedBinary(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(Record{Op: SwapOut, Bytes: 4096})
	w.Flush()
	trunc := buf.Bytes()[:10]
	_, err := NewBinaryReader(bytes.NewReader(trunc)).Read()
	if err == nil {
		t.Error("truncated binary record accepted")
	}
}

func TestEmptyStreams(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(nil)).Read(); err != io.EOF {
		t.Errorf("empty text stream: err = %v, want EOF", err)
	}
	if _, err := NewBinaryReader(bytes.NewReader(nil)).Read(); err != io.EOF {
		t.Errorf("empty binary stream: err = %v, want EOF", err)
	}
}

func TestOpStrings(t *testing.T) {
	if SwapOut.String() != "out" || SwapIn.String() != "in" || Prefetch.String() != "prefetch" {
		t.Error("op strings wrong")
	}
	if Op('Z').String() != "invalid" || Op('Z').Valid() {
		t.Error("invalid op not detected")
	}
}

func TestPropertyRoundTripBothEncodings(t *testing.T) {
	f := func(at int64, page int64, opSel uint8, b int32) bool {
		r := Record{
			AtPs:   at,
			Op:     []Op{SwapOut, SwapIn, Prefetch}[int(opSel)%3],
			PageID: page,
			Bytes:  b,
		}
		var tb, bb bytes.Buffer
		tw, bw := NewWriter(&tb), NewBinaryWriter(&bb)
		if tw.Write(r) != nil || bw.Write(r) != nil {
			return false
		}
		tw.Flush()
		bw.Flush()
		tr, err1 := NewReader(&tb).Read()
		br, err2 := NewBinaryReader(&bb).Read()
		return err1 == nil && err2 == nil && tr == r && br == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
