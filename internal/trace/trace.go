// Package trace defines the swap-in/out trace format the emulator
// consumes (§7: "Swap-in/out traces are generated using the AIFM
// userspace far memory framework when running a synthetic web
// front-end application"), with JSON-lines and compact binary
// encodings.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Op is a swap operation kind.
type Op byte

// Swap operations.
const (
	SwapOut  Op = 'O' // demote: compress into far memory
	SwapIn   Op = 'I' // demand promote: decompress on fault
	Prefetch Op = 'P' // preemptive promote: offloadable decompress
)

// Valid reports whether the op is one of the defined kinds.
func (o Op) Valid() bool { return o == SwapOut || o == SwapIn || o == Prefetch }

func (o Op) String() string {
	switch o {
	case SwapOut:
		return "out"
	case SwapIn:
		return "in"
	case Prefetch:
		return "prefetch"
	default:
		return "invalid"
	}
}

// Record is one swap event.
type Record struct {
	AtPs   int64 // simulation timestamp in picoseconds
	Op     Op
	PageID int64
	Bytes  int32 // page size (4096 for paging-granularity traces)
}

// ErrBadRecord is returned for malformed trace input.
var ErrBadRecord = errors.New("trace: malformed record")

// Writer emits records in the chosen encoding.
type Writer struct {
	w      *bufio.Writer
	binary bool
	n      int64
}

// NewWriter returns a text (JSON-lines-like) writer.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// NewBinaryWriter returns a compact binary writer (21 bytes/record).
func NewBinaryWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), binary: true}
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if !r.Op.Valid() {
		return ErrBadRecord
	}
	w.n++
	if w.binary {
		var buf [21]byte
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.AtPs))
		buf[8] = byte(r.Op)
		binary.LittleEndian.PutUint64(buf[9:], uint64(r.PageID))
		binary.LittleEndian.PutUint32(buf[17:], uint32(r.Bytes))
		_, err := w.w.Write(buf[:])
		return err
	}
	_, err := fmt.Fprintf(w.w, "{\"at\":%d,\"op\":\"%c\",\"page\":%d,\"bytes\":%d}\n",
		r.AtPs, r.Op, r.PageID, r.Bytes)
	return err
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes records.
type Reader struct {
	s      *bufio.Reader
	binary bool
}

// NewReader returns a text reader.
func NewReader(r io.Reader) *Reader { return &Reader{s: bufio.NewReader(r)} }

// NewBinaryReader returns a binary reader.
func NewBinaryReader(r io.Reader) *Reader {
	return &Reader{s: bufio.NewReader(r), binary: true}
}

// Read returns the next record, or io.EOF at the end.
func (r *Reader) Read() (Record, error) {
	if r.binary {
		var buf [21]byte
		if _, err := io.ReadFull(r.s, buf[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Record{}, ErrBadRecord
			}
			return Record{}, err
		}
		rec := Record{
			AtPs:   int64(binary.LittleEndian.Uint64(buf[0:])),
			Op:     Op(buf[8]),
			PageID: int64(binary.LittleEndian.Uint64(buf[9:])),
			Bytes:  int32(binary.LittleEndian.Uint32(buf[17:])),
		}
		if !rec.Op.Valid() {
			return Record{}, ErrBadRecord
		}
		return rec, nil
	}
	line, err := r.s.ReadString('\n')
	if err != nil {
		if err == io.EOF && strings.TrimSpace(line) == "" {
			return Record{}, io.EOF
		}
		if err != io.EOF {
			return Record{}, err
		}
	}
	return parseLine(strings.TrimSpace(line))
}

// parseLine decodes one {"at":..,"op":"..","page":..,"bytes":..} line
// with a small hand-rolled parser (records are machine-generated; a
// full JSON decoder is unnecessary).
func parseLine(line string) (Record, error) {
	var rec Record
	if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
		return rec, ErrBadRecord
	}
	fields := strings.Split(line[1:len(line)-1], ",")
	seen := 0
	for _, f := range fields {
		kv := strings.SplitN(f, ":", 2)
		if len(kv) != 2 {
			return rec, ErrBadRecord
		}
		key := strings.Trim(kv[0], `" `)
		val := strings.TrimSpace(kv[1])
		switch key {
		case "at":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return rec, ErrBadRecord
			}
			rec.AtPs = n
			seen++
		case "op":
			val = strings.Trim(val, `"`)
			if len(val) != 1 {
				return rec, ErrBadRecord
			}
			rec.Op = Op(val[0])
			seen++
		case "page":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return rec, ErrBadRecord
			}
			rec.PageID = n
			seen++
		case "bytes":
			n, err := strconv.ParseInt(val, 10, 32)
			if err != nil {
				return rec, ErrBadRecord
			}
			rec.Bytes = int32(n)
			seen++
		}
	}
	if seen != 4 || !rec.Op.Valid() {
		return rec, ErrBadRecord
	}
	return rec, nil
}

// ReadAll drains the reader.
func ReadAll(r *Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
