package dataframe

import (
	"math"
	"math/rand"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/sfm"
)

func newFrame() (*Frame, *sfm.Heap) {
	h := sfm.NewHeap(sfm.NewCPUBackend(compress.NewLZFast(), 0))
	return New(h), h
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestAddAndPointLookup(t *testing.T) {
	f, _ := newFrame()
	col, err := f.AddInt64(0, "id", seq(1500)) // spans 3 pages
	if err != nil {
		t.Fatal(err)
	}
	if col.Pages() != 3 {
		t.Errorf("pages = %d, want 3 (512 values per page)", col.Pages())
	}
	if f.Rows() != 1500 {
		t.Errorf("rows = %d", f.Rows())
	}
	for _, row := range []int{0, 511, 512, 1023, 1499} {
		v, err := col.Int64At(0, row)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(row) {
			t.Errorf("row %d = %d", row, v)
		}
	}
	if _, err := col.Int64At(0, 1500); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := col.Int64At(0, -1); err == nil {
		t.Error("negative row accepted")
	}
}

func TestColumnMismatches(t *testing.T) {
	f, _ := newFrame()
	if _, err := f.AddInt64(0, "a", seq(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddInt64(0, "a", seq(10)); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := f.AddInt64(0, "b", seq(11)); err == nil {
		t.Error("ragged column accepted")
	}
	if _, err := f.Column("nope"); err == nil {
		t.Error("missing column returned")
	}
	col, _ := f.Column("a")
	if _, err := col.Float64At(0, 0); err == nil {
		t.Error("type confusion accepted")
	}
	if _, err := col.MeanFloat64(0); err == nil {
		t.Error("float op on int column accepted")
	}
}

func TestSumAndFilter(t *testing.T) {
	f, _ := newFrame()
	col, _ := f.AddInt64(0, "v", seq(1000))
	sum, err := col.SumInt64(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 999*1000/2 {
		t.Errorf("sum = %d, want %d", sum, 999*1000/2)
	}
	rows, err := col.FilterInt64(0, func(v int64) bool { return v%100 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("filter matched %d rows, want 10", len(rows))
	}
}

func TestFloatColumnMean(t *testing.T) {
	f, _ := newFrame()
	vals := make([]float64, 700)
	for i := range vals {
		vals[i] = float64(i) / 7
	}
	col, err := f.AddFloat64(0, "f", vals)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := col.MeanFloat64(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	want /= float64(len(vals))
	if math.Abs(mean-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", mean, want)
	}
	v, err := col.Float64At(0, 699)
	if err != nil || v != vals[699] {
		t.Errorf("Float64At = %v, %v", v, err)
	}
}

func TestGroupSum(t *testing.T) {
	f, _ := newFrame()
	n := 2000
	keys := make([]int64, n)
	vals := make([]int64, n)
	want := map[int64]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = int64(rng.Intn(5))
		vals[i] = int64(rng.Intn(100))
		want[keys[i]] += vals[i]
	}
	f.AddInt64(0, "k", keys)
	f.AddInt64(0, "v", vals)
	got, err := f.GroupSumInt64(0, "k", "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("group %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestDemoteAndQueryThroughFarMemory(t *testing.T) {
	f, heap := newFrame()
	col, _ := f.AddInt64(0, "v", seq(5120)) // 10 pages
	demoted, err := f.Demote(dram.Second, "v")
	if err != nil {
		t.Fatal(err)
	}
	if demoted != 10 {
		t.Fatalf("demoted %d pages, want 10", demoted)
	}
	if heap.Stats().FarPages != 10 {
		t.Fatalf("far pages = %d", heap.Stats().FarPages)
	}
	// A scan over the demoted column faults pages back and still
	// computes the right answer.
	sum, err := col.SumInt64(2 * dram.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5119*5120/2 {
		t.Errorf("sum over far memory = %d", sum)
	}
	if heap.Stats().DemandFaults != 10 {
		t.Errorf("demand faults = %d, want 10", heap.Stats().DemandFaults)
	}
}

func TestPrefetchAvoidsFaults(t *testing.T) {
	f, heap := newFrame()
	col, _ := f.AddInt64(0, "v", seq(2048)) // 4 pages
	f.Demote(dram.Second, "v")
	n, err := f.PrefetchColumn(2*dram.Second, "v")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("prefetched %d pages, want 4", n)
	}
	if _, err := col.SumInt64(3 * dram.Second); err != nil {
		t.Fatal(err)
	}
	st := heap.Stats()
	if st.DemandFaults != 0 {
		t.Errorf("faults = %d after prefetch, want 0", st.DemandFaults)
	}
	if st.PrefetchedPages != 4 {
		t.Errorf("prefetches = %d, want 4", st.PrefetchedPages)
	}
}

func TestKindStrings(t *testing.T) {
	if KindInt64.String() != "int64" || KindFloat64.String() != "float64" {
		t.Error("kind strings wrong")
	}
}

func BenchmarkScanSum(b *testing.B) {
	f, _ := newFrame()
	col, _ := f.AddInt64(0, "v", seq(51200))
	b.SetBytes(51200 * 8)
	for i := 0; i < b.N; i++ {
		if _, err := col.SumInt64(dram.Ps(i)); err != nil {
			b.Fatal(err)
		}
	}
}
