package dataframe

import (
	"math/rand"
	"testing"

	"xfm/internal/compress"
	"xfm/internal/dram"
	"xfm/internal/sfm"
)

func newMap(capacity int) (*FarMap, *sfm.Heap) {
	h := sfm.NewHeap(sfm.NewCPUBackend(compress.NewLZFast(), 0))
	return NewFarMap(0, h, capacity), h
}

func TestFarMapBasicOps(t *testing.T) {
	m, _ := newMap(100)
	if m.Len() != 0 {
		t.Fatal("new map not empty")
	}
	if err := m.Put(0, 42, 420); err != nil {
		t.Fatal(err)
	}
	v, ok, err := m.Get(0, 42)
	if err != nil || !ok || v != 420 {
		t.Fatalf("Get = %d,%v,%v", v, ok, err)
	}
	// Update in place.
	m.Put(0, 42, 421)
	if v, _, _ := m.Get(0, 42); v != 421 {
		t.Errorf("update lost: %d", v)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d after update, want 1", m.Len())
	}
	if _, ok, _ := m.Get(0, 999); ok {
		t.Error("missing key found")
	}
	deleted, err := m.Delete(0, 42)
	if err != nil || !deleted {
		t.Fatalf("Delete = %v,%v", deleted, err)
	}
	if _, ok, _ := m.Get(0, 42); ok {
		t.Error("deleted key still found")
	}
	if deleted, _ := m.Delete(0, 42); deleted {
		t.Error("double delete succeeded")
	}
}

func TestFarMapNegativeAndSentinelKeys(t *testing.T) {
	m, _ := newMap(16)
	// Keys that would collide with naive sentinel encodings.
	for _, k := range []int64{0, 1, -1, -2, 1 << 62, -(1 << 62)} {
		if err := m.Put(0, k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int64{0, 1, -1, -2, 1 << 62, -(1 << 62)} {
		v, ok, err := m.Get(0, k)
		if err != nil || !ok || v != k*3 {
			t.Errorf("key %d: got %d,%v,%v", k, v, ok, err)
		}
	}
}

func TestFarMapChurnAgainstReference(t *testing.T) {
	m, _ := newMap(2000)
	ref := map[int64]int64{}
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 20000; op++ {
		now := dram.Ps(op) * dram.Microsecond
		k := int64(rng.Intn(3000) - 1500)
		switch rng.Intn(3) {
		case 0:
			v := rng.Int63()
			if err := m.Put(now, k, v); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		case 1:
			got, ok, err := m.Get(now, k)
			if err != nil {
				t.Fatal(err)
			}
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = %d,%v; want %d,%v", op, k, got, ok, want, wok)
			}
		case 2:
			got, err := m.Delete(now, k)
			if err != nil {
				t.Fatal(err)
			}
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, m.Len(), len(ref))
		}
	}
}

func TestFarMapFull(t *testing.T) {
	m, _ := newMap(1) // one page worth of slots (256)
	var err error
	full := false
	for i := 0; i < 10000; i++ {
		if err = m.Put(0, int64(i), 1); err != nil {
			full = true
			break
		}
	}
	if !full {
		t.Error("fixed-capacity map never filled")
	}
}

func TestFarMapQueryThroughFarMemory(t *testing.T) {
	m, h := newMap(1000)
	for i := int64(0); i < 500; i++ {
		if err := m.Put(0, i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	demoted := m.Demote(dram.Second)
	if demoted != m.Pages() {
		t.Fatalf("demoted %d of %d pages", demoted, m.Pages())
	}
	// Lookups of present keys fault pages back.
	for i := int64(0); i < 500; i += 50 {
		v, ok, err := m.Get(2*dram.Second, i)
		if err != nil || !ok || v != i*i {
			t.Fatalf("Get(%d) after demotion = %d,%v,%v", i, v, ok, err)
		}
	}
	if h.Stats().DemandFaults == 0 {
		t.Error("no faults despite demoted table")
	}
}

func TestFarMapAbsentLookupsTouchNothingWhenDemoted(t *testing.T) {
	m, h := newMap(256)
	m.Put(0, 7, 70)
	m.Demote(dram.Second)
	before := h.Stats().DemandFaults
	// A key whose probe run hits only empty slots resolves from local
	// metadata without touching far memory.
	missProbes := 0
	for k := int64(1000); k < 1100; k++ {
		if _, ok, err := m.Get(2*dram.Second, k); err != nil {
			t.Fatal(err)
		} else if !ok {
			missProbes++
		}
	}
	after := h.Stats().DemandFaults
	if missProbes == 0 {
		t.Fatal("no misses exercised")
	}
	// Some lookups may land on the lone live slot's chain, but most
	// must resolve metadata-only.
	if after-before > 5 {
		t.Errorf("%d faults for %d absent-key lookups; metadata should absorb most", after-before, missProbes)
	}
}

func BenchmarkFarMapGet(b *testing.B) {
	m, _ := newMap(100000)
	for i := int64(0); i < 100000; i++ {
		m.Put(0, i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(dram.Ps(i), int64(i%100000))
	}
}
