package dataframe

import (
	"encoding/binary"
	"fmt"

	"xfm/internal/dram"
	"xfm/internal/sfm"
)

// FarMap is an int64→int64 hash table whose buckets live in far-memory
// pages — the remoteable-hashtable counterpart of AIFM's data
// structures, over the same sfm.Heap as the DataFrame columns. In
// AIFM's style, the small occupancy metadata stays in local memory (2
// bits per slot) while keys and values live in far-memory pages, so
// probing only faults pages that actually hold candidate entries.
// Linear probing with tombstones; fixed capacity (the SFM use case
// stores precomputed indexes, not growing maps).
type FarMap struct {
	heap  *sfm.Heap
	pages []sfm.PageID
	// state holds 2 bits per slot: 0 empty, 1 live, 2 tombstone.
	state []byte
	slots int // total bucket count (power of two)
	used  int
	dead  int
}

const (
	slotBytes    = 16 // key + value
	slotsPerPage = sfm.PageSize / slotBytes

	slotEmpty = 0
	slotLive  = 1
	slotTomb  = 2
)

// NewFarMap builds a map with capacity for roughly `capacity` entries
// at 70% load.
func NewFarMap(now dram.Ps, heap *sfm.Heap, capacity int) *FarMap {
	if capacity < 1 {
		capacity = 1
	}
	slots := 1
	for slots < capacity*10/7 {
		slots *= 2
	}
	if slots < slotsPerPage {
		slots = slotsPerPage
	}
	m := &FarMap{heap: heap, slots: slots, state: make([]byte, (slots+3)/4)}
	npages := (slots + slotsPerPage - 1) / slotsPerPage
	zero := make([]byte, sfm.PageSize)
	for i := 0; i < npages; i++ {
		m.pages = append(m.pages, heap.Alloc(now, zero))
	}
	return m
}

// Len returns the number of live entries.
func (m *FarMap) Len() int { return m.used }

// Pages returns the number of far-memory pages backing the table.
func (m *FarMap) Pages() int { return len(m.pages) }

func (m *FarMap) slotState(i int) byte {
	return m.state[i/4] >> uint(2*(i%4)) & 3
}

func (m *FarMap) setSlotState(i int, s byte) {
	shift := uint(2 * (i % 4))
	m.state[i/4] = m.state[i/4]&^(3<<shift) | s<<shift
}

func hash64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// slotAt touches the page holding slot i and returns the page buffer
// plus the byte offset of the slot.
func (m *FarMap) slotAt(now dram.Ps, i int) ([]byte, int, error) {
	page, err := m.heap.Touch(now, m.pages[i/slotsPerPage])
	if err != nil {
		return nil, 0, err
	}
	return page, (i % slotsPerPage) * slotBytes, nil
}

func (m *FarMap) writeSlot(now dram.Ps, i int, key, value int64) error {
	page, off, err := m.slotAt(now, i)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(page[off:], uint64(key))
	binary.LittleEndian.PutUint64(page[off+8:], uint64(value))
	return nil
}

// Put inserts or updates key → value. It fails when the table is full.
func (m *FarMap) Put(now dram.Ps, key, value int64) error {
	idx := int(hash64(uint64(key)) & uint64(m.slots-1))
	firstTomb := -1
	for probe := 0; probe < m.slots; probe++ {
		switch m.slotState(idx) {
		case slotLive:
			page, off, err := m.slotAt(now, idx)
			if err != nil {
				return err
			}
			if int64(binary.LittleEndian.Uint64(page[off:])) == key {
				binary.LittleEndian.PutUint64(page[off+8:], uint64(value))
				return nil
			}
		case slotEmpty:
			target := idx
			if firstTomb >= 0 {
				target = firstTomb
				m.dead--
			}
			if err := m.writeSlot(now, target, key, value); err != nil {
				return err
			}
			m.setSlotState(target, slotLive)
			m.used++
			return nil
		case slotTomb:
			if firstTomb < 0 {
				firstTomb = idx
			}
		}
		idx = (idx + 1) & (m.slots - 1)
	}
	if firstTomb >= 0 {
		if err := m.writeSlot(now, firstTomb, key, value); err != nil {
			return err
		}
		m.setSlotState(firstTomb, slotLive)
		m.used++
		m.dead--
		return nil
	}
	return fmt.Errorf("dataframe: FarMap full (%d slots)", m.slots)
}

// Get returns the value under key.
func (m *FarMap) Get(now dram.Ps, key int64) (int64, bool, error) {
	idx := int(hash64(uint64(key)) & uint64(m.slots-1))
	for probe := 0; probe < m.slots; probe++ {
		switch m.slotState(idx) {
		case slotEmpty:
			return 0, false, nil
		case slotLive:
			page, off, err := m.slotAt(now, idx)
			if err != nil {
				return 0, false, err
			}
			if int64(binary.LittleEndian.Uint64(page[off:])) == key {
				return int64(binary.LittleEndian.Uint64(page[off+8:])), true, nil
			}
		}
		idx = (idx + 1) & (m.slots - 1)
	}
	return 0, false, nil
}

// Delete removes key, returning whether it was present.
func (m *FarMap) Delete(now dram.Ps, key int64) (bool, error) {
	idx := int(hash64(uint64(key)) & uint64(m.slots-1))
	for probe := 0; probe < m.slots; probe++ {
		switch m.slotState(idx) {
		case slotEmpty:
			return false, nil
		case slotLive:
			page, off, err := m.slotAt(now, idx)
			if err != nil {
				return false, err
			}
			if int64(binary.LittleEndian.Uint64(page[off:])) == key {
				m.setSlotState(idx, slotTomb)
				m.used--
				m.dead++
				return true, nil
			}
		}
		idx = (idx + 1) & (m.slots - 1)
	}
	return false, nil
}

// Demote pushes every bucket page to far memory (cold index). The
// local metadata stays resident, so lookups of absent keys still
// complete without touching far memory at all.
func (m *FarMap) Demote(now dram.Ps) int {
	n := 0
	for _, id := range m.pages {
		if m.heap.Resident(id) {
			if m.heap.SwapOut(now, id) == nil {
				n++
			}
		}
	}
	return n
}
