// Package dataframe implements a small column-store DataFrame whose
// column data lives in a far-memory heap — the paper's motivating
// application (§7 runs "a synthetic web front-end application"
// built on the DataFrame library over AIFM). Columns are paged into
// 4 KiB far-memory pages; scans and point lookups touch pages through
// the heap, so cold columns compress into the SFM region and queries
// fault or prefetch them back.
package dataframe

import (
	"encoding/binary"
	"fmt"
	"math"

	"xfm/internal/dram"
	"xfm/internal/sfm"
)

// valuesPerPage is how many 8-byte values fit in one far-memory page.
const valuesPerPage = sfm.PageSize / 8

// Frame is a collection of equally sized columns over one heap.
type Frame struct {
	heap *sfm.Heap
	cols map[string]*Column
	rows int
}

// New creates an empty frame over the heap.
func New(heap *sfm.Heap) *Frame {
	return &Frame{heap: heap, cols: map[string]*Column{}}
}

// Rows returns the number of rows.
func (f *Frame) Rows() int { return f.rows }

// Columns returns the column names in insertion-independent map order
// is avoided: names are returned sorted by the caller if needed.
func (f *Frame) Columns() []string {
	out := make([]string, 0, len(f.cols))
	for n := range f.cols {
		out = append(out, n)
	}
	return out
}

// Column returns the named column.
func (f *Frame) Column(name string) (*Column, error) {
	c, ok := f.cols[name]
	if !ok {
		return nil, fmt.Errorf("dataframe: no column %q", name)
	}
	return c, nil
}

// AddInt64 adds an int64 column. All columns must have equal length.
func (f *Frame) AddInt64(now dram.Ps, name string, values []int64) (*Column, error) {
	raw := make([]uint64, len(values))
	for i, v := range values {
		raw[i] = uint64(v)
	}
	return f.add(now, name, KindInt64, raw)
}

// AddFloat64 adds a float64 column.
func (f *Frame) AddFloat64(now dram.Ps, name string, values []float64) (*Column, error) {
	raw := make([]uint64, len(values))
	for i, v := range values {
		raw[i] = math.Float64bits(v)
	}
	return f.add(now, name, KindFloat64, raw)
}

func (f *Frame) add(now dram.Ps, name string, kind Kind, raw []uint64) (*Column, error) {
	if _, dup := f.cols[name]; dup {
		return nil, fmt.Errorf("dataframe: column %q already exists", name)
	}
	if len(f.cols) > 0 && len(raw) != f.rows {
		return nil, fmt.Errorf("dataframe: column %q has %d rows, frame has %d", name, len(raw), f.rows)
	}
	col := &Column{frame: f, name: name, kind: kind, rows: len(raw)}
	buf := make([]byte, sfm.PageSize)
	for off := 0; off < len(raw); off += valuesPerPage {
		end := off + valuesPerPage
		if end > len(raw) {
			end = len(raw)
		}
		for i := range buf {
			buf[i] = 0
		}
		for i, v := range raw[off:end] {
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
		col.pages = append(col.pages, f.heap.Alloc(now, buf))
	}
	f.cols[name] = col
	f.rows = len(raw)
	return col, nil
}

// Kind is a column's element type.
type Kind int

// Column kinds.
const (
	KindInt64 Kind = iota
	KindFloat64
)

func (k Kind) String() string {
	if k == KindInt64 {
		return "int64"
	}
	return "float64"
}

// Column is one far-memory-backed column.
type Column struct {
	frame *Frame
	name  string
	kind  Kind
	rows  int
	pages []sfm.PageID
}

// Name returns the column name; Kind its element type; Rows its
// length; Pages the number of far-memory pages backing it.
func (c *Column) Name() string { return c.name }

// Kind returns the element type.
func (c *Column) Kind() Kind { return c.kind }

// Rows returns the column length.
func (c *Column) Rows() int { return c.rows }

// Pages returns how many heap pages back the column.
func (c *Column) Pages() int { return len(c.pages) }

// raw fetches the stored word at row, touching (and possibly
// faulting) the backing page.
func (c *Column) raw(now dram.Ps, row int) (uint64, error) {
	if row < 0 || row >= c.rows {
		return 0, fmt.Errorf("dataframe: row %d out of range [0,%d)", row, c.rows)
	}
	page, err := c.frame.heap.Touch(now, c.pages[row/valuesPerPage])
	if err != nil {
		return 0, err
	}
	idx := row % valuesPerPage
	return binary.LittleEndian.Uint64(page[idx*8:]), nil
}

// Int64At returns the int64 value at row.
func (c *Column) Int64At(now dram.Ps, row int) (int64, error) {
	if c.kind != KindInt64 {
		return 0, fmt.Errorf("dataframe: column %q is %v", c.name, c.kind)
	}
	v, err := c.raw(now, row)
	return int64(v), err
}

// Float64At returns the float64 value at row.
func (c *Column) Float64At(now dram.Ps, row int) (float64, error) {
	if c.kind != KindFloat64 {
		return 0, fmt.Errorf("dataframe: column %q is %v", c.name, c.kind)
	}
	v, err := c.raw(now, row)
	return math.Float64frombits(v), err
}

// scan iterates the column's pages in order, calling fn for every
// value. Scans are the far-memory-friendly access pattern: page-
// sequential, so the controller can prefetch ahead.
func (c *Column) scan(now dram.Ps, fn func(row int, word uint64)) error {
	row := 0
	for _, id := range c.pages {
		page, err := c.frame.heap.Touch(now, id)
		if err != nil {
			return err
		}
		n := valuesPerPage
		if rem := c.rows - row; rem < n {
			n = rem
		}
		for i := 0; i < n; i++ {
			fn(row, binary.LittleEndian.Uint64(page[i*8:]))
			row++
		}
	}
	return nil
}

// SumInt64 scans and sums an int64 column.
func (c *Column) SumInt64(now dram.Ps) (int64, error) {
	if c.kind != KindInt64 {
		return 0, fmt.Errorf("dataframe: column %q is %v", c.name, c.kind)
	}
	var sum int64
	err := c.scan(now, func(_ int, w uint64) { sum += int64(w) })
	return sum, err
}

// MeanFloat64 scans and averages a float64 column.
func (c *Column) MeanFloat64(now dram.Ps) (float64, error) {
	if c.kind != KindFloat64 {
		return 0, fmt.Errorf("dataframe: column %q is %v", c.name, c.kind)
	}
	if c.rows == 0 {
		return 0, nil
	}
	var sum float64
	err := c.scan(now, func(_ int, w uint64) { sum += math.Float64frombits(w) })
	return sum / float64(c.rows), err
}

// FilterInt64 returns the rows where pred holds.
func (c *Column) FilterInt64(now dram.Ps, pred func(int64) bool) ([]int, error) {
	if c.kind != KindInt64 {
		return nil, fmt.Errorf("dataframe: column %q is %v", c.name, c.kind)
	}
	var rows []int
	err := c.scan(now, func(row int, w uint64) {
		if pred(int64(w)) {
			rows = append(rows, row)
		}
	})
	return rows, err
}

// GroupSumInt64 groups the key column's values and sums the value
// column per group — the analytics kernel of the web front-end.
func (f *Frame) GroupSumInt64(now dram.Ps, keyCol, valCol string) (map[int64]int64, error) {
	kc, err := f.Column(keyCol)
	if err != nil {
		return nil, err
	}
	vc, err := f.Column(valCol)
	if err != nil {
		return nil, err
	}
	if kc.kind != KindInt64 || vc.kind != KindInt64 {
		return nil, fmt.Errorf("dataframe: GroupSumInt64 needs int64 columns")
	}
	out := map[int64]int64{}
	// Gather keys first (page-sequential), then values; both scans are
	// prefetch-friendly.
	keys := make([]int64, 0, kc.rows)
	if err := kc.scan(now, func(_ int, w uint64) { keys = append(keys, int64(w)) }); err != nil {
		return nil, err
	}
	if err := vc.scan(now, func(row int, w uint64) { out[keys[row]] += int64(w) }); err != nil {
		return nil, err
	}
	return out, nil
}

// Demote pushes every page of the named column to far memory (the
// controller would normally do this by coldness; the explicit call
// models a "query finished, table now cold" hint).
func (f *Frame) Demote(now dram.Ps, name string) (int, error) {
	c, err := f.Column(name)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range c.pages {
		if f.heap.Resident(id) {
			if err := f.heap.SwapOut(now, id); err == nil {
				n++
			}
		}
	}
	return n, nil
}

// PrefetchColumn promotes a column's pages ahead of a scan with the
// offload hint set (predictable access pattern, §3.2: XFM lets the
// control plane "aggressively compress and decompress").
func (f *Frame) PrefetchColumn(now dram.Ps, name string) (int, error) {
	c, err := f.Column(name)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range c.pages {
		if !f.heap.Resident(id) {
			if err := f.heap.Prefetch(now, id); err == nil {
				n++
			}
		}
	}
	return n, nil
}
