package bench

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"xfm/internal/sfm"
)

func baselineOf(rs ...Result) Baseline { return Baseline{Scenarios: rs} }

func TestGatePassesWithinThreshold(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000})
	lines, err := Gate(b, []Result{{Name: "a", PagesPerSec: 810}}, 0.20)
	if err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d report lines, want 1", len(lines))
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000})
	_, err := Gate(b, []Result{{Name: "a", PagesPerSec: 799}}, 0.20)
	if err == nil {
		t.Fatal("gate passed a 20.1% regression")
	}
	if !strings.Contains(err.Error(), "below the") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestGateFailsOnMissingScenario(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000}, Result{Name: "b", PagesPerSec: 500})
	if _, err := Gate(b, []Result{{Name: "a", PagesPerSec: 1000}}, 0.20); err == nil {
		t.Fatal("gate passed with scenario b missing from results")
	}
	if _, err := Gate(b, []Result{
		{Name: "a", PagesPerSec: 1000},
		{Name: "b", PagesPerSec: 500},
		{Name: "c", PagesPerSec: 1},
	}, 0.20); err == nil {
		t.Fatal("gate passed with scenario c missing from baseline")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := []Result{
		{Name: "x", PagesPerSec: 123.5, NsPerOp: 4, AllocsPerOp: 5, CompressionRatio: 2.5, PagesPerOp: 256,
			GoMaxProcs: 8, GoVersion: "go1.24.0", Workers: 4, Shards: 16,
			IntervalPagesPerSec: []float64{120, 125, 124, 123}, SteadyStatePagesPerSec: 123.5},
		{Name: "y", PagesPerSec: 9, PagesPerOp: 256},
	}
	if err := WriteJSON(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d results, want %d", len(out), len(in))
	}
	seen := map[string]Result{}
	for _, r := range out {
		seen[r.Name] = r
	}
	for _, r := range in {
		if !reflect.DeepEqual(seen[r.Name], r) {
			t.Fatalf("round trip changed %s: %+v -> %+v", r.Name, r, seen[r.Name])
		}
	}
}

func TestIntervalRates(t *testing.T) {
	// 32 ops at a constant 1ms each with 256 pages/op: every interval
	// reads 256000 pages/s.
	opNs := make([]int64, 32)
	for i := range opNs {
		opNs[i] = 1e6
	}
	rates := intervalRates(opNs, 256)
	if len(rates) != benchIntervals {
		t.Fatalf("got %d intervals, want %d", len(rates), benchIntervals)
	}
	for i, r := range rates {
		if math.Abs(r-256000) > 1e-6 {
			t.Fatalf("interval %d = %g pages/s, want 256000", i, r)
		}
	}
	// Fewer ops than intervals: one interval per op.
	if got := intervalRates(opNs[:3], 256); len(got) != 3 {
		t.Fatalf("3 ops produced %d intervals, want 3", len(got))
	}
	if intervalRates(nil, 256) != nil {
		t.Fatal("empty input produced intervals")
	}
	// A warmup ramp shows up: first half slow, last half fast.
	ramp := make([]int64, 32)
	for i := range ramp {
		if i < 16 {
			ramp[i] = 2e6
		} else {
			ramp[i] = 1e6
		}
	}
	rr := intervalRates(ramp, 256)
	if rr[0] >= rr[len(rr)-1] {
		t.Fatalf("ramp not visible: first %g, last %g", rr[0], rr[len(rr)-1])
	}
}

func TestSteadyState(t *testing.T) {
	if got := steadyState([]float64{100, 200, 300, 400}); got != 350 {
		t.Fatalf("steadyState = %g, want 350 (mean of last half)", got)
	}
	if got := steadyState([]float64{42}); got != 42 {
		t.Fatalf("single interval steadyState = %g, want 42", got)
	}
	if got := steadyState(nil); got != 0 {
		t.Fatalf("empty steadyState = %g, want 0", got)
	}
}

func TestSteadyStateWarnings(t *testing.T) {
	flat := Result{Name: "flat", PagesPerSec: 1000, SteadyStatePagesPerSec: 1050,
		IntervalPagesPerSec: []float64{900, 1000, 1050, 1050}}
	if w := SteadyStateWarnings([]Result{flat}); len(w) != 0 {
		t.Fatalf("5%% divergence warned: %v", w)
	}
	ramp := Result{Name: "ramp", PagesPerSec: 1000, SteadyStatePagesPerSec: 1300,
		IntervalPagesPerSec: []float64{500, 800, 1200, 1400}}
	w := SteadyStateWarnings([]Result{ramp})
	if len(w) != 1 || !strings.Contains(w[0], "not in steady state") {
		t.Fatalf("30%% divergence should warn once, got %v", w)
	}
	// Too few intervals to judge: stay quiet.
	short := ramp
	short.IntervalPagesPerSec = []float64{500, 1400}
	if w := SteadyStateWarnings([]Result{short}); len(w) != 0 {
		t.Fatalf("2-interval run warned: %v", w)
	}
	// Results predating the trajectory fields: stay quiet.
	if w := SteadyStateWarnings([]Result{{Name: "old", PagesPerSec: 1000}}); len(w) != 0 {
		t.Fatalf("legacy result warned: %v", w)
	}
}

func TestEnvWarnings(t *testing.T) {
	base := baselineOf(Result{Name: "a", GoMaxProcs: 8, GoVersion: "go1.24.0", Workers: 0, Shards: 16})
	same := Result{Name: "a", GoMaxProcs: 8, GoVersion: "go1.24.0", Workers: 0, Shards: 16}
	if w := EnvWarnings(base, []Result{same}); len(w) != 0 {
		t.Fatalf("matching environments warned: %v", w)
	}

	mism := same
	mism.GoMaxProcs = 1
	w := EnvWarnings(base, []Result{mism})
	if len(w) != 1 || !strings.Contains(w[0], "GOMAXPROCS mismatch") {
		t.Fatalf("GOMAXPROCS 8 vs 1 should warn once, got %v", w)
	}

	old := baselineOf(Result{Name: "a"}) // pre-environment baseline
	w = EnvWarnings(old, []Result{same})
	if len(w) != 1 || !strings.Contains(w[0], "predates environment recording") {
		t.Fatalf("zero-GoMaxProcs baseline should warn, got %v", w)
	}

	cfg := same
	cfg.Workers = 4
	cfg.GoVersion = "go1.25.0"
	w = EnvWarnings(base, []Result{cfg})
	if len(w) != 2 {
		t.Fatalf("version + config mismatch should warn twice, got %v", w)
	}

	// Scenarios missing from the results are the Gate's problem.
	if w := EnvWarnings(base, nil); len(w) != 0 {
		t.Fatalf("missing scenario warned: %v", w)
	}
}

func TestSkewedIDsAllOnOneShard(t *testing.T) {
	if len(skewedIDs) != benchPages {
		t.Fatalf("got %d skewed ids, want %d", len(skewedIDs), benchPages)
	}
	seen := map[sfm.PageID]bool{}
	for _, id := range skewedIDs {
		if si := sfm.ShardIndexFor(id, benchShards); si != 0 {
			t.Fatalf("id %d routes to shard %d, want 0", id, si)
		}
		if seen[id] {
			t.Fatalf("id %d appears twice", id)
		}
		seen[id] = true
	}
}

func TestScenarioNamesStable(t *testing.T) {
	want := []string{
		"swap_serial_xdeflate",
		"swap_serial_lzfast",
		"swap_parallel_xdeflate",
		"swap_sharded_lzfast",
		"swap_skewed_lzfast",
		"nma_window_sweep",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
