package bench

import (
	"strings"
	"testing"
)

func baselineOf(rs ...Result) Baseline { return Baseline{Scenarios: rs} }

func TestGatePassesWithinThreshold(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000})
	lines, err := Gate(b, []Result{{Name: "a", PagesPerSec: 810}}, 0.20)
	if err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d report lines, want 1", len(lines))
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000})
	_, err := Gate(b, []Result{{Name: "a", PagesPerSec: 799}}, 0.20)
	if err == nil {
		t.Fatal("gate passed a 20.1% regression")
	}
	if !strings.Contains(err.Error(), "below the") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestGateFailsOnMissingScenario(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000}, Result{Name: "b", PagesPerSec: 500})
	if _, err := Gate(b, []Result{{Name: "a", PagesPerSec: 1000}}, 0.20); err == nil {
		t.Fatal("gate passed with scenario b missing from results")
	}
	if _, err := Gate(b, []Result{
		{Name: "a", PagesPerSec: 1000},
		{Name: "b", PagesPerSec: 500},
		{Name: "c", PagesPerSec: 1},
	}, 0.20); err == nil {
		t.Fatal("gate passed with scenario c missing from baseline")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := []Result{
		{Name: "x", PagesPerSec: 123.5, NsPerOp: 4, AllocsPerOp: 5, CompressionRatio: 2.5, PagesPerOp: 256},
		{Name: "y", PagesPerSec: 9, PagesPerOp: 256},
	}
	if err := WriteJSON(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d results, want %d", len(out), len(in))
	}
	seen := map[string]Result{}
	for _, r := range out {
		seen[r.Name] = r
	}
	for _, r := range in {
		if seen[r.Name] != r {
			t.Fatalf("round trip changed %s: %+v -> %+v", r.Name, r, seen[r.Name])
		}
	}
}

func TestScenarioNamesStable(t *testing.T) {
	want := []string{"swap_serial_xdeflate", "swap_serial_lzfast", "swap_parallel_xdeflate"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
