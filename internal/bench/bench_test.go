package bench

import (
	"strings"
	"testing"

	"xfm/internal/sfm"
)

func baselineOf(rs ...Result) Baseline { return Baseline{Scenarios: rs} }

func TestGatePassesWithinThreshold(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000})
	lines, err := Gate(b, []Result{{Name: "a", PagesPerSec: 810}}, 0.20)
	if err != nil {
		t.Fatalf("gate failed: %v", err)
	}
	if len(lines) != 1 {
		t.Fatalf("got %d report lines, want 1", len(lines))
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000})
	_, err := Gate(b, []Result{{Name: "a", PagesPerSec: 799}}, 0.20)
	if err == nil {
		t.Fatal("gate passed a 20.1% regression")
	}
	if !strings.Contains(err.Error(), "below the") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestGateFailsOnMissingScenario(t *testing.T) {
	b := baselineOf(Result{Name: "a", PagesPerSec: 1000}, Result{Name: "b", PagesPerSec: 500})
	if _, err := Gate(b, []Result{{Name: "a", PagesPerSec: 1000}}, 0.20); err == nil {
		t.Fatal("gate passed with scenario b missing from results")
	}
	if _, err := Gate(b, []Result{
		{Name: "a", PagesPerSec: 1000},
		{Name: "b", PagesPerSec: 500},
		{Name: "c", PagesPerSec: 1},
	}, 0.20); err == nil {
		t.Fatal("gate passed with scenario c missing from baseline")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := []Result{
		{Name: "x", PagesPerSec: 123.5, NsPerOp: 4, AllocsPerOp: 5, CompressionRatio: 2.5, PagesPerOp: 256,
			GoMaxProcs: 8, GoVersion: "go1.24.0", Workers: 4, Shards: 16},
		{Name: "y", PagesPerSec: 9, PagesPerOp: 256},
	}
	if err := WriteJSON(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d results, want %d", len(out), len(in))
	}
	seen := map[string]Result{}
	for _, r := range out {
		seen[r.Name] = r
	}
	for _, r := range in {
		if seen[r.Name] != r {
			t.Fatalf("round trip changed %s: %+v -> %+v", r.Name, r, seen[r.Name])
		}
	}
}

func TestEnvWarnings(t *testing.T) {
	base := baselineOf(Result{Name: "a", GoMaxProcs: 8, GoVersion: "go1.24.0", Workers: 0, Shards: 16})
	same := Result{Name: "a", GoMaxProcs: 8, GoVersion: "go1.24.0", Workers: 0, Shards: 16}
	if w := EnvWarnings(base, []Result{same}); len(w) != 0 {
		t.Fatalf("matching environments warned: %v", w)
	}

	mism := same
	mism.GoMaxProcs = 1
	w := EnvWarnings(base, []Result{mism})
	if len(w) != 1 || !strings.Contains(w[0], "GOMAXPROCS mismatch") {
		t.Fatalf("GOMAXPROCS 8 vs 1 should warn once, got %v", w)
	}

	old := baselineOf(Result{Name: "a"}) // pre-environment baseline
	w = EnvWarnings(old, []Result{same})
	if len(w) != 1 || !strings.Contains(w[0], "predates environment recording") {
		t.Fatalf("zero-GoMaxProcs baseline should warn, got %v", w)
	}

	cfg := same
	cfg.Workers = 4
	cfg.GoVersion = "go1.25.0"
	w = EnvWarnings(base, []Result{cfg})
	if len(w) != 2 {
		t.Fatalf("version + config mismatch should warn twice, got %v", w)
	}

	// Scenarios missing from the results are the Gate's problem.
	if w := EnvWarnings(base, nil); len(w) != 0 {
		t.Fatalf("missing scenario warned: %v", w)
	}
}

func TestSkewedIDsAllOnOneShard(t *testing.T) {
	if len(skewedIDs) != benchPages {
		t.Fatalf("got %d skewed ids, want %d", len(skewedIDs), benchPages)
	}
	seen := map[sfm.PageID]bool{}
	for _, id := range skewedIDs {
		if si := sfm.ShardIndexFor(id, benchShards); si != 0 {
			t.Fatalf("id %d routes to shard %d, want 0", id, si)
		}
		if seen[id] {
			t.Fatalf("id %d appears twice", id)
		}
		seen[id] = true
	}
}

func TestScenarioNamesStable(t *testing.T) {
	want := []string{
		"swap_serial_xdeflate",
		"swap_serial_lzfast",
		"swap_parallel_xdeflate",
		"swap_sharded_lzfast",
		"swap_skewed_lzfast",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
