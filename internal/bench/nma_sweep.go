package bench

// nma_window_sweep: the simulator-path scenario. The swap scenarios
// gate the codec/backend hot path; this one gates the NMA window
// engine — `Array.AdvanceTo` over mixed idle/busy traffic, the cost
// every experiment and the emulator harness pays per simulated
// interval. One op is a burst of page offloads landing near each
// rank's upcoming refresh groups (busy head) followed by an AdvanceTo
// across a mostly-idle horizon (idle tail the event-driven engine
// fast-forwards). PagesPerSec is offloaded pages per wall second
// through the full submit→advance→complete cycle.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"xfm/internal/dram"
	"xfm/internal/nma"
)

const (
	// sweepRanks matches the paper's 10-rank deployment scaled to a CI
	// box; 4 staggered ranks exercise per-rank skip bookkeeping.
	sweepRanks = 4
	// sweepPages per op, round-robined across ranks.
	sweepPages = 64
	// sweepWindows is the horizon each op advances: the burst drains in
	// the first few dozen windows, the rest is idle tail.
	sweepWindows = 2048
)

func runNMAWindowSweep(name string) (Result, error) {
	cfg := nma.DefaultConfig(dram.Device32Gb)
	trefi := cfg.Timings.TREFI
	groups := cfg.Device.RefreshGroups()
	var failure error
	var opNs []int64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		a := nma.NewArray(cfg, sweepRanks)
		// Ranks are staggered (rank k starts k·groups/ranks windows
		// ahead), so anchor the horizon to the last rank's clock: every
		// rank then advances at least sweepWindows per op.
		horizon := a.Rank(sweepRanks-1).Now() - trefi
		opNs = make([]int64, b.N)
		b.ResetTimer()
		prev := time.Now()
		for i := 0; i < b.N; i++ {
			// Busy head: sources a few groups ahead of each rank's
			// refresh counter, so conditional windows serve the burst
			// within the first dozens of tREFIs. Flexible destinations
			// keep write-backs conditional too.
			cur := a.CurrentGroups()
			for j := 0; j < sweepPages; j++ {
				rank := j % sweepRanks
				req := nma.Request{
					ID:       int64(i*sweepPages + j),
					Kind:     nma.OpKind(j % 2),
					SrcGroup: (cur[rank] + 1 + j/sweepRanks) % groups,
					DstGroup: -1,
					Arrive:   horizon,
				}
				if !a.Submit(rank, req) {
					failure = fmt.Errorf("sweep op %d: submit rejected (queue should never fill)", i)
					b.FailNow()
				}
			}
			// Idle tail: the engine should fast-forward almost all of it.
			horizon += sweepWindows * trefi
			a.AdvanceTo(horizon)
			now := time.Now()
			opNs[i] = now.Sub(prev).Nanoseconds()
			prev = now
		}
		b.StopTimer()
		st := a.Stats()
		if st.Completed != st.Submitted {
			failure = fmt.Errorf("sweep: %d of %d offloads completed", st.Completed, st.Submitted)
		}
	})
	if failure != nil {
		return Result{}, fmt.Errorf("bench %s: %w", name, failure)
	}
	if br.N == 0 {
		return Result{}, fmt.Errorf("bench %s: no iterations ran", name)
	}
	intervals := intervalRates(opNs, sweepPages)
	return Result{
		Name:        name,
		PagesPerSec: float64(br.N) * sweepPages / br.T.Seconds(),
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: float64(br.AllocsPerOp()),
		// No codec runs in this scenario; the pages are simulated
		// offloads, not compressed bytes.
		CompressionRatio:       0,
		PagesPerOp:             sweepPages,
		GoMaxProcs:             runtime.GOMAXPROCS(0),
		GoVersion:              runtime.Version(),
		Workers:                0,
		Shards:                 sweepRanks,
		IntervalPagesPerSec:    intervals,
		SteadyStatePagesPerSec: steadyState(intervals),
	}, nil
}
