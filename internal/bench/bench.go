// Package bench runs the swap-path benchmark scenarios outside `go
// test`, producing machine-readable results for the CI bench gate.
// The scenarios mirror the repository-level benchmarks in
// bench_test.go (same batch shape, same backends), measured with
// testing.Benchmark so ns/op and allocs/op mean the same thing in both
// harnesses.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"xfm/internal/compress"
	"xfm/internal/corpus"
	"xfm/internal/sfm"
)

// Result is one scenario's measurement, serialized as BENCH_<name>.json.
type Result struct {
	Name string `json:"name"`
	// PagesPerSec is the headline throughput: pages swapped out and
	// back in per second of wall time.
	PagesPerSec float64 `json:"pages_per_sec"`
	NsPerOp     float64 `json:"ns_per_op"`
	// AllocsPerOp counts heap allocations per op (one op = one
	// swap-out + swap-in round trip of the whole batch).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// CompressionRatio is original/compressed over the scenario's page
	// set under the scenario's codec.
	CompressionRatio float64 `json:"compression_ratio"`
	// PagesPerOp is the batch size (pages moved per op).
	PagesPerOp int `json:"pages_per_op"`
	// Measurement environment. pages/s depends heavily on the core
	// count, so the gate (cmd/benchgate) warns loudly when a baseline
	// recorded at one GOMAXPROCS judges a run at another. Zero/empty
	// values mean "recorded before these fields existed".
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	// Workers is the scenario's worker bound (0 = GOMAXPROCS) and
	// Shards its shard count (0 = unsharded) — the scenario's own
	// parallelism config, recorded so a baseline mismatch is visible.
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// IntervalPagesPerSec is the throughput trajectory: the measured
	// ops split into up to benchIntervals equal-op intervals, each
	// reported as pages/s. A flat series means the headline number is a
	// steady-state figure; a ramp means warmup or drift polluted it.
	IntervalPagesPerSec []float64 `json:"interval_pages_per_sec,omitempty"`
	// SteadyStatePagesPerSec is the mean of the last half of the
	// interval series — the throughput after warmup.
	SteadyStatePagesPerSec float64 `json:"steady_state_pages_per_sec,omitempty"`
}

// scenario is a named swap-path configuration. shards/workers record
// the backend's parallelism config; ids, when set, picks the page ids
// (the skewed scenario routes every page to one shard with it).
type scenario struct {
	name    string
	codec   func() compress.Codec
	mk      func() sfm.Backend
	shards  int
	workers int
	ids     func(i int) sfm.PageID
	// custom, when set, replaces the swap-path harness entirely (the
	// NMA simulator scenario measures window advance, not swaps).
	custom func(name string) (Result, error)
}

const benchPages = 256

// benchShards is the shard count of the sharded scenarios.
const benchShards = 16

func scenarios() []scenario {
	return []scenario{
		{
			name:  "swap_serial_xdeflate",
			codec: func() compress.Codec { return compress.NewXDeflate() },
			mk:    func() sfm.Backend { return sfm.NewCPUBackend(compress.NewXDeflate(), 0) },
		},
		{
			name:  "swap_serial_lzfast",
			codec: func() compress.Codec { return compress.NewLZFast() },
			mk:    func() sfm.Backend { return sfm.NewCPUBackend(compress.NewLZFast(), 0) },
		},
		{
			name:   "swap_parallel_xdeflate",
			codec:  func() compress.Codec { return compress.NewXDeflate() },
			mk:     func() sfm.Backend { return sfm.NewShardedBackend(compress.NewXDeflate(), 0, benchShards, 0) },
			shards: benchShards,
		},
		{
			name:   "swap_sharded_lzfast",
			codec:  func() compress.Codec { return compress.NewLZFast() },
			mk:     func() sfm.Backend { return sfm.NewShardedBackend(compress.NewLZFast(), 0, benchShards, 0) },
			shards: benchShards,
		},
		{
			// Worst-case routing: every page hashes to shard 0. A
			// shard-granular engine degrades to serial here; the
			// page-granular pipeline should stay within ~1.5× of the
			// uniform swap_sharded_lzfast scenario.
			name:   "swap_skewed_lzfast",
			codec:  func() compress.Codec { return compress.NewLZFast() },
			mk:     func() sfm.Backend { return sfm.NewShardedBackend(compress.NewLZFast(), 0, benchShards, 0) },
			shards: benchShards,
			ids:    skewedID,
		},
		{
			name:   "nma_window_sweep",
			custom: runNMAWindowSweep,
		},
	}
}

// skewedIDs caches the first benchPages ids that hash to shard 0.
var skewedIDs = func() []sfm.PageID {
	ids := make([]sfm.PageID, 0, benchPages)
	for id := int64(0); len(ids) < benchPages; id++ {
		if sfm.ShardIndexFor(sfm.PageID(id), benchShards) == 0 {
			ids = append(ids, sfm.PageID(id))
		}
	}
	return ids
}()

func skewedID(i int) sfm.PageID { return skewedIDs[i] }

// Names lists the available scenario names in run order.
func Names() []string {
	ss := scenarios()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.name
	}
	return out
}

// pages builds the benchmark working set: compressible key-value
// pages, the same shape bench_test.go uses. ids, when non-nil,
// overrides the default sequential page ids (page content still keys
// off the position, so every scenario compresses identical bytes).
func pages(ids func(i int) sfm.PageID) ([]sfm.PageOut, []sfm.PageIn) {
	outs := make([]sfm.PageOut, benchPages)
	ins := make([]sfm.PageIn, benchPages)
	for i := range outs {
		id := sfm.PageID(i)
		if ids != nil {
			id = ids(i)
		}
		outs[i] = sfm.PageOut{ID: id, Data: corpus.KeyValue(int64(i), sfm.PageSize)}
		ins[i] = sfm.PageIn{ID: outs[i].ID, Dst: make([]byte, sfm.PageSize)}
	}
	return outs, ins
}

// benchIntervals bounds the per-run throughput series length.
const benchIntervals = 16

// intervalRates folds per-op wall times into up to benchIntervals
// equal-op intervals of pages/s, oldest first.
func intervalRates(opNs []int64, pagesPerOp int) []float64 {
	n := len(opNs)
	if n == 0 {
		return nil
	}
	k := benchIntervals
	if n < k {
		k = n
	}
	out := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		var ns int64
		for _, v := range opNs[lo:hi] {
			ns += v
		}
		if ns <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(hi-lo)*float64(pagesPerOp)*1e9/float64(ns))
	}
	return out
}

// steadyState returns the mean of the last half of the interval series
// (the whole series when it has a single point).
func steadyState(intervals []float64) float64 {
	if len(intervals) == 0 {
		return 0
	}
	half := intervals[len(intervals)/2:]
	sum := 0.0
	for _, v := range half {
		sum += v
	}
	return sum / float64(len(half))
}

// run measures one scenario.
func run(sc scenario) (Result, error) {
	if sc.custom != nil {
		return sc.custom(sc.name)
	}
	outs, ins := pages(sc.ids)
	backend := sc.mk()
	var failure error
	var opNs []int64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// Preallocated before ResetTimer so the trajectory bookkeeping
		// stays out of ns/op and allocs/op. The two clock reads per op
		// are noise against a 256-page swap round trip.
		opNs = make([]int64, b.N)
		b.ResetTimer()
		prev := time.Now()
		for i := 0; i < b.N; i++ {
			if err := sfm.FirstError(backend.SwapOutBatch(0, outs)); err != nil {
				failure = err
				b.FailNow()
			}
			if err := sfm.FirstError(backend.SwapInBatch(0, ins, false)); err != nil {
				failure = err
				b.FailNow()
			}
			now := time.Now()
			opNs[i] = now.Sub(prev).Nanoseconds()
			prev = now
		}
	})
	if failure != nil {
		return Result{}, fmt.Errorf("bench %s: %w", sc.name, failure)
	}
	if br.N == 0 {
		return Result{}, fmt.Errorf("bench %s: no iterations ran", sc.name)
	}
	// Compression ratio over the same page set, measured directly (the
	// backend's stored-bytes stats drain back to zero after swap-in).
	c := sc.codec()
	s := compress.GetScratch()
	var raw, comp int64
	for _, p := range outs {
		raw += int64(len(p.Data))
		comp += int64(len(s.Compress(c, p.Data)))
	}
	s.Release()
	nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
	intervals := intervalRates(opNs, benchPages)
	return Result{
		Name:                   sc.name,
		PagesPerSec:            float64(br.N) * benchPages / br.T.Seconds(),
		NsPerOp:                nsPerOp,
		AllocsPerOp:            float64(br.AllocsPerOp()),
		CompressionRatio:       float64(raw) / float64(comp),
		PagesPerOp:             benchPages,
		GoMaxProcs:             runtime.GOMAXPROCS(0),
		GoVersion:              runtime.Version(),
		Workers:                sc.workers,
		Shards:                 sc.shards,
		IntervalPagesPerSec:    intervals,
		SteadyStatePagesPerSec: steadyState(intervals),
	}, nil
}

// SteadyStateWarnings flags results whose steady-state throughput
// diverges more than 10% from the whole-run mean: the headline pages/s
// is then polluted by warmup (allocator growth, cache filling) or
// drift (fragmentation), and the gate's comparison is noisier than it
// looks. Non-fatal — cmd/benchgate prints these as warnings, because
// short CI runs legitimately wobble.
func SteadyStateWarnings(results []Result) []string {
	const maxDivergence = 0.10
	var warns []string
	for _, r := range results {
		if len(r.IntervalPagesPerSec) < 4 || r.PagesPerSec <= 0 || r.SteadyStatePagesPerSec <= 0 {
			continue
		}
		div := math.Abs(r.SteadyStatePagesPerSec-r.PagesPerSec) / r.PagesPerSec
		if div > maxDivergence {
			warns = append(warns, fmt.Sprintf(
				"%s: steady-state %.0f pages/s diverges %.1f%% from the run mean %.0f — run not in steady state; treat the headline figure with suspicion",
				r.Name, r.SteadyStatePagesPerSec, div*100, r.PagesPerSec))
		}
	}
	return warns
}

// EnvWarnings compares the measurement environments of a baseline and
// a candidate run and returns one human-readable warning per
// mismatch. pages/s scales with the core count, so a baseline
// recorded at GOMAXPROCS=8 judging a GOMAXPROCS=1 candidate (or vice
// versa) makes the gate either vacuous or a guaranteed failure;
// cmd/benchgate prints these loudly rather than failing, because the
// fix (regenerate the baseline on the gating machine) is human work.
// Entries recorded before the environment fields existed (zero
// GoMaxProcs) produce a warning of their own.
func EnvWarnings(baseline Baseline, results []Result) []string {
	got := map[string]Result{}
	for _, r := range results {
		got[r.Name] = r
	}
	var warns []string
	for _, b := range baseline.Scenarios {
		r, ok := got[b.Name]
		if !ok {
			continue // Gate reports missing scenarios as failures
		}
		if b.GoMaxProcs == 0 {
			warns = append(warns, fmt.Sprintf(
				"%s: baseline predates environment recording (no gomaxprocs); regenerate bench_baseline.json", b.Name))
			continue
		}
		if b.GoMaxProcs != r.GoMaxProcs {
			warns = append(warns, fmt.Sprintf(
				"%s: GOMAXPROCS mismatch: baseline measured at %d, this run at %d — pages/s are not comparable; regenerate the baseline on this machine",
				b.Name, b.GoMaxProcs, r.GoMaxProcs))
		}
		if b.GoVersion != "" && b.GoVersion != r.GoVersion {
			warns = append(warns, fmt.Sprintf(
				"%s: Go version differs: baseline %s, this run %s",
				b.Name, b.GoVersion, r.GoVersion))
		}
		if b.Workers != r.Workers || b.Shards != r.Shards {
			warns = append(warns, fmt.Sprintf(
				"%s: scenario config differs: baseline workers=%d shards=%d, this run workers=%d shards=%d",
				b.Name, b.Workers, b.Shards, r.Workers, r.Shards))
		}
	}
	return warns
}

// RunAll measures every scenario.
func RunAll() ([]Result, error) {
	var out []Result
	for _, sc := range scenarios() {
		r, err := run(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// WriteJSON writes each result as BENCH_<name>.json under dir,
// creating it if needed.
func WriteJSON(dir string, results []Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, "BENCH_"+r.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSON loads every BENCH_*.json under dir.
func ReadJSON(dir string) ([]Result, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Baseline is the checked-in reference the CI gate compares against.
type Baseline struct {
	// Note documents where the numbers came from.
	Note      string   `json:"note"`
	Scenarios []Result `json:"scenarios"`
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Gate compares results against a baseline: any scenario whose
// pages/s falls more than maxRegress (a fraction, e.g. 0.20) below
// its baseline entry is a failure. Scenarios missing from either side
// are failures too — a silently dropped benchmark must not pass the
// gate. It returns a human-readable report line per scenario and an
// error when the gate fails.
func Gate(baseline Baseline, results []Result, maxRegress float64) ([]string, error) {
	base := map[string]Result{}
	for _, r := range baseline.Scenarios {
		base[r.Name] = r
	}
	got := map[string]Result{}
	for _, r := range results {
		got[r.Name] = r
	}
	var lines []string
	var failures []string
	for _, b := range baseline.Scenarios {
		r, ok := got[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from results", b.Name))
			continue
		}
		floor := b.PagesPerSec * (1 - maxRegress)
		delta := (r.PagesPerSec - b.PagesPerSec) / b.PagesPerSec * 100
		line := fmt.Sprintf("%-24s %10.0f pages/s (baseline %.0f, %+.1f%%, floor %.0f)",
			b.Name, r.PagesPerSec, b.PagesPerSec, delta, floor)
		lines = append(lines, line)
		if r.PagesPerSec < floor {
			failures = append(failures, fmt.Sprintf("%s: %.0f pages/s is below the %.0f floor (baseline %.0f, max regression %.0f%%)",
				b.Name, r.PagesPerSec, floor, b.PagesPerSec, maxRegress*100))
		}
	}
	for _, r := range results {
		if _, ok := base[r.Name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: not in baseline (regenerate bench_baseline.json)", r.Name))
		}
	}
	if len(failures) > 0 {
		return lines, fmt.Errorf("bench gate failed:\n  %s", joinLines(failures))
	}
	return lines, nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
