// Package fault is the deterministic fault-injection plane for the XFM
// emulator: a seeded Plan schedules NMA op stalls, spurious queue-full
// rejections, ECC bit flips on stored pages, corrupt compressed
// streams, and refresh-storm windows (the RogueRFM shape) at sim-time
// points, and an Injector answers "does this event fire here?" with a
// pure function of (plan seed, injection site, event key).
//
// Determinism is the load-bearing property. Every draw is a splitmix64
// hash of a per-site sub-seed (derived once from the plan seed via
// rand.New(rand.NewSource(seed))) and a caller-chosen event key — a
// submission sequence number, a page ID, a stream hash, a window
// index. Because the draw depends only on (site, key), concurrent
// callers can present keys in any order and still see the same
// per-event decisions, so a chaos run records bit-identical telemetry
// across repeats (CI diffs two same-seed runs with telemetryck -diff).
// The only order-sensitive state is the per-site budget counter, which
// must therefore only guard sites drawn on serial paths.
//
// All Injector methods are safe on a nil receiver and return "no
// fault", so production code threads an injector through
// unconditionally and pays one nil check when chaos is off.
package fault

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"xfm/internal/telemetry"
)

// Site identifies one injection point in the stack.
type Site int

const (
	// SiteNMAStall makes Driver.Submit report a per-op deadline
	// violation (ErrOpTimeout): the accelerator accepted the MMIO
	// doorbell but never completed the op in time.
	SiteNMAStall Site = iota
	// SiteQueueFull makes Driver.Submit report a spuriously full
	// Compress_Request_Queue even though the simulator has room.
	SiteQueueFull
	// SiteECCSingle flips one bit in a page image read back from far
	// memory, before side-band ECC verification (correctable).
	SiteECCSingle
	// SiteECCMulti flips two bits in one 64-bit word of a page image
	// read back from far memory (uncorrectable under SECDED).
	SiteECCMulti
	// SiteCorruptStream hands a corrupted compressed stream to the
	// decompressor (which must error, never panic or over-read) and
	// fails the first real decode of that stream transiently.
	SiteCorruptStream
	// SiteRefreshStorm marks whole refresh windows in which refresh
	// management owns the DRAM and the NMA is offered zero slots.
	SiteRefreshStorm
	// NumSites is the number of injection sites.
	NumSites
)

// String returns the spec-grammar name of the site.
func (s Site) String() string {
	switch s {
	case SiteNMAStall:
		return "nma-stall"
	case SiteQueueFull:
		return "queue-full"
	case SiteECCSingle:
		return "ecc-single"
	case SiteECCMulti:
		return "ecc-multi"
	case SiteCorruptStream:
		return "corrupt-stream"
	case SiteRefreshStorm:
		return "refresh-storm"
	}
	return "unknown"
}

// Injector evaluates a Plan. One injector serves one chaos run; its
// methods are concurrency-safe and deterministic in the sense described
// in the package comment.
type Injector struct {
	plan  Plan
	seeds [NumSites]uint64
	// drawn counts probability passes (budget accounting); injected
	// counts faults actually fired.
	drawn    [NumSites]atomic.Int64
	injected [NumSites]atomic.Int64
	counts   [NumSites]*telemetry.Counter

	mu   sync.Mutex
	once map[uint64]struct{} // keys already fired by OnceHit
}

// NewInjector builds an injector for the plan. Per-site sub-seeds are
// drawn here, once, from rand.New(rand.NewSource(plan.Seed)); after
// construction no injector state depends on call order except budgets.
func NewInjector(p Plan) *Injector {
	p.normalize()
	in := &Injector{plan: p, once: make(map[uint64]struct{})}
	rng := rand.New(rand.NewSource(p.Seed))
	for i := Site(0); i < NumSites; i++ {
		in.seeds[i] = rng.Uint64()
		in.counts[i] = mInjected.With(i.String())
	}
	return in
}

// Plan returns a copy of the normalized plan the injector evaluates.
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Hit reports whether the fault at site fires for the event identified
// by key, and records the injection when it does. The decision is a
// pure function of (plan, site, key) unless the site carries a budget,
// in which case draws are additionally capped in call order — budgeted
// sites must only be drawn on serial paths or determinism is lost.
func (in *Injector) Hit(site Site, key uint64) bool {
	if in == nil {
		return false
	}
	p := in.plan.Probs[site]
	if p <= 0 {
		return false
	}
	if p < 1 && unit(splitmix64(in.seeds[site]^key)) >= p {
		return false
	}
	if max := in.plan.Budgets[site]; max > 0 {
		if in.drawn[site].Add(1) > max {
			return false
		}
	} else {
		in.drawn[site].Add(1)
	}
	in.injected[site].Add(1)
	in.counts[site].Inc()
	return true
}

// OnceHit is Hit restricted to the first occurrence of each key: a key
// that fires never fires again. The set of firing keys is a pure
// function of (plan, site, key) — the first-occurrence filter only
// deduplicates, so concurrent callers racing on the same key still
// produce a deterministic total. Budgets are ignored (once-sites are
// self-limiting per key).
func (in *Injector) OnceHit(site Site, key uint64) bool {
	if in == nil {
		return false
	}
	p := in.plan.Probs[site]
	if p <= 0 {
		return false
	}
	if p < 1 && unit(splitmix64(in.seeds[site]^key)) >= p {
		return false
	}
	in.mu.Lock()
	if _, dup := in.once[key]; dup {
		in.mu.Unlock()
		return false
	}
	in.once[key] = struct{}{}
	in.mu.Unlock()
	in.injected[site].Add(1)
	in.counts[site].Inc()
	return true
}

// Injected returns how many faults have fired at site so far.
func (in *Injector) Injected(site Site) int64 {
	if in == nil {
		return 0
	}
	return in.injected[site].Load()
}

// StormWindow reports whether refresh window w falls inside a scheduled
// refresh storm. Storm windows are counted by the NMA sim (which owns
// the window clock), not here, so stepped and fast-forwarded runs
// account them identically.
func (in *Injector) StormWindow(w int64) bool {
	if in == nil {
		return false
	}
	return in.plan.Storm.active(w)
}

// StormWindowsIn counts storm windows in [lo, hi) arithmetically, so
// the NMA's idle fast-forward can account for skipped storms without
// stepping them (the FF ≡ stepped CI invariant).
func (in *Injector) StormWindowsIn(lo, hi int64) int64 {
	if in == nil {
		return 0
	}
	return in.plan.Storm.countIn(lo, hi)
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche over
// uint64, the standard cheap stateless hash for seeded draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a 64-bit hash onto [0, 1) with 53-bit resolution.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// HashBytes is FNV-1a over b: the event key for content-addressed
// sites (corrupt compressed streams), so the draw is independent of
// the order concurrent decompressors present streams in.
func HashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}
