package fault

import "xfm/internal/telemetry"

// Process-wide chaos metrics. One counter family, labeled by injection
// site; the per-site children are cached on each Injector at
// construction so the hot submit path never does a label lookup.
var mInjected = telemetry.NewCounterVec("fault_injected_total",
	"Faults fired by the chaos injection plane, by injection site.",
	"site")
