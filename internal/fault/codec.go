package fault

import (
	"fmt"

	"xfm/internal/compress"
)

// errInjectedCorrupt is the static error a chaos codec returns for a
// transiently failed decode; it unwraps to compress.ErrCorrupt so
// callers classify it like any real corruption.
var errInjectedCorrupt = fmt.Errorf("fault: injected corrupt stream: %w", compress.ErrCorrupt)

// chaosCodec decorates a Codec with SiteCorruptStream injection on the
// decompress path. Compression is passed through untouched — corrupting
// what gets *stored* would be unrecoverable data loss by construction,
// which is not a scenario the degradation machinery can or should
// survive. Instead, a hit on a stream does two things:
//
//  1. Robustness exercise: a copy of the stream with one bit flipped is
//     fed to the inner decoder into scratch space. The decoder must
//     return (anything, error) or plausible garbage — never panic or
//     read past the slice — mirroring the truncation/garbage fuzz
//     contract.
//  2. Transient failure: the real decode reports errInjectedCorrupt
//     exactly once per unique stream. The SFM store restores the entry
//     on a failed decompress (commitIn), so the caller retries and the
//     second decode — same stream, same key, already fired — succeeds.
//
// The event key is a content hash of the stream (HashBytes), so the
// fire set is independent of the order parallel decompressors run in.
type chaosCodec struct {
	inner compress.Codec
	inj   *Injector
}

// WrapCodec returns codec c with corrupt-stream injection from in; it
// returns c unchanged when in is nil.
func WrapCodec(c compress.Codec, in *Injector) compress.Codec {
	if in == nil {
		return c
	}
	return &chaosCodec{inner: c, inj: in}
}

func (c *chaosCodec) Name() string { return c.inner.Name() }

func (c *chaosCodec) Compress(dst, src []byte) []byte {
	return c.inner.Compress(dst, src)
}

func (c *chaosCodec) MaxCompressedLen(n int) int {
	return c.inner.MaxCompressedLen(n)
}

func (c *chaosCodec) Info() compress.CodecInfo { return c.inner.Info() }

func (c *chaosCodec) Decompress(dst, src []byte) ([]byte, error) {
	if len(src) > 0 && c.inj.OnceHit(SiteCorruptStream, HashBytes(src)) {
		bad := make([]byte, len(src))
		copy(bad, src)
		h := splitmix64(HashBytes(src))
		bad[h%uint64(len(bad))] ^= byte(1 << ((h >> 32) % 8))
		// The flip may land in literal bytes and decode "successfully"
		// to different output — that is fine; the contract under test
		// is only that the decoder never panics or over-reads. The
		// three-index slice pins cap to len so any over-read would
		// panic here rather than silently succeed.
		c.inner.Decompress(nil, bad[:len(bad):len(bad)]) //nolint:errcheck
		return nil, errInjectedCorrupt
	}
	return c.inner.Decompress(dst, src)
}
