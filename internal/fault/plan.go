package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// StormSpec schedules refresh storms on the window clock: starting at
// window Phase, every Period windows the first Len windows are storm
// windows (refresh management owns the DRAM, the NMA is offered zero
// slots). Period <= 0 or Len <= 0 disables storms; Len is clamped to
// Period.
type StormSpec struct {
	Period int64 `json:"period"`
	Len    int64 `json:"len"`
	Phase  int64 `json:"phase"`
}

// active reports whether window w is a storm window.
func (s StormSpec) active(w int64) bool {
	if s.Period <= 0 || s.Len <= 0 {
		return false
	}
	off := w - s.Phase
	if off < 0 {
		return false
	}
	return off%s.Period < s.Len
}

// countIn counts storm windows in [lo, hi) in closed form.
func (s StormSpec) countIn(lo, hi int64) int64 {
	if s.Period <= 0 || s.Len <= 0 || hi <= lo {
		return 0
	}
	// upTo counts storm windows in the first n windows after Phase.
	upTo := func(n int64) int64 {
		if n <= 0 {
			return 0
		}
		full := n / s.Period
		extra := n % s.Period
		if extra > s.Len {
			extra = s.Len
		}
		return full*s.Len + extra
	}
	return upTo(hi-s.Phase) - upTo(lo-s.Phase)
}

// Plan is one chaos schedule: a seed, a firing probability and optional
// budget (max fires, 0 = unlimited) per injection site, and a refresh
// storm schedule. Plans are parsed from the -chaos CLI spec (ParseSpec)
// or a JSON file, and evaluated by an Injector.
type Plan struct {
	Seed    int64
	Probs   [NumSites]float64
	Budgets [NumSites]int64
	Storm   StormSpec
}

// normalize clamps the plan into its valid domain.
func (p *Plan) normalize() {
	for i := range p.Probs {
		if p.Probs[i] < 0 {
			p.Probs[i] = 0
		}
		if p.Probs[i] > 1 {
			p.Probs[i] = 1
		}
		if p.Budgets[i] < 0 {
			p.Budgets[i] = 0
		}
	}
	if p.Storm.Period > 0 && p.Storm.Len > p.Storm.Period {
		p.Storm.Len = p.Storm.Period
	}
	if p.Storm.Phase < 0 {
		p.Storm.Phase = 0
	}
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	for i := range p.Probs {
		if p.Probs[i] > 0 {
			return true
		}
	}
	return p.Storm.Period > 0 && p.Storm.Len > 0
}

// planJSON is the file form of a Plan: sites are keyed by their spec
// names so the file reads like the CLI grammar.
//
//	{"seed": 1,
//	 "sites": {"nma-stall": {"p": 0.15, "max": 0},
//	           "ecc-multi": {"p": 1, "max": 8}},
//	 "storm": {"period": 2048, "len": 256, "phase": 0}}
type planJSON struct {
	Seed  int64               `json:"seed"`
	Sites map[string]siteJSON `json:"sites"`
	Storm StormSpec           `json:"storm"`
}

type siteJSON struct {
	P   float64 `json:"p"`
	Max int64   `json:"max"`
}

// siteByName maps a spec-grammar name back to its Site.
func siteByName(name string) (Site, bool) {
	for i := Site(0); i < NumSites; i++ {
		if i.String() == name {
			return i, true
		}
	}
	return 0, false
}

// ParseSpec parses a -chaos specification into a Plan seeded with seed.
//
// Grammar (comma-separated fields, evaluated left to right):
//
//	preset            "ci-default" (the CI gate's mixed plan) or
//	                  "off"/"none" (empty plan); a preset may only be
//	                  the first field and later fields override it
//	site=p            firing probability in [0,1] for an injection
//	                  site: nma-stall, queue-full, ecc-single,
//	                  ecc-multi, corrupt-stream
//	site=p:max        same, capped at max fires (serial sites only)
//	storm=period:len  refresh storms: every period windows, len storm
//	                  windows; an optional third :phase field delays
//	                  the first storm
//	@file.json        load the whole plan from a JSON file (see
//	                  planJSON); must be the only field. A nonzero
//	                  "seed" in the file overrides the CLI seed.
//
// Example: -chaos "nma-stall=0.2,ecc-multi=1:8,storm=4096:512"
func ParseSpec(spec string, seed int64) (Plan, error) {
	var p Plan
	p.Seed = seed
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, fmt.Errorf("fault: empty chaos spec")
	}
	if strings.HasPrefix(spec, "@") {
		return parseFile(spec[1:], seed)
	}
	fields := strings.Split(spec, ",")
	for i, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if !strings.Contains(f, "=") {
			if i != 0 {
				return p, fmt.Errorf("fault: preset %q must be the first field of the chaos spec", f)
			}
			pre, ok := preset(f)
			if !ok {
				return p, fmt.Errorf("fault: unknown chaos preset %q", f)
			}
			pre.Seed = seed
			p = pre
			continue
		}
		k, v, _ := strings.Cut(f, "=")
		if err := p.applyField(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
			return p, err
		}
	}
	p.normalize()
	return p, nil
}

// applyField sets one k=v field of the spec grammar on the plan.
func (p *Plan) applyField(k, v string) error {
	if k == "storm" {
		parts := strings.Split(v, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return fmt.Errorf("fault: storm spec %q wants period:len[:phase]", v)
		}
		nums := make([]int64, len(parts))
		for i, s := range parts {
			n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return fmt.Errorf("fault: bad storm field %q: %v", s, err)
			}
			nums[i] = n
		}
		p.Storm = StormSpec{Period: nums[0], Len: nums[1]}
		if len(nums) == 3 {
			p.Storm.Phase = nums[2]
		}
		return nil
	}
	site, ok := siteByName(k)
	if !ok || site == SiteRefreshStorm {
		return fmt.Errorf("fault: unknown injection site %q", k)
	}
	prob, budget, _ := strings.Cut(v, ":")
	f, err := strconv.ParseFloat(prob, 64)
	if err != nil {
		return fmt.Errorf("fault: bad probability %q for site %s: %v", prob, k, err)
	}
	if f < 0 || f > 1 {
		return fmt.Errorf("fault: probability %g for site %s outside [0,1]", f, k)
	}
	p.Probs[site] = f
	if budget != "" {
		n, err := strconv.ParseInt(budget, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("fault: bad budget %q for site %s", budget, k)
		}
		p.Budgets[site] = n
	}
	return nil
}

// parseFile loads a Plan from a JSON file (the planJSON schema).
func parseFile(path string, seed int64) (Plan, error) {
	var p Plan
	raw, err := os.ReadFile(path)
	if err != nil {
		return p, fmt.Errorf("fault: reading chaos plan: %v", err)
	}
	var pj planJSON
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pj); err != nil {
		return p, fmt.Errorf("fault: parsing chaos plan %s: %v", path, err)
	}
	p.Seed = seed
	if pj.Seed != 0 {
		p.Seed = pj.Seed
	}
	p.Storm = pj.Storm
	// Iterate sites by index (not by ranging the map) so this package
	// stays clean under xfmlint's sim-determinism rule.
	for i := Site(0); i < NumSites; i++ {
		s, ok := pj.Sites[i.String()]
		if !ok {
			continue
		}
		if i == SiteRefreshStorm {
			return p, fmt.Errorf("fault: refresh-storm is scheduled via \"storm\", not a probability site")
		}
		if s.P < 0 || s.P > 1 {
			return p, fmt.Errorf("fault: probability %g for site %s outside [0,1]", s.P, i)
		}
		p.Probs[i] = s.P
		if s.Max > 0 {
			p.Budgets[i] = s.Max
		}
	}
	for name := range pj.Sites { //xfm:ignore sim-determinism validation only rejects unknown keys; order does not matter
		if _, ok := siteByName(name); !ok {
			return p, fmt.Errorf("fault: unknown injection site %q in %s", name, path)
		}
	}
	p.normalize()
	return p, nil
}

// preset returns a named canned plan.
func preset(name string) (Plan, bool) {
	var p Plan
	switch name {
	case "off", "none":
		return p, true
	case "ci-default":
		// The CI chaos gate: every site fires and storms recur a
		// handful of times per retention period. The stall site runs a
		// budgeted outage — every submission times out until the budget
		// drains — so the gate deterministically trips the circuit
		// breaker and then closes it again via canary probes, for any
		// seed.
		p.Probs[SiteNMAStall] = 1
		p.Budgets[SiteNMAStall] = 40
		p.Probs[SiteQueueFull] = 0.10
		p.Probs[SiteECCSingle] = 0.04
		p.Probs[SiteECCMulti] = 0.02
		p.Probs[SiteCorruptStream] = 0.03
		p.Storm = StormSpec{Period: 2048, Len: 256}
		return p, true
	}
	return p, false
}
