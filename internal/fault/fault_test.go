package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xfm/internal/compress"
)

func TestParseSpecFields(t *testing.T) {
	p, err := ParseSpec("nma-stall=0.2,ecc-multi=1:8,storm=4096:512:64", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed = %d, want 7", p.Seed)
	}
	if p.Probs[SiteNMAStall] != 0.2 || p.Probs[SiteECCMulti] != 1 {
		t.Fatalf("probs = %v", p.Probs)
	}
	if p.Budgets[SiteECCMulti] != 8 || p.Budgets[SiteNMAStall] != 0 {
		t.Fatalf("budgets = %v", p.Budgets)
	}
	if p.Storm != (StormSpec{Period: 4096, Len: 512, Phase: 64}) {
		t.Fatalf("storm = %+v", p.Storm)
	}
	if !p.Enabled() {
		t.Fatal("plan should be enabled")
	}
}

func TestParseSpecPresetAndOverride(t *testing.T) {
	base, err := ParseSpec("ci-default", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Enabled() || base.Probs[SiteCorruptStream] <= 0 || base.Storm.Period <= 0 {
		t.Fatalf("ci-default not fully populated: %+v", base)
	}
	over, err := ParseSpec("ci-default,corrupt-stream=0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if over.Probs[SiteCorruptStream] != 0 {
		t.Fatal("override did not apply")
	}
	if over.Probs[SiteNMAStall] != base.Probs[SiteNMAStall] {
		t.Fatal("override clobbered unrelated site")
	}
	off, err := ParseSpec("off", 1)
	if err != nil || off.Enabled() {
		t.Fatalf("off preset: %+v, %v", off, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus-preset", "nma-stall=1.5", "nma-stall=x",
		"unknown-site=0.5", "storm=12", "storm=a:b",
		"refresh-storm=0.5", "nma-stall=0.5,ci-default",
		"nma-stall=0.5:-2",
	} {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestParseSpecJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	body := `{"seed": 42,
		"sites": {"nma-stall": {"p": 0.25, "max": 3}, "ecc-single": {"p": 1}},
		"storm": {"period": 1024, "len": 128}}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ParseSpec("@"+path, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("file seed should win: got %d", p.Seed)
	}
	if p.Probs[SiteNMAStall] != 0.25 || p.Budgets[SiteNMAStall] != 3 || p.Probs[SiteECCSingle] != 1 {
		t.Fatalf("sites mis-parsed: %+v", p)
	}
	if p.Storm.Period != 1024 || p.Storm.Len != 128 {
		t.Fatalf("storm mis-parsed: %+v", p.Storm)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"sites": {"nope": {"p": 1}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec("@"+bad, 1); err == nil {
		t.Fatal("unknown site in JSON plan accepted")
	}
}

func TestHitDeterministicAndOrderIndependent(t *testing.T) {
	plan, err := ParseSpec("nma-stall=0.3", 99)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(plan), NewInjector(plan)
	const n = 4096
	fireA := make([]bool, n)
	for k := 0; k < n; k++ {
		fireA[k] = a.Hit(SiteNMAStall, uint64(k))
	}
	// Same plan, keys drawn in reverse order: identical per-key result.
	for k := n - 1; k >= 0; k-- {
		if got := b.Hit(SiteNMAStall, uint64(k)); got != fireA[k] {
			t.Fatalf("key %d: order-dependent decision", k)
		}
	}
	fired := 0
	for _, f := range fireA {
		if f {
			fired++
		}
	}
	if fired < n/5 || fired > n/2 {
		t.Fatalf("p=0.3 fired %d/%d times", fired, n)
	}
	if a.Injected(SiteNMAStall) != int64(fired) {
		t.Fatalf("Injected = %d, want %d", a.Injected(SiteNMAStall), fired)
	}
	// A different seed produces a different fire set.
	plan2 := plan
	plan2.Seed = 100
	c := NewInjector(plan2)
	same := 0
	for k := 0; k < n; k++ {
		if c.Hit(SiteNMAStall, uint64(k)) == fireA[k] {
			same++
		}
	}
	if same == n {
		t.Fatal("seed change did not move the fire set")
	}
}

func TestHitBudget(t *testing.T) {
	plan, err := ParseSpec("ecc-multi=1:5", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	fired := 0
	for k := 0; k < 100; k++ {
		if in.Hit(SiteECCMulti, uint64(k)) {
			fired++
		}
	}
	if fired != 5 {
		t.Fatalf("budget 5, fired %d", fired)
	}
}

func TestOnceHitFiresOncePerKey(t *testing.T) {
	plan, err := ParseSpec("corrupt-stream=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	if !in.OnceHit(SiteCorruptStream, 7) {
		t.Fatal("first occurrence should fire at p=1")
	}
	for i := 0; i < 3; i++ {
		if in.OnceHit(SiteCorruptStream, 7) {
			t.Fatal("repeat occurrence fired")
		}
	}
	if !in.OnceHit(SiteCorruptStream, 8) {
		t.Fatal("distinct key should fire")
	}
	if got := in.Injected(SiteCorruptStream); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Hit(SiteNMAStall, 1) || in.OnceHit(SiteCorruptStream, 1) || in.StormWindow(0) {
		t.Fatal("nil injector fired")
	}
	if in.StormWindowsIn(0, 100) != 0 || in.Injected(SiteNMAStall) != 0 {
		t.Fatal("nil injector counted")
	}
	if in.Plan().Enabled() {
		t.Fatal("nil injector plan enabled")
	}
}

func TestStormCountMatchesActive(t *testing.T) {
	specs := []StormSpec{
		{Period: 8, Len: 3},
		{Period: 8, Len: 3, Phase: 5},
		{Period: 7, Len: 7},
		{Period: 4, Len: 9}, // Len > Period clamps to always-on
		{Period: 0, Len: 3},
		{Period: 8, Len: 0},
	}
	ranges := [][2]int64{{0, 1}, {0, 64}, {3, 40}, {17, 17}, {5, 6}, {63, 64}, {0, 3}}
	for _, spec := range specs {
		p := Plan{Seed: 1, Storm: spec}
		in := NewInjector(p)
		norm := in.Plan().Storm
		for _, r := range ranges {
			want := int64(0)
			for w := r[0]; w < r[1]; w++ {
				if norm.active(w) {
					want++
				}
			}
			if got := in.StormWindowsIn(r[0], r[1]); got != want {
				t.Fatalf("storm %+v range %v: countIn = %d, want %d", spec, r, got, want)
			}
		}
	}
}

func TestWrapCodecTransientCorrupt(t *testing.T) {
	plan, err := ParseSpec("corrupt-stream=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(plan)
	inner := compress.NewLZFast()
	c := WrapCodec(inner, in)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	stream := c.Compress(nil, src)
	if _, err := c.Decompress(nil, stream); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("first decode: err = %v, want injected ErrCorrupt", err)
	}
	out, err := c.Decompress(nil, stream)
	if err != nil {
		t.Fatalf("second decode of the same stream should pass: %v", err)
	}
	if string(out) != string(src) {
		t.Fatal("second decode corrupted data")
	}
	if in.Injected(SiteCorruptStream) != 1 {
		t.Fatalf("Injected = %d, want 1", in.Injected(SiteCorruptStream))
	}
	// Nil injector: wrapper elides itself.
	if WrapCodec(inner, nil) != compress.Codec(inner) {
		t.Fatal("WrapCodec(nil) should return the inner codec")
	}
}
