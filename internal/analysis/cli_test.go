package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIGateFailsOnViolations is the CI-gate proof: xfmlint run over
// the deliberately broken hotfix fixture must exit non-zero and print
// the violations, exactly as the workflow step would fail the build.
func TestCLIGateFailsOnViolations(t *testing.T) {
	var stdout, stderr strings.Builder
	code := CLIMain([]string{"-C", filepath.Join("testdata", "src", "hotfix")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "hotpath-alloc") {
		t.Errorf("stdout should list hotpath-alloc findings:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "diagnostics") {
		t.Errorf("stderr should print the summary line:\n%s", stderr.String())
	}
}

// TestCLIGatePassesOnSuppressedTree: a module whose every violation
// carries a reasoned //xfm:ignore exits zero.
func TestCLIGatePassesOnSuppressedTree(t *testing.T) {
	var stdout, stderr strings.Builder
	code := CLIMain([]string{"-C", filepath.Join("testdata", "src", "suppressfix")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.String() != "" {
		t.Errorf("clean run should print no diagnostics:\n%s", stdout.String())
	}
}

// TestCLIJSON checks the -json artifact shape: always an array, every
// entry carries file/line/rule/message, suppressed entries are present
// as the audit trail.
func TestCLIJSON(t *testing.T) {
	var stdout, stderr strings.Builder
	code := CLIMain([]string{"-json", "-C", filepath.Join("testdata", "src", "hotfix")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(stdout.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON array should carry the seeded violations")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Rule == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestCLIBadFlag: usage errors exit 2, distinct from lint findings.
func TestCLIBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := CLIMain([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestCLIShowSuppressed: -show-suppressed prints the audit trail in
// text mode without affecting the exit code.
func TestCLIShowSuppressed(t *testing.T) {
	var stdout, stderr strings.Builder
	code := CLIMain([]string{"-show-suppressed", "-C", filepath.Join("testdata", "src", "suppressfix")},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "atomic-field") {
		t.Errorf("suppressed findings should appear with -show-suppressed:\n%s", stdout.String())
	}
}
