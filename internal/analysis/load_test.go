package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadImportCycle: the memoizing loader must detect a module-local
// import cycle and fail the load with a named culprit instead of
// recursing forever.
func TestLoadImportCycle(t *testing.T) {
	_, err := sharedCtx().Load(filepath.Join("testdata", "src", "cyclefix"))
	if err == nil {
		t.Fatal("loading a cyclic module should fail")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error should name the import cycle, got: %v", err)
	}
	if !strings.Contains(err.Error(), "cyclefix/") {
		t.Errorf("error should name a package on the cycle, got: %v", err)
	}
}

// TestContextSharedAcrossLoads: one Context serves several Loads with
// a single FileSet and one type-checked standard library, which is
// what keeps the fixture suite fast and positions comparable.
func TestContextSharedAcrossLoads(t *testing.T) {
	ctx := sharedCtx()
	p1, err := ctx.Load(filepath.Join("testdata", "src", "hotfix"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ctx.Load(filepath.Join("testdata", "src", "interfix"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fset != p2.Fset || p1.Fset != ctx.Fset {
		t.Error("loads from one Context must share its FileSet")
	}
	if p1.ModPath != "hotfix" || p2.ModPath != "interfix" {
		t.Errorf("module identities must stay per-load: %q, %q", p1.ModPath, p2.ModPath)
	}
}

// TestLoadSinglePackagePattern: a non-recursive pattern loads exactly
// the named package directory.
func TestLoadSinglePackagePattern(t *testing.T) {
	prog, err := sharedCtx().Load(filepath.Join("testdata", "src", "lockfix"), "./core")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) != 1 || prog.Packages[0].Path != "lockfix/core" {
		t.Errorf("want exactly lockfix/core, got %v", prog.Packages)
	}
}
