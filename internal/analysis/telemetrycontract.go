package analysis

import (
	"bufio"
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// telemetryContractRule keeps the metric namespace from rotting. The
// telemetry pipeline has three copies of every metric name — the
// registration (`telemetry.NewCounter("xfm_offloads_total", ...)`),
// the required lists hardcoded in cmd/telemetryck that gate CI, and
// the DESIGN §7 metric catalogue that documents the namespace — and
// nothing but convention kept them aligned. This rule makes the
// alignment a build gate:
//
//   - every registration's name argument must be a compile-time string
//     constant (a computed name cannot be cross-checked statically);
//   - names must match ^(xfm|sfm|nma|dram|memctrl|parallel|telemetry|
//     bench)_[a-z0-9_]+$ — the layer-prefixed lower_snake convention;
//   - a name may be registered once, module-wide;
//   - every metric in telemetryck's defaultRequiredMetrics /
//     defaultRequiredSeries lists (extracted from its AST, so the rule
//     reads the same source CI runs) must have a registration — a
//     ghost requirement would make the CI gate unsatisfiable;
//   - the DESIGN §7 catalogue and the registrations must match in both
//     directions: an unlisted registration is documentation rot, a
//     listed-but-unregistered name is a stale catalogue entry.
//
// The telemetryck and DESIGN.md cross-checks quietly stand down when
// the respective source is not part of the load (e.g. linting a single
// package), so the rule degrades to the local checks instead of
// failing on partial views.
type telemetryContractRule struct{}

// NewTelemetryContractRule returns the telemetry-contract rule.
func NewTelemetryContractRule() Rule { return telemetryContractRule{} }

func (telemetryContractRule) Name() string { return RuleTelemetryContract }

// metricNameRE is the module's metric naming convention: a known layer
// prefix, then lower_snake.
var metricNameRE = regexp.MustCompile(`^(xfm|sfm|nma|dram|memctrl|parallel|telemetry|bench|fault)_[a-z0-9_]+$`)

// registrationFuncs are the internal/telemetry constructors whose
// first argument is a metric name being registered.
var registrationFuncs = map[string]bool{
	"NewCounter": true, "NewFloatCounter": true, "NewGauge": true,
	"NewGaugeFunc": true, "NewHistogram": true, "NewCounterVec": true,
	"NewGaugeVec": true, "NewHistogramVec": true,
}

// histSeriesSuffixes are the per-histogram derived series the sampler
// emits; required-series names are folded onto the base metric before
// the registration lookup.
var histSeriesSuffixes = []string{"_count", "_sum", "_p50", "_p95", "_p99"}

type regSite struct {
	name string
	pos  token.Pos
}

func (telemetryContractRule) Check(p *Program) []Diagnostic {
	var out []Diagnostic
	registered := map[string]regSite{}
	var sites []regSite

	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || !registrationFuncs[fn.Name()] || fn.Pkg() == nil ||
					!strings.HasSuffix(fn.Pkg().Path(), "internal/telemetry") ||
					len(call.Args) == 0 {
					return true
				}
				tv := pkg.Info.Types[call.Args[0]]
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					out = append(out, p.diag(call.Args[0].Pos(), RuleTelemetryContract,
						"metric name passed to telemetry.%s is not a compile-time string constant — computed names cannot be cross-checked against telemetryck or the DESIGN catalogue", fn.Name()))
					return true
				}
				name := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(name) {
					out = append(out, p.diag(call.Args[0].Pos(), RuleTelemetryContract,
						"metric name %q violates the naming convention %s", name, metricNameRE))
				}
				if first, dup := registered[name]; dup {
					d := p.diag(call.Args[0].Pos(), RuleTelemetryContract,
						"metric %q is already registered at %s — names must be unique module-wide", name, p.posString(first.pos))
					out = append(out, d)
				} else {
					registered[name] = regSite{name: name, pos: call.Args[0].Pos()}
					sites = append(sites, regSite{name: name, pos: call.Args[0].Pos()})
				}
				return true
			})
		}
	}

	out = append(out, checkRequiredLists(p, registered)...)
	out = append(out, checkCatalogue(p, registered, sites)...)
	return out
}

// checkRequiredLists extracts the defaultRequiredMetrics and
// defaultRequiredSeries string slices from cmd/telemetryck's AST — the
// very source CI runs — and verifies every required name has a
// registration in the module.
func checkRequiredLists(p *Program, registered map[string]regSite) []Diagnostic {
	var tck *Package
	for _, pkg := range p.Packages {
		if strings.HasSuffix(pkg.Path, "cmd/telemetryck") {
			tck = pkg
			break
		}
	}
	if tck == nil {
		return nil // partial load: nothing to cross-check against
	}
	var out []Diagnostic
	check := func(listName string, fold bool) {
		for _, elt := range stringListVar(tck, listName) {
			name := elt.name
			if fold {
				for _, suf := range histSeriesSuffixes {
					if base := strings.TrimSuffix(name, suf); base != name {
						name = base
						break
					}
				}
			}
			if _, ok := registered[name]; !ok {
				out = append(out, p.diag(elt.pos, RuleTelemetryContract,
					"%s requires %q but no registration for it exists in the module (ghost requirement)", listName, elt.name))
			}
		}
	}
	check("defaultRequiredMetrics", false)
	check("defaultRequiredSeries", true)
	return out
}

// stringListVar returns the string elements (with positions) of a
// package-level `var name = []string{...}` declaration.
func stringListVar(pkg *Package, name string) []regSite {
	var out []regSite
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					if ident.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						tv := pkg.Info.Types[elt]
						if tv.Value != nil && tv.Value.Kind() == constant.String {
							out = append(out, regSite{name: constant.StringVal(tv.Value), pos: elt.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

// catalogueEntry is one backticked metric name in the DESIGN §7 table.
type catalogueEntry struct {
	name string
	line int
}

// checkCatalogue parses the "**Metric catalogue.**" table out of the
// module's DESIGN.md and cross-checks it against the registrations in
// both directions.
func checkCatalogue(p *Program, registered map[string]regSite, sites []regSite) []Diagnostic {
	entries, ok := parseCatalogue(filepath.Join(p.ModDir, "DESIGN.md"))
	if !ok {
		return nil // no DESIGN.md or no catalogue section: stand down
	}
	var out []Diagnostic
	listed := map[string]bool{}
	for _, e := range entries {
		listed[e.name] = true
	}
	for _, s := range sites {
		if !listed[s.name] {
			out = append(out, p.diag(s.pos, RuleTelemetryContract,
				"metric %q is registered but missing from the DESIGN §7 metric catalogue", s.name))
		}
	}
	var stale []catalogueEntry
	for _, e := range entries {
		if _, ok := registered[e.name]; !ok {
			stale = append(stale, e)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].line != stale[j].line {
			return stale[i].line < stale[j].line
		}
		return stale[i].name < stale[j].name
	})
	for _, e := range stale {
		out = append(out, Diagnostic{
			File: "DESIGN.md", Line: e.line, Col: 1, Rule: RuleTelemetryContract,
			Message: "catalogue lists `" + e.name + "` but the module has no registration for it (stale entry)",
		})
	}
	return out
}

// catalogueToken matches one backticked name inside the table; the
// optional {label} suffix documents a vec's label key and is stripped.
var catalogueToken = regexp.MustCompile("`([a-z][a-z0-9_]*)(\\{[a-z_]+\\})?`")

// parseCatalogue scans DESIGN.md for the table that follows the
// "**Metric catalogue.**" marker and returns every backticked metric
// name with its line number. ok is false when the file or marker is
// absent.
func parseCatalogue(path string) (entries []catalogueEntry, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo, inSection, inTable := 0, false, false
	seen := map[string]bool{}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !inSection {
			if strings.HasPrefix(line, "**Metric catalogue.**") {
				inSection = true
			}
			continue
		}
		isRow := strings.HasPrefix(line, "|")
		if inTable && !isRow {
			break // table ended
		}
		if !isRow {
			continue // blank lines between marker and table
		}
		inTable = true
		for _, m := range catalogueToken.FindAllStringSubmatch(line, -1) {
			name := m[1]
			if !seen[name] {
				seen[name] = true
				entries = append(entries, catalogueEntry{name: name, line: lineNo})
			}
		}
	}
	if !inSection {
		return nil, false
	}
	return entries, true
}
