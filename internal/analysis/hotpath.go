package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathAllocRule enforces the PR 3 zero-allocs-per-page bar on
// functions annotated //xfm:hotpath. It flags the construct classes
// that historically reintroduced allocations into the swap path:
//
//   - any call into package fmt (formatting always allocates)
//   - map, chan, and closure creation (make, literals, func literals,
//     go statements)
//   - append to a slice declared fresh in the same function with no
//     reserved capacity (the growth path allocates per page)
//   - implicit interface boxing of a non-pointer concrete value
//     (the conversion heap-allocates the value's copy)
//
// The check is shallow by design: it looks at the annotated function's
// own body, not its callees. The allocs/op regression tests in
// compress/scratch_test.go are the dynamic net underneath; this rule
// exists so the diff review catches the regression before a benchmark
// has to.
type hotpathAllocRule struct{}

// NewHotpathAllocRule returns the hotpath-alloc rule.
func NewHotpathAllocRule() Rule { return hotpathAllocRule{} }

func (hotpathAllocRule) Name() string { return RuleHotpathAlloc }

func (hotpathAllocRule) Check(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !p.hotpath[fd] {
					continue
				}
				out = append(out, checkHotpathFunc(p, pkg, fd)...)
			}
		}
	}
	return out
}

func checkHotpathFunc(p *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, p.diag(pos, RuleHotpathAlloc, format, args...))
	}
	fresh := freshSlices(pkg, fd)
	sig, _ := pkg.Info.Defs[fd.Name].(*types.Func)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotpathCall(pkg, fd, n, fresh, report)
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates in hot path %s", funcName(fd))
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure allocates in hot path %s", funcName(fd))
			return false // do not descend: the closure body runs elsewhere
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine in hot path %s", funcName(fd))
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if lt, ok := pkg.Info.Types[lhs]; ok {
					checkBoxing(pkg, n.Rhs[i], lt.Type, "assignment", fd, report)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil {
				results := sig.Type().(*types.Signature).Results()
				if results.Len() == len(n.Results) {
					for i, r := range n.Results {
						checkBoxing(pkg, r, results.At(i).Type(), "return", fd, report)
					}
				}
			}
		}
		return true
	})
	return out
}

func checkHotpathCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr,
	fresh map[*types.Var]bool, report func(token.Pos, string, ...any)) {
	// Calls into package fmt.
	if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s allocates in hot path %s", fn.Name(), funcName(fd))
		return
	}
	// Builtins: make(map/chan), append to fresh slices.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if tv, ok := pkg.Info.Types[call.Args[0]]; ok {
						switch tv.Type.Underlying().(type) {
						case *types.Map:
							report(call.Pos(), "make(map) allocates in hot path %s", funcName(fd))
						case *types.Chan:
							report(call.Pos(), "make(chan) allocates in hot path %s", funcName(fd))
						}
					}
				}
			case "append":
				if len(call.Args) > 0 {
					if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if v, ok := pkg.Info.Uses[dst].(*types.Var); ok && fresh[v] {
							report(call.Pos(),
								"append to %s grows a fresh slice with no reserved capacity in hot path %s",
								dst.Name, funcName(fd))
						}
					}
				}
			}
			return
		}
	}
	// Interface boxing of call arguments.
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pkg, arg, pt, "argument", fd, report)
	}
}

// checkBoxing reports expr when assigning it to target implicitly
// boxes a non-pointer concrete value into an interface.
func checkBoxing(pkg *Package, expr ast.Expr, target types.Type, ctx string,
	fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value != nil { // constants are boxed from static data
		return
	}
	t := tv.Type
	if t == nil {
		return
	}
	if b, ok := t.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Info()&types.IsUntyped != 0) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface carries the existing box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: the interface data word holds it directly
	}
	report(expr.Pos(), "%s boxes %s into %s (heap-allocates) in hot path %s",
		ctx, types.TypeString(t, types.RelativeTo(pkg.Types)),
		types.TypeString(target, types.RelativeTo(pkg.Types)), funcName(fd))
}

// freshSlices finds slice variables declared inside fd with no
// reserved capacity: `var s []T`, `s := []T{...}`, or
// `s := make([]T, n)` (two-arg make). Appending to these grows per
// call; hot paths must reserve capacity up front or write into a
// caller-provided buffer.
func freshSlices(pkg *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident) {
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					mark(id)
				case *ast.CallExpr:
					if fn, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
						if b, ok := pkg.Info.Uses[fn].(*types.Builtin); ok &&
							b.Name() == "make" && len(rhs.Args) < 3 {
							mark(id)
						}
					}
				}
			}
		}
		return true
	})
	return out
}
