package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// hotpathAllocRule enforces the PR 3 zero-allocs-per-page bar on
// functions annotated //xfm:hotpath, interprocedurally: an annotated
// function may not *reach*, through any chain of module-local static
// calls, a construct that allocates (the classes in summary.go). The
// PR 4 rule looked only at the annotated body, so a hot path calling
// an innocent-looking helper that builds a map sailed through; this
// version walks the call graph and reports the full witness chain
// (`a → b → c allocates at file:line`) on every transitive finding.
//
// Traversal semantics:
//
//   - edges are the static call graph's (direct calls, concrete
//     method calls, and conservative interface resolution — every
//     module-local implementation of the called interface method);
//   - callees annotated //xfm:hotpath are NOT descended into: they
//     are roots of their own, independently verified;
//   - callees annotated //xfm:allocok <reason> are NOT descended
//     into: the annotation asserts the function is allocation-free in
//     the steady state (pooled or warm paths whose allocations are
//     provably cold) and the reason is recorded with the directive;
//   - calls through function values (unknown callees) are findings —
//     the walk cannot certify what it cannot see — suppressible at
//     the call site with //xfm:ignore when the callee contract is
//     enforced elsewhere (e.g. parallel.ForEach's per-item body,
//     covered by allocs/op regression tests);
//   - out-of-module callees have no bodies here and are assumed
//     allocation-free except package fmt, exactly as in PR 4; the
//     allocs/op regression tests remain the dynamic net underneath.
//
// Each allocation site is reported once, against the root with the
// shortest witness chain (first-loaded root on ties), so a helper
// shared by many hot paths is one finding, not one per root.
type hotpathAllocRule struct {
	// shallow restores the PR 4 intraprocedural semantics (own body
	// only, dynamic calls unchecked). Test-only: it exists so the
	// fixture can prove the old rule misses a hotpath→helper→alloc
	// chain that the interprocedural rule catches.
	shallow bool
}

// NewHotpathAllocRule returns the interprocedural hotpath-alloc rule.
func NewHotpathAllocRule() Rule { return hotpathAllocRule{} }

func (hotpathAllocRule) Name() string { return RuleHotpathAlloc }

// chainStep is one hop of a witness chain: the node reached and the
// call expression (in the previous node) that reached it.
type chainStep struct {
	node *FuncNode
	pos  token.Pos // call site in the previous node; NoPos for the root
	via  string    // interface annotation on the edge, if any
}

func (r hotpathAllocRule) Check(p *Program) []Diagnostic {
	g := p.CallGraph()
	var roots []*FuncNode
	for fd, on := range p.hotpath {
		if !on {
			continue
		}
		if node := g.NodeFor(fd); node != nil {
			roots = append(roots, node)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Decl.Pos() < roots[j].Decl.Pos() })

	var out []Diagnostic
	// Direct findings: the root's own body, PR 4 message shape.
	for _, root := range roots {
		for _, site := range p.summaryFor(root).sites {
			if site.dynamic && r.shallow {
				continue // PR 4 did not check dynamic calls
			}
			out = append(out, p.diag(site.pos, RuleHotpathAlloc,
				"%s in hot path %s", site.desc, funcName(root.Decl)))
		}
	}
	if r.shallow {
		return out
	}

	// Transitive findings: BFS from every root; report each reached
	// allocation site once with the shortest witness chain.
	type finding struct {
		root  *FuncNode
		chain []chainStep
		site  allocSite
	}
	best := map[token.Pos]finding{}
	var sitePos []token.Pos
	for _, root := range roots {
		visited := map[*FuncNode]bool{root: true}
		queue := [][]chainStep{{{node: root}}}
		for len(queue) > 0 {
			chain := queue[0]
			queue = queue[1:]
			cur := chain[len(chain)-1].node
			for _, edge := range cur.Calls {
				callee := edge.Callee
				if visited[callee] || p.hotpath[callee.Decl] || p.allocok[callee.Decl] {
					continue
				}
				visited[callee] = true
				next := append(append([]chainStep(nil), chain...),
					chainStep{node: callee, pos: edge.Pos, via: edge.Via})
				for _, site := range p.summaryFor(callee).sites {
					if prev, ok := best[site.pos]; ok && len(prev.chain) <= len(next) {
						continue
					} else if !ok {
						sitePos = append(sitePos, site.pos)
					}
					best[site.pos] = finding{root: root, chain: next, site: site}
				}
				queue = append(queue, next)
			}
		}
	}
	sort.Slice(sitePos, func(i, j int) bool { return sitePos[i] < sitePos[j] })
	for _, pos := range sitePos {
		f := best[pos]
		names := make([]string, len(f.chain))
		for i, s := range f.chain {
			names[i] = s.node.Name()
		}
		d := p.diag(pos, RuleHotpathAlloc,
			"%s in hot path %s via call chain %s", f.site.desc,
			funcName(f.root.Decl), strings.Join(names, " → "))
		d.Witness = witnessChain(p, f.chain, f.site)
		out = append(out, d)
	}
	return out
}

// witnessChain renders every hop of a transitive finding with its
// source position, ending at the allocation itself.
func witnessChain(p *Program, chain []chainStep, site allocSite) []string {
	var out []string
	for i := 1; i < len(chain); i++ {
		s := chain[i]
		line := fmt.Sprintf("%s calls %s at %s",
			chain[i-1].node.Name(), s.node.Name(), p.posString(s.pos))
		if s.via != "" {
			line += " (via " + s.via + ")"
		}
		out = append(out, line)
	}
	last := chain[len(chain)-1]
	out = append(out, fmt.Sprintf("%s: %s at %s",
		last.node.Name(), site.desc, p.posString(site.pos)))
	return out
}

// posString renders "file:line" relative to the module root.
func (p *Program) posString(pos token.Pos) string {
	return fmt.Sprintf("%s:%d", p.relFile(pos), p.Fset.Position(pos).Line)
}
