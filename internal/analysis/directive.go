package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The //xfm: directive namespace.
//
//	//xfm:ignore <rule> <reason...>   suppress <rule> on this line and the next
//	//xfm:hotpath                     (on a func decl) forbid allocation-prone constructs
//	//xfm:allocok <reason...>         (on a func decl) treat as allocation-free in the
//	                                  transitive hotpath-alloc walk (pooled/warm paths)
//	//xfm:guardedby <mu>              (on a struct field) field requires sibling mutex <mu>
//
// Malformed directives — unknown verbs, unknown rule names, a missing
// ignore reason, guardedby naming a nonexistent or non-mutex sibling,
// hotpath/guardedby floating away from a declaration — are themselves
// diagnostics (rule "directive"), so a typo can never silently turn a
// check off.

// attachment records which declaration a comment group documents.
type attachment struct {
	fn     *ast.FuncDecl
	field  *ast.Field
	strct  *ast.StructType
	isLine bool // field line comment (after the field) vs doc
}

// scanDirectives parses every //xfm: comment in pkg, populating
// prog.hotpath, prog.guards, prog.suppressions, and
// prog.directiveDiags.
func scanDirectives(prog *Program, pkg *Package) {
	for _, file := range pkg.Files {
		attached := map[*ast.Comment]attachment{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Doc != nil {
					for _, c := range n.Doc.List {
						attached[c] = attachment{fn: n}
					}
				}
			case *ast.StructType:
				for _, f := range n.Fields.List {
					for _, g := range []*ast.CommentGroup{f.Doc, f.Comment} {
						if g == nil {
							continue
						}
						for _, c := range g.List {
							attached[c] = attachment{field: f, strct: n, isLine: g == f.Comment}
						}
					}
				}
			}
			return true
		})
		for _, group := range file.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//xfm:")
				if !ok {
					continue
				}
				parseDirective(prog, pkg, c, text, attached[c])
			}
		}
	}
}

func parseDirective(prog *Program, pkg *Package, c *ast.Comment, text string, at attachment) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective, "empty //xfm: directive"))
		return
	}
	verb, args := fields[0], fields[1:]
	switch verb {
	case "ignore":
		parseIgnore(prog, c, args)
	case "hotpath":
		parseHotpath(prog, c, args, at)
	case "allocok":
		parseAllocOK(prog, c, args, at)
	case "guardedby":
		parseGuardedBy(prog, pkg, c, args, at)
	default:
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"unknown directive //xfm:%s (want ignore, hotpath, allocok, or guardedby)", verb))
	}
}

func parseIgnore(prog *Program, c *ast.Comment, args []string) {
	if len(args) == 0 {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective, "//xfm:ignore needs a rule name and a reason"))
		return
	}
	rule := args[0]
	if !knownRule(rule) {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:ignore names unknown rule %q (known: %s)", rule, strings.Join(KnownRules, ", ")))
		return
	}
	if len(args) < 2 {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:ignore %s is missing a reason — every suppression must say why", rule))
		return
	}
	prog.suppressions = append(prog.suppressions, suppression{
		file:   prog.relFile(c.Pos()),
		line:   prog.Fset.Position(c.Pos()).Line,
		rule:   rule,
		reason: strings.Join(args[1:], " "),
	})
}

func parseHotpath(prog *Program, c *ast.Comment, args []string, at attachment) {
	if len(args) != 0 {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective, "//xfm:hotpath takes no arguments"))
		return
	}
	if at.fn == nil {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:hotpath is not attached to a function declaration"))
		return
	}
	prog.hotpath[at.fn] = true
}

// parseAllocOK handles //xfm:allocok <reason...>: the annotated
// function is treated as allocation-free by the transitive
// hotpath-alloc walk (neither its body nor its callees are followed).
// The escape hatch exists for pooled and warm paths whose allocations
// are provably cold — the reason is mandatory so every exemption
// records why the static walk may stand down.
func parseAllocOK(prog *Program, c *ast.Comment, args []string, at attachment) {
	if at.fn == nil {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:allocok is not attached to a function declaration"))
		return
	}
	if len(args) == 0 {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:allocok is missing a reason — every exemption must say why the function cannot allocate steady-state"))
		return
	}
	prog.allocok[at.fn] = true
}

func parseGuardedBy(prog *Program, pkg *Package, c *ast.Comment, args []string, at attachment) {
	if len(args) != 1 {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective, "//xfm:guardedby takes exactly one argument: the sibling mutex field"))
		return
	}
	if at.field == nil {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:guardedby is not attached to a struct field"))
		return
	}
	muName := args[0]
	muIdent := findFieldIdent(at.strct, muName)
	if muIdent == nil {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:guardedby names nonexistent sibling field %q", muName))
		return
	}
	muVar, _ := pkg.Info.Defs[muIdent].(*types.Var)
	if muVar == nil || !isMutexType(muVar.Type()) {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:guardedby field %q is not a sync.Mutex or sync.RWMutex", muName))
		return
	}
	if len(at.field.Names) == 0 {
		prog.directiveDiags = append(prog.directiveDiags,
			prog.diag(c.Pos(), RuleDirective,
				"//xfm:guardedby cannot annotate an embedded field"))
		return
	}
	for _, name := range at.field.Names {
		fv, _ := pkg.Info.Defs[name].(*types.Var)
		if fv == nil {
			continue
		}
		prog.guards[fv] = &Guard{Field: fv, Mu: muVar, MuName: muName}
	}
}

func findFieldIdent(st *ast.StructType, name string) *ast.Ident {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return n
			}
		}
	}
	return nil
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a
// pointer to one.
func isMutexType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// directiveRule surfaces the malformed-directive diagnostics collected
// at load time.
type directiveRule struct{}

// NewDirectiveRule returns the rule reporting malformed //xfm:
// directives.
func NewDirectiveRule() Rule { return directiveRule{} }

func (directiveRule) Name() string { return RuleDirective }

func (directiveRule) Check(p *Program) []Diagnostic {
	return append([]Diagnostic(nil), p.directiveDiags...)
}
