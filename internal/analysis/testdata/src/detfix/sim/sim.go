// Package sim is covered by the sim-determinism rule in the fixture
// test and seeds all three nondeterminism classes: wall-clock reads,
// global math/rand, and iteration over a map.
package sim

import (
	"math/rand"
	"time"
)

// Tick reads the wall clock.
func Tick() time.Time {
	return time.Now() // want sim-determinism
}

// Jitter draws from the unseeded global generator.
func Jitter() int {
	return rand.Intn(10) // want sim-determinism
}

// Sum folds a map in iteration order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want sim-determinism
		total += v
	}
	return total
}

// SeededJitter uses an explicitly seeded source: the sanctioned fix.
func SeededJitter(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
