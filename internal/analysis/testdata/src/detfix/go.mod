module detfix

go 1.22
