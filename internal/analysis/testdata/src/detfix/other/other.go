// Package other is NOT in the rule's covered-package list, so its
// wall-clock read must produce no diagnostic.
package other

import "time"

// Stamp may read the clock: this package is outside the sim core.
func Stamp() time.Time { return time.Now() }
