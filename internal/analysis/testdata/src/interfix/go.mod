module interfix

go 1.22
