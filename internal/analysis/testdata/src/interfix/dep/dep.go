// Package dep provides the interface target for interfix's dispatch
// chain.
package dep

// Sink consumes integers.
type Sink interface{ Put(int) }

// MapSink allocates its map lazily — on the hot path.
type MapSink struct{ m map[int]bool }

func (s *MapSink) Put(n int) {
	if s.m == nil {
		s.m = map[int]bool{} // want hotpath-alloc
	}
	s.m[n] = true
}

// NullSink is the allocation-free implementation.
type NullSink struct{}

func (NullSink) Put(int) {}
