// Package interfix seeds transitive hotpath-alloc chains the shallow
// (PR 4) rule could not see: every annotated root body is clean, and
// the allocations hide one to two hops down — behind a plain call and
// behind an interface dispatch.
package interfix

import "interfix/dep"

// Hot's own body is allocation-free; the map literal is two calls
// away.
//
//xfm:hotpath
func Hot(n int) int {
	return helper(n)
}

func helper(n int) int {
	return deeper(n)
}

func deeper(n int) int {
	m := map[int]int{n: n} // want hotpath-alloc
	return len(m)
}

// HotIface dispatches through an interface: the conservative call
// graph fans out to every module-local implementation, so the
// allocating MapSink is reached even though a NullSink may be passed.
//
//xfm:hotpath
func HotIface(s dep.Sink, n int) {
	s.Put(n)
}

// HotPooled calls a function excused with //xfm:allocok: the walk must
// not descend into it, so this root stays clean.
//
//xfm:hotpath
func HotPooled(n int) int { return pooled(n) }

//xfm:allocok fixture stand-in for a pooled warm path whose allocations are provably cold
func pooled(n int) int {
	s := make([]int, n)
	return len(s)
}
