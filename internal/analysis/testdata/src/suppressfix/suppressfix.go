// Package suppressfix seeds one violation per rule and suppresses
// every one of them with a reasoned //xfm:ignore, both trailing and
// standalone: the tree must report zero unsuppressed diagnostics.
package suppressfix

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Pair mixes atomic and plain access to n, suppressed at the plain
// read.
type Pair struct {
	mu    sync.Mutex
	n     int64
	table map[int]int //xfm:guardedby mu
}

// Inc marks n atomic.
func (p *Pair) Inc() { atomic.AddInt64(&p.n, 1) }

// Peek is a deliberately racy read with a recorded justification.
func (p *Pair) Peek() int64 {
	return p.n //xfm:ignore atomic-field approximate read is fine for a progress log
}

// Scan walks the guarded table lock-free, standalone suppression form.
func (p *Pair) Scan() int {
	//xfm:ignore guardedby snapshot taken before any writer goroutine starts
	return len(p.table)
}

// Label is hot but formats once per call, suppressed.
//
//xfm:hotpath
func Label(v int64) string {
	return fmt.Sprintf("v=%d", v) //xfm:ignore hotpath-alloc called once per report, not per page
}

// Stamp reads the clock with a recorded justification.
func Stamp() time.Time {
	return time.Now() //xfm:ignore sim-determinism display-only timestamp, never folded into tables
}
