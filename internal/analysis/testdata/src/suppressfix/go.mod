module suppressfix

go 1.22
