// Package atomicfix seeds an atomic-field violation: n is updated via
// sync/atomic in Inc but read with a plain load in Bad — the PR 2
// telemetry race class.
package atomicfix

import "sync/atomic"

// Counter mixes an atomic counter with a plain field.
type Counter struct {
	n    int64
	name string
}

// Inc makes n an atomic field everywhere.
func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

// Bad reads n without sync/atomic: the seeded violation.
func (c *Counter) Bad() int64 {
	return c.n // want atomic-field
}

// Worse writes n without sync/atomic.
func (c *Counter) Worse() {
	c.n = 0 // want atomic-field
}

// Good reads n atomically.
func (c *Counter) Good() int64 { return atomic.LoadInt64(&c.n) }

// Name touches a field no atomic op ever touches: not a violation.
func (c *Counter) Name() string { return c.name }
