module atomicfix

go 1.22
