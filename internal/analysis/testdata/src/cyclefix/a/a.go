// Package a half of a deliberate import cycle.
package a

import "cyclefix/b"

// X depends on b.Y.
var X = b.Y + 1
