// Package b closes the cycle back to a.
package b

import "cyclefix/a"

// Y depends on a.X.
var Y = a.X + 1
