module cyclefix

go 1.22
