// Package dirfix exercises every malformed //xfm: directive shape; a
// typo in an annotation must surface as a diagnostic, never as a
// silently unenforced invariant.
package dirfix

import "sync"

// Box carries three broken guardedby annotations.
type Box struct {
	mu   sync.Mutex
	name string
	a    int //xfm:guardedby lock
	b    int //xfm:guardedby name
	c    int //xfm:guardedby
}

//xfm:hotpth
func Typo() {}

//xfm:hotpath now
func Args() {}

//xfm:hotpath
var floating int

//xfm:ignore no-such-rule because reasons
func IgnoreUnknown() {}

//xfm:ignore hotpath-alloc
func IgnoreNoReason() {}
