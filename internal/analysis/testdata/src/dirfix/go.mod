module dirfix

go 1.22
