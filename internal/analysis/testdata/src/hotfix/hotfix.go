// Package hotfix seeds hotpath-alloc violations in an annotated
// function: fmt formatting, append onto a fresh slice, map/closure
// creation, and interface boxing. It doubles as the deliberately
// broken fixture the CI-gate test runs xfmlint against.
package hotfix

import "fmt"

// Describe is annotated hot but allocates in five distinct ways.
//
//xfm:hotpath
func Describe(vals []int64) string {
	var out []string
	for _, v := range vals {
		s := fmt.Sprintf("v=%d", v) // want hotpath-alloc
		out = append(out, s)        // want hotpath-alloc
	}
	seen := make(map[string]bool)       // want hotpath-alloc
	f := func() int { return len(out) } // want hotpath-alloc
	_ = f
	_ = seen
	var sink any
	sink = vals[0] // want hotpath-alloc
	_ = sink
	if len(out) > 0 {
		return out[0]
	}
	return ""
}

// Fill appends into a caller-provided slice: capacity is the caller's
// problem, so this annotated function is clean.
//
//xfm:hotpath
func Fill(dst []int64, n int) []int64 {
	for i := 0; i < n; i++ {
		dst = append(dst, int64(i))
	}
	return dst
}

// Cold is not annotated, so its allocations are fine.
func Cold() string {
	return fmt.Sprintf("cold %v", make(map[int]int))
}
