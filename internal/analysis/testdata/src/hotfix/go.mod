module hotfix

go 1.22
