// Package two acquires B before A — the inversion — with the second
// acquisition hidden behind a helper call so the witness must walk the
// call graph.
package two

import "lockfix/core"

// TakeBA holds B for its whole body and reaches A through grabA.
func TakeBA() {
	core.P.B.Lock()
	defer core.P.B.Unlock()
	grabA()
}

func grabA() {
	core.P.A.Lock()
	core.P.A.Unlock()
}
