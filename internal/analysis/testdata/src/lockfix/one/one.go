// Package one acquires A before B.
package one

import "lockfix/core"

// TakeAB holds A (deferred unlock) while taking B.
func TakeAB() {
	core.P.A.Lock()
	defer core.P.A.Unlock()
	core.P.B.Lock() // want lock-order
	core.P.B.Unlock()
}
