// Package core owns the two lock classes the sibling packages acquire
// in opposite orders.
package core

import "sync"

// Pair bundles the two mutexes; lock-order keys on the fields
// core.Pair.A and core.Pair.B, not on any particular instance.
type Pair struct {
	A sync.Mutex
	B sync.Mutex
}

// P is the shared instance both packages lock.
var P Pair
