module telfix

go 1.22
