// Package app seeds one violation of each telemetry-contract clause.
package app

import "telfix/internal/telemetry"

func dyn() string { return "xfm_dyn_total" }

var (
	good     = telemetry.NewCounter("xfm_good_total", "listed in the catalogue and required by telemetryck")
	unlisted = telemetry.NewCounter("xfm_unlisted_total", "registered but absent from the catalogue") // want telemetry-contract
	dup      = telemetry.NewCounter("xfm_good_total", "second registration of a taken name")          // want telemetry-contract
	badName  = telemetry.NewGauge("badprefix_metric", "listed, but violates the prefix convention")   // want telemetry-contract
	computed = telemetry.NewCounter(dyn(), "computed names cannot be cross-checked")                  // want telemetry-contract
)
