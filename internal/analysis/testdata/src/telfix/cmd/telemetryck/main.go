// Command telemetryck mirrors the real validator's hardcoded
// requirement lists: the linter extracts them from this file's AST.
// The ghost entry has no registration anywhere in the module.
package main

var defaultRequiredMetrics = []string{
	"xfm_good_total",
	"xfm_ghost_total", // want telemetry-contract
}

var defaultRequiredSeries = []string{
	"xfm_good_total_p95",
}

func main() { _, _ = defaultRequiredMetrics, defaultRequiredSeries }
