// Package telemetry mirrors the real registration surface: the linter
// recognizes any New* constructor in a package whose import path ends
// in internal/telemetry.
package telemetry

// Counter is a registered monotone counter.
type Counter struct{}

// Gauge is a registered instantaneous value.
type Gauge struct{}

// NewCounter registers a counter under name.
func NewCounter(name, help string) *Counter { _, _ = name, help; return &Counter{} }

// NewGauge registers a gauge under name.
func NewGauge(name, help string) *Gauge { _, _ = name, help; return &Gauge{} }
