// Package guardfix seeds guardedby violations: table is annotated as
// guarded by mu, and two methods touch it without the lock.
package guardfix

import "sync"

// Store is a mutex-guarded map, the ShardedBackend shape.
type Store struct {
	mu    sync.Mutex
	table map[int]int //xfm:guardedby mu
}

// Get holds the lock: no violation.
func (s *Store) Get(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table[k]
}

// BadGet reads the table with no lock at all: the seeded violation.
func (s *Store) BadGet(k int) int {
	return s.table[k] // want guardedby
}

// BadPut locks only after the write; a textually-later Lock does not
// guard an earlier access.
func (s *Store) BadPut(k, v int) {
	s.table[k] = v // want guardedby
	s.mu.Lock()
	s.mu.Unlock()
}

// RGet holds a read lock via RLock-style naming on a plain Mutex is
// not possible; this variant just proves a second locked accessor
// stays clean.
func (s *Store) RGet(k int) (int, bool) {
	s.mu.Lock()
	v, ok := s.table[k]
	s.mu.Unlock()
	return v, ok
}
