module guardfix

go 1.22
