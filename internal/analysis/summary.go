package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes the memoized per-function allocation summaries
// the transitive hotpath-alloc rule composes over the call graph. A
// summary lists every construct in one function's own body that the
// PR 3 zero-allocs-per-page bar bans:
//
//   - any call into package fmt (formatting always allocates)
//   - map, chan, and closure creation (make, literals, func literals,
//     go statements)
//   - append to a slice declared fresh in the same function with no
//     reserved capacity (the growth path allocates per page)
//   - implicit interface boxing of a non-pointer concrete value
//     (the conversion heap-allocates the value's copy)
//
// plus the function's dynamic call sites (calls through function
// values), which the interprocedural walk cannot see past. Summaries
// are computed for every module function once and shared by every
// hotpath root that reaches it; the call graph decides reachability.

// allocSite is one banned construct in a function body. Desc reads as
// a clause — "map literal allocates" — so direct findings can render
// the PR 4 message shape ("<desc> in hot path <fn>") and transitive
// findings can embed it in a witness chain.
type allocSite struct {
	pos     token.Pos
	desc    string
	dynamic bool // a call through a function value: unknown callee, unprovable
}

// summary is one function's allocation facts, own body only.
type summary struct {
	sites []allocSite
}

// Summary computes (memoized) the allocation summary for node.
func (p *Program) summaryFor(node *FuncNode) *summary {
	if p.summaries == nil {
		p.summaries = map[*FuncNode]*summary{}
	}
	if s, ok := p.summaries[node]; ok {
		return s
	}
	s := &summary{sites: allocSites(node.Pkg, node.Decl)}
	for _, pos := range node.Dynamic {
		s.sites = append(s.sites, allocSite{
			pos:     pos,
			desc:    "call through a function value has an unknown callee (cannot prove zero-alloc)",
			dynamic: true,
		})
	}
	p.summaries[node] = s
	return s
}

// allocSites classifies every banned construct in fd's own body.
func allocSites(pkg *Package, fd *ast.FuncDecl) []allocSite {
	var out []allocSite
	add := func(pos token.Pos, desc string) {
		out = append(out, allocSite{pos: pos, desc: desc})
	}
	fresh := freshSlices(pkg, fd)
	sig, _ := pkg.Info.Defs[fd.Name].(*types.Func)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			classifyCall(pkg, n, fresh, add)
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					add(n.Pos(), "map literal allocates")
				}
			}
		case *ast.FuncLit:
			add(n.Pos(), "closure allocates")
			return false // do not descend: the closure body runs elsewhere
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates a goroutine")
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if lt, ok := pkg.Info.Types[lhs]; ok {
					classifyBoxing(pkg, n.Rhs[i], lt.Type, "assignment", add)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil {
				results := sig.Type().(*types.Signature).Results()
				if results.Len() == len(n.Results) {
					for i, r := range n.Results {
						classifyBoxing(pkg, r, results.At(i).Type(), "return", add)
					}
				}
			}
		}
		return true
	})
	return out
}

func classifyCall(pkg *Package, call *ast.CallExpr,
	fresh map[*types.Var]bool, add func(token.Pos, string)) {
	// Calls into package fmt.
	if fn := calleeFunc(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		add(call.Pos(), "fmt."+fn.Name()+" allocates")
		return
	}
	// Builtins: make(map/chan), append to fresh slices.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if tv, ok := pkg.Info.Types[call.Args[0]]; ok {
						switch tv.Type.Underlying().(type) {
						case *types.Map:
							add(call.Pos(), "make(map) allocates")
						case *types.Chan:
							add(call.Pos(), "make(chan) allocates")
						}
					}
				}
			case "append":
				if len(call.Args) > 0 {
					if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if v, ok := pkg.Info.Uses[dst].(*types.Var); ok && fresh[v] {
							add(call.Pos(),
								"append to "+dst.Name+" grows a fresh slice with no reserved capacity")
						}
					}
				}
			}
			return
		}
	}
	// Interface boxing of call arguments.
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		classifyBoxing(pkg, arg, pt, "argument", add)
	}
}

// classifyBoxing records expr when assigning it to target implicitly
// boxes a non-pointer concrete value into an interface.
func classifyBoxing(pkg *Package, expr ast.Expr, target types.Type, ctx string,
	add func(token.Pos, string)) {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value != nil { // constants are boxed from static data
		return
	}
	t := tv.Type
	if t == nil {
		return
	}
	if b, ok := t.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Info()&types.IsUntyped != 0) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface carries the existing box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: the interface data word holds it directly
	}
	add(expr.Pos(), ctx+" boxes "+types.TypeString(t, types.RelativeTo(pkg.Types))+
		" into "+types.TypeString(target, types.RelativeTo(pkg.Types))+" (heap-allocates)")
}

// freshSlices finds slice variables declared inside fd with no
// reserved capacity: `var s []T`, `s := []T{...}`, or
// `s := make([]T, n)` (two-arg make). Appending to these grows per
// call; hot paths must reserve capacity up front or write into a
// caller-provided buffer.
func freshSlices(pkg *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident) {
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					mark(id)
				case *ast.CallExpr:
					if fn, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
						if b, ok := pkg.Info.Uses[fn].(*types.Builtin); ok &&
							b.Name() == "make" && len(rhs.Args) < 3 {
							mark(id)
						}
					}
				}
			}
		}
		return true
	})
	return out
}
