package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the static call graph the interprocedural rules
// (transitive hotpath-alloc, lock-order) walk. Nodes are the module's
// own functions and methods — out-of-module callees have no bodies
// here, so edges stop at the module boundary and the rules treat the
// standard library by reputation (fmt allocates, sync/atomic does
// not). Edge resolution, in decreasing order of confidence:
//
//   - direct calls and method calls with a concrete receiver resolve
//     through go/types to exactly one callee;
//   - interface method calls resolve conservatively to every
//     module-local concrete type that implements the interface (the
//     call MAY land on any of them, so every one becomes an edge,
//     annotated "via interface I.M");
//   - calls through function values (locals, parameters, struct
//     fields, method values) have an unknown callee; the call site is
//     recorded as dynamic so rules that need a closed world can refuse
//     to certify past it.
//
// Immediately-invoked function literals are inlined: their bodies
// belong to the enclosing function's node.

// CallEdge is one resolved call site.
type CallEdge struct {
	Callee *FuncNode
	Pos    token.Pos
	Via    string // "" for static dispatch, "interface I.M" for conservative resolution
}

// FuncNode is one module-local function in the call graph.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Calls   []CallEdge  // module-local callees, in source order, deduplicated
	Dynamic []token.Pos // call sites whose callee is a function value (unknown)
}

// Name renders the node's diagnostic name: "pkgname.Func" or
// "pkgname.(*Recv).Method".
func (n *FuncNode) Name() string {
	name := funcName(n.Decl)
	if n.Pkg != nil && n.Pkg.Types != nil {
		return n.Pkg.Types.Name() + "." + name
	}
	return name
}

// CallGraph indexes every module-local function declaration.
type CallGraph struct {
	Nodes  map[*types.Func]*FuncNode
	byDecl map[*ast.FuncDecl]*FuncNode
}

// NodeFor returns the node for a function declaration, or nil.
func (g *CallGraph) NodeFor(fd *ast.FuncDecl) *FuncNode { return g.byDecl[fd] }

// SortedNodes returns every node ordered by source position, so
// whole-graph iterations are deterministic.
func (g *CallGraph) SortedNodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// CallGraph builds (once per Program) and returns the module call
// graph. Rules run sequentially, so a plain memo is enough.
func (p *Program) CallGraph() *CallGraph {
	if p.callgraph != nil {
		return p.callgraph
	}
	g := &CallGraph{
		Nodes:  map[*types.Func]*FuncNode{},
		byDecl: map[*ast.FuncDecl]*FuncNode{},
	}
	// Pass 1: index every declared function.
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = node
				g.byDecl[fd] = node
			}
		}
	}
	impls := moduleImplementers(p)
	// Pass 2: resolve call sites.
	for _, node := range g.Nodes {
		resolveCalls(g, node, impls)
	}
	p.callgraph = g
	return g
}

// moduleImplementers indexes every module-local named type with
// methods, for conservative interface resolution.
func moduleImplementers(p *Program) []*types.Named {
	var out []*types.Named
	for _, pkg := range p.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.NumMethods() == 0 {
				continue
			}
			out = append(out, named)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj().Pos() < out[j].Obj().Pos() })
	return out
}

func resolveCalls(g *CallGraph, node *FuncNode, impls []*types.Named) {
	pkg := node.Pkg
	seen := map[*FuncNode]bool{}
	addEdge := func(callee *FuncNode, pos token.Pos, via string) {
		if callee == nil || callee == node || seen[callee] {
			return
		}
		seen[callee] = true
		node.Calls = append(node.Calls, CallEdge{Callee: callee, Pos: pos, Via: via})
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		// Conversions are not calls.
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		switch fun := fun.(type) {
		case *ast.Ident:
			switch obj := pkg.Info.Uses[fun].(type) {
			case *types.Func:
				addEdge(g.Nodes[obj], call.Pos(), "")
			case *types.Builtin, *types.TypeName, *types.Nil:
				// builtins and conversions: not call-graph edges
			case *types.Var:
				node.Dynamic = append(node.Dynamic, call.Pos())
			}
		case *ast.SelectorExpr:
			switch obj := pkg.Info.Uses[fun.Sel].(type) {
			case *types.Func:
				if iface, iname, mname := interfaceCall(obj); iface != nil {
					resolveInterfaceCall(g, node, addEdge, call.Pos(), iface, iname, mname, impls)
					return true
				}
				addEdge(g.Nodes[obj], call.Pos(), "")
			case *types.Var:
				// Function-valued struct field or package variable.
				node.Dynamic = append(node.Dynamic, call.Pos())
			}
		case *ast.FuncLit:
			// Immediately-invoked literal: its body is already part of
			// this node's walk.
		default:
			// Anything else producing a function value (a call
			// returning a func, an index into a []func) is dynamic.
			if tv, ok := pkg.Info.Types[fun]; ok {
				if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
					node.Dynamic = append(node.Dynamic, call.Pos())
				}
			}
		}
		return true
	})
}

// interfaceCall reports whether fn is an interface method (abstract,
// no body anywhere) and returns its interface type, display name, and
// method name.
func interfaceCall(fn *types.Func) (*types.Interface, string, string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	name := "interface{...}"
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name()
		if pkg := named.Obj().Pkg(); pkg != nil {
			name = pkg.Name() + "." + name
		}
	}
	if iface, ok := recv.Underlying().(*types.Interface); ok {
		return iface, name, fn.Name()
	}
	return nil, "", ""
}

// resolveInterfaceCall adds an edge to every module-local concrete
// method that the call may dispatch to.
func resolveInterfaceCall(g *CallGraph, node *FuncNode, addEdge func(*FuncNode, token.Pos, string),
	pos token.Pos, iface *types.Interface, iname, mname string, impls []*types.Named) {
	via := "interface " + iname + "." + mname
	for _, named := range impls {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), mname)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		addEdge(g.Nodes[m], pos, via)
	}
}
