package analysis

import (
	"strings"
	"testing"
)

// TestMalformedDirectives proves a typo in an //xfm: annotation is a
// diagnostic, never a silently unenforced invariant.
func TestMalformedDirectives(t *testing.T) {
	diags := loadFixture(t, "dirfix", DefaultRules())
	wantSubstrings := []string{
		`names nonexistent sibling field "lock"`,
		`field "name" is not a sync.Mutex`,
		`takes exactly one argument`,
		`unknown directive //xfm:hotpth`,
		`//xfm:hotpath takes no arguments`,
		`not attached to a function declaration`,
		`unknown rule "no-such-rule"`,
		`missing a reason`,
	}
	if len(diags) != len(wantSubstrings) {
		for _, d := range diags {
			t.Logf("  got: %s", d)
		}
		t.Fatalf("want %d directive diagnostics, got %d", len(wantSubstrings), len(diags))
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Rule == RuleDirective && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive diagnostic containing %q", want)
		}
	}
	// Directive diagnostics gate CI: none may be suppressed, and the
	// broken hotpath/guardedby annotations must not have taken effect.
	for _, d := range diags {
		if d.Suppressed {
			t.Errorf("directive diagnostic must not be suppressible: %s", d)
		}
	}
}

// TestDirectiveIgnoreCannotSuppressItself pins the anti-rot rule: an
// //xfm:ignore directive aimed at rule "directive" parses (directive is
// a known rule name, so the ignore itself is well-formed) but never
// matches — suppressionFor refuses the directive rule outright.
func TestDirectiveIgnoreCannotSuppressItself(t *testing.T) {
	d := Diagnostic{File: "x.go", Line: 3, Rule: RuleDirective}
	p := &Program{suppressions: []suppression{
		{file: "x.go", line: 3, rule: RuleDirective, reason: "trying to hide a broken annotation"},
	}}
	if s := p.suppressionFor(d); s != nil {
		t.Fatalf("directive diagnostics must be unsuppressable, got %+v", s)
	}
}
