// Package analysis is the xfmlint framework: a stdlib-only static
// analyzer that loads a Go module with go/parser, type-checks it with
// go/types (stdlib dependencies come from the source importer), and
// runs domain rules over the typed ASTs. The rules encode invariants
// the rest of this repository relies on but the compiler cannot see:
// atomic counters must be atomic everywhere (atomic-field), mutex-
// guarded fields must be touched under their lock (guardedby),
// annotated hot paths must not allocate (hotpath-alloc), and the
// simulator packages must stay bit-deterministic (sim-determinism).
//
// Directives use the //xfm: comment namespace; see directive.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the linted module.
type Package struct {
	Path  string // import path, e.g. "xfm/internal/sfm"
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded, type-checked set of packages plus the parsed
// //xfm: directive state rules consume.
type Program struct {
	Fset     *token.FileSet
	ModPath  string
	ModDir   string
	Packages []*Package // the packages matched by the load patterns

	// Directive state, populated by scanDirectives during Load.
	hotpath        map[*ast.FuncDecl]bool
	allocok        map[*ast.FuncDecl]bool
	suppressions   []suppression
	guards         map[*types.Var]*Guard
	directiveDiags []Diagnostic

	// Interprocedural state, built lazily by the first rule that asks.
	callgraph *CallGraph
	summaries map[*FuncNode]*summary
}

// Guard records one //xfm:guardedby annotation: Field may only be
// accessed while Mu (a sibling sync.Mutex/RWMutex field) is held.
type Guard struct {
	Field  *types.Var
	Mu     *types.Var
	MuName string
}

// Context owns the FileSet and the (expensive) source importer for
// stdlib packages, so several Loads — e.g. the real tree plus test
// fixtures — share one type-checked standard library.
type Context struct {
	Fset *token.FileSet
	std  types.Importer
}

// NewContext builds a load context with a fresh FileSet and a source
// importer for out-of-module (standard library) packages.
func NewContext() *Context {
	fset := token.NewFileSet()
	return &Context{Fset: fset, std: importer.ForCompiler(fset, "source", nil)}
}

// loader tracks per-Load state: local packages parsed and checked so
// far, and the in-progress set for import-cycle detection.
type loader struct {
	ctx      *Context
	modPath  string
	modDir   string
	goVer    string
	byPath   map[string]*Package
	checking map[string]bool
	typeErrs []error
}

// Load parses and type-checks the module rooted at (or above) dir.
// Patterns follow the go tool's shape: "./..." walks everything under
// dir; "./x/y" names one package directory. Test files (_test.go) and
// testdata/vendor directories are skipped: xfmlint checks the
// invariants of shipped code.
func (c *Context) Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, goVer, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	ld := &loader{
		ctx:      c,
		modPath:  modPath,
		modDir:   modDir,
		goVer:    goVer,
		byPath:   map[string]*Package{},
		checking: map[string]bool{},
	}
	var dirs []string
	seen := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := expandPattern(absDir, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	prog := &Program{
		Fset:    c.Fset,
		ModPath: modPath,
		ModDir:  modDir,
		hotpath: map[*ast.FuncDecl]bool{},
		allocok: map[*ast.FuncDecl]bool{},
		guards:  map[*types.Var]*Guard{},
	}
	for _, d := range dirs {
		ip, err := ld.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := ld.check(ip)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	if len(ld.typeErrs) > 0 {
		return nil, fmt.Errorf("type errors:\n%s", joinErrs(ld.typeErrs, 10))
	}
	for _, pkg := range prog.Packages {
		scanDirectives(prog, pkg)
	}
	return prog, nil
}

func joinErrs(errs []error, max int) string {
	var b strings.Builder
	for i, e := range errs {
		if i == max {
			fmt.Fprintf(&b, "... and %d more", len(errs)-max)
			break
		}
		fmt.Fprintf(&b, "\t%v\n", e)
	}
	return b.String()
}

// findModule walks upward from dir to the enclosing go.mod and returns
// its directory, module path, and go version.
func findModule(dir string) (modDir, modPath, goVer string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			modPath, goVer = parseModFile(string(data))
			if modPath == "" {
				return "", "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
			}
			return d, modPath, goVer, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", "", fmt.Errorf("analysis: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

func parseModFile(src string) (modPath, goVer string) {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok && modPath == "" {
			modPath = strings.Trim(strings.TrimSpace(p), `"`)
		}
		if v, ok := strings.CutPrefix(line, "go "); ok && goVer == "" {
			goVer = "go" + strings.TrimSpace(v)
		}
	}
	return modPath, goVer
}

// expandPattern resolves one CLI pattern to package directories that
// contain at least one non-test .go file.
func expandPattern(base, pat string) ([]string, error) {
	recursive := false
	if p, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = p
		if pat == "." || pat == "" {
			pat = "."
		}
	}
	root := pat
	if !filepath.IsAbs(root) {
		root = filepath.Join(base, root)
	}
	if !recursive {
		if !hasGoFiles(root) {
			return nil, fmt.Errorf("analysis: no Go files in %s", root)
		}
		return []string{root}, nil
	}
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if lintableFile(e) {
			return true
		}
	}
	return false
}

func lintableFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

func (ld *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.modDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ld.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, ld.modDir)
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

func (ld *loader) dirForImport(path string) string {
	if path == ld.modPath {
		return ld.modDir
	}
	rel := strings.TrimPrefix(path, ld.modPath+"/")
	return filepath.Join(ld.modDir, filepath.FromSlash(rel))
}

// check parses and type-checks the local package at import path,
// memoized; local imports recurse, everything else goes to the shared
// stdlib importer.
func (ld *loader) check(path string) (*Package, error) {
	if pkg, ok := ld.byPath[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)

	dir := ld.dirForImport(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !lintableFile(e) {
			continue
		}
		f, err := parser.ParseFile(ld.ctx.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	cfg := &types.Config{
		Importer:  importerFunc(func(p string) (*types.Package, error) { return ld.importPkg(p) }),
		GoVersion: ld.goVer,
		Error: func(err error) {
			ld.typeErrs = append(ld.typeErrs, err)
		},
	}
	tpkg, _ := cfg.Check(path, ld.ctx.Fset, files, info)
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.byPath[path] = pkg
	return pkg, nil
}

func (ld *loader) importPkg(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		pkg, err := ld.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.ctx.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
