package analysis

import (
	"go/ast"
	"go/types"
)

// DefaultDeterminismPackages is the set of import paths whose non-test
// code must stay bit-deterministic: the simulator stack plus the
// experiment pipeline that renders the paper's tables. The
// reproducibility bar is METICULOUS-style — the same binary at any
// worker count must emit byte-identical tables — so wall-clock reads,
// the global (unseeded) math/rand source, and map iteration order are
// all banned here. corpus and costmodel are included because their
// generators feed the Fig. 8 and §3 tables.
var DefaultDeterminismPackages = []string{
	"xfm/internal/dram",
	"xfm/internal/memctrl",
	"xfm/internal/nma",
	"xfm/internal/sfm",
	"xfm/internal/xfm",
	"xfm/internal/experiments",
	"xfm/internal/workload",
	"xfm/internal/corpus",
	"xfm/internal/costmodel",
	// The fault plane and the chaos gate promise bit-reproducible runs
	// for a fixed spec and seed, the same bar as the simulator stack.
	"xfm/internal/fault",
	"xfm/internal/chaos",
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the process-global, unseeded source. Constructors (New,
// NewSource, NewZipf) are exempt: routing randomness through an
// explicitly seeded *rand.Rand is the sanctioned fix.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// wallClockFuncs are the time package functions that read the wall
// clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// determinismRule flags nondeterminism sources in the simulator
// packages: time.Now/Since/Until, global math/rand draws, and range
// statements over maps (whose iteration order changes run to run). Map
// ranges whose results are order-insensitive (commutative sums) or
// sorted before use carry an //xfm:ignore with that justification.
type determinismRule struct {
	pkgs map[string]bool
}

// NewDeterminismRule returns the sim-determinism rule covering the
// given import paths, defaulting to DefaultDeterminismPackages.
func NewDeterminismRule(pkgs ...string) Rule {
	if len(pkgs) == 0 {
		pkgs = DefaultDeterminismPackages
	}
	m := map[string]bool{}
	for _, p := range pkgs {
		m[p] = true
	}
	return determinismRule{pkgs: m}
}

func (determinismRule) Name() string { return RuleDeterminism }

func (r determinismRule) Check(p *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range p.Packages {
		if !r.pkgs[pkg.Path] {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					// Any mention of a banned function is flagged — not
					// just call sites — so `f := time.Now; f()` cannot
					// smuggle a wall-clock read past the gate.
					fn, ok := pkg.Info.Uses[n.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
						return true
					}
					switch fn.Pkg().Path() {
					case "time":
						if wallClockFuncs[fn.Name()] {
							out = append(out, p.diag(n.Pos(), RuleDeterminism,
								"time.%s reads the wall clock; simulator output must be a pure function of its inputs",
								fn.Name()))
						}
					case "math/rand", "math/rand/v2":
						if globalRandFuncs[fn.Name()] {
							out = append(out, p.diag(n.Pos(), RuleDeterminism,
								"rand.%s draws from the global unseeded source; use rand.New(rand.NewSource(seed))",
								fn.Name()))
						}
					}
				case *ast.RangeStmt:
					tv, ok := pkg.Info.Types[n.X]
					if !ok {
						return true
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						out = append(out, p.diag(n.Pos(), RuleDeterminism,
							"range over a map iterates in nondeterministic order; iterate sorted keys instead"))
					}
				}
				return true
			})
		}
	}
	return out
}
