package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderRule detects potential deadlocks: two mutexes acquired in
// opposite orders on different code paths. Locks are identified the
// atomic-field way — by the canonical struct field (or package-level
// variable) of type sync.Mutex/RWMutex, not by instance — so
// `shardA.mu` and `shardB.mu` are one lock class and an AB/BA inversion
// between two *classes* is reported wherever the two paths live, even
// in different packages.
//
// Per function, a linear position-ordered scan (the guardedby bar:
// deliberately simpler than a CFG lockset analysis) tracks the held
// set: `m.Lock()`/`m.RLock()` acquires, `m.Unlock()`/`m.RUnlock()`
// releases, and a deferred unlock holds to the end of the function.
// Acquiring B while holding A records the edge A→B; calling a function
// that (transitively, through the call graph) acquires B while holding
// A records the same edge with the call chain as its witness. Any
// cycle in the resulting module-wide acquisition-order graph — AB/BA,
// longer rings, or re-acquiring a held class — is reported once, with
// a witness chain for every edge of the cycle.
//
// RLock is treated like Lock: two readers cannot deadlock each other,
// but an RLock/Lock inversion with a writer in between can, and the
// acquisition order is what the rule certifies.
type lockOrderRule struct{}

// NewLockOrderRule returns the lock-order rule.
func NewLockOrderRule() Rule { return lockOrderRule{} }

func (lockOrderRule) Name() string { return RuleLockOrder }

// lockOp is one mutex operation or outgoing call, in source order.
type lockOp struct {
	pos     token.Pos
	acquire *types.Var // set for Lock/RLock
	release *types.Var // set for Unlock/RUnlock (nil when deferred)
	call    *CallEdge  // set for a module-local call
}

// lockAcq is one (transitively) acquirable lock class of a function:
// the chain records the callee path from the function to the acquiring
// body, empty for a direct acquisition.
type lockAcq struct {
	key   *types.Var
	pos   token.Pos
	chain []*FuncNode
}

// acqSet is an insertion-ordered set of lock acquisitions, so the
// fixpoint and edge passes iterate deterministically.
type acqSet struct {
	byKey map[*types.Var]int
	list  []lockAcq
}

func (s *acqSet) add(a lockAcq) bool {
	if s.byKey == nil {
		s.byKey = map[*types.Var]int{}
	}
	if _, ok := s.byKey[a.key]; ok {
		return false
	}
	s.byKey[a.key] = len(s.list)
	s.list = append(s.list, a)
	return true
}

// lockEdgeWitness records how one ordered pair (from held, to
// acquired) arises: the function holding `from`, where it acquired it,
// and either the direct second acquisition or the call chain that
// performs it.
type lockEdgeWitness struct {
	holder  *FuncNode
	heldPos token.Pos
	site    token.Pos // the second Lock, or the call that leads to it
	chain   []*FuncNode
	acqPos  token.Pos
}

func (lockOrderRule) Check(p *Program) []Diagnostic {
	g := p.CallGraph()
	nodes := g.SortedNodes()

	keyNames := map[*types.Var]string{}
	ops := map[*FuncNode][]lockOp{}
	for _, node := range nodes {
		ops[node] = scanLockOps(node, keyNames)
	}

	// Fixpoint: every lock class a function can acquire, directly or
	// through any callee.
	acqs := map[*FuncNode]*acqSet{}
	for _, node := range nodes {
		set := &acqSet{}
		for _, op := range ops[node] {
			if op.acquire != nil {
				set.add(lockAcq{key: op.acquire, pos: op.pos})
			}
		}
		acqs[node] = set
	}
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			set := acqs[node]
			for _, edge := range node.Calls {
				callee := acqs[edge.Callee]
				if callee == nil {
					continue
				}
				for _, a := range callee.list {
					if set.add(lockAcq{
						key:   a.key,
						pos:   a.pos,
						chain: append([]*FuncNode{edge.Callee}, a.chain...),
					}) {
						changed = true
					}
				}
			}
		}
	}

	// Edge pass: replay each function with a held set.
	edges := map[[2]*types.Var]lockEdgeWitness{}
	addEdge := func(k [2]*types.Var, w lockEdgeWitness) {
		if _, ok := edges[k]; !ok {
			edges[k] = w
		}
	}
	type heldLock struct {
		key *types.Var
		pos token.Pos
	}
	for _, node := range nodes {
		var held []heldLock
		for _, op := range ops[node] {
			switch {
			case op.acquire != nil:
				for _, h := range held {
					addEdge([2]*types.Var{h.key, op.acquire}, lockEdgeWitness{
						holder: node, heldPos: h.pos, site: op.pos, acqPos: op.pos,
					})
				}
				held = append(held, heldLock{key: op.acquire, pos: op.pos})
			case op.release != nil:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].key == op.release {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case op.call != nil:
				if len(held) == 0 {
					continue
				}
				callee := acqs[op.call.Callee]
				for _, a := range callee.list {
					for _, h := range held {
						addEdge([2]*types.Var{h.key, a.key}, lockEdgeWitness{
							holder: node, heldPos: h.pos, site: op.pos,
							chain:  append([]*FuncNode{op.call.Callee}, a.chain...),
							acqPos: a.pos,
						})
					}
				}
			}
		}
	}

	return lockCycleDiags(p, edges, keyNames)
}

// scanLockOps walks one function body in source order, resolving every
// sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock to its canonical lock
// class and interleaving the node's call-graph edges by position.
func scanLockOps(node *FuncNode, keyNames map[*types.Var]string) []lockOp {
	pkg := node.Pkg
	// Deferred unlocks hold to function end: collect them first.
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call != nil {
			deferred[d.Call] = true
		}
		return true
	})
	var out []lockOp
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
		default:
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		mu := resolveMutexVar(pkg, sel.X)
		if mu == nil {
			return true
		}
		recordLockKeyName(pkg, sel.X, mu, keyNames)
		op := lockOp{pos: call.Pos()}
		if acquire {
			op.acquire = mu
		} else {
			if deferred[call] {
				return true // holds to function end
			}
			op.release = mu
		}
		out = append(out, op)
		return true
	})
	for i := range node.Calls {
		out = append(out, lockOp{pos: node.Calls[i].Pos, call: &node.Calls[i]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// resolveMutexVar resolves the receiver expression of a Lock/Unlock
// call to the mutex's canonical variable: a struct field, a package
// variable, or a local.
func resolveMutexVar(pkg *Package, expr ast.Expr) *types.Var {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if v := fieldOf(pkg, e); v != nil && isMutexType(v.Type()) {
			return v
		}
		// Qualified package variable: pkg.Mu.Lock().
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && isMutexType(v.Type()) {
			return v
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && isMutexType(v.Type()) {
			return v
		}
	}
	return nil
}

// recordLockKeyName renders the canonical display name for a lock
// class the first time it is seen: "pkg.Struct.field" for fields,
// "pkg.var" otherwise.
func recordLockKeyName(pkg *Package, expr ast.Expr, mu *types.Var, names map[*types.Var]string) {
	if _, ok := names[mu]; ok {
		return
	}
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok && mu.IsField() {
		if s, ok := pkg.Info.Selections[sel]; ok {
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				names[mu] = named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + mu.Name()
				return
			}
		}
	}
	if mu.Pkg() != nil {
		names[mu] = mu.Pkg().Name() + "." + mu.Name()
		return
	}
	names[mu] = mu.Name()
}

// lockCycleDiags finds cycles in the acquisition-order graph and
// renders one diagnostic per cycle with every edge's witness chain.
func lockCycleDiags(p *Program, edges map[[2]*types.Var]lockEdgeWitness,
	keyNames map[*types.Var]string) []Diagnostic {
	name := func(v *types.Var) string {
		if n, ok := keyNames[v]; ok {
			return n
		}
		return v.Name()
	}
	// Deterministic adjacency, nodes and successors sorted by name.
	adj := map[*types.Var][]*types.Var{}
	nodeSet := map[*types.Var]bool{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
		nodeSet[k[0]], nodeSet[k[1]] = true, true
	}
	var nodes []*types.Var
	for v := range nodeSet {
		nodes = append(nodes, v)
	}
	byName := func(s []*types.Var) {
		sort.Slice(s, func(i, j int) bool { return name(s[i]) < name(s[j]) })
	}
	byName(nodes)
	for _, v := range nodes {
		byName(adj[v])
	}

	sccs := tarjanSCC(nodes, adj)
	var out []Diagnostic
	for _, scc := range sccs {
		inSCC := map[*types.Var]bool{}
		for _, v := range scc {
			inSCC[v] = true
		}
		var cycEdges [][2]*types.Var
		for _, from := range scc {
			for _, to := range adj[from] {
				if inSCC[to] {
					if _, ok := edges[[2]*types.Var{from, to}]; ok {
						cycEdges = append(cycEdges, [2]*types.Var{from, to})
					}
				}
			}
		}
		if len(scc) == 1 && len(cycEdges) == 0 {
			continue // no self-edge: not a cycle
		}
		var witness []string
		anchor := token.Pos(0)
		for _, e := range cycEdges {
			w := edges[e]
			if anchor == 0 || w.site < anchor {
				anchor = w.site
			}
			witness = append(witness, renderLockWitness(p, e, w, name))
		}
		var names []string
		for _, v := range scc {
			names = append(names, name(v))
		}
		var msg string
		if len(scc) == 1 {
			msg = fmt.Sprintf("potential deadlock: %s acquired while an instance is already held", names[0])
		} else {
			msg = fmt.Sprintf("potential deadlock: lock-order cycle %s → %s",
				strings.Join(names, " → "), names[0])
		}
		d := p.diag(anchor, RuleLockOrder, "%s", msg)
		d.Witness = witness
		out = append(out, d)
	}
	return out
}

func renderLockWitness(p *Program, e [2]*types.Var, w lockEdgeWitness,
	name func(*types.Var) string) string {
	from, to := name(e[0]), name(e[1])
	if len(w.chain) == 0 {
		return fmt.Sprintf("%s → %s: %s holds %s (acquired at %s) and acquires %s at %s",
			from, to, w.holder.Name(), from, p.posString(w.heldPos), to, p.posString(w.site))
	}
	hops := make([]string, len(w.chain))
	for i, n := range w.chain {
		hops[i] = n.Name()
	}
	return fmt.Sprintf("%s → %s: %s holds %s (acquired at %s) and calls %s at %s, which acquires %s at %s",
		from, to, w.holder.Name(), from, p.posString(w.heldPos),
		strings.Join(hops, " → "), p.posString(w.site), to, p.posString(w.acqPos))
}

// tarjanSCC returns the strongly connected components of the
// acquisition graph, in deterministic (sorted-root) order.
func tarjanSCC(nodes []*types.Var, adj map[*types.Var][]*types.Var) [][]*types.Var {
	index := map[*types.Var]int{}
	low := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0

	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*types.Var
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
