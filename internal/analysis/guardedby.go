package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// guardedByRule enforces //xfm:guardedby annotations: a field marked
// `//xfm:guardedby mu` may only be read or written in a function that
// has already called <base>.mu.Lock() (or RLock()) on the same base
// expression earlier in its body. This is the ShardedBackend
// invariant: shard.b is only touched between shard.mu.Lock/Unlock.
//
// The check is intraprocedural and position-ordered, not a full
// lockset analysis: it demands a textually-preceding Lock on a
// syntactically identical base path ("sh", "s.shards[si]"), and it
// does not model Unlock, branches, or lock helpers. That bar is
// deliberately simple — it catches the realistic mistake (a new method
// touching a shard field with no locking at all) while staying
// predictable; the rare legitimate exception (constructors before the
// value escapes) carries an //xfm:ignore with its reason.
type guardedByRule struct{}

// NewGuardedByRule returns the guardedby rule.
func NewGuardedByRule() Rule { return guardedByRule{} }

func (guardedByRule) Name() string { return RuleGuardedBy }

type lockEvent struct {
	mu   *types.Var
	base string
	pos  token.Pos
}

func (guardedByRule) Check(p *Program) []Diagnostic {
	if len(p.guards) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkGuardedFunc(p, pkg, fd)...)
			}
		}
	}
	return out
}

func checkGuardedFunc(p *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	// Pass 1: collect Lock/RLock calls on any guard mutex.
	var locks []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		mu := fieldOf(pkg, muSel)
		if mu == nil || !isGuardMutex(p, mu) {
			return true
		}
		if base, ok := exprPath(muSel.X); ok {
			locks = append(locks, lockEvent{mu: mu, base: base, pos: call.Pos()})
		}
		return true
	})
	// Pass 2: every access to a guarded field needs a preceding Lock of
	// its mutex on the same base.
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fld := fieldOf(pkg, sel)
		if fld == nil {
			return true
		}
		g, guarded := p.guards[fld]
		if !guarded {
			return true
		}
		base, renderable := exprPath(sel.X)
		if renderable {
			for _, l := range locks {
				if l.mu == g.Mu && l.base == base && l.pos < sel.Pos() {
					return true
				}
			}
		}
		out = append(out, p.diag(sel.Sel.Pos(), RuleGuardedBy,
			"field %s is guarded by %q but no preceding %s.%s.Lock() in %s",
			fieldFullName(pkg, sel, fld), g.MuName, baseOr(base, renderable), g.MuName, funcName(fd)))
		return true
	})
	return out
}

func baseOr(base string, ok bool) string {
	if !ok || base == "" {
		return "<base>"
	}
	return base
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if s, ok := exprPath(t); ok {
			return s + "." + fd.Name.Name
		}
		if st, ok := t.(*ast.StarExpr); ok {
			if s, ok := exprPath(st.X); ok {
				return "(*" + s + ")." + fd.Name.Name
			}
		}
	}
	return fd.Name.Name
}

// isGuardMutex reports whether mu is the mutex of any guard.
func isGuardMutex(p *Program, mu *types.Var) bool {
	for _, g := range p.guards {
		if g.Mu == mu {
			return true
		}
	}
	return false
}

// exprPath renders a side-effect-free access path (identifiers,
// selectors, indexes, derefs) to a canonical string so two mentions of
// the same lvalue compare equal. Expressions containing calls or
// literals are not renderable.
func exprPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		x, ok := exprPath(e.X)
		if !ok {
			return "", false
		}
		return x + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		x, ok := exprPath(e.X)
		if !ok {
			return "", false
		}
		idx, ok := indexPath(e.Index)
		if !ok {
			return "", false
		}
		return x + "[" + idx + "]", true
	case *ast.ParenExpr:
		return exprPath(e.X)
	case *ast.StarExpr:
		x, ok := exprPath(e.X)
		if !ok {
			return "", false
		}
		return "*" + x, true
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			x, ok := exprPath(e.X)
			if !ok {
				return "", false
			}
			return "&" + x, true
		}
	}
	return "", false
}

func indexPath(e ast.Expr) (string, bool) {
	if s, ok := exprPath(e); ok {
		return s, true
	}
	if lit, ok := e.(*ast.BasicLit); ok {
		return lit.Value, true
	}
	return "", false
}
