package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Rule names, used in diagnostics and //xfm:ignore directives.
const (
	RuleAtomicField       = "atomic-field"
	RuleGuardedBy         = "guardedby"
	RuleHotpathAlloc      = "hotpath-alloc"
	RuleDeterminism       = "sim-determinism"
	RuleDirective         = "directive"
	RuleLockOrder         = "lock-order"
	RuleTelemetryContract = "telemetry-contract"
)

// KnownRules lists every rule an //xfm:ignore directive may name.
var KnownRules = []string{
	RuleAtomicField, RuleGuardedBy, RuleHotpathAlloc, RuleDeterminism, RuleDirective,
	RuleLockOrder, RuleTelemetryContract,
}

func knownRule(name string) bool {
	for _, r := range KnownRules {
		if r == name {
			return true
		}
	}
	return false
}

// Diagnostic is one finding at a source position. File is relative to
// the module root so output is stable across checkouts. Interprocedural
// findings carry a Witness: the full call or acquisition chain, one
// rendered hop per line, proving how the violation is reached.
type Diagnostic struct {
	File           string   `json:"file"`
	Line           int      `json:"line"`
	Col            int      `json:"col"`
	Rule           string   `json:"rule"`
	Message        string   `json:"message"`
	Witness        []string `json:"witness,omitempty"`
	Suppressed     bool     `json:"suppressed,omitempty"`
	SuppressReason string   `json:"suppress_reason,omitempty"`
}

// String renders the go-vet-style "file:line:col: rule: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Rule is one domain check run over the whole program. Rules see every
// loaded package at once because several invariants are cross-package
// (a field made atomic in one package must stay atomic in all).
type Rule interface {
	Name() string
	Check(p *Program) []Diagnostic
}

// DefaultRules returns the full xfmlint rule set with this module's
// default configuration.
func DefaultRules() []Rule {
	return []Rule{
		NewDirectiveRule(),
		NewAtomicFieldRule(),
		NewGuardedByRule(),
		NewHotpathAllocRule(),
		NewDeterminismRule(),
		NewLockOrderRule(),
		NewTelemetryContractRule(),
	}
}

// SelectRules filters rules down to the comma-separated names in spec
// (the CLI's -rules flag). An empty spec selects everything; an
// unknown name is an error so a typo cannot silently skip a gate.
func SelectRules(rules []Rule, spec string) ([]Rule, error) {
	if spec == "" {
		return rules, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !knownRule(name) {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(KnownRules, ", "))
		}
		want[name] = true
	}
	var out []Rule
	for _, r := range rules {
		if want[r.Name()] {
			out = append(out, r)
		}
	}
	return out, nil
}

// suppression is one parsed //xfm:ignore directive. It covers
// diagnostics of Rule on its own line and on the following line (so it
// works both as a trailing comment and as a standalone comment above
// the offending statement).
type suppression struct {
	file   string
	line   int
	rule   string
	reason string
}

// relFile renders pos's filename relative to the module root.
func (p *Program) relFile(pos token.Pos) string {
	file := p.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(p.ModDir, file); err == nil && !filepath.IsAbs(rel) {
		file = filepath.ToSlash(rel)
	}
	return file
}

// diag builds a Diagnostic at pos with the file path relative to the
// module root.
func (p *Program) diag(pos token.Pos, rule, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		File:    p.relFile(pos),
		Line:    position.Line,
		Col:     position.Column,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
}

// Run executes rules over the program, applies //xfm:ignore
// suppressions, and returns all diagnostics sorted by position.
// Suppressed diagnostics are returned with Suppressed set so callers
// can audit them; Unsuppressed filters them out.
func (p *Program) Run(rules []Rule) []Diagnostic {
	var out []Diagnostic
	for _, r := range rules {
		out = append(out, r.Check(p)...)
	}
	for i := range out {
		if s := p.suppressionFor(out[i]); s != nil {
			out[i].Suppressed = true
			out[i].SuppressReason = s.reason
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

func (p *Program) suppressionFor(d Diagnostic) *suppression {
	// Directive diagnostics cannot be suppressed: a broken directive
	// must be fixed, or the suppression mechanism itself rots.
	if d.Rule == RuleDirective {
		return nil
	}
	for i := range p.suppressions {
		s := &p.suppressions[i]
		if s.rule == d.Rule && s.file == d.File && (s.line == d.Line || s.line == d.Line-1) {
			return s
		}
	}
	return nil
}

// Unsuppressed filters a diagnostic list down to the findings that
// still gate CI.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	out := diags[:0:0]
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteText prints diagnostics one per line in vet style.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// WriteTextWitness prints diagnostics in vet style with each witness
// chain hop on its own indented line below its finding.
func WriteTextWitness(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
		for _, hop := range d.Witness {
			fmt.Fprintf(w, "\t%s\n", hop)
		}
	}
}

// WriteJSON prints diagnostics as a JSON array (always an array, never
// null, so downstream tooling can `jq length` it).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
