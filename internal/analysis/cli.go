package analysis

import (
	"flag"
	"fmt"
	"io"
)

// CLIMain is the xfmlint entry point, factored out of cmd/xfmlint so
// the unit tests can prove the CI gate exits non-zero on a seeded
// violation. Exit codes: 0 clean, 1 unsuppressed diagnostics, 2 usage
// or load/type-check failure.
func CLIMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xfmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed diagnostics (text mode)")
	witness := fs.Bool("witness", false, "print each finding's witness chain, one indented hop per line (text mode)")
	rulesSpec := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	dir := fs.String("C", ".", "directory to lint from (module root is found above it)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: xfmlint [-json] [-show-suppressed] [-witness] [-rules r1,r2] [-C dir] [patterns...]\n")
		fmt.Fprintf(stderr, "default pattern is ./...; rules: %v\n", KnownRules)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rules, err := SelectRules(DefaultRules(), *rulesSpec)
	if err != nil {
		fmt.Fprintf(stderr, "xfmlint: %v\n", err)
		return 2
	}
	prog, err := NewContext().Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "xfmlint: %v\n", err)
		return 2
	}
	diags := prog.Run(rules)
	active := Unsuppressed(diags)
	if *jsonOut {
		// JSON output carries every diagnostic, suppressed included,
		// and every witness chain, so the CI artifact is a full audit
		// trail.
		if err := WriteJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "xfmlint: %v\n", err)
			return 2
		}
	} else {
		shown := active
		if *showSuppressed {
			shown = diags
		}
		if *witness {
			WriteTextWitness(stdout, shown)
		} else {
			WriteText(stdout, shown)
		}
	}
	fmt.Fprintf(stderr, "xfmlint: %d packages, %d diagnostics (%d suppressed)\n",
		len(prog.Packages), len(active), len(diags)-len(active))
	if len(active) > 0 {
		return 1
	}
	return 0
}
