package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotpathTransitive drives the interprocedural rule over interfix:
// clean root bodies, allocations one and two hops down, one behind an
// interface dispatch, and an //xfm:allocok subtree the walk must not
// enter.
func TestHotpathTransitive(t *testing.T) {
	diags := loadFixture(t, "interfix", []Rule{NewHotpathAllocRule()})
	checkAgainstMarkers(t, "interfix", diags)
	byFile := map[string]Diagnostic{}
	for _, d := range diags {
		byFile[d.File] = d
	}
	deep := byFile["interfix.go"]
	if !strings.Contains(deep.Message, "via call chain interfix.Hot → interfix.helper → interfix.deeper") {
		t.Errorf("transitive finding should carry the full chain, got: %s", deep.Message)
	}
	if len(deep.Witness) == 0 ||
		!strings.Contains(deep.Witness[len(deep.Witness)-1], "map literal allocates at interfix.go:") {
		t.Errorf("witness should end at the allocation site, got: %v", deep.Witness)
	}
	iface := byFile["dep/dep.go"]
	if !strings.Contains(iface.Message, "interfix.HotIface → dep.*MapSink.Put") {
		t.Errorf("interface dispatch should resolve to MapSink, got: %s", iface.Message)
	}
	found := false
	for _, hop := range iface.Witness {
		if strings.Contains(hop, "via interface dep.Sink.Put") {
			found = true
		}
	}
	if !found {
		t.Errorf("witness should annotate the interface edge, got: %v", iface.Witness)
	}
}

// TestShallowRuleMissesTransitiveChain is the regression proof the
// issue demands: the PR 4 intraprocedural semantics (shallow mode)
// report nothing on interfix, while the want markers above show the
// interprocedural rule catches the hotpath → helper → alloc chains.
func TestShallowRuleMissesTransitiveChain(t *testing.T) {
	diags := loadFixture(t, "interfix", []Rule{hotpathAllocRule{shallow: true}})
	if len(diags) != 0 {
		t.Errorf("shallow rule should miss every transitive chain, got: %v", diags)
	}
}

// TestLockOrderRule drives lockfix: package one takes A then B,
// package two takes B then reaches A through a helper, and the rule
// must report the cycle once with a witness chain for each direction.
func TestLockOrderRule(t *testing.T) {
	diags := loadFixture(t, "lockfix", []Rule{NewLockOrderRule()})
	checkAgainstMarkers(t, "lockfix", diags)
	if len(diags) != 1 {
		t.Fatalf("want exactly one cycle diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "potential deadlock: lock-order cycle") {
		t.Errorf("message should name the cycle, got: %s", d.Message)
	}
	if len(d.Witness) != 2 {
		t.Fatalf("want one witness per cycle edge, got %d: %v", len(d.Witness), d.Witness)
	}
	joined := strings.Join(d.Witness, "\n")
	for _, want := range []string{
		"one.TakeAB holds core.Pair.A",
		"acquires core.Pair.B",
		"two.TakeBA holds core.Pair.B",
		"calls two.grabA",
		"acquires core.Pair.A",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("witness missing %q:\n%s", want, joined)
		}
	}
}

// TestTelemetryContractRule drives telfix: one violation per clause —
// unlisted registration, duplicate name, convention violation,
// computed name, ghost requirement — plus the DESIGN.md stale entry,
// which cannot carry a Go want marker and is asserted explicitly.
func TestTelemetryContractRule(t *testing.T) {
	diags := loadFixture(t, "telfix", []Rule{NewTelemetryContractRule()})
	var goDiags, mdDiags []Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(d.File, ".go") {
			goDiags = append(goDiags, d)
		} else {
			mdDiags = append(mdDiags, d)
		}
	}
	checkAgainstMarkers(t, "telfix", goDiags)
	if len(mdDiags) != 1 || mdDiags[0].File != "DESIGN.md" ||
		!strings.Contains(mdDiags[0].Message, "xfm_stale_total") {
		t.Errorf("want one stale-entry finding against DESIGN.md, got: %v", mdDiags)
	}
	var seen []string
	for _, d := range goDiags {
		seen = append(seen, d.Message)
	}
	all := strings.Join(seen, "\n")
	for _, want := range []string{
		"missing from the DESIGN §7 metric catalogue",
		"already registered at",
		"violates the naming convention",
		"not a compile-time string constant",
		"ghost requirement",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("no finding for clause %q in:\n%s", want, all)
		}
	}
}

// TestTelemetryContractBothDirections mutates nothing on disk: it
// re-checks that removing a registration (telfix's stale entry) and
// requiring an unregistered name (telfix's ghost entry) each produce a
// finding, i.e. the cross-check runs in both directions.
func TestTelemetryContractBothDirections(t *testing.T) {
	diags := loadFixture(t, "telfix", []Rule{NewTelemetryContractRule()})
	var staleDir, ghostDir bool
	for _, d := range diags {
		if strings.Contains(d.Message, "stale entry") {
			staleDir = true // catalogue → registrations
		}
		if strings.Contains(d.Message, "ghost requirement") {
			ghostDir = true // required list → registrations
		}
	}
	if !staleDir {
		t.Error("catalogue entry without a registration must be a finding")
	}
	if !ghostDir {
		t.Error("required metric without a registration must be a finding")
	}
}

func TestSelectRules(t *testing.T) {
	all := DefaultRules()
	got, err := SelectRules(all, "lock-order,hotpath-alloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 rules, got %d", len(got))
	}
	if _, err := SelectRules(all, "no-such-rule"); err == nil {
		t.Error("unknown rule name must error, not silently skip")
	}
	if got, err := SelectRules(all, ""); err != nil || len(got) != len(all) {
		t.Errorf("empty spec selects everything: %v, %d rules", err, len(got))
	}
}

// TestCLILockOrderGate is the CI-gate proof for the new rule: xfmlint
// over the lockfix fixture exits 1, and -rules/-witness behave.
func TestCLILockOrderGate(t *testing.T) {
	var stdout, stderr strings.Builder
	code := CLIMain([]string{"-rules", "lock-order", "-witness",
		"-C", filepath.Join("testdata", "src", "lockfix")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "potential deadlock") {
		t.Errorf("stdout should report the cycle:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "\tcore.Pair.") {
		t.Errorf("-witness should print indented witness hops:\n%s", stdout.String())
	}

	// The same tree is clean under every other rule: -rules filters.
	stdout.Reset()
	stderr.Reset()
	code = CLIMain([]string{"-rules", "hotpath-alloc,atomic-field",
		"-C", filepath.Join("testdata", "src", "lockfix")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 with lock-order filtered out\nstdout:\n%s",
			code, stdout.String())
	}

	// Unknown rule names are usage errors.
	if code := CLIMain([]string{"-rules", "bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown -rules name: exit code = %d, want 2", code)
	}
}

// TestCLIJSONWitness: the JSON artifact carries witness chains so the
// CI upload is a self-contained audit trail.
func TestCLIJSONWitness(t *testing.T) {
	var stdout, stderr strings.Builder
	code := CLIMain([]string{"-json", "-C", filepath.Join("testdata", "src", "lockfix")},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal([]byte(stdout.String()), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 || len(diags[0].Witness) != 2 {
		t.Fatalf("want one diagnostic with two witness hops, got: %+v", diags)
	}
}
