package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedCtx returns the one Context all fixture tests share, so the
// standard library is source-imported and type-checked once instead of
// once per test (each stdlib load costs a couple of seconds).
var sharedCtx = sync.OnceValue(NewContext)

// loadFixture type-checks one testdata module and runs rules over it.
func loadFixture(t *testing.T, fixture string, rules []Rule) []Diagnostic {
	t.Helper()
	prog, err := sharedCtx().Load(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	return prog.Run(rules)
}

var wantRe = regexp.MustCompile(`// want ([a-z-]+)`)

// wantMarkers scans a fixture module for `// want <rule>` comments and
// returns the expected "file:line:rule" set (files relative to the
// fixture's module root, matching Diagnostic.File).
func wantMarkers(t *testing.T, fixture string) map[string]int {
	t.Helper()
	root := filepath.Join("testdata", "src", fixture)
	want := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := filepath.ToSlash(rel) + ":" + itoa(i+1) + ":" + m[1]
				want[key]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan %s: %v", root, err)
	}
	return want
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// checkAgainstMarkers compares diagnostics to the fixture's want
// markers exactly: every marker must be hit and nothing else reported.
func checkAgainstMarkers(t *testing.T, fixture string, diags []Diagnostic) {
	t.Helper()
	want := wantMarkers(t, fixture)
	got := map[string]int{}
	for _, d := range diags {
		got[d.File+":"+itoa(d.Line)+":"+d.Rule]++
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] != got[k] {
			t.Errorf("%s: want %d diagnostics at %s, got %d", fixture, want[k], k, got[k])
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("  got: %s", d)
		}
	}
}

func TestAtomicFieldRule(t *testing.T) {
	diags := loadFixture(t, "atomicfix", []Rule{NewAtomicFieldRule()})
	checkAgainstMarkers(t, "atomicfix", diags)
	for _, d := range diags {
		if !strings.Contains(d.Message, "Counter.n") {
			t.Errorf("diagnostic should name the field Counter.n: %s", d)
		}
		if !strings.Contains(d.Message, "atomicfix.go:") {
			t.Errorf("diagnostic should cite the first atomic use site: %s", d)
		}
	}
}

func TestGuardedByRule(t *testing.T) {
	diags := loadFixture(t, "guardfix", []Rule{NewGuardedByRule()})
	checkAgainstMarkers(t, "guardfix", diags)
	for _, d := range diags {
		if !strings.Contains(d.Message, `guarded by "mu"`) {
			t.Errorf("diagnostic should name the guarding mutex: %s", d)
		}
	}
}

func TestHotpathAllocRule(t *testing.T) {
	diags := loadFixture(t, "hotfix", []Rule{NewHotpathAllocRule()})
	checkAgainstMarkers(t, "hotfix", diags)
	for _, d := range diags {
		if !strings.Contains(d.Message, "Describe") {
			t.Errorf("every seeded violation lives in Describe: %s", d)
		}
	}
}

func TestDeterminismRule(t *testing.T) {
	// The rule is configured for the fixture's sim package only; the
	// wall-clock read in detfix/other must stay silent.
	diags := loadFixture(t, "detfix", []Rule{NewDeterminismRule("detfix/sim")})
	checkAgainstMarkers(t, "detfix", diags)
	for _, d := range diags {
		if strings.HasPrefix(d.File, "other/") {
			t.Errorf("package other is outside the covered set: %s", d)
		}
	}
}

// TestDeterminismDefaultPackages pins the covered set: removing a
// simulator package from the list must be a reviewed, deliberate act.
func TestDeterminismDefaultPackages(t *testing.T) {
	want := []string{
		"xfm/internal/chaos", "xfm/internal/corpus", "xfm/internal/costmodel",
		"xfm/internal/dram", "xfm/internal/experiments", "xfm/internal/fault",
		"xfm/internal/memctrl", "xfm/internal/nma", "xfm/internal/sfm",
		"xfm/internal/workload", "xfm/internal/xfm",
	}
	got := append([]string(nil), DefaultDeterminismPackages...)
	sort.Strings(got)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("DefaultDeterminismPackages = %v, want %v", got, want)
	}
}

func TestSuppressions(t *testing.T) {
	rules := []Rule{
		NewDirectiveRule(), NewAtomicFieldRule(), NewGuardedByRule(),
		NewHotpathAllocRule(), NewDeterminismRule("suppressfix"),
	}
	diags := loadFixture(t, "suppressfix", rules)
	if len(diags) != 4 {
		t.Fatalf("want 4 suppressed diagnostics (one per rule), got %d: %v", len(diags), diags)
	}
	rulesSeen := map[string]bool{}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("diagnostic escaped its //xfm:ignore: %s", d)
		}
		if d.SuppressReason == "" {
			t.Errorf("suppression must carry a reason: %s", d)
		}
		rulesSeen[d.Rule] = true
	}
	for _, r := range []string{RuleAtomicField, RuleGuardedBy, RuleHotpathAlloc, RuleDeterminism} {
		if !rulesSeen[r] {
			t.Errorf("fixture should exercise a suppressed %s violation", r)
		}
	}
	if got := Unsuppressed(diags); len(got) != 0 {
		t.Errorf("Unsuppressed should filter everything out, got %v", got)
	}
}

// TestTreeIsClean is the local mirror of the CI gate: the real module
// must have zero unsuppressed diagnostics under the default rule set.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	prog, err := sharedCtx().Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := prog.Run(DefaultRules())
	for _, d := range Unsuppressed(diags) {
		t.Errorf("unsuppressed: %s", d)
	}
	for _, d := range diags {
		if d.Suppressed && d.SuppressReason == "" {
			t.Errorf("suppression without reason: %s", d)
		}
	}
}
