package analysis

import (
	"go/ast"
	"go/types"
)

// atomicFieldRule enforces the PR 2 race-class invariant: once any
// code passes &s.f to a sync/atomic function, every other access to
// that field anywhere in the module must also go through sync/atomic.
// A single plain load next to an atomic store is exactly the data race
// the telemetry counters were rewritten to avoid; the compiler accepts
// it and -race only catches it when a test happens to interleave.
//
// The rule is cross-package: the atomic-use set is collected over the
// whole program first, then every selector access is checked against
// it. Struct-literal keys are not flagged (construction happens before
// the value is shared); if a constructor really does race, -race is
// the net underneath this rule.
type atomicFieldRule struct{}

// NewAtomicFieldRule returns the atomic-field rule.
func NewAtomicFieldRule() Rule { return atomicFieldRule{} }

func (atomicFieldRule) Name() string { return RuleAtomicField }

func (atomicFieldRule) Check(p *Program) []Diagnostic {
	type firstUse struct {
		file string
		line int
	}
	atomicFields := map[*types.Var]firstUse{}
	// Selectors appearing as the &addr operand of a sync/atomic call
	// are the sanctioned accesses.
	sanctioned := map[*ast.SelectorExpr]bool{}

	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				un, ok := call.Args[0].(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					return true
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fld := fieldOf(pkg, sel)
				if fld == nil {
					return true
				}
				sanctioned[sel] = true
				if _, seen := atomicFields[fld]; !seen {
					pos := p.Fset.Position(sel.Pos())
					atomicFields[fld] = firstUse{file: p.relFile(sel.Pos()), line: pos.Line}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	var out []Diagnostic
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fld := fieldOf(pkg, sel)
				if fld == nil {
					return true
				}
				use, isAtomic := atomicFields[fld]
				if !isAtomic {
					return true
				}
				out = append(out, p.diag(sel.Sel.Pos(), RuleAtomicField,
					"field %s is accessed with sync/atomic at %s:%d; this plain access races with it",
					fieldFullName(pkg, sel, fld), use.file, use.line))
				return true
			})
		}
	}
	return out
}

// calleeFunc resolves a call's target to a *types.Func when the callee
// is a plain selector (pkg.F or x.M); nil otherwise.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// fieldOf resolves a selector expression to the struct field it
// denotes, or nil when it denotes anything else (a method, a package
// member, a qualified identifier).
func fieldOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// fieldFullName renders "Struct.field" for diagnostics using the
// selector's receiver type.
func fieldFullName(pkg *Package, sel *ast.SelectorExpr, fld *types.Var) string {
	if s, ok := pkg.Info.Selections[sel]; ok {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return named.Obj().Name() + "." + fld.Name()
		}
	}
	return fld.Name()
}
