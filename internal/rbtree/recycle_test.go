package rbtree

import "testing"

// TestRecycledNodesSteadyStateAllocs drives put/delete churn and
// checks deleted nodes feed later inserts: once the free list is
// primed, the cycle must allocate nothing (the batch swap path puts
// and deletes one index entry per page).
func TestRecycledNodesSteadyStateAllocs(t *testing.T) {
	tr := New[int, int](func(a, b int) bool { return a < b })
	const n = 64
	// Prime: grow to n, drain to 0, leaving n nodes on the free list.
	for i := 0; i < n; i++ {
		tr.Put(i, i*10)
	}
	for i := 0; i < n; i++ {
		if !tr.Delete(i) {
			t.Fatalf("priming delete of %d failed", i)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < n; i++ {
			tr.Put(i, i)
		}
		for i := 0; i < n; i++ {
			tr.Delete(i)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state put/delete churn: %.1f allocs/op, want 0", allocs)
	}
}

// TestRecycledNodesStayCorrect interleaves deletes and re-inserts so
// recycled nodes are reused with different keys, then verifies the
// tree's contents and ordering invariants survived.
func TestRecycledNodesStayCorrect(t *testing.T) {
	tr := New[int, string](func(a, b int) bool { return a < b })
	for round := 0; round < 5; round++ {
		base := round * 1000
		for i := 0; i < 50; i++ {
			tr.Put(base+i, "v")
		}
		// Delete the previous round's survivors; their nodes come back
		// under this round's keys.
		if round > 0 {
			prev := (round - 1) * 1000
			for i := 0; i < 50; i++ {
				if !tr.Delete(prev + i) {
					t.Fatalf("round %d: delete %d failed", round, prev+i)
				}
			}
		}
		if got := tr.Len(); got != 50 {
			t.Fatalf("round %d: Len = %d, want 50", round, got)
		}
	}
	keys := tr.Keys()
	if len(keys) != 50 {
		t.Fatalf("got %d keys, want 50", len(keys))
	}
	for i, k := range keys {
		if k != 4000+i {
			t.Fatalf("keys[%d] = %d, want %d", i, k, 4000+i)
		}
		if v, ok := tr.Get(k); !ok || v != "v" {
			t.Fatalf("Get(%d) = %q, %v", k, v, ok)
		}
	}
}

// TestRecycleDropsReferences checks a recycled node does not retain
// its old value (pointer values would otherwise leak through the free
// list until the node is reused).
func TestRecycleDropsReferences(t *testing.T) {
	tr := New[int, *int](func(a, b int) bool { return a < b })
	x := new(int)
	tr.Put(1, x)
	tr.Delete(1)
	if tr.free == nil {
		t.Fatal("deleted node not on the free list")
	}
	if tr.free.val != nil {
		t.Fatal("recycled node retains its value pointer")
	}
}
