// Package rbtree implements a generic left-leaning red-black tree.
//
// The XFM backend (§6 of the paper) keeps "an internal red-black tree to
// find the associated physical address of the compressed page entry" on
// every swap-in. This package provides that index: an ordered map from
// page identifiers to SFM entries with O(log n) insert, delete, lookup,
// and in-order iteration (used by compaction).
package rbtree

// Tree is an ordered map keyed by K. The zero value is not usable; use
// New. Tree is not safe for concurrent use.
type Tree[K any, V any] struct {
	root *node[K, V]
	size int
	less func(a, b K) bool
	// free chains nodes released by Delete (via their right pointers)
	// for reuse by Put. The index of a swap backend sees one Put and
	// one Delete per page round trip, so recycling nodes makes the
	// steady-state batch path allocation-free; the list is bounded by
	// the tree's high-water size. Keys and values are zeroed on
	// release so recycled nodes retain no references.
	free *node[K, V]
}

type node[K any, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	red         bool
}

// New returns an empty tree ordered by less.
func New[K any, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less}
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key and whether it exists.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value under key.
func (t *Tree[K, V]) Put(key K, val V) {
	var inserted bool
	t.root, inserted = t.put(t.root, key, val)
	t.root.red = false
	if inserted {
		t.size++
	}
}

// newNode takes a node off the free list (or allocates) and
// initializes it as a fresh red leaf.
//
//xfm:hotpath
func (t *Tree[K, V]) newNode(key K, val V) *node[K, V] {
	n := t.free
	if n == nil {
		return &node[K, V]{key: key, val: val, red: true}
	}
	t.free = n.right
	n.key, n.val = key, val
	n.left, n.right = nil, nil
	n.red = true
	return n
}

// recycle zeroes a detached node and pushes it onto the free list.
func (t *Tree[K, V]) recycle(n *node[K, V]) {
	var zk K
	var zv V
	n.key, n.val = zk, zv
	n.left = nil
	n.right = t.free
	t.free = n
}

func (t *Tree[K, V]) put(n *node[K, V], key K, val V) (*node[K, V], bool) {
	if n == nil {
		return t.newNode(key, val), true
	}
	var inserted bool
	switch {
	case t.less(key, n.key):
		n.left, inserted = t.put(n.left, key, val)
	case t.less(n.key, key):
		n.right, inserted = t.put(n.right, key, val)
	default:
		n.val = val
	}
	return fixUp(n), inserted
}

// Delete removes key and reports whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if _, ok := t.Get(key); !ok {
		return false
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
	t.size--
	return true
}

func (t *Tree[K, V]) delete(n *node[K, V], key K) *node[K, V] {
	if t.less(key, n.key) {
		if !isRed(n.left) && n.left != nil && !isRed(n.left.left) {
			n = moveRedLeft(n)
		}
		n.left = t.delete(n.left, key)
	} else {
		if isRed(n.left) {
			n = rotateRight(n)
		}
		if !t.less(n.key, key) && !t.less(key, n.key) && n.right == nil {
			t.recycle(n)
			return nil
		}
		if !isRed(n.right) && n.right != nil && !isRed(n.right.left) {
			n = moveRedRight(n)
		}
		if !t.less(n.key, key) && !t.less(key, n.key) {
			m := min(n.right)
			n.key, n.val = m.key, m.val
			n.right = t.deleteMin(n.right)
		} else {
			n.right = t.delete(n.right, key)
		}
	}
	return fixUp(n)
}

func (t *Tree[K, V]) deleteMin(n *node[K, V]) *node[K, V] {
	if n.left == nil {
		// An LLRB node with no left child has no right child either
		// (a red right link is forbidden, a black one would break the
		// black height), so n detaches whole.
		t.recycle(n)
		return nil
	}
	if !isRed(n.left) && !isRed(n.left.left) {
		n = moveRedLeft(n)
	}
	n.left = t.deleteMin(n.left)
	return fixUp(n)
}

// Min returns the smallest key and its value; ok is false when empty.
func (t *Tree[K, V]) Min() (key K, val V, ok bool) {
	if t.root == nil {
		return key, val, false
	}
	n := min(t.root)
	return n.key, n.val, true
}

// Max returns the largest key and its value; ok is false when empty.
func (t *Tree[K, V]) Max() (key K, val V, ok bool) {
	if t.root == nil {
		return key, val, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ascend calls fn on every entry in key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	ascend(t.root, fn)
}

func ascend[K any, V any](n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}

// Keys returns all keys in ascending order.
func (t *Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

func min[K any, V any](n *node[K, V]) *node[K, V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func isRed[K any, V any](n *node[K, V]) bool { return n != nil && n.red }

func rotateLeft[K any, V any](n *node[K, V]) *node[K, V] {
	x := n.right
	n.right = x.left
	x.left = n
	x.red = n.red
	n.red = true
	return x
}

func rotateRight[K any, V any](n *node[K, V]) *node[K, V] {
	x := n.left
	n.left = x.right
	x.right = n
	x.red = n.red
	n.red = true
	return x
}

func flipColors[K any, V any](n *node[K, V]) {
	n.red = !n.red
	if n.left != nil {
		n.left.red = !n.left.red
	}
	if n.right != nil {
		n.right.red = !n.right.red
	}
}

func moveRedLeft[K any, V any](n *node[K, V]) *node[K, V] {
	flipColors(n)
	if n.right != nil && isRed(n.right.left) {
		n.right = rotateRight(n.right)
		n = rotateLeft(n)
		flipColors(n)
	}
	return n
}

func moveRedRight[K any, V any](n *node[K, V]) *node[K, V] {
	flipColors(n)
	if n.left != nil && isRed(n.left.left) {
		n = rotateRight(n)
		flipColors(n)
	}
	return n
}

func fixUp[K any, V any](n *node[K, V]) *node[K, V] {
	if isRed(n.right) && !isRed(n.left) {
		n = rotateLeft(n)
	}
	if isRed(n.left) && isRed(n.left.left) {
		n = rotateRight(n)
	}
	if isRed(n.left) && isRed(n.right) {
		flipColors(n)
	}
	return n
}
