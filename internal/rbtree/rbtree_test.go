package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func TestEmptyTree(t *testing.T) {
	tr := New[int, string](intLess)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty tree returned ok")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty tree returned true")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree returned ok")
	}
}

func TestPutGetReplace(t *testing.T) {
	tr := New[int, string](intLess)
	tr.Put(1, "a")
	tr.Put(2, "b")
	tr.Put(1, "c") // replace
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if v, ok := tr.Get(1); !ok || v != "c" {
		t.Errorf("Get(1) = %q,%v; want c,true", v, ok)
	}
	if v, ok := tr.Get(2); !ok || v != "b" {
		t.Errorf("Get(2) = %q,%v; want b,true", v, ok)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int, int](intLess)
	for i := 0; i < 100; i++ {
		tr.Put(i, i*10)
	}
	for i := 0; i < 100; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tr.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := tr.Get(i)
		if i%2 == 0 && ok {
			t.Errorf("deleted key %d still present", i)
		}
		if i%2 == 1 && (!ok || v != i*10) {
			t.Errorf("Get(%d) = %d,%v; want %d,true", i, v, ok, i*10)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int, int](intLess)
	for _, k := range []int{42, 7, 99, 1, 63} {
		tr.Put(k, k)
	}
	if k, _, _ := tr.Min(); k != 1 {
		t.Errorf("Min = %d, want 1", k)
	}
	if k, _, _ := tr.Max(); k != 99 {
		t.Errorf("Max = %d, want 99", k)
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New[int, int](intLess)
	rng := rand.New(rand.NewSource(1))
	want := map[int]bool{}
	for i := 0; i < 500; i++ {
		k := rng.Intn(1000)
		tr.Put(k, k)
		want[k] = true
	}
	keys := tr.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys len = %d, want %d", len(keys), len(want))
	}
	if !sort.IntsAreSorted(keys) {
		t.Error("Keys not sorted")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int, int](intLess)
	for i := 0; i < 10; i++ {
		tr.Put(i, i)
	}
	var seen []int
	tr.Ascend(func(k, _ int) bool {
		seen = append(seen, k)
		return k < 4
	})
	if len(seen) != 5 {
		t.Errorf("visited %v, want 5 entries (stop after k=4)", seen)
	}
}

// TestRandomOpsAgainstMap cross-checks a long random op sequence against
// the built-in map plus sort.
func TestRandomOpsAgainstMap(t *testing.T) {
	tr := New[int, int](intLess)
	ref := map[int]int{}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 20000; op++ {
		k := rng.Intn(300)
		switch rng.Intn(3) {
		case 0:
			v := rng.Int()
			tr.Put(k, v)
			ref[k] = v
		case 1:
			got := tr.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(ref, k)
		case 2:
			gv, gok := tr.Get(k)
			wv, wok := ref[k]
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) = %d,%v; want %d,%v", op, k, gv, gok, wv, wok)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, tr.Len(), len(ref))
		}
	}
	keys := tr.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Fatal("final keys not sorted")
	}
}

// TestRBInvariants checks the red-black invariants hold after random
// insert/delete workloads: no red node has a red left child chain
// violation and every root-to-leaf path has the same black height.
func TestRBInvariants(t *testing.T) {
	tr := New[int, int](intLess)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		tr.Put(rng.Intn(2000), i)
		if i%3 == 0 {
			tr.Delete(rng.Intn(2000))
		}
	}
	if _, ok := checkInvariants(tr.root); !ok {
		t.Fatal("red-black invariants violated")
	}
	if isRed(tr.root) {
		t.Fatal("root is red")
	}
}

// checkInvariants returns (blackHeight, ok).
func checkInvariants[K any, V any](n *node[K, V]) (int, bool) {
	if n == nil {
		return 1, true
	}
	if isRed(n) && (isRed(n.left) || isRed(n.right)) {
		return 0, false // red node with red child
	}
	if isRed(n.right) {
		return 0, false // LLRB: right links must be black
	}
	lh, lok := checkInvariants(n.left)
	rh, rok := checkInvariants(n.right)
	if !lok || !rok || lh != rh {
		return 0, false
	}
	if !isRed(n) {
		lh++
	}
	return lh, true
}

// Property: inserting any key set then iterating yields the sorted
// deduplicated keys.
func TestPropertyKeysSorted(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New[int, bool](intLess)
		set := map[int]bool{}
		for _, k := range keys {
			tr.Put(int(k), true)
			set[int(k)] = true
		}
		got := tr.Keys()
		if len(got) != len(set) {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTreePut(b *testing.B) {
	tr := New[int, int](intLess)
	for i := 0; i < b.N; i++ {
		tr.Put(i&0xffff, i)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New[int, int](intLess)
	for i := 0; i < 1<<16; i++ {
		tr.Put(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i & 0xffff)
	}
}
