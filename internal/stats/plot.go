package stats

import (
	"fmt"
	"strings"
)

// BarChart renders labeled horizontal bars in plain text — enough to
// eyeball a figure's shape in a terminal without plotting tooling.
type BarChart struct {
	Title string
	// Width is the maximum bar width in characters (default 40).
	Width int
	rows  []barRow
}

type barRow struct {
	label string
	value float64
	note  string
}

// NewBarChart creates a chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, Width: 40}
}

// Add appends one bar with an optional note rendered after the value.
func (b *BarChart) Add(label string, value float64, note string) {
	b.rows = append(b.rows, barRow{label: label, value: value, note: note})
}

// String renders the chart. Negative values render as empty bars with
// the value still printed.
func (b *BarChart) String() string {
	if len(b.rows) == 0 {
		return b.Title + "\n(no data)\n"
	}
	maxVal := 0.0
	maxLabel := 0
	for _, r := range b.rows {
		if r.value > maxVal {
			maxVal = r.value
		}
		if len(r.label) > maxLabel {
			maxLabel = len(r.label)
		}
	}
	width := b.Width
	if width <= 0 {
		width = 40
	}
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title)
		sb.WriteByte('\n')
	}
	for _, r := range b.rows {
		n := 0
		if maxVal > 0 && r.value > 0 {
			n = int(r.value / maxVal * float64(width))
			if n == 0 {
				n = 1
			}
		}
		sb.WriteString(fmt.Sprintf("%-*s |%-*s %.4g", maxLabel, r.label,
			width, strings.Repeat("█", n), r.value))
		if r.note != "" {
			sb.WriteString("  " + r.note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
