// Package stats provides lightweight counters, histograms, time series,
// and fixed-width table rendering used by the XFM simulator and the
// experiment harness to report results in the shape of the paper's
// tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically named accumulator. The zero value is ready
// to use.
type Counter struct {
	n   int64
	sum float64
}

// Add accumulates v into the counter.
func (c *Counter) Add(v float64) {
	c.n++
	c.sum += v
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.Add(1) }

// N returns the number of Add calls.
func (c *Counter) N() int64 { return c.n }

// Sum returns the accumulated total.
func (c *Counter) Sum() float64 { return c.sum }

// Mean returns Sum/N, or 0 when empty.
func (c *Counter) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	return c.sum / float64(c.n)
}

// Reset clears the counter.
func (c *Counter) Reset() { c.n, c.sum = 0, 0 }

// Histogram collects samples and reports order statistics. The zero
// value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Observe records one sample. NaN is dropped: a NaN sample has no rank,
// so keeping it would poison every order statistic (sort.Float64s
// leaves NaNs in unspecified positions). ±Inf are legitimate extreme
// samples and are kept.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.samples = append(h.samples, v)
	h.sorted = false
}

// N returns the number of recorded samples.
func (h *Histogram) N() int { return len(h.samples) }

// Sum returns the total of all samples.
func (h *Histogram) Sum() float64 {
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.Sum() / float64(len(h.samples))
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between closest ranks. Returns 0 when empty or when q
// is NaN; q outside [0, 1] clamps to the extreme samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.sort()
	n := len(h.samples)
	if n == 0 || math.IsNaN(q) {
		return 0
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.samples[lo]
	}
	frac := pos - float64(lo)
	return h.samples[lo]*(1-frac) + h.samples[hi]*frac
}

// Stddev returns the population standard deviation, or 0 when fewer
// than two samples exist.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	m := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.samples = h.samples[:0]
	h.sorted = true
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Series is a named (x, y) sequence, the unit of a figure's line or a
// bar group.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point to the series.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the first point whose x equals x, and
// whether it was found.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Table renders aligned fixed-width text tables, the output format of
// every experiment in cmd/xfmbench.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from formatted values: strings are used
// verbatim, float64 formatted %.4g, ints %d, everything else %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (headers first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
