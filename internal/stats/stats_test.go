package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.N() != 0 || c.Sum() != 0 || c.Mean() != 0 {
		t.Fatalf("zero counter not zero: n=%d sum=%v mean=%v", c.N(), c.Sum(), c.Mean())
	}
	c.Add(2)
	c.Add(4)
	c.Inc()
	if c.N() != 3 {
		t.Errorf("N = %d, want 3", c.N())
	}
	if c.Sum() != 7 {
		t.Errorf("Sum = %v, want 7", c.Sum())
	}
	if got := c.Mean(); math.Abs(got-7.0/3) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, 7.0/3)
	}
	c.Reset()
	if c.N() != 0 || c.Sum() != 0 {
		t.Errorf("Reset did not clear counter")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramOrderStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Errorf("min/max = %v/%v, want 1/5", h.Min(), h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := h.Quantile(0.25); got != 2 {
		t.Errorf("q0.25 = %v, want 2", got)
	}
	if got := h.Mean(); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	h.Observe(2)
	h.Observe(4)
	h.Observe(4)
	h.Observe(4)
	h.Observe(5)
	h.Observe(5)
	h.Observe(7)
	h.Observe(9)
	if got := h.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
}

func TestHistogramObserveAfterSort(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Min() // forces sort
	h.Observe(1)
	if h.Min() != 1 {
		t.Errorf("Min after post-sort Observe = %v, want 1", h.Min())
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(vals []float64, a, b float64) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			h.Observe(v)
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "xfm"
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %v,%v; want 20,true", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Errorf("YAt(3) should not be found")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("gamma", 7)
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Errorf("missing title in %q", out)
	}
	for _, want := range []string{"alpha", "beta", "2.5", "gamma", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendered table:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 3 rows
	if len(lines) != 6 {
		t.Errorf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `he said "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"he said ""hi"""`) {
		t.Errorf("quote cell not escaped: %q", csv)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1", "2", "3")
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped: %q", out)
	}
}

func TestBarChartRendering(t *testing.T) {
	b := NewBarChart("shape")
	b.Add("alpha", 10, "")
	b.Add("beta", 5, "note")
	b.Add("zero", 0, "")
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	alphaBars := strings.Count(lines[1], "█")
	betaBars := strings.Count(lines[2], "█")
	if alphaBars <= betaBars {
		t.Errorf("bar lengths not proportional: %d vs %d", alphaBars, betaBars)
	}
	if strings.Count(lines[3], "█") != 0 {
		t.Error("zero value rendered a bar")
	}
	if !strings.Contains(lines[2], "note") {
		t.Error("note missing")
	}
}

func TestBarChartEmpty(t *testing.T) {
	if out := NewBarChart("t").String(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart output %q", out)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(7)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %v, want 7", q, got)
		}
	}
	if h.Min() != 7 || h.Max() != 7 || h.Mean() != 7 || h.Stddev() != 0 {
		t.Errorf("single-sample stats wrong: min=%v max=%v mean=%v stddev=%v",
			h.Min(), h.Max(), h.Mean(), h.Stddev())
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	var h Histogram
	h.Observe(math.NaN())
	if h.N() != 0 {
		t.Fatalf("NaN sample was kept: N = %d", h.N())
	}
	h.Observe(1)
	h.Observe(math.NaN())
	h.Observe(3)
	if h.N() != 2 {
		t.Fatalf("N = %d, want 2", h.N())
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if math.IsNaN(h.Sum()) || math.IsNaN(h.Mean()) || math.IsNaN(h.Stddev()) {
		t.Error("aggregate stats contaminated by NaN")
	}
}

func TestHistogramInfSamples(t *testing.T) {
	var h Histogram
	h.Observe(math.Inf(1))
	h.Observe(0)
	h.Observe(math.Inf(-1))
	if !math.IsInf(h.Min(), -1) {
		t.Errorf("Min = %v, want -Inf", h.Min())
	}
	if !math.IsInf(h.Max(), 1) {
		t.Errorf("Max = %v, want +Inf", h.Max())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("median = %v, want 0", got)
	}
	if !math.IsInf(h.Quantile(1), 1) || !math.IsInf(h.Quantile(0), -1) {
		t.Error("extreme quantiles should hit the Inf samples")
	}
}

func TestHistogramQuantileEdgeArgs(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Observe(2)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0", got)
	}
	if got := h.Quantile(-0.5); got != 1 {
		t.Errorf("Quantile(-0.5) = %v, want clamp to min 1", got)
	}
	if got := h.Quantile(1.5); got != 2 {
		t.Errorf("Quantile(1.5) = %v, want clamp to max 2", got)
	}
}
